// Scalability benchmarks for the fine-grained kernel: where bench_test.go
// reproduces the paper's (uniprocessor) tables, these measure how the
// kernel behaves when several guest processes enter it at once. Run with
// different GOMAXPROCS to see the locking scale:
//
//	go test -bench 'Scalability' -cpu 1,2,4 .
//
// On a single-CPU host the parallel rows should stay within noise of the
// serial ones (fine-grained locking must not cost throughput when there
// is no parallelism to exploit); with more CPUs the -j rows should pull
// ahead.
package interpose_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"interpose/internal/core"
	"interpose/internal/experiments"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// BenchmarkScalability_SyscallThroughput measures raw syscall dispatch
// with one guest process per worker goroutine, all entering the kernel
// concurrently. getpid takes no kernel lock at all, so this is the
// upper bound the lock split is aiming at.
func BenchmarkScalability_SyscallThroughput(b *testing.B) {
	// The supervised sub-run proves the supervisor's pay-per-use claim at
	// full concurrency: with a supervisor installed but no layers, the
	// uninterposed path is still one atomic plan load and must match the
	// unsupervised throughput.
	for _, sup := range []struct {
		name      string
		supervise bool
	}{{"off", false}, {"supervised-idle", true}} {
		b.Run(sup.name, func(b *testing.B) {
			k := mustWorld(b)
			if sup.supervise {
				k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
					Mode: kernel.SuperviseStrict,
				}))
			}
			var mu sync.Mutex
			procs := []*kernel.Proc{}
			b.RunParallel(func(pb *testing.PB) {
				p := k.NewProc()
				mu.Lock()
				procs = append(procs, p)
				mu.Unlock()
				for pb.Next() {
					p.Syscall(sys.SYS_getpid, sys.Args{})
				}
			})
			_ = procs
		})
	}
}

// BenchmarkScalability_VFSParallel measures namespace churn — create,
// write, read, unlink in a per-worker directory — from concurrent
// goroutines. Under the old FS-wide lock every worker serialized on one
// mutex; with per-inode locks only siblings in the same directory
// contend.
func BenchmarkScalability_VFSParallel(b *testing.B) {
	k := mustWorld(b)
	var widSeq int32
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		widSeq++
		dir := fmt.Sprintf("/tmp/w%d", widSeq)
		mu.Unlock()
		if err := k.MkdirAll(dir, 0o755); err != nil {
			b.Error(err)
			return
		}
		payload := []byte("scalability payload\n")
		i := 0
		for pb.Next() {
			path := fmt.Sprintf("%s/f%d", dir, i&7)
			if err := k.WriteFile(path, payload, 0o644); err != nil {
				b.Error(err)
				return
			}
			if _, err := k.ReadFile(path); err != nil {
				b.Error(err)
				return
			}
			if err := k.Remove(path); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkScalability_MakeJ is the headline workload: the Table 3-3
// parallel build at increasing -j. One iteration is one full clean build
// of eight programs.
func BenchmarkScalability_MakeJ(b *testing.B) {
	for _, j := range experiments.ScaleJobs {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			k := mustWorld(b)
			if err := experiments.SetupMake(k, 8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := experiments.CleanMake(k, 8); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := experiments.RunMakeJ(k, nil, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalability_StatHeavy is the pathname-cache workload: several
// guest processes stat the same path concurrently, with the VFS
// name/attribute cache on (the default) and off. One benchmark iteration
// is one stat call; cache-on resolves it from the sharded dentry cache
// and lock-free attribute snapshots, cache-off takes the hand-over-hand
// locked walk every time.
func BenchmarkScalability_StatHeavy(b *testing.B) {
	for _, cfg := range []struct {
		name string
		on   bool
	}{{"cache-on", true}, {"cache-off", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			k := mustWorld(b)
			k.FS().SetNameCache(cfg.on)
			jobs := experiments.StatHeavyJobs
			per := b.N/jobs + 1
			argv := []string{"bench", "stat", fmt.Sprint(per)}
			b.ResetTimer()
			var wg sync.WaitGroup
			for j := 0; j < jobs; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p, err := core.Launch(k, nil, "/bin/bench", argv, nil)
					if err != nil {
						b.Error(err)
						return
					}
					st := k.WaitExit(p)
					if sys.WExitStatus(st) != 0 {
						b.Errorf("bench stat exited %d", sys.WExitStatus(st))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestParallelMakeSpeedup asserts the point of the whole exercise: with
// real CPUs available, mk -j 4 beats mk -j 1 by at least 2x. On hosts
// without parallelism (CI containers pinned to one core) the assertion
// is vacuous and the test only checks both builds succeed.
func TestParallelMakeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	k := mustWorld(t)
	if err := experiments.SetupMake(k, 8); err != nil {
		t.Fatal(err)
	}
	measure := func(j int) time.Duration {
		// Warm-up round, then best-of-three to shed scheduler noise.
		best := time.Duration(0)
		for r := 0; r < 4; r++ {
			if err := experiments.CleanMake(k, 8); err != nil {
				t.Fatal(err)
			}
			d, err := experiments.RunMakeJ(k, nil, j)
			if err != nil {
				t.Fatal(err)
			}
			if r == 0 {
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	par := measure(4)
	t.Logf("mk -j 1: %v, mk -j 4: %v (GOMAXPROCS=%d, NumCPU=%d)",
		serial, par, runtime.GOMAXPROCS(0), runtime.NumCPU())
	if runtime.NumCPU() >= 4 && runtime.GOMAXPROCS(0) >= 4 {
		if par*2 > serial {
			t.Errorf("mk -j 4 (%v) not at least 2x faster than mk -j 1 (%v)", par, serial)
		}
	}
}
