package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"interpose/internal/sys"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events for spans, "s"/"f" flow events for cross-process
// causal edges), the JSON dialect Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// spanName renders a span's display name: the syscall name for root and
// kernel spans (prefixed "kernel:" for the kernel leg), the recorded
// layer name for agent-layer spans, and "signal:NAME" for deliveries.
func spanName(sp Span) string {
	switch {
	case sp.Layer == LayerSignal:
		return "signal:" + sys.SignalName(int(sp.Num))
	case sp.Layer == LayerKernel:
		return "kernel:" + sys.SyscallName(int(sp.Num))
	case sp.Layer > 0:
		return sp.Name + ":" + sys.SyscallName(int(sp.Num))
	}
	return sys.SyscallName(int(sp.Num))
}

// WriteChrome renders spans as a Chrome trace-event JSON document.
// Every span becomes an "X" complete event; entry-recorded spans
// (Dur < 0: exit, exec) render with zero duration and an "unfinished"
// arg. Parent references that cross a process boundary (fork, exec,
// signal adoption) and all Link references (pipe, wait, signal) become
// "s"→"f" flow pairs, the arrows Perfetto draws between tracks.
func WriteChrome(w io.Writer, spans []Span) error {
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	events := make([]chromeEvent, 0, len(spans)+len(spans)/4)
	for i := range spans {
		sp := &spans[i]
		args := map[string]any{
			"span":  sp.ID,
			"trace": sp.Trace,
			"layer": sp.Layer,
		}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Link != 0 {
			args["link"] = sp.Link
		}
		if sp.Err != 0 {
			args["errno"] = sys.Errno(sp.Err).Name()
		}
		dur := float64(sp.Dur) / 1e3
		if sp.Dur < 0 {
			dur = 0
			args["unfinished"] = true
		}
		events = append(events, chromeEvent{
			Name: spanName(*sp),
			Cat:  "syscall",
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  dur,
			PID:  sp.PID,
			TID:  sp.PID,
			Args: args,
		})
		if src, ok := byID[sp.Parent]; ok && src.PID != sp.PID {
			events = append(events, flowPair(src, sp, "causal", fmt.Sprintf("p%d", sp.ID))...)
		}
		if src, ok := byID[sp.Link]; ok {
			events = append(events, flowPair(src, sp, "link", fmt.Sprintf("l%d", sp.ID))...)
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// flowPair builds the "s" (at the source span's end) and "f" (at the
// destination span's start) events for one causal arrow.
func flowPair(src, dst *Span, cat, id string) []chromeEvent {
	srcEnd := src.Start
	if src.Dur > 0 {
		srcEnd += src.Dur
	}
	return []chromeEvent{
		{Name: cat, Cat: cat, Ph: "s", TS: float64(srcEnd) / 1e3, PID: src.PID, TID: src.PID, ID: id},
		{Name: cat, Cat: cat, Ph: "f", BP: "e", TS: float64(dst.Start) / 1e3, PID: dst.PID, TID: dst.PID, ID: id},
	}
}

// WriteChrome renders the tracer's current buffer; see the package-level
// WriteChrome.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Snapshot())
}
