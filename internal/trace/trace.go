// Package trace is the causal span tracer: the per-call companion to
// package telemetry's aggregates. Where telemetry answers "how many and
// how slow on average", a span trace answers "why was this one call
// slow, and which layer of which process caused it" — the observability
// instrument the paper's trace (§3.3.2) and dfstrace (§3.5.3) agents
// point at.
//
// Each sampled system call opens a root span; each interested
// emulation-layer upcall and the kernel leg open child spans, so
// per-layer self-time attribution is per-call and exact. Causal edges —
// fork, exec, pipe write→read, signal post→deliver, and wait — carry
// span references between processes, so a parallel build renders as one
// connected trace.
//
// The package follows the toolkit's pay-per-use principle. A Tracer is
// installed on a kernel with SetSpanTracer; while none is installed the
// only cost on the system call path is one atomic pointer load. Once
// installed, head sampling (Sampled) decides per call whether to record
// spans, and tail retention (Tail) additionally keeps unsampled calls
// that ran slow or failed. Spans land in sharded overwrite-oldest
// buffers under brief per-shard locks with a global sequence number —
// the same discipline as the telemetry flight ring.
package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span layer codes. Non-negative layers mirror telemetry's attribution
// indexing: 0 is the kernel leg, 1+i is emulation layer i (bottom = 0).
const (
	// LayerRoot marks a top-level system call span.
	LayerRoot int32 = -1
	// LayerKernel marks the kernel leg of a dispatch (self time of the
	// lowest instance of the system interface).
	LayerKernel int32 = 0
	// LayerSignal marks a signal-delivery span; Num holds the signal
	// number and Link the poster's root span.
	LayerSignal int32 = -2
)

// Span is one recorded interval. Spans are fixed-size values: recording
// one copies it into a preallocated slot and allocates nothing.
type Span struct {
	Seq    uint64 // global record order
	Trace  uint64 // trace (connected process tree) this span belongs to
	ID     uint64 // unique span id, never zero
	Parent uint64 // enclosing span (same process) or causal parent (fork/exec/signal); 0 = trace root
	Link   uint64 // cross-process causal origin (pipe writer, exited child, signal poster); 0 = none
	PID    int32
	Num    int32 // system call number; signal number when Layer == LayerSignal
	Layer  int32 // LayerRoot, LayerKernel, 1+i, or LayerSignal
	Err    int32 // errno at completion
	Start  int64 // nanoseconds since the tracer was created
	Dur    int64 // nanoseconds; -1 when recorded at entry (exit, exec)
	Name   string
}

// Config tunes a Tracer. The zero value of each field selects the
// documented default.
type Config struct {
	// Sample is the head-sampling probability in [0, 1]: the fraction of
	// system calls that open spans. 0 disables head sampling (tail
	// retention may still record); 1 records every call.
	Sample float64

	// Slow, when positive, is the tail-retention latency threshold:
	// an unsampled call at least this slow is recorded as a root-only
	// span, so the outliers head sampling missed still show up.
	Slow time.Duration

	// TailErrors retains unsampled calls that return an errno, the other
	// half of tail retention.
	TailErrors bool

	// Capacity is the total span-slot count across shards. Default 64Ki.
	Capacity int
}

const (
	defaultCapacity = 1 << 16
	// spanShards spreads span slots across locks; the global sequence
	// number round-robins spans over shards so reconstruction by Seq
	// restores total order (the flight-ring discipline).
	spanShards = 8
)

type spanShard struct {
	mu    sync.Mutex
	slots []Span
	n     uint64 // spans ever written to this shard
}

// Tracer is one span-tracing domain: sampling state, causal-edge
// counters, and the sharded span buffer.
type Tracer struct {
	start time.Time

	// thresh is the head-sampling comparison threshold: a call is
	// sampled when its xorshift draw is <= thresh. 0 = never,
	// ^uint64(0) = always. Atomic so /dev/trace writes can retune it
	// while processes run.
	thresh   atomic.Uint64
	slow     atomic.Int64
	tailErrs atomic.Bool

	ids    atomic.Uint64 // span id allocator (first id is 1)
	traces atomic.Uint64 // trace id allocator (first id is 1)
	seq    atomic.Uint64 // global record order

	recorded atomic.Uint64

	shards [spanShards]spanShard
}

// NewTracer builds a tracer with defaults applied.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{start: time.Now()}
	cap := cfg.Capacity
	if cap <= 0 {
		cap = defaultCapacity
	}
	per := cap / spanShards
	if per < 1 {
		per = 1
	}
	for i := range t.shards {
		t.shards[i].slots = make([]Span, per)
	}
	t.SetSample(cfg.Sample)
	t.slow.Store(int64(cfg.Slow))
	t.tailErrs.Store(cfg.TailErrors)
	return t
}

// SetSample changes the head-sampling probability (clamped to [0, 1]).
// Safe to call while processes run; calls in flight keep the decision
// they entered with.
func (t *Tracer) SetSample(p float64) {
	switch {
	case p <= 0:
		t.thresh.Store(0)
	case p >= 1:
		t.thresh.Store(^uint64(0))
	default:
		v := p * float64(math.MaxUint64)
		if v >= float64(math.MaxUint64) {
			t.thresh.Store(^uint64(0))
			return
		}
		t.thresh.Store(uint64(v))
	}
}

// SampleRate returns the current head-sampling probability.
func (t *Tracer) SampleRate() float64 {
	th := t.thresh.Load()
	switch th {
	case 0:
		return 0
	case ^uint64(0):
		return 1
	}
	return float64(th) / float64(math.MaxUint64)
}

// Sampled draws the head-sampling decision for one call. state is the
// caller's private xorshift64 state (one word per process, touched only
// by its own goroutine); seed folds in an identity so processes do not
// march in lockstep. The unsampled path is a load, three shifts, and a
// compare.
func (t *Tracer) Sampled(state *uint64, seed int) bool {
	th := t.thresh.Load()
	if th == 0 {
		return false
	}
	if th == ^uint64(0) {
		return true
	}
	s := *state
	if s == 0 {
		s = (uint64(seed)+1)*0x9E3779B97F4A7C15 | 1
	}
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	*state = s
	return s <= th
}

// Tail reports whether an unsampled call should be retained anyway:
// it was slow, or it failed and error retention is on.
func (t *Tracer) Tail(d time.Duration, failed bool) bool {
	if failed && t.tailErrs.Load() {
		return true
	}
	s := t.slow.Load()
	return s > 0 && int64(d) >= s
}

// TailEnabled reports whether any tail-retention rule is active (callers
// skip the clock reads entirely when neither head nor tail needs them).
func (t *Tracer) TailEnabled() bool {
	return t.tailErrs.Load() || t.slow.Load() > 0
}

// NewTrace allocates a trace id (a process tree's identity).
func (t *Tracer) NewTrace() uint64 { return t.traces.Add(1) }

// NewSpanID allocates a span id.
func (t *Tracer) NewSpanID() uint64 { return t.ids.Add(1) }

// Now returns nanoseconds since the tracer was created (the span
// timebase).
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// At converts an absolute time to the span timebase.
func (t *Tracer) At(tm time.Time) int64 { return int64(tm.Sub(t.start)) }

// Record stores sp, overwriting its shard's oldest slot. The shard lock
// covers a single struct copy.
func (t *Tracer) Record(sp Span) {
	sp.Seq = t.seq.Add(1) - 1
	s := &t.shards[sp.Seq%spanShards]
	s.mu.Lock()
	s.slots[s.n%uint64(len(s.slots))] = sp
	s.n++
	s.mu.Unlock()
	t.recorded.Add(1)
}

// Stats returns the number of spans recorded and the number lost to
// buffer overwrite, for the trace.* gauges.
func (t *Tracer) Stats() (recorded, dropped uint64) {
	recorded = t.recorded.Load()
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if over := s.n; over > uint64(len(s.slots)) {
			dropped += over - uint64(len(s.slots))
		}
		s.mu.Unlock()
	}
	return recorded, dropped
}

// Clear drops all buffered spans (the /dev/trace "clear" command). Id
// and sequence counters keep running, so spans recorded before and after
// a clear still order globally.
func (t *Tracer) Clear() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.n = 0
		s.mu.Unlock()
	}
}

// Snapshot returns the surviving spans sorted by sequence number and
// trimmed to the longest gap-free suffix: shards overwrite
// independently, so a recorder preempted between taking its sequence
// number and filling its slot can leave a stale span behind while other
// shards move on; everything before the resulting sequence gap is
// dropped so the result reads as one contiguous recent history. In
// steady state the per-shard windows line up exactly and nothing is
// trimmed.
func (t *Tracer) Snapshot() []Span {
	var out []Span
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		live := s.n
		if live > uint64(len(s.slots)) {
			live = uint64(len(s.slots))
		}
		for j := uint64(0); j < live; j++ {
			out = append(out, s.slots[j])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	start := len(out) - 1
	for start > 0 && out[start-1].Seq+1 == out[start].Seq {
		start--
	}
	if start > 0 {
		out = out[start:]
	}
	return out
}
