package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"interpose/internal/sys"
)

func TestSampledRate(t *testing.T) {
	tr := NewTracer(Config{Sample: 0.25})
	var state uint64
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if tr.Sampled(&state, 7) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("sample rate 0.25 drew %.3f over %d calls", got, n)
	}
}

func TestSampledExtremes(t *testing.T) {
	var state uint64
	off := NewTracer(Config{Sample: 0})
	always := NewTracer(Config{Sample: 1})
	for i := 0; i < 1000; i++ {
		if off.Sampled(&state, 1) {
			t.Fatal("sample 0 drew true")
		}
		if !always.Sampled(&state, 1) {
			t.Fatal("sample 1 drew false")
		}
	}
	if r := off.SampleRate(); r != 0 {
		t.Errorf("SampleRate() = %v, want 0", r)
	}
	if r := always.SampleRate(); r != 1 {
		t.Errorf("SampleRate() = %v, want 1", r)
	}
}

func TestSetSampleClamps(t *testing.T) {
	tr := NewTracer(Config{})
	tr.SetSample(-3)
	if r := tr.SampleRate(); r != 0 {
		t.Errorf("SetSample(-3): rate %v, want 0", r)
	}
	tr.SetSample(17)
	if r := tr.SampleRate(); r != 1 {
		t.Errorf("SetSample(17): rate %v, want 1", r)
	}
	tr.SetSample(0.5)
	if r := tr.SampleRate(); r < 0.49 || r > 0.51 {
		t.Errorf("SetSample(0.5): rate %v", r)
	}
}

func TestTailRetention(t *testing.T) {
	tr := NewTracer(Config{Slow: time.Millisecond, TailErrors: true})
	if !tr.TailEnabled() {
		t.Fatal("TailEnabled() = false with slow threshold and error retention set")
	}
	if !tr.Tail(2*time.Millisecond, false) {
		t.Error("slow call not retained")
	}
	if tr.Tail(time.Microsecond, false) {
		t.Error("fast successful call retained")
	}
	if !tr.Tail(0, true) {
		t.Error("failed call not retained")
	}
	none := NewTracer(Config{Sample: 1})
	if none.TailEnabled() {
		t.Error("TailEnabled() = true with no tail rules")
	}
}

func TestRecordSnapshotOrder(t *testing.T) {
	tr := NewTracer(Config{Capacity: 64})
	for i := 0; i < 40; i++ {
		tr.Record(Span{Trace: 1, ID: tr.NewSpanID(), PID: 1, Num: int32(i), Layer: LayerRoot})
	}
	spans := tr.Snapshot()
	if len(spans) != 40 {
		t.Fatalf("Snapshot() returned %d spans, want 40", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("Seq not strictly increasing at %d: %d then %d", i, spans[i-1].Seq, spans[i].Seq)
		}
	}
	rec, dropped := tr.Stats()
	if rec != 40 || dropped != 0 {
		t.Errorf("Stats() = (%d, %d), want (40, 0)", rec, dropped)
	}
}

func TestSnapshotOverwriteDrops(t *testing.T) {
	tr := NewTracer(Config{Capacity: 64}) // 8 slots per shard
	const writes = 200
	for i := 0; i < writes; i++ {
		tr.Record(Span{Trace: 1, ID: tr.NewSpanID(), Layer: LayerRoot})
	}
	spans := tr.Snapshot()
	if len(spans) == 0 || len(spans) > 64 {
		t.Fatalf("Snapshot() returned %d spans for a 64-slot buffer", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("gap in trimmed snapshot: Seq %d follows %d", spans[i].Seq, spans[i-1].Seq)
		}
	}
	if last := spans[len(spans)-1].Seq; last != writes-1 {
		t.Errorf("newest surviving Seq = %d, want %d", last, writes-1)
	}
	_, dropped := tr.Stats()
	if dropped != writes-64 {
		t.Errorf("Stats() dropped = %d, want %d", dropped, writes-64)
	}
}

// TestSnapshotTrimsStaleSurvivor forces the hazard the contiguous trim
// exists for: one shard retains a stale old span while the others have
// wrapped far past it. The dump must drop everything older than the
// newest per-shard oldest-survivor rather than splice the stale span
// into the middle of recent history.
func TestSnapshotTrimsStaleSurvivor(t *testing.T) {
	tr := NewTracer(Config{Capacity: 64})
	const writes = 200
	for i := 0; i < writes; i++ {
		tr.Record(Span{Trace: 1, ID: tr.NewSpanID(), Layer: LayerRoot})
	}
	// Plant a stale span (tiny Seq) in one wrapped shard, simulating a
	// recorder preempted between sequence draw and slot fill.
	s := &tr.shards[3]
	s.mu.Lock()
	s.slots[0] = Span{Seq: 3, Trace: 1, ID: 999, Layer: LayerRoot}
	s.mu.Unlock()

	spans := tr.Snapshot()
	for i, sp := range spans {
		if sp.Seq == 3 {
			t.Fatalf("stale span survived the trim at index %d", i)
		}
		if sp.Seq < writes-64 {
			t.Fatalf("span Seq %d from before the buffer window survived the trim", sp.Seq)
		}
		if i > 0 && spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("Seq not strictly increasing: %d follows %d", spans[i].Seq, spans[i-1].Seq)
		}
	}
}

func TestClear(t *testing.T) {
	tr := NewTracer(Config{Capacity: 64})
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: 1, ID: tr.NewSpanID(), Layer: LayerRoot})
	}
	tr.Clear()
	if spans := tr.Snapshot(); len(spans) != 0 {
		t.Fatalf("Snapshot() after Clear() returned %d spans", len(spans))
	}
	// Sequence numbering keeps running across a clear.
	tr.Record(Span{Trace: 1, ID: tr.NewSpanID(), Layer: LayerRoot})
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Seq != 10 {
		t.Fatalf("post-clear snapshot = %+v, want one span with Seq 10", spans)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(Config{Capacity: 64})
	root := Span{Trace: 1, ID: 1, PID: 1, Num: int32(sys.SYS_read), Layer: LayerRoot, Start: 1000, Dur: 5000}
	child := Span{Trace: 1, ID: 2, Parent: 1, PID: 1, Num: int32(sys.SYS_read), Layer: LayerKernel, Start: 2000, Dur: 1000}
	forked := Span{Trace: 1, ID: 3, Parent: 1, PID: 2, Num: int32(sys.SYS_getpid), Layer: LayerRoot, Start: 7000, Dur: 100}
	linked := Span{Trace: 1, ID: 4, Parent: 0, Link: 1, PID: 3, Num: int32(sys.SYS_exit), Layer: LayerRoot, Start: 9000, Dur: -1}
	for _, sp := range []Span{root, child, forked, linked} {
		tr.Record(sp)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			PID  int32          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome produced invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var x, flows int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			x++
			names[e.Name] = true
			if e.Args["unfinished"] == true && e.Dur != 0 {
				t.Errorf("unfinished span rendered with dur %v", e.Dur)
			}
		case "s", "f":
			flows++
		}
	}
	if x != 4 {
		t.Errorf("%d X events, want 4", x)
	}
	// One cross-pid parent arrow (forked) + one link arrow (linked), each
	// an s/f pair.
	if flows != 4 {
		t.Errorf("%d flow events, want 4", flows)
	}
	if !names["kernel:read"] {
		t.Errorf("kernel leg span name missing; names = %v", names)
	}
	if !names["read"] || !names["exit"] {
		t.Errorf("root span names missing; names = %v", names)
	}
}

func TestSpanNameLayers(t *testing.T) {
	sig := Span{Num: int32(sys.SIGCHLD), Layer: LayerSignal}
	if got := spanName(sig); got != "signal:SIGCHLD" {
		t.Errorf("signal span name = %q", got)
	}
	agent := Span{Num: int32(sys.SYS_write), Layer: 1, Name: "monitor"}
	if got := spanName(agent); got != "monitor:write" {
		t.Errorf("agent span name = %q", got)
	}
}
