// Package worldd is the multi-tenant world server: one process hosting
// many independent simulated machines (internal/world) behind a
// unix-socket HTTP/JSON API, in the shape of a machine-container daemon:
//
//	POST   /1.0/worlds           create a world from a wire world.Spec
//	GET    /1.0/worlds           list worlds
//	GET    /1.0/worlds/{id}      inspect one world
//	POST   /1.0/worlds/{id}/exec run one session (world.ExecRequest)
//	DELETE /1.0/worlds/{id}      close and remove a world
//	GET    /1.0/metrics          fleet-wide aggregated telemetry
//
// Each tenant's Spec carries its own budgets — rlimits applied to every
// process the world launches, circuit-breaker thresholds for its agent
// stack, an optional private journal — and the world layer enforces
// them, so one tenant exhausting its descriptor budget or quarantining
// its agents cannot perturb a sibling. Host paths never cross the
// socket: a wire spec's `journal` field is a bare key the server maps
// to a file inside its own state directory (one live world per file,
// enforced by a reservation held until Close), and `restore` is refused
// outright, so no tenant can make the daemon open, append to, or
// truncate a host file of its choosing. A wire spec with `pool` > 0 is
// served from a warm pool instead of a boot: worlds with identical
// specs (name and pool size aside) share one pool of pre-forked
// copy-on-write template clones, so tenant creation is a stack pop off
// the request path (see world.Pool); pooled members are otherwise
// ordinary tenants — they run sessions, stay fully isolated (COW
// unsharing means a write in one never appears in a sibling), and are
// closed, not recycled, on DELETE. Idle worlds run zero goroutines;
// the per-world cost is the kernel's in-memory filesystem plus whatever
// facilities the spec opted into (telemetry registries carry latency
// histograms and a flight ring, so memory-conscious fleets leave
// Telemetry off and rely on the server's own session counters).
//
// # Lock ordering
//
// Server.mu guards only the world table (id → entry) and the draining
// flag. Every world operation — Boot, Exec, Close — runs OUTSIDE
// Server.mu: handlers look the entry up under the lock, release it, and
// then call into the world, which serializes its own sessions on its
// own lock. Server.mu is therefore never held while a world lock is,
// and a slow session in one world never delays another tenant's create
// or delete. Deleting a world that is mid-session is safe for the same
// reason: Close blocks on the world lock until the session finishes,
// and a later Exec on the closed world fails cleanly.
package worldd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/telemetry"
	"interpose/internal/world"
)

// Config wires the server to its world template: the host-side hooks a
// wire Spec cannot carry.
type Config struct {
	// Register populates every world's image registry (required).
	Register func(*image.Registry)
	// Setup hooks prepended to every world's Setup (optional fixtures).
	Setup []func(*kernel.Kernel) error
	// StateDir is the directory holding tenant journal files. A wire
	// spec's `journal` field is a bare key, not a host path: the server
	// maps it to a file under this directory, so a tenant can never
	// name an arbitrary daemon-writable file. Empty refuses file-backed
	// journals (JournalMem still works).
	StateDir string
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// entry is one hosted world. The session counter is the server's own
// (telemetry is per-spec optional, but "how busy is this tenant" must
// always be answerable).
type entry struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Created  time.Time `json:"created"`
	w        *world.World
	journal  string // reserved journal host path, "" if none
	sessions atomic.Uint64
	execErrs atomic.Uint64
}

// Info is the wire representation of one hosted world.
type Info struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Created  time.Time `json:"created"`
	Sessions uint64    `json:"sessions"`
	ExecErrs uint64    `json:"exec_errs,omitempty"`
	Crashed  bool      `json:"crashed,omitempty"`
}

// PoolInfo is one warm pool's gauges in the fleet metrics view.
type PoolInfo struct {
	// Name is the first creator's world name (pools are keyed by spec,
	// not name — this is a label, not an identity).
	Name string `json:"name,omitempty"`
	world.PoolStats
}

// Metrics is the fleet-wide view served at /1.0/metrics.
type Metrics struct {
	Worlds    int                `json:"worlds"`
	Created   uint64             `json:"worlds_created"`
	Closed    uint64             `json:"worlds_closed"`
	Sessions  uint64             `json:"sessions"`
	ExecErrs  uint64             `json:"exec_errs"`
	Draining  bool               `json:"draining"`
	Pools     []PoolInfo         `json:"pools,omitempty"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// poolSlot is one warm-world pool plus its create-once latch. The slot
// is inserted into the pool table under Server.mu, but the expensive
// pool construction (template boot + N forks) runs outside it, guarded
// by the slot's own once — concurrent first creates for the same spec
// wait for one construction instead of racing N.
type poolSlot struct {
	once sync.Once
	pool *world.Pool
	err  error
	name string // first creator's world name, for the metrics view
}

// Server hosts the world table. See the package comment for the lock
// ordering discipline.
type Server struct {
	cfg Config

	mu       sync.Mutex
	worlds   map[string]*entry
	journals map[string]string    // journal host path → holding world id
	pools    map[string]*poolSlot // canonical spec → warm pool
	nextID   uint64
	draining bool

	created  atomic.Uint64
	closed   atomic.Uint64
	sessions atomic.Uint64
	execErrs atomic.Uint64

	httpSrv *http.Server
}

// New builds a server from its config.
func New(cfg Config) (*Server, error) {
	if cfg.Register == nil {
		return nil, fmt.Errorf("worldd: config has no image registry hook")
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("worldd: state dir: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		worlds:   make(map[string]*entry),
		journals: make(map[string]string),
		pools:    make(map[string]*poolSlot),
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	return s, nil
}

// journalFile maps a wire journal key to a host file under StateDir.
// The key must be a bare file name: anything that could resolve
// elsewhere — separators, "." or "..", an absolute path — is rejected,
// so a tenant can only ever name a file the server dedicated to
// journals.
func (s *Server) journalFile(key string) (string, error) {
	if s.cfg.StateDir == "" {
		return "", fmt.Errorf("no journal storage configured")
	}
	if key != filepath.Base(key) || key == "." || key == ".." || strings.ContainsAny(key, `/\`) {
		return "", fmt.Errorf("key %q is not a bare file name", key)
	}
	return filepath.Join(s.cfg.StateDir, key+".journal"), nil
}

// releaseJournal returns a journal file to the pool. It must run only
// after the holding world's Close (or a failed Boot): the FileStore has
// the file open — final group commit included — until then, and a new
// world must never append to it concurrently. No-op for the empty path.
func (s *Server) releaseJournal(path string) {
	if path == "" {
		return
	}
	s.mu.Lock()
	delete(s.journals, path)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the API mux (exported so tests can drive the server
// without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /1.0/worlds", s.handleCreate)
	mux.HandleFunc("GET /1.0/worlds", s.handleList)
	mux.HandleFunc("GET /1.0/worlds/{id}", s.handleGet)
	mux.HandleFunc("POST /1.0/worlds/{id}/exec", s.handleExec)
	mux.HandleFunc("DELETE /1.0/worlds/{id}", s.handleDelete)
	mux.HandleFunc("GET /1.0/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on ln until Shutdown. It owns ln.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenUnix binds the API socket. The daemon owns its socket path: a
// stale socket file left by a dead predecessor is removed before bind
// (a unix socket never rebinds over an existing file).
func ListenUnix(path string) (net.Listener, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("worldd: socket: %w", err)
	}
	return net.Listen("unix", path)
}

// Shutdown drains the server: new creates are refused (503), in-flight
// requests finish, every world is closed (sessions run to completion
// first — Close serializes on the world lock). The listener closes
// before the worlds do, so a supervisor watching the socket sees the
// server gone only after it stopped accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	err := s.httpSrv.Shutdown(ctx)

	s.mu.Lock()
	var victims []*entry
	for _, e := range s.worlds {
		victims = append(victims, e)
	}
	s.worlds = make(map[string]*entry)
	s.mu.Unlock()

	for _, e := range victims {
		if cerr := e.w.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.releaseJournal(e.journal)
		s.closed.Add(1)
	}

	// Pools go last: their warm members and templates are not in the
	// world table, and closing a pool stops its background refiller.
	s.mu.Lock()
	slots := make([]*poolSlot, 0, len(s.pools))
	for _, slot := range s.pools {
		slots = append(slots, slot)
	}
	s.pools = make(map[string]*poolSlot)
	s.mu.Unlock()
	for _, slot := range slots {
		slot.once.Do(func() {}) // synchronize with construction
		if slot.pool == nil {
			continue
		}
		if cerr := slot.pool.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}

	s.logf("worldd: drained %d worlds", len(victims))
	return err
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reply writes a JSON success body.
func reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec world.Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	// The wire spec carries budgets and options; the server owns the
	// host-side wiring. Host paths never cross the socket: restores are
	// refused, and the journal field is a key mapped into the server's
	// own state directory.
	spec.Register = s.cfg.Register
	spec.Setup = append(append([]func(*kernel.Kernel) error{}, s.cfg.Setup...), spec.Setup...)
	spec.RestoreFrom = nil
	spec.Mirror = nil
	spec.OnQuarantine = nil
	if spec.RestorePath != "" {
		httpError(w, http.StatusBadRequest, "restore is not accepted over the wire")
		return
	}
	if spec.Pool > 0 {
		// Pooled tenants take the warm-fork fast path; file journals are
		// per-world host files and cannot back N identical members.
		if spec.JournalPath != "" {
			httpError(w, http.StatusBadRequest, "pooled worlds cannot use a file journal; use journal_mem")
			return
		}
		s.createFromPool(w, spec)
		return
	}
	jkey, jpath := spec.JournalPath, ""
	if jkey != "" {
		p, err := s.journalFile(jkey)
		if err != nil {
			httpError(w, http.StatusBadRequest, "journal: %v", err)
			return
		}
		jpath = p
		spec.JournalPath = p
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	// One live world per journal file: two FileStores appending to the
	// same host file would interleave frames and corrupt it beyond
	// recovery. The reservation is taken before Boot opens the file and
	// held until the holder's Close has closed it.
	if jpath != "" {
		if _, busy := s.journals[jpath]; busy {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "journal %q in use", jkey)
			return
		}
	}
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	if jpath != "" {
		s.journals[jpath] = id
	}
	s.mu.Unlock()

	// Boot outside the table lock: a journal replay can be slow, and
	// siblings must not wait on it.
	wd, err := world.Boot(spec)
	if err != nil {
		s.releaseJournal(jpath)
		httpError(w, http.StatusBadRequest, "boot: %v", err)
		return
	}
	e := &entry{ID: id, Name: spec.Name, Created: time.Now(), w: wd, journal: jpath}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		wd.Close()
		s.releaseJournal(jpath)
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.worlds[id] = e
	s.mu.Unlock()

	s.created.Add(1)
	s.logf("worldd: created %s (%s)", id, spec.Name)
	reply(w, http.StatusCreated, s.info(e))
}

// poolKey canonicalizes a sanitized wire spec for pool sharing: two
// creates whose specs differ only in name and pool size draw from the
// same pool. Only wire fields participate (the host-side func fields
// are json:"-" and identical for every tenant anyway).
func poolKey(spec world.Spec) string {
	spec.Name, spec.Pool = "", 0
	b, _ := json.Marshal(spec)
	return string(b)
}

// createFromPool serves a pooled create: the spec's pool is found (or
// built, once, by the first creator) and a member acquired from it — a
// warm copy-on-write fork, not a boot. The acquired world is a normal
// tenant from then on: it appears in the table, runs sessions, and
// DELETE closes it (members are consumed, never returned to the pool).
func (s *Server) createFromPool(w http.ResponseWriter, spec world.Spec) {
	key := poolKey(spec)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	slot := s.pools[key]
	if slot == nil {
		slot = &poolSlot{name: spec.Name}
		s.pools[key] = slot
	}
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	s.mu.Unlock()

	// Build the pool outside every server lock (template boot + N warm
	// forks); concurrent first creates wait here instead of racing.
	slot.once.Do(func() {
		slot.pool, slot.err = world.NewPool(spec, spec.Pool)
	})
	if slot.err != nil {
		// A failed construction does not poison the key forever.
		s.mu.Lock()
		if s.pools[key] == slot {
			delete(s.pools, key)
		}
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, "pool: %v", slot.err)
		return
	}

	wd, err := slot.pool.Acquire()
	if err != nil {
		httpError(w, http.StatusConflict, "pool: %v", err)
		return
	}
	e := &entry{ID: id, Name: spec.Name, Created: time.Now(), w: wd}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		wd.Close()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.worlds[id] = e
	s.mu.Unlock()

	s.created.Add(1)
	s.logf("worldd: created %s (%s) from pool", id, spec.Name)
	reply(w, http.StatusCreated, s.info(e))
}

// lookup finds a world entry by id, briefly under the table lock.
func (s *Server) lookup(id string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.worlds[id]
	return e, ok
}

func (s *Server) info(e *entry) Info {
	return Info{
		ID:       e.ID,
		Name:     e.Name,
		Created:  e.Created,
		Sessions: e.sessions.Load(),
		ExecErrs: e.execErrs.Load(),
		Crashed:  e.w.Crashed(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.worlds))
	for _, e := range s.worlds {
		entries = append(entries, e)
	}
	s.mu.Unlock()

	infos := make([]Info, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, s.info(e))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Created.Before(infos[j].Created) })
	reply(w, http.StatusOK, infos)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}
	reply(w, http.StatusOK, s.info(e))
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}
	var req world.ExecRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad exec request: %v", err)
		return
	}
	// The session runs outside every server lock; the world serializes
	// its own console.
	res, err := e.w.Exec(req)
	if err != nil {
		e.execErrs.Add(1)
		s.execErrs.Add(1)
		httpError(w, http.StatusConflict, "exec: %v", err)
		return
	}
	e.sessions.Add(1)
	s.sessions.Add(1)
	reply(w, http.StatusOK, res)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.worlds[id]
	if ok {
		delete(s.worlds, id)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}
	// Close outside the table lock: it waits for an in-flight session.
	// The journal reservation releases only after Close — a create
	// reusing the key between table removal and here gets 409, never a
	// second writer on a still-open file.
	err := e.w.Close()
	s.releaseJournal(e.journal)
	s.closed.Add(1)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "close: %v", err)
		return
	}
	s.logf("worldd: deleted %s", id)
	reply(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.worlds))
	for _, e := range s.worlds {
		entries = append(entries, e)
	}
	draining := s.draining
	s.mu.Unlock()

	s.mu.Lock()
	slots := make([]*poolSlot, 0, len(s.pools))
	for _, slot := range s.pools {
		slots = append(slots, slot)
	}
	s.mu.Unlock()
	var pools []PoolInfo
	for _, slot := range slots {
		slot.once.Do(func() {}) // synchronize with (and wait out) construction
		if slot.pool != nil {
			pools = append(pools, PoolInfo{Name: slot.name, PoolStats: slot.pool.Stats()})
		}
	}
	sort.Slice(pools, func(i, j int) bool { return pools[i].Name < pools[j].Name })

	// Per-world snapshots merge into one fleet view; worlds without a
	// telemetry registry still count, they just contribute no rows.
	var snaps []telemetry.Snapshot
	for _, e := range entries {
		if reg := e.w.Telemetry(); reg != nil {
			snaps = append(snaps, reg.Snapshot())
		}
	}
	reply(w, http.StatusOK, Metrics{
		Worlds:    len(entries),
		Created:   s.created.Load(),
		Closed:    s.closed.Load(),
		Sessions:  s.sessions.Load(),
		ExecErrs:  s.execErrs.Load(),
		Draining:  draining,
		Pools:     pools,
		Telemetry: telemetry.Merge(snaps),
	})
}

// Worlds reports the current table size (for tests and the drain log).
func (s *Server) Worlds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.worlds)
}
