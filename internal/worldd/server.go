// Package worldd is the multi-tenant world server: one process hosting
// many independent simulated machines (internal/world) behind a
// unix-socket HTTP/JSON API, in the shape of a machine-container daemon:
//
//	POST   /1.0/worlds           create a world from a wire world.Spec
//	GET    /1.0/worlds           list worlds
//	GET    /1.0/worlds/{id}      inspect one world
//	POST   /1.0/worlds/{id}/exec run one session (world.ExecRequest)
//	DELETE /1.0/worlds/{id}      close and remove a world
//	GET    /1.0/metrics          fleet-wide aggregated telemetry
//
// Each tenant's Spec carries its own budgets — rlimits applied to every
// process the world launches, circuit-breaker thresholds for its agent
// stack, an optional private journal — and the world layer enforces
// them, so one tenant exhausting its descriptor budget or quarantining
// its agents cannot perturb a sibling. Host paths never cross the
// socket: a wire spec's `journal` field is a bare key the server maps
// to a file inside its own state directory (one live world per file,
// enforced by a reservation held until Close), and `restore` is refused
// outright, so no tenant can make the daemon open, append to, or
// truncate a host file of its choosing. A wire spec with `pool` > 0 is
// served from a warm pool instead of a boot: worlds with identical
// specs (name and pool size aside) share one pool of pre-forked
// copy-on-write template clones, so tenant creation is a stack pop off
// the request path (see world.Pool); pooled members are otherwise
// ordinary tenants — they run sessions, stay fully isolated (COW
// unsharing means a write in one never appears in a sibling), and are
// closed, not recycled, on DELETE. Idle worlds run zero goroutines;
// the per-world cost is the kernel's in-memory filesystem plus whatever
// facilities the spec opted into (telemetry registries carry latency
// histograms and a flight ring, so memory-conscious fleets leave
// Telemetry off and rely on the server's own session counters).
//
// # Lock ordering
//
// Server.mu guards only the world table (id → entry) and the draining
// flag. Every world operation — Boot, Exec, Close — runs OUTSIDE
// Server.mu: handlers look the entry up under the lock, release it, and
// then call into the world, which serializes its own sessions on its
// own lock. Server.mu is therefore never held while a world lock is,
// and a slow session in one world never delays another tenant's create
// or delete. Deleting a world that is mid-session is safe for the same
// reason: Close blocks on the world lock until the session finishes,
// and a later Exec on the closed world fails cleanly.
package worldd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/telemetry"
	"interpose/internal/world"
)

// Config wires the server to its world template: the host-side hooks a
// wire Spec cannot carry.
type Config struct {
	// Register populates every world's image registry (required).
	Register func(*image.Registry)
	// Setup hooks prepended to every world's Setup (optional fixtures).
	Setup []func(*kernel.Kernel) error
	// StateDir is the directory holding tenant journal files. A wire
	// spec's `journal` field is a bare key, not a host path: the server
	// maps it to a file under this directory, so a tenant can never
	// name an arbitrary daemon-writable file. Empty refuses file-backed
	// journals (JournalMem still works).
	StateDir string
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Health tunes the per-world watchdog and recovery machinery
	// (health.go). The zero value enables it with defaults.
	Health HealthConfig
	// MaxInflight is the global concurrent-exec ceiling: requests past
	// it are shed with 429 before any decode or world work, so overload
	// degrades tenants' latency, never the daemon. 0 selects
	// DefaultMaxInflight; negative disables shedding.
	MaxInflight int
}

// DefaultMaxInflight is the global exec concurrency ceiling when the
// config leaves MaxInflight zero.
const DefaultMaxInflight = 1024

// entry is one hosted world. The session counter is the server's own
// (telemetry is per-spec optional, but "how busy is this tenant" must
// always be answerable). The world pointer is atomic because recovery
// swaps a rebuilt world in while handlers read it lock-free; the
// entry's own mutex serializes only structural transitions — recovery
// rebuild vs DELETE vs Shutdown — and is never taken under Server.mu.
type entry struct {
	ID      string
	Name    string
	Created time.Time

	mu   sync.Mutex // serializes rebuild / delete / shutdown
	gone bool       // set by DELETE and Shutdown; recovery stops

	w       atomic.Pointer[world.World]
	spec    world.Spec  // sanitized boot spec, reused by recovery rebuilds
	pool    *world.Pool // non-nil for pooled tenants (rebuild = Acquire)
	journal string      // reserved journal host path, "" if none

	sessions atomic.Uint64
	execErrs atomic.Uint64

	// Health state machine (health.go). The session-age pair tracks the
	// time since the last session completion while the world is busy:
	// inflight rises on every exec, and the start stamp resets on each
	// completion, so only a session that stops making progress ages.
	health       atomic.Int32
	reason       atomic.Pointer[string]
	recovering   atomic.Bool
	probing      atomic.Bool
	lastProbeNs  atomic.Int64
	sessInflight atomic.Int64
	sessStartNs  atomic.Int64
	restarts     atomic.Uint64
	rebuildNs    atomic.Int64 // total ns across successful rebuilds
	retryAtNs    atomic.Int64 // next recovery attempt, for Retry-After
	attempts     []time.Time  // recovery attempts in the budget window (guarded by mu)

	admit *admitState // nil when the spec declares no admission budget
}

// Info is the wire representation of one hosted world.
type Info struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Created  time.Time `json:"created"`
	Sessions uint64    `json:"sessions"`
	ExecErrs uint64    `json:"exec_errs,omitempty"`
	Crashed  bool      `json:"crashed,omitempty"`
	// Health is the watchdog's current verdict: healthy, suspect, dead,
	// or parked (health.go).
	Health string `json:"health"`
	// Reason is the latest health transition cause, empty when healthy.
	Reason string `json:"health_reason,omitempty"`
	// Restarts counts successful automatic recoveries.
	Restarts uint64 `json:"restarts,omitempty"`
	// RebuildNs is the mean nanoseconds per successful rebuild (the
	// teardown + boot/acquire cost, excluding detection and backoff).
	RebuildNs int64 `json:"rebuild_ns,omitempty"`
}

// PoolInfo is one warm pool's gauges in the fleet metrics view.
type PoolInfo struct {
	// Name is the first creator's world name (pools are keyed by spec,
	// not name — this is a label, not an identity).
	Name string `json:"name,omitempty"`
	world.PoolStats
}

// Metrics is the fleet-wide view served at /1.0/metrics.
type Metrics struct {
	Worlds   int    `json:"worlds"`
	Created  uint64 `json:"worlds_created"`
	Closed   uint64 `json:"worlds_closed"`
	Sessions uint64 `json:"sessions"`
	ExecErrs uint64 `json:"exec_errs"`
	Draining bool   `json:"draining"`
	// Shed counts execs rejected by the global queue-depth limiter,
	// Throttled those rejected by a tenant's own admission budget.
	Shed      uint64 `json:"shed"`
	Throttled uint64 `json:"throttled"`
	// Deaths/Recoveries/Parks count watchdog verdicts; Probes and
	// ProbeFails count liveness probes (never tenant sessions).
	Deaths     uint64 `json:"deaths"`
	Recoveries uint64 `json:"recoveries"`
	Parks      uint64 `json:"parks"`
	Probes     uint64 `json:"probes"`
	ProbeFails uint64 `json:"probe_fails"`
	// Health counts worlds per current health state.
	Health    map[string]int     `json:"health"`
	Pools     []PoolInfo         `json:"pools,omitempty"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// poolSlot is one warm-world pool plus its create-once latch. The slot
// is inserted into the pool table under Server.mu, but the expensive
// pool construction (template boot + N forks) runs outside it, guarded
// by the slot's own once — concurrent first creates for the same spec
// wait for one construction instead of racing N.
type poolSlot struct {
	once sync.Once
	pool *world.Pool
	err  error
	name string // first creator's world name, for the metrics view
}

// Server hosts the world table. See the package comment for the lock
// ordering discipline.
type Server struct {
	cfg Config

	mu       sync.Mutex
	worlds   map[string]*entry
	journals map[string]string    // journal host path → holding world id
	pools    map[string]*poolSlot // canonical spec → warm pool
	nextID   uint64
	draining bool

	created  atomic.Uint64
	closed   atomic.Uint64
	sessions atomic.Uint64
	execErrs atomic.Uint64

	// Resilience counters and machinery (health.go).
	deaths     atomic.Uint64
	recoveries atomic.Uint64
	parks      atomic.Uint64
	probes     atomic.Uint64
	probeFails atomic.Uint64
	shed       atomic.Uint64
	throttled  atomic.Uint64

	inflight    atomic.Int64 // concurrent exec handlers, for the shed gate
	maxInflight int64        // 0 = shedding disabled

	rng    atomic.Uint64 // seeded xorshift state for backoff jitter
	wdStop chan struct{}
	wdOnce sync.Once      // closes wdStop exactly once
	wdWG   sync.WaitGroup // the watchdog goroutine
	recWG  sync.WaitGroup // in-flight recovery loops

	httpSrv *http.Server
}

// New builds a server from its config and starts the health watchdog
// (unless disabled).
func New(cfg Config) (*Server, error) {
	if cfg.Register == nil {
		return nil, fmt.Errorf("worldd: config has no image registry hook")
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("worldd: state dir: %w", err)
		}
	}
	cfg.Health = cfg.Health.withDefaults()
	s := &Server{
		cfg:      cfg,
		worlds:   make(map[string]*entry),
		journals: make(map[string]string),
		pools:    make(map[string]*poolSlot),
		wdStop:   make(chan struct{}),
	}
	switch {
	case cfg.MaxInflight > 0:
		s.maxInflight = int64(cfg.MaxInflight)
	case cfg.MaxInflight == 0:
		s.maxInflight = DefaultMaxInflight
	}
	s.rng.Store(cfg.Health.Seed)
	s.httpSrv = &http.Server{Handler: s.Handler()}
	if !cfg.Health.Disabled {
		s.wdWG.Add(1)
		go s.watchdog()
	}
	return s, nil
}

// isDraining reports the drain flag, briefly under the table lock.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// journalFile maps a wire journal key to a host file under StateDir.
// The key must be a bare file name: anything that could resolve
// elsewhere — separators, "." or "..", an absolute path — is rejected,
// so a tenant can only ever name a file the server dedicated to
// journals.
func (s *Server) journalFile(key string) (string, error) {
	if s.cfg.StateDir == "" {
		return "", fmt.Errorf("no journal storage configured")
	}
	if key != filepath.Base(key) || key == "." || key == ".." || strings.ContainsAny(key, `/\`) {
		return "", fmt.Errorf("key %q is not a bare file name", key)
	}
	return filepath.Join(s.cfg.StateDir, key+".journal"), nil
}

// releaseJournal returns a journal file to the pool. It must run only
// after the holding world's Close (or a failed Boot): the FileStore has
// the file open — final group commit included — until then, and a new
// world must never append to it concurrently. No-op for the empty path.
func (s *Server) releaseJournal(path string) {
	if path == "" {
		return
	}
	s.mu.Lock()
	delete(s.journals, path)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the API mux (exported so tests can drive the server
// without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /1.0/worlds", s.handleCreate)
	mux.HandleFunc("GET /1.0/worlds", s.handleList)
	mux.HandleFunc("GET /1.0/worlds/{id}", s.handleGet)
	mux.HandleFunc("POST /1.0/worlds/{id}/exec", s.handleExec)
	mux.HandleFunc("DELETE /1.0/worlds/{id}", s.handleDelete)
	mux.HandleFunc("GET /1.0/metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on ln until Shutdown. It owns ln.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenUnix binds the API socket. The daemon owns its socket path: a
// stale socket file left by a dead predecessor is removed before bind
// (a unix socket never rebinds over an existing file).
func ListenUnix(path string) (net.Listener, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("worldd: socket: %w", err)
	}
	return net.Listen("unix", path)
}

// Shutdown drains the server: new creates are refused (503), the
// watchdog and any in-flight recovery loops stop (so no rebuild races
// the teardown), in-flight requests finish, every world is closed
// (sessions run to completion first — Close serializes on the world
// lock). The listener closes before the worlds do, so a supervisor
// watching the socket sees the server gone only after it stopped
// accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	// Stop the health machinery first: the watchdog quits its sweep
	// loop, and recovery loops abort at their next checkpoint (their
	// backoff sleeps select on wdStop, so this is prompt). After the
	// waits, no goroutine will install a fresh world behind our back.
	s.wdOnce.Do(func() { close(s.wdStop) })
	s.wdWG.Wait()
	s.recWG.Wait()

	err := s.httpSrv.Shutdown(ctx)

	s.mu.Lock()
	var victims []*entry
	for _, e := range s.worlds {
		victims = append(victims, e)
	}
	s.worlds = make(map[string]*entry)
	s.mu.Unlock()

	for _, e := range victims {
		e.mu.Lock()
		e.gone = true
		wd := e.w.Load()
		e.mu.Unlock()
		if wd != nil {
			if cerr := wd.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		s.releaseJournal(e.journal)
		s.closed.Add(1)
	}

	// Pools go last: their warm members and templates are not in the
	// world table, and closing a pool stops its background refiller.
	s.mu.Lock()
	slots := make([]*poolSlot, 0, len(s.pools))
	for _, slot := range s.pools {
		slots = append(slots, slot)
	}
	s.pools = make(map[string]*poolSlot)
	s.mu.Unlock()
	for _, slot := range slots {
		slot.once.Do(func() {}) // synchronize with construction
		if slot.pool == nil {
			continue
		}
		if cerr := slot.pool.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}

	s.logf("worldd: drained %d worlds", len(victims))
	return err
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps request bodies: specs and exec requests are small,
// and an unbounded body is an invitation to exhaust the daemon's heap.
const maxBodyBytes = 1 << 20

// decodeJSON decodes one request body strictly: unknown fields are
// rejected (a typoed spec field must not silently no-op) and the body
// is hard-capped at maxBodyBytes.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// retryable writes a 503 with a Retry-After hint: the caller should
// repeat the request — a replacement world is on its way (or, for a
// parked tenant, an operator is needed; retryable is false there).
func retryable(w http.ResponseWriter, afterSecs int64, canRetry bool, format string, args ...any) {
	if afterSecs < 1 {
		afterSecs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", afterSecs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":     fmt.Sprintf(format, args...),
		"retryable": canRetry,
	})
}

// deadRetrySecs derives a Retry-After from the recovery loop's next
// scheduled attempt.
func (e *entry) deadRetrySecs() int64 {
	if at := e.retryAtNs.Load(); at > 0 {
		if d := time.Until(time.Unix(0, at)); d > 0 {
			return int64(d.Seconds()) + 1
		}
	}
	return 1
}

// reply writes a JSON success body.
func reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec world.Spec
	if err := decodeJSON(w, r, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	// The wire spec carries budgets and options; the server owns the
	// host-side wiring. Host paths never cross the socket: restores are
	// refused, and the journal field is a key mapped into the server's
	// own state directory.
	spec.Register = s.cfg.Register
	spec.Setup = append(append([]func(*kernel.Kernel) error{}, s.cfg.Setup...), spec.Setup...)
	spec.RestoreFrom = nil
	spec.Mirror = nil
	spec.OnQuarantine = nil
	if spec.RestorePath != "" {
		httpError(w, http.StatusBadRequest, "restore is not accepted over the wire")
		return
	}
	if a := spec.Admission; a != nil && (a.MaxSessions < 0 || a.Rate < 0 || a.Burst < 0) {
		httpError(w, http.StatusBadRequest, "admission: negative budget")
		return
	}
	if spec.Pool > 0 {
		// Pooled tenants take the warm-fork fast path; file journals are
		// per-world host files and cannot back N identical members.
		if spec.JournalPath != "" {
			httpError(w, http.StatusBadRequest, "pooled worlds cannot use a file journal; use journal_mem")
			return
		}
		s.createFromPool(w, spec)
		return
	}
	jkey, jpath := spec.JournalPath, ""
	if jkey != "" {
		p, err := s.journalFile(jkey)
		if err != nil {
			httpError(w, http.StatusBadRequest, "journal: %v", err)
			return
		}
		jpath = p
		spec.JournalPath = p
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	// One live world per journal file: two FileStores appending to the
	// same host file would interleave frames and corrupt it beyond
	// recovery. The reservation is taken before Boot opens the file and
	// held until the holder's Close has closed it.
	if jpath != "" {
		if _, busy := s.journals[jpath]; busy {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "journal %q in use", jkey)
			return
		}
	}
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	if jpath != "" {
		s.journals[jpath] = id
	}
	s.mu.Unlock()

	// Boot outside the table lock: a journal replay can be slow, and
	// siblings must not wait on it.
	wd, err := world.Boot(spec)
	if err != nil {
		s.releaseJournal(jpath)
		httpError(w, http.StatusBadRequest, "boot: %v", err)
		return
	}
	e := &entry{ID: id, Name: spec.Name, Created: time.Now(), journal: jpath,
		spec: spec, admit: newAdmitState(spec.Admission)}
	e.w.Store(wd)
	s.adopt(e, wd)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		wd.Close()
		s.releaseJournal(jpath)
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.worlds[id] = e
	s.mu.Unlock()

	s.created.Add(1)
	s.logf("worldd: created %s (%s)", id, spec.Name)
	reply(w, http.StatusCreated, s.info(e))
}

// poolKey canonicalizes a sanitized wire spec for pool sharing: two
// creates whose specs differ only in name and pool size draw from the
// same pool. Only wire fields participate (the host-side func fields
// are json:"-" and identical for every tenant anyway).
func poolKey(spec world.Spec) string {
	spec.Name, spec.Pool = "", 0
	b, _ := json.Marshal(spec)
	return string(b)
}

// createFromPool serves a pooled create: the spec's pool is found (or
// built, once, by the first creator) and a member acquired from it — a
// warm copy-on-write fork, not a boot. The acquired world is a normal
// tenant from then on: it appears in the table, runs sessions, and
// DELETE closes it (members are consumed, never returned to the pool).
func (s *Server) createFromPool(w http.ResponseWriter, spec world.Spec) {
	key := poolKey(spec)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	slot := s.pools[key]
	if slot == nil {
		slot = &poolSlot{name: spec.Name}
		s.pools[key] = slot
	}
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	s.mu.Unlock()

	// Build the pool outside every server lock (template boot + N warm
	// forks); concurrent first creates wait here instead of racing.
	slot.once.Do(func() {
		slot.pool, slot.err = world.NewPool(spec, spec.Pool)
	})
	if slot.err != nil {
		// A failed construction does not poison the key forever.
		s.mu.Lock()
		if s.pools[key] == slot {
			delete(s.pools, key)
		}
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, "pool: %v", slot.err)
		return
	}

	wd, err := slot.pool.Acquire()
	if err != nil {
		httpError(w, http.StatusConflict, "pool: %v", err)
		return
	}
	e := &entry{ID: id, Name: spec.Name, Created: time.Now(),
		spec: spec, pool: slot.pool, admit: newAdmitState(spec.Admission)}
	e.w.Store(wd)
	s.adopt(e, wd)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		wd.Close()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.worlds[id] = e
	s.mu.Unlock()

	s.created.Add(1)
	s.logf("worldd: created %s (%s) from pool", id, spec.Name)
	reply(w, http.StatusCreated, s.info(e))
}

// lookup finds a world entry by id, briefly under the table lock.
func (s *Server) lookup(id string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.worlds[id]
	return e, ok
}

func (s *Server) info(e *entry) Info {
	in := Info{
		ID:       e.ID,
		Name:     e.Name,
		Created:  e.Created,
		Sessions: e.sessions.Load(),
		ExecErrs: e.execErrs.Load(),
		Health:   healthName(e.health.Load()),
		Reason:   e.healthReason(),
		Restarts: e.restarts.Load(),
	}
	if wd := e.w.Load(); wd != nil {
		in.Crashed = wd.Crashed()
	}
	if n := in.Restarts; n > 0 {
		in.RebuildNs = e.rebuildNs.Load() / int64(n)
	}
	return in
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.worlds))
	for _, e := range s.worlds {
		entries = append(entries, e)
	}
	s.mu.Unlock()

	infos := make([]Info, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, s.info(e))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Created.Before(infos[j].Created) })
	reply(w, http.StatusOK, infos)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}
	reply(w, http.StatusOK, s.info(e))
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}

	// Admission, cheapest gate first. The global queue-depth limiter
	// sheds before any decode or world work — overload must cost the
	// daemon nothing but an atomic add and a 429.
	if s.maxInflight > 0 {
		if s.inflight.Add(1) > s.maxInflight {
			s.inflight.Add(-1)
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer s.inflight.Add(-1)
	}

	switch e.health.Load() {
	case healthDead:
		retryable(w, e.deadRetrySecs(), true, "world %s is recovering", e.ID)
		return
	case healthParked:
		retryable(w, int64(s.cfg.Health.RestartWindow.Seconds()), false,
			"world %s is parked: %s", e.ID, e.healthReason())
		return
	}

	// The tenant's own budget: concurrent-session cap + token bucket.
	if a := e.admit; a != nil {
		ok, reason := a.acquire(time.Now())
		if !ok {
			s.throttled.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "admission: %s", reason)
			return
		}
		defer a.release()
	}

	var req world.ExecRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad exec request: %v", err)
		return
	}

	// The session runs outside every server lock; the world serializes
	// its own console. The inflight/start pair feeds the watchdog's
	// session-deadline check: the stamp resets on every completion, so
	// it measures time without progress, not queueing depth.
	wd := e.w.Load()
	e.sessInflight.Add(1)
	e.sessStartNs.CompareAndSwap(0, time.Now().UnixNano())
	res, err := wd.Exec(req)
	if e.sessInflight.Add(-1) == 0 {
		e.sessStartNs.Store(0)
	} else {
		e.sessStartNs.Store(time.Now().UnixNano())
	}
	if err != nil {
		if errors.Is(err, world.ErrDying) || wd.Dying() {
			// The watchdog condemned this world; a replacement is on
			// the way. Fail fast and retryable, not as a tenant error.
			retryable(w, e.deadRetrySecs(), true, "exec: %v", err)
			return
		}
		e.execErrs.Add(1)
		s.execErrs.Add(1)
		httpError(w, http.StatusConflict, "exec: %v", err)
		return
	}
	if res.Signal == "SIGKILL" && wd.Dying() {
		// The session was collateral of a health kill (Kill breaks a
		// wedged world loose with SIGKILL): report it retryable rather
		// than handing the tenant a result the program never produced.
		retryable(w, e.deadRetrySecs(), true, "session killed by world recovery")
		return
	}
	e.sessions.Add(1)
	s.sessions.Add(1)
	// Group commit at the session boundary: a journaled tenant's
	// completed sessions are durable, so crash recovery replays whole
	// sessions, never a torn one. A commit failure latches in the
	// writer, where the watchdog's journal check picks it up.
	if jw := wd.Kernel().Journal(); jw != nil {
		_ = jw.Commit()
	}
	reply(w, http.StatusOK, res)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.worlds[id]
	if ok {
		delete(s.worlds, id)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such world")
		return
	}
	// Close outside the table lock: it waits for an in-flight session.
	// The entry lock serializes against a recovery rebuild — if one is
	// mid-swap we wait for it and close the replacement; if one is
	// sleeping in backoff, the gone flag stops it. The journal
	// reservation releases only after Close — a create reusing the key
	// between table removal and here gets 409, never a second writer on
	// a still-open file.
	e.mu.Lock()
	e.gone = true
	wd := e.w.Load()
	e.mu.Unlock()
	var err error
	if wd != nil {
		err = wd.Close()
	}
	s.releaseJournal(e.journal)
	s.closed.Add(1)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "close: %v", err)
		return
	}
	s.logf("worldd: deleted %s", id)
	reply(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.worlds))
	for _, e := range s.worlds {
		entries = append(entries, e)
	}
	slots := make([]*poolSlot, 0, len(s.pools))
	for _, slot := range s.pools {
		slots = append(slots, slot)
	}
	draining := s.draining
	s.mu.Unlock()

	var pools []PoolInfo
	for _, slot := range slots {
		slot.once.Do(func() {}) // synchronize with (and wait out) construction
		if slot.pool != nil {
			pools = append(pools, PoolInfo{Name: slot.name, PoolStats: slot.pool.Stats()})
		}
	}
	sort.Slice(pools, func(i, j int) bool { return pools[i].Name < pools[j].Name })

	// Per-world snapshots merge into one fleet view; worlds without a
	// telemetry registry still count, they just contribute no rows.
	var snaps []telemetry.Snapshot
	health := make(map[string]int)
	for _, e := range entries {
		health[healthName(e.health.Load())]++
		if wd := e.w.Load(); wd != nil {
			if reg := wd.Telemetry(); reg != nil {
				snaps = append(snaps, reg.Snapshot())
			}
		}
	}
	// Load closed before created: each lifecycle increments created at
	// create time and closed strictly later, so this read order keeps
	// the closed <= created invariant under any interleaving — the
	// fleet view is never torn into an impossible state.
	closed := s.closed.Load()
	created := s.created.Load()
	reply(w, http.StatusOK, Metrics{
		Worlds:     len(entries),
		Created:    created,
		Closed:     closed,
		Sessions:   s.sessions.Load(),
		ExecErrs:   s.execErrs.Load(),
		Draining:   draining,
		Shed:       s.shed.Load(),
		Throttled:  s.throttled.Load(),
		Deaths:     s.deaths.Load(),
		Recoveries: s.recoveries.Load(),
		Parks:      s.parks.Load(),
		Probes:     s.probes.Load(),
		ProbeFails: s.probeFails.Load(),
		Health:     health,
		Pools:      pools,
		Telemetry:  telemetry.Merge(snaps),
	})
}

// Worlds reports the current table size (for tests and the drain log).
func (s *Server) Worlds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.worlds)
}
