package worldd_test

// Health watchdog, admission control, and request-hardening tests.
// The multi-tenant chaos soak lives in resilience_test.go; here each
// facility is exercised in isolation with deterministic seeds.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interpose/internal/apps"
	"interpose/internal/world"
	"interpose/internal/worldd"
)

// fastHealth is a watchdog config scaled for tests: millisecond sweeps
// and backoffs so a kill/recover cycle completes in tens of
// milliseconds instead of seconds.
func fastHealth() worldd.HealthConfig {
	return worldd.HealthConfig{
		ProbeInterval:   2 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		SessionDeadline: 20 * time.Millisecond,
		RestartBudget:   1 << 20,
		RestartWindow:   time.Hour,
		BackoffBase:     time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
		Seed:            42,
	}
}

// testServerCfg boots a server with an explicit config over httptest.
func testServerCfg(t *testing.T, cfg worldd.Config) *client {
	t.Helper()
	if cfg.Register == nil {
		cfg.Register = apps.Register
	}
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	srv, err := worldd.New(cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return &client{t: t, base: hs.URL, hc: hs.Client(), srv: srv}
}

// rawPost sends a body without the typed client, returning the full
// response (headers matter for Retry-After assertions).
func rawPost(t *testing.T, c *client, path string, body []byte) *http.Response {
	t.Helper()
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// execStatus runs a session and returns only the HTTP status.
func execStatus(c *client, id string, argv ...string) int {
	return c.do("POST", "/1.0/worlds/"+id+"/exec", world.ExecRequest{Argv: argv}, nil)
}

// waitHealthy polls a world until it reports healthy with at least
// minRestarts recoveries, failing after the deadline. Returns the Info.
func waitHealthy(t *testing.T, c *client, id string, minRestarts uint64, deadline time.Duration) worldd.Info {
	t.Helper()
	var last worldd.Info
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		// Fresh struct per poll: omitempty fields (crashed, restarts)
		// would otherwise carry stale values across decodes.
		var info worldd.Info
		if st := c.do("GET", "/1.0/worlds/"+id, nil, &info); st != http.StatusOK {
			t.Fatalf("get %s: status %d", id, st)
		}
		if info.Health == "healthy" && info.Restarts >= minRestarts {
			return info
		}
		last = info
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s did not recover: %+v", id, last)
	return last
}

// TestWatchdogRecoversCrashedWorld: an injected crash-freeze is
// detected (via the kernel crash hook, not just the sweep), the dead
// world is torn down, and a replacement boots — with the journal
// replayed, so state written before the poison survives.
func TestWatchdogRecoversCrashedWorld(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: fastHealth()})
	id := c.create(world.Spec{
		Name:        "crashy",
		Telemetry:   true,
		JournalPath: "crashy",
		Inject:      "seed=3,open:/boom=crash@1",
	})

	// Durable state before the poison: must survive the recovery.
	if res := c.exec(id, "sh", "-c", "echo kept > /kept"); res.Status != 0 {
		t.Fatalf("write: %+v", res)
	}

	// Poison: opening /boom crashes the machine. The session dies with
	// the world; the handler must answer retryable 503, not 200.
	if st := execStatus(c, id, "cat", "/boom"); st != http.StatusServiceUnavailable {
		t.Fatalf("poison session: status %d, want 503", st)
	}

	info := waitHealthy(t, c, id, 1, 5*time.Second)
	if info.Crashed {
		t.Fatalf("recovered world still crashed: %+v", info)
	}
	if res := c.exec(id, "cat", "/kept"); res.Status != 0 {
		t.Fatalf("journal state lost across recovery: %+v", res)
	}
	// Another poison round: recovery is repeatable.
	execStatus(c, id, "cat", "/boom")
	waitHealthy(t, c, id, 2, 5*time.Second)

	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Deaths < 2 || m.Recoveries < 2 {
		t.Fatalf("metrics: deaths=%d recoveries=%d, want >= 2 each", m.Deaths, m.Recoveries)
	}
	if m.Health["healthy"] != 1 {
		t.Fatalf("health map %v, want 1 healthy", m.Health)
	}
}

// TestWatchdogRecoversWedgedWorld: a session hung by a misbehaving
// agent trips the session deadline, the world is killed loose, and a
// fresh one replaces it. The wedged session itself fails retryable.
func TestWatchdogRecoversWedgedWorld(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: fastHealth()})
	id := c.create(world.Spec{
		Name:   "wedgy",
		Agents: []string{"faulty=seed=9,open:/wedge=hang:200ms@1"},
	})
	if res := c.exec(id, "echo", "ok"); res.Output != "ok\n" {
		t.Fatalf("pre-wedge echo: %+v", res)
	}
	start := time.Now()
	if st := execStatus(c, id, "cat", "/wedge"); st != http.StatusServiceUnavailable {
		t.Fatalf("wedged session: status %d, want 503", st)
	}
	waitHealthy(t, c, id, 1, 5*time.Second)
	if ttr := time.Since(start); ttr > 3*time.Second {
		t.Fatalf("time to recovery %v, want bounded", ttr)
	}
	if res := c.exec(id, "echo", "back"); res.Output != "back\n" {
		t.Fatalf("post-recovery echo: %+v", res)
	}
}

// TestPooledRecoveryUsesPool: a pooled tenant's replacement comes from
// the warm pool (a fork, not a boot) — observable as pool hits/misses
// moving while the world recovers.
func TestPooledRecoveryUsesPool(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: fastHealth()})
	id := c.create(world.Spec{
		Name:   "pooled",
		Pool:   2,
		Inject: "seed=11,open:/boom=crash@1",
	})
	var before worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &before)
	execStatus(c, id, "cat", "/boom")
	info := waitHealthy(t, c, id, 1, 5*time.Second)
	var after worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &after)
	if len(after.Pools) != 1 {
		t.Fatalf("pools section: %+v", after.Pools)
	}
	handed := after.Pools[0].Hits + after.Pools[0].Misses
	if handedBefore := before.Pools[0].Hits + before.Pools[0].Misses; handed <= handedBefore {
		t.Fatalf("recovery did not draw from the pool: %d -> %d", handedBefore, handed)
	}
	if res := c.exec(id, "echo", "pooled"); res.Output != "pooled\n" {
		t.Fatalf("post-recovery: %+v", res)
	}
	if info.RebuildNs <= 0 {
		t.Fatalf("rebuild time not recorded: %+v", info)
	}
}

// TestQuarantineMarksSuspect: a supervisor quarantine makes the world
// suspect (advisory — it keeps serving sessions).
func TestQuarantineMarksSuspect(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: fastHealth()})
	id := c.create(world.Spec{
		Name:      "panicky",
		Agents:    []string{"faulty=seed=5,open:/q=panic@1"},
		Supervise: &world.SuperviseSpec{Mode: "strict", TripThreshold: 1, Cooldown: -1},
	})
	// Trip the breaker: the panic is contained, the layer quarantined.
	c.exec(id, "cat", "/q")

	var info worldd.Info
	end := time.Now().Add(5 * time.Second)
	for time.Now().Before(end) {
		info = worldd.Info{}
		c.do("GET", "/1.0/worlds/"+id, nil, &info)
		if info.Health == "suspect" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if info.Health != "suspect" || !strings.Contains(info.Reason, "quarantined") {
		t.Fatalf("after quarantine: %+v", info)
	}
	// Suspect is advisory: sessions still run.
	if res := c.exec(id, "echo", "still-on"); res.Output != "still-on\n" {
		t.Fatalf("suspect world refused session: %+v", res)
	}
}

// TestRestartBudgetParksTenant: a crash-looping tenant consumes its
// restart budget and is parked — 503 with Retry-After, terminal until
// DELETE — without taking the daemon or its siblings down.
func TestRestartBudgetParksTenant(t *testing.T) {
	h := fastHealth()
	h.RestartBudget = 2
	c := testServerCfg(t, worldd.Config{Health: h})
	id := c.create(world.Spec{Name: "looper", Telemetry: true, Inject: "seed=13,open:/boom=crash@1"})
	sibling := c.create(world.Spec{Name: "sibling"})

	var info worldd.Info
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info = worldd.Info{}
		c.do("GET", "/1.0/worlds/"+id, nil, &info)
		if info.Health == "parked" {
			break
		}
		if info.Health == "healthy" {
			execStatus(c, id, "cat", "/boom") // next poison round
		}
		time.Sleep(time.Millisecond)
	}
	if info.Health != "parked" {
		t.Fatalf("tenant not parked: %+v", info)
	}

	// Parked: 503, Retry-After set, not retryable.
	body, _ := json.Marshal(world.ExecRequest{Argv: []string{"echo", "hi"}})
	resp := rawPost(t, c, "/1.0/worlds/"+id+"/exec", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("parked exec: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("parked 503 has no Retry-After")
	}
	var errBody struct {
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("decode parked body: %v", err)
	}
	if errBody.Retryable || !strings.Contains(errBody.Error, "parked") {
		t.Fatalf("parked body %+v", errBody)
	}

	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Parks < 1 || m.Health["parked"] != 1 {
		t.Fatalf("metrics after park: parks=%d health=%v", m.Parks, m.Health)
	}

	// Siblings unperturbed; DELETE reclaims the parked tenant.
	if res := c.exec(sibling, "echo", "fine"); res.Output != "fine\n" {
		t.Fatalf("sibling: %+v", res)
	}
	if st := c.do("DELETE", "/1.0/worlds/"+id, nil, nil); st != http.StatusOK {
		t.Fatalf("delete parked: status %d", st)
	}
}

// TestAdmissionSessionCap: max_sessions=1 sheds the second concurrent
// session with 429 while the first still runs.
func TestAdmissionSessionCap(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: worldd.HealthConfig{Disabled: true}})
	id := c.create(world.Spec{
		Name:      "capped",
		Admission: &world.AdmissionSpec{MaxSessions: 1},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.exec(id, "sleep", "1")
	}()
	// Wait until the long session is inside the handler, then collide.
	time.Sleep(200 * time.Millisecond)
	st := execStatus(c, id, "echo", "nope")
	wg.Wait()
	if st != http.StatusTooManyRequests {
		t.Fatalf("second concurrent session: status %d, want 429", st)
	}
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Throttled < 1 {
		t.Fatalf("throttled=%d, want >= 1", m.Throttled)
	}
	// The slot frees when the session ends.
	if res := c.exec(id, "echo", "ok"); res.Output != "ok\n" {
		t.Fatalf("after release: %+v", res)
	}
}

// TestAdmissionRateLimit: a one-token bucket admits the first session
// and throttles the immediate second.
func TestAdmissionRateLimit(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: worldd.HealthConfig{Disabled: true}})
	id := c.create(world.Spec{
		Name:      "limited",
		Admission: &world.AdmissionSpec{Rate: 0.001, Burst: 1},
	})
	if res := c.exec(id, "echo", "one"); res.Status != 0 {
		t.Fatalf("first session: %+v", res)
	}
	body, _ := json.Marshal(world.ExecRequest{Argv: []string{"echo", "two"}})
	resp := rawPost(t, c, "/1.0/worlds/"+id+"/exec", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("throttled 429 has no Retry-After")
	}
}

// TestGlobalShed: the queue-depth limiter rejects excess concurrent
// execs across tenants with 429 and counts them as shed.
func TestGlobalShed(t *testing.T) {
	c := testServerCfg(t, worldd.Config{
		Health:      worldd.HealthConfig{Disabled: true},
		MaxInflight: 1,
	})
	a := c.create(world.Spec{Name: "a"})
	b := c.create(world.Spec{Name: "b"})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.exec(a, "sleep", "1")
	}()
	time.Sleep(200 * time.Millisecond)
	var shed atomic.Uint64
	for i := 0; i < 5; i++ {
		if execStatus(c, b, "echo", "x") == http.StatusTooManyRequests {
			shed.Add(1)
		}
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request shed at MaxInflight=1")
	}
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Shed == 0 {
		t.Fatalf("shed counter: %+v", m.Shed)
	}
	// Capacity returns once the long session drains.
	if res := c.exec(b, "echo", "ok"); res.Output != "ok\n" {
		t.Fatalf("after drain: %+v", res)
	}
}

// TestStrictDecoding: unknown fields and oversized bodies are 400s, on
// both the create and exec paths.
func TestStrictDecoding(t *testing.T) {
	c := testServer(t)
	id := c.create(world.Spec{Name: "strict"})

	cases := []struct {
		path string
		body []byte
	}{
		{"/1.0/worlds", []byte(`{"name":"x","bogus_field":1}`)},
		{"/1.0/worlds", []byte(`{"name":"x","setup":"nope"}`)}, // json:"-" field is unknown on the wire
		{"/1.0/worlds/" + id + "/exec", []byte(`{"argv":["true"],"extra":true}`)},
		{"/1.0/worlds", []byte(fmt.Sprintf(`{"name":%q}`, strings.Repeat("x", 2<<20)))},
		{"/1.0/worlds/" + id + "/exec", []byte(fmt.Sprintf(`{"feed":%q,"argv":["cat"]}`, strings.Repeat("y", 2<<20)))},
	}
	for _, tc := range cases {
		resp := rawPost(t, c, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s (%d bytes): status %d, want 400",
				tc.path, len(tc.body), resp.StatusCode)
		}
	}
	// The world is untouched by the rejected requests.
	if res := c.exec(id, "echo", "intact"); res.Output != "intact\n" {
		t.Fatalf("world after bad requests: %+v", res)
	}
}

// TestMetricsUnderStorm: GET /1.0/metrics stays coherent while worlds
// are created, exercised, and deleted underneath it — every response
// decodes, closed never exceeds created, and the health and pools
// sections are present.
func TestMetricsUnderStorm(t *testing.T) {
	c := testServerCfg(t, worldd.Config{Health: fastHealth()})

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	var polls atomic.Uint64
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var m worldd.Metrics
			if st := c.do("GET", "/1.0/metrics", nil, &m); st != http.StatusOK {
				t.Errorf("metrics: status %d", st)
				return
			}
			if m.Closed > m.Created {
				t.Errorf("torn aggregation: closed %d > created %d", m.Closed, m.Created)
				return
			}
			if m.Health == nil {
				t.Error("metrics missing health section")
				return
			}
			polls.Add(1)
		}
	}()

	const tenants, cycles = 4, 12
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				spec := world.Spec{Name: fmt.Sprintf("storm%d", tn)}
				if tn%2 == 0 {
					spec.Pool = 2 // half the storm is pooled: the pools section must show up
				}
				var info worldd.Info
				if st := c.do("POST", "/1.0/worlds", spec, &info); st != http.StatusCreated {
					t.Errorf("create: status %d", st)
					return
				}
				c.exec(info.ID, "echo", "x")
				if st := c.do("DELETE", "/1.0/worlds/"+info.ID, nil, nil); st != http.StatusOK {
					t.Errorf("delete: status %d", st)
					return
				}
			}
		}(tn)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	if polls.Load() == 0 {
		t.Fatal("metrics poller never completed a poll")
	}
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if len(m.Pools) == 0 {
		t.Fatalf("pools section empty after pooled storm: %+v", m.Pools)
	}
	if m.Created != m.Closed || m.Worlds != 0 {
		t.Fatalf("storm did not settle: %+v", m)
	}
	want := uint64(tenants * cycles)
	if m.Sessions != want {
		t.Fatalf("sessions %d, want %d (probes must not count)", m.Sessions, want)
	}
}
