package worldd_test

import (
	"net/http"
	"testing"

	"interpose/internal/world"
	"interpose/internal/worldd"
)

// TestPooledTenantIsolation: tenants served from the same warm pool are
// full worlds — divergent writes stay private, and the standard
// lifecycle (exec, info, delete) works unchanged.
func TestPooledTenantIsolation(t *testing.T) {
	c := testServer(t)

	idA := c.create(world.Spec{Name: "pooled-a", Pool: 2})
	idB := c.create(world.Spec{Name: "pooled-b", Pool: 2})
	if idA == idB {
		t.Fatal("two pooled creates returned one world")
	}

	res := c.exec(idA, "sh", "-c", "echo alpha > /state")
	if res.Status != 0 {
		t.Fatalf("write a: status %d: %s", res.Status, res.Output)
	}
	res = c.exec(idB, "sh", "-c", "echo beta > /state")
	if res.Status != 0 {
		t.Fatalf("write b: status %d: %s", res.Status, res.Output)
	}
	res = c.exec(idA, "cat", "/state")
	if res.Status != 0 || res.Output != "alpha\n" {
		t.Fatalf("tenant a state: status %d output %q", res.Status, res.Output)
	}
	res = c.exec(idB, "cat", "/state")
	if res.Status != 0 || res.Output != "beta\n" {
		t.Fatalf("tenant b state: status %d output %q", res.Status, res.Output)
	}

	// A third create sees a fresh world, not either tenant's state.
	idC := c.create(world.Spec{Name: "pooled-c", Pool: 2})
	res = c.exec(idC, "cat", "/state")
	if res.Status == 0 {
		t.Fatalf("fresh pooled tenant inherited /state: %q", res.Output)
	}

	if st := c.do("DELETE", "/1.0/worlds/"+idA, nil, nil); st != http.StatusOK {
		t.Fatalf("delete pooled tenant: status %d", st)
	}
}

// TestPooledMetrics: the fleet metrics view carries each pool's gauges,
// and pooled tenants with telemetry contribute to the merged snapshot
// like any other tenant.
func TestPooledMetrics(t *testing.T) {
	c := testServer(t)

	id := c.create(world.Spec{Name: "pooled", Pool: 2, Telemetry: true})
	res := c.exec(id, "echo", "hi")
	if res.Status != 0 || res.Output != "hi\n" {
		t.Fatalf("echo: status %d output %q", res.Status, res.Output)
	}

	var m worldd.Metrics
	if st := c.do("GET", "/1.0/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if len(m.Pools) != 1 {
		t.Fatalf("pools in metrics: %d, want 1", len(m.Pools))
	}
	p := m.Pools[0]
	if p.Name != "pooled" {
		t.Fatalf("pool label %q", p.Name)
	}
	if p.Hits+p.Misses != 1 {
		t.Fatalf("pool acquires %d, want 1 (%+v)", p.Hits+p.Misses, p)
	}
	if p.Target != 2 {
		t.Fatalf("pool target %d, want 2 (%+v)", p.Target, p)
	}
	if m.Telemetry.Total == 0 {
		t.Fatalf("pooled tenant missing from merged telemetry: %+v", m.Telemetry)
	}

	// Two pooled tenants with the same spec share one pool; a different
	// spec gets its own.
	c.create(world.Spec{Name: "pooled2", Pool: 2, Telemetry: true})
	c.create(world.Spec{Name: "other", Pool: 2})
	if st := c.do("GET", "/1.0/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if len(m.Pools) != 2 {
		t.Fatalf("pools after three tenants: %d, want 2", len(m.Pools))
	}
}

// TestPooledRejectsFileJournal: a file journal cannot back N identical
// pool members; the server must refuse at create time, not fail later.
func TestPooledRejectsFileJournal(t *testing.T) {
	c := testServer(t)
	spec := world.Spec{Name: "bad", Pool: 2, JournalPath: "key"}
	if st := c.do("POST", "/1.0/worlds", spec, nil); st != http.StatusBadRequest {
		t.Fatalf("pooled file journal: status %d, want 400", st)
	}
	// JournalMem is the supported pooled journaling mode.
	id := c.create(world.Spec{Name: "memj", Pool: 1, JournalMem: true})
	res := c.exec(id, "sh", "-c", "echo ok > /state")
	if res.Status != 0 {
		t.Fatalf("journaled pooled write: status %d", res.Status)
	}
}

// TestPooledBreakerIsolation re-runs the breaker isolation scenario on
// pooled tenants: two tenants served from one warm pool get their own
// supervisors, so one tenant's contained failures and quarantine never
// perturb the sibling.
func TestPooledBreakerIsolation(t *testing.T) {
	c := testServer(t)
	spec := world.Spec{
		Name:      "pooled-victim",
		Pool:      2,
		Agents:    []string{"faulty=seed=1,write=panic@1"},
		Telemetry: true,
		Supervise: &world.SuperviseSpec{Mode: "strict", TripThreshold: 2},
	}
	victim := c.create(spec)
	spec.Name = "pooled-sibling"
	sibling := c.create(spec)

	for i := 0; i < 4; i++ {
		// The victim's writes panic and are contained; its sessions must
		// not kill the world. The sibling shares the victim's pool but
		// not its supervisor state: reads are uninterposed there, and
		// echo's own write panics are its own breaker's business.
		vres := c.exec(victim, "echo", "doomed")
		if !vres.Exited() {
			t.Fatalf("victim session killed: %+v", vres)
		}
	}
	// The sibling's world still runs sessions and its filesystem is its
	// own — the victim's containment did not leak across the pool.
	sres := c.exec(sibling, "cat", "/bin/echo")
	if !sres.Exited() {
		t.Fatalf("sibling session killed: %+v", sres)
	}

	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	var contained uint64
	for _, ctr := range m.Telemetry.Counters {
		if ctr.Name == "supervise.contained" {
			contained = ctr.Value
		}
	}
	if contained == 0 {
		t.Fatalf("no containment recorded fleet-wide: %+v", m.Telemetry.Counters)
	}
}
