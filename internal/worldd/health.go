// Health watchdogs and automatic world recovery: the fleet-level
// resilience layer that keeps worldd serving unattended while
// individual worlds crash, wedge, or corrupt their journals.
//
// # State machine
//
// Every hosted world carries a health state driven by one server-wide
// watchdog goroutine:
//
//	healthy ──(session over deadline, supervisor quarantine)──▶ suspect
//	healthy/suspect ──(crash-freeze, journal error, wedged
//	                   session, failed/timed-out probe)───────▶ dead
//	dead ──(rebuild succeeds)──▶ healthy
//	dead ──(restart budget exhausted)──▶ parked   (terminal until DELETE)
//
// Suspect is advisory — the world still serves sessions — and clears
// when an idle-time liveness probe succeeds with no quarantined layer
// left. Dead is acted on: the world is condemned (world.Kill, which
// fails new sessions fast and breaks a wedged one loose with SIGKILL),
// torn down via world.Close (sealing its journal), and rebuilt through
// the cheapest valid path — a warm-pool fork for pooled tenants, a
// journal replay + fsck-gated boot otherwise — under exponential
// backoff with deterministic jitter and a per-tenant restart budget.
//
// # Signals
//
// The watchdog invents no new instrumentation; it reads what the layers
// below already latch: the fault injector's crash-freeze
// (world.Crashed), the journal writer's first store failure
// (journal.Writer.Err — the EROFS latch), the supervisor's breaker
// state (Supervisor.QuarantinedLayers), the kernel crash hook (a push
// path installed at adopt so an injected crash is noticed the moment it
// fires, not a sweep later), session age against the deadline, and a
// periodic probe run through the normal Exec path while the world is
// idle. fsck failures surface as Boot errors on the rebuild path and
// consume restart budget like any other failed attempt.
//
// # Lock ordering
//
// Health code takes entry.mu (the per-world structural lock serializing
// recovery against DELETE and Shutdown) and never Server.mu inside it;
// Server.mu remains a leaf that guards only the world table. World and
// kernel locks order below entry.mu as usual. declareDead and the crash
// hook take no locks at all — state transitions are CAS on atomics — so
// they are safe from guest syscall goroutines.
package worldd

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/telemetry"
	"interpose/internal/world"
)

// HealthConfig tunes the watchdog. The zero value selects the defaults
// below; Disabled turns the whole facility off (no watchdog goroutine,
// no probes, no recovery — the pre-health server behavior).
type HealthConfig struct {
	// Disabled turns the watchdog off entirely.
	Disabled bool
	// ProbeInterval is the watchdog sweep period and the idle-probe
	// cadence (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one liveness probe (default 1s). A probe
	// that neither completes nor fails within it declares the world
	// dead — unless a tenant session snuck in, in which case the
	// session-deadline path owns the verdict.
	ProbeTimeout time.Duration
	// ProbeArgv is the probe session (default ["true"]).
	ProbeArgv []string
	// SessionDeadline marks a tenant session suspect when it has run
	// past the deadline and dead past twice it (default 30s; 0 disables
	// the deadline checks).
	SessionDeadline time.Duration
	// RestartBudget is the number of recovery attempts allowed within
	// RestartWindow before the tenant is parked (default 5).
	RestartBudget int
	// RestartWindow is the sliding budget window (default 1m).
	RestartWindow time.Duration
	// BackoffBase and BackoffMax shape the exponential recovery backoff
	// (defaults 25ms and 2s); each attempt waits base·2^n, capped, with
	// ±50% deterministic jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the jitter generator (0 = fixed default), so tests and
	// the chaos soak replay identical schedules.
	Seed uint64
}

// withDefaults fills the zero fields.
func (h HealthConfig) withDefaults() HealthConfig {
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = time.Second
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = time.Second
	}
	if len(h.ProbeArgv) == 0 {
		h.ProbeArgv = []string{"true"}
	}
	if h.SessionDeadline == 0 {
		h.SessionDeadline = 30 * time.Second
	}
	if h.RestartBudget <= 0 {
		h.RestartBudget = 5
	}
	if h.RestartWindow <= 0 {
		h.RestartWindow = time.Minute
	}
	if h.BackoffBase <= 0 {
		h.BackoffBase = 25 * time.Millisecond
	}
	if h.BackoffMax <= 0 {
		h.BackoffMax = 2 * time.Second
	}
	if h.Seed == 0 {
		h.Seed = 0x9e3779b97f4a7c15
	}
	return h
}

// Health states, in escalation order. The zero value is healthy so a
// fresh entry needs no initialization.
const (
	healthHealthy int32 = iota
	healthSuspect
	healthDead
	healthParked
)

// healthName renders a state for the wire and the metrics view.
func healthName(st int32) string {
	switch st {
	case healthHealthy:
		return "healthy"
	case healthSuspect:
		return "suspect"
	case healthDead:
		return "dead"
	case healthParked:
		return "parked"
	}
	return fmt.Sprintf("state%d", st)
}

// setReason records the latest health transition cause ("" clears).
func (e *entry) setReason(r string) {
	if r == "" {
		e.reason.Store(nil)
		return
	}
	e.reason.Store(&r)
}

func (e *entry) healthReason() string {
	if p := e.reason.Load(); p != nil {
		return *p
	}
	return ""
}

// toSuspect marks a healthy world suspect (advisory; it keeps serving).
func (e *entry) toSuspect(reason string) {
	if e.health.CompareAndSwap(healthHealthy, healthSuspect) {
		e.setReason(reason)
	}
}

// healthGauges feeds the per-world health rows into /dev/metrics and
// agentrun -stats via the kernel's extra-gauge chain (installed by
// adopt, alongside any pool gauges).
func (e *entry) healthGauges() []telemetry.NamedCounter {
	return []telemetry.NamedCounter{
		{Name: "health.state", Value: uint64(e.health.Load())},
		{Name: "health.restarts", Value: e.restarts.Load()},
	}
}

// adopt wires a world (freshly created or just rebuilt) into the health
// facility: the push-path crash hook and the health gauge rows.
func (s *Server) adopt(e *entry, w *world.World) {
	if s.cfg.Health.Disabled {
		return
	}
	k := w.Kernel()
	k.SetCrashHook(func() { s.declareDead(e, "crash-freeze") })
	k.AddExtraGauges(e.healthGauges)
}

// rand is a lock-free xorshift64 over the server's seeded state: the
// jitter source (never the global generator, so runs are replayable).
func (s *Server) rand() uint64 {
	for {
		old := s.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// backoff returns the wait before recovery attempt n: base·2^n capped
// at max, then jittered to [d/2, d) so simultaneous recoveries across
// tenants do not stampede the boot path in lockstep.
func (s *Server) backoff(attempt int) time.Duration {
	h := s.cfg.Health
	d := h.BackoffMax
	if attempt < 20 {
		if b := h.BackoffBase << uint(attempt); b < d {
			d = b
		}
	}
	if d <= 1 {
		return d
	}
	half := uint64(d / 2)
	return time.Duration(half + s.rand()%half)
}

// watchdog is the server's single sweep loop, started by New unless
// health is disabled and stopped by Shutdown before worlds close.
func (s *Server) watchdog() {
	defer s.wdWG.Done()
	t := time.NewTicker(s.cfg.Health.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.wdStop:
			return
		case now := <-t.C:
			s.sweep(now)
		}
	}
}

// sweep evaluates every hosted world once. The table is snapshotted
// under Server.mu; all verdicts run outside it.
func (s *Server) sweep(now time.Time) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.worlds))
	for _, e := range s.worlds {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		s.check(e, now)
	}
}

// check runs the state machine for one world.
func (s *Server) check(e *entry, now time.Time) {
	switch e.health.Load() {
	case healthParked:
		return
	case healthDead:
		// Normally declareDead already spawned the recovery; re-kick in
		// case a previous loop aborted (e.g. a drain that was undone by
		// a test restarting the server is impossible, but a failed CAS
		// race is not).
		s.startRecovery(e)
		return
	}
	w := e.w.Load()
	if w == nil {
		return
	}
	if w.Crashed() {
		s.declareDead(e, "crash-freeze")
		return
	}
	k := w.Kernel()
	if jw := k.Journal(); jw != nil {
		if err := jw.Err(); err != nil {
			s.declareDead(e, "journal: "+err.Error())
			return
		}
	}
	h := s.cfg.Health
	if start := e.sessStartNs.Load(); start != 0 && h.SessionDeadline > 0 {
		age := now.Sub(time.Unix(0, start))
		if age > 2*h.SessionDeadline {
			s.declareDead(e, "session wedged")
			return
		}
		if age > h.SessionDeadline {
			e.toSuspect("session over deadline")
			return
		}
	}
	if sup := k.Supervisor(); sup != nil {
		if q := sup.QuarantinedLayers(); len(q) > 0 {
			e.toSuspect("quarantined: " + strings.Join(q, ","))
			// A quarantined world still answers probes; fall through so
			// a wedged one is caught below.
		}
	}
	if e.sessInflight.Load() == 0 &&
		now.UnixNano()-e.lastProbeNs.Load() >= int64(h.ProbeInterval) {
		s.probe(e, w)
	}
}

// probe runs one liveness session through the normal Exec path, off the
// watchdog goroutine so a wedged world cannot stall the sweep. Probes
// bypass the HTTP handler and count into the probe counters only, never
// the tenant's session counters.
func (s *Server) probe(e *entry, w *world.World) {
	if !e.probing.CompareAndSwap(false, true) {
		return
	}
	e.lastProbeNs.Store(time.Now().UnixNano())
	h := s.cfg.Health
	go func() {
		defer e.probing.Store(false)
		done := make(chan error, 1)
		go func() { done <- runProbe(w, h.ProbeArgv) }()
		select {
		case err := <-done:
			s.probes.Add(1)
			if err == nil {
				e.probeOK(w)
				return
			}
			s.probeFails.Add(1)
			if w.Dying() || e.w.Load() != w {
				return // already condemned or replaced
			}
			s.declareDead(e, "probe: "+err.Error())
		case <-time.After(h.ProbeTimeout):
			s.probes.Add(1)
			s.probeFails.Add(1)
			// Only the idle case is the probe's verdict: if a tenant
			// session arrived while the probe was queued, the session
			// deadline owns the wedge decision.
			if e.sessInflight.Load() == 0 && e.w.Load() == w {
				s.declareDead(e, "probe timeout")
			}
		}
	}()
}

// runProbe executes the probe session and converts any non-clean result
// into an error.
func runProbe(w *world.World, argv []string) error {
	res, err := w.Exec(world.ExecRequest{Argv: argv})
	if err != nil {
		return err
	}
	if !res.Exited() {
		return fmt.Errorf("probe killed by %s", res.Signal)
	}
	if res.Status != 0 {
		return fmt.Errorf("probe exit status %d", res.Status)
	}
	return nil
}

// probeOK clears an advisory suspect state once the cause is gone.
func (e *entry) probeOK(w *world.World) {
	if e.health.Load() != healthSuspect {
		return
	}
	if sup := w.Kernel().Supervisor(); sup != nil && len(sup.QuarantinedLayers()) > 0 {
		return // still quarantined; stay suspect
	}
	if e.health.CompareAndSwap(healthSuspect, healthHealthy) {
		e.setReason("")
	}
}

// declareDead moves a world to dead (idempotent — late signals for an
// already-dead or parked world are dropped), condemns it so in-flight
// and queued sessions fail fast, and spawns the recovery loop. Safe
// from any goroutine, including guest syscall goroutines via the crash
// hook: it takes no locks.
func (s *Server) declareDead(e *entry, reason string) {
	for {
		st := e.health.Load()
		if st == healthDead || st == healthParked {
			return
		}
		if e.health.CompareAndSwap(st, healthDead) {
			break
		}
	}
	e.setReason(reason)
	s.deaths.Add(1)
	if w := e.w.Load(); w != nil {
		if reg := w.Telemetry(); reg != nil {
			reg.RecordFileEvent(0, "health.dead", reason, "", -1, 0)
		}
		w.Kill()
	}
	s.logf("worldd: %s dead: %s", e.ID, reason)
	s.startRecovery(e)
}

// startRecovery spawns the recovery loop for a dead world, once.
func (s *Server) startRecovery(e *entry) {
	if s.cfg.Health.Disabled || s.isDraining() {
		return
	}
	if !e.recovering.CompareAndSwap(false, true) {
		return
	}
	s.recWG.Add(1)
	go s.recoverLoop(e)
}

// recoverLoop rebuilds one dead world: backoff (jittered, exponential),
// budget check, teardown of the old incarnation (Kill + Close — the
// close seals the journal), then the cheapest valid rebuild path — a
// warm-pool acquire for pooled tenants, a journal-replaying fsck-gated
// Boot otherwise. A failed rebuild consumes budget and retries; an
// exhausted budget parks the tenant (terminal until DELETE). The loop
// aborts cleanly on drain or DELETE.
func (s *Server) recoverLoop(e *entry) {
	defer s.recWG.Done()
	defer e.recovering.Store(false)
	h := s.cfg.Health
	for attempt := 0; ; attempt++ {
		if s.isDraining() {
			return
		}
		d := s.backoff(attempt)
		e.retryAtNs.Store(time.Now().Add(d).UnixNano())
		if d > 0 {
			select {
			case <-time.After(d):
			case <-s.wdStop:
				return
			}
		}
		e.mu.Lock()
		if e.gone || s.isDraining() {
			e.mu.Unlock()
			return
		}
		if !e.noteAttemptLocked(time.Now(), h) {
			// Seal the corpse before parking: a parked tenant lingers
			// until DELETE, and its journal file must not stay open
			// (Close is idempotent, so racing an earlier teardown is
			// fine).
			if old := e.w.Load(); old != nil {
				old.Kill()
				old.Close()
			}
			s.parkLocked(e)
			e.mu.Unlock()
			return
		}
		old := e.w.Load()
		start := time.Now()
		if old != nil {
			old.Kill()
			old.Close()
		}
		var nw *world.World
		var err error
		if e.pool != nil {
			nw, err = e.pool.Acquire()
		} else {
			nw, err = world.Boot(e.spec)
		}
		if err != nil {
			e.mu.Unlock()
			s.logf("worldd: %s rebuild failed: %v", e.ID, err)
			continue
		}
		s.adopt(e, nw)
		e.w.Store(nw)
		e.restarts.Add(1)
		e.rebuildNs.Add(int64(time.Since(start)))
		e.setReason("")
		e.health.Store(healthHealthy)
		e.mu.Unlock()
		s.recoveries.Add(1)
		if reg := nw.Telemetry(); reg != nil {
			reg.RecordFileEvent(0, "health.recovered", e.ID, "", -1, 0)
		}
		s.logf("worldd: %s recovered (restart %d)", e.ID, e.restarts.Load())
		return
	}
}

// noteAttemptLocked records one recovery attempt and reports whether
// the budget allows it. Caller holds e.mu.
func (e *entry) noteAttemptLocked(now time.Time, h HealthConfig) bool {
	cut := now.Add(-h.RestartWindow)
	kept := e.attempts[:0]
	for _, t := range e.attempts {
		if t.After(cut) {
			kept = append(kept, t)
		}
	}
	e.attempts = append(kept, now)
	return len(e.attempts) <= h.RestartBudget
}

// parkLocked retires a tenant whose restart budget is exhausted: the
// state is terminal until DELETE, sessions get 503 + Retry-After, and
// the event is recorded on the (dead) world's flight ring when it has
// one. Caller holds e.mu.
func (s *Server) parkLocked(e *entry) {
	e.health.Store(healthParked)
	e.setReason("restart budget exhausted")
	s.parks.Add(1)
	if w := e.w.Load(); w != nil {
		if reg := w.Telemetry(); reg != nil {
			reg.RecordFileEvent(0, "health.parked", e.ID, "", -1, 0)
		}
	}
	s.logf("worldd: %s parked: restart budget exhausted", e.ID)
}

// admitState enforces one tenant's AdmissionSpec at the exec front
// door: a concurrent-session cap (lock-free) and a token bucket
// (refilled lazily under a per-tenant mutex — two atomics and a short
// critical section, nothing shared across tenants).
type admitState struct {
	max   int64
	rate  float64
	burst float64

	inflight atomic.Int64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newAdmitState builds the enforcement state, or nil when the spec
// declares no enforceable budget.
func newAdmitState(a *world.AdmissionSpec) *admitState {
	if a == nil || (a.MaxSessions <= 0 && a.Rate <= 0) {
		return nil
	}
	st := &admitState{max: int64(a.MaxSessions), rate: a.Rate}
	if a.Rate > 0 {
		st.burst = float64(a.Burst)
		if st.burst < 1 {
			st.burst = math.Ceil(a.Rate)
			if st.burst < 1 {
				st.burst = 1
			}
		}
		st.tokens = st.burst
		st.last = time.Now()
	}
	return st
}

// acquire admits or rejects one session. On true the caller must
// release() when the session ends.
func (a *admitState) acquire(now time.Time) (bool, string) {
	if a.max > 0 && a.inflight.Add(1) > a.max {
		a.inflight.Add(-1)
		return false, "concurrent session cap reached"
	}
	if a.rate > 0 {
		a.mu.Lock()
		a.tokens += now.Sub(a.last).Seconds() * a.rate
		if a.tokens > a.burst {
			a.tokens = a.burst
		}
		a.last = now
		if a.tokens < 1 {
			a.mu.Unlock()
			if a.max > 0 {
				a.inflight.Add(-1)
			}
			return false, "rate limit exceeded"
		}
		a.tokens--
		a.mu.Unlock()
	}
	return true, ""
}

// release returns a concurrent-session slot.
func (a *admitState) release() {
	if a.max > 0 {
		a.inflight.Add(-1)
	}
}
