package worldd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"interpose/internal/apps"
	"interpose/internal/world"
	"interpose/internal/worldd"
)

// testServer boots a server over httptest and returns a small typed
// client for it.
func testServer(t *testing.T) *client {
	t.Helper()
	srv, err := worldd.New(worldd.Config{Register: apps.Register, StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return &client{t: t, base: hs.URL, hc: hs.Client(), srv: srv}
}

type client struct {
	t    *testing.T
	base string
	hc   *http.Client
	srv  *worldd.Server
}

// do sends a JSON request and decodes a JSON response, returning the
// HTTP status.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatalf("request: %v", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// create makes a world and returns its id, failing on error.
func (c *client) create(spec world.Spec) string {
	c.t.Helper()
	var info worldd.Info
	if st := c.do("POST", "/1.0/worlds", spec, &info); st != http.StatusCreated {
		c.t.Fatalf("create: status %d", st)
	}
	return info.ID
}

// exec runs a session, failing on transport (not session) errors.
func (c *client) exec(id string, argv ...string) world.ExecResult {
	c.t.Helper()
	var res world.ExecResult
	if st := c.do("POST", "/1.0/worlds/"+id+"/exec", world.ExecRequest{Argv: argv}, &res); st != http.StatusOK {
		c.t.Fatalf("exec %v: status %d", argv, st)
	}
	return res
}

func TestWorldLifecycleAPI(t *testing.T) {
	c := testServer(t)

	id := c.create(world.Spec{Name: "tenant1", Telemetry: true})
	res := c.exec(id, "echo", "hello")
	if res.Status != 0 || res.Output != "hello\n" {
		t.Fatalf("echo: status %d output %q", res.Status, res.Output)
	}

	var info worldd.Info
	if st := c.do("GET", "/1.0/worlds/"+id, nil, &info); st != http.StatusOK {
		t.Fatalf("get: status %d", st)
	}
	if info.Sessions != 1 || info.Name != "tenant1" {
		t.Fatalf("info %+v", info)
	}

	var list []worldd.Info
	if st := c.do("GET", "/1.0/worlds", nil, &list); st != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: status %d, %d worlds", st, len(list))
	}

	var m worldd.Metrics
	if st := c.do("GET", "/1.0/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Worlds != 1 || m.Sessions != 1 {
		t.Fatalf("metrics %+v", m)
	}
	// The tenant had telemetry on, so the fleet view carries its rows.
	if m.Telemetry.Total == 0 || len(m.Telemetry.Syscalls) == 0 {
		t.Fatalf("merged telemetry empty: %+v", m.Telemetry)
	}

	if st := c.do("DELETE", "/1.0/worlds/"+id, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	if st := c.do("DELETE", "/1.0/worlds/"+id, nil, nil); st != http.StatusNotFound {
		t.Fatalf("second delete: status %d", st)
	}
	if st := c.do("POST", "/1.0/worlds/"+id+"/exec", world.ExecRequest{Argv: []string{"echo"}}, nil); st != http.StatusNotFound {
		t.Fatalf("exec after delete: status %d", st)
	}
	if c.srv.Worlds() != 0 {
		t.Fatalf("%d worlds left in table", c.srv.Worlds())
	}
}

func TestBadRequests(t *testing.T) {
	c := testServer(t)
	req, _ := http.NewRequest("POST", c.base+"/1.0/worlds", strings.NewReader("{not json"))
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d", resp.StatusCode)
	}

	id := c.create(world.Spec{})
	var body map[string]string
	if st := c.do("POST", "/1.0/worlds/"+id+"/exec", world.ExecRequest{}, &body); st != http.StatusConflict {
		t.Fatalf("empty argv: status %d", st)
	}
	if !strings.Contains(body["error"], "argv") {
		t.Fatalf("error body %+v", body)
	}
}

// TestCreateExecDestroyStorm is the concurrency contract under -race:
// many tenants creating, running sessions in, and destroying worlds at
// once, with list and metrics readers in the mix. Every session must
// come back with its own tenant's output.
func TestCreateExecDestroyStorm(t *testing.T) {
	c := testServer(t)
	const tenants = 16
	const cycles = 4

	var wg sync.WaitGroup
	errs := make(chan error, tenants*cycles)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < cycles; j++ {
				name := fmt.Sprintf("t%d-%d", i, j)
				var info worldd.Info
				if st := c.do("POST", "/1.0/worlds", world.Spec{Name: name, Telemetry: i%2 == 0}, &info); st != http.StatusCreated {
					errs <- fmt.Errorf("%s: create status %d", name, st)
					return
				}
				var res world.ExecResult
				if st := c.do("POST", "/1.0/worlds/"+info.ID+"/exec",
					world.ExecRequest{Argv: []string{"echo", name}}, &res); st != http.StatusOK {
					errs <- fmt.Errorf("%s: exec status %d", name, st)
					return
				}
				if res.Output != name+"\n" {
					errs <- fmt.Errorf("%s: cross-tenant output %q", name, res.Output)
					return
				}
				var m worldd.Metrics
				c.do("GET", "/1.0/metrics", nil, &m)
				if st := c.do("DELETE", "/1.0/worlds/"+info.ID, nil, nil); st != http.StatusOK {
					errs <- fmt.Errorf("%s: delete status %d", name, st)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c.srv.Worlds() != 0 {
		t.Fatalf("%d worlds left after storm", c.srv.Worlds())
	}
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Sessions != tenants*cycles || m.Created != tenants*cycles || m.Closed != tenants*cycles {
		t.Fatalf("metrics after storm: %+v", m)
	}
}

// TestTenantIsolationBreaker: one tenant's panicking agent trips its
// circuit breaker; sibling sessions before, during, and after must be
// unperturbed.
func TestTenantIsolationBreaker(t *testing.T) {
	c := testServer(t)
	victim := c.create(world.Spec{
		Name:      "victim",
		Agents:    []string{"faulty=seed=1,write=panic@1"},
		Telemetry: true,
		Supervise: &world.SuperviseSpec{Mode: "strict", TripThreshold: 2},
	})
	sibling := c.create(world.Spec{Name: "sibling", Telemetry: true})

	for i := 0; i < 4; i++ {
		// Every victim write panics and is contained; the session itself
		// must not kill the server or the world.
		vres := c.exec(victim, "echo", "doomed")
		if !vres.Exited() {
			t.Fatalf("victim session killed: %+v", vres)
		}
		sres := c.exec(sibling, "echo", "fine")
		if sres.Status != 0 || sres.Output != "fine\n" {
			t.Fatalf("sibling perturbed: status %d output %q", sres.Status, sres.Output)
		}
	}

	// The breaker tripped in the victim's world (visible fleet-wide),
	// and the sibling's telemetry carries no supervision events.
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	var contained, trips uint64
	for _, ctr := range m.Telemetry.Counters {
		switch ctr.Name {
		case "supervise.contained":
			contained = ctr.Value
		case "supervise.trips":
			trips = ctr.Value
		}
	}
	if contained == 0 || trips == 0 {
		t.Fatalf("no containment recorded fleet-wide: %+v", m.Telemetry.Counters)
	}
}

// TestTenantIsolationRlimit: a tenant with an exhausted descriptor
// budget fails its own sessions only.
func TestTenantIsolationRlimit(t *testing.T) {
	c := testServer(t)
	// Console occupies fds 0-2; a ceiling of 3 leaves no room to open.
	broke := c.create(world.Spec{Name: "broke", Rlimits: map[string]uint64{"nofile": 3}})
	rich := c.create(world.Spec{Name: "rich"})

	bres := c.exec(broke, "cat", "/bin/echo")
	if bres.Status == 0 {
		t.Fatalf("broke tenant opened a file under nofile=3: %q", bres.Output)
	}
	rres := c.exec(rich, "cat", "/bin/echo")
	if rres.Status != 0 {
		t.Fatalf("rich tenant perturbed: status %d: %s", rres.Status, rres.Output)
	}
}

// TestTenantIsolationFaults: an injected fault plan in one tenant's
// kernel must not leak into a sibling's.
func TestTenantIsolationFaults(t *testing.T) {
	c := testServer(t)
	faulted := c.create(world.Spec{Name: "faulted", Inject: "seed=3,read=EIO@1"})
	clean := c.create(world.Spec{Name: "clean"})

	fres := c.exec(faulted, "cat", "/bin/echo")
	if fres.Status == 0 {
		t.Fatalf("faulted tenant read under read=EIO@1: %q", fres.Output)
	}
	cres := c.exec(clean, "cat", "/bin/echo")
	if cres.Status != 0 {
		t.Fatalf("clean tenant perturbed: status %d", cres.Status)
	}
}

// TestTenantJournalIsolation: two tenants journaling to their own keys
// recover their own state and never each other's. The wire field is a
// key — the server keeps the backing files in its own state directory.
func TestTenantJournalIsolation(t *testing.T) {
	c := testServer(t)

	a := c.create(world.Spec{Name: "a", JournalPath: "a"})
	b := c.create(world.Spec{Name: "b", JournalPath: "b"})
	if r := c.exec(a, "sh", "-c", "echo alpha > /state"); r.Status != 0 {
		t.Fatalf("a write: %d", r.Status)
	}
	if r := c.exec(b, "sh", "-c", "echo beta > /state"); r.Status != 0 {
		t.Fatalf("b write: %d", r.Status)
	}
	c.do("DELETE", "/1.0/worlds/"+a, nil, nil)
	c.do("DELETE", "/1.0/worlds/"+b, nil, nil)

	a2 := c.create(world.Spec{Name: "a2", JournalPath: "a"})
	res := c.exec(a2, "cat", "/state")
	if res.Status != 0 || res.Output != "alpha\n" {
		t.Fatalf("a2 recovered %q (status %d)", res.Output, res.Status)
	}
}

// TestJournalConfinement: the wire journal field must be a bare key —
// anything that could escape the server's state directory is rejected,
// as is any wire restore (the daemon must never open host files a
// client names).
func TestJournalConfinement(t *testing.T) {
	c := testServer(t)
	for _, bad := range []string{"../evil", "/etc/passwd", "a/b", `a\b`, "..", "."} {
		var body map[string]string
		if st := c.do("POST", "/1.0/worlds", world.Spec{Name: "x", JournalPath: bad}, &body); st != http.StatusBadRequest {
			t.Errorf("journal key %q: status %d, want 400 (%+v)", bad, st, body)
		}
	}
	var body map[string]string
	if st := c.do("POST", "/1.0/worlds", world.Spec{Name: "x", RestorePath: "/etc/hostname"}, &body); st != http.StatusBadRequest {
		t.Fatalf("wire restore: status %d, want 400 (%+v)", st, body)
	}

	// A server with no state dir refuses file-backed journals entirely
	// (memory journals still work).
	bare, err := worldd.New(worldd.Config{Register: apps.Register})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(bare.Handler())
	defer hs.Close()
	defer bare.Shutdown(context.Background())
	bc := &client{t: t, base: hs.URL, hc: hs.Client(), srv: bare}
	if st := bc.do("POST", "/1.0/worlds", world.Spec{Name: "x", JournalPath: "a"}, nil); st != http.StatusBadRequest {
		t.Fatalf("journal without state dir: status %d, want 400", st)
	}
	id := bc.create(world.Spec{Name: "m", JournalMem: true})
	if res := bc.exec(id, "echo", "ok"); res.Status != 0 {
		t.Fatalf("mem-journal session: %d", res.Status)
	}
}

// TestJournalExclusive: one live world per journal file. A second
// create naming a held key gets 409; deleting the holder (which closes
// the file) releases it for reuse.
func TestJournalExclusive(t *testing.T) {
	c := testServer(t)
	a := c.create(world.Spec{Name: "a", JournalPath: "shared"})
	var body map[string]string
	if st := c.do("POST", "/1.0/worlds", world.Spec{Name: "b", JournalPath: "shared"}, &body); st != http.StatusConflict {
		t.Fatalf("duplicate journal key: status %d, want 409 (%+v)", st, body)
	}
	if st := c.do("DELETE", "/1.0/worlds/"+a, nil, nil); st != http.StatusOK {
		t.Fatalf("delete holder: status %d", st)
	}
	b := c.create(world.Spec{Name: "b", JournalPath: "shared"})
	if res := c.exec(b, "echo", "ok"); res.Status != 0 {
		t.Fatalf("session after release: %d", res.Status)
	}
}

// TestGracefulDrain runs the real daemon loop over a unix socket:
// worlds live, SIGTERM-equivalent Shutdown drains, creates get 503,
// and the table is empty afterward.
func TestGracefulDrain(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "worldd.sock")
	srv, err := worldd.New(worldd.Config{Register: apps.Register})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := worldd.ListenUnix(sock)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	hc := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return (&net.Dialer{}).DialContext(ctx, "unix", sock)
		},
	}}
	c := &client{t: t, base: "http://worldd", hc: hc, srv: srv}

	id := c.create(world.Spec{Name: "drainee"})
	if res := c.exec(id, "echo", "up"); res.Status != 0 {
		t.Fatalf("session: %d", res.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if srv.Worlds() != 0 {
		t.Fatalf("%d worlds after drain", srv.Worlds())
	}
	// The socket no longer accepts; a late create cannot land.
	if _, err := hc.Post("http://worldd/1.0/worlds", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("create succeeded after drain")
	}
}
