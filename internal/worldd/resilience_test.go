package worldd_test

// The multi-tenant chaos soak: crash, hang, and panic faults rotate
// across tenants under concurrent load while the suite asserts the
// self-healing contract — zero daemon downtime (every metrics poll
// answers), bounded time-to-recovery (each kill heals within the poll
// deadline), sibling tenants unperturbed (the control tenant's sessions
// never fail), and no goroutine or fd growth across the kill/recover
// cycles. Seeded throughout: the fault plans, the agent faults, and the
// watchdog's backoff jitter all replay the same schedule.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interpose/internal/world"
	"interpose/internal/worldd"
)

// countFDs returns the process's open descriptor count.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

func TestChaosSoak(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 30
	}
	c := testServerCfg(t, worldd.Config{Health: worldd.HealthConfig{
		ProbeInterval: 2 * time.Millisecond,
		// Generous probe timeout: a loaded -race run must not turn a
		// slow probe into a false death.
		ProbeTimeout:    2 * time.Second,
		SessionDeadline: 60 * time.Millisecond,
		RestartBudget:   1 << 20,
		RestartWindow:   time.Hour,
		BackoffBase:     time.Millisecond,
		BackoffMax:      8 * time.Millisecond,
		Seed:            42,
	}})

	// The victims: a journaled tenant and a pooled tenant that die by
	// injected kernel crash, and one whose agent wedges a session past
	// twice the deadline (hang > 2×SessionDeadline so the watchdog, not
	// the fault, decides the session's fate).
	victims := []string{
		c.create(world.Spec{
			Name:        "journal",
			Telemetry:   true,
			JournalPath: "chaos-j",
			Inject:      "seed=7,open:/boom=crash@1",
		}),
		c.create(world.Spec{
			Name:   "pooled",
			Pool:   2,
			Inject: "seed=11,open:/boom=crash@1",
		}),
		c.create(world.Spec{
			Name:   "wedge",
			Agents: []string{"faulty=seed=9,open:/wedge=hang:200ms@1"},
		}),
	}
	poisons := [][]string{
		{"cat", "/boom"},
		{"cat", "/boom"},
		{"cat", "/wedge"},
	}
	// The panic tenant: a strict supervisor contains the agent panic and
	// quarantines the layer — suspect, never dead, still serving.
	panicky := c.create(world.Spec{
		Name:      "panicky",
		Agents:    []string{"faulty=seed=5,open:/q=panic@1"},
		Supervise: &world.SuperviseSpec{Mode: "strict", TripThreshold: 1, Cooldown: -1},
	})
	control := c.create(world.Spec{Name: "control"})

	// One poison round per victim. The session dies with its world, so
	// any status is fine here — recovery is the assertion, made by
	// waitHealthy after each kill.
	kills := 0
	prev := make([]uint64, len(victims))
	kill := func(vi int) {
		body, _ := json.Marshal(world.ExecRequest{Argv: poisons[vi]})
		resp, err := c.hc.Post(c.base+"/1.0/worlds/"+victims[vi]+"/exec",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("poison %d: %v", vi, err)
		}
		resp.Body.Close()
		kills++
		info := waitHealthy(t, c, victims[vi], prev[vi]+1, 10*time.Second)
		prev[vi] = info.Restarts
	}

	// Warm up every path (pool construction, journal replay, probe and
	// recovery machinery, http keep-alives) before the leak baselines.
	for vi := range victims {
		kill(vi)
	}
	c.hc.CloseIdleConnections()
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs(t)

	// Concurrent load: the control tenant's sessions must never fail —
	// not retryably, not at all — and the metrics endpoint must answer
	// every poll, or the daemon had downtime.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var controlOK, polls atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(world.ExecRequest{Argv: []string{"echo", "sibling"}})
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := c.hc.Post(c.base+"/1.0/worlds/"+control+"/exec",
				"application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("control session: %v", err)
				return
			}
			var res world.ExecResult
			derr := json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || derr != nil ||
				res.Status != 0 || res.Output != "sibling\n" {
				t.Errorf("control session perturbed: status %d err %v res %+v",
					resp.StatusCode, derr, res)
				return
			}
			controlOK.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := c.hc.Get(c.base + "/1.0/metrics")
			if err != nil {
				t.Errorf("metrics poll: %v", err)
				return
			}
			var m worldd.Metrics
			derr := json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || derr != nil {
				t.Errorf("metrics poll: status %d err %v", resp.StatusCode, derr)
				return
			}
			if m.Closed > m.Created {
				t.Errorf("torn metrics: closed %d > created %d", m.Closed, m.Created)
				return
			}
			polls.Add(1)
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// The soak proper: crashes dominate, a wedge every fifth cycle, a
	// contained panic every twentieth.
	rotation := []int{0, 1, 0, 1, 2}
	for cycle := 0; cycle < cycles; cycle++ {
		kill(rotation[cycle%len(rotation)])
		if cycle%20 == 10 {
			c.do("POST", "/1.0/worlds/"+panicky+"/exec",
				world.ExecRequest{Argv: []string{"cat", "/q"}}, nil)
			if res := c.exec(panicky, "echo", "contained"); res.Output != "contained\n" {
				t.Fatalf("panic tenant stopped serving: %+v", res)
			}
		}
	}

	close(stop)
	wg.Wait()
	if controlOK.Load() == 0 || polls.Load() == 0 {
		t.Fatalf("load drivers idle: control=%d polls=%d", controlOK.Load(), polls.Load())
	}

	// Fleet accounting: every kill died and recovered, nobody was
	// parked, and the panic tenant sits quarantined-suspect.
	var m worldd.Metrics
	c.do("GET", "/1.0/metrics", nil, &m)
	if m.Deaths < uint64(kills) {
		t.Errorf("deaths %d < kills %d", m.Deaths, kills)
	}
	if m.Recoveries != m.Deaths {
		t.Errorf("recoveries %d != deaths %d", m.Recoveries, m.Deaths)
	}
	if m.Parks != 0 || m.Health["parked"] != 0 || m.Health["dead"] != 0 {
		t.Errorf("parked/dead worlds after soak: parks=%d health=%v", m.Parks, m.Health)
	}
	var pi worldd.Info
	c.do("GET", "/1.0/worlds/"+panicky, nil, &pi)
	if pi.Health != "suspect" {
		t.Errorf("panic tenant health %q, want suspect", pi.Health)
	}

	// No growth: goroutines and fds settle back to the warm baseline.
	c.hc.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		g, f := runtime.NumGoroutine(), countFDs(t)
		if g <= baseGoroutines+8 && f <= baseFDs+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("leak after %d cycles: goroutines %d -> %d, fds %d -> %d\n%s",
				kills, baseGoroutines, g, baseFDs, f, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
