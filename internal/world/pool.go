package world

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/telemetry"
)

// Pool keeps N pre-warmed copy-on-write clones of one template world so
// that acquiring a session world is a stack pop, not a boot. The
// template is booted once — image registry, program installs, Setup
// hooks — and every member is a Fork of it; the boot cost is paid off
// the request path, by NewPool and by the asynchronous refiller.
//
// Handout is LIFO: the most recently forked member is the one whose
// inode structs and dentry paths are most likely still cache-warm.
// Members are consumed, not returned — a used world carries tenant
// state, and a fresh fork is cheaper than any scrub would be. Close the
// acquired world as usual when the session ends; Close the pool to tear
// down the warm stack and the template.
//
// Acquire on an empty pool forks inline (a miss): still far cheaper
// than a boot, since the template's filesystem is shared copy-on-write.
// Every acquire (hit or miss) kicks the refiller if it is not already
// running, so the stack climbs back to target in the background.
type Pool struct {
	spec     Spec
	target   int
	template *World

	mu        sync.Mutex
	warm      []*World // LIFO: acquire pops, refill pushes
	refilling bool
	closed    bool
	lastErr   error // latest background refill failure, surfaced by Close

	wg sync.WaitGroup

	hits     atomic.Uint64
	misses   atomic.Uint64
	refills  atomic.Uint64
	refillNs atomic.Int64 // total ns spent forking in the background
}

// PoolStats is a point-in-time view of a pool's gauges.
type PoolStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Refills uint64 `json:"refills"`
	Size    int    `json:"size"`
	Target  int    `json:"target"`
	// RefillNs is the mean nanoseconds per background refill fork.
	RefillNs int64 `json:"refill_ns"`
}

// NewPool boots the template from spec and pre-warms target members
// synchronously, so the first Acquire already hits. spec is the MEMBER
// spec: every acquired world gets its declared facilities (telemetry,
// tracer, journal, agents). The template itself boots bare — Register
// and Setup only — since it never runs sessions.
//
// Restore specs are refused (a pool's members come from the template,
// not a checkpoint), as are file-backed journals: one journal file
// backs one live world, which is irreconcilable with N identical
// members. JournalMem is fine — each member gets its own store.
func NewPool(spec Spec, target int) (*Pool, error) {
	if target < 1 {
		return nil, fmt.Errorf("world: pool %q: target %d, want >= 1", spec.Name, target)
	}
	if spec.RestorePath != "" || spec.RestoreFrom != nil {
		return nil, fmt.Errorf("world: pool %q: cannot pool a restore spec", spec.Name)
	}
	if spec.JournalPath != "" {
		return nil, fmt.Errorf("world: pool %q: file journals are per-world; pooled members must use journal_mem", spec.Name)
	}
	tmpl, err := Boot(Spec{
		Name:     spec.Name + "/template",
		Register: spec.Register,
		Setup:    spec.Setup,
	})
	if err != nil {
		return nil, fmt.Errorf("world: pool %q: template: %w", spec.Name, err)
	}
	p := &Pool{spec: spec, target: target, template: tmpl}
	for i := 0; i < target; i++ {
		w, err := Fork(tmpl, spec)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("world: pool %q: warm: %w", spec.Name, err)
		}
		p.warm = append(p.warm, w)
	}
	return p, nil
}

// Template returns the pool's template world (for fleet-level
// inspection; never exec on it).
func (p *Pool) Template() *World { return p.template }

// Acquire hands out a warm world (LIFO), or forks one inline when the
// stack is empty. Either way the background refiller is kicked so the
// stack returns to target off the request path. The caller owns the
// world: run sessions on it and Close it when done — it does not return
// to the pool.
func (p *Pool) Acquire() (*World, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("world: pool %q: acquire on closed pool", p.spec.Name)
	}
	if n := len(p.warm); n > 0 {
		w := p.warm[n-1]
		p.warm = p.warm[:n-1]
		p.kickRefillLocked()
		p.mu.Unlock()
		p.hits.Add(1)
		w.Kernel().SetExtraGauges(p.Gauges)
		return w, nil
	}
	p.kickRefillLocked()
	p.mu.Unlock()
	p.misses.Add(1)
	w, err := Fork(p.template, p.spec)
	if err != nil {
		return nil, err
	}
	w.Kernel().SetExtraGauges(p.Gauges)
	return w, nil
}

// kickRefillLocked starts the refiller unless one is already running.
// Caller holds p.mu.
func (p *Pool) kickRefillLocked() {
	if p.refilling || p.closed {
		return
	}
	p.refilling = true
	p.wg.Add(1)
	go p.refill()
}

// refill forks members until the warm stack is back at target (or the
// pool closes, or a fork fails). One refiller runs at a time.
func (p *Pool) refill() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		if p.closed || len(p.warm) >= p.target {
			p.refilling = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		start := time.Now()
		w, err := Fork(p.template, p.spec)
		d := time.Since(start)

		p.mu.Lock()
		if err != nil {
			p.lastErr = err
			p.refilling = false
			p.mu.Unlock()
			return
		}
		p.refills.Add(1)
		p.refillNs.Add(int64(d))
		if p.closed {
			p.mu.Unlock()
			w.Close()
			return
		}
		p.warm = append(p.warm, w)
		p.mu.Unlock()
	}
}

// Stats returns the pool's current gauges.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	size := len(p.warm)
	p.mu.Unlock()
	s := PoolStats{
		Hits:    p.hits.Load(),
		Misses:  p.misses.Load(),
		Refills: p.refills.Load(),
		Size:    size,
		Target:  p.target,
	}
	if s.Refills > 0 {
		s.RefillNs = p.refillNs.Load() / int64(s.Refills)
	}
	return s
}

// Gauges renders the pool's stats as telemetry counter rows. Acquire
// installs this on each handed-out world's kernel, so a pooled tenant's
// /dev/metrics (and agentrun -stats) shows its pool's health alongside
// the kernel cache gauges.
func (p *Pool) Gauges() []telemetry.NamedCounter {
	s := p.Stats()
	return []telemetry.NamedCounter{
		{Name: "pool.hit", Value: s.Hits},
		{Name: "pool.miss", Value: s.Misses},
		{Name: "pool.size", Value: uint64(s.Size)},
		{Name: "pool.refill.ns", Value: uint64(s.RefillNs)},
	}
}

// Close tears the pool down: the refiller is stopped and awaited, every
// warm member and the template are closed. Worlds already acquired are
// the caller's to close. The first teardown error is returned; a
// lingering background-refill failure is surfaced if nothing else went
// wrong.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()

	// Wait out the refiller BEFORE snapshotting the warm stack: the
	// refiller re-checks closed under p.mu on every iteration, so once
	// the wait returns no fork can start again — and any member it
	// pushed (or failure it recorded) during the wait is in warm and
	// lastErr, not silently dropped.
	p.wg.Wait()

	p.mu.Lock()
	warm := p.warm
	p.warm = nil
	lastErr := p.lastErr
	p.mu.Unlock()

	var firstErr error
	for _, w := range warm {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.template != nil {
		if err := p.template.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = lastErr
	}
	return firstErr
}
