package world_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/world"
)

// boot boots a world from spec and registers its teardown.
func boot(t *testing.T, spec world.Spec) *world.World {
	t.Helper()
	w, err := world.Boot(spec)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return w
}

// run executes argv in w, failing the test on transport errors.
func run(t *testing.T, w *world.World, argv ...string) world.ExecResult {
	t.Helper()
	res, err := w.Exec(world.ExecRequest{Argv: argv})
	if err != nil {
		t.Fatalf("exec %v: %v", argv, err)
	}
	return res
}

func TestBootExec(t *testing.T) {
	w := boot(t, apps.Spec())
	res := run(t, w, "echo", "hello", "world")
	if res.Status != 0 || !res.Exited() {
		t.Fatalf("echo: status %d signal %q", res.Status, res.Signal)
	}
	if res.Output != "hello world\n" {
		t.Fatalf("echo output %q", res.Output)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed %v", res.Elapsed)
	}
}

func TestExecFeedAndEnv(t *testing.T) {
	w := boot(t, apps.Spec())
	res, err := w.Exec(world.ExecRequest{Argv: []string{"cat"}, Feed: "a b c\n"})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.Status != 0 {
		t.Fatalf("cat status %d: %s", res.Status, res.Output)
	}
	if !strings.Contains(res.Output, "a b c") {
		t.Fatalf("cat output %q", res.Output)
	}
	// A program that reads past its feed sees EOF, not a hang; and a
	// second session's console starts clean.
	res = run(t, w, "cat")
	if res.Output != "" {
		t.Fatalf("second session inherited console output %q", res.Output)
	}
}

func TestSetupHooksAndAgents(t *testing.T) {
	spec := apps.Spec()
	spec.Setup = append(spec.Setup, func(k *kernel.Kernel) error { return apps.SetupBenchFiles(k) })
	spec.Agents = []string{"trace"}
	w := boot(t, spec)
	if len(w.Stack()) != 1 {
		t.Fatalf("stack size %d", len(w.Stack()))
	}
	res := run(t, w, "cat", "/usr/lib/bench/data1k")
	if res.Status != 0 {
		t.Fatalf("cat fixture: status %d: %s", res.Status, res.Output)
	}
	// The trace agent reports interleaved on the console.
	if !strings.Contains(res.Output, `open("/usr/lib/bench/data1k"`) {
		t.Fatalf("trace lines missing from session output:\n%s", res.Output)
	}
}

func TestRlimitBudget(t *testing.T) {
	spec := apps.Spec()
	// Console is fds 0-2; a ceiling of 3 leaves no room for any open.
	spec.Rlimits = map[string]uint64{"nofile": 3}
	w := boot(t, spec)
	res := run(t, w, "cat", "/bin/echo")
	if res.Status == 0 {
		t.Fatalf("cat under nofile=3 succeeded: %q", res.Output)
	}

	bad := apps.Spec()
	bad.Rlimits = map[string]uint64{"nosuch": 1}
	wb, err := world.Boot(bad)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer wb.Close()
	if _, err := wb.Exec(world.ExecRequest{Argv: []string{"echo", "hi"}}); err == nil {
		t.Fatal("unknown rlimit name accepted")
	}
}

// TestExecErrorsReapProc: every Exec failure after the process is
// published — bad program, bad rlimit name — must retire it, or a
// tenant repeatedly sending bad argv grows the process table (and its
// address spaces) without bound in a long-lived daemon.
func TestExecErrorsReapProc(t *testing.T) {
	w := boot(t, apps.Spec())
	for i := 0; i < 10; i++ {
		if _, err := w.Exec(world.ExecRequest{Argv: []string{"no-such-program"}}); err == nil {
			t.Fatal("exec of nonexistent program succeeded")
		}
	}
	if n := w.Kernel().ProcCount(); n != 0 {
		t.Fatalf("%d procs left after failed execs", n)
	}

	bad := apps.Spec()
	bad.Rlimits = map[string]uint64{"nosuch": 1}
	wb := boot(t, bad)
	for i := 0; i < 10; i++ {
		if _, err := wb.Exec(world.ExecRequest{Argv: []string{"echo", "hi"}}); err == nil {
			t.Fatal("unknown rlimit name accepted")
		}
	}
	if n := wb.Kernel().ProcCount(); n != 0 {
		t.Fatalf("%d procs left after failed rlimit execs", n)
	}
}

func TestJournalRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "w.jnl")
	spec := apps.Spec()
	spec.JournalPath = jpath

	w, err := world.Boot(spec)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	res, err := w.Exec(world.ExecRequest{Argv: []string{"sh", "-c", "echo durable > /state"}})
	if err != nil || res.Status != 0 {
		t.Fatalf("write session: %v status %d %s", err, res.Status, res.Output)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A second incarnation booted with the same journal file replays the
	// mutation onto a fresh world.
	w2 := boot(t, spec)
	if w2.Replayed() == 0 {
		t.Fatal("no journal records replayed")
	}
	res = run(t, w2, "cat", "/state")
	if res.Status != 0 || res.Output != "durable\n" {
		t.Fatalf("recovered state: status %d output %q", res.Status, res.Output)
	}
}

func TestCheckpointRestore(t *testing.T) {
	w := boot(t, apps.Spec())
	res := run(t, w, "sh", "-c", "echo snap > /state")
	if res.Status != 0 {
		t.Fatalf("write: status %d: %s", res.Status, res.Output)
	}
	var snap bytes.Buffer
	if err := w.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	spec := apps.Spec()
	spec.RestoreFrom = &snap
	// Setup hooks must NOT run on a restore: the checkpoint carries the
	// filesystem, and re-running fixtures would clobber it.
	ranSetup := false
	spec.Setup = append(spec.Setup, func(*kernel.Kernel) error {
		ranSetup = true
		return nil
	})
	w2 := boot(t, spec)
	if ranSetup {
		t.Fatal("Setup hook ran on a restored world")
	}
	res = run(t, w2, "cat", "/state")
	if res.Status != 0 || res.Output != "snap\n" {
		t.Fatalf("restored state: status %d output %q", res.Status, res.Output)
	}
}

func TestCrashFreezesJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "w.jnl")
	spec := apps.Spec()
	spec.JournalPath = jpath
	spec.Inject = "seed=7,open:/boom=crash@1"
	w, err := world.Boot(spec)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	res, err := w.Exec(world.ExecRequest{Argv: []string{"sh", "-c", "echo a > /pre"}})
	if err != nil || res.Status != 0 {
		t.Fatalf("pre-crash session: %v status %d %s", err, res.Status, res.Output)
	}
	// Group commit: /pre is only durable once the pending group reaches
	// the store, and the crash freezes the store as-is.
	if err := w.Kernel().Journal().Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	res, err = w.Exec(world.ExecRequest{Argv: []string{"sh", "-c", "echo b > /boom"}})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.Exited() && res.Status == 0 {
		t.Fatalf("session survived an injected crash: %q", res.Output)
	}
	if !w.Crashed() {
		t.Fatal("world not marked crashed")
	}
	if err := w.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("checkpoint of a crashed world succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close crashed world: %v", err)
	}

	// Recovery: the journal holds the durable prefix; /pre survives.
	rec := apps.Spec()
	rec.JournalPath = jpath
	w2 := boot(t, rec)
	res = run(t, w2, "cat", "/pre")
	if res.Status != 0 || res.Output != "a\n" {
		t.Fatalf("recovered /pre: status %d output %q", res.Status, res.Output)
	}
}

func TestExecOnClosedWorld(t *testing.T) {
	w, err := world.Boot(apps.Spec())
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := w.Exec(world.ExecRequest{Argv: []string{"echo"}}); err == nil {
		t.Fatal("exec on closed world succeeded")
	}
	if err := w.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("checkpoint on closed world succeeded")
	}
}

func TestBootWithoutRegistry(t *testing.T) {
	if _, err := world.Boot(world.Spec{}); err == nil {
		t.Fatal("boot without a Register hook succeeded")
	}
}

// openFDs counts this process's open descriptors via /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestCloseLeakFree is the teardown contract for the multi-tenant
// server: a create → session → destroy cycle must return the process to
// its starting goroutine and descriptor counts, or a daemon hosting
// thousands of worlds bleeds to death. Each cycle boots a fully loaded
// world — file journal, telemetry, tracer, supervisor, injector, agent
// stack — runs a session that kills a straggler process, and closes.
func TestCloseLeakFree(t *testing.T) {
	cycles := 1000
	if testing.Short() {
		cycles = 50
	}
	dir := t.TempDir()

	cycle := func(i int) {
		spec := apps.Spec()
		spec.Name = fmt.Sprintf("cycle%d", i)
		spec.JournalPath = filepath.Join(dir, fmt.Sprintf("c%d.jnl", i%8))
		spec.Telemetry = true
		spec.Agents = []string{"trace"}
		spec.Inject = "seed=1,read=EIO@0.000001"
		spec.Supervise = &world.SuperviseSpec{Mode: "strict"}
		w, err := world.Boot(spec)
		if err != nil {
			t.Fatalf("cycle %d: boot: %v", i, err)
		}
		res, err := w.Exec(world.ExecRequest{Argv: []string{"sh", "-c", "echo up > /up; cat /up"}})
		if err != nil {
			t.Fatalf("cycle %d: exec: %v", i, err)
		}
		if res.Status != 0 {
			t.Fatalf("cycle %d: status %d: %s", i, res.Status, res.Output)
		}
		// A straggler guest no session waits for: Close must kill and
		// reap it (and its goroutine), not just finished sessions.
		p := w.Kernel().NewProc()
		if err := p.OpenConsole(); err != nil {
			t.Fatalf("cycle %d: console: %v", i, err)
		}
		if err := p.Start("/bin/sleep", []string{"sleep", "3600"}, []string{"PATH=/bin"}); err != nil {
			t.Fatalf("cycle %d: straggler: %v", i, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", i, err)
		}
	}

	// Warm-up establishes the steady state (lazy runtime pools, test
	// framework goroutines) before the baseline is taken.
	for i := 0; i < 5; i++ {
		cycle(i)
	}
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := openFDs(t)

	for i := 5; i < cycles; i++ {
		cycle(i)
	}

	runtime.GC()
	// Transient goroutines (supervisor deadline timers) wind down
	// asynchronously; give them a moment before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines grew %d → %d across %d cycles:\n%s",
			baseGoroutines, g, cycles, buf[:n])
	}
	if f := openFDs(t); f > baseFDs {
		t.Fatalf("descriptors grew %d → %d across %d cycles", baseFDs, f, cycles)
	}
}
