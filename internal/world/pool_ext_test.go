package world_test

// Exec-level pool tests against the real application set: member
// isolation under divergent writes, the gauge plumbing members carry,
// and concurrent acquire storms. The stack-internal tests (LIFO order,
// spec validation) are in pool_test.go inside the package.

import (
	"strings"
	"sync"
	"testing"

	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/world"
)

// poolSpec is the member spec of the pool tests: the application set
// with telemetry, so gauge plumbing is exercised end to end.
func poolSpec() world.Spec {
	spec := apps.Spec()
	spec.Name = "pooltest"
	spec.Telemetry = true
	spec.Setup = append(spec.Setup, func(k *kernel.Kernel) error {
		return k.WriteFile("/state", []byte("template\n"), 0o644)
	})
	return spec
}

func TestPoolMemberIsolationAndGauges(t *testing.T) {
	p, err := world.NewPool(poolSpec(), 2)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	a, err := p.Acquire()
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := p.Acquire()
	if err != nil {
		t.Fatalf("acquire b: %v", err)
	}
	t.Cleanup(func() { b.Close() })

	// Divergent writes stay private to each member; the template keeps
	// its own state.
	for w, text := range map[*world.World]string{a: "alpha", b: "beta"} {
		res, err := w.Exec(world.ExecRequest{Argv: []string{"sh", "-c", "echo " + text + " > /state"}})
		if err != nil || res.Status != 0 {
			t.Fatalf("write %s: %v status %d", text, err, res.Status)
		}
	}
	check := func(w *world.World, want string) {
		t.Helper()
		res, err := w.Exec(world.ExecRequest{Argv: []string{"cat", "/state"}})
		if err != nil || res.Status != 0 || res.Output != want+"\n" {
			t.Fatalf("state: %v status %d output %q want %q", err, res.Status, res.Output, want)
		}
	}
	check(a, "alpha")
	check(b, "beta")
	if data, err := p.Template().Kernel().ReadFile("/state"); err != nil || string(data) != "template\n" {
		t.Fatalf("template state: %v %q", err, data)
	}

	// Everything stays fsck-clean after the divergence.
	for name, w := range map[string]*world.World{"a": a, "b": b, "template": p.Template()} {
		if bad := w.Kernel().FS().Check(); len(bad) != 0 {
			t.Fatalf("%s fsck: %v", name, bad)
		}
	}

	// The pool's gauges ride along in each member's telemetry snapshot —
	// the same rows /dev/metrics and agentrun -stats render.
	snap := a.Telemetry().Snapshot()
	found := map[string]bool{}
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "pool.") {
			found[c.Name] = true
		}
	}
	for _, want := range []string{"pool.hit", "pool.miss", "pool.size", "pool.refill.ns"} {
		if !found[want] {
			t.Fatalf("member telemetry missing gauge %s (have %v)", want, found)
		}
	}
}

func TestPoolAcquireStorm(t *testing.T) {
	p, err := world.NewPool(poolSpec(), 4)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	const goroutines = 8
	var wg sync.WaitGroup
	worlds := make([]*world.World, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := p.Acquire()
			if err != nil {
				t.Errorf("acquire %d: %v", g, err)
				return
			}
			worlds[g] = w
		}(g)
	}
	wg.Wait()

	// Every acquire produced a distinct, runnable world, and
	// hits+misses accounts for all of them.
	seen := map[*world.World]bool{}
	for g, w := range worlds {
		if w == nil {
			t.Fatal("nil world from storm")
		}
		if seen[w] {
			t.Fatal("one world handed out twice")
		}
		seen[w] = true
		t.Cleanup(func() { w.Close() })
		res, err := w.Exec(world.ExecRequest{Argv: []string{"echo", "ok"}})
		if err != nil || res.Status != 0 {
			t.Fatalf("storm world %d exec: %v status %d", g, err, res.Status)
		}
	}
	if s := p.Stats(); s.Hits+s.Misses != goroutines {
		t.Fatalf("hits %d + misses %d != %d acquires", s.Hits, s.Misses, goroutines)
	}
}
