package world

// Internal pool tests: the parts that need to see the warm stack
// (LIFO order) or poke zero-value corners. The exec-level pool suite —
// member isolation, gauges, acquire storms — lives in pool_ext_test.go
// against the real application set (which this package cannot import).

import (
	"sync"
	"testing"
	"time"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
)

// tinySpec is a pool spec over a single trivial program, enough to boot
// template and members without the application set.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Register: func(r *image.Registry) {
			r.Register("true", libc.Main(func(*libc.T) int { return 0 }))
		},
		Setup: []func(*kernel.Kernel) error{
			func(k *kernel.Kernel) error {
				return k.WriteFile("/state", []byte("template\n"), 0o644)
			},
		},
	}
}

func TestPoolRejectsBadSpecs(t *testing.T) {
	if _, err := NewPool(tinySpec(), 0); err == nil {
		t.Fatal("target 0 accepted")
	}
	restore := tinySpec()
	restore.RestorePath = "/nope.ckpt"
	if _, err := NewPool(restore, 1); err == nil {
		t.Fatal("restore spec accepted")
	}
	filed := tinySpec()
	filed.JournalPath = "/tmp/nope.jnl"
	if _, err := NewPool(filed, 1); err == nil {
		t.Fatal("file journal accepted")
	}
}

func TestPoolHitLIFOAndRefill(t *testing.T) {
	p, err := NewPool(tinySpec(), 3)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	if s := p.Stats(); s.Size != 3 || s.Target != 3 {
		t.Fatalf("pre-warm stats %+v", s)
	}

	// LIFO: the acquire must pop the top of the warm stack.
	p.mu.Lock()
	top := p.warm[len(p.warm)-1]
	p.mu.Unlock()
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	if w != top {
		t.Fatal("acquire did not pop the most recent member")
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("after one warm acquire: %+v", s)
	}

	// The refiller climbs the stack back to target off the request path.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Size < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never refilled to 3 (size %d)", p.Stats().Size)
		}
		time.Sleep(time.Millisecond)
	}
	if s := p.Stats(); s.Refills == 0 || s.RefillNs <= 0 {
		t.Fatalf("refill gauges after refill: %+v", s)
	}
}

func TestPoolMissForksInline(t *testing.T) {
	p, err := NewPool(tinySpec(), 1)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	// Empty the stack by hand so the next acquire is a guaranteed miss
	// (draining via Acquire races the refiller).
	p.mu.Lock()
	drained := p.warm
	p.warm = nil
	p.mu.Unlock()
	for _, w := range drained {
		defer w.Close()
	}

	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("miss acquire: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	if s := p.Stats(); s.Misses != 1 {
		t.Fatalf("miss not counted: %+v", s)
	}
	// A missed world is a real world: template filesystem and all.
	if data, err := w.Kernel().ReadFile("/state"); err != nil || string(data) != "template\n" {
		t.Fatalf("miss world state: %v %q", err, data)
	}
}

func TestPoolClose(t *testing.T) {
	p, err := NewPool(tinySpec(), 2)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := p.Acquire(); err == nil {
		t.Fatal("acquire on closed pool succeeded")
	}
}

// TestPoolCloseRefillerRace hammers Acquire from several goroutines
// while Close lands mid-refill (run under -race). The contract under
// test: once Close returns, the refiller has observed closed and will
// never fork again — the warm stack stays empty, the refill counter
// stops moving, and a failure from the refiller's final fork is not
// silently dropped between Close's snapshot and its wait.
func TestPoolCloseRefillerRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		p, err := NewPool(tinySpec(), 2)
		if err != nil {
			t.Fatalf("pool: %v", err)
		}

		acquired := make(chan *World, 64)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					w, err := p.Acquire()
					if err != nil {
						return // pool closed under us: expected
					}
					acquired <- w
				}
			}()
		}
		closeErr := make(chan error, 1)
		go func() { closeErr <- p.Close() }()
		wg.Wait()
		if err := <-closeErr; err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}

		// Close has returned: the refiller must be quiescent. Any fork
		// completing after this point would push a member onto the warm
		// stack (a leak — nothing will ever close it) or bump refills.
		refills := p.refills.Load()
		if n := len(p.warm); n != 0 {
			t.Fatalf("round %d: %d warm members left after close", round, n)
		}
		time.Sleep(2 * time.Millisecond)
		if got := p.refills.Load(); got != refills {
			t.Fatalf("round %d: refiller forked after Close returned (%d -> %d)",
				round, refills, got)
		}
		if n := len(p.warm); n != 0 {
			t.Fatalf("round %d: late fork leaked %d members", round, n)
		}

		close(acquired)
		for w := range acquired {
			w.Close()
		}
	}
}
