// Package world is the world-lifecycle layer: one declarative Spec
// describing a simulated machine — image set, agent stack, resource
// limits, breaker budgets, journal and checkpoint wiring, trace and
// telemetry options — and one lifecycle over it:
//
//	Boot → Attach → Exec (sessions) → Checkpoint → Close
//
// Before this layer existed the repository had four hand-rolled boot
// paths (apps.NewWorld, experiments.World, the crash table's world, and
// cmd/agentrun's flag wiring), each re-deriving the same sequencing
// rules: journal replay before the first program, fsck after every
// restore or replay, injector crash hooks freezing the journal store,
// supervisor installation, telemetry/tracer attachment. All of them are
// now thin callers of Boot, and the multi-tenant server (internal/worldd)
// hosts thousands of these worlds in one process, so Close must return
// the world to nothing: no goroutines, no host descriptors, no zombies.
//
// The package deliberately does not import the application set: Spec
// carries a Register hook for the image registry and Setup hooks for
// world building, so internal/apps can layer its world on top of this
// package without an import cycle.
package world

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/agents"
	"interpose/internal/core"
	"interpose/internal/fault"
	"interpose/internal/image"
	"interpose/internal/journal"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	"interpose/internal/trace"
)

// TraceSpec configures the causal span tracer. Durations travel as
// nanosecond integers on the wire (time.Duration's JSON encoding).
type TraceSpec struct {
	// Sample is the head-sampling probability in [0, 1].
	Sample float64 `json:"sample"`
	// Slow additionally retains unsampled calls at least this slow.
	Slow time.Duration `json:"slow_ns,omitempty"`
	// TailErrors retains unsampled failed calls.
	TailErrors bool `json:"tail_errors,omitempty"`
}

// SuperviseSpec configures the agent supervisor: the containment mode
// plus the per-tenant breaker budget. The zero budget fields select the
// kernel's documented defaults.
type SuperviseSpec struct {
	// Mode is "strict", "bypass", or "off"/"".
	Mode string `json:"mode"`
	// Errno names the errno a contained failure returns in strict mode
	// (default EFAULT).
	Errno string `json:"errno,omitempty"`
	// TripThreshold is the failure count that quarantines a layer.
	TripThreshold int `json:"trip_threshold,omitempty"`
	// Window bounds the sliding failure window (0 = pure count).
	Window time.Duration `json:"window_ns,omitempty"`
	// Cooldown is the quarantine time before a half-open probe
	// (0 = kernel default, negative = permanent quarantine).
	Cooldown time.Duration `json:"cooldown_ns,omitempty"`
	// Deadline bounds each supervised upcall (0 = off).
	Deadline time.Duration `json:"deadline_ns,omitempty"`
}

// AdmissionSpec is a tenant's session admission budget. Like Pool, the
// world layer itself ignores it: a session-hosting server (worldd)
// enforces the caps at its front door, before a request ever reaches
// the world lock, so an over-subscribed tenant is shed with a retryable
// status instead of queueing unboundedly on the console.
type AdmissionSpec struct {
	// MaxSessions caps concurrent sessions for this world (0 = no cap).
	MaxSessions int `json:"max_sessions,omitempty"`
	// Rate is the sustained sessions-per-second refill of the tenant's
	// token bucket (0 = unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket depth (default: max(1, ceil(Rate))).
	Burst int `json:"burst,omitempty"`
}

// Spec declares a world. The JSON-visible fields form the wire spec a
// multi-tenant server accepts; the function-valued fields are host-side
// wiring the server fills in itself.
type Spec struct {
	// Name labels the world in logs and server tables.
	Name string `json:"name,omitempty"`

	// Register populates the image registry the world boots with.
	// Required: a world without programs cannot run sessions.
	Register func(*image.Registry) `json:"-"`

	// Setup hooks run in order on a freshly booted world (not on a
	// restore, whose filesystem already carries its state): bench
	// fixtures, source trees, extra files.
	Setup []func(*kernel.Kernel) error `json:"-"`

	// RestorePath boots from a checkpoint file instead of a fresh world.
	RestorePath string `json:"restore,omitempty"`
	// RestoreFrom boots from a checkpoint stream (host-side callers;
	// takes precedence over RestorePath).
	RestoreFrom io.Reader `json:"-"`

	// Agents is the agent stack, catalog specs as in `agentrun -a`,
	// first closest to the kernel.
	Agents []string `json:"agents,omitempty"`

	// JournalPath attaches a write-ahead journal backed by this host
	// file; an existing file is replayed (torn tail cut) before the
	// first program runs. Host callers set a real path; the multi-tenant
	// server treats the wire value as a bare key and rewrites it to a
	// file inside its own state directory (see internal/worldd).
	JournalPath string `json:"journal,omitempty"`
	// JournalMem attaches an in-memory journal instead (tenants that
	// want the write-path semantics without host files).
	JournalMem bool `json:"journal_mem,omitempty"`

	// Telemetry installs a per-world telemetry registry.
	Telemetry bool `json:"telemetry,omitempty"`
	// Trace installs the causal span tracer.
	Trace *TraceSpec `json:"trace,omitempty"`
	// Supervise installs the agent supervisor with a per-world budget.
	Supervise *SuperviseSpec `json:"supervise,omitempty"`
	// Inject installs a kernel-side fault plan (fault DSL), below all
	// agent layers.
	Inject string `json:"inject,omitempty"`

	// Rlimits are resource budgets applied to every process the world
	// launches, by name: nofile, fsize, data, cpu, core, stack, rss.
	Rlimits map[string]uint64 `json:"rlimits,omitempty"`

	// Pool, when > 0, asks a pooling host (worldd) to serve this world
	// from a warm pool of this many pre-forked template clones instead
	// of booting on the request path. Worlds with identical specs (name
	// and pool size aside) share one pool. The world layer itself
	// ignores the field; see Pool (pool.go) and internal/worldd.
	Pool int `json:"pool,omitempty"`

	// Admission, when set, asks a session-hosting server (worldd) to
	// bound this tenant's session traffic: a concurrent-session cap and
	// a token-bucket rate limit. The world layer ignores the field.
	Admission *AdmissionSpec `json:"admission,omitempty"`

	// OnQuarantine, when set, observes supervisor quarantines.
	OnQuarantine func(layer string, stack []byte) `json:"-"`

	// Mirror, when set, receives a live copy of console output.
	Mirror io.Writer `json:"-"`
}

// ExecRequest is one session: a program run to completion in a world.
type ExecRequest struct {
	// Argv is the program and its arguments; a bare name resolves
	// under /bin.
	Argv []string `json:"argv"`
	// Feed is queued as console input before the program starts.
	Feed string `json:"feed,omitempty"`
	// Env overrides the default environment ("PATH=/bin:/usr/bin").
	Env []string `json:"env,omitempty"`
}

// ExecResult reports a finished session.
type ExecResult struct {
	// Status is the exit status when the program exited.
	Status int `json:"status"`
	// Signal names the fatal signal when the program was killed.
	Signal string `json:"signal,omitempty"`
	// Output is the console output produced during the session.
	Output string `json:"output"`
	// Elapsed is the wall-clock session time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Exited reports whether the session's program exited (vs was killed).
func (r ExecResult) Exited() bool { return r.Signal == "" }

// World is a booted machine with its attached facilities. Sessions on
// one world are serialized by the world's own lock (the console is one
// terminal); distinct worlds are fully independent.
type World struct {
	spec Spec

	// dying is latched by Kill: the world is being torn down by a
	// supervisor-of-worlds and must fail new sessions fast instead of
	// queueing on the world lock behind a wedged one.
	dying atomic.Bool

	mu     sync.Mutex
	k      *kernel.Kernel
	reg    *telemetry.Registry
	tracer *trace.Tracer
	inj    *fault.Injector
	jstore journal.Store
	stack  []core.Agent
	insts  []*agents.Instance
	closed bool

	// Applied, Skipped, and Torn report journal recovery at boot: how
	// many records rolled forward, how many a restored checkpoint
	// already contained, and the torn tail (already cut from the store)
	// if the previous incarnation died mid-write.
	Applied int
	Skipped int
	Torn    *journal.Torn
}

// Replayed is the total journal records recovered at boot.
func (w *World) Replayed() int { return w.Applied + w.Skipped }

// freezer is the capability of journal stores that can be frozen at the
// instant of a crash (MemStore, FileStore).
type freezer interface{ Freeze(torn int) }

// Boot builds a world from its Spec and attaches every declared
// facility, in the one order that is correct for all callers:
//
//  1. boot the kernel — fresh (register images, install programs
//     sorted, run Setup hooks) or from a checkpoint;
//  2. replay and attach the journal (torn tail cut, writer sequenced
//     past the replayed prefix);
//  3. fsck-gate any recovered filesystem;
//  4. install telemetry, tracer, injector (crash hook freezing the
//     journal store), and supervisor;
//  5. construct the agent stack (Attach).
func Boot(spec Spec) (*World, error) {
	if spec.Register == nil {
		return nil, fmt.Errorf("world: spec %q has no image registry hook", spec.Name)
	}
	images := image.NewRegistry()
	spec.Register(images)

	w := &World{spec: spec}
	var err error
	switch {
	case spec.RestoreFrom != nil:
		w.k, err = kernel.Restore(images, spec.RestoreFrom)
	case spec.RestorePath != "":
		f, oerr := os.Open(spec.RestorePath)
		if oerr != nil {
			return nil, fmt.Errorf("world: restore: %w", oerr)
		}
		w.k, err = kernel.Restore(images, f)
		f.Close()
	default:
		w.k = kernel.New(images)
		// Programs are installed in sorted order so two boots assign
		// identical inode numbers throughout — a journal recorded
		// against one fresh world must replay exactly onto another.
		for _, name := range images.Names() {
			if err := w.k.InstallProgram("/bin/"+name, name); err != nil {
				return nil, fmt.Errorf("world: install %s: %w", name, err)
			}
		}
		for _, setup := range spec.Setup {
			if err := setup(w.k); err != nil {
				return nil, fmt.Errorf("world: setup: %w", err)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("world: boot: %w", err)
	}
	restored := spec.RestoreFrom != nil || spec.RestorePath != ""
	if err := w.finishBoot(restored); err != nil {
		return nil, err
	}
	return w, nil
}

// Fork clones a booted template into a new, independently bootable world
// without serializing through a checkpoint: the kernel is forked
// copy-on-write (kernel.Fork → vfs.FS.Fork), so the cost is O(#inodes)
// and independent of how many bytes the template's filesystem holds.
// This is the warm-pool fast path (pool.go).
//
// The child gets the facilities spec declares — its own telemetry
// registry, tracer, injector, supervisor, journal, agent stack — wired
// by the same sequencing Boot uses. Setup hooks do not run (the forked
// filesystem already carries the template's state, exactly like a
// restore), and restore fields are refused: a fork's filesystem comes
// from its parent. spec.Register is not consulted either — the child
// shares the parent's image registry, which is immutable after boot.
//
// Forking seals the parent's journal epoch first (Commit), so a journal
// recorded by the parent replays onto the child as pure skips — the
// child carries the parent's applied-sequence watermark.
func Fork(parent *World, spec Spec) (*World, error) {
	if spec.RestoreFrom != nil || spec.RestorePath != "" {
		return nil, fmt.Errorf("world: fork %q: cannot both fork and restore", spec.Name)
	}
	parent.mu.Lock()
	if parent.closed {
		parent.mu.Unlock()
		return nil, fmt.Errorf("world: fork %q: parent %s is closed", spec.Name, parent.spec.Name)
	}
	if parent.Crashed() {
		parent.mu.Unlock()
		return nil, fmt.Errorf("world: fork %q: parent %s crashed", spec.Name, parent.spec.Name)
	}
	if jw := parent.k.Journal(); jw != nil {
		if err := jw.Commit(); err != nil {
			parent.mu.Unlock()
			return nil, fmt.Errorf("world: fork: seal parent journal: %w", err)
		}
	}
	k, err := kernel.Fork(parent.k)
	parent.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("world: fork: %w", err)
	}
	w := &World{spec: spec, k: k}
	if err := w.finishBoot(false); err != nil {
		return nil, err
	}
	return w, nil
}

// finishBoot runs the facility half of the boot sequence on a world
// whose kernel already exists (freshly booted, restored, or forked):
// journal replay + attach, the fsck gate, telemetry, tracer, injector,
// supervisor, console mirror, and the agent stack — in the one order
// that is correct for all callers (see Boot).
func (w *World) finishBoot(restored bool) error {
	spec := w.spec

	// The journal attaches before anything runs. An existing file is
	// first replayed onto the world — onto the checkpoint on a restore
	// (the sequence watermark skips what the checkpoint already holds),
	// onto the fresh boot otherwise — so booting twice with the same
	// journal file recovers a crashed world and continues it.
	switch {
	case spec.JournalPath != "":
		st, data, jerr := journal.OpenFileStore(spec.JournalPath)
		if jerr != nil {
			return fmt.Errorf("world: journal: %w", jerr)
		}
		applied, skipped, torn, rerr := w.k.ReplayJournal(data)
		if rerr != nil {
			st.Close()
			return fmt.Errorf("world: journal replay: %w", rerr)
		}
		if torn != nil {
			if terr := st.TruncateTo(torn.Off); terr != nil {
				st.Close()
				return fmt.Errorf("world: journal: %w", terr)
			}
		}
		w.Applied, w.Skipped = applied, skipped
		w.Torn = torn
		jw := journal.NewWriter(st, 0)
		jw.StartAt(w.k.FS().JournalSeq() + 1)
		w.k.SetJournal(jw)
		w.jstore = st
	case spec.JournalMem:
		st := journal.NewMemStore(0)
		w.k.SetJournal(journal.NewWriter(st, 0))
		w.jstore = st
	}

	// The recovery verifier runs after every restore or replay: a world
	// that fails fsck must not be handed to programs.
	if restored || w.Replayed() > 0 {
		if bad := w.k.FS().Check(); len(bad) != 0 {
			w.releaseStore()
			return fmt.Errorf("world: recovered world fails fsck: %s", strings.Join(bad, "; "))
		}
	}

	if spec.Telemetry {
		w.reg = telemetry.NewRegistry()
		w.k.SetTelemetry(w.reg)
	}
	if t := spec.Trace; t != nil {
		w.tracer = trace.NewTracer(trace.Config{
			Sample:     t.Sample,
			Slow:       t.Slow,
			TailErrors: t.TailErrors,
		})
		w.k.SetSpanTracer(w.tracer)
	}
	if spec.Inject != "" {
		plan, perr := fault.ParsePlan(spec.Inject)
		if perr != nil {
			w.releaseStore()
			return fmt.Errorf("world: %w", perr)
		}
		w.inj = fault.NewInjector(plan)
		w.inj.OnCrash(func(torn int) {
			// The machine dies: the journal is frozen at its durable
			// prefix (minus any torn bytes) and every process killed.
			// What the store holds afterward is exactly what a recovery
			// may trust.
			if f, ok := w.jstore.(freezer); ok && f != nil {
				f.Freeze(torn)
			}
			w.k.Crash()
		})
		w.k.SetInjector(w.inj)
	}
	if s := spec.Supervise; s != nil {
		mode, supervised, merr := kernel.ParseSuperviseMode(s.Mode)
		if merr != nil {
			w.releaseStore()
			return fmt.Errorf("world: %w", merr)
		}
		if supervised {
			errno := sys.EFAULT
			if s.Errno != "" {
				e, ok := sys.ErrnoByName(s.Errno)
				if !ok {
					w.releaseStore()
					return fmt.Errorf("world: unknown supervise errno %q", s.Errno)
				}
				errno = e
			}
			w.k.SetSupervisor(kernel.NewSupervisor(w.k, kernel.SupervisorConfig{
				Mode:          mode,
				Errno:         errno,
				TripThreshold: s.TripThreshold,
				Window:        s.Window,
				Cooldown:      s.Cooldown,
				Deadline:      s.Deadline,
				OnQuarantine:  spec.OnQuarantine,
			}))
		} else if s.Deadline != 0 {
			w.releaseStore()
			return fmt.Errorf("world: supervise deadline requires strict or bypass mode")
		}
	}
	if spec.Mirror != nil {
		w.k.Console().Mirror(spec.Mirror)
	}

	if err := w.Attach(); err != nil {
		w.releaseStore()
		return err
	}
	return nil
}

// releaseStore closes a host-file journal store during failed boots.
func (w *World) releaseStore() {
	if c, ok := w.jstore.(io.Closer); ok && c != nil {
		c.Close()
	}
}

// Attach constructs the Spec's agent stack. Boot calls it; calling it
// again rebuilds the stack from the spec (fresh agent state for a world
// that wants per-session agents).
func (w *World) Attach() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var stack []core.Agent
	var insts []*agents.Instance
	for _, spec := range w.spec.Agents {
		inst, err := agents.New(spec)
		if err != nil {
			return fmt.Errorf("world: attach: %w", err)
		}
		stack = append(stack, inst.Agent)
		insts = append(insts, inst)
	}
	w.stack, w.insts = stack, insts
	return nil
}

// Kernel returns the booted machine.
func (w *World) Kernel() *kernel.Kernel { return w.k }

// Telemetry returns the world's registry, or nil.
func (w *World) Telemetry() *telemetry.Registry { return w.reg }

// Tracer returns the world's span tracer, or nil.
func (w *World) Tracer() *trace.Tracer { return w.tracer }

// Injector returns the world's fault injector, or nil.
func (w *World) Injector() *fault.Injector { return w.inj }

// Stack returns the attached agent stack (first closest to the kernel).
func (w *World) Stack() []core.Agent { return w.stack }

// Spec returns the spec the world was booted from.
func (w *World) Spec() Spec { return w.spec }

// Crashed reports whether an injected fault killed the world.
func (w *World) Crashed() bool { return w.inj != nil && w.inj.Crashed() }

// ErrDying is the error new sessions see on a world that Kill has
// condemned. It is retryable by contract: the supervisor that killed
// the world is already rebuilding a replacement.
var ErrDying = errors.New("world is being recycled")

// Dying reports whether Kill has condemned the world.
func (w *World) Dying() bool { return w.dying.Load() }

// Kill condemns a wedged or broken world so Close can reclaim it: the
// dying latch makes new sessions fail fast with ErrDying, and every
// guest process is killed with an unmaskable SIGKILL — which is what
// unblocks a session stuck under the world lock (the process table
// lock, not the world lock, guards signal posting, so Kill never
// queues behind the session it is trying to break). Unlike an injected
// crash, Kill does not freeze the journal store: the follow-up Close
// still commits the pending group, so a journal-backed world killed by
// its supervisor recovers everything it had durably written. Kill is
// idempotent and safe from any goroutine.
func (w *World) Kill() {
	if !w.dying.CompareAndSwap(false, true) {
		return
	}
	w.k.Crash()
}

// Exec runs one session to completion: launch req.Argv under the
// world's agent stack with the spec's resource budgets applied, wait
// for it, and return its status and console output. Sessions on one
// world are serialized — the console is a single terminal and its
// captured output belongs to one session at a time.
func (w *World) Exec(req ExecRequest) (ExecResult, error) {
	// Fail fast before queueing on the world lock: a wedged session may
	// hold it until Kill's SIGKILL lands, and new arrivals must not pile
	// up behind it.
	if w.dying.Load() {
		return ExecResult{}, fmt.Errorf("world: %s: %w", w.spec.Name, ErrDying)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dying.Load() {
		return ExecResult{}, fmt.Errorf("world: %s: %w", w.spec.Name, ErrDying)
	}
	if w.closed {
		return ExecResult{}, fmt.Errorf("world: %s: exec on closed world", w.spec.Name)
	}
	if len(req.Argv) == 0 {
		return ExecResult{}, fmt.Errorf("world: exec: empty argv")
	}
	path := req.Argv[0]
	if !strings.HasPrefix(path, "/") {
		path = "/bin/" + path
	}
	env := req.Env
	if env == nil {
		env = []string{"PATH=/bin:/usr/bin"}
	}

	if req.Feed != "" {
		w.k.Console().Feed(req.Feed)
	}
	// A session is non-interactive: a program that outlives its queued
	// input sees end-of-file, not a hang. FeedEOF is sticky and
	// idempotent; later Feeds still reach readers.
	w.k.Console().FeedEOF()
	w.k.Console().TakeOutput()

	start := time.Now()
	p := w.k.NewProc()
	// Every failure between NewProc and a successful Start must retire
	// the published process, or each bad argv / bad rlimit a tenant sends
	// leaks a process table entry and its address space until Close.
	if err := p.OpenConsole(); err != nil {
		w.k.Discard(p)
		return ExecResult{}, fmt.Errorf("world: exec: console: %w", err)
	}
	for _, a := range w.stack {
		core.Install(p, a)
	}
	for name, lim := range w.spec.Rlimits {
		res, ok := kernel.RlimitByName(name)
		if !ok {
			w.k.Discard(p)
			return ExecResult{}, fmt.Errorf("world: exec: unknown rlimit %q", name)
		}
		if err := p.SetRlimit(res, sys.Rlimit{Cur: sys.Word(lim), Max: sys.Word(lim)}); err != nil {
			w.k.Discard(p)
			return ExecResult{}, fmt.Errorf("world: exec: %w", err)
		}
	}
	if err := p.Start(path, req.Argv, env); err != nil {
		w.k.Discard(p)
		return ExecResult{}, fmt.Errorf("world: exec %v: %w", req.Argv, err)
	}
	status := w.k.WaitExit(p)

	res := ExecResult{
		Output:  w.k.Console().TakeOutput(),
		Elapsed: time.Since(start),
	}
	if sys.WIfExited(status) {
		res.Status = sys.WExitStatus(status)
	} else {
		res.Signal = sys.SignalName(sys.WTermSig(status))
		res.Status = 128 + sys.WTermSig(status)
	}
	return res, nil
}

// FinishReports writes each agent's end-of-run report (monitor counts,
// dfstrace records, sandbox violations, txn change lists, fault
// summaries) to wr, in stack order.
func (w *World) FinishReports(wr io.Writer) {
	w.mu.Lock()
	insts := w.insts
	w.mu.Unlock()
	for _, inst := range insts {
		if inst.Finish != nil {
			inst.Finish(wr)
		}
	}
}

// Checkpoint commits the journal (so checkpoint and journal agree on
// the sequence watermark) and writes the world's durable state to wr.
// A crashed world has no trustworthy live state to checkpoint — recover
// it from the journal instead.
func (w *World) Checkpoint(wr io.Writer) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("world: %s: checkpoint on closed world", w.spec.Name)
	}
	if w.Crashed() {
		return fmt.Errorf("world: %s crashed; no checkpoint (recover from the journal)", w.spec.Name)
	}
	if jw := w.k.Journal(); jw != nil {
		if err := jw.Commit(); err != nil {
			return fmt.Errorf("world: checkpoint: %w", err)
		}
	}
	return w.k.Checkpoint(wr)
}

// Close tears the world down completely: every guest process is killed
// and reaped (no goroutines survive), the journal's pending group is
// committed (unless the world crashed — a frozen store keeps exactly
// its durable prefix) and its host file closed, and every attached
// facility is detached so the kernel, registries, and rings are
// garbage. Close is idempotent; the first error (a failed journal
// flush) is returned but teardown always completes.
func (w *World) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true

	w.k.Shutdown()

	var firstErr error
	if jw := w.k.Journal(); jw != nil && !w.Crashed() {
		if err := jw.Commit(); err != nil {
			firstErr = fmt.Errorf("world: close: %w", err)
		}
	}
	if c, ok := w.jstore.(io.Closer); ok && c != nil {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("world: close: %w", err)
		}
	}
	w.k.SetJournal(nil)
	w.k.SetInjector(nil)
	w.k.SetSupervisor(nil)
	w.k.SetSpanTracer(nil)
	w.k.SetTelemetry(nil)
	w.k.Console().Mirror(nil)
	w.stack, w.insts = nil, nil
	return firstErr
}
