package world_test

import (
	"os"
	"path/filepath"
	"testing"

	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/world"
)

// forkSpec is the template spec of the fork tests: the application set
// plus a /state file to diverge on.
func forkSpec() world.Spec {
	spec := apps.Spec()
	spec.Setup = append(spec.Setup, func(k *kernel.Kernel) error {
		return k.WriteFile("/state", []byte("template\n"), 0o644)
	})
	return spec
}

func TestForkIsolation(t *testing.T) {
	tmpl := boot(t, forkSpec())

	child, err := world.Fork(tmpl, apps.Spec())
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	t.Cleanup(func() { child.Close() })

	// The child carries the template's filesystem — programs and state —
	// without Setup having run again.
	res := run(t, child, "cat", "/state")
	if res.Status != 0 || res.Output != "template\n" {
		t.Fatalf("child state: status %d output %q", res.Status, res.Output)
	}

	// Divergence is invisible across the fork, both directions.
	res = run(t, child, "sh", "-c", "echo child > /state")
	if res.Status != 0 {
		t.Fatalf("child write: status %d: %s", res.Status, res.Output)
	}
	res = run(t, tmpl, "cat", "/state")
	if res.Status != 0 || res.Output != "template\n" {
		t.Fatalf("child write leaked into template: %q", res.Output)
	}
	res = run(t, tmpl, "sh", "-c", "echo parent > /state")
	if res.Status != 0 {
		t.Fatalf("template write: status %d: %s", res.Status, res.Output)
	}
	res = run(t, child, "cat", "/state")
	if res.Status != 0 || res.Output != "child\n" {
		t.Fatalf("template write leaked into child: %q", res.Output)
	}

	// Both sides stay fsck-clean after diverging.
	if bad := tmpl.Kernel().FS().Check(); len(bad) != 0 {
		t.Fatalf("template fsck: %v", bad)
	}
	if bad := child.Kernel().FS().Check(); len(bad) != 0 {
		t.Fatalf("child fsck: %v", bad)
	}
}

func TestForkDeclaredFacilities(t *testing.T) {
	tmpl := boot(t, forkSpec())
	spec := apps.Spec()
	spec.Telemetry = true
	spec.Agents = []string{"trace"}
	child, err := world.Fork(tmpl, spec)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	t.Cleanup(func() { child.Close() })
	if child.Telemetry() == nil {
		t.Fatal("forked world missing its declared telemetry registry")
	}
	if len(child.Stack()) != 1 {
		t.Fatalf("forked world stack size %d, want 1", len(child.Stack()))
	}
	if tmpl.Telemetry() != nil || len(tmpl.Stack()) != 0 {
		t.Fatal("member facilities leaked onto the template")
	}
}

func TestForkRefusesRestore(t *testing.T) {
	tmpl := boot(t, forkSpec())
	spec := apps.Spec()
	spec.RestorePath = "/nonexistent.ckpt"
	if _, err := world.Fork(tmpl, spec); err == nil {
		t.Fatal("fork with a restore spec succeeded")
	}
}

func TestForkClosedParent(t *testing.T) {
	tmpl, err := world.Boot(forkSpec())
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := tmpl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := world.Fork(tmpl, apps.Spec()); err == nil {
		t.Fatal("fork of a closed world succeeded")
	}
}

// TestForkJournalConvergence pins the fork/journal contract from both
// directions. A journal recorded by one fork replays onto a sibling
// fork of the same template (the records are above the template's
// watermark); replaying the same journal a second time onto the
// now-converged world applies zero records — the watermark makes replay
// idempotent. And a fork taken from a journaling parent inherits the
// parent's watermark, so the parent's own journal replays onto it as
// pure skips.
func TestForkJournalConvergence(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "w.jnl")
	tmpl := boot(t, forkSpec())

	jspec := apps.Spec()
	jspec.JournalPath = jpath
	fork1, err := world.Fork(tmpl, jspec)
	if err != nil {
		t.Fatalf("fork1: %v", err)
	}
	res := run(t, fork1, "sh", "-c", "echo durable > /state")
	if res.Status != 0 {
		t.Fatalf("journaled write: status %d: %s", res.Status, res.Output)
	}
	if err := fork1.Close(); err != nil {
		t.Fatalf("close fork1: %v", err)
	}

	// First replay: a sibling fork recovers fork1's mutations from the
	// journal alone.
	fork2, err := world.Fork(tmpl, jspec)
	if err != nil {
		t.Fatalf("fork2: %v", err)
	}
	t.Cleanup(func() { fork2.Close() })
	if fork2.Applied == 0 {
		t.Fatal("sibling fork applied no journal records")
	}
	res = run(t, fork2, "cat", "/state")
	if res.Status != 0 || res.Output != "durable\n" {
		t.Fatalf("recovered state: status %d output %q", res.Status, res.Output)
	}

	// Second replay: the same journal applied again is all skips, and
	// the filesystem does not move.
	before := fork2.Kernel().FS().StateHash()
	data, rerr := os.ReadFile(jpath)
	if rerr != nil {
		t.Fatalf("read journal: %v", rerr)
	}
	applied, skipped, torn, perr := fork2.Kernel().ReplayJournal(data)
	if perr != nil || torn != nil {
		t.Fatalf("second replay: %v torn %v", perr, torn)
	}
	if applied != 0 {
		t.Fatalf("second replay applied %d records, want 0", applied)
	}
	if skipped == 0 {
		t.Fatal("second replay skipped nothing — journal vanished?")
	}
	if fork2.Kernel().FS().StateHash() != before {
		t.Fatal("second replay moved the filesystem")
	}

	// Fork of the journaling world: the child carries fork2's watermark,
	// so the journal fork2 already holds replays as pure skips.
	fork3, err := world.Fork(fork2, jspec)
	if err != nil {
		t.Fatalf("fork3: %v", err)
	}
	t.Cleanup(func() { fork3.Close() })
	if fork3.Applied != 0 {
		t.Fatalf("fork of journaling parent applied %d records, want 0", fork3.Applied)
	}
	if fork3.Skipped == 0 {
		t.Fatal("fork of journaling parent skipped nothing")
	}
	res = run(t, fork3, "cat", "/state")
	if res.Status != 0 || res.Output != "durable\n" {
		t.Fatalf("fork3 state: status %d output %q", res.Status, res.Output)
	}
}
