package sys

import "encoding/binary"

// Word is the machine word of the simulated 32-bit architecture. All
// pointers passed through the system interface are Words addressing the
// calling process's simulated address space.
type Word = uint32

// Limits of the simulated system.
const (
	PathMax     = 1024 // longest pathname, including NUL
	NameMax     = 255  // longest single pathname component
	ArgMax      = 64 * 1024
	OpenMax     = 64 // per-process descriptor table size
	PipeBuf     = 4096
	PageSize    = 4096
	NGroups     = 16
	HostnameMax = 256
)

// open() flags.
const (
	O_RDONLY   = 0x0000
	O_WRONLY   = 0x0001
	O_RDWR     = 0x0002
	O_ACCMODE  = 0x0003
	O_NONBLOCK = 0x0004
	O_APPEND   = 0x0008
	O_CREAT    = 0x0200
	O_TRUNC    = 0x0400
	O_EXCL     = 0x0800
)

// File mode bits (struct stat st_mode).
const (
	S_IFMT   = 0o170000
	S_IFIFO  = 0o010000
	S_IFCHR  = 0o020000
	S_IFDIR  = 0o040000
	S_IFBLK  = 0o060000
	S_IFREG  = 0o100000
	S_IFLNK  = 0o120000
	S_IFSOCK = 0o140000

	S_ISUID = 0o4000
	S_ISGID = 0o2000
	S_ISVTX = 0o1000

	S_IRWXU = 0o700
	S_IRUSR = 0o400
	S_IWUSR = 0o200
	S_IXUSR = 0o100
	S_IRWXG = 0o070
	S_IRGRP = 0o040
	S_IWGRP = 0o020
	S_IXGRP = 0o010
	S_IRWXO = 0o007
	S_IROTH = 0o004
	S_IWOTH = 0o002
	S_IXOTH = 0o001
)

// access() modes.
const (
	F_OK = 0
	X_OK = 1
	W_OK = 2
	R_OK = 4
)

// lseek whence values.
const (
	SEEK_SET = 0
	SEEK_CUR = 1
	SEEK_END = 2
)

// fcntl commands and flags.
const (
	F_DUPFD = 0
	F_GETFD = 1
	F_SETFD = 2
	F_GETFL = 3
	F_SETFL = 4

	FD_CLOEXEC = 1
)

// flock operations.
const (
	LOCK_SH = 1
	LOCK_EX = 2
	LOCK_NB = 4
	LOCK_UN = 8
)

// Signals, 4.3BSD numbering.
const (
	SIGHUP    = 1
	SIGINT    = 2
	SIGQUIT   = 3
	SIGILL    = 4
	SIGTRAP   = 5
	SIGABRT   = 6
	SIGEMT    = 7
	SIGFPE    = 8
	SIGKILL   = 9
	SIGBUS    = 10
	SIGSEGV   = 11
	SIGSYS    = 12
	SIGPIPE   = 13
	SIGALRM   = 14
	SIGTERM   = 15
	SIGURG    = 16
	SIGSTOP   = 17
	SIGTSTP   = 18
	SIGCONT   = 19
	SIGCHLD   = 20
	SIGTTIN   = 21
	SIGTTOU   = 22
	SIGIO     = 23
	SIGXCPU   = 24
	SIGXFSZ   = 25
	SIGVTALRM = 26
	SIGPROF   = 27
	SIGWINCH  = 28
	SIGINFO   = 29
	SIGUSR1   = 30
	SIGUSR2   = 31

	NSIG = 32
)

// Special signal handler "addresses" understood by sigvec.
const (
	SIG_DFL Word = 0
	SIG_IGN Word = 1
)

var sigName = [NSIG]string{
	SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGQUIT: "SIGQUIT", SIGILL: "SIGILL",
	SIGTRAP: "SIGTRAP", SIGABRT: "SIGABRT", SIGEMT: "SIGEMT", SIGFPE: "SIGFPE",
	SIGKILL: "SIGKILL", SIGBUS: "SIGBUS", SIGSEGV: "SIGSEGV", SIGSYS: "SIGSYS",
	SIGPIPE: "SIGPIPE", SIGALRM: "SIGALRM", SIGTERM: "SIGTERM", SIGURG: "SIGURG",
	SIGSTOP: "SIGSTOP", SIGTSTP: "SIGTSTP", SIGCONT: "SIGCONT", SIGCHLD: "SIGCHLD",
	SIGTTIN: "SIGTTIN", SIGTTOU: "SIGTTOU", SIGIO: "SIGIO", SIGXCPU: "SIGXCPU",
	SIGXFSZ: "SIGXFSZ", SIGVTALRM: "SIGVTALRM", SIGPROF: "SIGPROF",
	SIGWINCH: "SIGWINCH", SIGINFO: "SIGINFO", SIGUSR1: "SIGUSR1", SIGUSR2: "SIGUSR2",
}

// SignalName returns the symbolic name of a signal number.
func SignalName(sig int) string {
	if sig > 0 && sig < NSIG && sigName[sig] != "" {
		return sigName[sig]
	}
	return "signal#" + itoa(sig)
}

// SigMask returns the mask bit for a signal, as used by sigblock and
// sigsetmask. Signal 1 is bit 0, as in 4.3BSD.
func SigMask(sig int) uint32 { return 1 << (uint(sig) - 1) }

// Wait status construction and inspection, mirroring <sys/wait.h>.

// WExitStatus builds a wait status word for a normal exit.
func WStatusExit(code int) Word { return Word(code&0xff) << 8 }

// WStatusSignal builds a wait status word for death by signal.
func WStatusSignal(sig int) Word { return Word(sig & 0x7f) }

// WIfExited reports whether the status denotes a normal exit.
func WIfExited(status Word) bool { return status&0x7f == 0 }

// WExitStatus extracts the exit code from a normal-exit status.
func WExitStatus(status Word) int { return int(status>>8) & 0xff }

// WTermSig extracts the terminating signal from a killed-by-signal status.
func WTermSig(status Word) int { return int(status & 0x7f) }

// wait4 options.
const (
	WNOHANG   = 1
	WUNTRACED = 2
)

// Resource limits.
const (
	RLIMIT_CPU    = 0
	RLIMIT_FSIZE  = 1
	RLIMIT_DATA   = 2
	RLIMIT_STACK  = 3
	RLIMIT_CORE   = 4
	RLIMIT_RSS    = 5
	RLIMIT_NOFILE = 6
	RLIM_NLIMITS  = 7

	RLIM_INFINITY = 0x7fffffff
)

// ioctl requests implemented by the simulated tty driver.
const (
	TIOCGWINSZ = 0x4008_7468
	TIOCGPGRP  = 0x4004_7477
	TIOCSPGRP  = 0x8004_7476
)

// Timeval is the 4.3BSD struct timeval: seconds and microseconds.
type Timeval struct {
	Sec  uint32
	Usec uint32
}

// TimevalSize is the encoded size of a Timeval.
const TimevalSize = 8

// Encode writes the binary form of tv into b, which must be at least
// TimevalSize bytes.
func (tv Timeval) Encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], tv.Sec)
	binary.LittleEndian.PutUint32(b[4:], tv.Usec)
}

// DecodeTimeval parses a Timeval from b.
func DecodeTimeval(b []byte) Timeval {
	return Timeval{
		Sec:  binary.LittleEndian.Uint32(b[0:]),
		Usec: binary.LittleEndian.Uint32(b[4:]),
	}
}

// Interval timers (setitimer).
const (
	ITIMER_REAL = 0

	// ItimervalSize is the encoded size of a struct itimerval: the
	// interval and current value timevals.
	ItimervalSize = 2 * TimevalSize
)

// Itimerval is the 4.3BSD struct itimerval.
type Itimerval struct {
	Interval Timeval // reload value for periodic timers
	Value    Timeval // time until next expiration (zero = disarmed)
}

// Encode writes the binary form of it into b.
func (it Itimerval) Encode(b []byte) {
	it.Interval.Encode(b[0:])
	it.Value.Encode(b[8:])
}

// DecodeItimerval parses an Itimerval from b.
func DecodeItimerval(b []byte) Itimerval {
	return Itimerval{Interval: DecodeTimeval(b[0:]), Value: DecodeTimeval(b[8:])}
}

// Duration converts a Timeval to a time duration in microsecond units.
func (tv Timeval) Duration() int64 { return int64(tv.Sec)*1_000_000 + int64(tv.Usec) }

// Stat is the 4.3BSD struct stat.
type Stat struct {
	Dev     uint32
	Ino     uint32
	Mode    uint32
	Nlink   uint32
	UID     uint32
	GID     uint32
	Rdev    uint32
	Size    uint32
	Atime   Timeval
	Mtime   Timeval
	Ctime   Timeval
	Blksize uint32
	Blocks  uint32
}

// StatSize is the encoded size of a Stat: eight words, three timevals,
// and two trailing words.
const StatSize = 8*4 + 3*TimevalSize + 2*4

// Encode writes the binary form of st into b, which must be at least
// StatSize bytes.
func (st Stat) Encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], st.Dev)
	le.PutUint32(b[4:], st.Ino)
	le.PutUint32(b[8:], st.Mode)
	le.PutUint32(b[12:], st.Nlink)
	le.PutUint32(b[16:], st.UID)
	le.PutUint32(b[20:], st.GID)
	le.PutUint32(b[24:], st.Rdev)
	le.PutUint32(b[28:], st.Size)
	st.Atime.Encode(b[32:])
	st.Mtime.Encode(b[40:])
	st.Ctime.Encode(b[48:])
	le.PutUint32(b[56:], st.Blksize)
	le.PutUint32(b[60:], st.Blocks)
}

// DecodeStat parses a Stat from b.
func DecodeStat(b []byte) Stat {
	le := binary.LittleEndian
	return Stat{
		Dev:     le.Uint32(b[0:]),
		Ino:     le.Uint32(b[4:]),
		Mode:    le.Uint32(b[8:]),
		Nlink:   le.Uint32(b[12:]),
		UID:     le.Uint32(b[16:]),
		GID:     le.Uint32(b[20:]),
		Rdev:    le.Uint32(b[24:]),
		Size:    le.Uint32(b[28:]),
		Atime:   DecodeTimeval(b[32:]),
		Mtime:   DecodeTimeval(b[40:]),
		Ctime:   DecodeTimeval(b[48:]),
		Blksize: le.Uint32(b[56:]),
		Blocks:  le.Uint32(b[60:]),
	}
}

// IsDir reports whether the mode denotes a directory.
func (st Stat) IsDir() bool { return st.Mode&S_IFMT == S_IFDIR }

// IsReg reports whether the mode denotes a regular file.
func (st Stat) IsReg() bool { return st.Mode&S_IFMT == S_IFREG }

// Rusage is an abbreviated 4.3BSD struct rusage.
type Rusage struct {
	Utime    Timeval
	Stime    Timeval
	Maxrss   uint32
	Minflt   uint32
	Majflt   uint32
	Inblock  uint32
	Oublock  uint32
	Nsignals uint32
	Nvcsw    uint32
	Nivcsw   uint32
	Nsyscall uint32 // extension: system calls made
}

// RusageSize is the encoded size of a Rusage.
const RusageSize = 2*TimevalSize + 9*4

// Encode writes the binary form of ru into b.
func (ru Rusage) Encode(b []byte) {
	le := binary.LittleEndian
	ru.Utime.Encode(b[0:])
	ru.Stime.Encode(b[8:])
	le.PutUint32(b[16:], ru.Maxrss)
	le.PutUint32(b[20:], ru.Minflt)
	le.PutUint32(b[24:], ru.Majflt)
	le.PutUint32(b[28:], ru.Inblock)
	le.PutUint32(b[32:], ru.Oublock)
	le.PutUint32(b[36:], ru.Nsignals)
	le.PutUint32(b[40:], ru.Nvcsw)
	le.PutUint32(b[44:], ru.Nivcsw)
	le.PutUint32(b[48:], ru.Nsyscall)
}

// DecodeRusage parses a Rusage from b.
func DecodeRusage(b []byte) Rusage {
	le := binary.LittleEndian
	return Rusage{
		Utime:    DecodeTimeval(b[0:]),
		Stime:    DecodeTimeval(b[8:]),
		Maxrss:   le.Uint32(b[16:]),
		Minflt:   le.Uint32(b[20:]),
		Majflt:   le.Uint32(b[24:]),
		Inblock:  le.Uint32(b[28:]),
		Oublock:  le.Uint32(b[32:]),
		Nsignals: le.Uint32(b[36:]),
		Nvcsw:    le.Uint32(b[40:]),
		Nivcsw:   le.Uint32(b[44:]),
		Nsyscall: le.Uint32(b[48:]),
	}
}

// getrusage who values.
const (
	RUSAGE_SELF     = 0
	RUSAGE_CHILDREN = 0xffffffff // -1 as a Word
)

// Rlimit is the 4.3BSD struct rlimit.
type Rlimit struct {
	Cur uint32
	Max uint32
}

// RlimitSize is the encoded size of an Rlimit.
const RlimitSize = 8

// Encode writes the binary form of rl into b.
func (rl Rlimit) Encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], rl.Cur)
	binary.LittleEndian.PutUint32(b[4:], rl.Max)
}

// DecodeRlimit parses an Rlimit from b.
func DecodeRlimit(b []byte) Rlimit {
	return Rlimit{
		Cur: binary.LittleEndian.Uint32(b[0:]),
		Max: binary.LittleEndian.Uint32(b[4:]),
	}
}

// Sigvec is the 4.3BSD struct sigvec passed to the sigvec system call.
// Handler holds SIG_DFL, SIG_IGN, or an application handler token.
type Sigvec struct {
	Handler Word
	Mask    uint32
	Flags   uint32
}

// SigvecSize is the encoded size of a Sigvec.
const SigvecSize = 12

// Encode writes the binary form of sv into b.
func (sv Sigvec) Encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], sv.Handler)
	le.PutUint32(b[4:], sv.Mask)
	le.PutUint32(b[8:], sv.Flags)
}

// DecodeSigvec parses a Sigvec from b.
func DecodeSigvec(b []byte) Sigvec {
	le := binary.LittleEndian
	return Sigvec{Handler: le.Uint32(b[0:]), Mask: le.Uint32(b[4:]), Flags: le.Uint32(b[8:])}
}

// Dirent is one record in the byte stream produced by getdirentries,
// mirroring the 4.3BSD struct direct.
type Dirent struct {
	Ino  uint32
	Name string
}

// DirentRecLen returns the on-"disk" record length for a name: the fixed
// header (ino, reclen, namlen) plus the NUL-terminated name, padded to a
// 4-byte boundary.
func DirentRecLen(name string) int {
	return (8 + len(name) + 1 + 3) &^ 3
}

// EncodeDirent appends the binary form of d to b and returns the extended
// slice.
func EncodeDirent(b []byte, d Dirent) []byte {
	rl := DirentRecLen(d.Name)
	off := len(b)
	b = append(b, make([]byte, rl)...)
	le := binary.LittleEndian
	le.PutUint32(b[off:], d.Ino)
	le.PutUint16(b[off+4:], uint16(rl))
	le.PutUint16(b[off+6:], uint16(len(d.Name)))
	copy(b[off+8:], d.Name)
	return b
}

// DecodeDirents parses the records in a getdirentries byte stream.
func DecodeDirents(b []byte) []Dirent {
	le := binary.LittleEndian
	var out []Dirent
	for len(b) >= 8 {
		rl := int(le.Uint16(b[4:]))
		nl := int(le.Uint16(b[6:]))
		if rl < 8 || rl > len(b) || 8+nl > rl {
			break
		}
		out = append(out, Dirent{Ino: le.Uint32(b[0:]), Name: string(b[8 : 8+nl])})
		b = b[rl:]
	}
	return out
}
