package sys

// Args is the untyped numeric argument vector of a system call, as seen at
// the lowest (numeric) layer of the system interface. Pointer arguments are
// Words addressing the calling process's simulated address space.
type Args [6]Word

// Retval is the two-word return value register pair of a system call
// (the paper's "int rv[2]"). Most calls use only R0; pipe uses both.
type Retval [2]Word

// Ctx is the per-call context handed to every instance of the system
// interface: it identifies the calling process and gives access to its
// simulated address space. The kernel's Proc type implements Ctx; agents
// use it to decode and encode call arguments.
type Ctx interface {
	// PID returns the calling process's id.
	PID() int
	// CopyIn copies len(p) bytes from the caller's address space at addr.
	CopyIn(addr Word, p []byte) Errno
	// CopyOut copies p into the caller's address space at addr.
	CopyOut(addr Word, p []byte) Errno
	// CopyInString copies a NUL-terminated string of at most max bytes
	// (excluding the NUL) from the caller's address space.
	CopyInString(addr Word, max int) (string, Errno)
}

// Handler is one instance of the system interface: a single entry point
// accepting a system call number and a vector of untyped numeric arguments.
// Both the kernel and every interposition agent layer implement Handler.
type Handler interface {
	Syscall(c Ctx, num int, a Args) (Retval, Errno)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(c Ctx, num int, a Args) (Retval, Errno)

// Syscall calls f.
func (f HandlerFunc) Syscall(c Ctx, num int, a Args) (Retval, Errno) {
	return f(c, num, a)
}

// SignalInterposer is the upward half of the system interface: the set of
// upcalls (signals) the system can make on applications. An agent layer
// that implements SignalInterposer sees each signal on its way from the
// kernel up to the application and may observe, modify, or suppress it.
type SignalInterposer interface {
	// Signal is invoked when sig is about to be delivered to process c.
	// The returned signal is delivered to the next layer up (ultimately
	// the application); returning 0 suppresses delivery.
	Signal(c Ctx, sig int, code int) int
}

// Interposer is the full bidirectional system interface boundary:
// system calls flowing down and signals flowing up.
type Interposer interface {
	Handler
	SignalInterposer
}
