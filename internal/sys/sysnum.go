package sys

// System call numbers, following the historical 4.3BSD numbering where a
// call existed there. The set below is the portion of the 4.3BSD interface
// implemented by the simulated kernel and understood by the toolkit's
// symbolic system call layer.
const (
	SYS_exit          = 1
	SYS_fork          = 2
	SYS_read          = 3
	SYS_write         = 4
	SYS_open          = 5
	SYS_close         = 6
	SYS_wait4         = 7
	SYS_creat         = 8
	SYS_link          = 9
	SYS_unlink        = 10
	SYS_chdir         = 12
	SYS_fchdir        = 13
	SYS_mknod         = 14
	SYS_chmod         = 15
	SYS_chown         = 16
	SYS_brk           = 17
	SYS_lseek         = 19
	SYS_getpid        = 20
	SYS_setuid        = 23
	SYS_getuid        = 24
	SYS_geteuid       = 25
	SYS_access        = 33
	SYS_sync          = 36
	SYS_kill          = 37
	SYS_stat          = 38
	SYS_getppid       = 39
	SYS_lstat         = 40
	SYS_dup           = 41
	SYS_pipe          = 42
	SYS_getegid       = 43
	SYS_getgid        = 47
	SYS_ioctl         = 54
	SYS_symlink       = 57
	SYS_readlink      = 58
	SYS_execve        = 59
	SYS_umask         = 60
	SYS_chroot        = 61
	SYS_fstat         = 62
	SYS_getpagesize   = 64
	SYS_getgroups     = 79
	SYS_setgroups     = 80
	SYS_getpgrp       = 81
	SYS_setpgrp       = 82
	SYS_setitimer     = 83
	SYS_getitimer     = 86
	SYS_gethostname   = 87
	SYS_sethostname   = 88
	SYS_getdtablesize = 89
	SYS_dup2          = 90
	SYS_fcntl         = 92
	SYS_fsync         = 95
	SYS_sigvec        = 108
	SYS_sigblock      = 109
	SYS_sigsetmask    = 110
	SYS_sigpause      = 111
	SYS_gettimeofday  = 116
	SYS_getrusage     = 117
	SYS_settimeofday  = 122
	SYS_rename        = 128
	SYS_truncate      = 129
	SYS_ftruncate     = 130
	SYS_flock         = 131
	SYS_mkdir         = 136
	SYS_rmdir         = 137
	SYS_utimes        = 138
	SYS_setsid        = 147
	SYS_getrlimit     = 144
	SYS_setrlimit     = 145
	SYS_getdirentries = 156

	// MaxSyscall is one past the highest valid system call number; tables
	// indexed by call number have this length.
	MaxSyscall = 160
)

// sysName maps call numbers to their traditional names.
var sysName = [MaxSyscall]string{
	SYS_exit:          "exit",
	SYS_fork:          "fork",
	SYS_read:          "read",
	SYS_write:         "write",
	SYS_open:          "open",
	SYS_close:         "close",
	SYS_wait4:         "wait4",
	SYS_creat:         "creat",
	SYS_link:          "link",
	SYS_unlink:        "unlink",
	SYS_chdir:         "chdir",
	SYS_fchdir:        "fchdir",
	SYS_mknod:         "mknod",
	SYS_chmod:         "chmod",
	SYS_chown:         "chown",
	SYS_brk:           "brk",
	SYS_lseek:         "lseek",
	SYS_getpid:        "getpid",
	SYS_setuid:        "setuid",
	SYS_getuid:        "getuid",
	SYS_geteuid:       "geteuid",
	SYS_access:        "access",
	SYS_sync:          "sync",
	SYS_kill:          "kill",
	SYS_stat:          "stat",
	SYS_getppid:       "getppid",
	SYS_lstat:         "lstat",
	SYS_dup:           "dup",
	SYS_pipe:          "pipe",
	SYS_getegid:       "getegid",
	SYS_getgid:        "getgid",
	SYS_ioctl:         "ioctl",
	SYS_symlink:       "symlink",
	SYS_readlink:      "readlink",
	SYS_execve:        "execve",
	SYS_umask:         "umask",
	SYS_chroot:        "chroot",
	SYS_fstat:         "fstat",
	SYS_getpagesize:   "getpagesize",
	SYS_getgroups:     "getgroups",
	SYS_setgroups:     "setgroups",
	SYS_getpgrp:       "getpgrp",
	SYS_setpgrp:       "setpgrp",
	SYS_setitimer:     "setitimer",
	SYS_getitimer:     "getitimer",
	SYS_gethostname:   "gethostname",
	SYS_sethostname:   "sethostname",
	SYS_getdtablesize: "getdtablesize",
	SYS_dup2:          "dup2",
	SYS_fcntl:         "fcntl",
	SYS_fsync:         "fsync",
	SYS_sigvec:        "sigvec",
	SYS_sigblock:      "sigblock",
	SYS_sigsetmask:    "sigsetmask",
	SYS_sigpause:      "sigpause",
	SYS_gettimeofday:  "gettimeofday",
	SYS_getrusage:     "getrusage",
	SYS_settimeofday:  "settimeofday",
	SYS_rename:        "rename",
	SYS_truncate:      "truncate",
	SYS_ftruncate:     "ftruncate",
	SYS_flock:         "flock",
	SYS_mkdir:         "mkdir",
	SYS_rmdir:         "rmdir",
	SYS_utimes:        "utimes",
	SYS_setsid:        "setsid",
	SYS_getrlimit:     "getrlimit",
	SYS_setrlimit:     "setrlimit",
	SYS_getdirentries: "getdirentries",
}

// SyscallName returns the traditional name of a system call number, or a
// numeric placeholder for numbers outside the implemented set.
func SyscallName(num int) string {
	if num >= 0 && num < MaxSyscall && sysName[num] != "" {
		return sysName[num]
	}
	return "syscall#" + itoa(num)
}

// ValidSyscall reports whether num names an implemented system call.
func ValidSyscall(num int) bool {
	return num >= 0 && num < MaxSyscall && sysName[num] != ""
}

// Syscalls returns the sorted list of implemented system call numbers.
func Syscalls() []int {
	var out []int
	for n, name := range sysName {
		if name != "" {
			out = append(out, n)
		}
	}
	return out
}

// SyscallByName resolves a traditional system call name ("open") to its
// number, the inverse of SyscallName.
func SyscallByName(name string) (int, bool) {
	for n, s := range sysName {
		if s == name {
			return n, true
		}
	}
	return 0, false
}
