package sys

import (
	"testing"
	"testing/quick"
)

func TestErrnoStrings(t *testing.T) {
	if ENOENT.Error() != "no such file or directory" {
		t.Fatalf("ENOENT text = %q", ENOENT.Error())
	}
	if ENOENT.Name() != "ENOENT" {
		t.Fatalf("ENOENT name = %q", ENOENT.Name())
	}
	if Errno(999).Name() != "E999" {
		t.Fatalf("unknown errno name = %q", Errno(999).Name())
	}
	if Errno(999).Error() != "errno 999" {
		t.Fatalf("unknown errno text = %q", Errno(999).Error())
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -13: "-13", 100000: "100000"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSyscallNames(t *testing.T) {
	if SyscallName(SYS_open) != "open" {
		t.Fatalf("open name = %q", SyscallName(SYS_open))
	}
	if SyscallName(159) != "syscall#159" {
		t.Fatalf("unknown = %q", SyscallName(159))
	}
	if !ValidSyscall(SYS_read) || ValidSyscall(11) || ValidSyscall(-1) || ValidSyscall(MaxSyscall) {
		t.Fatal("ValidSyscall wrong")
	}
	if n := len(Syscalls()); n < 60 {
		t.Fatalf("only %d syscalls implemented", n)
	}
}

func TestSignalNames(t *testing.T) {
	if SignalName(SIGKILL) != "SIGKILL" {
		t.Fatalf("SIGKILL = %q", SignalName(SIGKILL))
	}
	if SignalName(0) != "signal#0" {
		t.Fatalf("signal 0 = %q", SignalName(0))
	}
}

func TestSigMask(t *testing.T) {
	if SigMask(SIGHUP) != 1 {
		t.Fatalf("SIGHUP mask = %#x", SigMask(SIGHUP))
	}
	if SigMask(SIGUSR2) != 1<<30 {
		t.Fatalf("SIGUSR2 mask = %#x", SigMask(SIGUSR2))
	}
	// All signal masks are distinct bits.
	seen := uint32(0)
	for s := 1; s < NSIG; s++ {
		m := SigMask(s)
		if m == 0 || seen&m != 0 {
			t.Fatalf("mask collision at %d", s)
		}
		seen |= m
	}
}

func TestWaitStatus(t *testing.T) {
	st := WStatusExit(42)
	if !WIfExited(st) || WExitStatus(st) != 42 {
		t.Fatalf("exit status %#x", st)
	}
	st = WStatusSignal(SIGTERM)
	if WIfExited(st) || WTermSig(st) != SIGTERM {
		t.Fatalf("signal status %#x", st)
	}
	// Property: every exit code round-trips modulo 256.
	f := func(code uint8) bool {
		st := WStatusExit(int(code))
		return WIfExited(st) && WExitStatus(st) == int(code)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimevalRoundTrip(t *testing.T) {
	f := func(sec, usec uint32) bool {
		var b [TimevalSize]byte
		Timeval{Sec: sec, Usec: usec}.Encode(b[:])
		got := DecodeTimeval(b[:])
		return got.Sec == sec && got.Usec == usec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatRoundTrip(t *testing.T) {
	f := func(dev, ino, mode, nlink, uid, gid, rdev, size, bs, blocks uint32) bool {
		in := Stat{
			Dev: dev, Ino: ino, Mode: mode, Nlink: nlink, UID: uid, GID: gid,
			Rdev: rdev, Size: size,
			Atime: Timeval{Sec: 1, Usec: 2}, Mtime: Timeval{Sec: 3, Usec: 4},
			Ctime: Timeval{Sec: 5, Usec: 6}, Blksize: bs, Blocks: blocks,
		}
		var b [StatSize]byte
		in.Encode(b[:])
		return DecodeStat(b[:]) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatPredicates(t *testing.T) {
	if !(Stat{Mode: S_IFDIR | 0o755}).IsDir() || (Stat{Mode: S_IFREG}).IsDir() {
		t.Fatal("IsDir wrong")
	}
	if !(Stat{Mode: S_IFREG | 0o644}).IsReg() || (Stat{Mode: S_IFLNK}).IsReg() {
		t.Fatal("IsReg wrong")
	}
}

func TestRusageRoundTrip(t *testing.T) {
	in := Rusage{
		Utime: Timeval{Sec: 1, Usec: 2}, Stime: Timeval{Sec: 3, Usec: 4},
		Maxrss: 5, Minflt: 6, Majflt: 7, Inblock: 8, Oublock: 9,
		Nsignals: 10, Nvcsw: 11, Nivcsw: 12, Nsyscall: 13,
	}
	var b [RusageSize]byte
	in.Encode(b[:])
	if DecodeRusage(b[:]) != in {
		t.Fatal("rusage round trip")
	}
}

func TestRlimitRoundTrip(t *testing.T) {
	var b [RlimitSize]byte
	Rlimit{Cur: 10, Max: 20}.Encode(b[:])
	if got := DecodeRlimit(b[:]); got.Cur != 10 || got.Max != 20 {
		t.Fatalf("rlimit = %+v", got)
	}
}

func TestSigvecRoundTrip(t *testing.T) {
	var b [SigvecSize]byte
	Sigvec{Handler: 0x1234, Mask: 0x5678, Flags: 1}.Encode(b[:])
	got := DecodeSigvec(b[:])
	if got.Handler != 0x1234 || got.Mask != 0x5678 || got.Flags != 1 {
		t.Fatalf("sigvec = %+v", got)
	}
}

func TestDirentEncoding(t *testing.T) {
	var b []byte
	b = EncodeDirent(b, Dirent{Ino: 2, Name: "."})
	b = EncodeDirent(b, Dirent{Ino: 7, Name: "hello.txt"})
	b = EncodeDirent(b, Dirent{Ino: 9, Name: "x"})
	got := DecodeDirents(b)
	want := []Dirent{{2, "."}, {7, "hello.txt"}, {9, "x"}}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDirentRecLenAligned(t *testing.T) {
	f := func(nameLen uint8) bool {
		name := make([]byte, int(nameLen)%NameMax+1)
		for i := range name {
			name[i] = 'a'
		}
		rl := DirentRecLen(string(name))
		return rl%4 == 0 && rl >= 8+len(name)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirentRoundTripProperty(t *testing.T) {
	f := func(inos []uint32) bool {
		var b []byte
		var want []Dirent
		for i, ino := range inos {
			name := "f" + itoa(i)
			want = append(want, Dirent{Ino: ino, Name: name})
			b = EncodeDirent(b, Dirent{Ino: ino, Name: name})
		}
		got := DecodeDirents(b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDirentsMalformed(t *testing.T) {
	// Truncated or corrupt streams must not panic and must stop cleanly.
	for _, b := range [][]byte{
		nil,
		{1, 2, 3},
		{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}, // huge reclen
		{0, 0, 0, 0, 8, 0, 20, 0},            // namlen > reclen
	} {
		if got := DecodeDirents(b); len(got) != 0 {
			t.Fatalf("decoded %d entries from garbage %v", len(got), b)
		}
	}
}

func TestHandlerFunc(t *testing.T) {
	called := false
	h := HandlerFunc(func(c Ctx, num int, a Args) (Retval, Errno) {
		called = true
		return Retval{42}, OK
	})
	rv, err := h.Syscall(nil, 1, Args{})
	if !called || rv[0] != 42 || err != OK {
		t.Fatal("HandlerFunc dispatch")
	}
}
