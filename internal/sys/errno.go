// Package sys defines the simulated 4.3BSD system interface: system call
// numbers, error numbers, shared kernel/user types and their binary
// encodings, and the Handler interface through which every instance of the
// system interface — the kernel and any interposition agents — is invoked.
//
// The package deliberately mirrors the structure described in the paper
// "Interposition Agents: Transparently Interposing User Code at the System
// Interface" (Jones, SOSP '93): the system interface is a single entry
// point accepting vectors of untyped numeric arguments, plus the set of
// signals the system can deliver upward to applications.
package sys

// Errno is a 4.3BSD-style error number. Zero means success.
type Errno int

// Error numbers, following the historical BSD values.
const (
	OK           Errno = 0  // no error
	EPERM        Errno = 1  // operation not permitted
	ENOENT       Errno = 2  // no such file or directory
	ESRCH        Errno = 3  // no such process
	EINTR        Errno = 4  // interrupted system call
	EIO          Errno = 5  // input/output error
	ENXIO        Errno = 6  // device not configured
	E2BIG        Errno = 7  // argument list too long
	ENOEXEC      Errno = 8  // exec format error
	EBADF        Errno = 9  // bad file descriptor
	ECHILD       Errno = 10 // no child processes
	EDEADLK      Errno = 11 // resource deadlock avoided
	ENOMEM       Errno = 12 // cannot allocate memory
	EACCES       Errno = 13 // permission denied
	EFAULT       Errno = 14 // bad address
	ENOTBLK      Errno = 15 // block device required
	EBUSY        Errno = 16 // device busy
	EEXIST       Errno = 17 // file exists
	EXDEV        Errno = 18 // cross-device link
	ENODEV       Errno = 19 // operation not supported by device
	ENOTDIR      Errno = 20 // not a directory
	EISDIR       Errno = 21 // is a directory
	EINVAL       Errno = 22 // invalid argument
	ENFILE       Errno = 23 // too many open files in system
	EMFILE       Errno = 24 // too many open files
	ENOTTY       Errno = 25 // inappropriate ioctl for device
	ETXTBSY      Errno = 26 // text file busy
	EFBIG        Errno = 27 // file too large
	ENOSPC       Errno = 28 // no space left on device
	ESPIPE       Errno = 29 // illegal seek
	EROFS        Errno = 30 // read-only file system
	EMLINK       Errno = 31 // too many links
	EPIPE        Errno = 32 // broken pipe
	EDOM         Errno = 33 // numerical argument out of domain
	ERANGE       Errno = 34 // result too large
	EAGAIN       Errno = 35 // resource temporarily unavailable
	ENOSYS       Errno = 36 // function not implemented (no such system call)
	ELOOP        Errno = 62 // too many levels of symbolic links
	ENAMETOOLONG Errno = 63 // file name too long
	ENOTEMPTY    Errno = 66 // directory not empty
)

var errnoText = map[Errno]string{
	OK:           "no error",
	EPERM:        "operation not permitted",
	ENOENT:       "no such file or directory",
	ESRCH:        "no such process",
	EINTR:        "interrupted system call",
	EIO:          "input/output error",
	ENXIO:        "device not configured",
	E2BIG:        "argument list too long",
	ENOEXEC:      "exec format error",
	EBADF:        "bad file descriptor",
	ECHILD:       "no child processes",
	EDEADLK:      "resource deadlock avoided",
	ENOMEM:       "cannot allocate memory",
	EACCES:       "permission denied",
	EFAULT:       "bad address",
	ENOTBLK:      "block device required",
	EBUSY:        "device busy",
	EEXIST:       "file exists",
	EXDEV:        "cross-device link",
	ENODEV:       "operation not supported by device",
	ENOTDIR:      "not a directory",
	EISDIR:       "is a directory",
	EINVAL:       "invalid argument",
	ENFILE:       "too many open files in system",
	EMFILE:       "too many open files",
	ENOTTY:       "inappropriate ioctl for device",
	ETXTBSY:      "text file busy",
	EFBIG:        "file too large",
	ENOSPC:       "no space left on device",
	ESPIPE:       "illegal seek",
	EROFS:        "read-only file system",
	EMLINK:       "too many links",
	EPIPE:        "broken pipe",
	EDOM:         "numerical argument out of domain",
	ERANGE:       "result too large",
	EAGAIN:       "resource temporarily unavailable",
	ENOSYS:       "function not implemented",
	ELOOP:        "too many levels of symbolic links",
	ENAMETOOLONG: "file name too long",
	ENOTEMPTY:    "directory not empty",
}

var errnoName = map[Errno]string{
	EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
	EIO: "EIO", ENXIO: "ENXIO", E2BIG: "E2BIG", ENOEXEC: "ENOEXEC",
	EBADF: "EBADF", ECHILD: "ECHILD", EDEADLK: "EDEADLK", ENOMEM: "ENOMEM",
	EACCES: "EACCES", EFAULT: "EFAULT", ENOTBLK: "ENOTBLK", EBUSY: "EBUSY",
	EEXIST: "EEXIST", EXDEV: "EXDEV", ENODEV: "ENODEV", ENOTDIR: "ENOTDIR",
	EISDIR: "EISDIR", EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE",
	ENOTTY: "ENOTTY", ETXTBSY: "ETXTBSY", EFBIG: "EFBIG", ENOSPC: "ENOSPC",
	ESPIPE: "ESPIPE", EROFS: "EROFS", EMLINK: "EMLINK", EPIPE: "EPIPE",
	EDOM: "EDOM", ERANGE: "ERANGE", EAGAIN: "EAGAIN", ENOSYS: "ENOSYS",
	ELOOP: "ELOOP", ENAMETOOLONG: "ENAMETOOLONG", ENOTEMPTY: "ENOTEMPTY",
}

// Error implements the error interface so an Errno can be returned from Go
// code directly. OK should never be treated as an error value.
func (e Errno) Error() string {
	if s, ok := errnoText[e]; ok {
		return s
	}
	return "errno " + itoa(int(e))
}

// Name returns the symbolic name ("ENOENT") of the error number.
func (e Errno) Name() string {
	if s, ok := errnoName[e]; ok {
		return s
	}
	return "E" + itoa(int(e))
}

// ErrnoByName resolves a symbolic error name ("ENOENT") to its number, the
// inverse of Name.
func ErrnoByName(name string) (Errno, bool) {
	for e, s := range errnoName {
		if s == name {
			return e, true
		}
	}
	return 0, false
}

// itoa is a minimal integer formatter so this low-level package does not
// depend on fmt or strconv.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
