package vfs

import (
	"fmt"
	"sync"
	"testing"

	"interpose/internal/sys"
)

// warm resolves path once so its components are in the dentry cache.
func warm(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	ip, err := fs.Lookup(fs.Root(), path, root0, true)
	if err != sys.OK {
		t.Fatalf("warm %s: %v", path, err)
	}
	return ip
}

func TestCacheHitCounters(t *testing.T) {
	fs := build(t)
	warm(t, fs, "/a/b/c.txt")
	before := fs.CacheStats()
	for i := 0; i < 10; i++ {
		warm(t, fs, "/a/b/c.txt")
	}
	after := fs.CacheStats()
	if after.Hits-before.Hits < 10 {
		t.Fatalf("expected ≥10 new hits, got %d→%d", before.Hits, after.Hits)
	}
}

func TestCacheNegativeEntryInvalidatedByCreate(t *testing.T) {
	fs := build(t)
	b := warm(t, fs, "/a/b")

	// Two misses on the same absent name: the second should be a cached
	// negative hit.
	for i := 0; i < 2; i++ {
		if _, err := fs.Lookup(fs.Root(), "/a/b/new.txt", root0, true); err != sys.ENOENT {
			t.Fatalf("lookup %d: %v, want ENOENT", i, err)
		}
	}
	if st := fs.CacheStats(); st.NegHits == 0 {
		t.Fatalf("no negative hits recorded: %+v", st)
	}

	// Creating the file must invalidate the negative entry immediately.
	created, err := fs.Create(b, "new.txt", 0o644, root0)
	if err != sys.OK {
		t.Fatalf("create: %v", err)
	}
	got, err := fs.Lookup(fs.Root(), "/a/b/new.txt", root0, true)
	if err != sys.OK {
		t.Fatalf("lookup after create: %v", err)
	}
	if got != created {
		t.Fatalf("lookup found wrong inode after create")
	}
}

func TestCacheUnlinkInvalidates(t *testing.T) {
	fs := build(t)
	b := warm(t, fs, "/a/b")
	warm(t, fs, "/a/b/c.txt")
	if err := fs.Unlink(b, "c.txt", root0); err != sys.OK {
		t.Fatalf("unlink: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true); err != sys.ENOENT {
		t.Fatalf("lookup after unlink: %v, want ENOENT", err)
	}
}

func TestCacheRenameInvalidates(t *testing.T) {
	fs := build(t)
	b := warm(t, fs, "/a/b")
	old := warm(t, fs, "/a/b/c.txt")
	if err := fs.Rename(b, "c.txt", b, "d.txt", root0); err != sys.OK {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true); err != sys.ENOENT {
		t.Fatalf("old name after rename: %v, want ENOENT", err)
	}
	got, err := fs.Lookup(fs.Root(), "/a/b/d.txt", root0, true)
	if err != sys.OK || got != old {
		t.Fatalf("new name after rename: %v (same inode: %v)", err, got == old)
	}
}

func TestCacheChmodVisibleOnFastPath(t *testing.T) {
	fs := build(t)
	b := warm(t, fs, "/a/b")
	warm(t, fs, "/a/b/c.txt")
	// Remove search permission from /a/b for others; the fast path's
	// lock-free access check must see the change at once.
	if err := fs.Chmod(b, 0o700, root0); err != sys.OK {
		t.Fatalf("chmod: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", alice, true); err != sys.EACCES {
		t.Fatalf("lookup after chmod: %v, want EACCES", err)
	}
	if err := fs.Chmod(b, 0o755, root0); err != sys.OK {
		t.Fatalf("chmod back: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", alice, true); err != sys.OK {
		t.Fatalf("lookup after restore: %v", err)
	}
}

func TestCacheStatGenerationInvalidation(t *testing.T) {
	fs := build(t)
	ip := warm(t, fs, "/a/b/c.txt")
	st1 := ip.Stat()
	st2 := ip.Stat() // should come from the generation-checked cache
	if st1.Size != st2.Size || st1.Mode != st2.Mode {
		t.Fatalf("cached stat differs: %+v vs %+v", st1, st2)
	}
	if s := fs.CacheStats(); s.AttrHit == 0 {
		t.Fatalf("no attribute-cache hits recorded: %+v", s)
	}
	if _, err := ip.WriteAt([]byte("longer contents"), 0, 0); err != sys.OK {
		t.Fatalf("write: %v", err)
	}
	if st := ip.Stat(); st.Size != 15 {
		t.Fatalf("stat after write: size %d, want 15", st.Size)
	}
	if err := fs.Chmod(ip, 0o600, root0); err != sys.OK {
		t.Fatalf("chmod: %v", err)
	}
	if st := ip.Stat(); st.Mode&0o777 != 0o600 {
		t.Fatalf("stat after chmod: mode %o, want 600", st.Mode&0o777)
	}
}

func TestCacheDisableFlushesAndStaysCorrect(t *testing.T) {
	fs := build(t)
	warm(t, fs, "/a/b/c.txt")
	fs.SetNameCache(false)
	b := warm(t, fs, "/a/b")
	if err := fs.Rename(b, "c.txt", b, "d.txt", root0); err != sys.OK {
		t.Fatalf("rename: %v", err)
	}
	fs.SetNameCache(true)
	// Nothing stale may survive the off/on cycle.
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true); err != sys.ENOENT {
		t.Fatalf("stale entry after re-enable: %v, want ENOENT", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/d.txt", root0, true); err != sys.OK {
		t.Fatalf("new name after re-enable: %v", err)
	}
}

// TestCacheRaceMutationsVsLookups churns rename/unlink/create/chmod in
// one set of goroutines while others resolve the same paths through the
// cache. Run under -race this checks the fill/invalidate locking; the
// invariant checked here is that a lookup never returns a wrong inode —
// ENOENT or the current file are both acceptable during churn.
func TestCacheRaceMutationsVsLookups(t *testing.T) {
	fs := build(t)
	b := warm(t, fs, "/a/b")

	const iters = 400
	var mutators, lookers sync.WaitGroup
	stop := make(chan struct{})

	// Mutators: rename c.txt <-> r.txt, create/unlink n.txt, chmod flapping.
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		names := [2]string{"c.txt", "r.txt"}
		for i := 0; i < iters; i++ {
			fs.Rename(b, names[i%2], b, names[(i+1)%2], root0)
		}
	}()
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				fs.Create(b, "n.txt", 0o644, root0)
			} else {
				fs.Unlink(b, "n.txt", root0)
			}
		}
	}()
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				fs.Chmod(b, 0o700, root0)
			} else {
				fs.Chmod(b, 0o755, root0)
			}
		}
	}()

	// Lookers: resolve through the cache until the mutators finish.
	for g := 0; g < 4; g++ {
		lookers.Add(1)
		go func(g int) {
			defer lookers.Done()
			paths := []string{"/a/b/c.txt", "/a/b/r.txt", "/a/b/n.txt", "/a/b"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(i+g)%len(paths)]
				ip, err := fs.Lookup(fs.Root(), p, root0, true)
				switch err {
				case sys.OK:
					if ip == nil {
						t.Errorf("lookup %s: OK with nil inode", p)
						return
					}
				case sys.ENOENT, sys.EACCES:
					// Acceptable mid-churn.
				default:
					t.Errorf("lookup %s: unexpected %v", p, err)
					return
				}
			}
		}(g)
	}

	mutators.Wait()
	close(stop)
	lookers.Wait()

	// Post-churn: the directory must be consistent. Exactly one of
	// c.txt/r.txt exists (renames preserve the file), and lookups agree
	// with a locked walk.
	fs.Chmod(b, 0o755, root0)
	found := 0
	for _, n := range []string{"c.txt", "r.txt"} {
		if _, err := fs.Lookup(fs.Root(), "/a/b/"+n, root0, true); err == sys.OK {
			found++
		} else if err != sys.ENOENT {
			t.Fatalf("final lookup %s: %v", n, err)
		}
	}
	if found != 1 {
		t.Fatalf("after rename churn: %d of {c.txt,r.txt} exist, want 1", found)
	}
}

// TestCacheManyDirectories exercises shard distribution and the per-shard
// cap with more entries than one shard holds.
func TestCacheManyDirectories(t *testing.T) {
	fs := New(nil)
	dir, err := fs.Mkdir(fs.Root(), "big", 0o755, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := fs.Create(dir, fmt.Sprintf("f%03d", i), 0o644, root0); err != sys.OK {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("/big/f%03d", i)
			if _, err := fs.Lookup(fs.Root(), p, root0, true); err != sys.OK {
				t.Fatalf("round %d lookup %s: %v", round, p, err)
			}
		}
	}
	st := fs.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no hits across %d lookups: %+v", 2*n, st)
	}
}
