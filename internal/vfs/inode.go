package vfs

import (
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/journal"
	"interpose/internal/sys"
)

// Device is the operations vector of a character device. Device inodes
// dispatch read, write and ioctl to it. Implementations live in the kernel
// (tty, null, zero, ...).
type Device interface {
	Read(p []byte, off int64) (int, sys.Errno)
	Write(p []byte, off int64) (int, sys.Errno)
	Ioctl(req sys.Word, arg sys.Word, c sys.Ctx) sys.Errno
}

// Inode is one filesystem object, protected by its own read-write lock.
// Immutable-after-creation fields (the type bits, the device vector, the
// symlink target, the inode number) are read without it; everything else
// is accessed under mu. The parent pointer is additionally readable
// lock-free (it is atomic) so ancestry walks need no lock at all.
type Inode struct {
	mu sync.RWMutex

	fs    *FS
	Ino   uint32
	typ   uint32 // file-type bits of Mode; immutable
	Mode  uint32 // file type | permission bits
	Nlink uint32
	UID   uint32
	GID   uint32
	Rdev  uint32

	Atime time.Time
	Mtime time.Time
	Ctime time.Time

	data []byte // regular files
	link string // symlink target; immutable

	// dataRefs, when non-nil, marks data as a copy-on-write array shared
	// with forked filesystems (fork.go). The counter holds the number of
	// inodes referencing the array; while it exceeds one the array is
	// immutable and the first in-place mutation on either side copies out
	// (unshareData). Installed by Fork under this inode's read lock via
	// CAS, cleared by mutators under the write lock — so a writer never
	// races a fork of the same inode, and unrelated inodes never contend.
	dataRefs atomic.Pointer[atomic.Int32]

	// Directories: lookup map plus stable insertion order for iteration.
	entries map[string]*Inode
	order   []string
	parent  atomic.Pointer[Inode] // ".." for directories

	dev Device // character devices; immutable

	// gen counts stat-visible mutations (data, times, ownership, link
	// count, entry table). It is bumped only while mu is held exclusively
	// and read lock-free: a cached attribute snapshot tagged with the
	// current generation is still valid.
	gen atomic.Uint64

	// attrs is the lock-free access-check snapshot (mode, uid, gid),
	// republished on chmod/chown. The resolve fast path evaluates
	// directory execute permission against it without taking mu.
	attrs atomic.Pointer[attrSnap]

	// statc caches the last computed Stat together with the generation it
	// was computed at; stat/fstat serve from it while the generation is
	// unchanged.
	statc atomic.Pointer[statSnap]

	// dmap is this directory's dentry snapshot (see cache.go): an
	// immutable name→child map the resolve fast path probes without
	// taking mu. Nil until the first fill; always nil for non-dirs.
	dmap atomic.Pointer[dirCache]

	// Advisory flock state. These fields belong to the kernel's global
	// flock lock, not to mu: they are read and written together with the
	// descriptor-layer lock bookkeeping.
	LockEx     bool
	LockShared int
}

// attrSnap is the atomically published permission snapshot of an inode.
type attrSnap struct {
	mode, uid, gid uint32
}

// statSnap is a Stat computed at a known generation.
type statSnap struct {
	gen uint64
	st  sys.Stat
}

// bump invalidates cached attribute state. Callers hold mu exclusively
// (or the inode is not yet published).
func (ip *Inode) bump() { ip.gen.Add(1) }

// publishAttrs refreshes the lock-free permission snapshot from the
// current mode/owner. Callers hold mu exclusively (or the inode is not
// yet published).
func (ip *Inode) publishAttrs() {
	ip.attrs.Store(&attrSnap{mode: ip.Mode, uid: ip.UID, gid: ip.GID})
}

// Gen returns the current attribute generation (lock-free). Consumers
// cache derived state keyed by inode + generation — the exec loader keeps
// parsed images this way.
func (ip *Inode) Gen() uint64 { return ip.gen.Load() }

// Type returns the file-type bits of the mode.
func (ip *Inode) Type() uint32 { return ip.typ }

// IsDir reports whether the inode is a directory.
func (ip *Inode) IsDir() bool { return ip.typ == sys.S_IFDIR }

// IsSymlink reports whether the inode is a symbolic link.
func (ip *Inode) IsSymlink() bool { return ip.typ == sys.S_IFLNK }

// IsDevice reports whether the inode is a character device.
func (ip *Inode) IsDevice() bool { return ip.typ == sys.S_IFCHR }

// Device returns the operations vector of a device inode (nil otherwise).
func (ip *Inode) Device() Device { return ip.dev }

func (ip *Inode) parentPtr() *Inode   { return ip.parent.Load() }
func (ip *Inode) setParent(pp *Inode) { ip.parent.Store(pp) }

// size returns the logical size; directories report their entry count
// encoded as dirent records, symlinks their target length. Caller holds mu.
func (ip *Inode) size() uint32 {
	switch ip.typ {
	case sys.S_IFREG:
		return uint32(len(ip.data))
	case sys.S_IFLNK:
		return uint32(len(ip.link))
	case sys.S_IFDIR:
		n := sys.DirentRecLen(".") + sys.DirentRecLen("..")
		for _, name := range ip.order {
			n += sys.DirentRecLen(name)
		}
		return uint32(n)
	}
	return 0
}

// Stat fills a sys.Stat from the inode. While the attribute generation is
// unchanged it is served from a cached snapshot without taking the inode
// lock; the generation check makes a stale snapshot impossible to serve
// (every stat-visible mutation bumps the generation under the write lock).
func (ip *Inode) Stat() sys.Stat {
	if ip.fs.dcache.enabled() {
		if sc := ip.statc.Load(); sc != nil && sc.gen == ip.gen.Load() {
			ip.fs.cstats.attrHit.Add(1)
			return sc.st
		}
	}
	ip.mu.RLock()
	st := ip.statLocked()
	// gen is stable under the read lock (bumps require the write lock), so
	// the snapshot is tagged with exactly the generation it reflects.
	g := ip.gen.Load()
	ip.mu.RUnlock()
	ip.fs.cstats.attrMis.Add(1)
	ip.statc.Store(&statSnap{gen: g, st: st})
	return st
}

func (ip *Inode) statLocked() sys.Stat {
	return sys.Stat{
		Dev:     ip.fs.dev,
		Ino:     ip.Ino,
		Mode:    ip.Mode,
		Nlink:   ip.Nlink,
		UID:     ip.UID,
		GID:     ip.GID,
		Rdev:    ip.Rdev,
		Size:    ip.size(),
		Atime:   toTimeval(ip.Atime),
		Mtime:   toTimeval(ip.Mtime),
		Ctime:   toTimeval(ip.Ctime),
		Blksize: sys.PageSize,
		Blocks:  (ip.size() + 511) / 512,
	}
}

func toTimeval(t time.Time) sys.Timeval {
	return sys.Timeval{Sec: uint32(t.Unix()), Usec: uint32(t.Nanosecond() / 1000)}
}

// unshareData makes ip the sole owner of its data array before an
// in-place mutation. Shared arrays (dataRefs non-nil) are immutable:
// with other holders remaining the bytes are copied out and this side's
// reference dropped; as the last holder the array is simply reclaimed.
// Caller holds ip.mu exclusively, which excludes a concurrent Fork of
// this inode (Fork reads under ip.mu.RLock).
func (ip *Inode) unshareData() {
	refs := ip.dataRefs.Load()
	if refs == nil {
		return
	}
	if refs.Load() > 1 {
		nd := make([]byte, len(ip.data))
		copy(nd, ip.data)
		ip.data = nd
		ip.dataRefs.Store(nil)
		refs.Add(-1)
		return
	}
	// Sole holder: every sibling already copied out (their decrements
	// happened under their own locks before ours could observe 1), so the
	// array is exclusively ours again.
	ip.dataRefs.Store(nil)
}

// releaseDataRef drops ip's share of a COW array when a mutation is
// about to replace ip.data wholesale (the growth paths allocate a fresh
// array anyway, so copying out first would be wasted work). Caller holds
// ip.mu exclusively and must reassign ip.data before unlocking.
func (ip *Inode) releaseDataRef() {
	if refs := ip.dataRefs.Load(); refs != nil {
		ip.dataRefs.Store(nil)
		refs.Add(-1)
	}
}

// ReadAt copies file data at offset off into p, returning the byte count.
// Reading at or past EOF returns 0. Device inodes dispatch to their driver.
func (ip *Inode) ReadAt(p []byte, off int64) (int, sys.Errno) {
	if ip.dev != nil {
		return ip.dev.Read(p, off)
	}
	if ip.IsDir() {
		return 0, sys.EISDIR
	}
	ip.mu.Lock() // write lock: reads update the access time
	defer ip.mu.Unlock()
	ip.Atime = ip.fs.now()
	ip.bump()
	if off >= int64(len(ip.data)) {
		return 0, sys.OK
	}
	n := copy(p, ip.data[off:])
	return n, sys.OK
}

// WriteAt copies p into the file at offset off, growing (and
// zero-filling any hole) as needed. maxSize, when nonzero, caps the
// resulting file size (RLIMIT_FSIZE).
func (ip *Inode) WriteAt(p []byte, off int64, maxSize int64) (int, sys.Errno) {
	if ip.dev != nil {
		return ip.dev.Write(p, off)
	}
	if ip.IsDir() {
		return 0, sys.EISDIR
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	end := off + int64(len(p))
	if maxSize > 0 && end > maxSize {
		if off >= maxSize {
			return 0, sys.EFBIG
		}
		p = p[:maxSize-off]
		end = maxSize
	}
	if e := ip.fs.jlog(&journal.Record{Op: journal.OpWrite, Ino: ip.Ino,
		Off: off, Data: p}); e != sys.OK {
		return 0, e
	}
	if end > int64(len(ip.data)) {
		grown := make([]byte, end)
		copy(grown, ip.data)
		ip.releaseDataRef()
		ip.data = grown
	} else {
		ip.unshareData()
	}
	copy(ip.data[off:], p)
	now := ip.fs.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	return len(p), sys.OK
}

// Truncate sets the file length, zero-filling growth.
func (ip *Inode) Truncate(length int64) sys.Errno {
	if ip.IsDir() {
		return sys.EISDIR
	}
	if ip.dev != nil {
		return sys.OK
	}
	if length < 0 {
		return sys.EINVAL
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if e := ip.fs.jlog(&journal.Record{Op: journal.OpTruncate, Ino: ip.Ino,
		Size: length}); e != sys.OK {
		return e
	}
	switch {
	case int64(len(ip.data)) > length:
		// Shrink is a reslice: the shared array's bytes are untouched, so
		// COW sharing (dataRefs) survives a truncate-down.
		ip.data = ip.data[:length]
	case int64(len(ip.data)) < length:
		grown := make([]byte, length)
		copy(grown, ip.data)
		ip.releaseDataRef()
		ip.data = grown
	}
	now := ip.fs.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	return sys.OK
}

// Bytes returns a copy of a regular file's contents.
func (ip *Inode) Bytes() []byte {
	ip.mu.RLock()
	defer ip.mu.RUnlock()
	out := make([]byte, len(ip.data))
	copy(out, ip.data)
	return out
}

// Size returns the logical size of the inode.
func (ip *Inode) Size() int64 {
	ip.mu.RLock()
	defer ip.mu.RUnlock()
	return int64(ip.size())
}

// Readlink returns the target of a symbolic link.
func (ip *Inode) Readlink() (string, sys.Errno) {
	if !ip.IsSymlink() {
		return "", sys.EINVAL
	}
	return ip.link, sys.OK
}

// Dirents returns the directory's entries in iteration order, with "." and
// ".." synthesized first, as getdirentries presents them.
func (ip *Inode) Dirents() ([]sys.Dirent, sys.Errno) {
	if !ip.IsDir() {
		return nil, sys.ENOTDIR
	}
	ip.mu.RLock()
	defer ip.mu.RUnlock()
	out := make([]sys.Dirent, 0, len(ip.order)+2)
	out = append(out, sys.Dirent{Ino: ip.Ino, Name: "."})
	pp := ip.parentPtr()
	if pp == nil {
		pp = ip
	}
	out = append(out, sys.Dirent{Ino: pp.Ino, Name: ".."})
	for _, name := range ip.order {
		out = append(out, sys.Dirent{Ino: ip.entries[name].Ino, Name: name})
	}
	return out, sys.OK
}

// EntryCount returns the number of real (non-dot) directory entries.
func (ip *Inode) EntryCount() (int, sys.Errno) {
	if !ip.IsDir() {
		return 0, sys.ENOTDIR
	}
	ip.mu.RLock()
	defer ip.mu.RUnlock()
	return len(ip.order), sys.OK
}

// directory-entry helpers; callers hold the directory's lock.

func (ip *Inode) lookupLocked(name string) *Inode {
	switch name {
	case ".":
		return ip
	case "..":
		if pp := ip.parentPtr(); pp != nil {
			return pp
		}
		return ip
	}
	return ip.entries[name]
}

func (ip *Inode) insertLocked(name string, child *Inode) {
	ip.entries[name] = child
	ip.order = append(ip.order, name)
	now := ip.fs.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	// Discard any negative dentry for the name just created. Running
	// under the directory's write lock orders this against concurrent
	// fills, which hold the read lock.
	if ip.fs.dcache.invalidate(ip, name) {
		ip.fs.cstats.invals.Add(1)
	}
}

func (ip *Inode) removeLocked(name string) {
	delete(ip.entries, name)
	for i, n := range ip.order {
		if n == name {
			ip.order = append(ip.order[:i], ip.order[i+1:]...)
			break
		}
	}
	now := ip.fs.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	if ip.fs.dcache.invalidate(ip, name) {
		ip.fs.cstats.invals.Add(1)
	}
}
