package vfs

import (
	"sync/atomic"

	"interpose/internal/sys"
)

// The dentry cache hangs an immutable name→inode snapshot off every
// directory inode, published through an atomic pointer. It is the namei
// fast path: resolve probes each component with one atomic load plus one
// map read — no locks, no shared-cache hashing — and falls back to the
// hand-over-hand walk only on a miss or a symlink. Negative entries
// (names known to be absent) are cached as nil values.
//
// Consistency protocol: the snapshot maps are never mutated in place.
// Fills run under the directory's read lock and publish a cloned map
// with compare-and-swap (two racing fills: one wins, the other's result
// is simply dropped). Invalidations run in insertLocked/removeLocked
// under the directory's write lock, which excludes fills entirely, so a
// plain clone-and-store suffices there. A probe therefore either sees
// the pre-mutation snapshot (the same answer the locked walk would have
// given before the mutation completed) or the post-mutation one — never
// a torn map. Inodes are never freed, so a cached pointer is always
// safe to dereference.
//
// Disabling the cache bumps a filesystem-wide epoch instead of walking
// every inode: snapshots are tagged with the epoch they were filled
// under, and a probe ignores any snapshot from an older epoch.

// dirCacheMax bounds one directory's snapshot; a fill into a full
// snapshot starts a fresh one so recently hot names cycle back in.
const dirCacheMax = 1024

// dirCache is an immutable lookup snapshot for one directory. A nil
// *Inode value is a negative entry.
type dirCache struct {
	epoch uint64
	m     map[string]*Inode
}

// dcache holds the FS-wide cache controls; the cached data itself lives
// on the directory inodes (Inode.dmap).
type dcache struct {
	off   atomic.Bool   // zero value: enabled
	epoch atomic.Uint64 // bumped to flush every snapshot at once
}

// CacheStats is a snapshot of the pathname/attribute cache counters.
type CacheStats struct {
	Hits    uint64 // fast-path component hits (positive)
	Misses  uint64 // probes that fell through to a locked lookup
	NegHits uint64 // fast-path hits on negative entries
	Invals  uint64 // entries discarded by directory mutations
	AttrHit uint64 // stat served from the generation-checked cache
	AttrMis uint64 // stat recomputed under the inode lock
}

// cacheCounters holds the FS-wide cache counters. Fast-path code adds to
// them in bulk (once per resolve, not per component) to keep hot-path
// atomic traffic low.
type cacheCounters struct {
	hits    atomic.Uint64
	misses  atomic.Uint64
	negHits atomic.Uint64
	invals  atomic.Uint64
	attrHit atomic.Uint64
	attrMis atomic.Uint64
}

func (c *dcache) enabled() bool { return !c.off.Load() }

// fill publishes (name → child) in dir's snapshot, child == nil caching
// a negative entry. The caller must hold dir's read lock: that excludes
// the invalidators (which hold the write lock), leaving only racing
// fills, which the compare-and-swap arbitrates.
func (c *dcache) fill(dir *Inode, name string, child *Inode) {
	epoch := c.epoch.Load()
	old := dir.dmap.Load()
	var m map[string]*Inode
	if old != nil && old.epoch == epoch && len(old.m) < dirCacheMax {
		m = make(map[string]*Inode, len(old.m)+1)
		for k, v := range old.m {
			m[k] = v
		}
	} else {
		m = make(map[string]*Inode, 8)
	}
	m[name] = child
	dir.dmap.CompareAndSwap(old, &dirCache{epoch: epoch, m: m})
}

// invalidate discards dir's entry for name, returning whether one
// existed. Callers hold dir's write lock, so no fill can race and a
// plain store publishes the shrunken snapshot.
func (c *dcache) invalidate(dir *Inode, name string) bool {
	old := dir.dmap.Load()
	if old == nil {
		return false
	}
	if old.epoch != c.epoch.Load() {
		dir.dmap.Store(nil) // stale epoch: drop it while we're here
		return false
	}
	if _, had := old.m[name]; !had {
		return false
	}
	m := make(map[string]*Inode, len(old.m)-1)
	for k, v := range old.m {
		if k != name {
			m[k] = v
		}
	}
	dir.dmap.Store(&dirCache{epoch: old.epoch, m: m})
	return true
}

// flush drops every snapshot at once by moving to a new epoch; stale
// snapshots are ignored by probes and garbage-collected as directories
// refill.
func (c *dcache) flush() { c.epoch.Add(1) }

// SetNameCache enables or disables the dentry + attribute fast paths
// (benchmarks measure both configurations). Disabling flushes the cache.
// Invalidation hooks stay active while disabled, so re-enabling is safe.
func (fs *FS) SetNameCache(on bool) {
	fs.dcache.off.Store(!on)
	if !on {
		fs.dcache.flush()
	}
}

// CacheStats returns the cache counter snapshot.
func (fs *FS) CacheStats() CacheStats {
	return CacheStats{
		Hits:    fs.cstats.hits.Load(),
		Misses:  fs.cstats.misses.Load(),
		NegHits: fs.cstats.negHits.Load(),
		Invals:  fs.cstats.invals.Load(),
		AttrHit: fs.cstats.attrHit.Load(),
		AttrMis: fs.cstats.attrMis.Load(),
	}
}

// lookupFast resolves path entirely from the dentry snapshots plus
// lock-free attribute snapshots, filling on misses (under the directory
// read lock). It walks the path string in place — no component slice is
// allocated — and returns ok=false when it meets anything it cannot
// handle without the full walk (a symlink to expand, an over-long name),
// in which case the caller runs the existing hand-over-hand resolve. The
// access checks are the same ones the slow path performs, evaluated
// against each directory's atomically published attribute snapshot.
func (fs *FS) lookupFast(root, start *Inode, path string, cred Cred, follow bool) (*Inode, sys.Errno, bool) {
	var hits, misses, negs uint64
	defer func() {
		if hits > 0 {
			fs.cstats.hits.Add(hits)
		}
		if misses > 0 {
			fs.cstats.misses.Add(misses)
		}
		if negs > 0 {
			fs.cstats.negHits.Add(negs)
		}
	}()
	epoch := fs.dcache.epoch.Load()
	cur := start
	if path[0] == '/' || cur == nil {
		cur = root
	}
	n := len(path)
	for i := 0; i < n; {
		for i < n && path[i] == '/' {
			i++
		}
		if i >= n {
			break
		}
		j := i
		for j < n && path[j] != '/' {
			j++
		}
		name := path[i:j]
		// Peek past trailing slashes to learn whether this is the final
		// component (symlink follow policy differs on the last one).
		k := j
		for k < n && path[k] == '/' {
			k++
		}
		last := k >= n
		i = j

		if len(name) > sys.NameMax {
			return nil, sys.OK, false
		}
		if !cur.IsDir() {
			return nil, sys.ENOTDIR, true
		}
		a := cur.attrs.Load()
		if a == nil {
			return nil, sys.OK, false // pre-cache inode (shouldn't happen)
		}
		if e := CheckAccess(cred, a.mode, a.uid, a.gid, sys.X_OK); e != sys.OK {
			return nil, e, true
		}
		var next *Inode
		switch name {
		case ".":
			next = cur
		case "..":
			if cur == root {
				next = cur
			} else if pp := cur.parentPtr(); pp != nil {
				next = pp
			} else {
				next = cur
			}
		default:
			var child *Inode
			found := false
			if dc := cur.dmap.Load(); dc != nil && dc.epoch == epoch {
				child, found = dc.m[name]
			}
			switch {
			case found && child == nil:
				negs++
				return nil, sys.ENOENT, true
			case found:
				hits++
				next = child
			default:
				misses++
				cur.mu.RLock()
				child = cur.lookupLocked(name)
				fs.dcache.fill(cur, name, child)
				cur.mu.RUnlock()
				if child == nil {
					return nil, sys.ENOENT, true
				}
				next = child
			}
		}
		if next.IsSymlink() && (!last || follow) {
			return nil, sys.OK, false // symlink expansion: take the slow path
		}
		cur = next
	}
	// A trailing slash requires the object to be a directory, matching
	// SplitPath's wantDir.
	if n > 1 && path[n-1] == '/' && !cur.IsDir() {
		return nil, sys.ENOTDIR, true
	}
	return cur, sys.OK, true
}
