package vfs

import (
	"time"

	"interpose/internal/journal"
	"interpose/internal/sys"
)

// Journal replay: a Replayer applies logical redo records (journal.go) to
// a filesystem during crash recovery. Replay is exactly-once and
// idempotent through two independent mechanisms:
//
//   - The applied-sequence watermark (FS.JournalSeq, persisted in
//     snapshots): records at or below it are skipped outright, so a full
//     journal replays correctly onto a fresh world, onto any checkpoint
//     taken mid-journal, or twice in a row, landing on the same state.
//   - Per-record self-recognition: every record carries absolute values
//     and the inode numbers it expects, so even past the watermark a
//     record whose preconditions are gone (its directory or inode no
//     longer exists) skips instead of corrupting.
//
// Replay runs on a quiesced filesystem with NO journal attached: attach
// (and StartAt) only after recovery, or every replayed mutation would be
// re-journaled.

// Replayer applies redo records to fs, tracking inodes by number.
type Replayer struct {
	fs      *FS
	byIno   map[uint32]*Inode
	resolve func(rdev uint32) (Device, bool)

	applied int
	skipped int
}

// NewReplayer indexes fs's reachable inodes by number. resolve maps
// device rdevs to drivers for replayed device-node creates (nil is fine
// when the journal creates none).
func NewReplayer(fs *FS, resolve func(rdev uint32) (Device, bool)) *Replayer {
	rp := &Replayer{fs: fs, byIno: map[uint32]*Inode{}, resolve: resolve}
	fs.walkTree(func(_ string, ip *Inode) { rp.byIno[ip.Ino] = ip })
	return rp
}

// Stats reports how many records were applied and how many skipped as
// already-present.
func (rp *Replayer) Stats() (applied, skipped int) { return rp.applied, rp.skipped }

func (rp *Replayer) skip() error    { rp.skipped++; return nil }
func (rp *Replayer) did() error     { rp.applied++; return nil }
func (rp *Replayer) now() time.Time { return rp.fs.now() }

// Apply replays one record. Unknown inode numbers and already-applied
// effects are skipped, never errors: the journal may legitimately predate
// the snapshot being recovered onto.
func (rp *Replayer) Apply(r *journal.Record) error {
	if r.Seq != 0 && r.Seq <= rp.fs.jnlSeq.Load() {
		return rp.skip() // at or below the world's applied watermark
	}
	defer rp.fs.bumpSeq(r.Seq)
	switch r.Op {
	case journal.OpCreate:
		return rp.create(r)
	case journal.OpLink:
		return rp.link(r)
	case journal.OpUnlink:
		return rp.unlink(r)
	case journal.OpRmdir:
		return rp.rmdir(r)
	case journal.OpRename:
		return rp.rename(r)
	case journal.OpWrite:
		return rp.write(r)
	case journal.OpTruncate:
		return rp.truncate(r)
	case journal.OpChmod:
		return rp.chmod(r)
	case journal.OpChown:
		return rp.chown(r)
	case journal.OpUtimes:
		return rp.utimes(r)
	}
	return rp.skip() // unknown op from a future format: ignore
}

// ReplayAll applies a scanned record sequence in order.
func (rp *Replayer) ReplayAll(recs []*journal.Record) error {
	for _, r := range recs {
		if err := rp.Apply(r); err != nil {
			return err
		}
	}
	return nil
}

func (rp *Replayer) create(r *journal.Record) error {
	dir := rp.byIno[r.Dir]
	if dir == nil || !dir.IsDir() {
		return rp.skip()
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.entries[r.Name] != nil || rp.byIno[r.Ino] != nil {
		// The name is taken (this create already applied, or newer truth
		// sits there) or the inode exists elsewhere (created then renamed
		// away by later records).
		return rp.skip()
	}
	now := rp.now()
	ip := &Inode{
		fs:    rp.fs,
		Ino:   r.Ino,
		typ:   r.Mode & sys.S_IFMT,
		Mode:  r.Mode,
		Nlink: 1,
		UID:   r.UID,
		GID:   r.GID,
		Rdev:  r.Rdev,
		Atime: now, Mtime: now, Ctime: now,
	}
	switch ip.typ {
	case sys.S_IFLNK:
		ip.link = string(r.Data)
	case sys.S_IFDIR:
		ip.entries = make(map[string]*Inode)
		ip.Nlink = 2
		ip.setParent(dir)
		dir.Nlink++
	case sys.S_IFCHR:
		if rp.resolve != nil {
			if dev, ok := rp.resolve(r.Rdev); ok {
				ip.dev = dev
			}
		}
	}
	ip.publishAttrs()
	rp.fs.ninodes.Add(1)
	// Keep the allocator ahead of every replayed number.
	if rp.fs.nextIno.Load() <= r.Ino {
		rp.fs.nextIno.Store(r.Ino + 1)
	}
	dir.insertLocked(r.Name, ip)
	rp.byIno[r.Ino] = ip
	return rp.did()
}

func (rp *Replayer) link(r *journal.Record) error {
	dir, target := rp.byIno[r.Dir], rp.byIno[r.Ino]
	if dir == nil || !dir.IsDir() || target == nil {
		return rp.skip()
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.entries[r.Name] != nil {
		return rp.skip()
	}
	target.mu.Lock()
	target.Nlink++
	target.Ctime = rp.now()
	target.bump()
	target.mu.Unlock()
	dir.insertLocked(r.Name, target)
	return rp.did()
}

func (rp *Replayer) unlink(r *journal.Record) error {
	dir := rp.byIno[r.Dir]
	if dir == nil || !dir.IsDir() {
		return rp.skip()
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	victim := dir.entries[r.Name]
	if victim == nil || victim.Ino != r.Ino {
		return rp.skip() // already applied, or the name holds newer truth
	}
	dir.removeLocked(r.Name)
	rp.dropRef(victim)
	return rp.did()
}

func (rp *Replayer) rmdir(r *journal.Record) error {
	dir := rp.byIno[r.Dir]
	if dir == nil || !dir.IsDir() {
		return rp.skip()
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	victim := dir.entries[r.Name]
	if victim == nil || victim.Ino != r.Ino || !victim.IsDir() {
		return rp.skip()
	}
	victim.mu.Lock()
	victim.Nlink = 0
	victim.setParent(nil)
	victim.bump()
	victim.mu.Unlock()
	dir.removeLocked(r.Name)
	dir.Nlink--
	rp.fs.ninodes.Add(-1)
	delete(rp.byIno, victim.Ino)
	return rp.did()
}

func (rp *Replayer) rename(r *journal.Record) error {
	oldDir, newDir := rp.byIno[r.Dir], rp.byIno[r.Dir2]
	if oldDir == nil || !oldDir.IsDir() || newDir == nil || !newDir.IsDir() {
		return rp.skip()
	}
	rp.fs.renameMu.Lock()
	defer rp.fs.renameMu.Unlock()
	first, second := oldDir, newDir
	if oldDir != newDir {
		first, second = rp.fs.orderParents(oldDir, newDir)
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if second != first {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	src := oldDir.entries[r.Name]
	if src == nil || src.Ino != r.Ino {
		return rp.skip() // already moved (or the name was reused later)
	}
	if dst := newDir.entries[r.Name2]; dst != nil {
		if dst == src {
			return rp.skip()
		}
		// Replay the replacement half first.
		if dst.IsDir() {
			dst.mu.Lock()
			dst.Nlink = 0
			dst.setParent(nil)
			dst.bump()
			dst.mu.Unlock()
			newDir.removeLocked(r.Name2)
			newDir.Nlink--
			rp.fs.ninodes.Add(-1)
			delete(rp.byIno, dst.Ino)
		} else {
			newDir.removeLocked(r.Name2)
			rp.dropRef(dst)
		}
	}
	oldDir.removeLocked(r.Name)
	newDir.insertLocked(r.Name2, src)
	if src.IsDir() && oldDir != newDir {
		oldDir.Nlink--
		newDir.Nlink++
	}
	src.mu.Lock()
	if src.IsDir() {
		src.setParent(newDir)
	}
	src.Ctime = rp.now()
	src.bump()
	src.mu.Unlock()
	return rp.did()
}

// dropRef is drop (fs.go) against the replayer's index. Caller holds the
// parent directory lock.
func (rp *Replayer) dropRef(ip *Inode) {
	ip.mu.Lock()
	ip.Nlink--
	ip.Ctime = rp.now()
	ip.bump()
	last := ip.Nlink == 0
	ip.mu.Unlock()
	if last {
		rp.fs.ninodes.Add(-1)
		delete(rp.byIno, ip.Ino)
	}
}

func (rp *Replayer) write(r *journal.Record) error {
	ip := rp.byIno[r.Ino]
	if ip == nil || ip.typ != sys.S_IFREG {
		return rp.skip()
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	end := r.Off + int64(len(r.Data))
	if end > int64(len(ip.data)) {
		grown := make([]byte, end)
		copy(grown, ip.data)
		ip.releaseDataRef()
		ip.data = grown
	} else {
		// Replay onto a forked world must not scribble on a COW array the
		// fork sibling still reads (fork.go).
		ip.unshareData()
	}
	copy(ip.data[r.Off:], r.Data)
	now := rp.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	return rp.did()
}

func (rp *Replayer) truncate(r *journal.Record) error {
	ip := rp.byIno[r.Ino]
	if ip == nil || ip.typ != sys.S_IFREG {
		return rp.skip()
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	switch {
	case int64(len(ip.data)) > r.Size:
		ip.data = ip.data[:r.Size] // reslice; COW sharing survives
	case int64(len(ip.data)) < r.Size:
		grown := make([]byte, r.Size)
		copy(grown, ip.data)
		ip.releaseDataRef()
		ip.data = grown
	}
	now := rp.now()
	ip.Mtime, ip.Ctime = now, now
	ip.bump()
	return rp.did()
}

func (rp *Replayer) chmod(r *journal.Record) error {
	ip := rp.byIno[r.Ino]
	if ip == nil {
		return rp.skip()
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.Mode = ip.typ | r.Mode&0o7777
	ip.Ctime = rp.now()
	ip.bump()
	ip.publishAttrs()
	return rp.did()
}

func (rp *Replayer) chown(r *journal.Record) error {
	ip := rp.byIno[r.Ino]
	if ip == nil {
		return rp.skip()
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.UID, ip.GID = r.UID, r.GID
	ip.Mode = ip.typ | r.Mode&0o7777
	ip.Ctime = rp.now()
	ip.bump()
	ip.publishAttrs()
	return rp.did()
}

func (rp *Replayer) utimes(r *journal.Record) error {
	ip := rp.byIno[r.Ino]
	if ip == nil {
		return rp.skip()
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.Atime, ip.Mtime = time.Unix(0, r.Off), time.Unix(0, r.Size)
	ip.Ctime = rp.now()
	ip.bump()
	return rp.did()
}
