package vfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"interpose/internal/sys"
)

// forkFixture builds a tree with stormFiles regular files under /data,
// each holding pattern(0), plus the usual /a tree from build.
const stormFiles = 16

func pattern(tag, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(tag*31 + i)
	}
	return p
}

func buildForkFS(t *testing.T) *FS {
	t.Helper()
	fs := build(t)
	data, err := fs.Mkdir(fs.Root(), "data", 0o755, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	for i := 0; i < stormFiles; i++ {
		f, err := fs.Create(data, fmt.Sprintf("f%02d", i), 0o644, root0)
		if err != sys.OK {
			t.Fatal(err)
		}
		if _, werr := f.WriteAt(pattern(0, 512), 0, 0); werr != sys.OK {
			t.Fatal(werr)
		}
	}
	return fs
}

func mustLookup(t *testing.T, fs *FS, path string) *Inode {
	t.Helper()
	ip, err := fs.Lookup(fs.Root(), path, root0, true)
	if err != sys.OK {
		t.Fatalf("lookup %s: %v", path, err)
	}
	return ip
}

func mustClean(t *testing.T, label string, fs *FS) {
	t.Helper()
	if bad := fs.Check(); len(bad) != 0 {
		t.Fatalf("%s: fsck: %v", label, bad)
	}
}

// TestForkSharesUntilWrite pins the COW contract: after a fork the file
// data array is shared (same backing array, refcount 2); the first
// write on either side copies out just that side; the survivor reclaims
// exclusive ownership and writes in place again.
func TestForkSharesUntilWrite(t *testing.T) {
	fs := buildForkFS(t)
	child, err := fs.Fork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	pf := mustLookup(t, fs, "/data/f00")
	cf := mustLookup(t, child, "/data/f00")
	if &pf.data[0] != &cf.data[0] {
		t.Fatal("fork did not share the data array")
	}
	refs := pf.dataRefs.Load()
	if refs == nil || refs != cf.dataRefs.Load() {
		t.Fatal("parent and child do not share one refcount")
	}
	if n := refs.Load(); n != 2 {
		t.Fatalf("shared refcount = %d, want 2", n)
	}

	// Child's first write copies out: arrays diverge, child drops its
	// reference, parent becomes the sole holder.
	if _, werr := cf.WriteAt([]byte("child"), 0, 0); werr != sys.OK {
		t.Fatal(werr)
	}
	if &pf.data[0] == &cf.data[0] {
		t.Fatal("child write did not copy out of the shared array")
	}
	if cf.dataRefs.Load() != nil {
		t.Fatal("child still marked shared after copy-out")
	}
	if n := refs.Load(); n != 1 {
		t.Fatalf("refcount after child copy-out = %d, want 1", n)
	}

	// Parent's next write reclaims the array (sole holder): no copy.
	before := &pf.data[0]
	if _, werr := pf.WriteAt([]byte("parent"), 0, 0); werr != sys.OK {
		t.Fatal(werr)
	}
	if &pf.data[0] != before {
		t.Fatal("sole holder copied instead of reclaiming")
	}
	if pf.dataRefs.Load() != nil {
		t.Fatal("parent still marked shared after reclaim")
	}

	if got := pf.Bytes()[:6]; !bytes.Equal(got, []byte("parent")) {
		t.Fatalf("parent bytes = %q", got)
	}
	if got := cf.Bytes()[:5]; !bytes.Equal(got, []byte("child")) {
		t.Fatalf("child bytes = %q", got)
	}
}

// TestForkTruncate pins the truncate half of the contract: a shrink is
// a reslice and keeps sharing (the surviving bytes never change); a
// growing truncate reallocates and drops the share.
func TestForkTruncate(t *testing.T) {
	fs := buildForkFS(t)
	child, err := fs.Fork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf := mustLookup(t, fs, "/data/f00")
	cf := mustLookup(t, child, "/data/f00")
	refs := pf.dataRefs.Load()

	if serr := cf.Truncate(64); serr != sys.OK {
		t.Fatal(serr)
	}
	if &pf.data[0] != &cf.data[0] {
		t.Fatal("shrink truncate broke the share")
	}
	if n := refs.Load(); n != 2 {
		t.Fatalf("refcount after shrink = %d, want 2", n)
	}

	if serr := cf.Truncate(1024); serr != sys.OK {
		t.Fatal(serr)
	}
	if &pf.data[0] == &cf.data[0] {
		t.Fatal("growing truncate kept the shared array")
	}
	if n := refs.Load(); n != 1 {
		t.Fatalf("refcount after grow = %d, want 1", n)
	}
	// Parent bytes must be untouched; child's surviving prefix matches,
	// and its grown tail is zero.
	if !bytes.Equal(pf.Bytes(), pattern(0, 512)) {
		t.Fatal("parent bytes changed under child truncate")
	}
	cb := cf.Bytes()
	if !bytes.Equal(cb[:64], pattern(0, 512)[:64]) {
		t.Fatal("child prefix diverged without a write")
	}
	for i := 64; i < 1024; i++ {
		if cb[i] != 0 {
			t.Fatalf("child grown tail not zeroed at %d", i)
		}
	}
}

// TestForkFsckClean runs the recovery fsck on parent and child after a
// fork and again after divergent mutations on both sides: structure,
// link counts, caches, and the inode census must all hold in each world
// independently.
func TestForkFsckClean(t *testing.T) {
	fs := buildForkFS(t)
	child, err := fs.Fork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, "parent after fork", fs)
	mustClean(t, "child after fork", child)

	// Diverge: new file + unlink in the child, write + rename in the
	// parent.
	cdata := mustLookup(t, child, "/data")
	if _, cerr := child.Create(cdata, "new", 0o644, root0); cerr != sys.OK {
		t.Fatal(cerr)
	}
	if cerr := child.Unlink(cdata, "f01", root0); cerr != sys.OK {
		t.Fatal(cerr)
	}
	pf := mustLookup(t, fs, "/data/f02")
	if _, werr := pf.WriteAt(pattern(7, 2048), 0, 0); werr != sys.OK {
		t.Fatal(werr)
	}
	pdata := mustLookup(t, fs, "/data")
	if rerr := fs.Rename(pdata, "f03", pdata, "renamed", root0); rerr != sys.OK {
		t.Fatal(rerr)
	}

	mustClean(t, "parent after divergence", fs)
	mustClean(t, "child after divergence", child)

	// The child never saw the parent's divergence and vice versa.
	if _, lerr := child.Lookup(child.Root(), "/data/renamed", root0, true); lerr != sys.ENOENT {
		t.Fatalf("parent rename leaked into child: %v", lerr)
	}
	if _, lerr := fs.Lookup(fs.Root(), "/data/new", root0, true); lerr != sys.ENOENT {
		t.Fatalf("child create leaked into parent: %v", lerr)
	}
}

// TestForkDeviceNodes: device inodes must resolve against the child's
// driver table, and a fork with no resolver for a device tree fails
// rather than aliasing the parent's drivers.
func TestForkDeviceNodes(t *testing.T) {
	fs := build(t)
	devdir, err := fs.Mkdir(fs.Root(), "dev", 0o755, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	parentDev := &nullDevice{}
	if _, err := fs.MkDev(devdir, "null", 0o666, 0x0103, parentDev, root0); err != sys.OK {
		t.Fatal(err)
	}

	if _, ferr := fs.Fork(nil, nil); ferr == nil {
		t.Fatal("fork with unresolvable device nodes succeeded")
	}

	childDev := &nullDevice{}
	child, ferr := fs.Fork(nil, func(rdev uint32) (Device, bool) {
		if rdev == 0x0103 {
			return childDev, true
		}
		return nil, false
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	got := mustLookup(t, child, "/dev/null")
	if got.dev != Device(childDev) {
		t.Fatal("child device inode kept the parent's driver")
	}
	mustClean(t, "child with devices", child)
}

type nullDevice struct{}

func (*nullDevice) Read(p []byte, off int64) (int, sys.Errno)             { return 0, sys.OK }
func (*nullDevice) Write(p []byte, off int64) (int, sys.Errno)            { return len(p), sys.OK }
func (*nullDevice) Ioctl(req sys.Word, arg sys.Word, c sys.Ctx) sys.Errno { return sys.ENOTTY }

// TestForkStorm is the -race storm: many goroutines fork the same
// parent concurrently, each writes its own byte pattern into every file
// of its fork, and each then verifies its fork holds exactly its
// pattern — while a parent-side writer keeps mutating one file the
// whole time. Byte-level isolation between siblings and the parent must
// hold, and every world must end fsck-clean.
func TestForkStorm(t *testing.T) {
	const forks = 8
	fs := buildForkFS(t)

	// Parent-side writer: hammers f00 so fork share-installs race with
	// copy-outs on a live inode.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		pf := mustLookup(t, fs, "/data/f00")
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, werr := pf.WriteAt(pattern(i%250, 512), 0, 0); werr != sys.OK {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	children := make([]*FS, forks)
	for g := 0; g < forks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child, err := fs.Fork(nil, nil)
			if err != nil {
				t.Errorf("fork %d: %v", g, err)
				return
			}
			children[g] = child
			want := pattern(g+1, 512)
			for i := 0; i < stormFiles; i++ {
				f := mustLookup(t, child, fmt.Sprintf("/data/f%02d", i))
				if _, werr := f.WriteAt(want, 0, 0); werr != sys.OK {
					t.Errorf("fork %d: write f%02d: %v", g, i, werr)
					return
				}
			}
			for i := 0; i < stormFiles; i++ {
				f := mustLookup(t, child, fmt.Sprintf("/data/f%02d", i))
				if !bytes.Equal(f.Bytes(), want) {
					t.Errorf("fork %d: f%02d bytes diverged from own pattern", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	// The parent's untouched files still hold the original pattern
	// (f00 belongs to the writer goroutine and is checked for
	// consistency, not content).
	for i := 1; i < stormFiles; i++ {
		f := mustLookup(t, fs, fmt.Sprintf("/data/f%02d", i))
		if !bytes.Equal(f.Bytes(), pattern(0, 512)) {
			t.Fatalf("parent f%02d mutated by a fork", i)
		}
	}
	mustClean(t, "parent after storm", fs)
	for g, child := range children {
		if child == nil {
			continue
		}
		mustClean(t, fmt.Sprintf("fork %d after storm", g), child)
		// And siblings still differ from each other byte-for-byte.
		f := mustLookup(t, child, "/data/f01")
		if !bytes.Equal(f.Bytes(), pattern(g+1, 512)) {
			t.Fatalf("fork %d: sibling pattern bled through", g)
		}
	}
}

// TestForkChainRefcounts: forking a fork extends the same refcount, and
// each world's copy-out decrements it exactly once.
func TestForkChainRefcounts(t *testing.T) {
	fs := buildForkFS(t)
	c1, err := fs.Fork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Fork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf := mustLookup(t, fs, "/data/f05")
	refs := pf.dataRefs.Load()
	if refs == nil {
		t.Fatal("no shared refcount on parent")
	}
	if n := refs.Load(); n != 3 {
		t.Fatalf("three-world refcount = %d, want 3", n)
	}
	for i, w := range []*FS{c2, c1} {
		f := mustLookup(t, w, "/data/f05")
		if _, werr := f.WriteAt([]byte{1}, 0, 0); werr != sys.OK {
			t.Fatal(werr)
		}
		if n := refs.Load(); n != int32(2-i) {
			t.Fatalf("refcount after %d copy-outs = %d, want %d", i+1, n, 2-i)
		}
	}
	// Parent is now the sole holder; its bytes never moved.
	if !bytes.Equal(pf.Bytes(), pattern(0, 512)) {
		t.Fatal("parent bytes changed under descendant writes")
	}
}
