package vfs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/journal"
	"interpose/internal/sys"
)

// MaxSymlinks is the symbolic-link expansion limit during resolution.
const MaxSymlinks = 8

// FS is one in-memory filesystem instance.
//
// Locking: there is no filesystem-wide lock. Each inode carries its own
// read-write mutex; path resolution locks one directory at a time
// (hand-over-hand without coupling — inodes are never freed, so a stale
// pointer is safe to lock). Mutations lock the parent directory, then at
// most one child inode nested inside it. Rename, the only operation that
// must hold two directories at once, additionally serializes against
// other renames with renameMu and locks its parents ancestor-first (or
// in inode-number order when unrelated), which keeps it compatible with
// the parent-before-child order everyone else uses.
type FS struct {
	dev     uint32 // immutable
	root    *Inode // immutable
	nextIno atomic.Uint32
	ninodes atomic.Int64
	clock   func() time.Time // immutable

	// renameMu serializes renames against each other. With it held, the
	// directory topology can only change by mkdir/rmdir of leaves, so a
	// rename can validate ancestry and then lock its two parents in a
	// deterministic order without deadlocking another rename.
	renameMu sync.Mutex

	// dcache is the pathname (dentry) cache: the namei fast path. cstats
	// holds its hit/miss/invalidation counters plus the stat-attribute
	// cache counters (see cache.go).
	dcache dcache
	cstats cacheCounters

	// jnl, when non-nil, receives a write-ahead redo record for every
	// mutation (journal.go). While nil it costs one atomic pointer load
	// per mutation. jnlSeq is the highest journal sequence number applied
	// to this world — advanced by jlog on the live world and by replay
	// during recovery, persisted in snapshots — and is what makes replay
	// exactly-once: records at or below it are skipped.
	jnl    atomic.Pointer[journal.Writer]
	jnlSeq atomic.Uint64
}

// New creates an empty filesystem whose timestamps come from clock
// (time.Now when nil). The root directory is owned by root with mode 0755.
func New(clock func() time.Time) *FS {
	if clock == nil {
		clock = time.Now
	}
	fs := &FS{dev: 1, clock: clock}
	fs.nextIno.Store(2)
	fs.root = fs.newInode(sys.S_IFDIR|0o755, Cred{UID: 0, GID: 0})
	fs.root.Nlink = 2
	fs.root.setParent(fs.root)
	fs.root.publishAttrs()
	return fs
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// NumInodes returns the live inode count (an invariant checked by tests).
func (fs *FS) NumInodes() int { return int(fs.ninodes.Load()) }

func (fs *FS) now() time.Time { return fs.clock() }

func (fs *FS) newInode(mode uint32, cred Cred) *Inode {
	now := fs.now()
	ip := &Inode{
		fs:    fs,
		Ino:   fs.nextIno.Add(1) - 1,
		typ:   mode & sys.S_IFMT,
		Mode:  mode,
		Nlink: 1,
		UID:   cred.UID,
		GID:   cred.GID,
		Atime: now,
		Mtime: now,
		Ctime: now,
	}
	if ip.typ == sys.S_IFDIR {
		ip.entries = make(map[string]*Inode)
	}
	ip.publishAttrs()
	fs.ninodes.Add(1)
	return ip
}

// SplitPath breaks a path into its components, dropping empty ones.
// The second result reports whether the path was absolute and the third
// whether it had a trailing slash (so the object must be a directory).
func SplitPath(path string) (parts []string, absolute, wantDir bool) {
	absolute = strings.HasPrefix(path, "/")
	wantDir = strings.HasSuffix(path, "/") && len(path) > 1
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts, absolute, wantDir
}

// Lookup resolves path starting from start (the caller's working directory
// for relative paths), following symbolic links in intermediate components
// and, when follow is set, in the final component too.
func (fs *FS) Lookup(start *Inode, path string, cred Cred, follow bool) (*Inode, sys.Errno) {
	return fs.LookupEx(fs.root, start, path, cred, follow)
}

// LookupEx is Lookup with an explicit root directory, for chrooted callers:
// absolute paths and absolute symbolic-link targets resolve from root.
func (fs *FS) LookupEx(root, start *Inode, path string, cred Cred, follow bool) (*Inode, sys.Errno) {
	ip, _, _, err := fs.resolve(root, start, path, cred, follow, false)
	return ip, err
}

// LookupParent resolves everything but the final component of path,
// returning the parent directory, the final component name, and the
// existing inode for that name (nil if absent). Symbolic links in the final
// component are not followed.
func (fs *FS) LookupParent(start *Inode, path string, cred Cred) (dir *Inode, name string, existing *Inode, err sys.Errno) {
	return fs.LookupParentEx(fs.root, start, path, cred)
}

// LookupParentEx is LookupParent with an explicit root directory.
func (fs *FS) LookupParentEx(root, start *Inode, path string, cred Cred) (dir *Inode, name string, existing *Inode, err sys.Errno) {
	existing, dir, name, err = fs.resolve(root, start, path, cred, false, true)
	if err == sys.ENOENT && dir != nil && name != "" {
		// Parent found, leaf missing: success for create-style callers.
		return dir, name, nil, sys.OK
	}
	return dir, name, existing, err
}

// resolve walks path, locking one directory at a time. With wantParent set
// it also reports the parent directory and leaf name (which requires the
// path not to end in "." or ".."). Returns the found inode (nil with
// ENOENT if the leaf is absent). The result is a snapshot: by the time the
// caller acts on it, a concurrent rename may have moved things — callers
// that mutate re-validate under the parent's lock.
func (fs *FS) resolve(root, start *Inode, path string, cred Cred, follow, wantParent bool) (*Inode, *Inode, string, sys.Errno) {
	if root == nil {
		root = fs.root
	}
	if path == "" {
		return nil, nil, "", sys.ENOENT
	}
	if len(path) >= sys.PathMax {
		return nil, nil, "", sys.ENAMETOOLONG
	}
	if !wantParent && fs.dcache.enabled() {
		// Fast path: walk cached components without inode locks or any
		// allocation. It bails (ok=false) on symlinks and other cases
		// needing the full walk.
		if ip, e, ok := fs.lookupFast(root, start, path, cred, follow); ok {
			if e != sys.OK {
				return nil, nil, "", e
			}
			return ip, nil, "", sys.OK
		}
	}
	parts, absolute, wantDir := SplitPath(path)
	cur := start
	if absolute || cur == nil {
		cur = root
	}
	nlinks := 0
	var parent *Inode
	var leaf string

	for i := 0; i < len(parts); i++ {
		name := parts[i]
		if len(name) > sys.NameMax {
			return nil, nil, "", sys.ENAMETOOLONG
		}
		if !cur.IsDir() {
			return nil, nil, "", sys.ENOTDIR
		}
		cur.mu.RLock()
		e := CheckAccess(cred, cur.Mode, cur.UID, cur.GID, sys.X_OK)
		var next *Inode
		if e == sys.OK {
			if name == ".." && cur == root {
				next = cur // ".." at the (possibly chroot) root stays put
			} else {
				next = cur.lookupLocked(name)
			}
		}
		cur.mu.RUnlock()
		if e != sys.OK {
			return nil, nil, "", e
		}
		last := i == len(parts)-1
		if last && wantParent {
			if name == "." || name == ".." {
				return next, nil, "", sys.EINVAL
			}
			parent, leaf = cur, name
		}
		if next == nil {
			if last {
				return nil, parent, leaf, sys.ENOENT
			}
			return nil, nil, "", sys.ENOENT
		}
		if next.IsSymlink() && (!last || follow) {
			nlinks++
			if nlinks > MaxSymlinks {
				return nil, nil, "", sys.ELOOP
			}
			target := next.link
			tparts, tabs, twd := SplitPath(target)
			if target == "" {
				return nil, nil, "", sys.ENOENT
			}
			if twd {
				wantDir = true
			}
			if tabs {
				cur = root
			}
			// Splice the link target in place of this component.
			rest := append(append([]string{}, tparts...), parts[i+1:]...)
			parts = rest
			i = -1
			continue
		}
		cur = next
	}
	if wantDir && !cur.IsDir() {
		return nil, nil, "", sys.ENOTDIR
	}
	if len(parts) == 0 && wantParent {
		// Path was "/" or "." — it has no parent component.
		return cur, nil, "", sys.EINVAL
	}
	return cur, parent, leaf, sys.OK
}

// checkWrite verifies that cred may modify directory dir's contents.
// Caller holds dir.mu.
func checkWrite(cred Cred, dir *Inode) sys.Errno {
	return CheckAccess(cred, dir.Mode, dir.UID, dir.GID, sys.W_OK)
}

// stickyCheck enforces the sticky-directory deletion rule. Caller holds
// dir.mu but not victim.mu (the victim's owner is read under its own lock).
func stickyCheck(cred Cred, dir, victim *Inode) sys.Errno {
	if dir.Mode&sys.S_ISVTX == 0 || cred.Root() {
		return sys.OK
	}
	victim.mu.RLock()
	vuid := victim.UID
	victim.mu.RUnlock()
	if cred.UID != dir.UID && cred.UID != vuid {
		return sys.EPERM
	}
	return sys.OK
}

// Create makes a new regular file entry name in dir with the given
// permission bits. It fails with EEXIST if the name is taken.
func (fs *FS) Create(dir *Inode, name string, perm uint32, cred Cred) (*Inode, sys.Errno) {
	return fs.makeNode(dir, name, sys.S_IFREG|perm&0o7777, cred, nil, "", 0)
}

// Mkdir makes a new directory entry name in dir.
func (fs *FS) Mkdir(dir *Inode, name string, perm uint32, cred Cred) (*Inode, sys.Errno) {
	return fs.makeNode(dir, name, sys.S_IFDIR|perm&0o7777, cred, nil, "", 0)
}

// Symlink makes a symbolic link entry name in dir pointing at target.
func (fs *FS) Symlink(dir *Inode, name, target string, cred Cred) (*Inode, sys.Errno) {
	return fs.makeNode(dir, name, sys.S_IFLNK|0o777, cred, nil, target, 0)
}

// MkDev makes a character-device entry name in dir backed by dev.
func (fs *FS) MkDev(dir *Inode, name string, perm, rdev uint32, dev Device, cred Cred) (*Inode, sys.Errno) {
	return fs.makeNode(dir, name, sys.S_IFCHR|perm&0o7777, cred, dev, "", rdev)
}

// makeNode creates and publishes a fully initialized inode under dir. The
// new inode is complete — device vector, link target, directory setup —
// before it is inserted, so no observer can see a half-built node.
func (fs *FS) makeNode(dir *Inode, name string, mode uint32, cred Cred, dev Device, link string, rdev uint32) (*Inode, sys.Errno) {
	if !dir.IsDir() {
		return nil, sys.ENOTDIR
	}
	if name == "" || name == "." || name == ".." || strings.Contains(name, "/") {
		return nil, sys.EINVAL
	}
	if len(name) > sys.NameMax {
		return nil, sys.ENAMETOOLONG
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.Nlink == 0 {
		return nil, sys.ENOENT // directory was removed under us
	}
	if dir.lookupLocked(name) != nil {
		return nil, sys.EEXIST
	}
	if e := checkWrite(cred, dir); e != sys.OK {
		return nil, e
	}
	ip := fs.newInode(mode, cred)
	ip.dev = dev
	ip.link = link
	ip.Rdev = rdev
	// BSD semantics: new files inherit the group of their directory.
	ip.GID = dir.GID
	ip.publishAttrs() // republish: the group changed after newInode
	if e := fs.jlog(&journal.Record{Op: journal.OpCreate, Dir: dir.Ino, Name: name,
		Ino: ip.Ino, Mode: ip.Mode, UID: ip.UID, GID: ip.GID, Rdev: rdev,
		Data: []byte(link)}); e != sys.OK {
		fs.ninodes.Add(-1) // newInode counted it; the node is never published
		return nil, e
	}
	if ip.IsDir() {
		ip.Nlink = 2 // "." counts
		ip.setParent(dir)
		dir.Nlink++ // ".." in the child
	}
	dir.insertLocked(name, ip)
	return ip, sys.OK
}

// Link adds a hard link named name in dir to the existing inode target.
func (fs *FS) Link(dir *Inode, name string, target *Inode, cred Cred) sys.Errno {
	if target.IsDir() {
		return sys.EPERM
	}
	if !dir.IsDir() {
		return sys.ENOTDIR
	}
	if name == "" || name == "." || name == ".." {
		return sys.EINVAL
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.Nlink == 0 {
		return sys.ENOENT
	}
	if dir.lookupLocked(name) != nil {
		return sys.EEXIST
	}
	if e := checkWrite(cred, dir); e != sys.OK {
		return e
	}
	target.mu.Lock()
	if target.Nlink >= 32767 {
		target.mu.Unlock()
		return sys.EMLINK
	}
	if target.Nlink == 0 {
		// Lost a race with the final unlink; linking would resurrect a
		// reclaimed inode and corrupt the live count.
		target.mu.Unlock()
		return sys.ENOENT
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpLink, Dir: dir.Ino, Name: name,
		Ino: target.Ino}); e != sys.OK {
		target.mu.Unlock()
		return e
	}
	target.Nlink++
	target.Ctime = fs.now()
	target.bump()
	target.mu.Unlock()
	dir.insertLocked(name, target)
	return sys.OK
}

// Unlink removes the entry name from dir. Directories cannot be unlinked.
func (fs *FS) Unlink(dir *Inode, name string, cred Cred) sys.Errno {
	if !dir.IsDir() {
		return sys.ENOTDIR
	}
	if name == "." || name == ".." {
		return sys.EINVAL
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.Nlink == 0 {
		return sys.ENOENT
	}
	victim := dir.lookupLocked(name)
	if victim == nil {
		return sys.ENOENT
	}
	if victim.IsDir() {
		return sys.EPERM
	}
	if e := checkWrite(cred, dir); e != sys.OK {
		return e
	}
	if e := stickyCheck(cred, dir, victim); e != sys.OK {
		return e
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpUnlink, Dir: dir.Ino, Name: name,
		Ino: victim.Ino}); e != sys.OK {
		return e
	}
	dir.removeLocked(name)
	fs.drop(victim)
	return sys.OK
}

// Rmdir removes the empty directory entry name from dir.
func (fs *FS) Rmdir(dir *Inode, name string, cred Cred) sys.Errno {
	if !dir.IsDir() {
		return sys.ENOTDIR
	}
	if name == "." || name == ".." {
		return sys.EINVAL
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.Nlink == 0 {
		return sys.ENOENT
	}
	victim := dir.lookupLocked(name)
	if victim == nil {
		return sys.ENOENT
	}
	if !victim.IsDir() {
		return sys.ENOTDIR
	}
	if victim == fs.root {
		return sys.EBUSY
	}
	if e := checkWrite(cred, dir); e != sys.OK {
		return e
	}
	if e := stickyCheck(cred, dir, victim); e != sys.OK {
		return e
	}
	victim.mu.Lock()
	if len(victim.entries) != 0 {
		victim.mu.Unlock()
		return sys.ENOTEMPTY
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpRmdir, Dir: dir.Ino, Name: name,
		Ino: victim.Ino}); e != sys.OK {
		victim.mu.Unlock()
		return e
	}
	victim.Nlink = 0
	victim.setParent(nil)
	victim.bump()
	victim.mu.Unlock()
	dir.removeLocked(name)
	dir.Nlink-- // the victim's ".."
	fs.ninodes.Add(-1)
	return sys.OK
}

// drop decrements a link count and reclaims the inode at zero. Caller
// holds the parent directory's lock but not ip's.
func (fs *FS) drop(ip *Inode) {
	ip.mu.Lock()
	ip.Nlink--
	ip.Ctime = fs.now()
	ip.bump()
	last := ip.Nlink == 0
	ip.mu.Unlock()
	if last {
		fs.ninodes.Add(-1)
		// Data stays reachable through any open file description; the Go
		// garbage collector is our block-free list.
	}
}

// orderParents returns rename's two (distinct) parent directories in lock
// order: the ancestor first if one contains the other, otherwise by inode
// number. Caller holds renameMu, so the answer cannot be invalidated by a
// concurrent rename.
func (fs *FS) orderParents(a, b *Inode) (*Inode, *Inode) {
	for d := b; ; {
		if d == a {
			return a, b // a is an ancestor of b
		}
		pp := d.parentPtr()
		if d == fs.root || pp == nil || pp == d {
			break
		}
		d = pp
	}
	for d := a; ; {
		if d == b {
			return b, a
		}
		pp := d.parentPtr()
		if d == fs.root || pp == nil || pp == d {
			break
		}
		d = pp
	}
	if a.Ino < b.Ino {
		return a, b
	}
	return b, a
}

// Rename moves the entry oldName in oldDir to newName in newDir, replacing
// a compatible existing target, with the usual Unix restrictions.
func (fs *FS) Rename(oldDir *Inode, oldName string, newDir *Inode, newName string, cred Cred) sys.Errno {
	if !oldDir.IsDir() || !newDir.IsDir() {
		return sys.ENOTDIR
	}
	if oldName == "." || oldName == ".." || newName == "." || newName == ".." ||
		oldName == "" || newName == "" {
		return sys.EINVAL
	}
	fs.renameMu.Lock()
	defer fs.renameMu.Unlock()

	first, second := oldDir, newDir
	if oldDir != newDir {
		first, second = fs.orderParents(oldDir, newDir)
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if second != first {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if oldDir.Nlink == 0 || newDir.Nlink == 0 {
		return sys.ENOENT
	}

	src := oldDir.lookupLocked(oldName)
	if src == nil {
		return sys.ENOENT
	}
	// A directory may not be moved into itself or a descendant. This also
	// rules out src == newDir, so the child locks taken below can never
	// alias the parent locks already held.
	if src.IsDir() {
		for d := newDir; ; {
			if d == src {
				return sys.EINVAL
			}
			pp := d.parentPtr()
			if d == fs.root || pp == nil || pp == d {
				break
			}
			d = pp
		}
	}
	if e := checkWrite(cred, oldDir); e != sys.OK {
		return e
	}
	if e := checkWrite(cred, newDir); e != sys.OK {
		return e
	}
	if e := stickyCheck(cred, oldDir, src); e != sys.OK {
		return e
	}
	dst := newDir.lookupLocked(newName)
	if dst == src {
		return sys.OK // rename to self is a no-op
	}
	if dst != nil {
		switch {
		case dst.IsDir() && !src.IsDir():
			return sys.EISDIR
		case !dst.IsDir() && src.IsDir():
			return sys.ENOTDIR
		}
	}
	// One logical record covers the whole rename, replacement included, so
	// it is logged only after every remaining check has passed and before
	// the first mutation.
	rec := &journal.Record{Op: journal.OpRename, Dir: oldDir.Ino, Name: oldName,
		Dir2: newDir.Ino, Name2: newName, Ino: src.Ino}
	switch {
	case dst != nil && dst.IsDir():
		dst.mu.Lock()
		if len(dst.entries) != 0 {
			dst.mu.Unlock()
			return sys.ENOTEMPTY
		}
		if e := stickyCheckLocked(cred, newDir, dst.UID); e != sys.OK {
			dst.mu.Unlock()
			return e
		}
		if e := fs.jlog(rec); e != sys.OK {
			dst.mu.Unlock()
			return e
		}
		dst.Nlink = 0
		dst.setParent(nil)
		dst.bump()
		dst.mu.Unlock()
		newDir.removeLocked(newName)
		newDir.Nlink--
		fs.ninodes.Add(-1)
	case dst != nil:
		if e := stickyCheck(cred, newDir, dst); e != sys.OK {
			return e
		}
		if e := fs.jlog(rec); e != sys.OK {
			return e
		}
		newDir.removeLocked(newName)
		fs.drop(dst)
	default:
		if e := fs.jlog(rec); e != sys.OK {
			return e
		}
	}
	oldDir.removeLocked(oldName)
	newDir.insertLocked(newName, src)
	if src.IsDir() && oldDir != newDir {
		oldDir.Nlink--
		newDir.Nlink++
	}
	src.mu.Lock()
	if src.IsDir() {
		src.setParent(newDir)
	}
	src.Ctime = fs.now()
	src.bump()
	src.mu.Unlock()
	return sys.OK
}

// stickyCheckLocked is stickyCheck for callers already holding the
// victim's lock (they pass the owner they read under it).
func stickyCheckLocked(cred Cred, dir *Inode, victimUID uint32) sys.Errno {
	if dir.Mode&sys.S_ISVTX == 0 || cred.Root() {
		return sys.OK
	}
	if cred.UID != dir.UID && cred.UID != victimUID {
		return sys.EPERM
	}
	return sys.OK
}

// Chmod sets the permission bits of ip.
func (fs *FS) Chmod(ip *Inode, mode uint32, cred Cred) sys.Errno {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if !cred.Root() && cred.UID != ip.UID {
		return sys.EPERM
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpChmod, Ino: ip.Ino,
		Mode: ip.typ | mode&0o7777}); e != sys.OK {
		return e
	}
	ip.Mode = ip.typ | mode&0o7777
	ip.Ctime = fs.now()
	ip.bump()
	ip.publishAttrs()
	return sys.OK
}

// Chown sets ownership of ip. Only the super-user may change the owner;
// an owner may change the group to one they belong to. 0xffffffff leaves a
// field unchanged.
func (fs *FS) Chown(ip *Inode, uid, gid uint32, cred Cred) sys.Errno {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if !cred.Root() {
		if uid != 0xffffffff && uid != ip.UID {
			return sys.EPERM
		}
		if cred.UID != ip.UID {
			return sys.EPERM
		}
		if gid != 0xffffffff && !cred.InGroup(gid) {
			return sys.EPERM
		}
	}
	// Resolve the absolute post-call identity (0xffffffff keeps a field,
	// non-root chown clears set-id bits) so the journal record replays
	// without re-deriving credentials.
	newUID, newGID, newMode := ip.UID, ip.GID, ip.Mode
	if uid != 0xffffffff {
		newUID = uid
	}
	if gid != 0xffffffff {
		newGID = gid
	}
	if !cred.Root() {
		newMode &^= sys.S_ISUID | sys.S_ISGID
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpChown, Ino: ip.Ino,
		UID: newUID, GID: newGID, Mode: newMode}); e != sys.OK {
		return e
	}
	ip.UID, ip.GID, ip.Mode = newUID, newGID, newMode
	ip.Ctime = fs.now()
	ip.bump()
	ip.publishAttrs()
	return sys.OK
}

// Utimes sets the access and modification times of ip.
func (fs *FS) Utimes(ip *Inode, atime, mtime time.Time, cred Cred) sys.Errno {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if !cred.Root() && cred.UID != ip.UID {
		if e := CheckAccess(cred, ip.Mode, ip.UID, ip.GID, sys.W_OK); e != sys.OK {
			return sys.EPERM
		}
	}
	if e := fs.jlog(&journal.Record{Op: journal.OpUtimes, Ino: ip.Ino,
		Off: atime.UnixNano(), Size: mtime.UnixNano()}); e != sys.OK {
		return e
	}
	ip.Atime, ip.Mtime = atime, mtime
	ip.Ctime = fs.now()
	ip.bump()
	return sys.OK
}

// Access checks want against ip for cred (the access system call).
func (fs *FS) Access(ip *Inode, want int, cred Cred) sys.Errno {
	if want == sys.F_OK {
		return sys.OK
	}
	ip.mu.RLock()
	defer ip.mu.RUnlock()
	return CheckAccess(cred, ip.Mode, ip.UID, ip.GID, want)
}
