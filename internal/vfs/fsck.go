package vfs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"interpose/internal/sys"
)

// Recovery verification: Check is the fsck run after every crash
// recovery (and usable on any quiesced filesystem). It audits the
// structural invariants that journal replay and snapshot restore promise
// to preserve and returns human-readable violations — an empty slice is
// a clean bill of health:
//
//   - link counts: a file's Nlink equals the number of dentries that
//     reference it; a directory's equals 2 + its subdirectory count.
//   - reachability: the live-inode counter equals the number of inodes
//     reachable from the root (nothing leaked, nothing lost).
//   - directory structure: the lookup map and the iteration order agree
//     exactly, and every child directory's ".." points at the directory
//     that holds it.
//   - cache coherence: the lock-free attribute snapshot matches the
//     inode, a current-epoch dentry snapshot holds no entry that
//     disagrees with the directory, and a current-generation stat
//     snapshot matches a freshly computed one.
//
// Check takes read locks only; run it on a quiesced world.
func (fs *FS) Check() []string {
	var bad []string
	badf := func(format string, a ...any) { bad = append(bad, fmt.Sprintf(format, a...)) }

	// One walk collects the audit inputs: dentry reference counts per
	// inode, subdirectory counts per directory, and the set of reachable
	// inodes.
	refs := map[uint32]int{}    // dentry references per inode number
	subdirs := map[uint32]int{} // subdirectory count per directory
	reachable := 0
	var maxIno uint32
	epoch := fs.dcache.epoch.Load()

	fs.walkTree(func(path string, ip *Inode) {
		reachable++
		if ip.Ino > maxIno {
			maxIno = ip.Ino
		}

		ip.mu.RLock()
		defer ip.mu.RUnlock()

		if ip.Nlink == 0 {
			badf("%s: reachable inode %d has zero link count", path, ip.Ino)
		}
		if ip.typ != ip.Mode&sys.S_IFMT {
			badf("%s: type bits %o disagree with mode %o", path, ip.typ, ip.Mode)
		}

		// Lock-free attribute snapshot must match the locked truth.
		if a := ip.attrs.Load(); a == nil {
			badf("%s: no published attribute snapshot", path)
		} else if a.mode != ip.Mode || a.uid != ip.UID || a.gid != ip.GID {
			badf("%s: attribute snapshot (%o,%d,%d) != inode (%o,%d,%d)",
				path, a.mode, a.uid, a.gid, ip.Mode, ip.UID, ip.GID)
		}
		// A current-generation stat snapshot must match a recomputation.
		if sc := ip.statc.Load(); sc != nil && sc.gen == ip.gen.Load() {
			if sc.st != ip.statLocked() {
				badf("%s: cached stat disagrees with inode at generation %d", path, sc.gen)
			}
		}

		if !ip.IsDir() {
			return
		}

		// entries ↔ order agreement.
		if len(ip.entries) != len(ip.order) {
			badf("%s: %d map entries but %d ordered names", path, len(ip.entries), len(ip.order))
		}
		for _, name := range ip.order {
			child := ip.entries[name]
			if child == nil {
				badf("%s: ordered name %q missing from lookup map", path, name)
				continue
			}
			refs[child.Ino]++
			if child.IsDir() {
				subdirs[ip.Ino]++
				if pp := child.parentPtr(); pp != ip {
					badf("%s/%s: \"..\" does not point at its parent", path, name)
				}
			}
		}
		// A current-epoch dentry snapshot may be partial but never wrong.
		if dc := ip.dmap.Load(); dc != nil && dc.epoch == epoch {
			for name, cached := range dc.m {
				if got := ip.entries[name]; got != cached {
					badf("%s: dentry cache maps %q to inode %v, directory has %v",
						path, name, inoOf(cached), inoOf(got))
				}
			}
		}
	})

	// Link-count audit with the reference counts in hand.
	fs.walkTree(func(path string, ip *Inode) {
		ip.mu.RLock()
		nlink := ip.Nlink
		ip.mu.RUnlock()
		if ip.IsDir() {
			// "/" has no parent dentry, but its ".." self-reference stands
			// in for one, so the formula covers the root too.
			want := uint32(2 + subdirs[ip.Ino])
			if nlink != want {
				badf("%s: directory link count %d, want %d (2 + %d subdirs)",
					path, nlink, want, subdirs[ip.Ino])
			}
			if ip != fs.root && refs[ip.Ino] != 1 {
				badf("%s: directory referenced by %d dentries", path, refs[ip.Ino])
			}
		} else {
			if nlink != uint32(refs[ip.Ino]) {
				badf("%s: link count %d but %d dentries reference it", path, nlink, refs[ip.Ino])
			}
		}
	})

	if live := int(fs.ninodes.Load()); live != reachable {
		badf("/: live-inode counter %d but %d inodes reachable (orphans or leaks)", live, reachable)
	}
	if next := fs.nextIno.Load(); next <= maxIno {
		badf("/: inode allocator at %d, behind live inode %d", next, maxIno)
	}
	return bad
}

func inoOf(ip *Inode) any {
	if ip == nil {
		return "absent"
	}
	return ip.Ino
}

// StateHash returns a digest of the filesystem's logical durable state:
// paths, types, permissions, ownership, link counts, symlink targets and
// file contents — everything crash recovery must preserve. Timestamps
// are deliberately excluded (replay reassigns them from the recovery
// clock), as are inode numbers' allocation order artifacts beyond the
// numbers themselves. Two worlds with equal hashes hold byte-identical
// trees.
func (fs *FS) StateHash() [32]byte {
	h := sha256.New()
	var num [8]byte
	wU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(num[:4], v)
		h.Write(num[:4])
	}
	fs.walkTree(func(path string, ip *Inode) {
		ip.mu.RLock()
		defer ip.mu.RUnlock()
		h.Write([]byte(path))
		h.Write([]byte{0})
		wU32(ip.Ino)
		wU32(ip.Mode)
		wU32(ip.Nlink)
		wU32(ip.UID)
		wU32(ip.GID)
		wU32(ip.Rdev)
		switch ip.typ {
		case sys.S_IFREG:
			binary.LittleEndian.PutUint64(num[:], uint64(len(ip.data)))
			h.Write(num[:])
			h.Write(ip.data)
		case sys.S_IFLNK:
			h.Write([]byte(ip.link))
		case sys.S_IFDIR:
			// Iteration order is insertion order and may differ between a
			// live world and its replayed twin; hash sorted names.
			names := append([]string(nil), ip.order...)
			sort.Strings(names)
			for _, n := range names {
				h.Write([]byte(n))
				h.Write([]byte{0})
			}
		}
	})
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}
