package vfs

import (
	"fmt"
	"sync/atomic"
	"time"

	"interpose/internal/sys"
)

// Copy-on-write forking: Fork clones a filesystem in O(#inodes) pointer
// work, not O(bytes). Regular-file data arrays are not copied — parent
// and child share each array behind a reference count (Inode.dataRefs)
// and whichever side mutates a file first copies just that inode's bytes
// out (Inode.unshareData). This generalizes the atomic-pointer COW
// discipline of the dentry/attribute caches (cache.go): immutable value
// published behind an atomic pointer, replaced wholesale on write.
//
// What is shared and what is copied:
//
//   - file data arrays: shared behind dataRefs until either side's first
//     in-place write or growing write/truncate (shrink is a reslice and
//     keeps sharing — the underlying bytes never change);
//   - attribute snapshots (attrs): the *attrSnap pointer is shared; it is
//     an immutable value that chmod/chown replace wholesale, so sharing
//     is free and always safe;
//   - inode structs, directory entry tables, order slices: copied (they
//     are mutable under each side's own locks);
//   - dentry snapshots (dmap) and the pathname cache: NOT shared — they
//     map names to the parent's *Inode pointers, which would resolve into
//     the wrong world. The child starts cold and refills lazily;
//   - stat snapshots (statc): dropped; recomputed on first stat.
//
// Lock ordering: Fork takes each inode's read lock one at a time, never
// two at once, so it composes with every mutation path (which hold at
// most parent dir + one child, exclusively). A writer cannot observe or
// break a share mid-install because installing the refcount happens
// under the inode's read lock while all data mutations hold the write
// lock. Consistency ACROSS inodes is the caller's responsibility, as
// with WriteSnapshot: fork a quiesced world.
//
// Journaling: the child carries the parent's applied-sequence watermark
// (jnlSeq) but no journal writer. The caller seals the parent's journal
// epoch (commit) before forking; replaying the parent's journal onto the
// child then applies zero records — everything is at or below the
// watermark. Replay paths unshare before mutating (replay.go), so even a
// divergent replay cannot scribble on a shared array.

// Fork clones the filesystem copy-on-write. clock supplies the child's
// timestamps (the parent's clock when nil); resolve maps a device
// inode's rdev to the child world's driver vector — device inodes must
// not keep the parent's drivers, or guest I/O would cross worlds — and
// may be nil only when the tree holds no device nodes. The parent must
// be quiesced (no running mutators) for cross-inode consistency.
func (fs *FS) Fork(clock func() time.Time, resolve func(rdev uint32) (Device, bool)) (*FS, error) {
	if clock == nil {
		clock = fs.clock
	}
	child := &FS{dev: fs.dev, clock: clock}

	// Pass one: clone every reachable inode (hard links visit once).
	// forkDir remembers each directory's listing so pass two can wire
	// entries and parents to the clones.
	type forkDir struct {
		clone  *Inode
		parent *Inode // original
		names  []string
		kids   []*Inode // originals
	}
	clones := map[*Inode]*Inode{}
	var dirs []forkDir
	var walkErr error
	fs.walkTree(func(path string, ip *Inode) {
		if walkErr != nil {
			return
		}
		ip.mu.RLock()
		c := &Inode{
			fs:    child,
			Ino:   ip.Ino,
			typ:   ip.typ,
			Mode:  ip.Mode,
			Nlink: ip.Nlink,
			UID:   ip.UID,
			GID:   ip.GID,
			Rdev:  ip.Rdev,
			Atime: ip.Atime,
			Mtime: ip.Mtime,
			Ctime: ip.Ctime,
			link:  ip.link,
		}
		switch ip.typ {
		case sys.S_IFREG:
			c.data = ip.data
			if len(ip.data) > 0 {
				refs := ip.dataRefs.Load()
				if refs == nil {
					nr := &atomic.Int32{}
					nr.Store(1)
					// CAS arbitrates concurrent forks; a mutator cannot
					// intervene (it needs the write lock we read-hold).
					if !ip.dataRefs.CompareAndSwap(nil, nr) {
						refs = ip.dataRefs.Load()
					} else {
						refs = nr
					}
				}
				refs.Add(1)
				c.dataRefs.Store(refs)
			}
		case sys.S_IFDIR:
			c.entries = make(map[string]*Inode, len(ip.entries))
			pp := ip.parentPtr()
			if pp == nil {
				pp = ip
			}
			dirs = append(dirs, forkDir{
				clone:  c,
				parent: pp,
				names:  append([]string(nil), ip.order...),
				kids: func() []*Inode {
					ks := make([]*Inode, len(ip.order))
					for i, n := range ip.order {
						ks[i] = ip.entries[n]
					}
					return ks
				}(),
			})
		case sys.S_IFCHR:
			if resolve != nil {
				if dev, ok := resolve(ip.Rdev); ok {
					c.dev = dev
				}
			}
			if c.dev == nil {
				walkErr = fmt.Errorf("vfs: fork: device %d:%d (%s) has no driver in the child",
					ip.Rdev>>8, ip.Rdev&0xff, path)
			}
		}
		// Share the immutable attribute snapshot; chmod/chown republish a
		// fresh one, never mutate it in place.
		c.attrs.Store(ip.attrs.Load())
		ip.mu.RUnlock()
		if c.attrs.Load() == nil {
			c.publishAttrs()
		}
		clones[ip] = c
	})
	if walkErr != nil {
		return nil, walkErr
	}

	// Pass two: wire directory entries and parent pointers to the clones.
	for _, d := range dirs {
		for i, name := range d.names {
			kid := clones[d.kids[i]]
			if kid == nil {
				continue // raced with a concurrent remove; quiesced callers never see this
			}
			d.clone.entries[name] = kid
			d.clone.order = append(d.clone.order, name)
		}
		d.clone.setParent(clones[d.parent])
	}

	child.root = clones[fs.root]
	child.nextIno.Store(fs.nextIno.Load())
	child.ninodes.Store(int64(len(clones)))
	child.jnlSeq.Store(fs.jnlSeq.Load())
	return child, nil
}
