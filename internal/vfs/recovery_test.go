package vfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"interpose/internal/journal"
	"interpose/internal/sys"
)

// journaled attaches a fresh journal (committing every record) to a new
// FS and returns both plus the backing store.
func journaled(t *testing.T) (*FS, *journal.Writer, *journal.MemStore) {
	t.Helper()
	fs := New(nil)
	st := journal.NewMemStore(0)
	w := journal.NewWriter(st, 1)
	fs.SetJournal(w)
	return fs, w, st
}

// mustOK fails the test on any non-OK errno.
func mustOK(t *testing.T, e sys.Errno) {
	t.Helper()
	if e != sys.OK {
		t.Fatalf("unexpected errno %v", e)
	}
}

// replayOnto scans the journal store and replays it onto a fresh FS,
// failing on a torn tail.
func replayOnto(t *testing.T, st *journal.MemStore) *FS {
	t.Helper()
	recs, torn := journal.Scan(st.Bytes())
	if torn != nil {
		t.Fatalf("torn journal: %v", torn)
	}
	fresh := New(nil)
	rp := NewReplayer(fresh, nil)
	if err := rp.ReplayAll(recs); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return fresh
}

func TestFsckCleanOnBuiltTree(t *testing.T) {
	fs := build(t)
	if bad := fs.Check(); len(bad) != 0 {
		t.Fatalf("violations on a healthy tree: %v", bad)
	}
}

func TestFsckCatchesCorruption(t *testing.T) {
	fs := build(t)
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	a.mu.Lock()
	a.Nlink = 7 // deliberately wrong
	a.mu.Unlock()
	if bad := fs.Check(); len(bad) == 0 {
		t.Fatal("fsck missed a corrupted directory link count")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	fs := build(t)
	// Add a hard link and a second regular file so the snapshot carries
	// Nlink > 1 and multiple data payloads.
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	c, _ := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true)
	mustOK(t, fs.Link(b, "hard", c, root0))
	f, e := fs.Create(b, "second", 0o640, root0)
	mustOK(t, e)
	f.WriteAt(bytes.Repeat([]byte("xy"), 700), 3, 0)

	var buf bytes.Buffer
	if err := fs.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad := got.Check(); len(bad) != 0 {
		t.Fatalf("restored world fails fsck: %v", bad)
	}
	if fs.StateHash() != got.StateHash() {
		t.Fatal("restored world differs from original")
	}
	if fs.NumInodes() != got.NumInodes() {
		t.Fatalf("inode counts differ: %d vs %d", fs.NumInodes(), got.NumInodes())
	}
	// The hard link must be the same inode, not a copy.
	h1, _ := got.Lookup(got.Root(), "/a/b/hard", root0, true)
	h2, _ := got.Lookup(got.Root(), "/a/b/c.txt", root0, true)
	if h1 != h2 {
		t.Fatal("hard link restored as a distinct inode")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	fs := build(t)
	var buf bytes.Buffer
	if err := fs.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(data), nil, nil); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

// TestJournalReplayRebuildsWorld drives a mixed mutation workload under a
// journal, replays it onto a fresh world and demands an identical tree.
func TestJournalReplayRebuildsWorld(t *testing.T) {
	fs, w, st := journaled(t)
	root := fs.Root()

	d1, e := fs.Mkdir(root, "work", 0o755, root0)
	mustOK(t, e)
	d2, e := fs.Mkdir(d1, "sub", 0o700, root0)
	mustOK(t, e)
	f, e := fs.Create(d1, "notes.txt", 0o644, root0)
	mustOK(t, e)
	f.WriteAt([]byte("hello journal"), 0, 0)
	f.WriteAt([]byte("JOURNAL"), 6, 0)
	mustOK(t, f.Truncate(10))
	mustOK(t, fs.Link(d2, "alias", f, root0))
	mustOK(t, fs.Chmod(f, 0o600, root0))
	mustOK(t, fs.Chown(f, alice.UID, alice.GID, root0))
	_, e = fs.Symlink(d1, "ln", "notes.txt", root0)
	mustOK(t, e)
	mustOK(t, fs.Rename(d1, "notes.txt", d2, "moved.txt", root0))
	mustOK(t, fs.Unlink(d2, "alias", root0))
	_, e = fs.Mkdir(d1, "doomed", 0o755, root0)
	mustOK(t, e)
	mustOK(t, fs.Rmdir(d1, "doomed", root0))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	got := replayOnto(t, st)
	if bad := got.Check(); len(bad) != 0 {
		t.Fatalf("replayed world fails fsck: %v", bad)
	}
	if got.StateHash() != fs.StateHash() {
		t.Fatal("replayed world differs from the journaled one")
	}
	ip, e := got.Lookup(got.Root(), "/work/sub/moved.txt", root0, true)
	mustOK(t, e)
	if string(ip.Bytes()) != "hello JOUR" {
		t.Fatalf("replayed content %q", ip.Bytes())
	}
}

// TestRenameHeavyDoubleReplay is the issue's convergence requirement: a
// rename-heavy journal replayed twice (the second pass over the already
// recovered world) must land byte-identical, proving every record is
// idempotent.
func TestRenameHeavyDoubleReplay(t *testing.T) {
	fs, w, st := journaled(t)
	root := fs.Root()
	rng := rand.New(rand.NewSource(7))

	var dirs []*Inode
	for i := 0; i < 4; i++ {
		d, e := fs.Mkdir(root, fmt.Sprintf("d%d", i), 0o755, root0)
		mustOK(t, e)
		dirs = append(dirs, d)
	}
	names := make([]string, 0, 12)
	homes := map[string]*Inode{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("f%02d", i)
		d := dirs[rng.Intn(len(dirs))]
		f, e := fs.Create(d, name, 0o644, root0)
		mustOK(t, e)
		f.WriteAt([]byte(name), 0, 0)
		names = append(names, name)
		homes[name] = d
	}
	// Shuffle files between directories; some renames replace an
	// existing target (same name created in the destination first).
	for step := 0; step < 200; step++ {
		name := names[rng.Intn(len(names))]
		from, to := homes[name], dirs[rng.Intn(len(dirs))]
		if rng.Intn(4) == 0 && from != to {
			if f, e := fs.Create(to, name, 0o600, root0); e == sys.OK {
				f.WriteAt([]byte("replaced"), 0, 0)
			}
		}
		if e := fs.Rename(from, name, to, name, root0); e != sys.OK {
			t.Fatalf("step %d: rename %s: %v", step, name, e)
		}
		homes[name] = to
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	recs, torn := journal.Scan(st.Bytes())
	if torn != nil {
		t.Fatal(torn)
	}
	once := New(nil)
	if err := NewReplayer(once, nil).ReplayAll(recs); err != nil {
		t.Fatal(err)
	}
	if once.StateHash() != fs.StateHash() {
		t.Fatal("single replay diverged from the live world")
	}
	// Second full pass over the already-recovered world: every record
	// must recognize itself as applied.
	rp := NewReplayer(once, nil)
	if err := rp.ReplayAll(recs); err != nil {
		t.Fatal(err)
	}
	if applied, _ := rp.Stats(); applied != 0 {
		t.Fatalf("second replay re-applied %d records; journal is not idempotent", applied)
	}
	if once.StateHash() != fs.StateHash() {
		t.Fatal("double replay diverged")
	}
	if bad := once.Check(); len(bad) != 0 {
		t.Fatalf("recovered world fails fsck: %v", bad)
	}
}

// TestReplayOverMidJournalSnapshot replays a full journal over a world
// restored from a snapshot taken halfway: the prefix must self-skip, the
// suffix must apply.
func TestReplayOverMidJournalSnapshot(t *testing.T) {
	fs, w, st := journaled(t)
	root := fs.Root()
	d, e := fs.Mkdir(root, "dir", 0o755, root0)
	mustOK(t, e)
	f, e := fs.Create(d, "a", 0o644, root0)
	mustOK(t, e)
	f.WriteAt([]byte("first half"), 0, 0)
	mustOKW(t, w)

	// Checkpoint here.
	var snap bytes.Buffer
	if err := fs.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Second half: more mutations after the checkpoint.
	mustOK(t, fs.Rename(d, "a", root, "b", root0))
	g, e := fs.Create(d, "c", 0o600, root0)
	mustOK(t, e)
	g.WriteAt([]byte("second half"), 0, 0)
	mustOKW(t, w)

	restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn := journal.Scan(st.Bytes())
	if torn != nil {
		t.Fatal(torn)
	}
	rp := NewReplayer(restored, nil)
	if err := rp.ReplayAll(recs); err != nil {
		t.Fatal(err)
	}
	if restored.StateHash() != fs.StateHash() {
		t.Fatal("snapshot + journal suffix diverged from the live world")
	}
	if bad := restored.Check(); len(bad) != 0 {
		t.Fatalf("recovered world fails fsck: %v", bad)
	}
}

// TestJournalFullDegradesReadOnly drives the filesystem into a full
// journal device and demands EROFS on every mutation path afterwards,
// with the world frozen at its pre-failure state.
func TestJournalFullDegradesReadOnly(t *testing.T) {
	fs := New(nil)
	st := journal.NewMemStore(256)
	fs.SetJournal(journal.NewWriter(st, 1))
	root := fs.Root()

	var filled bool
	for i := 0; i < 1000; i++ {
		if _, e := fs.Create(root, fmt.Sprintf("f%d", i), 0o644, root0); e == sys.EROFS {
			filled = true
			break
		}
	}
	if !filled {
		t.Fatal("256-byte journal never filled")
	}
	pre := fs.StateHash()
	if _, e := fs.Mkdir(root, "x", 0o755, root0); e != sys.EROFS {
		t.Fatalf("mkdir on degraded journal: %v", e)
	}
	if e := fs.Chmod(root, 0o700, root0); e != sys.EROFS {
		t.Fatalf("chmod on degraded journal: %v", e)
	}
	f, _ := fs.Lookup(root, "f0", root0, true)
	if _, e := f.WriteAt([]byte("z"), 0, 0); e != sys.EROFS {
		t.Fatalf("write on degraded journal: %v", e)
	}
	if e := f.Truncate(0); e != sys.EROFS {
		t.Fatalf("truncate on degraded journal: %v", e)
	}
	if fs.StateHash() != pre {
		t.Fatal("degraded filesystem still mutated")
	}
	if bad := fs.Check(); len(bad) != 0 {
		t.Fatalf("degraded world fails fsck: %v", bad)
	}
	// The journal prefix that did make it out must still be coherent.
	if _, torn := journal.Scan(st.Bytes()); torn != nil {
		t.Fatalf("journal prefix torn after ENOSPC: %v", torn)
	}
}

// TestTornTailRecovery crashes with a torn final sector and recovers:
// the surviving prefix must replay onto a world that passes fsck.
func TestTornTailRecovery(t *testing.T) {
	fs, _, st := journaled(t)
	root := fs.Root()
	d, e := fs.Mkdir(root, "d", 0o755, root0)
	mustOK(t, e)
	for i := 0; i < 20; i++ {
		f, e := fs.Create(d, fmt.Sprintf("f%d", i), 0o644, root0)
		mustOK(t, e)
		f.WriteAt([]byte("payload payload payload"), 0, 0)
	}
	// No sync barrier: the group-committed records reached the store but
	// were never fsynced, so the final sector may legitimately tear.
	st.Freeze(13) // crash with a half-written tail

	recs, torn := journal.Scan(st.Bytes())
	if torn == nil {
		t.Fatal("torn tail went undetected")
	}
	fresh := New(nil)
	if err := NewReplayer(fresh, nil).ReplayAll(recs); err != nil {
		t.Fatal(err)
	}
	if bad := fresh.Check(); len(bad) != 0 {
		t.Fatalf("recovered world fails fsck: %v", bad)
	}
	// Everything before the torn frame survived.
	if len(recs) == 0 {
		t.Fatal("no records survived the torn tail")
	}
}

func mustOKW(t *testing.T, w *journal.Writer) {
	t.Helper()
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}
