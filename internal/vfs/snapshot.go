package vfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"interpose/internal/sys"
)

// World checkpointing: WriteSnapshot serializes a quiesced filesystem —
// every inode reachable from the root, with data, metadata and directory
// structure — into a self-validating binary image; ReadSnapshot rebuilds
// an identical FS from one. Restore composes with the write-ahead journal
// (journal.go): load the snapshot, then replay the journal suffix taken
// after it (replay.go) to roll the world forward to the crash point.
//
// The format is a CRC-guarded payload of varint-encoded inode records in
// two passes: record everything keyed by inode number, then wire
// directory entries and parents by number. Device inodes serialize their
// rdev only; the reader resolves rdev back to a live Device vector
// through a caller-supplied table (the kernel owns the drivers).

const snapMagic = "IVFSNAP1"

// snapEnc builds the snapshot payload.
type snapEnc struct{ buf []byte }

func (e *snapEnc) u(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *snapEnc) i(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *snapEnc) s(s string)  { e.u(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *snapEnc) b(p []byte)  { e.u(uint64(len(p))); e.buf = append(e.buf, p...) }

// snapDec consumes a snapshot payload with bounds checking.
type snapDec struct {
	buf []byte
	err error
}

func (d *snapDec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("vfs: snapshot truncated")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *snapDec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("vfs: snapshot truncated")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *snapDec) b() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("vfs: snapshot truncated")
		return nil
	}
	p := d.buf[:n]
	d.buf = d.buf[n:]
	return p
}

func (d *snapDec) s() string { return string(d.b()) }

// WriteSnapshot serializes the filesystem to w. The world must be
// quiesced (no running mutators); the walk takes each inode's read lock
// but consistency across inodes is the caller's responsibility.
func (fs *FS) WriteSnapshot(w io.Writer) error {
	// Collect every reachable inode, parents before children so the
	// reader can wire ".." in one later pass.
	var inodes []*Inode
	seen := map[uint32]bool{}
	var walk func(ip *Inode)
	walk = func(ip *Inode) {
		if seen[ip.Ino] {
			return // extra hard link; serialized once
		}
		seen[ip.Ino] = true
		inodes = append(inodes, ip)
		if !ip.IsDir() {
			return
		}
		ip.mu.RLock()
		names := append([]string(nil), ip.order...)
		kids := make([]*Inode, len(names))
		for i, n := range names {
			kids[i] = ip.entries[n]
		}
		ip.mu.RUnlock()
		for _, c := range kids {
			walk(c)
		}
	}
	walk(fs.root)

	var e snapEnc
	e.u(uint64(fs.root.Ino))
	e.u(uint64(fs.nextIno.Load()))
	e.u(fs.jnlSeq.Load())
	e.u(uint64(len(inodes)))
	for _, ip := range inodes {
		ip.mu.RLock()
		e.u(uint64(ip.Ino))
		e.u(uint64(ip.Mode))
		e.u(uint64(ip.Nlink))
		e.u(uint64(ip.UID))
		e.u(uint64(ip.GID))
		e.u(uint64(ip.Rdev))
		e.i(ip.Atime.UnixNano())
		e.i(ip.Mtime.UnixNano())
		e.i(ip.Ctime.UnixNano())
		switch ip.typ {
		case sys.S_IFREG:
			e.b(ip.data)
		case sys.S_IFLNK:
			e.s(ip.link)
		case sys.S_IFDIR:
			pp := ip.parentPtr()
			e.u(uint64(pp.Ino))
			e.u(uint64(len(ip.order)))
			for _, name := range ip.order {
				e.s(name)
				e.u(uint64(ip.entries[name].Ino))
			}
		}
		ip.mu.RUnlock()
	}

	var hdr [len(snapMagic) + 8]byte
	copy(hdr[:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[len(snapMagic):], uint32(len(e.buf)))
	binary.LittleEndian.PutUint32(hdr[len(snapMagic)+4:], crc32.ChecksumIEEE(e.buf))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(e.buf)
	return err
}

// snapDir holds a directory's deferred wiring (pass two).
type snapDir struct {
	ip      *Inode
	parent  uint32
	names   []string
	kidInos []uint32
}

// ReadSnapshot reconstructs a filesystem from a snapshot produced by
// WriteSnapshot. clock supplies subsequent timestamps (time.Now when
// nil); resolve maps a device inode's rdev back to its driver and may be
// nil when the snapshot holds no device nodes.
func ReadSnapshot(r io.Reader, clock func() time.Time, resolve func(rdev uint32) (Device, bool)) (*FS, error) {
	var hdr [len(snapMagic) + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vfs: snapshot header: %w", err)
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("vfs: not a snapshot (bad magic)")
	}
	size := binary.LittleEndian.Uint32(hdr[len(snapMagic):])
	want := binary.LittleEndian.Uint32(hdr[len(snapMagic)+4:])
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("vfs: snapshot payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("vfs: snapshot checksum mismatch (%08x != %08x)", got, want)
	}

	if clock == nil {
		clock = time.Now
	}
	fs := &FS{dev: 1, clock: clock}
	d := &snapDec{buf: payload}
	rootIno := uint32(d.u())
	nextIno := uint32(d.u())
	jnlSeq := d.u()
	count := d.u()
	if d.err != nil {
		return nil, d.err
	}

	// Pass one: materialize every inode by number.
	byIno := make(map[uint32]*Inode, count)
	dirs := make([]snapDir, 0, count/4)
	for n := uint64(0); n < count; n++ {
		ip := &Inode{fs: fs}
		ip.Ino = uint32(d.u())
		ip.Mode = uint32(d.u())
		ip.typ = ip.Mode & sys.S_IFMT
		ip.Nlink = uint32(d.u())
		ip.UID = uint32(d.u())
		ip.GID = uint32(d.u())
		ip.Rdev = uint32(d.u())
		ip.Atime = time.Unix(0, d.i())
		ip.Mtime = time.Unix(0, d.i())
		ip.Ctime = time.Unix(0, d.i())
		switch ip.typ {
		case sys.S_IFREG:
			ip.data = append([]byte(nil), d.b()...)
		case sys.S_IFLNK:
			ip.link = d.s()
		case sys.S_IFDIR:
			ip.entries = make(map[string]*Inode)
			sd := snapDir{ip: ip, parent: uint32(d.u())}
			nent := d.u()
			for j := uint64(0); j < nent; j++ {
				sd.names = append(sd.names, d.s())
				sd.kidInos = append(sd.kidInos, uint32(d.u()))
			}
			dirs = append(dirs, sd)
		case sys.S_IFCHR:
			if resolve != nil {
				if dev, ok := resolve(ip.Rdev); ok {
					ip.dev = dev
				}
			}
			if ip.dev == nil {
				return nil, fmt.Errorf("vfs: snapshot device %d:%d has no driver",
					ip.Rdev>>8, ip.Rdev&0xff)
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		if byIno[ip.Ino] != nil {
			return nil, fmt.Errorf("vfs: snapshot duplicates inode %d", ip.Ino)
		}
		ip.publishAttrs()
		byIno[ip.Ino] = ip
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("vfs: %d trailing snapshot bytes", len(d.buf))
	}

	// Pass two: wire directory entries and parent pointers by number.
	for _, sd := range dirs {
		pp := byIno[sd.parent]
		if pp == nil {
			return nil, fmt.Errorf("vfs: directory %d has unknown parent %d", sd.ip.Ino, sd.parent)
		}
		sd.ip.setParent(pp)
		for i, name := range sd.names {
			child := byIno[sd.kidInos[i]]
			if child == nil {
				return nil, fmt.Errorf("vfs: entry %q in directory %d references unknown inode %d",
					name, sd.ip.Ino, sd.kidInos[i])
			}
			sd.ip.entries[name] = child
			sd.ip.order = append(sd.ip.order, name)
		}
	}

	fs.root = byIno[rootIno]
	if fs.root == nil || !fs.root.IsDir() {
		return nil, fmt.Errorf("vfs: snapshot root %d missing or not a directory", rootIno)
	}
	fs.nextIno.Store(nextIno)
	fs.ninodes.Store(int64(len(byIno)))
	fs.jnlSeq.Store(jnlSeq)
	return fs, nil
}

// InodeByNumber finds the reachable inode numbered ino (nil if none), for
// journal replay and recovery audits. It walks the tree; not a fast path.
func (fs *FS) InodeByNumber(ino uint32) *Inode {
	var found *Inode
	fs.walkTree(func(_ string, ip *Inode) {
		if ip.Ino == ino {
			found = ip
		}
	})
	return found
}

// walkTree visits every reachable inode exactly once (by inode number),
// parents before children, passing each inode's path. Directory listings
// are read under the directory's read lock, child names in sorted order
// for deterministic traversal.
func (fs *FS) walkTree(visit func(path string, ip *Inode)) {
	seen := map[uint32]bool{}
	var walk func(path string, ip *Inode)
	walk = func(path string, ip *Inode) {
		if seen[ip.Ino] {
			return
		}
		seen[ip.Ino] = true
		visit(path, ip)
		if !ip.IsDir() {
			return
		}
		ip.mu.RLock()
		names := append([]string(nil), ip.order...)
		ip.mu.RUnlock()
		sort.Strings(names)
		for _, name := range names {
			ip.mu.RLock()
			child := ip.entries[name]
			ip.mu.RUnlock()
			if child == nil {
				continue // raced with remove; quiesced callers never see this
			}
			p := path + "/" + name
			if path == "/" {
				p = "/" + name
			}
			walk(p, child)
		}
	}
	walk("/", fs.root)
}
