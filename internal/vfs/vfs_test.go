package vfs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"interpose/internal/sys"
)

var root0 = Cred{UID: 0, GID: 0}
var alice = Cred{UID: 100, GID: 100}
var bob = Cred{UID: 200, GID: 200, Groups: []uint32{100}}

// build creates a small tree: /a/b/c.txt, /a/link -> b, /a/abs -> /a/b.
func build(t *testing.T) *FS {
	t.Helper()
	fs := New(nil)
	a, err := fs.Mkdir(fs.Root(), "a", 0o755, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	b, err := fs.Mkdir(a, "b", 0o755, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	f, err := fs.Create(b, "c.txt", 0o644, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	f.WriteAt([]byte("contents"), 0, 0)
	if _, err := fs.Symlink(a, "link", "b", root0); err != sys.OK {
		t.Fatal(err)
	}
	if _, err := fs.Symlink(a, "abs", "/a/b", root0); err != sys.OK {
		t.Fatal(err)
	}
	return fs
}

func TestLookupBasics(t *testing.T) {
	fs := build(t)
	for _, path := range []string{
		"/a/b/c.txt", "a/b/c.txt", "/a/./b/../b/c.txt", "//a//b//c.txt",
		"/a/link/c.txt", "/a/abs/c.txt",
	} {
		ip, err := fs.Lookup(fs.Root(), path, root0, true)
		if err != sys.OK {
			t.Fatalf("%s: %v", path, err)
		}
		if string(ip.Bytes()) != "contents" {
			t.Fatalf("%s: wrong file", path)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	fs := build(t)
	cases := map[string]sys.Errno{
		"":                sys.ENOENT,
		"/nope":           sys.ENOENT,
		"/a/b/c.txt/deep": sys.ENOTDIR,
		"/a/b/c.txt/":     sys.ENOTDIR,
		"/a/nope/c":       sys.ENOENT,
	}
	for path, want := range cases {
		if _, err := fs.Lookup(fs.Root(), path, root0, true); err != want {
			t.Errorf("Lookup(%q) = %v, want %v", path, err, want)
		}
	}
}

func TestDotDotAtRoot(t *testing.T) {
	fs := build(t)
	ip, err := fs.Lookup(fs.Root(), "/../../a/b/c.txt", root0, true)
	if err != sys.OK || string(ip.Bytes()) != "contents" {
		t.Fatalf("%v", err)
	}
}

func TestSymlinkNoFollow(t *testing.T) {
	fs := build(t)
	ip, err := fs.Lookup(fs.Root(), "/a/link", root0, false)
	if err != sys.OK || !ip.IsSymlink() {
		t.Fatalf("lstat of link: %v, symlink=%v", err, ip.IsSymlink())
	}
	target, err := ip.Readlink()
	if err != sys.OK || target != "b" {
		t.Fatalf("readlink: %v %q", err, target)
	}
	ip, err = fs.Lookup(fs.Root(), "/a/link", root0, true)
	if err != sys.OK || !ip.IsDir() {
		t.Fatalf("stat of link: %v", err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New(nil)
	fs.Symlink(fs.Root(), "x", "y", root0)
	fs.Symlink(fs.Root(), "y", "x", root0)
	if _, err := fs.Lookup(fs.Root(), "/x", root0, true); err != sys.ELOOP {
		t.Fatalf("loop = %v, want ELOOP", err)
	}
	// A chain under the limit resolves.
	fs.Create(fs.Root(), "real", 0o644, root0)
	prev := "real"
	for i := 0; i < MaxSymlinks; i++ {
		name := fmt.Sprintf("l%d", i)
		fs.Symlink(fs.Root(), name, prev, root0)
		prev = name
	}
	if _, err := fs.Lookup(fs.Root(), "/"+prev, root0, true); err != sys.OK {
		t.Fatalf("chain of %d = %v", MaxSymlinks, err)
	}
}

func TestNameTooLong(t *testing.T) {
	fs := build(t)
	long := make([]byte, sys.NameMax+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := fs.Lookup(fs.Root(), "/"+string(long), root0, true); err != sys.ENAMETOOLONG {
		t.Fatalf("long name = %v", err)
	}
	if _, _, _, err := fs.LookupParent(fs.Root(), "/a/"+string(long), root0); err != sys.ENAMETOOLONG {
		t.Fatalf("long leaf = %v", err)
	}
}

func TestPermissionChecks(t *testing.T) {
	fs := New(nil)
	private, err := fs.Mkdir(fs.Root(), "private", 0o700, root0)
	if err != sys.OK {
		t.Fatal(err)
	}
	fs.Chown(private, 100, 100, root0)
	if _, err := fs.Create(private, "f", 0o644, alice); err != sys.OK {
		t.Fatal(err)
	}

	// Owner traverses; stranger does not.
	if _, err := fs.Lookup(fs.Root(), "/private/f", alice, true); err != sys.OK {
		t.Fatalf("owner: %v", err)
	}
	stranger := Cred{UID: 999, GID: 999}
	if _, err := fs.Lookup(fs.Root(), "/private/f", stranger, true); err != sys.EACCES {
		t.Fatalf("stranger: %v", err)
	}
	// Root always traverses.
	if _, err := fs.Lookup(fs.Root(), "/private/f", root0, true); err != sys.OK {
		t.Fatalf("root: %v", err)
	}
}

func TestCheckAccessGroups(t *testing.T) {
	// bob's supplementary group 100 grants the group bits.
	if e := CheckAccess(bob, 0o040, 1, 100, sys.R_OK); e != sys.OK {
		t.Fatalf("group read: %v", e)
	}
	// When the group matches, the group class applies even if "other"
	// grants more (classic Unix semantics).
	if e := CheckAccess(bob, 0o004, 1, 100, sys.R_OK); e != sys.EACCES {
		t.Fatalf("group class should shadow other: %v", e)
	}
}

func TestCheckAccessOwnerBeatsGroup(t *testing.T) {
	// The owner class applies even when it grants LESS than group/other.
	cred := Cred{UID: 5, GID: 5}
	if e := CheckAccess(cred, 0o077, 5, 5, sys.R_OK); e != sys.EACCES {
		t.Fatalf("owner with 0o077: %v, want EACCES", e)
	}
}

func TestRootNeedsExecuteBit(t *testing.T) {
	if e := CheckAccess(root0, sys.S_IFREG|0o644, 1, 1, sys.X_OK); e != sys.EACCES {
		t.Fatalf("root X on non-executable file: %v", e)
	}
	if e := CheckAccess(root0, sys.S_IFREG|0o100, 1, 1, sys.X_OK); e != sys.OK {
		t.Fatalf("root X with owner-x: %v", e)
	}
}

func TestLinkUnlinkCounts(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	f, _ := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true)
	if f.Stat().Nlink != 1 {
		t.Fatal("initial nlink")
	}
	if err := fs.Link(b, "hard", f, root0); err != sys.OK {
		t.Fatal(err)
	}
	if f.Stat().Nlink != 2 {
		t.Fatal("nlink after link")
	}
	// Contents shared through both names.
	ip2, _ := fs.Lookup(fs.Root(), "/a/b/hard", root0, true)
	if ip2 != f {
		t.Fatal("hard link resolves to different inode")
	}
	if err := fs.Unlink(b, "c.txt", root0); err != sys.OK {
		t.Fatal(err)
	}
	if f.Stat().Nlink != 1 {
		t.Fatal("nlink after unlink")
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true); err != sys.ENOENT {
		t.Fatal("unlinked name still resolves")
	}
}

func TestLinkRestrictions(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	if err := fs.Link(b, "dirlink", a, root0); err != sys.EPERM {
		t.Fatalf("link to directory = %v", err)
	}
	f, _ := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true)
	if err := fs.Link(b, "c.txt", f, root0); err != sys.EEXIST {
		t.Fatalf("link over existing = %v", err)
	}
}

func TestUnlinkDirectoryRefused(t *testing.T) {
	fs := build(t)
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	if err := fs.Unlink(a, "b", root0); err != sys.EPERM {
		t.Fatalf("unlink dir = %v", err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	fs := build(t)
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	if err := fs.Rmdir(a, "b", root0); err != sys.ENOTEMPTY {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	fs.Unlink(b, "c.txt", root0)
	before := a.Stat().Nlink
	if err := fs.Rmdir(a, "b", root0); err != sys.OK {
		t.Fatal(err)
	}
	if a.Stat().Nlink != before-1 {
		t.Fatal("parent nlink not decremented")
	}
	if err := fs.Rmdir(a, "link", root0); err != sys.ENOTDIR {
		t.Fatalf("rmdir of symlink = %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	if err := fs.Rename(b, "c.txt", a, "moved.txt", root0); err != sys.OK {
		t.Fatal(err)
	}
	ip, err := fs.Lookup(fs.Root(), "/a/moved.txt", root0, true)
	if err != sys.OK || string(ip.Bytes()) != "contents" {
		t.Fatalf("move lost data: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true); err != sys.ENOENT {
		t.Fatal("old name survives")
	}
}

func TestRenameOverExisting(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	victim, _ := fs.Create(b, "victim", 0o644, root0)
	victim.WriteAt([]byte("old"), 0, 0)
	if err := fs.Rename(b, "c.txt", b, "victim", root0); err != sys.OK {
		t.Fatal(err)
	}
	ip, _ := fs.Lookup(fs.Root(), "/a/b/victim", root0, true)
	if string(ip.Bytes()) != "contents" {
		t.Fatal("replaced file has wrong contents")
	}
	if victim.Nlink != 0 {
		t.Fatal("victim inode leaked")
	}
}

func TestRenameDirIntoOwnSubtree(t *testing.T) {
	fs := build(t)
	root := fs.Root()
	a, _ := fs.Lookup(root, "/a", root0, true)
	b, _ := fs.Lookup(root, "/a/b", root0, true)
	if err := fs.Rename(root, "a", b, "evil", root0); err != sys.EINVAL {
		t.Fatalf("rename into own subtree = %v", err)
	}
	_ = a
}

func TestRenameDirUpdatesDotDot(t *testing.T) {
	fs := build(t)
	root := fs.Root()
	a, _ := fs.Lookup(root, "/a", root0, true)
	// Move /a/b to /b2.
	if err := fs.Rename(a, "b", root, "b2", root0); err != sys.OK {
		t.Fatal(err)
	}
	// The moved directory's ".." now names the root.
	ip, err := fs.Lookup(root, "/b2/..", root0, true)
	if err != sys.OK || ip != root {
		t.Fatalf("..: %v", err)
	}
}

func TestRenameTypeMismatches(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	fs.Mkdir(b, "subdir", 0o755, root0)
	if err := fs.Rename(b, "c.txt", b, "subdir", root0); err != sys.EISDIR {
		t.Fatalf("file over dir = %v", err)
	}
	if err := fs.Rename(b, "subdir", b, "c.txt", root0); err != sys.ENOTDIR {
		t.Fatalf("dir over file = %v", err)
	}
}

func TestStickyBit(t *testing.T) {
	fs := New(nil)
	tmp, _ := fs.Mkdir(fs.Root(), "tmp", 0o777, root0)
	fs.Chmod(tmp, 0o1777, root0)
	fs.Create(tmp, "alices", 0o666, alice)
	stranger := Cred{UID: 999, GID: 999}
	if err := fs.Unlink(tmp, "alices", stranger); err != sys.EPERM {
		t.Fatalf("sticky unlink by stranger = %v", err)
	}
	if err := fs.Unlink(tmp, "alices", alice); err != sys.OK {
		t.Fatalf("sticky unlink by owner = %v", err)
	}
}

func TestChmodChown(t *testing.T) {
	fs := build(t)
	f, _ := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true)
	if err := fs.Chmod(f, 0o600, alice); err != sys.EPERM {
		t.Fatalf("chmod by non-owner = %v", err)
	}
	if err := fs.Chmod(f, 0o4755, root0); err != sys.OK {
		t.Fatal(err)
	}
	if f.Stat().Mode != sys.S_IFREG|0o4755 {
		t.Fatalf("mode = %o", f.Stat().Mode)
	}
	if err := fs.Chown(f, 100, 100, alice); err != sys.EPERM {
		t.Fatalf("chown by non-owner = %v", err)
	}
	if err := fs.Chown(f, 100, 100, root0); err != sys.OK {
		t.Fatal(err)
	}
	// Owner may change group to one they belong to.
	if err := fs.Chown(f, 0xffffffff, 100, alice); err != sys.OK {
		t.Fatalf("owner chgrp: %v", err)
	}
	if err := fs.Chown(f, 0xffffffff, 12345, alice); err != sys.EPERM {
		t.Fatalf("owner chgrp to foreign group = %v", err)
	}
}

func TestFileIO(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create(fs.Root(), "f", 0o644, root0)
	// Write with a hole.
	if _, e := f.WriteAt([]byte("end"), 10, 0); e != sys.OK {
		t.Fatal(e)
	}
	if f.Size() != 13 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 13)
	n, e := f.ReadAt(buf, 0)
	if e != sys.OK || n != 13 {
		t.Fatal(e)
	}
	for i := 0; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
	if string(buf[10:]) != "end" {
		t.Fatal("data wrong")
	}
	// Read past EOF.
	if n, _ := f.ReadAt(buf, 100); n != 0 {
		t.Fatal("read past EOF returned data")
	}
	// Truncate down and up.
	f.Truncate(5)
	if f.Size() != 5 {
		t.Fatal("truncate down")
	}
	f.Truncate(8)
	n, _ = f.ReadAt(buf[:8], 0)
	if n != 8 || buf[7] != 0 {
		t.Fatal("truncate up not zero-filled")
	}
}

func TestWriteMaxSize(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create(fs.Root(), "f", 0o644, root0)
	n, e := f.WriteAt(make([]byte, 100), 0, 60)
	if e != sys.OK || n != 60 {
		t.Fatalf("capped write: n=%d e=%v", n, e)
	}
	if _, e := f.WriteAt([]byte("x"), 60, 60); e != sys.EFBIG {
		t.Fatalf("write at cap = %v", e)
	}
}

func TestDirents(t *testing.T) {
	fs := build(t)
	b, _ := fs.Lookup(fs.Root(), "/a/b", root0, true)
	ents, err := b.Dirents()
	if err != sys.OK {
		t.Fatal(err)
	}
	if ents[0].Name != "." || ents[1].Name != ".." || ents[2].Name != "c.txt" {
		t.Fatalf("entries: %+v", ents)
	}
	a, _ := fs.Lookup(fs.Root(), "/a", root0, true)
	if ents[1].Ino != a.Stat().Ino {
		t.Fatal(".. has wrong inode")
	}
}

func TestCreateInheritsDirGroup(t *testing.T) {
	fs := New(nil)
	d, _ := fs.Mkdir(fs.Root(), "d", 0o777, root0)
	fs.Chown(d, 0, 555, root0)
	f, err := fs.Create(d, "f", 0o644, alice)
	if err != sys.OK {
		t.Fatal(err)
	}
	if f.Stat().GID != 555 {
		t.Fatalf("gid = %d, want the directory's 555", f.Stat().GID)
	}
}

func TestUtimes(t *testing.T) {
	fs := build(t)
	f, _ := fs.Lookup(fs.Root(), "/a/b/c.txt", root0, true)
	when := time.Unix(1000, 2000)
	if err := fs.Utimes(f, when, when, root0); err != sys.OK {
		t.Fatal(err)
	}
	st := f.Stat()
	if st.Atime.Sec != 1000 || st.Mtime.Sec != 1000 {
		t.Fatalf("times: %+v", st)
	}
	stranger := Cred{UID: 999}
	if err := fs.Utimes(f, when, when, stranger); err != sys.EPERM {
		t.Fatalf("stranger utimes = %v", err)
	}
}

// TestRandomOpsInvariants drives random namespace operations and checks
// structural invariants: the live-inode count matches a full walk, every
// directory's ".." names its parent, and link counts equal the number of
// referencing directory entries.
func TestRandomOpsInvariants(t *testing.T) {
	fs := New(nil)
	rng := rand.New(rand.NewSource(42))
	dirs := []*Inode{fs.Root()}
	names := []string{"a", "b", "c", "d", "e"}

	for step := 0; step < 3000; step++ {
		d := dirs[rng.Intn(len(dirs))]
		name := names[rng.Intn(len(names))]
		switch rng.Intn(7) {
		case 0:
			if ip, err := fs.Mkdir(d, name, 0o755, root0); err == sys.OK {
				dirs = append(dirs, ip)
			}
		case 1:
			fs.Create(d, name, 0o644, root0)
		case 2:
			fs.Symlink(d, name, "/"+names[rng.Intn(len(names))], root0)
		case 3:
			fs.Unlink(d, name, root0)
		case 4:
			if err := fs.Rmdir(d, name, root0); err == sys.OK {
				dirs = pruneDead(fs, dirs)
			}
		case 5:
			d2 := dirs[rng.Intn(len(dirs))]
			fs.Rename(d, name, d2, names[rng.Intn(len(names))], root0)
			dirs = pruneDead(fs, dirs)
		case 6:
			if target, err := fs.Lookup(d, name, root0, false); err == sys.OK && !target.IsDir() {
				fs.Link(d, name+"l", target, root0)
			}
		}
	}
	checkInvariants(t, fs)
}

// pruneDead drops directories no longer reachable (nlink 0).
func pruneDead(fs *FS, dirs []*Inode) []*Inode {
	out := dirs[:0]
	for _, d := range dirs {
		if d == fs.Root() || d.Stat().Nlink > 0 {
			out = append(out, d)
		}
	}
	return out
}

// checkInvariants walks the tree verifying structural consistency.
func checkInvariants(t *testing.T, fs *FS) {
	t.Helper()
	counted := map[*Inode]uint32{}
	dirCount := 0
	var walk func(dir *Inode)
	walk = func(dir *Inode) {
		dirCount++
		counted[dir]++ // the entry in the parent (root counts itself below)
		ents, err := dir.Dirents()
		if err != sys.OK {
			t.Fatalf("dirents: %v", err)
		}
		for _, e := range ents[2:] {
			dir.mu.RLock()
			child := dir.entries[e.Name]
			dir.mu.RUnlock()
			if child == nil {
				t.Fatalf("listed entry %q missing from map", e.Name)
			}
			if child.IsDir() {
				if child.parentPtr() != dir {
					t.Fatalf("directory %q parent pointer wrong", e.Name)
				}
				walk(child)
			} else {
				counted[child]++
			}
		}
	}
	walk(fs.Root())
	for ip, refs := range counted {
		want := refs
		if ip.IsDir() {
			// "." plus one ".." per subdirectory.
			want = refs + 1
			ents, _ := ip.Dirents()
			for _, e := range ents[2:] {
				ip.mu.RLock()
				child := ip.entries[e.Name]
				ip.mu.RUnlock()
				if child.IsDir() {
					want++
				}
			}
		}
		if got := ip.Stat().Nlink; got != want {
			t.Fatalf("inode %d nlink = %d, want %d", ip.Ino, got, want)
		}
	}
	// The FS's live-inode count matches the walk (every counted inode once).
	if got, want := fs.NumInodes(), len(counted); got != want {
		t.Fatalf("NumInodes = %d, reachable = %d", got, want)
	}
}
