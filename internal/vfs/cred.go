// Package vfs implements the in-memory Unix filesystem used by the
// simulated kernel: inodes, directories, hard and symbolic links,
// permissions and ownership, devices, and 4.3BSD pathname resolution.
//
// The filesystem is shared mutable state accessed by many process
// goroutines; a single filesystem-wide lock serializes metadata operations,
// in the style of the era it models.
package vfs

import "interpose/internal/sys"

// Cred is the credential set used for permission checks.
type Cred struct {
	UID    uint32
	GID    uint32
	Groups []uint32
}

// Root reports whether the credentials are the super-user's.
func (c Cred) Root() bool { return c.UID == 0 }

// InGroup reports whether gid is the primary or a supplementary group.
func (c Cred) InGroup(gid uint32) bool {
	if c.GID == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// CheckAccess verifies want (a mask of sys.R_OK/W_OK/X_OK) against an
// inode's mode and ownership under credentials c.
func CheckAccess(c Cred, mode, uid, gid uint32, want int) sys.Errno {
	if c.Root() {
		// Even root needs some execute bit for X_OK on regular files.
		if want&sys.X_OK != 0 && mode&sys.S_IFMT == sys.S_IFREG && mode&0o111 == 0 {
			return sys.EACCES
		}
		return sys.OK
	}
	var shift uint
	switch {
	case c.UID == uid:
		shift = 6
	case c.InGroup(gid):
		shift = 3
	default:
		shift = 0
	}
	perm := (mode >> shift) & 7
	var need uint32
	if want&sys.R_OK != 0 {
		need |= 4
	}
	if want&sys.W_OK != 0 {
		need |= 2
	}
	if want&sys.X_OK != 0 {
		need |= 1
	}
	if perm&need != need {
		return sys.EACCES
	}
	return sys.OK
}
