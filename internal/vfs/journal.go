package vfs

import (
	"interpose/internal/journal"
	"interpose/internal/sys"
)

// Write-ahead journaling: every FS mutation appends one logical redo
// record to the attached journal.Writer before the mutation is applied.
// Records are emitted while the relevant directory/inode locks are held,
// so per-object journal order equals apply order; the writer's own mutex
// is a leaf lock below every inode lock (DESIGN.md §12).
//
// A journal in the latched-failure state (device full, I/O error) makes
// every subsequent mutation fail with EROFS before it touches anything:
// the filesystem degrades to read-only rather than diverging from its
// journal. While no journal is attached the entire facility costs one
// atomic pointer load per mutation.

// SetJournal attaches (or, with nil, detaches) a write-ahead journal.
// Attaching is meant to happen on a quiesced world — mutations running
// during the switch may escape the journal.
func (fs *FS) SetJournal(w *journal.Writer) {
	fs.jnl.Store(w)
}

// Journal returns the attached journal writer, or nil.
func (fs *FS) Journal() *journal.Writer { return fs.jnl.Load() }

// jlog appends one redo record, mapping a latched journal failure to
// EROFS. Callers hold the locks that order the mutation; they must apply
// the mutation unconditionally after OK (write-ahead: every applied
// mutation has a record, and a record that loses its mutation to a crash
// is harmlessly redone at replay).
func (fs *FS) jlog(r *journal.Record) sys.Errno {
	w := fs.jnl.Load()
	if w == nil {
		return sys.OK
	}
	if err := w.Append(r); err != nil {
		return sys.EROFS
	}
	fs.bumpSeq(r.Seq)
	return sys.OK
}

// bumpSeq advances the applied-sequence watermark to seq (monotonic;
// concurrent mutators may report out of order).
func (fs *FS) bumpSeq(seq uint64) {
	for {
		old := fs.jnlSeq.Load()
		if seq <= old || fs.jnlSeq.CompareAndSwap(old, seq) {
			return
		}
	}
}

// JournalSeq returns the highest journal sequence number this world has
// applied — the point a journal writer must continue from (StartAt) after
// recovery, and the threshold below which replay skips records.
func (fs *FS) JournalSeq() uint64 { return fs.jnlSeq.Load() }
