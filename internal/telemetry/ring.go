package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Event is one flight-recorder entry. Num >= 0 is a system call event
// (Dur is its wall time, or -1 when recorded at entry for calls that do
// not return); Num == -1 is a kernel file-reference event carrying Op and
// the pathname arguments. Events are fixed-size values: recording one
// copies it into a preallocated slot and allocates nothing.
type Event struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"t_ns"` // since registry creation
	PID   int32  `json:"pid"`
	Num   int32  `json:"num"` // syscall number, -1 for file events
	Err   int32  `json:"err"`
	Dur   int64  `json:"dur_ns"` // -1 when unknown
	FD    int32  `json:"fd,omitempty"`
	Op    string `json:"op,omitempty"`
	Path  string `json:"path,omitempty"`
	Path2 string `json:"path2,omitempty"`
}

const (
	// defaultRingSize is the total flight-ring capacity (events).
	defaultRingSize = 1024
	// ringShards spreads ring slots across locks; a global sequence
	// number round-robins events over shards so reconstruction by Seq
	// restores total order.
	ringShards = 8
)

// ring is the sharded overwrite-oldest event buffer. Shard slot arrays
// are allocated on a shard's first event, not at init: an idle ring
// costs eight empty headers, so a pooled idle world with telemetry
// enabled does not carry ~100 KB of empty flight slots.
type ring struct {
	seq    atomic.Uint64
	per    int // slots per shard, fixed at init
	shards [ringShards]ringShard
}

type ringShard struct {
	mu    sync.Mutex
	slots []Event // nil until the shard's first event
	n     uint64  // events ever written to this shard
}

func (r *ring) init(size int) {
	per := size / ringShards
	if per < 1 {
		per = 1
	}
	r.per = per
}

// record stores e, overwriting the shard's oldest slot. The shard lock
// covers a single struct copy (plus, once ever, the shard's slot
// allocation), so contention is brief; the global sequence counter keeps
// cross-shard order reconstructible.
func (r *ring) record(e Event) {
	e.Seq = r.seq.Add(1) - 1
	s := &r.shards[e.Seq%ringShards]
	s.mu.Lock()
	if s.slots == nil {
		s.slots = make([]Event, r.per)
	}
	s.slots[s.n%uint64(len(s.slots))] = e
	s.n++
	s.mu.Unlock()
}

// snapshot returns the surviving events merged into one totally ordered
// history: sorted by global sequence number, then trimmed to the longest
// gap-free suffix. Shards overwrite independently, so a recorder
// preempted between taking its sequence number and filling its slot can
// leave a stale old event surviving in one shard while the others have
// moved on; everything before the resulting sequence gap is dropped, so
// the dump reads as one contiguous recent history rather than reordered
// fragments. In steady state the per-shard windows line up exactly and
// nothing is trimmed.
func (r *ring) snapshot() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		live := s.n
		if live > uint64(len(s.slots)) {
			live = uint64(len(s.slots))
		}
		for j := uint64(0); j < live; j++ {
			out = append(out, s.slots[j])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	start := len(out) - 1
	for start > 0 && out[start-1].Seq+1 == out[start].Seq {
		start--
	}
	if start > 0 {
		out = out[start:]
	}
	return out
}
