// Package telemetry is the flight-recorder substrate shared by the
// simulated kernel and the interposition toolkit: named counters,
// log-bucketed latency histograms per system call, per-layer time
// attribution, and a fixed-size ring buffer of recent events.
//
// The package follows the toolkit's pay-per-use principle. A Registry is
// installed on a kernel with SetTelemetry; while no registry is installed
// the only cost on the system call path is an atomic pointer load. Once
// installed, every recording operation is lock-light: counters and
// histogram buckets are plain atomics, per-layer attribution is an array
// of atomics, and the flight ring shards its slots so concurrent
// processes rarely contend on the same lock.
package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/sys"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// MaxAttrLayers bounds the number of agent layers the per-layer
// attribution table distinguishes; deeper layers fold into the last slot.
const MaxAttrLayers = 8

// layerStat accumulates the self time of one instance of the system
// interface: an agent layer, or the kernel.
type layerStat struct {
	name  atomic.Pointer[string]
	calls atomic.Uint64
	self  atomic.Int64 // nanoseconds exclusive of lower instances
}

// syscallStat accumulates one system call number's counters and latency.
// Slots are allocated on a number's first recording (scstat), not at
// registry creation: an idle registry costs one pointer array, not
// MaxSyscall histograms — what keeps a pooled idle world near the
// no-telemetry heap floor even with telemetry enabled.
type syscallStat struct {
	calls Counter
	errs  Counter
	hist  Histogram
}

// Registry is one telemetry domain: a set of named counters, per-syscall
// statistics, per-layer attribution, and a flight-recorder ring.
type Registry struct {
	start time.Time

	mu    sync.Mutex // guards named-counter creation only
	named map[string]*Counter
	order []string

	// syscalls holds the lazily allocated per-number statistics; a nil
	// slot means the number was never recorded. Slots are installed by
	// CAS so concurrent first hits agree on one instance.
	syscalls [sys.MaxSyscall]atomic.Pointer[syscallStat]

	// layers[0] is the kernel; layers[1+i] is emulation layer i
	// (bottom = 0), matching the kernel's layer indexing.
	layers [1 + MaxAttrLayers]layerStat

	// gauges, when non-nil, is sampled at Snapshot time to append values
	// maintained outside the registry (kernel cache counters) to the
	// exported counter list without per-event recording cost.
	gauges atomic.Pointer[func() []NamedCounter]

	ring ring
}

// NewRegistry creates an empty registry with the default flight-ring
// capacity.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now(), named: make(map[string]*Counter)}
	r.ring.init(defaultRingSize)
	kernel := "kernel"
	r.layers[0].name.Store(&kernel)
	return r
}

// sinceStart returns nanoseconds since the registry was created, the
// timebase of flight-ring events.
func (r *Registry) sinceStart() int64 { return int64(time.Since(r.start)) }

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should look the counter up once and hold the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.named[name]; ok {
		return c
	}
	c := &Counter{}
	r.named[name] = c
	r.order = append(r.order, name)
	return c
}

// SetGaugeSource installs fn as the registry's gauge sampler: it is
// invoked at every Snapshot and its rows are appended to the exported
// counters. One slot — the latest call wins; nil removes it. The sampler
// must be safe to call from any goroutine.
func (r *Registry) SetGaugeSource(fn func() []NamedCounter) {
	if fn == nil {
		r.gauges.Store(nil)
		return
	}
	r.gauges.Store(&fn)
}

// scstat returns the statistics slot for one call number, allocating it
// on the number's first recording. The CAS makes concurrent first hits
// converge on a single instance; after that the cost is one atomic load.
func (r *Registry) scstat(num int) *syscallStat {
	if st := r.syscalls[num].Load(); st != nil {
		return st
	}
	st := &syscallStat{}
	if !r.syscalls[num].CompareAndSwap(nil, st) {
		st = r.syscalls[num].Load()
	}
	return st
}

// IncSyscall counts one occurrence of a system call number without latency
// information (pure counting instruments, e.g. the monitor agent).
func (r *Registry) IncSyscall(num int) {
	if num >= 0 && num < sys.MaxSyscall {
		r.scstat(num).calls.Add(1)
	}
}

// IncSyscallErr counts one failed occurrence of a system call number.
func (r *Registry) IncSyscallErr(num int) {
	if num >= 0 && num < sys.MaxSyscall {
		r.scstat(num).errs.Add(1)
	}
}

// ObserveLatency records latency for one call number without touching
// the occurrence counters, for instruments that count at entry (the
// monitor agent must count exit, which never returns from its downcall).
func (r *Registry) ObserveLatency(num int, d time.Duration) {
	if num >= 0 && num < sys.MaxSyscall {
		r.scstat(num).hist.Observe(d)
	}
}

// SyscallQuantiles estimates latency quantiles for one call number; the
// second result is the number of latency observations backing them (0
// means the call was only ever counted, never timed).
func (r *Registry) SyscallQuantiles(num int, qs ...float64) ([]time.Duration, uint64) {
	if num < 0 || num >= sys.MaxSyscall {
		return make([]time.Duration, len(qs)), 0
	}
	st := r.syscalls[num].Load()
	if st == nil {
		return make([]time.Duration, len(qs)), 0
	}
	return st.hist.Quantiles(qs...), st.hist.Count()
}

// SyscallCount returns the number of recorded calls for one number.
func (r *Registry) SyscallCount(num int) uint64 {
	if num < 0 || num >= sys.MaxSyscall {
		return 0
	}
	if st := r.syscalls[num].Load(); st != nil {
		return st.calls.Load()
	}
	return 0
}

// TotalSyscalls returns the number of recorded calls across all numbers.
func (r *Registry) TotalSyscalls() uint64 {
	var n uint64
	for i := range r.syscalls {
		if st := r.syscalls[i].Load(); st != nil {
			n += st.calls.Load()
		}
	}
	return n
}

// TotalErrs returns the number of recorded failed calls.
func (r *Registry) TotalErrs() uint64 {
	var n uint64
	for i := range r.syscalls {
		if st := r.syscalls[i].Load(); st != nil {
			n += st.errs.Load()
		}
	}
	return n
}

// RecordSyscall records one completed system call: its number, wall time,
// and whether it failed.
func (r *Registry) RecordSyscall(num int, d time.Duration, failed bool) {
	if num < 0 || num >= sys.MaxSyscall {
		return
	}
	st := r.scstat(num)
	st.calls.Add(1)
	if failed {
		st.errs.Add(1)
	}
	st.hist.Observe(d)
}

// RecordLayer attributes self time (exclusive of lower instances) to one
// instance of the system interface. layer 0 is the kernel; layer 1+i is
// emulation layer i. The name is recorded on first use.
func (r *Registry) RecordLayer(layer int, name string, self time.Duration) {
	if layer < 0 {
		return
	}
	if layer >= len(r.layers) {
		layer = len(r.layers) - 1
	}
	st := &r.layers[layer]
	st.calls.Add(1)
	if self > 0 {
		st.self.Add(int64(self))
	}
	if st.name.Load() == nil {
		if name == "" {
			name = "layer" + strconv.Itoa(layer)
		}
		st.name.Store(&name)
	}
}

// RecordEvent appends a system call event to the flight ring. dur < 0
// marks a call recorded at entry (one that will not return, like exit).
func (r *Registry) RecordEvent(pid, num int, errno int32, dur time.Duration) {
	r.ring.record(Event{
		Nanos: r.sinceStart(),
		PID:   int32(pid),
		Num:   int32(num),
		Err:   errno,
		Dur:   int64(dur),
	})
}

// RecordFileEvent appends a kernel file-reference event (the kernel
// tracer spine) to the flight ring.
func (r *Registry) RecordFileEvent(pid int, op, path, path2 string, fd int, errno int32) {
	r.ring.record(Event{
		Nanos: r.sinceStart(),
		PID:   int32(pid),
		Num:   -1,
		Err:   errno,
		Dur:   -1,
		Op:    op,
		Path:  path,
		Path2: path2,
		FD:    int32(fd),
	})
}

// FlightEvents returns the ring's surviving events, oldest first.
func (r *Registry) FlightEvents() []Event { return r.ring.snapshot() }
