package telemetry

import (
	"sort"
	"time"
)

// Snapshot aggregation: a multi-tenant server exports one fleet-wide
// view over many per-world registries. Counts, errors, and total times
// sum exactly; means are re-derived from the sums; quantiles and flight
// events are per-world artifacts that do not merge (a p99 of p99s is
// not a p99), so the merged rows carry zeros there and callers wanting
// distribution detail read the per-world snapshots.

// Merge combines per-world snapshots into one aggregate snapshot.
// Syscall rows merge by call number, layer rows by layer name, counters
// by counter name. Uptime is the longest of the inputs.
func Merge(snaps []Snapshot) Snapshot {
	var out Snapshot
	sysByNum := make(map[int]*SyscallSnap)
	layerByName := make(map[string]*LayerSnap)
	counterByName := make(map[string]uint64)
	var counterOrder []string

	for _, s := range snaps {
		if s.Uptime > out.Uptime {
			out.Uptime = s.Uptime
		}
		out.Total += s.Total
		out.Errs += s.Errs
		for _, row := range s.Syscalls {
			agg, ok := sysByNum[row.Num]
			if !ok {
				agg = &SyscallSnap{Num: row.Num, Name: row.Name}
				sysByNum[row.Num] = agg
			}
			agg.Count += row.Count
			agg.Errs += row.Errs
			agg.Total += row.Total
			agg.Timed += row.Timed
			if row.Max > agg.Max {
				agg.Max = row.Max
			}
		}
		for _, l := range s.Layers {
			agg, ok := layerByName[l.Name]
			if !ok {
				agg = &LayerSnap{Layer: l.Layer, Name: l.Name}
				layerByName[l.Name] = agg
			}
			agg.Calls += l.Calls
			agg.Self += l.Self
		}
		for _, c := range s.Counters {
			if _, ok := counterByName[c.Name]; !ok {
				counterOrder = append(counterOrder, c.Name)
			}
			counterByName[c.Name] += c.Value
		}
	}

	for _, agg := range sysByNum {
		if agg.Timed > 0 {
			agg.Mean = agg.Total / time.Duration(agg.Timed)
		}
		out.Syscalls = append(out.Syscalls, *agg)
	}
	sort.Slice(out.Syscalls, func(i, j int) bool {
		if out.Syscalls[i].Count != out.Syscalls[j].Count {
			return out.Syscalls[i].Count > out.Syscalls[j].Count
		}
		return out.Syscalls[i].Num < out.Syscalls[j].Num
	})
	for _, agg := range layerByName {
		out.Layers = append(out.Layers, *agg)
	}
	sort.Slice(out.Layers, func(i, j int) bool {
		if out.Layers[i].Layer != out.Layers[j].Layer {
			return out.Layers[i].Layer < out.Layers[j].Layer
		}
		return out.Layers[i].Name < out.Layers[j].Name
	})
	for _, name := range counterOrder {
		out.Counters = append(out.Counters, NamedCounter{Name: name, Value: counterByName[name]})
	}
	return out
}
