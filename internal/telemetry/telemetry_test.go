package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"interpose/internal/sys"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)           // bucket 1: [1, 2)
	h.Observe(3)           // bucket 2: [2, 4)
	h.Observe(1000)        // bucket 10: [512, 1024)
	h.Observe(time.Second) // high bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	b := h.Buckets()
	if b[0] != 1 || b[1] != 1 || b[2] != 1 || b[10] != 1 {
		t.Fatalf("buckets = %v", b[:12])
	}
	if h.Max() != time.Second {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Mean() == 0 {
		t.Fatal("mean should be nonzero")
	}
	// p99 of this distribution lands in the top occupied bucket's bound.
	if q := h.Quantile(0.99); q < time.Second {
		t.Fatalf("p99 = %v, want >= 1s", q)
	}
	if q := h.Quantile(0.5); q > time.Millisecond {
		t.Fatalf("p50 = %v, want small", q)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 9 medium, 1 slow: p50 lands in the fast
	// bucket, p90 at its edge, p99 in the slow tail.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket [64, 128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)

	qs := h.Quantiles(0.5, 0.9, 0.99)
	if len(qs) != 3 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if qs[0] != h.Quantile(0.5) || qs[2] != h.Quantile(0.99) {
		t.Errorf("Quantiles disagrees with Quantile: %v vs %v/%v", qs, h.Quantile(0.5), h.Quantile(0.99))
	}
	if qs[0] > 128*time.Nanosecond {
		t.Errorf("p50 = %v, want within the fast bucket", qs[0])
	}
	if qs[1] < qs[0] || qs[2] < qs[1] {
		t.Errorf("quantiles not monotone: %v", qs)
	}
	if qs[2] < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= 100ms", qs[2])
	}

	var empty Histogram
	for _, q := range empty.Quantiles(0.5, 0.99) {
		if q != 0 {
			t.Errorf("empty histogram quantile = %v, want 0", q)
		}
	}
}

func TestObserveLatencyAndSyscallQuantiles(t *testing.T) {
	r := NewRegistry()
	r.IncSyscall(sys.SYS_write) // counted, never timed
	if _, timed := r.SyscallQuantiles(sys.SYS_write, 0.5); timed != 0 {
		t.Fatalf("timed = %d for an untimed call", timed)
	}
	r.ObserveLatency(sys.SYS_write, time.Microsecond)
	if got := r.SyscallCount(sys.SYS_write); got != 1 {
		t.Fatalf("ObserveLatency changed the occurrence count: %d", got)
	}
	qs, timed := r.SyscallQuantiles(sys.SYS_write, 0.5, 0.99)
	if timed != 1 {
		t.Fatalf("timed = %d, want 1", timed)
	}
	if qs[0] < time.Microsecond || qs[0] > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs bucket bound", qs[0])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	var r ring
	r.init(16)
	for i := 0; i < 100; i++ {
		r.record(Event{PID: int32(i)})
	}
	evs := r.snapshot()
	if len(evs) != 16 {
		t.Fatalf("len = %d, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not ordered by seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// All survivors are from the most recent writes, gap-free.
	if evs[0].Seq < 84 {
		t.Fatalf("oldest surviving seq = %d, want >= 84", evs[0].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap in dump: seq %d follows %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestRingTrimsStaleSurvivor forces the hazard the gap-free trim exists
// for: a recorder preempted between drawing its sequence number and
// filling its slot leaves one shard holding a stale old event while the
// others wrap far past it. The dump must drop everything at or before
// the resulting gap rather than splice ancient events into the middle of
// recent history.
func TestRingTrimsStaleSurvivor(t *testing.T) {
	var r ring
	r.init(16)
	for i := 0; i < 100; i++ {
		r.record(Event{PID: int32(i)})
	}
	s := &r.shards[5]
	s.mu.Lock()
	s.slots[0] = Event{Seq: 5, PID: 5}
	s.mu.Unlock()

	evs := r.snapshot()
	if len(evs) == 0 {
		t.Fatal("empty dump")
	}
	for i, e := range evs {
		if e.Seq == 5 {
			t.Fatalf("stale event survived the trim at index %d", i)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap in dump: seq %d follows %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 99 {
		t.Fatalf("newest surviving seq = %d, want 99", evs[len(evs)-1].Seq)
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("widgets").Add(3)
	r.Counter("widgets").Add(1)
	r.RecordSyscall(sys.SYS_getpid, 100*time.Nanosecond, false)
	r.RecordSyscall(sys.SYS_open, time.Microsecond, true)
	r.RecordLayer(0, "kernel", 90*time.Nanosecond)
	r.RecordLayer(1, "trace", 40*time.Nanosecond)
	r.RecordEvent(7, sys.SYS_getpid, 0, 100*time.Nanosecond)
	r.RecordFileEvent(7, "open", "/etc/passwd", "", 3, 0)

	s := r.Snapshot()
	if s.Total != 2 || s.Errs != 1 {
		t.Fatalf("total=%d errs=%d", s.Total, s.Errs)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 4 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Layers) != 2 || s.Layers[0].Name != "kernel" || s.Layers[1].Name != "trace" {
		t.Fatalf("layers = %+v", s.Layers)
	}
	if len(s.Flight) != 2 {
		t.Fatalf("flight = %+v", s.Flight)
	}
	if s.Flight[1].Num != -1 || s.Flight[1].Path != "/etc/passwd" {
		t.Fatalf("file event = %+v", s.Flight[1])
	}

	var text bytes.Buffer
	s.WriteText(&text)
	for _, want := range []string{"telemetry:", "widgets", "getpid", "open", "trace"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if decoded.Total != 2 || len(decoded.Syscalls) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}

	var flight bytes.Buffer
	s.WriteFlight(&flight)
	if !strings.Contains(flight.String(), "file:open") {
		t.Fatalf("flight dump:\n%s", flight.String())
	}
}

func TestLayerAttributionClamping(t *testing.T) {
	r := NewRegistry()
	r.RecordLayer(MaxAttrLayers+5, "deep", time.Microsecond)
	s := r.Snapshot()
	if len(s.Layers) != 1 || s.Layers[0].Layer != MaxAttrLayers {
		t.Fatalf("layers = %+v", s.Layers)
	}
}

// TestConcurrentRecording hammers every recording path from many
// goroutines while snapshots are taken; run with -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 2000; i++ {
				c.Add(1)
				r.RecordSyscall(sys.SYS_read, time.Duration(i), i%7 == 0)
				r.RecordLayer(g%3, "layer", time.Duration(i))
				r.RecordEvent(g, sys.SYS_read, 0, time.Duration(i))
				r.RecordFileEvent(g, "open", "/tmp/x", "", 3, 0)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared").Load(); got != 16000 {
		t.Fatalf("shared = %d", got)
	}
	if got := r.SyscallCount(sys.SYS_read); got != 16000 {
		t.Fatalf("read count = %d", got)
	}
}

// TestLazySyscallSlots pins the lazy-allocation contract that keeps an
// idle world's registry at its small floor even with telemetry on: no
// per-syscall stat (with its latency histogram) exists until that call
// number's first recording, and concurrent first hits converge on a
// single slot.
func TestLazySyscallSlots(t *testing.T) {
	r := NewRegistry()
	for num := 0; num < sys.MaxSyscall; num++ {
		if r.syscalls[num].Load() != nil {
			t.Fatalf("syscall %d has a stat slot before any recording", num)
		}
	}

	r.RecordSyscall(7, time.Microsecond, false)
	for num := 0; num < sys.MaxSyscall; num++ {
		if (r.syscalls[num].Load() != nil) != (num == 7) {
			t.Fatalf("after recording 7, slot state wrong at %d", num)
		}
	}
	if got := r.SyscallCount(7); got != 1 {
		t.Fatalf("count(7) = %d", got)
	}
	// Un-recorded numbers answer zero without allocating.
	if got := r.SyscallCount(9); got != 0 {
		t.Fatalf("count(9) = %d", got)
	}
	if r.syscalls[9].Load() != nil {
		t.Fatal("read path allocated a stat slot")
	}

	// Concurrent first hits on one number converge on one slot.
	r2 := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r2.IncSyscall(3)
			}
		}()
	}
	wg.Wait()
	if got := r2.SyscallCount(3); got != 800 {
		t.Fatalf("concurrent first hits lost counts: %d", got)
	}
}

// TestLazyRingShards: flight-ring shard slot arrays allocate on the
// shard's first event, not at registry creation.
func TestLazyRingShards(t *testing.T) {
	r := NewRegistry()
	for i := range r.ring.shards {
		if r.ring.shards[i].slots != nil {
			t.Fatalf("shard %d has slots before any event", i)
		}
	}
	// One event lands in exactly one shard.
	r.RecordEvent(1, 5, 0, time.Microsecond)
	allocated := 0
	for i := range r.ring.shards {
		if r.ring.shards[i].slots != nil {
			allocated++
			if len(r.ring.shards[i].slots) != defaultRingSize/ringShards {
				t.Fatalf("shard %d sized %d", i, len(r.ring.shards[i].slots))
			}
		}
	}
	if allocated != 1 {
		t.Fatalf("%d shards allocated after one event", allocated)
	}
	// The snapshot sees the event; empty shards contribute nothing.
	if evs := r.FlightEvents(); len(evs) != 1 {
		t.Fatalf("flight events %d", len(evs))
	}
}
