package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"interpose/internal/sys"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)           // bucket 1: [1, 2)
	h.Observe(3)           // bucket 2: [2, 4)
	h.Observe(1000)        // bucket 10: [512, 1024)
	h.Observe(time.Second) // high bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	b := h.Buckets()
	if b[0] != 1 || b[1] != 1 || b[2] != 1 || b[10] != 1 {
		t.Fatalf("buckets = %v", b[:12])
	}
	if h.Max() != time.Second {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Mean() == 0 {
		t.Fatal("mean should be nonzero")
	}
	// p99 of this distribution lands in the top occupied bucket's bound.
	if q := h.Quantile(0.99); q < time.Second {
		t.Fatalf("p99 = %v, want >= 1s", q)
	}
	if q := h.Quantile(0.5); q > time.Millisecond {
		t.Fatalf("p50 = %v, want small", q)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	var r ring
	r.init(16)
	for i := 0; i < 100; i++ {
		r.record(Event{PID: int32(i)})
	}
	evs := r.snapshot()
	if len(evs) != 16 {
		t.Fatalf("len = %d, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not ordered by seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// All survivors are from the most recent writes.
	if evs[0].Seq < 84 {
		t.Fatalf("oldest surviving seq = %d, want >= 84", evs[0].Seq)
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("widgets").Add(3)
	r.Counter("widgets").Add(1)
	r.RecordSyscall(sys.SYS_getpid, 100*time.Nanosecond, false)
	r.RecordSyscall(sys.SYS_open, time.Microsecond, true)
	r.RecordLayer(0, "kernel", 90*time.Nanosecond)
	r.RecordLayer(1, "trace", 40*time.Nanosecond)
	r.RecordEvent(7, sys.SYS_getpid, 0, 100*time.Nanosecond)
	r.RecordFileEvent(7, "open", "/etc/passwd", "", 3, 0)

	s := r.Snapshot()
	if s.Total != 2 || s.Errs != 1 {
		t.Fatalf("total=%d errs=%d", s.Total, s.Errs)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 4 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Layers) != 2 || s.Layers[0].Name != "kernel" || s.Layers[1].Name != "trace" {
		t.Fatalf("layers = %+v", s.Layers)
	}
	if len(s.Flight) != 2 {
		t.Fatalf("flight = %+v", s.Flight)
	}
	if s.Flight[1].Num != -1 || s.Flight[1].Path != "/etc/passwd" {
		t.Fatalf("file event = %+v", s.Flight[1])
	}

	var text bytes.Buffer
	s.WriteText(&text)
	for _, want := range []string{"telemetry:", "widgets", "getpid", "open", "trace"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if decoded.Total != 2 || len(decoded.Syscalls) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}

	var flight bytes.Buffer
	s.WriteFlight(&flight)
	if !strings.Contains(flight.String(), "file:open") {
		t.Fatalf("flight dump:\n%s", flight.String())
	}
}

func TestLayerAttributionClamping(t *testing.T) {
	r := NewRegistry()
	r.RecordLayer(MaxAttrLayers+5, "deep", time.Microsecond)
	s := r.Snapshot()
	if len(s.Layers) != 1 || s.Layers[0].Layer != MaxAttrLayers {
		t.Fatalf("layers = %+v", s.Layers)
	}
}

// TestConcurrentRecording hammers every recording path from many
// goroutines while snapshots are taken; run with -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 2000; i++ {
				c.Add(1)
				r.RecordSyscall(sys.SYS_read, time.Duration(i), i%7 == 0)
				r.RecordLayer(g%3, "layer", time.Duration(i))
				r.RecordEvent(g, sys.SYS_read, 0, time.Duration(i))
				r.RecordFileEvent(g, "open", "/tmp/x", "", 3, 0)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared").Load(); got != 16000 {
		t.Fatalf("shared = %d", got)
	}
	if got := r.SyscallCount(sys.SYS_read); got != 16000 {
		t.Fatalf("read count = %d", got)
	}
}
