package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"interpose/internal/sys"
)

// NamedCounter is one exported named counter.
type NamedCounter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// SyscallSnap is one exported per-syscall row.
type SyscallSnap struct {
	Num   int           `json:"num"`
	Name  string        `json:"name"`
	Count uint64        `json:"count"`
	Errs  uint64        `json:"errs"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
	Timed uint64        `json:"timed"` // observations with latency data
}

// LayerSnap is one exported attribution row: the self time spent in one
// instance of the system interface (layer 0 is the kernel).
type LayerSnap struct {
	Layer int           `json:"layer"`
	Name  string        `json:"name"`
	Calls uint64        `json:"calls"`
	Self  time.Duration `json:"self_ns"`
}

// Snapshot is a point-in-time copy of a registry, ready for export.
// Recording continues while a snapshot is taken; rows are individually
// consistent but not mutually atomic.
type Snapshot struct {
	Uptime   time.Duration  `json:"uptime_ns"`
	Total    uint64         `json:"total_calls"`
	Errs     uint64         `json:"total_errs"`
	Counters []NamedCounter `json:"counters,omitempty"`
	Syscalls []SyscallSnap  `json:"syscalls"`
	Layers   []LayerSnap    `json:"layers,omitempty"`
	Flight   []Event        `json:"flight,omitempty"`
}

// Snapshot captures the registry's current state. Flight events are
// included; callers exporting counters only may clear the Flight field.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Uptime: time.Since(r.start)}

	r.mu.Lock()
	for _, name := range r.order {
		s.Counters = append(s.Counters, NamedCounter{Name: name, Value: r.named[name].Load()})
	}
	r.mu.Unlock()

	if fp := r.gauges.Load(); fp != nil {
		s.Counters = append(s.Counters, (*fp)()...)
	}

	for num := range r.syscalls {
		st := r.syscalls[num].Load()
		if st == nil {
			continue // never recorded; no slot was ever allocated
		}
		n := st.calls.Load()
		if n == 0 {
			continue
		}
		row := SyscallSnap{
			Num:   num,
			Name:  sys.SyscallName(num),
			Count: n,
			Errs:  st.errs.Load(),
			Timed: st.hist.Count(),
		}
		if row.Timed > 0 {
			row.Total = st.hist.Sum()
			row.Mean = st.hist.Mean()
			qs := st.hist.Quantiles(0.5, 0.9, 0.99)
			row.P50, row.P90, row.P99 = qs[0], qs[1], qs[2]
			row.Max = st.hist.Max()
		}
		s.Total += n
		s.Errs += row.Errs
		s.Syscalls = append(s.Syscalls, row)
	}
	sort.Slice(s.Syscalls, func(i, j int) bool {
		if s.Syscalls[i].Count != s.Syscalls[j].Count {
			return s.Syscalls[i].Count > s.Syscalls[j].Count
		}
		return s.Syscalls[i].Num < s.Syscalls[j].Num
	})

	for i := range r.layers {
		st := &r.layers[i]
		calls := st.calls.Load()
		if calls == 0 {
			continue
		}
		name := ""
		if p := st.name.Load(); p != nil {
			name = *p
		}
		s.Layers = append(s.Layers, LayerSnap{
			Layer: i, Name: name, Calls: calls, Self: time.Duration(st.self.Load()),
		})
	}

	s.Flight = r.FlightEvents()
	return s
}

// WriteText renders the snapshot as a human-readable report (the format
// served by /dev/metrics and agentrun -stats). Flight events are not
// included; use WriteFlight for those.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "telemetry: up %s, %d calls, %d errors\n", fmtDur(s.Uptime), s.Total, s.Errs)
	if len(s.Layers) > 0 {
		fmt.Fprintf(w, "layers (self time, exclusive of lower instances):\n")
		var total time.Duration
		for _, l := range s.Layers {
			total += l.Self
		}
		for _, l := range s.Layers {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(l.Self) / float64(total)
			}
			fmt.Fprintf(w, "  layer %-12s %10d calls %12s self %5.1f%%\n",
				l.Name, l.Calls, fmtDur(l.Self), pct)
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  %-24s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Syscalls) > 0 {
		fmt.Fprintf(w, "syscalls:\n")
		fmt.Fprintf(w, "  %-16s %10s %8s %10s %10s %10s %10s %10s\n",
			"call", "count", "errs", "mean", "p50", "p90", "p99", "max")
		for _, r := range s.Syscalls {
			if r.Timed == 0 {
				fmt.Fprintf(w, "  %-16s %10d %8d\n", r.Name, r.Count, r.Errs)
				continue
			}
			fmt.Fprintf(w, "  %-16s %10d %8d %10s %10s %10s %10s %10s\n",
				r.Name, r.Count, r.Errs, fmtDur(r.Mean),
				fmtDur(r.P50), fmtDur(r.P90), fmtDur(r.P99), fmtDur(r.Max))
		}
	}
}

// WriteJSON renders the snapshot as one JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFlight renders the flight-recorder events one per line, oldest
// first (the agentrun -flight-dump and crash-dump format).
func (s Snapshot) WriteFlight(w io.Writer) {
	fmt.Fprintf(w, "flight recorder: %d events\n", len(s.Flight))
	for _, e := range s.Flight {
		ts := time.Duration(e.Nanos)
		if e.Num >= 0 {
			dur := "-"
			if e.Dur >= 0 {
				dur = fmtDur(time.Duration(e.Dur))
			}
			status := "ok"
			if e.Err != 0 {
				status = sys.Errno(e.Err).Name()
			}
			fmt.Fprintf(w, "%012d %10s pid %-4d %-16s dur %-10s %s\n",
				e.Seq, fmtDur(ts), e.PID, sys.SyscallName(int(e.Num)), dur, status)
			continue
		}
		line := fmt.Sprintf("%012d %10s pid %-4d file:%-10s %s", e.Seq, fmtDur(ts), e.PID, e.Op, e.Path)
		if e.Path2 != "" {
			line += " " + e.Path2
		}
		if e.FD >= 0 {
			line += fmt.Sprintf(" fd=%d", e.FD)
		}
		if e.Err != 0 {
			line += " err=" + sys.Errno(e.Err).Name()
		}
		fmt.Fprintln(w, line)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
