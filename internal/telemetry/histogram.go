package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution: power-of-two latency buckets.
// Bucket 0 holds zero-duration observations; bucket i (i >= 1) holds
// durations in [2^(i-1), 2^i) nanoseconds. The top bucket absorbs
// everything from ~1s up.
const NumBuckets = 32

// Histogram is a lock-free log-bucketed latency histogram. All fields are
// atomics, so concurrent Observe calls never contend on a lock, and a
// snapshot taken during recording is approximate but safe.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i in
// nanoseconds (the value used for percentile estimates).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	if d > 0 {
		h.sum.Add(int64(d))
	}
	h.buckets[bucketFor(d)].Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket containing the q-th observation — an overestimate bounded by
// the bucket width (a factor of two).
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Quantiles(q)[0]
}

// Quantiles estimates several quantiles from one snapshot of the bucket
// counts, so a p50/p90/p99 triple read while recording continues comes
// from the same distribution. Each estimate follows the Quantile rule:
// the upper bound of the bucket holding the q-th observation.
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	b := h.Buckets()
	var total uint64
	for _, n := range b {
		total += n
	}
	out := make([]time.Duration, len(qs))
	if total == 0 {
		return out
	}
	for k, q := range qs {
		target := uint64(q * float64(total))
		if target >= total {
			target = total - 1
		}
		var seen uint64
		v := time.Duration(BucketBound(NumBuckets - 1))
		for i, n := range b {
			seen += n
			if seen > target {
				v = time.Duration(BucketBound(i))
				break
			}
		}
		out[k] = v
	}
	return out
}
