// Package image defines the executable-image format of the simulated
// machine and the registry mapping image names to program entry points.
//
// A program "binary" is a file in the simulated filesystem beginning with
// the header line "#!interpose <name>\n"; <name> selects a registered Go
// entry point. Because programs receive only the Proc interface (raw
// system calls plus access to their own address space), the same image runs
// unmodified under any stack of interposition agents — the transparency
// property the paper calls "Unmodified Applications".
package image

import (
	"bytes"
	"sort"
	"sync"

	"interpose/internal/sys"
)

// Proc is the machine-level view of a process given to a program entry
// point (and, for its extra methods, to the interposition toolkit's
// boilerplate layers). The kernel's process type implements it.
type Proc interface {
	sys.Ctx

	// Syscall issues a system call from user mode: it enters the topmost
	// instance of the system interface (the highest interposition agent
	// layer, or the kernel if none is interested in num).
	Syscall(num int, a sys.Args) (sys.Retval, sys.Errno)

	// StageChild stages the entry point at which the child of an imminent
	// fork system call begins execution — the simulated-machine equivalent
	// of the child resuming at the parent's program counter.
	StageChild(Entry)

	// InitialSP returns the stack pointer established by the last exec;
	// the process's argument vector is found through it.
	InitialSP() sys.Word

	// SetSignalDispatcher installs the user-mode upcall through which
	// caught signals are delivered to application handler functions.
	SetSignalDispatcher(func(sig int, handler sys.Word))

	// Yield gives the system a chance to deliver pending signals, as a
	// real machine would on a clock interrupt. Long computations without
	// system calls should call it occasionally.
	Yield()
}

// Entry is a program entry point: the "text segment" of an image.
type Entry func(Proc)

// Registry maps image names to entry points.
type Registry struct {
	mu sync.Mutex
	m  map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Entry)}
}

// Register adds an image under name, replacing any previous registration.
func (r *Registry) Register(name string, e Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = e
}

// Lookup finds the entry point registered under name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[name]
	return e, ok
}

// Names returns all registered image names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Magic is the executable header prefix.
const Magic = "#!interpose "

// Header builds the image file contents for a registered image name.
func Header(name string) []byte {
	return []byte(Magic + name + "\n")
}

// ParseHeader extracts the image name from executable file contents.
// ok is false if the contents are not an interpose image.
func ParseHeader(data []byte) (name string, ok bool) {
	if !bytes.HasPrefix(data, []byte(Magic)) {
		return "", false
	}
	rest := data[len(Magic):]
	i := bytes.IndexByte(rest, '\n')
	if i < 0 {
		i = len(rest)
	}
	name = string(bytes.TrimSpace(rest[:i]))
	if name == "" {
		return "", false
	}
	return name, true
}

// ParseInterpreter extracts a "#!/path interpreter" line (the historical
// script mechanism) from executable file contents. It does not match
// interpose image headers.
func ParseInterpreter(data []byte) (interp string, arg string, ok bool) {
	if bytes.HasPrefix(data, []byte(Magic)) || !bytes.HasPrefix(data, []byte("#!")) {
		return "", "", false
	}
	rest := data[2:]
	i := bytes.IndexByte(rest, '\n')
	if i < 0 {
		i = len(rest)
	}
	fields := bytes.Fields(rest[:i])
	if len(fields) == 0 {
		return "", "", false
	}
	interp = string(fields[0])
	if len(fields) > 1 {
		arg = string(bytes.Join(fields[1:], []byte(" ")))
	}
	return interp, arg, true
}

// StackWriter is the subset of sys.Ctx needed to build an argument stack.
type StackWriter interface {
	CopyOut(addr sys.Word, p []byte) sys.Errno
}

// StackTop mirrors mem.StackTop without importing it (image must stay
// beneath both kernel and libc in the dependency order).
const StackTop sys.Word = 0x7fff_0000

// SetupStack writes the exec-time argument stack into a fresh address
// space: NUL-terminated argument and environment strings at the top,
// pointer vectors and the argument count below them. It returns the
// initial stack pointer, which addresses argc.
//
// Layout (addresses increasing):
//
//	sp:   argc
//	      argv[0] ... argv[argc-1] NULL
//	      envp[0] ... NULL
//	      ... string bytes ...
//	StackTop
func SetupStack(w StackWriter, argv, envp []string) (sys.Word, sys.Errno) {
	strBytes := 0
	for _, s := range argv {
		strBytes += len(s) + 1
	}
	for _, s := range envp {
		strBytes += len(s) + 1
	}
	if strBytes > sys.ArgMax {
		return 0, sys.E2BIG
	}
	strBase := (StackTop - sys.Word(strBytes)) &^ 3
	nptr := 1 + len(argv) + 1 + len(envp) + 1
	sp := strBase - sys.Word(4*nptr)

	buf := make([]byte, 0, 4*nptr+strBytes+8)
	put32 := func(v sys.Word) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	put32(sys.Word(len(argv)))
	addr := strBase
	addrs := make([]sys.Word, 0, len(argv)+len(envp))
	for _, s := range append(append([]string{}, argv...), envp...) {
		addrs = append(addrs, addr)
		addr += sys.Word(len(s) + 1)
	}
	for i := range argv {
		put32(addrs[i])
	}
	put32(0)
	for i := range envp {
		put32(addrs[len(argv)+i])
	}
	put32(0)
	for _, s := range append(append([]string{}, argv...), envp...) {
		buf = append(buf, s...)
		buf = append(buf, 0)
	}
	if e := w.CopyOut(sp, buf); e != sys.OK {
		return 0, e
	}
	return sp, sys.OK
}

// ReadStack decodes argc/argv/envp through an exec-time stack pointer,
// the inverse of SetupStack. Used by the C library at program start.
func ReadStack(c sys.Ctx, sp sys.Word) (argv, envp []string, err sys.Errno) {
	word := func(a sys.Word) (sys.Word, sys.Errno) {
		var b [4]byte
		if e := c.CopyIn(a, b[:]); e != sys.OK {
			return 0, e
		}
		return sys.Word(b[0]) | sys.Word(b[1])<<8 | sys.Word(b[2])<<16 | sys.Word(b[3])<<24, sys.OK
	}
	argc, e := word(sp)
	if e != sys.OK {
		return nil, nil, e
	}
	if argc > 4096 {
		return nil, nil, sys.E2BIG
	}
	p := sp + 4
	for i := 0; i < int(argc); i++ {
		ptr, e := word(p)
		if e != sys.OK {
			return nil, nil, e
		}
		s, e := c.CopyInString(ptr, sys.ArgMax)
		if e != sys.OK {
			return nil, nil, e
		}
		argv = append(argv, s)
		p += 4
	}
	p += 4 // argv NULL
	for {
		ptr, e := word(p)
		if e != sys.OK {
			return nil, nil, e
		}
		if ptr == 0 {
			break
		}
		s, e := c.CopyInString(ptr, sys.ArgMax)
		if e != sys.OK {
			return nil, nil, e
		}
		envp = append(envp, s)
		p += 4
	}
	return argv, envp, sys.OK
}
