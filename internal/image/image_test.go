package image

import (
	"strings"
	"testing"
	"testing/quick"

	"interpose/internal/mem"
	"interpose/internal/sys"
)

func TestHeaderRoundTrip(t *testing.T) {
	name, ok := ParseHeader(Header("cat"))
	if !ok || name != "cat" {
		t.Fatalf("%v %q", ok, name)
	}
	// Body after the header does not confuse parsing.
	name, ok = ParseHeader(append(Header("prog"), []byte("payload\nmore")...))
	if !ok || name != "prog" {
		t.Fatalf("%v %q", ok, name)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("#!/bin/sh\n"),
		[]byte("#!interpose \n"),
		[]byte("random data"),
	} {
		if _, ok := ParseHeader(b); ok {
			t.Fatalf("accepted %q", b)
		}
	}
}

func TestParseInterpreter(t *testing.T) {
	interp, arg, ok := ParseInterpreter([]byte("#!/bin/sh -e\nbody\n"))
	if !ok || interp != "/bin/sh" || arg != "-e" {
		t.Fatalf("%v %q %q", ok, interp, arg)
	}
	// Interpose headers are not interpreters.
	if _, _, ok := ParseInterpreter(Header("x")); ok {
		t.Fatal("interpose header parsed as interpreter")
	}
	if _, _, ok := ParseInterpreter([]byte("#!\n")); ok {
		t.Fatal("empty interpreter accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("b", func(Proc) {})
	r.Register("a", func(Proc) {})
	if _, ok := r.Lookup("a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("phantom entry")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

// asCtx adapts a bare address space to sys.Ctx for stack tests.
type asCtx struct{ as *mem.AS }

func (c asCtx) PID() int                               { return 1 }
func (c asCtx) CopyIn(a sys.Word, p []byte) sys.Errno  { return c.as.CopyIn(a, p) }
func (c asCtx) CopyOut(a sys.Word, p []byte) sys.Errno { return c.as.CopyOut(a, p) }
func (c asCtx) CopyInString(a sys.Word, max int) (string, sys.Errno) {
	return c.as.CopyInString(a, max)
}

func TestStackRoundTrip(t *testing.T) {
	c := asCtx{as: mem.NewAS()}
	argv := []string{"prog", "arg one", "arg-two", ""}
	envp := []string{"PATH=/bin", "X=1"}
	sp, err := SetupStack(c, argv, envp)
	if err != sys.OK {
		t.Fatal(err)
	}
	gotArgv, gotEnvp, err := ReadStack(c, sp)
	if err != sys.OK {
		t.Fatal(err)
	}
	if strings.Join(gotArgv, "|") != strings.Join(argv, "|") {
		t.Fatalf("argv = %q", gotArgv)
	}
	if strings.Join(gotEnvp, "|") != strings.Join(envp, "|") {
		t.Fatalf("envp = %q", gotEnvp)
	}
}

func TestStackRoundTripProperty(t *testing.T) {
	f := func(rawArgs, rawEnv []string) bool {
		// NUL bytes cannot appear in C strings; strip them.
		clean := func(in []string) []string {
			out := make([]string, 0, len(in))
			for _, s := range in {
				if len(out) >= 32 {
					break
				}
				s = strings.ReplaceAll(s, "\x00", "")
				if len(s) > 200 {
					s = s[:200]
				}
				out = append(out, s)
			}
			return out
		}
		argv, envp := clean(rawArgs), clean(rawEnv)
		c := asCtx{as: mem.NewAS()}
		sp, err := SetupStack(c, argv, envp)
		if err != sys.OK {
			return false
		}
		gotArgv, gotEnvp, err := ReadStack(c, sp)
		if err != sys.OK || len(gotArgv) != len(argv) || len(gotEnvp) != len(envp) {
			return false
		}
		for i := range argv {
			if gotArgv[i] != argv[i] {
				return false
			}
		}
		for i := range envp {
			if gotEnvp[i] != envp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackTooBig(t *testing.T) {
	c := asCtx{as: mem.NewAS()}
	huge := strings.Repeat("x", sys.ArgMax)
	if _, err := SetupStack(c, []string{huge, huge}, nil); err != sys.E2BIG {
		t.Fatalf("oversized args = %v", err)
	}
}
