// Package journal implements the write-ahead logical redo journal that
// makes a simulated world's filesystem state crash-recoverable. Every
// VFS mutation appends one checksummed, sequence-numbered record; after
// a crash, replaying the journal over a checkpoint snapshot (or a fresh
// boot) reconstructs exactly the committed state.
//
// Records are logical and addressed by inode number, and every record is
// idempotent by construction: creates skip when the name already holds
// the same inode, unlinks and renames skip on an inode mismatch, and
// data/attribute records carry absolute values (offset+bytes, absolute
// length, full mode). A journal can therefore be replayed twice — or
// replayed over a snapshot taken at any point inside it — and land on
// the same bytes.
//
// The on-store format is a sequence of frames:
//
//	u32 magic | u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// where the payload is the varint-encoded record. The frame CRC plus the
// strictly contiguous sequence numbers give torn-tail detection: a scan
// stops cleanly at the first truncated, corrupt, or out-of-sequence
// frame and reports how many trailing bytes were discarded, the analog
// of a disk losing a partially written sector at crash time.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic marks the start of every record frame.
const Magic uint32 = 0x4a4e4c31 // "JNL1"

// frameHeader is the fixed prefix of a frame: magic, length, CRC.
const frameHeader = 12

// Op identifies the mutation a record redoes.
type Op uint8

const (
	// OpCreate makes a node (file, directory, symlink, or device) named
	// Name in directory Dir with inode number Ino. Mode carries the full
	// type+permission bits, Data the symlink target for links.
	OpCreate Op = iota + 1
	// OpLink adds a hard link Name in Dir to existing inode Ino.
	OpLink
	// OpUnlink removes entry Name (inode Ino) from Dir.
	OpUnlink
	// OpRmdir removes the empty directory entry Name (inode Ino) from Dir.
	OpRmdir
	// OpRename moves Dir/Name to Dir2/Name2 (inode Ino), replacing any
	// compatible existing target.
	OpRename
	// OpWrite stores Data at absolute offset Off of inode Ino.
	OpWrite
	// OpTruncate sets inode Ino to absolute length Size.
	OpTruncate
	// OpChmod sets the permission bits of inode Ino to Mode.
	OpChmod
	// OpChown sets ownership of inode Ino to UID:GID (absolute values;
	// "leave unchanged" is resolved before logging).
	OpChown
	// OpUtimes sets access/modification times of inode Ino: Off holds
	// atime, Size mtime, both in Unix nanoseconds.
	OpUtimes
)

var opNames = [...]string{
	OpCreate: "create", OpLink: "link", OpUnlink: "unlink", OpRmdir: "rmdir",
	OpRename: "rename", OpWrite: "write", OpTruncate: "truncate",
	OpChmod: "chmod", OpChown: "chown", OpUtimes: "utimes",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Record is one logical redo record. Which fields are meaningful depends
// on Op (see the Op constants). Seq is assigned by the Writer.
type Record struct {
	Seq  uint64
	Op   Op
	Dir  uint32 // containing directory inode (namespace ops)
	Dir2 uint32 // rename destination directory
	Ino  uint32 // the inode the record is about
	Mode uint32
	UID  uint32
	GID  uint32
	Rdev uint32
	Off  int64 // write offset; OpUtimes atime (ns)
	Size int64 // truncate length; OpUtimes mtime (ns)
	Name string
	Name2 string
	Data []byte // write payload; create symlink target
}

// String renders the record for logs.
func (r *Record) String() string {
	switch r.Op {
	case OpCreate:
		return fmt.Sprintf("#%d create %d/%s ino=%d mode=%o", r.Seq, r.Dir, r.Name, r.Ino, r.Mode)
	case OpLink:
		return fmt.Sprintf("#%d link %d/%s ino=%d", r.Seq, r.Dir, r.Name, r.Ino)
	case OpUnlink, OpRmdir:
		return fmt.Sprintf("#%d %s %d/%s ino=%d", r.Seq, r.Op, r.Dir, r.Name, r.Ino)
	case OpRename:
		return fmt.Sprintf("#%d rename %d/%s -> %d/%s ino=%d", r.Seq, r.Dir, r.Name, r.Dir2, r.Name2, r.Ino)
	case OpWrite:
		return fmt.Sprintf("#%d write ino=%d off=%d len=%d", r.Seq, r.Ino, r.Off, len(r.Data))
	case OpTruncate:
		return fmt.Sprintf("#%d truncate ino=%d size=%d", r.Seq, r.Ino, r.Size)
	default:
		return fmt.Sprintf("#%d %s ino=%d", r.Seq, r.Op, r.Ino)
	}
}

// appendPayload varint-encodes the record body (everything but the frame).
func appendPayload(b []byte, r *Record) []byte {
	b = binary.AppendUvarint(b, r.Seq)
	b = binary.AppendUvarint(b, uint64(r.Op))
	b = binary.AppendUvarint(b, uint64(r.Dir))
	b = binary.AppendUvarint(b, uint64(r.Dir2))
	b = binary.AppendUvarint(b, uint64(r.Ino))
	b = binary.AppendUvarint(b, uint64(r.Mode))
	b = binary.AppendUvarint(b, uint64(r.UID))
	b = binary.AppendUvarint(b, uint64(r.GID))
	b = binary.AppendUvarint(b, uint64(r.Rdev))
	b = binary.AppendVarint(b, r.Off)
	b = binary.AppendVarint(b, r.Size)
	b = binary.AppendUvarint(b, uint64(len(r.Name)))
	b = append(b, r.Name...)
	b = binary.AppendUvarint(b, uint64(len(r.Name2)))
	b = append(b, r.Name2...)
	b = binary.AppendUvarint(b, uint64(len(r.Data)))
	b = append(b, r.Data...)
	return b
}

// AppendFrame encodes the record as a complete frame onto b.
func AppendFrame(b []byte, r *Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = appendPayload(b, r)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], Magic)
	binary.LittleEndian.PutUint32(b[start+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+8:], crc32.ChecksumIEEE(payload))
	return b
}

// payloadReader decodes varints with explicit bounds checking; any
// malformation flags the record as bad rather than panicking.
type payloadReader struct {
	b   []byte
	pos int
	bad bool
}

func (p *payloadReader) uvarint() uint64 {
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		p.bad = true
		return 0
	}
	p.pos += n
	return v
}

func (p *payloadReader) varint() int64 {
	v, n := binary.Varint(p.b[p.pos:])
	if n <= 0 {
		p.bad = true
		return 0
	}
	p.pos += n
	return v
}

func (p *payloadReader) bytes() []byte {
	n := p.uvarint()
	if p.bad || n > uint64(len(p.b)-p.pos) {
		p.bad = true
		return nil
	}
	out := p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return out
}

// decodePayload parses one frame payload into a Record.
func decodePayload(b []byte) (*Record, bool) {
	p := &payloadReader{b: b}
	r := &Record{
		Seq:  p.uvarint(),
		Op:   Op(p.uvarint()),
		Dir:  uint32(p.uvarint()),
		Dir2: uint32(p.uvarint()),
		Ino:  uint32(p.uvarint()),
		Mode: uint32(p.uvarint()),
		UID:  uint32(p.uvarint()),
		GID:  uint32(p.uvarint()),
		Rdev: uint32(p.uvarint()),
		Off:  p.varint(),
		Size: p.varint(),
	}
	r.Name = string(p.bytes())
	r.Name2 = string(p.bytes())
	if d := p.bytes(); len(d) > 0 {
		r.Data = append([]byte(nil), d...)
	}
	if p.bad || r.Op == 0 {
		return nil, false
	}
	return r, true
}

// Torn describes a discarded journal tail: everything from Off onward
// failed frame validation and was dropped by the scan, the way fsck
// discards a half-written disk sector.
type Torn struct {
	Off    int64  // byte offset where the valid prefix ends
	Lost   int    // bytes discarded
	Reason string // first validation failure
}

func (t *Torn) Error() string {
	return fmt.Sprintf("journal: torn tail at offset %d (%d bytes dropped): %s", t.Off, t.Lost, t.Reason)
}

// Scan decodes every valid record from the head of data. The scan stops
// at the first torn, corrupt, or out-of-sequence frame; torn is non-nil
// when trailing bytes were discarded. Sequence numbers must be strictly
// contiguous from the first record.
func Scan(data []byte) (recs []*Record, torn *Torn) {
	off := 0
	tear := func(reason string) *Torn {
		return &Torn{Off: int64(off), Lost: len(data) - off, Reason: reason}
	}
	var wantSeq uint64
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, tear("truncated frame header")
		}
		if binary.LittleEndian.Uint32(data[off:]) != Magic {
			return recs, tear("bad frame magic")
		}
		n := int(binary.LittleEndian.Uint32(data[off+4:]))
		sum := binary.LittleEndian.Uint32(data[off+8:])
		if n < 0 || n > len(data)-off-frameHeader {
			return recs, tear("truncated frame payload")
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, tear("payload checksum mismatch")
		}
		r, ok := decodePayload(payload)
		if !ok {
			return recs, tear("malformed record payload")
		}
		if wantSeq == 0 {
			wantSeq = r.Seq
		}
		if r.Seq != wantSeq {
			return recs, tear(fmt.Sprintf("sequence gap: want #%d got #%d", wantSeq, r.Seq))
		}
		wantSeq++
		recs = append(recs, r)
		off += frameHeader + n
	}
	return recs, nil
}
