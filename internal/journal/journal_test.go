package journal

import (
	"bytes"
	"testing"
)

func rec(op Op, ino uint32, name string) *Record {
	return &Record{Op: op, Dir: 2, Ino: ino, Name: name, Mode: 0o100644}
}

func TestRoundTrip(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1) // commit every record
	in := []*Record{
		rec(OpCreate, 10, "a"),
		{Op: OpWrite, Ino: 10, Off: 4096, Data: []byte("hello world")},
		{Op: OpRename, Dir: 2, Name: "a", Dir2: 3, Name2: "b", Ino: 10},
		{Op: OpTruncate, Ino: 10, Size: 5},
		{Op: OpUtimes, Ino: 10, Off: -123456789, Size: 987654321},
	}
	for _, r := range in {
		if err := w.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got, torn := Scan(st.Bytes())
	if torn != nil {
		t.Fatalf("unexpected torn tail: %v", torn)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d records, want %d", len(got), len(in))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
		if r.Op != in[i].Op || r.Ino != in[i].Ino || r.Off != in[i].Off ||
			r.Size != in[i].Size || r.Name != in[i].Name || r.Name2 != in[i].Name2 ||
			!bytes.Equal(r.Data, in[i].Data) {
			t.Errorf("record %d mismatch: %v vs %v", i, r, in[i])
		}
	}
}

func TestGroupCommitBuffers(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1<<20) // threshold far above what we append
	for i := 0; i < 10; i++ {
		if err := w.Append(rec(OpCreate, uint32(10+i), "f")); err != nil {
			t.Fatal(err)
		}
	}
	if st.Size() != 0 {
		t.Fatalf("store has %d bytes before commit; group commit leaked", st.Size())
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, torn := Scan(st.Bytes())
	if torn != nil || len(recs) != 10 {
		t.Fatalf("after commit: %d records, torn=%v", len(recs), torn)
	}
	records, flushes := w.Stats()
	if records != 10 || flushes != 1 {
		t.Fatalf("stats = (%d records, %d flushes), want (10, 1)", records, flushes)
	}
}

func TestTornTailDetection(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1)
	for i := 0; i < 5; i++ {
		w.Append(&Record{Op: OpWrite, Ino: 9, Data: []byte("payload payload payload")})
	}
	whole := st.Bytes()
	for cut := 1; cut < 40; cut += 7 {
		data := whole[:len(whole)-cut]
		recs, torn := Scan(data)
		if torn == nil {
			t.Fatalf("cut %d: no torn tail reported", cut)
		}
		if len(recs) != 4 {
			t.Fatalf("cut %d: %d records survived, want 4", cut, len(recs))
		}
		if torn.Lost <= 0 {
			t.Fatalf("cut %d: lost %d bytes", cut, torn.Lost)
		}
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1)
	w.Append(rec(OpCreate, 10, "a"))
	w.Append(rec(OpCreate, 11, "b"))
	data := st.Bytes()
	data[len(data)-2] ^= 0xff // flip a byte inside the second payload
	recs, torn := Scan(data)
	if torn == nil || len(recs) != 1 {
		t.Fatalf("corrupt frame: %d records, torn=%v", len(recs), torn)
	}
	if torn.Reason != "payload checksum mismatch" {
		t.Fatalf("reason = %q", torn.Reason)
	}
}

func TestSequenceGapDetected(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, &Record{Seq: 1, Op: OpCreate, Ino: 10, Name: "a"})
	buf = AppendFrame(buf, &Record{Seq: 3, Op: OpCreate, Ino: 11, Name: "b"})
	recs, torn := Scan(buf)
	if torn == nil || len(recs) != 1 {
		t.Fatalf("gap: %d records, torn=%v", len(recs), torn)
	}
}

func TestNoSpaceLatches(t *testing.T) {
	st := NewMemStore(64) // tiny device
	w := NewWriter(st, 1)
	var firstErr error
	for i := 0; i < 100 && firstErr == nil; i++ {
		firstErr = w.Append(&Record{Op: OpWrite, Ino: 9, Data: bytes.Repeat([]byte("x"), 32)})
	}
	if firstErr == nil {
		t.Fatal("64-byte store accepted 100 records")
	}
	if err := w.Append(rec(OpCreate, 10, "a")); err == nil {
		t.Fatal("append after store failure succeeded; failure must latch")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after latched failure")
	}
	// Whatever made it to the store is still a valid journal prefix.
	if recs, torn := Scan(st.Bytes()); torn != nil {
		t.Fatalf("prefix invalid after ENOSPC: %d recs, %v", len(recs), torn)
	}
}

func TestFreezeDropsLaterAppends(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1)
	w.Append(rec(OpCreate, 10, "a"))
	before := st.Size()
	st.Freeze(0)
	if err := w.Append(rec(OpCreate, 11, "b")); err != nil {
		t.Fatalf("append to frozen store errored: %v", err)
	}
	if st.Size() != before {
		t.Fatal("frozen store grew")
	}
	st.Freeze(4) // second freeze must not tear again
	if st.Size() != before {
		t.Fatal("second Freeze mutated a frozen store")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := t.TempDir() + "/j.log"
	fst, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fst, 1)
	w.Append(rec(OpCreate, 10, "a"))
	w.Append(&Record{Op: OpWrite, Ino: 10, Data: []byte("data")})
	fst.Close()

	st2, data, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, torn := Scan(data)
	if torn != nil || len(recs) != 2 {
		t.Fatalf("reopened: %d records, torn=%v", len(recs), torn)
	}
	// Continue the sequence after replaying the prefix.
	w2 := NewWriter(st2, 1)
	w2.StartAt(recs[len(recs)-1].Seq + 1)
	if err := w2.Append(rec(OpCreate, 11, "b")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	_, data2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs2, torn2 := Scan(data2)
	if torn2 != nil || len(recs2) != 3 || recs2[2].Seq != 3 {
		t.Fatalf("continued journal: %d records, torn=%v", len(recs2), torn2)
	}
}

// TestFreezeClampsToSyncWatermark: a torn tail models a half-written
// final sector, so it may destroy group-committed bytes that were never
// fsynced — but never a byte an explicit Commit barrier promised
// durable.
func TestFreezeClampsToSyncWatermark(t *testing.T) {
	st := NewMemStore(0)
	w := NewWriter(st, 1)
	w.Append(rec(OpCreate, 10, "a"))
	w.Append(&Record{Op: OpWrite, Ino: 10, Data: []byte("committed")})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	durable := st.Size()
	w.Append(&Record{Op: OpWrite, Ino: 10, Data: []byte("in flight")})
	st.Freeze(1 << 20) // tear far more than the unsynced tail
	if st.Size() != durable {
		t.Fatalf("torn tail reached below the sync watermark: %d != %d", st.Size(), durable)
	}
	recs, torn := Scan(st.Bytes())
	if torn != nil || len(recs) != 2 {
		t.Fatalf("synced prefix damaged: %d records, torn=%v", len(recs), torn)
	}
}

// TestFileStoreFreezeClampsToSyncWatermark mirrors the MemStore clamp
// for the host-file-backed store, including the reopened-prefix rule:
// bytes already on disk at OpenFileStore are durable by definition.
func TestFileStoreFreezeClampsToSyncWatermark(t *testing.T) {
	path := t.TempDir() + "/j.log"
	fst, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fst, 1)
	w.Append(rec(OpCreate, 10, "a"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	fst.Close()

	st2, data, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w2 := NewWriter(st2, 1)
	w2.StartAt(2)
	w2.Append(&Record{Op: OpWrite, Ino: 10, Data: []byte("in flight")})
	st2.Freeze(1 << 20)
	if st2.Size() != int64(len(data)) {
		t.Fatalf("torn tail reached into the reopened prefix: %d != %d", st2.Size(), len(data))
	}
	recs, torn := Scan(data)
	if torn != nil || len(recs) != 1 {
		t.Fatalf("durable prefix damaged: %d records, torn=%v", len(recs), torn)
	}
}
