package journal

import (
	"fmt"
	"sync"
)

// DefaultGroupBytes is the group-commit threshold: appended frames are
// buffered until at least this many bytes are pending, then pushed to
// the store in one Append. sync/fsync (and a graceful shutdown) flush
// the pending group explicitly. The threshold is a byte count, not a
// timer, so flush points are a deterministic function of the record
// stream — a seeded crash replays byte-identically.
const DefaultGroupBytes = 4096

// Writer appends records to a Store with group commit. It is safe for
// concurrent use; the mutex is a leaf lock, acquired while VFS inode
// locks are held (DESIGN.md §12 adds it to the lock inventory).
//
// A store failure (ErrNoSpace, an I/O error) latches: the writer refuses
// every subsequent append with the same error and never drops a record
// silently. The VFS maps the latched state to EROFS for guest mutators.
type Writer struct {
	mu    sync.Mutex
	st    Store
	buf   []byte
	group int
	seq   uint64 // last assigned sequence number
	err   error  // latched store failure

	appended uint64
	flushes  uint64
}

// NewWriter creates a Writer over st. groupBytes <= 0 selects
// DefaultGroupBytes; groupBytes == 1 effectively commits every record.
func NewWriter(st Store, groupBytes int) *Writer {
	if groupBytes <= 0 {
		groupBytes = DefaultGroupBytes
	}
	return &Writer{st: st, group: groupBytes}
}

// StartAt sets the next sequence number to seq, for appending to a
// journal whose prefix (ending at seq-1) was just replayed.
func (w *Writer) StartAt(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq > 0 {
		w.seq = seq - 1
	}
}

// Append assigns the record its sequence number and buffers its frame,
// flushing the pending group once it reaches the threshold. The record's
// fields are consumed before return; the caller may reuse backing
// arrays.
func (w *Writer) Append(r *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.seq++
	r.Seq = w.seq
	w.buf = AppendFrame(w.buf, r)
	w.appended++
	if len(w.buf) >= w.group {
		return w.flushLocked()
	}
	return nil
}

// Commit flushes the pending group to the store — the journal's fsync.
// Stores with a durable watermark (MemStore, FileStore) are advanced
// past the flushed bytes, so a later simulated torn tail cannot destroy
// a record this barrier promised durable.
func (w *Writer) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.flushLocked(); err != nil {
		return err
	}
	if s, ok := w.st.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync failed: %w", err)
			return w.err
		}
	}
	return nil
}

func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.st.Append(w.buf); err != nil {
		// Latch: the failed group's records were never durable, and no
		// later record may skip past them.
		w.err = fmt.Errorf("journal: append failed: %w", err)
		return w.err
	}
	w.buf = w.buf[:0]
	w.flushes++
	return nil
}

// Err returns the latched store failure, or nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Seq returns the last assigned sequence number.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Stats reports appended record and group-flush counts.
func (w *Writer) Stats() (records, flushes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended, w.flushes
}
