package journal

import (
	"errors"
	"os"
	"sync"
)

// ErrNoSpace is returned by a Store whose capacity is exhausted: the
// journal device is full. The Writer latches it and every later append
// fails the same way, which the VFS surfaces to writers as EROFS —
// graceful degradation, never silent record loss.
var ErrNoSpace = errors.New("journal: store full")

// Store is the persistence layer under a Writer: an append-only byte
// device. Append is called with fully framed record bytes (one group
// commit per call).
type Store interface {
	Append(p []byte) error
	Size() int64
}

// MemStore is an in-memory Store for tests and simulated crashes. A
// capacity limit models a small journal device (ENOSPC); Freeze models
// the machine dying — the store keeps what it has (optionally tearing
// bytes off the tail, a half-written final sector) and silently ignores
// every later append, exactly as a dead disk would.
type MemStore struct {
	mu     sync.Mutex
	buf    []byte
	limit  int64 // 0 = unlimited
	synced int64 // durable watermark: Freeze never tears below it
	frozen bool
}

// NewMemStore creates a MemStore; limit > 0 caps its capacity in bytes.
func NewMemStore(limit int64) *MemStore {
	return &MemStore{limit: limit}
}

// Append adds framed bytes, failing with ErrNoSpace past the capacity
// limit. Appends after Freeze are dropped without error: the world that
// issued them is already dead.
func (m *MemStore) Append(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen {
		return nil
	}
	if m.limit > 0 && int64(len(m.buf))+int64(len(p)) > m.limit {
		return ErrNoSpace
	}
	// Grow by doubling: the built-in append's growth factor shrinks for
	// large slices, and a journal under a write-heavy workload would spend
	// most of its time in growslice memmoves.
	if cap(m.buf)-len(m.buf) < len(p) {
		nb := make([]byte, len(m.buf), 2*cap(m.buf)+len(p))
		copy(nb, m.buf)
		m.buf = nb
	}
	m.buf = append(m.buf, p...)
	return nil
}

// Size returns the stored byte count.
func (m *MemStore) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.buf))
}

// Sync marks the store's current contents durable: a later Freeze may
// tear bytes appended after this point but never below it. The Writer
// calls it on every explicit Commit — the journal's fsync barrier.
func (m *MemStore) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced = int64(len(m.buf))
	return nil
}

// Freeze simulates the crash instant: the store's current contents
// (minus torn trailing bytes) become immutable, and later appends are
// silently discarded. Tearing is clamped to the synced watermark —
// a half-written final sector can only damage bytes no fsync barrier
// has promised durable. Idempotent — only the first call tears.
func (m *MemStore) Freeze(torn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen {
		return
	}
	m.frozen = true
	if torn > 0 {
		if max := int64(len(m.buf)) - m.synced; int64(torn) > max {
			torn = int(max)
		}
		if torn > 0 {
			m.buf = m.buf[:len(m.buf)-torn]
		}
	}
}

// Bytes returns a copy of the stored journal, for recovery scans.
func (m *MemStore) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...)
}

// FileStore is a host-file-backed Store, used by agentrun -journal.
// Freeze carries the same crash semantics as MemStore so an injected
// crash in a real agentrun leaves a truthful journal file behind.
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	size   int64
	synced int64 // durable watermark: Freeze never tears below it
	frozen bool
}

// CreateFileStore creates (truncating) the journal file at path.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileStore{f: f}, nil
}

// OpenFileStore opens an existing journal file for appending, returning
// the store and the bytes already present (the recovery prefix).
func OpenFileStore(path string) (*FileStore, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// The on-disk prefix already survived at least one shutdown; treat it
	// as durable so a simulated torn tail never reaches into it.
	return &FileStore{f: f, size: int64(len(data)), synced: int64(len(data))}, data, nil
}

// Append writes framed bytes through to the file.
func (s *FileStore) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return nil
	}
	n, err := s.f.Write(p)
	s.size += int64(n)
	return err
}

// Size returns the bytes written so far.
func (s *FileStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Sync pushes the file to stable storage and advances the durable
// watermark, mirroring MemStore.Sync.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.synced = s.size
	return nil
}

// Freeze stops accepting appends and tears torn bytes off the file
// tail, clamped so the tear never reaches below the synced watermark.
func (s *FileStore) Freeze(torn int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return
	}
	s.frozen = true
	if torn > 0 {
		if max := s.size - s.synced; int64(torn) > max {
			torn = int(max)
		}
		if torn > 0 {
			s.size -= int64(torn)
			s.f.Truncate(s.size)
		}
	}
	s.f.Sync()
}

// TruncateTo discards everything past size — recovery drops a torn tail
// before appending fresh records, so the garbage never precedes valid
// frames.
func (s *FileStore) TruncateTo(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.size {
		return nil
	}
	if err := s.f.Truncate(size); err != nil {
		return err
	}
	s.size = size
	if s.synced > size {
		s.synced = size
	}
	_, err := s.f.Seek(size, 0)
	return err
}

// Close flushes and closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
