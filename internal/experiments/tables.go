package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"interpose/internal/core"
	"interpose/internal/kernel"
)

// MacroRow is one row of an application-level table: elapsed time under an
// agent configuration and the slowdown relative to the no-agent row.
type MacroRow struct {
	Agent    string
	Elapsed  time.Duration
	Slowdown float64 // percent over "none"
}

// MacroStacks is the agent order of Tables 3-2 and 3-3.
var MacroStacks = []string{"none", "timex", "trace", "union"}

// measureStacks times one unit of work per agent stack, interleaving the
// stacks round-robin across `runs` rounds (after one discarded round per
// stack, as the paper discards an initial run) so that process-wide drift
// — allocator growth, scheduler warmup — spreads evenly instead of
// penalizing whichever stack went first. The garbage collector runs
// between measurements.
func measureStacks(runs int, stacks []string, work func(stack string) (time.Duration, error)) ([]MacroRow, error) {
	totals := make(map[string]time.Duration, len(stacks))
	// Discarded warm-up round.
	for _, s := range stacks {
		if _, err := work(s); err != nil {
			return nil, err
		}
	}
	for r := 0; r < runs; r++ {
		for _, s := range stacks {
			runtime.GC()
			d, err := work(s)
			if err != nil {
				return nil, err
			}
			totals[s] += d
		}
	}
	rows := make([]MacroRow, 0, len(stacks))
	for _, s := range stacks {
		rows = append(rows, MacroRow{Agent: s, Elapsed: totals[s] / time.Duration(runs)})
	}
	return rows, nil
}

func fillSlowdowns(rows []MacroRow) {
	base := rows[0].Elapsed
	for i := range rows {
		if i == 0 || base == 0 {
			continue
		}
		rows[i].Slowdown = 100 * float64(rows[i].Elapsed-base) / float64(base)
	}
}

// macroEnv holds the per-stack world prepared for a macro table.
type macroEnv struct {
	k          *kernel.Kernel
	agents     []core.Agent
	manuscript string
}

func prepareEnvs(stacks []string, setup func(k *kernel.Kernel) (string, error)) (map[string]*macroEnv, error) {
	envs := make(map[string]*macroEnv, len(stacks))
	for _, name := range stacks {
		k, err := World()
		if err != nil {
			return nil, err
		}
		manuscript, err := setup(k)
		if err != nil {
			return nil, err
		}
		agents, err := AgentStack(k, name)
		if err != nil {
			return nil, err
		}
		envs[name] = &macroEnv{k: k, agents: agents, manuscript: manuscript}
	}
	return envs, nil
}

// RunTable32 measures "format my dissertation" under each agent stack,
// averaging `runs` interleaved timed repetitions after a discarded round.
func RunTable32(runs int) ([]MacroRow, error) {
	envs, err := prepareEnvs(MacroStacks, SetupScribe)
	if err != nil {
		return nil, err
	}
	rows, err := measureStacks(runs, MacroStacks, func(stack string) (time.Duration, error) {
		e := envs[stack]
		return RunScribe(e.k, e.agents, e.manuscript)
	})
	if err != nil {
		return nil, fmt.Errorf("table 3-2: %w", err)
	}
	fillSlowdowns(rows)
	return rows, nil
}

// RunTable33 measures "make N programs" under each agent stack.
func RunTable33(runs, programs int) ([]MacroRow, error) {
	envs, err := prepareEnvs(MacroStacks, func(k *kernel.Kernel) (string, error) {
		return "", SetupMake(k, programs)
	})
	if err != nil {
		return nil, err
	}
	rows, err := measureStacks(runs, MacroStacks, func(stack string) (time.Duration, error) {
		e := envs[stack]
		if err := CleanMake(e.k, programs); err != nil {
			return 0, err
		}
		return RunMake(e.k, e.agents)
	})
	if err != nil {
		return nil, fmt.Errorf("table 3-3: %w", err)
	}
	fillSlowdowns(rows)
	return rows, nil
}

// Printing helpers shared by cmd/experiments and EXPERIMENTS.md updates.

// PrintMacro writes a Table 3-2/3-3 style table.
func PrintMacro(w io.Writer, title string, rows []MacroRow) {
	fmt.Fprintf(w, "%s\n\n", title)
	fmt.Fprintf(w, "  %-12s %12s %12s\n", "Agent Name", "Elapsed", "% Slowdown")
	for _, r := range rows {
		if r.Agent == "none" {
			fmt.Fprintf(w, "  %-12s %12s %12s\n", r.Agent, fmtDur(r.Elapsed), "")
			continue
		}
		fmt.Fprintf(w, "  %-12s %12s %11.1f%%\n", r.Agent, fmtDur(r.Elapsed), r.Slowdown)
	}
	fmt.Fprintln(w)
}

// PrintTable31 writes the agent-sizes table.
func PrintTable31(w io.Writer, rows []Table31Row) {
	fmt.Fprintf(w, "Table 3-1: Sizes of agents, measured in Go statements\n\n")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "Agent", "Toolkit", "Agent", "Total")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "Name", "Statements", "Statements", "Statements")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %10d %10d %10d\n", r.Agent, r.Toolkit, r.Specific, r.Total)
	}
	fmt.Fprintln(w)
}

// PrintTable34 writes the low-level operations table.
func PrintTable34(w io.Writer, t Table34) {
	fmt.Fprintf(w, "Table 3-4: Performance of low-level operations\n\n")
	fmt.Fprintf(w, "  %-52s %10s\n", "Operation", "per op")
	fmt.Fprintf(w, "  %-52s %10s\n", "Go procedure call with 1 arg, result", fmtDur(t.ProcedureCall))
	fmt.Fprintf(w, "  %-52s %10s\n", "Interface (virtual) call with 1 arg, result", fmtDur(t.InterfaceCall))
	fmt.Fprintf(w, "  %-52s %10s\n", "Intercept and return from system call", fmtDur(t.InterceptReturn))
	fmt.Fprintf(w, "  %-52s %10s\n", "Downcall (htg_unix_syscall) overhead", fmtDur(t.Downcall))
	fmt.Fprintln(w)
}

// PrintTable35 writes the per-system-call table.
func PrintTable35(w io.Writer, rows []Table35Row) {
	fmt.Fprintf(w, "Table 3-5: Performance of individual system calls\n\n")
	fmt.Fprintf(w, "  %-28s %12s %12s %12s\n", "Operation", "without", "with agent", "toolkit ovh")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %12s %12s %12s\n", r.Name, fmtDur(r.Without), fmtDur(r.With), fmtDur(r.Overhead))
	}
	fmt.Fprintln(w)
}

// PrintDFSTrace writes the §3.5.3 comparison.
func PrintDFSTrace(w io.Writer, r DFSTraceResult, kernelStmts, agentStmts int) {
	fmt.Fprintf(w, "DFSTrace comparison (paper §3.5.3)\n\n")
	slow := func(d time.Duration) float64 {
		if r.Base == 0 {
			return 0
		}
		return 100 * float64(d-r.Base) / float64(r.Base)
	}
	fmt.Fprintf(w, "  %-24s %12s %12s %10s\n", "Implementation", "Elapsed", "% Slowdown", "Records")
	fmt.Fprintf(w, "  %-24s %12s %12s %10s\n", "untraced", fmtDur(r.Base), "", "")
	fmt.Fprintf(w, "  %-24s %12s %11.1f%% %10d\n", "kernel-based", fmtDur(r.Kernel), slow(r.Kernel), r.KernelRecords)
	fmt.Fprintf(w, "  %-24s %12s %11.1f%% %10d\n", "dfstrace agent", fmtDur(r.Agent), slow(r.Agent), r.AgentRecords)
	fmt.Fprintf(w, "\n  Implementation sizes: kernel-based %d statements, agent-based %d statements\n\n",
		kernelStmts, agentStmts)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
