package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Baseline regression checking: the perf-smoke CI job runs the Table 3-5
// microbenchmarks once and compares the guarded rows against the
// checked-in BENCH_BASELINE.json, failing on a large regression. The
// guards cover the two hot paths this repository optimizes: the
// uninterposed stat (pathname + attribute cache) and the intercepted
// getpid (interest-vector dispatch).

// GuardedRows are the "table:row" keys the perf smoke check enforces.
// The checked-in baseline values carry modest headroom over a quiet-host
// measurement (stat() ~380ns → 450ns, getpid()-intercepted ~40ns → 48ns)
// so scheduler jitter on shared CI runners does not trip the gate, while
// a genuine fall back to the pre-cache walk (stat() ~825ns) or a slow
// dispatch path still blows well past the +50% limit.
//
// The sup rows guard the supervisor's pay-per-use contract: idle is the
// uninterposed fast path with a supervisor installed but no layers —
// it must stay at the off cost (one atomic plan load, ~23ns → 28ns
// baseline) — and strict is the fully supervised interposed leg
// (~63ns → 76ns baseline).
//
// The trace rows guard the span tracer's pay-per-use contract: off is
// the fast path with no tracer installed (one extra atomic pointer
// load over sup off), and sampled is an installed tracer at 1% — the
// unsampled 99% must pay only an xorshift draw, not clock reads or
// span recording.
// The worldd rows guard the multi-tenant server's scaling claims: a
// session is one exec round trip through the daemon handler (its
// inverse is the daemon's sessions/sec), and idle-mem/world is the
// per-world heap floor with a 10,000-world idle fleet resident — the
// row's unit is bytes, not nanoseconds, but the regression arithmetic
// is the same. The memory row is what keeps per-world facilities
// honest: anything attached unconditionally at boot shows up here
// multiplied by ten thousand.
// The pool rows guard the warm-pool claim that boot is off the session
// path: acquire-hit is the pooled request-path cost (a warm-stack pop
// plus gauge wiring) and fork is the COW clone that refills the stack.
// The absolute guards catch a fork that starts copying data or an
// acquire that grows work; the relations below pin the cross-row claims
// (acquire beats boot, fork cost independent of file bytes) on any host.
// The resil rows guard the self-healing layer's pay-per-use contract:
// probe is the watchdog's recurring per-probe cost on an idle tenant,
// and session/admit is the daemon exec round trip with every admission
// gate engaged but none rejecting — the admitted fast path must not
// grow work as the health machinery evolves.
var GuardedRows = []string{
	"3-5:stat()/without",
	"3-5:getpid()/with",
	"sup:getpid()/idle",
	"sup:getpid()/strict",
	"trace:getpid()/off",
	"trace:getpid()/sampled",
	"worldd:session",
	"worldd:idle-mem/world",
	"pool:acquire-hit",
	"pool:fork",
	"resil:probe",
	"resil:session/admit",
}

// MaxRegress is the allowed slowdown factor before the check fails:
// 0.5 means a guarded row may be at most 50% slower than its baseline.
const MaxRegress = 0.5

// Relation is a relational guard between two rows measured in the same
// run: Left must cost at most Factor times Right. Unlike the absolute
// baseline guards, a relation compares two legs of the same noisy
// machine against each other, so it holds on any host.
type Relation struct {
	Left, Right string  // "table:row" keys
	Factor      float64 // Left <= Factor * Right
	Why         string
}

// Relations are the relational guards of the -check gate. A relation is
// skipped when neither side was measured (its table was not requested),
// but a half-measured relation fails — a vanished leg is not a pass.
var Relations = []Relation{
	{Left: "crash:make/on", Right: "crash:make/off", Factor: 1.15,
		Why: "journal-on write-path overhead must stay within 15% on the write-heavy make workload"},
	{Left: "crash:restore", Right: "crash:boot", Factor: 1.0,
		Why: "restoring a checkpoint must beat a full boot"},
	{Left: "pool:acquire-hit", Right: "pool:boot", Factor: 0.4,
		Why: "a pool-hit acquire must be far cheaper than the boot it replaces (the <50µs-vs-~113µs claim)"},
	{Left: "pool:fork/large", Right: "pool:fork", Factor: 2.0,
		Why: "COW fork cost must be O(#inodes): 256x the file bytes may not move the fork time"},
	{Left: "resil:recover/pool", Right: "resil:boot", Factor: 1.0,
		Why: "recovery through the warm pool must beat the cold boot it replaces"},
	{Left: "resil:session/admit", Right: "resil:session", Factor: 1.15,
		Why: "the admission gates must add no measurable cost to the admitted session fast path"},
}

// CheckRelations enforces Relations over the measured entries.
func CheckRelations(measured []BenchEntry, rels []Relation) (string, error) {
	got := make(map[string]int64, len(measured))
	for _, e := range measured {
		got[e.Table+":"+e.Row] = e.NsPerOp
	}
	var report strings.Builder
	var failures []string
	for _, r := range rels {
		l, okL := got[r.Left]
		rv, okR := got[r.Right]
		switch {
		case !okL && !okR:
			continue
		case !okL || !okR:
			missing := r.Left
			if okL {
				missing = r.Right
			}
			failures = append(failures, fmt.Sprintf("%s vs %s: %s not measured", r.Left, r.Right, missing))
		case rv <= 0:
			failures = append(failures, fmt.Sprintf("%s vs %s: degenerate measurement %dns", r.Left, r.Right, rv))
		default:
			ratio := float64(l) / float64(rv)
			status := "ok"
			if ratio > r.Factor {
				status = "VIOLATED"
				failures = append(failures, fmt.Sprintf("%s: %dns > %.2f x %s (%dns) — %s",
					r.Left, l, r.Factor, r.Right, rv, r.Why))
			}
			fmt.Fprintf(&report, "  %-24s %10dns <= %.2f x %-24s %10dns  (x%.2f)  %s\n",
				r.Left, l, r.Factor, r.Right, rv, ratio, status)
		}
	}
	if len(failures) > 0 {
		return report.String(), fmt.Errorf("experiments: relation check failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return report.String(), nil
}

// ReadBenchJSON loads a bench-entries file written by WriteBenchJSON.
func ReadBenchJSON(path string) ([]BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline: %w", err)
	}
	var entries []BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("experiments: baseline %s: %w", path, err)
	}
	return entries, nil
}

// CheckBaseline compares measured entries against a baseline. Guarded
// rows missing from either side fail (a silently vanished benchmark is
// not a pass); a guarded row slower than baseline by more than maxRegress
// fails. The returned report lists every guarded comparison.
func CheckBaseline(baseline, measured []BenchEntry, guards []string, maxRegress float64) (string, error) {
	key := func(e BenchEntry) string { return e.Table + ":" + e.Row }
	base := make(map[string]int64, len(baseline))
	for _, e := range baseline {
		base[key(e)] = e.NsPerOp
	}
	got := make(map[string]int64, len(measured))
	for _, e := range measured {
		got[key(e)] = e.NsPerOp
	}

	var report strings.Builder
	var failures []string
	for _, g := range guards {
		b, okB := base[g]
		m, okM := got[g]
		switch {
		case !okB:
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", g))
		case !okM:
			failures = append(failures, fmt.Sprintf("%s: not measured", g))
		case b <= 0:
			failures = append(failures, fmt.Sprintf("%s: degenerate baseline %dns", g, b))
		default:
			ratio := float64(m)/float64(b) - 1
			status := "ok"
			if ratio > maxRegress {
				status = "REGRESSED"
				failures = append(failures,
					fmt.Sprintf("%s: %dns vs baseline %dns (%+.0f%%, limit +%.0f%%)",
						g, m, b, 100*ratio, 100*maxRegress))
			}
			fmt.Fprintf(&report, "  %-24s %10dns baseline %10dns  %+6.1f%%  %s\n",
				g, m, b, 100*ratio, status)
		}
	}
	if len(failures) > 0 {
		return report.String(), fmt.Errorf("experiments: baseline check failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return report.String(), nil
}
