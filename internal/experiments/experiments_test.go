package experiments

import (
	"strings"
	"testing"
	"time"

	"interpose/internal/kernel"
)

// mustWorld boots the test world, failing the test on error.
func mustWorld(t *testing.T) *kernel.Kernel {
	t.Helper()
	k, err := World()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestWorldBoots(t *testing.T) {
	k, err := World()
	if err != nil {
		t.Fatal(err)
	}
	// The bench fixtures exist.
	if _, err := k.ReadFile("/usr/lib/bench/data1k"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadFile("/usr/lib/bench/three/four/five/six"); err != nil {
		t.Fatal(err)
	}
}

func TestAgentStacks(t *testing.T) {
	k := mustWorld(t)
	for _, name := range append(MacroStacks, "null") {
		agents, err := AgentStack(k, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" && agents != nil {
			t.Fatal("none should be empty")
		}
		if name != "none" && len(agents) != 1 {
			t.Fatalf("%s: %d agents", name, len(agents))
		}
	}
	if _, err := AgentStack(k, "bogus"); err == nil {
		t.Fatal("bogus stack accepted")
	}
}

func TestScribeWorkloadRuns(t *testing.T) {
	k := mustWorld(t)
	manuscript, err := SetupScribe(k)
	if err != nil {
		t.Fatal(err)
	}
	// The manuscript has the advertised rough size.
	data, err := k.ReadFile(manuscript)
	if err != nil {
		t.Fatal(err)
	}
	total := len(data)
	for i := 1; i <= 8; i++ {
		ch, err := k.ReadFile("/doc/chapter0" + string(rune('0'+i)) + ".mss")
		if err != nil {
			t.Fatalf("chapter %d: %v", i, err)
		}
		total += len(ch)
	}
	if total < 60_000 || total > 400_000 {
		t.Fatalf("manuscript size %d out of the ~100KB ballpark", total)
	}
	for _, stack := range MacroStacks {
		agents, _ := AgentStack(k, stack)
		if _, err := RunScribe(k, agents, manuscript); err != nil {
			t.Fatalf("%s: %v", stack, err)
		}
	}
}

func TestMakeWorkloadRunsAndCleans(t *testing.T) {
	k := mustWorld(t)
	if err := SetupMake(k, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := RunMake(k, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadFile("/src/prog1"); err != nil {
		t.Fatal("build produced nothing")
	}
	if err := CleanMake(k, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadFile("/src/prog1"); err == nil {
		t.Fatal("clean left outputs")
	}
	// And it rebuilds.
	if _, err := RunMake(k, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchOps(t *testing.T) {
	for _, op := range Table35Ops {
		k := mustWorld(t)
		if _, err := RunBench(k, nil, op.Op, 3); err != nil {
			t.Fatalf("%s: %v", op.Op, err)
		}
	}
}

func TestTable31Shape(t *testing.T) {
	rows, err := RunTable31()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Toolkit <= 0 || r.Specific <= 0 || r.Total != r.Toolkit+r.Specific {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestCountStatements(t *testing.T) {
	n, err := CountStatements(SymbolicLevelFiles())
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("symbolic level suspiciously small: %d", n)
	}
	if _, err := CountStatements([]string{"/no/such/file.go"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestKernelTraceHookCount(t *testing.T) {
	hooks, err := CountKernelTraceHooks()
	if err != nil {
		t.Fatal(err)
	}
	if hooks < 10 {
		t.Fatalf("only %d kernel trace hooks found", hooks)
	}
}

func TestTable34Measures(t *testing.T) {
	tb, err := RunTable34()
	if err != nil {
		t.Fatal(err)
	}
	if tb.InterceptReturn <= 0 {
		t.Fatal("intercept cost not measured")
	}
	if tb.ProcedureCall <= 0 || tb.ProcedureCall > time.Millisecond {
		t.Fatalf("procedure call time implausible: %v", tb.ProcedureCall)
	}
}

func TestMeasureAdaptive(t *testing.T) {
	d := Measure(func() {})
	if d < 0 || d > time.Millisecond {
		t.Fatalf("empty op measured as %v", d)
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var b strings.Builder
	PrintMacro(&b, "Title", []MacroRow{
		{Agent: "none", Elapsed: time.Second},
		{Agent: "trace", Elapsed: 2 * time.Second, Slowdown: 100},
	})
	PrintTable31(&b, []Table31Row{{Agent: "timex", Toolkit: 10, Specific: 1, Total: 11}})
	PrintTable34(&b, Table34{})
	PrintTable35(&b, []Table35Row{{Name: "getpid()"}})
	PrintDFSTrace(&b, DFSTraceResult{Base: time.Second, Kernel: time.Second, Agent: 2 * time.Second}, 10, 20)
	out := b.String()
	for _, want := range []string{"Title", "100.0%", "Table 3-1", "Table 3-4", "Table 3-5", "DFSTrace", "timex", "getpid()"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed tables missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.00s",
		1500 * time.Microsecond: "1.50ms",
		42 * time.Microsecond:   "42.00µs",
		900 * time.Nanosecond:   "900ns",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
