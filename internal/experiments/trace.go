package experiments

import (
	"fmt"
	"io"
	"time"

	"interpose/internal/sys"
	spantrace "interpose/internal/trace"
)

// The tracing cost table ("trace"): what the causal span tracer costs on
// the system call fast path. The contract under test is pay-per-use —
// with no tracer installed the only cost is one atomic pointer load
// (off), an installed tracer sampling at 1% costs one xorshift draw on
// the unsampled majority (sampled), and only fully sampled calls pay for
// clock reads and span recording (full).

// TraceRow is one measured tracing configuration.
type TraceRow struct {
	Name string
	Per  time.Duration
}

// RunTraceTable measures the tracing cost rows, each in a fresh world so
// sampling state and span buffers cannot leak across configurations.
func RunTraceTable() ([]TraceRow, error) {
	type cfg struct {
		name   string
		sample float64 // < 0 means no tracer installed
	}
	cfgs := []cfg{
		{name: "getpid()/off", sample: -1},
		{name: "getpid()/sampled", sample: 0.01},
		{name: "getpid()/full", sample: 1},
	}
	var rows []TraceRow
	for _, c := range cfgs {
		k, err := World()
		if err != nil {
			return nil, err
		}
		p := measureProc(k)
		if c.sample >= 0 {
			k.SetSpanTracer(spantrace.NewTracer(spantrace.Config{
				Sample:     c.sample,
				TailErrors: c.sample < 1,
			}))
		}
		rows = append(rows, TraceRow{
			Name: c.name,
			Per:  Measure(func() { p.Syscall(sys.SYS_getpid, sys.Args{}) }),
		})
	}
	return rows, nil
}

// PrintTrace renders the tracing cost table.
func PrintTrace(w io.Writer, rows []TraceRow) {
	fmt.Fprintln(w, "Tracing cost (getpid, host-driven):")
	fmt.Fprintf(w, "  %-34s %12s\n", "configuration", "per call")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %12v\n", r.Name, r.Per)
	}
	fmt.Fprintln(w)
}

// TraceEntries converts the rows for the bench JSON / baseline check.
func TraceEntries(rows []TraceRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "trace", Row: r.Name, NsPerOp: r.Per.Nanoseconds()})
	}
	return es
}
