package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"interpose/internal/apps"
	"interpose/internal/kernel"
	"interpose/internal/world"
)

// The pooling table ("pool"): what copy-on-write forking and the warm
// pool buy over booting a world per session. Four claims are measured:
//
//   - boot: booting one world from the full application image set — the
//     cost the session path pays without a pool (the worldd table's
//     boot row, re-measured here so the relations below compare two
//     legs of the same run);
//   - fork: world.Fork from a live template whose filesystem carries a
//     small bench tree — the COW clone cost, O(#inodes);
//   - fork/large: the same fork against a template with an identical
//     inode count but ~256x the file bytes. If the fork were copying
//     data this row would be two orders of magnitude slower; the
//     relation gate holds it within 2x of the small fork;
//   - acquire-hit: Pool.Acquire with a warm stack — the cost a pooled
//     worldd tenant actually pays on the request path, a mutex-guarded
//     stack pop plus gauge wiring.
//
// The acquire-hit and fork rows are guarded absolutely against
// BENCH_BASELINE.json; the byte-size independence and the
// acquire-beats-boot claims are relation-guarded (baseline.go) so they
// hold on any host.

// PoolRow is one measured row of the pool table, in nanoseconds.
type PoolRow struct {
	Name  string
	Value int64
}

const (
	// poolBoots is the world count of the boot row.
	poolBoots = 200
	// poolForks is the per-round fork count of the fork rows.
	poolForks = 200
	// poolAcquires is the warm-stack depth and per-round acquire count
	// of the acquire-hit row: a fresh pool pre-warmed to this depth is
	// drained exactly once, so every timed acquire is a hit.
	poolAcquires = 64
	// poolTreeFiles is the bench-tree inode count of both fork
	// templates; only the per-file byte size differs between them.
	poolTreeFiles = 64
	// poolSmallFile / poolLargeFile are the per-file sizes: 256x apart,
	// so a fork that copied data could not stay inside the 2x relation.
	poolSmallFile = 64
	poolLargeFile = 16 * 1024
)

// poolTree returns a Setup hook writing poolTreeFiles files of size
// bytes each under /data.
func poolTree(size int) func(*kernel.Kernel) error {
	return func(k *kernel.Kernel) error {
		if err := k.MkdirAll("/data", 0o755); err != nil {
			return err
		}
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i)
		}
		for i := 0; i < poolTreeFiles; i++ {
			if err := k.WriteFile(fmt.Sprintf("/data/f%03d", i), buf, 0o644); err != nil {
				return err
			}
		}
		return nil
	}
}

// measureFork boots a template carrying a bench tree of the given
// per-file size and times poolForks member forks per round, best of
// runs rounds.
func measureFork(runs, fileSize int) (time.Duration, error) {
	spec := apps.Spec()
	spec.Setup = []func(*kernel.Kernel) error{poolTree(fileSize)}
	tmpl, err := world.Boot(spec)
	if err != nil {
		return 0, fmt.Errorf("pool table: template: %w", err)
	}
	defer tmpl.Close()

	member := apps.Spec()
	round := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < poolForks; i++ {
			w, err := world.Fork(tmpl, member)
			if err != nil {
				return 0, fmt.Errorf("pool table: fork: %w", err)
			}
			if err := w.Close(); err != nil {
				return 0, fmt.Errorf("pool table: fork close: %w", err)
			}
		}
		return time.Since(start), nil
	}
	if _, err := round(); err != nil { // warm-up
		return 0, err
	}
	var best time.Duration
	for r := 0; r < runs; r++ {
		runtime.GC()
		d, err := round()
		if err != nil {
			return 0, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return best / poolForks, nil
}

// RunPoolTable measures the pool table.
func RunPoolTable(runs int) ([]PoolRow, error) {
	// Boot: the no-pool session-path cost, for the relation gate.
	start := time.Now()
	for i := 0; i < poolBoots; i++ {
		w, err := world.Boot(apps.Spec())
		if err != nil {
			return nil, fmt.Errorf("pool table: boot: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("pool table: boot close: %w", err)
		}
	}
	bootPer := time.Since(start) / poolBoots

	forkPer, err := measureFork(runs, poolSmallFile)
	if err != nil {
		return nil, err
	}
	forkLargePer, err := measureFork(runs, poolLargeFile)
	if err != nil {
		return nil, err
	}

	// Acquire-hit: drain a pre-warmed pool exactly once per round. The
	// warm stack starts at poolAcquires members and acquires only pop,
	// so every timed acquire is a hit regardless of how far the
	// background refiller gets.
	acquireRound := func() (time.Duration, error) {
		p, err := world.NewPool(apps.Spec(), poolAcquires)
		if err != nil {
			return 0, fmt.Errorf("pool table: pool: %w", err)
		}
		worlds := make([]*world.World, 0, poolAcquires)
		start := time.Now()
		for i := 0; i < poolAcquires; i++ {
			w, err := p.Acquire()
			if err != nil {
				p.Close()
				return 0, fmt.Errorf("pool table: acquire: %w", err)
			}
			worlds = append(worlds, w)
		}
		d := time.Since(start)
		if s := p.Stats(); s.Misses > 0 {
			p.Close()
			return 0, fmt.Errorf("pool table: %d misses on a pre-warmed pool", s.Misses)
		}
		for _, w := range worlds {
			if err := w.Close(); err != nil {
				p.Close()
				return 0, fmt.Errorf("pool table: session close: %w", err)
			}
		}
		if err := p.Close(); err != nil {
			return 0, fmt.Errorf("pool table: pool close: %w", err)
		}
		return d, nil
	}
	if _, err := acquireRound(); err != nil { // warm-up
		return nil, err
	}
	var acquireBest time.Duration
	for r := 0; r < runs; r++ {
		runtime.GC()
		d, err := acquireRound()
		if err != nil {
			return nil, err
		}
		if r == 0 || d < acquireBest {
			acquireBest = d
		}
	}
	acquirePer := acquireBest / poolAcquires

	return []PoolRow{
		{Name: "boot", Value: bootPer.Nanoseconds()},
		{Name: "fork", Value: forkPer.Nanoseconds()},
		{Name: "fork/large", Value: forkLargePer.Nanoseconds()},
		{Name: "acquire-hit", Value: acquirePer.Nanoseconds()},
	}, nil
}

// PrintPool renders the pool table.
func PrintPool(w io.Writer, rows []PoolRow) {
	fmt.Fprintf(w, "Warm pools and COW forking (%d-file bench tree, %dB vs %dB files):\n",
		poolTreeFiles, poolSmallFile, poolLargeFile)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %10dns\n", r.Name, r.Value)
	}
	fmt.Fprintln(w)
}

// PoolEntries converts the rows for the bench JSON / baseline check.
func PoolEntries(rows []PoolRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "pool", Row: r.Name, NsPerOp: r.Value})
	}
	return es
}
