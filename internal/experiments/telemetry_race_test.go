package experiments_test

import (
	"sync/atomic"
	"testing"

	"interpose/internal/agents/dfstrace"
	"interpose/internal/experiments"
	"interpose/internal/telemetry"
)

// TestTelemetryToggleUnderLoad flips the telemetry registry and the
// kernel tracer on and off while a multi-process make build runs. Under
// -race this checks the atomic-pointer installation protocol: recording
// paths may run against either generation of registry, but never against
// torn state, and toggling must not disturb the workload.
func TestTelemetryToggleUnderLoad(t *testing.T) {
	k, err := experiments.World()
	if err != nil {
		t.Fatal(err)
	}
	const programs = 2
	if err := experiments.SetupMake(k, programs); err != nil {
		t.Fatal(err)
	}
	agents, err := experiments.AgentStack(k, "trace")
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	cl := dfstrace.NewCollector()
	tr := dfstrace.NewKernelTracer(cl)
	var done atomic.Bool
	toggled := make(chan struct{})
	go func() {
		defer close(toggled)
		for i := 0; !done.Load(); i++ {
			if i%2 == 0 {
				k.SetTelemetry(reg)
				k.SetTracer(tr)
			} else {
				k.SetTelemetry(nil)
				k.SetTracer(nil)
			}
		}
	}()

	for round := 0; round < 3; round++ {
		if _, err := experiments.RunMake(k, agents); err != nil {
			t.Fatal(err)
		}
		if err := experiments.CleanMake(k, programs); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	<-toggled

	// Functional check in a deterministic window: both consumers pinned on
	// for one full build must observe it. (How much the toggled builds
	// recorded depends on scheduling; they exist for the race coverage.)
	k.SetTelemetry(reg)
	k.SetTracer(tr)
	before := cl.Len()
	if _, err := experiments.RunMake(k, agents); err != nil {
		t.Fatal(err)
	}
	k.SetTelemetry(nil)
	k.SetTracer(nil)

	snap := reg.Snapshot()
	if snap.Total == 0 {
		t.Fatal("registry recorded nothing")
	}
	for _, row := range snap.Syscalls {
		if row.Errs > row.Count {
			t.Fatalf("row %s: errs %d > count %d", row.Name, row.Errs, row.Count)
		}
	}
	if cl.Len() == before {
		t.Fatal("kernel tracer collected nothing during the pinned build")
	}
}
