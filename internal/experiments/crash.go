package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"interpose/internal/apps"
	"interpose/internal/image"
	"interpose/internal/journal"
	"interpose/internal/kernel"
	"interpose/internal/world"
)

// The crash-consistency cost table ("crash"): what the write-ahead
// journal costs on the write path, and what a world checkpoint buys over
// a full boot. Two relations are enforced by the -check gate (see
// Relations in baseline.go): the journal-on make workload within 15% of
// journal-off, and restoring a checkpoint cheaper than booting the same
// world from scratch.
//
// The write4k rows are the raw per-write floor: an uninterposed 4 KB
// in-memory overwrite is a few hundred nanoseconds of memmove, so the
// journal's extra passes over the data (frame encode, CRC-32, store
// append) necessarily multiply it. The guarded overhead claim is the
// workload-level make rows, where writes ride along real computation the
// way they do in any deployment that would turn the journal on.

// CrashRow is one measured row of the crash table.
type CrashRow struct {
	Name string
	Per  time.Duration
}

// write4kOps is the per-measurement repetition count of the write rows.
const write4kOps = 2000

// crashPrograms is the make-workload size of the make/off and make/on rows.
const crashPrograms = 4

// crashWorld boots the world the checkpoint rows snapshot: a full
// application world carrying the mk workload's source tree, so "boot"
// means the work a crashed deployment would redo without a checkpoint.
// It is a Setup hook away from the standard benchmark spec.
func crashWorld() (*kernel.Kernel, error) {
	s := WorldSpec()
	s.Setup = append(s.Setup, func(k *kernel.Kernel) error {
		return apps.GenMakeTree(k, "/src", 4)
	})
	w, err := world.Boot(s)
	if err != nil {
		return nil, err
	}
	return w.Kernel(), nil
}

// RunCrashTable measures the crash table: per-write cost with the
// journal off and on, then checkpoint, restore, and full-boot latency
// for the same world.
func RunCrashTable(runs int) ([]CrashRow, error) {
	writeRows, err := measureStacks(runs, []string{"off", "on"}, func(stack string) (time.Duration, error) {
		k, err := World()
		if err != nil {
			return 0, err
		}
		if stack == "on" {
			k.SetJournal(journal.NewWriter(journal.NewMemStore(0), 0))
		}
		return RunBench(k, nil, "write4k", write4kOps)
	})
	if err != nil {
		return nil, fmt.Errorf("crash table: %w", err)
	}
	rows := []CrashRow{
		{Name: "write4k/off", Per: writeRows[0].Elapsed / write4kOps},
		{Name: "write4k/on", Per: writeRows[1].Elapsed / write4kOps},
	}

	// The workload rows: the make build (compiler, assembler, linker all
	// writing through the VFS) with and without a journal attached.
	makeEnvs := make(map[string]*kernel.Kernel, 2)
	for _, s := range []string{"off", "on"} {
		k, err := World()
		if err != nil {
			return nil, fmt.Errorf("crash table: %w", err)
		}
		if err := SetupMake(k, crashPrograms); err != nil {
			return nil, fmt.Errorf("crash table: %w", err)
		}
		if s == "on" {
			k.SetJournal(journal.NewWriter(journal.NewMemStore(0), 0))
		}
		makeEnvs[s] = k
	}
	makeRows, err := measureStacks(runs, []string{"off", "on"}, func(stack string) (time.Duration, error) {
		k := makeEnvs[stack]
		if err := CleanMake(k, crashPrograms); err != nil {
			return 0, err
		}
		return RunMake(k, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("crash table: %w", err)
	}
	rows = append(rows,
		CrashRow{Name: "make/off", Per: makeRows[0].Elapsed},
		CrashRow{Name: "make/on", Per: makeRows[1].Elapsed})

	// One canonical world provides the checkpoint image; the snapshot is
	// taken once and restored repeatedly.
	k, err := crashWorld()
	if err != nil {
		return nil, fmt.Errorf("crash table: %w", err)
	}
	var snap bytes.Buffer
	if err := k.Checkpoint(&snap); err != nil {
		return nil, fmt.Errorf("crash table: checkpoint: %w", err)
	}
	images := image.NewRegistry()
	apps.Register(images)

	timed := func(name string, op func() error) error {
		var total time.Duration
		for r := 0; r < runs+1; r++ {
			runtime.GC()
			start := time.Now()
			if err := op(); err != nil {
				return fmt.Errorf("crash table: %s: %w", name, err)
			}
			if r > 0 { // discard the warm-up round, like measureStacks
				total += time.Since(start)
			}
		}
		rows = append(rows, CrashRow{Name: name, Per: total / time.Duration(runs)})
		return nil
	}
	if err := timed("checkpoint", func() error { return k.Checkpoint(io.Discard) }); err != nil {
		return nil, err
	}
	if err := timed("restore", func() error {
		_, err := kernel.Restore(images, bytes.NewReader(snap.Bytes()))
		return err
	}); err != nil {
		return nil, err
	}
	if err := timed("boot", func() error {
		_, err := crashWorld()
		return err
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintCrash renders the crash table.
func PrintCrash(w io.Writer, rows []CrashRow) {
	fmt.Fprintln(w, "Crash consistency cost (journal + checkpoint/restore):")
	fmt.Fprintf(w, "  %-24s %12s\n", "operation", "per op")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %12v\n", r.Name, r.Per)
	}
	fmt.Fprintln(w)
}

// CrashEntries converts the rows for the bench JSON / baseline check.
func CrashEntries(rows []CrashRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "crash", Row: r.Name, NsPerOp: r.Per.Nanoseconds()})
	}
	return es
}
