package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"interpose/internal/core"
	"interpose/internal/kernel"
)

// The scalability table: the Table 3-3 make workload run with mk -j N for
// increasing N, on a kernel whose big lock has been split into per-object
// locks. Each parallel job is a separate interposed process hammering
// fork/exec/open/stat against shared directories, so the speedup from -j
// is a direct measurement of how much true concurrency the fine-grained
// kernel and per-inode VFS locking admit. On a single-CPU host the table
// still validates correctness (elapsed times stay flat rather than
// degrading); the speedup column only becomes meaningful with multiple
// scheduler threads available.

// ScaleJobs is the job-count ladder of the scale table.
var ScaleJobs = []int{1, 2, 4, 8}

// ScaleRow is one row of the scalability table: elapsed time for mk -j J
// and the speedup relative to the serial (-j 1) row.
type ScaleRow struct {
	Jobs    int
	Agent   string
	Elapsed time.Duration
	Speedup float64 // serial elapsed / this elapsed
}

// RunScale measures mk -j N over the job ladder, for the bare kernel and
// under the trace agent stack (showing interposition composes with
// concurrency). Rounds are interleaved across configurations, after one
// discarded warm-up round each, mirroring measureStacks.
func RunScale(runs, programs int) ([]ScaleRow, error) {
	type cfg struct {
		jobs  int
		stack string
	}
	var cfgs []cfg
	for _, j := range ScaleJobs {
		cfgs = append(cfgs, cfg{j, "none"})
	}
	cfgs = append(cfgs, cfg{4, "trace"})

	type env struct {
		k      *kernel.Kernel
		agents []core.Agent
	}
	envs := make(map[cfg]*env, len(cfgs))
	for _, c := range cfgs {
		k, err := World()
		if err != nil {
			return nil, err
		}
		if err := SetupMake(k, programs); err != nil {
			return nil, err
		}
		agents, err := AgentStack(k, c.stack)
		if err != nil {
			return nil, err
		}
		envs[c] = &env{k: k, agents: agents}
	}

	work := func(c cfg) (time.Duration, error) {
		e := envs[c]
		if err := CleanMake(e.k, programs); err != nil {
			return 0, err
		}
		return RunMakeJ(e.k, e.agents, c.jobs)
	}

	totals := make(map[cfg]time.Duration, len(cfgs))
	for _, c := range cfgs {
		if _, err := work(c); err != nil {
			return nil, fmt.Errorf("scale table (j=%d, %s): %w", c.jobs, c.stack, err)
		}
	}
	for r := 0; r < runs; r++ {
		for _, c := range cfgs {
			runtime.GC()
			d, err := work(c)
			if err != nil {
				return nil, fmt.Errorf("scale table (j=%d, %s): %w", c.jobs, c.stack, err)
			}
			totals[c] += d
		}
	}

	rows := make([]ScaleRow, 0, len(cfgs))
	for _, c := range cfgs {
		rows = append(rows, ScaleRow{Jobs: c.jobs, Agent: c.stack, Elapsed: totals[c] / time.Duration(runs)})
	}
	serial := rows[0].Elapsed
	for i := range rows {
		if rows[i].Elapsed > 0 {
			rows[i].Speedup = float64(serial) / float64(rows[i].Elapsed)
		}
	}
	return rows, nil
}

// StatHeavyJobs is the parallelism of the stat-heavy workload rows.
const StatHeavyJobs = 4

// StatHeavyOps is the number of stat calls each parallel job performs.
const StatHeavyOps = 20000

// RunStatHeavy measures the pathname-cache rows of the scale table: a
// stat-heavy parallel workload (StatHeavyJobs guests each performing
// StatHeavyOps stat calls on the same path) with the VFS name/attribute
// cache on and off. The Speedup column reports cache-off elapsed over
// this row's elapsed, so the cache-on row directly reads as the cache's
// speedup factor. Rounds are interleaved after one discarded warm-up.
func RunStatHeavy(runs int) ([]ScaleRow, error) {
	cfgs := []bool{true, false} // cache on, cache off
	envs := make(map[bool]*kernel.Kernel, len(cfgs))
	for _, on := range cfgs {
		k, err := World()
		if err != nil {
			return nil, err
		}
		k.FS().SetNameCache(on)
		envs[on] = k
	}

	work := func(on bool) (time.Duration, error) {
		k := envs[on]
		start := time.Now()
		procs := make([]*kernel.Proc, 0, StatHeavyJobs)
		argv := []string{"bench", "stat", fmt.Sprint(StatHeavyOps)}
		for j := 0; j < StatHeavyJobs; j++ {
			p, err := core.Launch(k, nil, "/bin/bench", argv, nil)
			if err != nil {
				return 0, err
			}
			procs = append(procs, p)
		}
		for _, p := range procs {
			k.WaitExit(p)
		}
		return time.Since(start), nil
	}

	totals := make(map[bool]time.Duration, len(cfgs))
	for _, on := range cfgs {
		if _, err := work(on); err != nil {
			return nil, fmt.Errorf("stat-heavy (cache=%v): %w", on, err)
		}
	}
	for r := 0; r < runs; r++ {
		for _, on := range cfgs {
			runtime.GC()
			d, err := work(on)
			if err != nil {
				return nil, fmt.Errorf("stat-heavy (cache=%v): %w", on, err)
			}
			totals[on] += d
		}
	}

	label := map[bool]string{true: "stat-cache-on", false: "stat-cache-off"}
	rows := make([]ScaleRow, 0, len(cfgs))
	for _, on := range cfgs {
		rows = append(rows, ScaleRow{
			Jobs:    StatHeavyJobs,
			Agent:   label[on],
			Elapsed: totals[on] / time.Duration(runs),
		})
	}
	off := totals[false] / time.Duration(runs)
	for i := range rows {
		if rows[i].Elapsed > 0 {
			rows[i].Speedup = float64(off) / float64(rows[i].Elapsed)
		}
	}
	return rows, nil
}

// PrintScale writes the scalability table.
func PrintScale(w io.Writer, programs int, rows []ScaleRow) {
	fmt.Fprintf(w, "Scale: parallel make of %d programs (mk -j N), GOMAXPROCS=%d\n\n",
		programs, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "  %-6s %-12s %12s %10s\n", "Jobs", "Agent Name", "Elapsed", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6d %-12s %12s %9.2fx\n", r.Jobs, r.Agent, fmtDur(r.Elapsed), r.Speedup)
	}
	fmt.Fprintln(w)
}

// ScaleEntries converts scale rows to bench entries.
func ScaleEntries(rows []ScaleRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{
			Table:   "scale",
			Row:     fmt.Sprintf("j%d-%s", r.Jobs, r.Agent),
			NsPerOp: r.Elapsed.Nanoseconds(),
		})
	}
	return es
}
