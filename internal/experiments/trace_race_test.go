package experiments_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"interpose/internal/experiments"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	spantrace "interpose/internal/trace"
)

// TestTraceToggleUnderStorm flips the span tracer in and out — and
// retunes its sampling rate — while many guest processes hammer the
// system call path. Under -race this checks the atomic installation
// protocol: calls in flight may trace against either generation of
// tracer, but never against torn state, and toggling must not disturb
// the workload.
func TestTraceToggleUnderStorm(t *testing.T) {
	k, err := experiments.World()
	if err != nil {
		t.Fatal(err)
	}
	layer := kernel.NewEmuLayer(passLayer{})
	layer.Name = "storm"
	layer.RegisterAll()

	tr := spantrace.NewTracer(spantrace.Config{Sample: 0.5, TailErrors: true})
	var done atomic.Bool
	toggled := make(chan struct{})
	go func() {
		defer close(toggled)
		for i := 0; !done.Load(); i++ {
			switch i % 4 {
			case 0:
				k.SetSpanTracer(tr)
			case 1:
				tr.SetSample(1)
			case 2:
				tr.SetSample(0.01)
			default:
				k.SetSpanTracer(nil)
			}
		}
	}()

	const workers = 8
	const callsPer = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := k.NewProc()
			if w%2 == 0 {
				// Half the workers run interposed so layer and kernel-leg
				// child spans race against the toggling too.
				p.PushEmulation(layer)
			}
			for i := 0; i < callsPer; i++ {
				if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
					t.Errorf("getpid: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	done.Store(true)
	<-toggled

	// Functional check in a deterministic window: pinned on at full
	// sampling, one process's calls must record coherent spans.
	k.SetSpanTracer(tr)
	tr.SetSample(1)
	tr.Clear()
	p := k.NewProc()
	for i := 0; i < 100; i++ {
		p.Syscall(sys.SYS_getpid, sys.Args{})
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("tracer recorded nothing in the pinned window")
	}
	for _, sp := range spans {
		if sp.ID == 0 {
			t.Fatalf("span with zero id: %+v", sp)
		}
	}
}

// passLayer forwards every call downward.
type passLayer struct{}

func (passLayer) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	type downer interface {
		Down(num int, a sys.Args) (sys.Retval, sys.Errno)
	}
	return c.(downer).Down(num, a)
}

// TestMakeJConnectedTrace is the tentpole acceptance check: a parallel
// build (mk -j 4, eight programs) under full sampling exports as one
// causally connected Perfetto trace. The test goes through the Chrome
// JSON the same way a human would — parse, index spans by id, walk
// parent links — and checks every process chains back to the root.
func TestMakeJConnectedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process build")
	}
	k, err := experiments.World()
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.SetupMake(k, 8); err != nil {
		t.Fatal(err)
	}
	tr := spantrace.NewTracer(spantrace.Config{Sample: 1, Capacity: 1 << 21})
	k.SetSpanTracer(tr)
	if _, err := experiments.RunMakeJ(k, nil, 4); err != nil {
		t.Fatal(err)
	}
	k.SetSpanTracer(nil)
	if _, dropped := tr.Stats(); dropped != 0 {
		t.Fatalf("%d spans dropped; the buffer must hold the whole build", dropped)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			PID  int32  `json:"pid"`
			Args struct {
				Span   uint64 `json:"span"`
				Trace  uint64 `json:"trace"`
				Parent uint64 `json:"parent"`
				Link   uint64 `json:"link"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid Chrome trace JSON: %v", err)
	}

	type span struct {
		pid    int32
		parent uint64
	}
	byID := make(map[uint64]span)
	traces := make(map[uint64]bool)
	pids := make(map[int32]bool)
	var flows int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			byID[e.Args.Span] = span{pid: e.PID, parent: e.Args.Parent}
			traces[e.Args.Trace] = true
			pids[e.PID] = true
		case "s", "f":
			flows++
		}
	}
	if len(byID) == 0 {
		t.Fatal("no spans exported")
	}
	if len(traces) != 1 {
		t.Fatalf("build exported %d trace ids, want 1 connected trace", len(traces))
	}
	// mk -j 4 over 8 programs: sh, mk, and a compiler pipeline per
	// program — well past 8 processes.
	if len(pids) < 8 {
		t.Fatalf("build spans cover %d pids, want >= 8", len(pids))
	}
	if flows == 0 {
		t.Fatal("no flow arrows exported for a multi-process build")
	}

	// Walk parent links: every span must resolve to a root (parent 0)
	// through the byID index, and every non-root process must reach a
	// span of another pid on the way (the causal chain to its forker).
	crossed := make(map[int32]bool)
	for id, sp := range byID {
		seen := 0
		cur, curPID := sp, sp.pid
		for cur.parent != 0 {
			next, ok := byID[cur.parent]
			if !ok {
				t.Fatalf("span %d: parent %d not in export", id, cur.parent)
			}
			if next.pid != curPID {
				crossed[curPID] = true
			}
			cur, curPID = next, next.pid
			if seen++; seen > len(byID) {
				t.Fatalf("span %d: parent chain does not terminate", id)
			}
		}
	}
	var rootPID int32 = -1
	for id, sp := range byID {
		if sp.parent == 0 && (rootPID == -1 || sp.pid < rootPID) {
			rootPID = sp.pid
		}
		_ = id
	}
	for pid := range pids {
		if pid != rootPID && !crossed[pid] {
			t.Errorf("pid %d never chains to another process: disconnected from the build trace", pid)
		}
	}
}
