package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"interpose/internal/apps"
	"interpose/internal/world"
	"interpose/internal/worldd"
)

// The resilience table ("resil"): what self-healing worldd costs and
// what it buys. Five claims are measured:
//
//   - probe: one liveness probe (an exec of /bin/true straight through
//     the world, exactly what the watchdog runs on an idle tenant) — the
//     recurring cost of health monitoring;
//   - boot: a cold world boot + close — the recovery cost floor without
//     a warm pool, and the comparator for the recovery rows;
//   - recover/pool and recover/journal: the daemon's measured rebuild
//     time (teardown + replacement, excluding detection and backoff, as
//     reported by the world's rebuild_ns gauge) after an injected
//     kernel crash, for a pooled and a journaled tenant;
//   - session and session/admit: the daemon exec round trip without and
//     with the admission machinery engaged (global inflight gate, health
//     gate, per-tenant session cap + token bucket, none rejecting) —
//     the pair that prices the admit fast path.
//
// The probe and session/admit rows are guarded against the baseline;
// the relations pin recovery-from-pool under cold boot and the admit
// path within 15% of the bare session on any host.

// ResilRow is one measured row, in nanoseconds.
type ResilRow struct {
	Name  string
	Value int64
}

// resilProbes is the per-round probe count of the probe row.
const resilProbes = 200

// resilBoots is the world count of the boot row.
const resilBoots = 200

// resilKills is the injected-crash count behind each recovery row.
const resilKills = 30

// resilSessions is the per-round session count of the session rows.
const resilSessions = 200

// measureRecovery boots a crashy tenant in a throwaway daemon, kills it
// resilKills times by injected crash, waits out each recovery, and
// returns the daemon's mean rebuild time.
func measureRecovery(spec []byte, stateDir string) (int64, error) {
	srv, err := worldd.New(worldd.Config{
		Register: apps.Register,
		StateDir: stateDir,
		Health: worldd.HealthConfig{
			// Detection is the crash hook (push), not the sweep, so the
			// interval only paces background probes; the tiny backoff
			// keeps the measured cycle close to pure rebuild.
			ProbeInterval:   50 * time.Millisecond,
			SessionDeadline: time.Minute,
			RestartBudget:   resilKills * 2,
			RestartWindow:   time.Hour,
			BackoffBase:     time.Millisecond,
			BackoffMax:      2 * time.Millisecond,
			Seed:            1,
		},
	})
	if err != nil {
		return 0, fmt.Errorf("resil table: %w", err)
	}
	defer srv.Shutdown(context.Background())
	h := srv.Handler()

	var info worldd.Info
	if err := apiCall(h, "POST", "/1.0/worlds", spec, &info); err != nil {
		return 0, err
	}
	poison := []byte(`{"argv":["cat","/boom"]}`)
	for i := 0; i < resilKills; i++ {
		// The poison session dies with its world: 503 is the expected
		// answer, so the call goes out raw and only transport-level
		// trouble matters.
		apiCall(h, "POST", "/1.0/worlds/"+info.ID+"/exec", poison, nil)
		deadline := time.Now().Add(30 * time.Second)
		for {
			var in worldd.Info
			if err := apiCall(h, "GET", "/1.0/worlds/"+info.ID, nil, &in); err != nil {
				return 0, err
			}
			if in.Health == "healthy" && in.Restarts >= uint64(i+1) {
				info = in
				break
			}
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("resil table: tenant never recovered from kill %d (%+v)", i, in)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	if info.RebuildNs <= 0 {
		return 0, fmt.Errorf("resil table: no rebuild time recorded (%+v)", info)
	}
	return info.RebuildNs, nil
}

// measureSessions times the daemon exec round trip, best of runs.
func measureSessions(runs int, cfg worldd.Config, spec []byte) (int64, error) {
	srv, err := worldd.New(cfg)
	if err != nil {
		return 0, fmt.Errorf("resil table: %w", err)
	}
	defer srv.Shutdown(context.Background())
	h := srv.Handler()
	var info worldd.Info
	if err := apiCall(h, "POST", "/1.0/worlds", spec, &info); err != nil {
		return 0, err
	}
	execBody := []byte(`{"argv":["true"]}`)
	round := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < resilSessions; i++ {
			var res world.ExecResult
			if err := apiCall(h, "POST", "/1.0/worlds/"+info.ID+"/exec", execBody, &res); err != nil {
				return 0, err
			}
			if res.Status != 0 {
				return 0, fmt.Errorf("resil table: session exited %d", res.Status)
			}
		}
		return time.Since(start), nil
	}
	if _, err := round(); err != nil { // warm-up
		return 0, err
	}
	var best time.Duration
	for r := 0; r < runs; r++ {
		runtime.GC()
		d, err := round()
		if err != nil {
			return 0, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return (best / resilSessions).Nanoseconds(), nil
}

// RunResilTable measures the resilience table.
func RunResilTable(runs int) ([]ResilRow, error) {
	// Probe: what one watchdog liveness check costs the probed world.
	w, err := world.Boot(apps.Spec())
	if err != nil {
		return nil, fmt.Errorf("resil table: boot: %w", err)
	}
	probeReq := world.ExecRequest{Argv: []string{"true"}}
	probeRound := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < resilProbes; i++ {
			res, err := w.Exec(probeReq)
			if err != nil {
				return 0, err
			}
			if res.Status != 0 {
				return 0, fmt.Errorf("resil table: probe exited %d", res.Status)
			}
		}
		return time.Since(start), nil
	}
	if _, err := probeRound(); err != nil { // warm-up
		w.Close()
		return nil, err
	}
	var probeBest time.Duration
	for r := 0; r < runs; r++ {
		runtime.GC()
		d, err := probeRound()
		if err != nil {
			w.Close()
			return nil, err
		}
		if r == 0 || d < probeBest {
			probeBest = d
		}
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("resil table: close: %w", err)
	}
	probePer := (probeBest / resilProbes).Nanoseconds()

	// Boot: the cold-recovery floor.
	start := time.Now()
	for i := 0; i < resilBoots; i++ {
		bw, err := world.Boot(apps.Spec())
		if err != nil {
			return nil, fmt.Errorf("resil table: boot: %w", err)
		}
		if err := bw.Close(); err != nil {
			return nil, fmt.Errorf("resil table: close: %w", err)
		}
	}
	bootPer := (time.Since(start) / resilBoots).Nanoseconds()

	// Recovery: mean rebuild time after an injected crash, pooled vs
	// journal-replaying.
	recoverPool, err := measureRecovery(
		[]byte(`{"name":"rp","pool":2,"inject":"seed=1,open:/boom=crash@1"}`), "")
	if err != nil {
		return nil, err
	}
	stateDir, err := os.MkdirTemp("", "resil-journal-")
	if err != nil {
		return nil, fmt.Errorf("resil table: %w", err)
	}
	defer os.RemoveAll(stateDir)
	recoverJournal, err := measureRecovery(
		[]byte(`{"name":"rj","journal":"rj","inject":"seed=1,open:/boom=crash@1"}`), stateDir)
	if err != nil {
		return nil, err
	}

	// Sessions: the admitted fast path, bare vs fully gated.
	session, err := measureSessions(runs, worldd.Config{
		Register: apps.Register,
		Health:   worldd.HealthConfig{Disabled: true},
	}, []byte(`{"name":"bare"}`))
	if err != nil {
		return nil, err
	}
	sessionAdmit, err := measureSessions(runs, worldd.Config{
		Register: apps.Register,
	}, []byte(`{"name":"gated","admission":{"max_sessions":1024,"rate":1e9}}`))
	if err != nil {
		return nil, err
	}

	return []ResilRow{
		{Name: "probe", Value: probePer},
		{Name: "boot", Value: bootPer},
		{Name: "recover/pool", Value: recoverPool},
		{Name: "recover/journal", Value: recoverJournal},
		{Name: "session", Value: session},
		{Name: "session/admit", Value: sessionAdmit},
	}, nil
}

// PrintResil renders the resilience table.
func PrintResil(w io.Writer, rows []ResilRow) {
	fmt.Fprintf(w, "Self-healing worldd (%d injected crashes per recovery row):\n", resilKills)
	for _, r := range rows {
		switch r.Name {
		case "probe":
			fmt.Fprintf(w, "  %-18s %10dns   (idle watchdog cost per probe)\n", r.Name, r.Value)
		case "recover/pool", "recover/journal":
			fmt.Fprintf(w, "  %-18s %10dns   (teardown + rebuild, detection excluded)\n", r.Name, r.Value)
		case "session/admit":
			fmt.Fprintf(w, "  %-18s %10dns   (admission gates engaged, none rejecting)\n", r.Name, r.Value)
		default:
			fmt.Fprintf(w, "  %-18s %10dns\n", r.Name, r.Value)
		}
	}
	fmt.Fprintln(w)
}

// ResilEntries converts the rows for the bench JSON / baseline check.
func ResilEntries(rows []ResilRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "resil", Row: r.Name, NsPerOp: r.Value})
	}
	return es
}
