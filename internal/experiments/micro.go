package experiments

import (
	"time"

	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// Low-level measurements behind Table 3-4: the primitive costs that bound
// every interposition agent's overhead.

//go:noinline
func plainCall(x int) int { return x + 1 }

// caller is the interface used for the virtual-call measurement.
type caller interface {
	Call(x int) int
}

type callee struct{ v int }

//go:noinline
func (c *callee) Call(x int) int { return x + c.v }

// Measure times one operation by running it in a calibrated loop.
func Measure(op func()) time.Duration {
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed > 20*time.Millisecond || n >= 1<<24 {
			return elapsed / time.Duration(n)
		}
		n *= 4
	}
}

// sink defeats dead-code elimination in the measurement loops.
var sink int

// PlainCall is the non-inlined procedure used by the call-cost benches.
func PlainCall(x int) int { return plainCall(x) }

// IfaceCaller returns an interface value whose Call dispatches
// dynamically, for the virtual-call benches.
func IfaceCaller() interface{ Call(int) int } { return &callee{v: 1} }

// MeasureProcedureCall times a plain (non-inlined) procedure call — the
// paper's "C procedure call with 1 arg, result".
func MeasureProcedureCall() time.Duration {
	return Measure(func() { sink = plainCall(sink) })
}

// MeasureInterfaceCall times a dynamic-dispatch method call — the paper's
// "C++ virtual procedure call with 1 arg, result".
func MeasureInterfaceCall() time.Duration {
	var c caller = &callee{v: 1}
	return Measure(func() { sink = c.Call(sink) })
}

// interceptOnly is an emulation layer that handles a call entirely at the
// agent level, immediately returning. Dispatching to it and back is the
// floor cost of interception — the paper's "intercept and return from
// system call".
type interceptOnly struct{}

func (interceptOnly) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	return sys.Retval{a[0]}, sys.OK
}

// passThrough is an emulation layer that forwards every call downward; the
// difference between a call through it and a direct call is the downcall
// (htg_unix_syscall) overhead.
type passThrough struct{}

func (passThrough) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	type downer interface {
		Down(num int, a sys.Args) (sys.Retval, sys.Errno)
	}
	return c.(downer).Down(num, a)
}

// measureProc makes a process for host-driven call measurements.
func measureProc(k *kernel.Kernel) *kernel.Proc {
	p := k.NewProc()
	p.OpenConsole()
	return p
}

// MeasureInterceptReturn times a system call that an agent layer handles
// without calling down: interception machinery only.
func MeasureInterceptReturn(k *kernel.Kernel) time.Duration {
	p := measureProc(k)
	layer := kernel.NewEmuLayer(interceptOnly{})
	layer.Register(sys.SYS_getpagesize)
	p.PushEmulation(layer)
	return Measure(func() { p.Syscall(sys.SYS_getpagesize, sys.Args{}) })
}

// MeasureSyscallDirect times a trivial call with no agents installed.
func MeasureSyscallDirect(k *kernel.Kernel) time.Duration {
	p := measureProc(k)
	return Measure(func() { p.Syscall(sys.SYS_getpid, sys.Args{}) })
}

// MeasureSyscallThroughLayer times the same trivial call through a
// pass-through layer; the difference from MeasureSyscallDirect is the
// downcall overhead.
func MeasureSyscallThroughLayer(k *kernel.Kernel) time.Duration {
	p := measureProc(k)
	layer := kernel.NewEmuLayer(passThrough{})
	layer.RegisterAll()
	p.PushEmulation(layer)
	return Measure(func() { p.Syscall(sys.SYS_getpid, sys.Args{}) })
}

// Table34 holds the low-level operation measurements.
type Table34 struct {
	ProcedureCall   time.Duration
	InterfaceCall   time.Duration
	InterceptReturn time.Duration
	Downcall        time.Duration // overhead of one downcall hop
}

// RunTable34 performs the Table 3-4 measurements.
func RunTable34() (Table34, error) {
	k, err := World()
	if err != nil {
		return Table34{}, err
	}
	direct := MeasureSyscallDirect(k)
	through := MeasureSyscallThroughLayer(k)
	down := through - direct
	if down < 0 {
		down = 0
	}
	return Table34{
		ProcedureCall:   MeasureProcedureCall(),
		InterfaceCall:   MeasureInterfaceCall(),
		InterceptReturn: MeasureInterceptReturn(k),
		Downcall:        down,
	}, nil
}

// Table35Ops lists the system call patterns of Table 3-5 with the
// repetition counts used by the harness.
var Table35Ops = []struct {
	Name string
	Op   string
	N    int
}{
	{"getpid()", "getpid", 20000},
	{"gettimeofday()", "gettimeofday", 20000},
	{"fstat()", "fstat", 10000},
	{"read() 1K of data", "read1k", 5000},
	{"stat()", "stat", 5000},
	{"fork(), wait(), _exit()", "fork", 400},
	{"execve()", "execve", 400},
}

// Table35Row is one measured row: per-call cost without and with the
// measurement (null) agent.
type Table35Row struct {
	Name          string
	Without, With time.Duration
	Overhead      time.Duration
}

// RunTable35 measures every row of Table 3-5.
func RunTable35() ([]Table35Row, error) {
	var rows []Table35Row
	for _, op := range Table35Ops {
		k, err := World()
		if err != nil {
			return nil, err
		}
		bare, err := RunBench(k, nil, op.Op, op.N)
		if err != nil {
			return nil, err
		}
		agents, err := AgentStack(k, "null")
		if err != nil {
			return nil, err
		}
		with, err := RunBench(k, agents, op.Op, op.N)
		if err != nil {
			return nil, err
		}
		row := Table35Row{
			Name:    op.Name,
			Without: bare / time.Duration(op.N),
			With:    with / time.Duration(op.N),
		}
		row.Overhead = row.With - row.Without
		rows = append(rows, row)
	}
	return rows, nil
}
