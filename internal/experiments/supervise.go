package experiments

import (
	"fmt"
	"io"
	"time"

	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// The supervision cost table ("sup"): what the agent supervisor costs at
// each point of the dispatch path. The contract under test is
// pay-per-use — installing a supervisor must not slow the uninterposed
// fast path (idle vs off), and the supervised interposed leg should add
// only the containment bookkeeping (strict vs layer). The deadline row
// shows the price of the goroutine-per-upcall variant, which is why
// deadlines default to off.

// SupRow is one measured supervision configuration.
type SupRow struct {
	Name string
	Per  time.Duration
}

// RunSupervised measures the supervision cost rows, each in a fresh
// world so caches and plans cannot leak across configurations.
func RunSupervised() ([]SupRow, error) {
	type cfg struct {
		name      string
		layer     bool // install a pass-through layer on the call path
		supervise bool
		deadline  time.Duration
	}
	cfgs := []cfg{
		{name: "getpid()/off"},
		{name: "getpid()/idle", supervise: true},
		{name: "getpid()/layer", layer: true},
		{name: "getpid()/strict", layer: true, supervise: true},
		{name: "getpid()/deadline", layer: true, supervise: true, deadline: time.Second},
	}
	var rows []SupRow
	for _, c := range cfgs {
		k, err := World()
		if err != nil {
			return nil, err
		}
		p := measureProc(k)
		if c.layer {
			layer := kernel.NewEmuLayer(passThrough{})
			layer.RegisterAll()
			p.PushEmulation(layer)
		}
		if c.supervise {
			k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
				Mode:     kernel.SuperviseStrict,
				Deadline: c.deadline,
			}))
		}
		rows = append(rows, SupRow{
			Name: c.name,
			Per:  Measure(func() { p.Syscall(sys.SYS_getpid, sys.Args{}) }),
		})
	}
	return rows, nil
}

// PrintSup renders the supervision cost table.
func PrintSup(w io.Writer, rows []SupRow) {
	fmt.Fprintln(w, "Supervision cost (getpid, host-driven):")
	fmt.Fprintf(w, "  %-34s %12s\n", "configuration", "per call")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %12v\n", r.Name, r.Per)
	}
	fmt.Fprintln(w)
}

// SupEntries converts the rows for the bench JSON / baseline check.
func SupEntries(rows []SupRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "sup", Row: r.Name, NsPerOp: r.Per.Nanoseconds()})
	}
	return es
}
