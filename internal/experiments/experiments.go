// Package experiments regenerates the paper's evaluation: every table in
// §3 of "Interposition Agents" (Jones, SOSP '93), measured against this
// reproduction. The cmd/experiments binary prints the tables; the
// repository's benchmarks reuse the same workload runners.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"interpose/internal/agents/dfstrace"
	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/timex"
	"interpose/internal/agents/trace"
	"interpose/internal/agents/union"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/world"
)

// WorldSpec declares the benchmark world: the full application set plus
// the benchmark fixtures. Tables needing more state append Setup hooks.
func WorldSpec() world.Spec {
	s := apps.Spec()
	s.Setup = append(s.Setup, func(k *kernel.Kernel) error {
		return apps.SetupBenchFiles(k)
	})
	return s
}

// World boots a full application world with the benchmark fixtures — a
// thin caller of the world lifecycle layer.
func World() (*kernel.Kernel, error) {
	w, err := world.Boot(WorldSpec())
	if err != nil {
		return nil, err
	}
	return w.Kernel(), nil
}

// AgentStack builds one of the paper's agent configurations by name:
// "none", "timex", "trace", "union", or "null" (the measurement agent).
// The returned io discard flag indicates trace output should be swallowed.
func AgentStack(k *kernel.Kernel, name string) ([]core.Agent, error) {
	switch name {
	case "none":
		return nil, nil
	case "timex":
		a, err := timex.New("3600")
		if err != nil {
			return nil, err
		}
		return []core.Agent{a}, nil
	case "trace":
		return []core.Agent{trace.New()}, nil
	case "union":
		// The union view used by the workloads: it interposes on the vast
		// majority of system calls and uses the additional toolkit layers.
		a, err := union.New("/view=/doc:/src")
		if err != nil {
			return nil, err
		}
		return []core.Agent{a}, nil
	case "null", "time_symbolic":
		return []core.Agent{nullagent.New()}, nil
	}
	return nil, fmt.Errorf("experiments: unknown agent stack %q", name)
}

// runChecked runs a program to completion, failing on nonzero exit.
func runChecked(k *kernel.Kernel, agents []core.Agent, path string, argv []string) error {
	st, out, err := core.Run(k, agents, path, argv, []string{"PATH=/bin"})
	if err != nil {
		return err
	}
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		return fmt.Errorf("experiments: %v exited %#x: %.400s", argv, st, out)
	}
	return nil
}

// SetupScribe generates the dissertation manuscript (once per world).
// The default shape yields a manuscript of roughly 100 KB.
func SetupScribe(k *kernel.Kernel) (string, error) {
	return apps.GenDissertation(k, "/doc", 8, 4, 6)
}

// RunScribe formats the dissertation under the given agents, returning the
// elapsed time (Table 3-2's unit of work).
func RunScribe(k *kernel.Kernel, agents []core.Agent, manuscript string) (time.Duration, error) {
	start := time.Now()
	err := runChecked(k, agents, "/bin/scribe", []string{"scribe", manuscript})
	return time.Since(start), err
}

// SetupMake generates the make-8-programs tree (once per build, since a
// build dirties it).
func SetupMake(k *kernel.Kernel, programs int) error {
	return apps.GenMakeTree(k, "/src", programs)
}

// CleanMake removes build outputs so the next run rebuilds everything.
func CleanMake(k *kernel.Kernel, programs int) error {
	for i := 1; i <= programs; i++ {
		for _, suffix := range []string{"", "_main.o", "_sub.o", "_main.i", "_sub.i", "_main.s", "_sub.s"} {
			if err := k.Remove(fmt.Sprintf("/src/prog%d%s", i, suffix)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunMake builds the tree under the given agents (Table 3-3's unit of
// work), returning the elapsed time.
func RunMake(k *kernel.Kernel, agents []core.Agent) (time.Duration, error) {
	start := time.Now()
	err := runChecked(k, agents, "/bin/sh", []string{"sh", "-c", "cd /src; mk all"})
	return time.Since(start), err
}

// RunMakeJ builds the tree with mk -j jobs (the scalability table's unit
// of work), returning the elapsed time. jobs=1 degenerates to RunMake.
func RunMakeJ(k *kernel.Kernel, agents []core.Agent, jobs int) (time.Duration, error) {
	start := time.Now()
	cmd := fmt.Sprintf("cd /src; mk -j %d all", jobs)
	err := runChecked(k, agents, "/bin/sh", []string{"sh", "-c", cmd})
	return time.Since(start), err
}

// RunBench runs the bench program: n repetitions of op under agents.
func RunBench(k *kernel.Kernel, agents []core.Agent, op string, n int) (time.Duration, error) {
	start := time.Now()
	err := runChecked(k, agents, "/bin/bench", []string{"bench", op, fmt.Sprint(n)})
	return time.Since(start), err
}

// DFSTraceWorkload runs the AFS-benchmark-shaped filesystem workload used
// for the §3.5.3 comparison (the "bench stat" phase mirrors the AFS
// benchmark's heavy pathname traffic; the shell phase adds the copy and
// scan passes).
func DFSTraceWorkload(k *kernel.Kernel, agents []core.Agent) (time.Duration, error) {
	start := time.Now()
	if _, err := RunBench(k, agents, "stat", 10000); err != nil {
		return 0, err
	}
	script := "mkdir /tmp/phase1; cp /src/Makefile /tmp/phase1/Makefile; " +
		"ls /src; cat /src/defs.h; " +
		"cp /src/prog1_main.c /tmp/phase1/x.c; grep main /tmp/phase1/x.c; " +
		"rm /tmp/phase1/x.c; rm /tmp/phase1/Makefile; rm -r /tmp/phase1"
	for pass := 0; pass < 3; pass++ {
		if err := runChecked(k, agents, "/bin/sh", []string{"sh", "-c", script}); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// DFSTraceResult reports the §3.5.3 comparison: elapsed times untraced,
// under kernel tracing, and under the dfstrace agent, plus record counts.
type DFSTraceResult struct {
	Base, Kernel, Agent         time.Duration
	KernelRecords, AgentRecords int
}

// RunDFSTraceComparison measures the §3.5.3 comparison, interleaving the
// three configurations across rounds to cancel process-wide drift.
func RunDFSTraceComparison() (DFSTraceResult, error) {
	var res DFSTraceResult
	k, err := World()
	if err != nil {
		return res, err
	}
	if err := SetupMake(k, 2); err != nil {
		return res, err
	}

	kcl := dfstrace.NewCollector()
	acl := dfstrace.NewCollector()
	agent := dfstrace.New(acl)

	runCfg := func(cfg string) (time.Duration, error) {
		switch cfg {
		case "base":
			return DFSTraceWorkload(k, nil)
		case "kernel":
			k.SetTracer(dfstrace.NewKernelTracer(kcl))
			defer k.SetTracer(nil)
			return DFSTraceWorkload(k, nil)
		default:
			return DFSTraceWorkload(k, []core.Agent{agent})
		}
	}
	// Discarded warm-up round, then timed interleaved rounds.
	for _, cfg := range []string{"base", "kernel", "agent"} {
		if _, err := runCfg(cfg); err != nil {
			return res, err
		}
	}
	const rounds = 9
	for r := 0; r < rounds; r++ {
		for _, cfg := range []string{"base", "kernel", "agent"} {
			runtime.GC()
			kcl.Reset()
			acl.Reset()
			d, err := runCfg(cfg)
			if err != nil {
				return res, err
			}
			switch cfg {
			case "base":
				res.Base += d
			case "kernel":
				res.Kernel += d
				res.KernelRecords = kcl.Len()
			default:
				res.Agent += d
				res.AgentRecords = acl.Len()
			}
		}
	}
	res.Base /= rounds
	res.Kernel /= rounds
	res.Agent /= rounds
	return res, nil
}
