package experiments

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
)

// Statement counting behind Table 3-1. The paper counted semicolons in C++
// source as a statement proxy; the Go analog counts AST statements plus
// declarations.

// repoRoot locates the repository source tree from this file's position.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// CountStatements parses the named Go files and counts their statements:
// every ast.Stmt except plain blocks, plus one per declaration — the
// closest analog to the paper's semicolon metric.
func CountStatements(files []string) (int, error) {
	fset := token.NewFileSet()
	total := 0
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f, nil, 0)
		if err != nil {
			return 0, fmt.Errorf("experiments: parse %s: %w", f, err)
		}
		ast.Inspect(parsed, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BlockStmt:
				// A block is punctuation, not a statement.
			case ast.Stmt:
				total++
			case *ast.FuncDecl, *ast.GenDecl:
				total++
			}
			return true
		})
	}
	return total, nil
}

// CountDir counts the statements in every non-test Go file of a package
// directory.
func CountDir(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return 0, err
	}
	var files []string
	for _, m := range matches {
		if filepath.Ext(m) == ".go" && !isTestFile(m) {
			files = append(files, m)
		}
	}
	return CountStatements(files)
}

func isTestFile(path string) bool {
	base := filepath.Base(path)
	return len(base) > 8 && base[len(base)-8:] == "_test.go"
}

// Toolkit layer groupings, mirroring the paper's accounting:
// "the symbolic system call and lower levels" vs the descriptor, open
// object, pathname and directory levels used by the union agent.

func corePath(names ...string) []string {
	dir := filepath.Join(repoRoot(), "internal", "core")
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// SymbolicLevelFiles are the symbolic system call layer and everything
// below it.
func SymbolicLevelFiles() []string {
	return corePath("doc.go", "boilerplate.go", "numeric.go", "symbolic.go", "defaults.go", "exec.go")
}

// ObjectLevelFiles are the additional descriptor, open object, pathname
// and directory layers.
func ObjectLevelFiles() []string {
	return corePath("descriptor.go", "openobj.go", "pathname.go", "directory.go", "downutil.go")
}

// Table31Row is one agent's code-size accounting.
type Table31Row struct {
	Agent    string
	Toolkit  int
	Specific int
	Total    int
}

// RunTable31 computes the agent size table.
func RunTable31() ([]Table31Row, error) {
	symbolic, err := CountStatements(SymbolicLevelFiles())
	if err != nil {
		return nil, err
	}
	object, err := CountStatements(ObjectLevelFiles())
	if err != nil {
		return nil, err
	}
	agentsDir := filepath.Join(repoRoot(), "internal", "agents")
	rows := []Table31Row{}
	for _, a := range []struct {
		name    string
		toolkit int
	}{
		{"timex", symbolic},
		{"trace", symbolic},
		{"union", symbolic + object},
	} {
		specific, err := CountDir(filepath.Join(agentsDir, a.name))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table31Row{
			Agent:    a.name,
			Toolkit:  a.toolkit,
			Specific: specific,
			Total:    a.toolkit + specific,
		})
	}
	return rows, nil
}

// DFSTraceSizes compares the statement counts of the two tracing
// implementations (the paper's "1627 vs 1584 statements" observation).
// The kernel-based implementation is the tracer plumbing (tracer.go) plus
// every hook call site scattered through the kernel's system call
// implementations — the analog of the original's "modification of 26
// kernel files ... under conditional compilation switches".
func DFSTraceSizes() (kernelImpl, agentImpl int, err error) {
	kernelImpl, err = CountStatements([]string{
		filepath.Join(repoRoot(), "internal", "kernel", "tracer.go"),
	})
	if err != nil {
		return 0, 0, err
	}
	hooks, err := CountKernelTraceHooks()
	if err != nil {
		return 0, 0, err
	}
	kernelImpl += hooks
	agentImpl, err = CountDir(filepath.Join(repoRoot(), "internal", "agents", "dfstrace"))
	return kernelImpl, agentImpl, err
}

// CountKernelTraceHooks counts the k.trace(...) hook call sites inserted
// into the kernel's system call implementations.
func CountKernelTraceHooks() (int, error) {
	matches, err := filepath.Glob(filepath.Join(repoRoot(), "internal", "kernel", "*.go"))
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	hooks := 0
	for _, m := range matches {
		if isTestFile(m) || filepath.Base(m) == "tracer.go" {
			continue
		}
		parsed, err := parser.ParseFile(fset, m, nil, 0)
		if err != nil {
			return 0, err
		}
		ast.Inspect(parsed, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if ok && (sel.Sel.Name == "trace" || sel.Sel.Name == "traceLocked") {
				hooks++
			}
			return true
		})
	}
	return hooks, nil
}
