package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"interpose/internal/telemetry"
)

// ObsResult is the observability table: the Table 3-3 make workload run
// under the trace agent with the flight-recorder substrate enabled, and
// the telemetry snapshot it produced.
type ObsResult struct {
	Programs int
	Elapsed  time.Duration
	Snap     telemetry.Snapshot
}

// RunObs runs the make workload under the trace agent with a telemetry
// registry installed, and returns the snapshot: where the time went, per
// instance of the system interface (kernel vs each agent layer), and the
// per-syscall latency distribution.
func RunObs(programs int) (ObsResult, error) {
	res := ObsResult{Programs: programs}
	k, err := World()
	if err != nil {
		return res, err
	}
	if err := SetupMake(k, programs); err != nil {
		return res, err
	}
	agents, err := AgentStack(k, "trace")
	if err != nil {
		return res, err
	}
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)
	defer k.SetTelemetry(nil)
	res.Elapsed, err = RunMake(k, agents)
	if err != nil {
		return res, err
	}
	res.Snap = reg.Snapshot()
	return res, nil
}

// PrintObs writes the observability table: per-layer attribution of the
// run's wall time, then the busiest system calls with their latency
// distribution summaries.
func PrintObs(w io.Writer, res ObsResult) {
	fmt.Fprintf(w, "Observability: make %d programs under the trace agent (elapsed %s)\n\n",
		res.Programs, fmtDur(res.Elapsed))

	fmt.Fprintf(w, "  Per-layer attribution (self time, exclusive of lower instances)\n")
	var total time.Duration
	for _, l := range res.Snap.Layers {
		total += l.Self
	}
	fmt.Fprintf(w, "  %-12s %12s %14s %10s\n", "Instance", "Calls", "Self", "% of self")
	for _, l := range res.Snap.Layers {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(l.Self) / float64(total)
		}
		fmt.Fprintf(w, "  %-12s %12d %14s %9.1f%%\n", l.Name, l.Calls, fmtDur(l.Self), pct)
	}

	fmt.Fprintf(w, "\n  Busiest system calls (%d total, %d errors)\n", res.Snap.Total, res.Snap.Errs)
	fmt.Fprintf(w, "  %-16s %10s %8s %10s %10s %10s\n", "call", "count", "errs", "mean", "p99", "max")
	rows := res.Snap.Syscalls
	if len(rows) > 12 {
		rows = rows[:12]
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %10d %8d %10s %10s %10s\n",
			r.Name, r.Count, r.Errs, fmtDur(r.Mean), fmtDur(r.P99), fmtDur(r.Max))
	}
	fmt.Fprintln(w)
}

// BenchEntry is one measured row of a table, exported by the bench JSON
// mode so successive runs can be diffed mechanically.
type BenchEntry struct {
	Table   string `json:"table"`
	Row     string `json:"row"`
	NsPerOp int64  `json:"ns_per_op"`
}

// MacroEntries converts a macro table's rows to bench entries.
func MacroEntries(table string, rows []MacroRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: table, Row: r.Agent, NsPerOp: r.Elapsed.Nanoseconds()})
	}
	return es
}

// WriteBenchJSON writes the collected entries to path as indented JSON.
func WriteBenchJSON(path string, entries []BenchEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
