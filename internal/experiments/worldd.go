package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"interpose/internal/apps"
	"interpose/internal/world"
	"interpose/internal/worldd"
)

// The multi-tenancy table ("worldd"): what the world lifecycle layer and
// the daemon on top of it cost. Three claims are measured:
//
//   - boot: booting one world (full application set, no optional
//     facilities) — the unit of tenant creation;
//   - session: one exec round trip through the daemon's HTTP handler —
//     request decode, world lock, process launch, wait, response encode
//     — which inverts to the daemon's sessions/sec on one core;
//   - idle-mem/world: the per-world heap floor with a 10,000-world idle
//     fleet resident in one process, measured as the GC-settled heap
//     delta divided by the fleet size. This is the number that says
//     whether "thousands of tenants per process" is real, and it is why
//     telemetry registries (latency histograms, flight rings — ~150 KB
//     a world) are opt-in per tenant rather than always-on.
//
// The session and idle-mem rows are guarded against BENCH_BASELINE.json
// by the -check gate; the boot row rides along unguarded (it is noisy on
// shared runners and the crash table already relation-guards boot cost).

// WorlddRow is one measured row of the worldd table. Value is in
// nanoseconds for the timed rows and bytes for the memory row.
type WorlddRow struct {
	Name  string
	Value int64
}

// worlddFleet is the idle-fleet size of the idle-mem row.
const worlddFleet = 10000

// worlddSessions is the per-round session count of the session row.
const worlddSessions = 200

// worlddBoots is the world count of the boot row.
const worlddBoots = 500

// heapAlloc returns the GC-settled live heap.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// apiCall drives one request through the daemon handler, decoding the
// JSON response into out when non-nil.
func apiCall(h http.Handler, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code >= 300 {
		return fmt.Errorf("worldd table: %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
	}
	if out != nil {
		return json.Unmarshal(rec.Body.Bytes(), out)
	}
	return nil
}

// RunWorlddTable measures the worldd table.
func RunWorlddTable(runs int) ([]WorlddRow, error) {
	// Boot: the world-layer creation cost, no daemon in the way.
	worlds := make([]*world.World, 0, worlddBoots)
	start := time.Now()
	for i := 0; i < worlddBoots; i++ {
		w, err := world.Boot(apps.Spec())
		if err != nil {
			return nil, fmt.Errorf("worldd table: boot: %w", err)
		}
		worlds = append(worlds, w)
	}
	bootPer := time.Since(start) / worlddBoots
	for _, w := range worlds {
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("worldd table: close: %w", err)
		}
	}

	// Session: the full daemon round trip on one long-lived tenant. One
	// warm-up round, then runs timed rounds, like measureStacks.
	// Health disabled: a watchdog probing a 10,000-world idle fleet
	// would measure the probes, not the daemon (the resil table prices
	// the watchdog on its own).
	srv, err := worldd.New(worldd.Config{
		Register: apps.Register,
		Health:   worldd.HealthConfig{Disabled: true},
	})
	if err != nil {
		return nil, fmt.Errorf("worldd table: %w", err)
	}
	h := srv.Handler()
	var info worldd.Info
	if err := apiCall(h, "POST", "/1.0/worlds", []byte(`{"name":"bench"}`), &info); err != nil {
		return nil, err
	}
	execBody := []byte(`{"argv":["true"]}`)
	session := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < worlddSessions; i++ {
			var res world.ExecResult
			if err := apiCall(h, "POST", "/1.0/worlds/"+info.ID+"/exec", execBody, &res); err != nil {
				return 0, err
			}
			if res.Status != 0 {
				return 0, fmt.Errorf("worldd table: session exited %d", res.Status)
			}
		}
		return time.Since(start), nil
	}
	if _, err := session(); err != nil { // warm-up
		return nil, err
	}
	// Best-of-runs, with a GC before each round: the 500-boot loop above
	// leaves a heap's worth of dead worlds, and this row is guarded by
	// the baseline gate — a mean would let one collection pause or
	// scheduler stall on a shared runner read as a regression, while the
	// best round is the cost the daemon actually pays.
	var sessionBest time.Duration
	for r := 0; r < runs; r++ {
		runtime.GC()
		d, err := session()
		if err != nil {
			return nil, err
		}
		if r == 0 || d < sessionBest {
			sessionBest = d
		}
	}
	sessionPer := sessionBest / worlddSessions

	// Idle fleet: the per-world heap floor at 10k worlds, created and
	// later drained through the daemon itself so the table and teardown
	// paths are the ones a deployment pays.
	base := heapAlloc()
	createBody := []byte(`{"name":"idle"}`)
	for i := 0; i < worlddFleet; i++ {
		if err := apiCall(h, "POST", "/1.0/worlds", createBody, nil); err != nil {
			return nil, err
		}
	}
	perWorld := int64((heapAlloc() - base) / worlddFleet)
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, fmt.Errorf("worldd table: drain: %w", err)
	}

	return []WorlddRow{
		{Name: "boot", Value: bootPer.Nanoseconds()},
		{Name: "session", Value: sessionPer.Nanoseconds()},
		{Name: "idle-mem/world", Value: perWorld},
	}, nil
}

// PrintWorldd renders the worldd table.
func PrintWorldd(w io.Writer, rows []WorlddRow) {
	fmt.Fprintf(w, "Multi-tenant worlds (lifecycle layer + worldd, %d-world idle fleet):\n", worlddFleet)
	for _, r := range rows {
		switch r.Name {
		case "session":
			fmt.Fprintf(w, "  %-16s %10dns   (%.0f sessions/sec)\n", r.Name, r.Value, 1e9/float64(r.Value))
		case "idle-mem/world":
			fmt.Fprintf(w, "  %-16s %10dB   (%.1f MB for the fleet)\n", r.Name, r.Value,
				float64(r.Value)*worlddFleet/1e6)
		default:
			fmt.Fprintf(w, "  %-16s %10dns\n", r.Name, r.Value)
		}
	}
	fmt.Fprintln(w)
}

// WorlddEntries converts the rows for the bench JSON / baseline check.
func WorlddEntries(rows []WorlddRow) []BenchEntry {
	var es []BenchEntry
	for _, r := range rows {
		es = append(es, BenchEntry{Table: "worldd", Row: r.Name, NsPerOp: r.Value})
	}
	return es
}
