package kernel_test

import (
	"testing"
	"time"

	"interpose/internal/libc"
	"interpose/internal/sys"
)

func TestAlarmDeliversSIGALRM(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		got := false
		lt.Signal(sys.SIGALRM, func(*libc.T, int) { got = true })
		lt.Setitimer(sys.Timeval{Usec: 10_000}, sys.Timeval{})
		for i := 0; i < 1000 && !got; i++ {
			lt.Sigpause(0)
		}
		lt.Printf("alarm=%v\n", got)
		return 0
	})
	if out := expectOK(t, st, out); out != "alarm=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestAlarmDefaultActionTerminates(t *testing.T) {
	st, _ := runFn(t, func(lt *libc.T) int {
		lt.Alarm(1) // SIGALRM default action is to terminate
		for {
			lt.Sigpause(0)
		}
	})
	if sys.WIfExited(st) || sys.WTermSig(st) != sys.SIGALRM {
		t.Fatalf("status = %#x", st)
	}
}

func TestSleepSleeps(t *testing.T) {
	start := time.Now()
	st, out := runFn(t, func(lt *libc.T) int {
		lt.SleepUsec(50_000)
		lt.Printf("woke\n")
		return 0
	})
	if out := expectOK(t, st, out); out != "woke\n" {
		t.Fatalf("out = %q", out)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("sleep returned after only %v", elapsed)
	}
}

func TestAlarmCancel(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Ignore(sys.SIGALRM)
		lt.Alarm(1000)
		it, err := lt.Getitimer()
		if err != sys.OK || it.Value.Sec == 0 {
			lt.Printf("not armed: %+v\n", it)
			return 1
		}
		remaining := lt.Alarm(0) // cancel, returns remaining seconds
		it, _ = lt.Getitimer()
		lt.Printf("remaining~1000=%v disarmed=%v\n",
			remaining > 990 && remaining <= 1000, it.Value == sys.Timeval{})
		return 0
	})
	if out := expectOK(t, st, out); out != "remaining~1000=true disarmed=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestPeriodicTimer(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		ticks := 0
		lt.Signal(sys.SIGALRM, func(*libc.T, int) { ticks++ })
		lt.Setitimer(sys.Timeval{Usec: 5_000}, sys.Timeval{Usec: 5_000})
		for ticks < 3 {
			lt.Sigpause(0)
		}
		lt.Setitimer(sys.Timeval{}, sys.Timeval{}) // disarm
		lt.Printf("ticks>=3\n")
		return 0
	})
	if out := expectOK(t, st, out); out != "ticks>=3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestTimerInterruptsBlockingRead(t *testing.T) {
	// The classic timeout idiom: an alarm breaks a read that would block
	// forever, with EINTR.
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Signal(sys.SIGALRM, func(*libc.T, int) {})
		r, _, _ := lt.Pipe()
		lt.Setitimer(sys.Timeval{Usec: 10_000}, sys.Timeval{})
		_, err := lt.Read(r, make([]byte, 1))
		lt.Printf("read=%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "read=EINTR\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestTimerNotInheritedByFork(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Ignore(sys.SIGALRM)
		lt.Alarm(100)
		pid, _ := lt.Fork(func(ct *libc.T) {
			it, _ := ct.Getitimer()
			if it.Value != (sys.Timeval{}) {
				ct.Printf("child inherited timer\n")
				ct.Exit(1)
			}
			ct.Exit(0)
		})
		_, status, _ := lt.Waitpid(pid)
		lt.Alarm(0)
		lt.Printf("child=%d\n", sys.WExitStatus(status))
		return 0
	})
	if out := expectOK(t, st, out); out != "child=0\n" {
		t.Fatalf("out = %q", out)
	}
}
