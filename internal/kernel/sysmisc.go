package kernel

import (
	"time"

	"interpose/internal/sys"
)

// umaskVal snapshots the file-creation mask.
func (p *Proc) umaskVal() sys.Word {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.umask
}

func (k *Kernel) sysGetpid(p *Proc) (sys.Retval, sys.Errno) {
	return sys.Retval{sys.Word(p.pid)}, sys.OK
}

func (k *Kernel) sysGetppid(p *Proc) (sys.Retval, sys.Errno) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	return sys.Retval{sys.Word(p.ppid)}, sys.OK
}

func (k *Kernel) sysGetuid(p *Proc) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sys.Retval{p.uid}, sys.OK
}

func (k *Kernel) sysGeteuid(p *Proc) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sys.Retval{p.euid}, sys.OK
}

func (k *Kernel) sysGetgid(p *Proc) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sys.Retval{p.gid}, sys.OK
}

func (k *Kernel) sysGetegid(p *Proc) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sys.Retval{p.egid}, sys.OK
}

func (k *Kernel) sysSetuid(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	uid := a[0]
	if p.euid != 0 && uid != p.uid {
		return sys.Retval{}, sys.EPERM
	}
	p.uid, p.euid = uid, uid
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGetgroups(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	groups := append([]uint32(nil), p.groups...)
	p.mu.Unlock()
	n := int(a[0])
	if n == 0 {
		return sys.Retval{sys.Word(len(groups))}, sys.OK
	}
	if n < len(groups) {
		return sys.Retval{}, sys.EINVAL
	}
	buf := make([]byte, 4*len(groups))
	for i, g := range groups {
		buf[4*i] = byte(g)
		buf[4*i+1] = byte(g >> 8)
		buf[4*i+2] = byte(g >> 16)
		buf[4*i+3] = byte(g >> 24)
	}
	if len(buf) > 0 {
		if e := p.CopyOut(a[1], buf); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	return sys.Retval{sys.Word(len(groups))}, sys.OK
}

func (k *Kernel) sysSetgroups(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if !p.cred().Root() {
		return sys.Retval{}, sys.EPERM
	}
	n := int(a[0])
	if n < 0 || n > sys.NGroups {
		return sys.Retval{}, sys.EINVAL
	}
	buf := make([]byte, 4*n)
	if n > 0 {
		if e := p.CopyIn(a[1], buf); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	groups := make([]uint32, n)
	for i := range groups {
		groups[i] = uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 |
			uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
	}
	p.mu.Lock()
	p.groups = groups
	p.mu.Unlock()
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGetpgrp(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	pid := int(a[0])
	k.pmu.Lock()
	defer k.pmu.Unlock()
	target := p
	if pid != 0 {
		t, ok := k.procs[pid]
		if !ok {
			return sys.Retval{}, sys.ESRCH
		}
		target = t
	}
	return sys.Retval{sys.Word(target.pgrp)}, sys.OK
}

func (k *Kernel) sysSetpgrp(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	pid, pgrp := int(a[0]), int(a[1])
	k.pmu.Lock()
	defer k.pmu.Unlock()
	target := p
	if pid != 0 && pid != p.pid {
		t, ok := k.procs[pid]
		if !ok || (t.ppid != p.pid && t != p) {
			return sys.Retval{}, sys.ESRCH
		}
		target = t
	}
	if pgrp < 0 {
		return sys.Retval{}, sys.EINVAL
	}
	if pgrp == 0 {
		pgrp = target.pid
	}
	target.pgrp = pgrp
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSetsid(p *Proc) (sys.Retval, sys.Errno) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	p.pgrp = p.pid
	return sys.Retval{sys.Word(p.pid)}, sys.OK
}

func (k *Kernel) sysUmask(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.umask
	p.umask = a[0] & 0o777
	return sys.Retval{old}, sys.OK
}

func (k *Kernel) sysBrk(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if a[0] == 0 {
		return sys.Retval{p.as.Brk()}, sys.OK
	}
	if e := p.as.SetBrk(a[0]); e != sys.OK {
		return sys.Retval{}, e
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGethostname(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	k.pmu.Lock()
	name := k.hostname
	k.pmu.Unlock()
	n := int(a[1])
	if n <= 0 {
		return sys.Retval{}, sys.EINVAL
	}
	b := append([]byte(name), 0)
	if len(b) > n {
		b = b[:n]
		b[n-1] = 0
	}
	return sys.Retval{}, p.CopyOut(a[0], b)
}

func (k *Kernel) sysSethostname(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if !p.cred().Root() {
		return sys.Retval{}, sys.EPERM
	}
	if a[1] >= sys.HostnameMax {
		return sys.Retval{}, sys.EINVAL
	}
	buf := make([]byte, a[1])
	if e := p.CopyIn(a[0], buf); e != sys.OK {
		return sys.Retval{}, e
	}
	k.pmu.Lock()
	k.hostname = string(buf)
	k.pmu.Unlock()
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGettimeofday(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	now := k.Now()
	if a[0] != 0 {
		var b [sys.TimevalSize]byte
		sys.Timeval{Sec: uint32(now.Unix()), Usec: uint32(now.Nanosecond() / 1000)}.Encode(b[:])
		if e := p.CopyOut(a[0], b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if a[1] != 0 {
		// struct timezone{ minuteswest, dsttime int32 }: report UTC.
		if e := p.CopyOut(a[1], make([]byte, 8)); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSettimeofday(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if !p.cred().Root() {
		return sys.Retval{}, sys.EPERM
	}
	if a[0] == 0 {
		return sys.Retval{}, sys.EINVAL
	}
	var b [sys.TimevalSize]byte
	if e := p.CopyIn(a[0], b[:]); e != sys.OK {
		return sys.Retval{}, e
	}
	tv := sys.DecodeTimeval(b[:])
	target := time.Unix(int64(tv.Sec), int64(tv.Usec)*1000)
	storeInt64((*int64)(&k.timeOffset), int64(time.Until(target)))
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGetrusage(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	var ru sys.Rusage
	switch a[0] {
	case sys.RUSAGE_SELF:
		ru = p.rusageSelf()
	case sys.RUSAGE_CHILDREN:
		k.pmu.Lock()
		ru = p.childrenRu
		k.pmu.Unlock()
	default:
		return sys.Retval{}, sys.EINVAL
	}
	var b [sys.RusageSize]byte
	ru.Encode(b[:])
	return sys.Retval{}, p.CopyOut(a[1], b[:])
}
