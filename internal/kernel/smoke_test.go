package kernel

import (
	"strings"
	"testing"

	"interpose/internal/image"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// testWorld boots a kernel with a few programs registered.
func testWorld(t *testing.T) *Kernel {
	t.Helper()
	reg := image.NewRegistry()
	reg.Register("hello", libc.Main(func(t *libc.T) int {
		t.Printf("hello %s\n", strings.Join(t.Args[1:], " "))
		return 0
	}))
	reg.Register("exitcode", libc.Main(func(t *libc.T) int {
		return 42
	}))
	reg.Register("forker", libc.Main(func(lt *libc.T) int {
		pid, err := lt.Fork(func(ct *libc.T) {
			ct.Printf("child %d of %d\n", ct.Getpid(), ct.Getppid())
			ct.Exit(7)
		})
		if err != sys.OK {
			lt.Errorf("fork: %v", err)
			return 1
		}
		wpid, status, err := lt.Waitpid(pid)
		if err != sys.OK || wpid != pid || sys.WExitStatus(status) != 7 {
			lt.Errorf("wait: pid=%d status=%d err=%v", wpid, status, err)
			return 1
		}
		lt.Printf("reaped %d\n", wpid)
		return 0
	}))
	reg.Register("execer", libc.Main(func(lt *libc.T) int {
		err := lt.Exec("/bin/hello", []string{"hello", "from", "exec"}, nil)
		lt.Errorf("exec failed: %v", err)
		return 1
	}))
	reg.Register("piper", libc.Main(func(lt *libc.T) int {
		r, w, err := lt.Pipe()
		if err != sys.OK {
			return 1
		}
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Close(r)
			ct.WriteString(w, "through the pipe")
			ct.Exit(0)
		})
		lt.Close(w)
		b := make([]byte, 64)
		var got []byte
		for {
			n, err := lt.Read(r, b)
			if err != sys.OK {
				return 1
			}
			if n == 0 {
				break
			}
			got = append(got, b[:n]...)
		}
		lt.Waitpid(pid)
		lt.Printf("got: %s\n", got)
		return 0
	}))
	k := New(reg)
	for _, name := range []string{"hello", "exitcode", "forker", "execer", "piper"} {
		if err := k.InstallProgram("/bin/"+name, name); err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
	}
	return k
}

func runProg(t *testing.T, k *Kernel, path string, argv ...string) (sys.Word, string) {
	t.Helper()
	k.Console().TakeOutput()
	p, err := k.Spawn(path, argv, []string{"PATH=/bin"})
	if err != nil {
		t.Fatalf("spawn %s: %v", path, err)
	}
	status := k.WaitExit(p)
	return status, k.Console().TakeOutput()
}

func TestHelloWorld(t *testing.T) {
	k := testWorld(t)
	status, out := runProg(t, k, "/bin/hello", "hello", "world")
	if !sys.WIfExited(status) || sys.WExitStatus(status) != 0 {
		t.Fatalf("status = %#x", status)
	}
	if out != "hello world\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestExitCode(t *testing.T) {
	k := testWorld(t)
	status, _ := runProg(t, k, "/bin/exitcode")
	if sys.WExitStatus(status) != 42 {
		t.Fatalf("status = %#x", status)
	}
}

func TestForkWait(t *testing.T) {
	k := testWorld(t)
	status, out := runProg(t, k, "/bin/forker")
	if sys.WExitStatus(status) != 0 {
		t.Fatalf("status = %#x, out=%q", status, out)
	}
	if !strings.Contains(out, "child") || !strings.Contains(out, "reaped") {
		t.Fatalf("output = %q", out)
	}
}

func TestExec(t *testing.T) {
	k := testWorld(t)
	status, out := runProg(t, k, "/bin/execer")
	if sys.WExitStatus(status) != 0 {
		t.Fatalf("status = %#x out=%q", status, out)
	}
	if out != "hello from exec\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestPipe(t *testing.T) {
	k := testWorld(t)
	status, out := runProg(t, k, "/bin/piper")
	if sys.WExitStatus(status) != 0 {
		t.Fatalf("status = %#x out=%q", status, out)
	}
	if out != "got: through the pipe\n" {
		t.Fatalf("output = %q", out)
	}
}
