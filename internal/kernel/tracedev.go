package kernel

import (
	"bytes"
	"strconv"
	"strings"
	"sync"

	"interpose/internal/sys"
)

// traceDev is the /dev/trace synthetic device: the guest-visible window
// onto the kernel's causal span tracer, mirroring /dev/metrics. A read
// at offset zero renders the current span buffer as Chrome trace-event
// JSON (loadable in Perfetto) and caches the text for sequential
// readers; with no tracer installed reads report "tracing: disabled".
//
// Unlike /dev/metrics, the device is also a control surface: guests can
// retune the tracer from inside the world,
//
//	echo 'sample 0.05' > /dev/trace   # set the head-sampling probability
//	echo clear > /dev/trace           # drop buffered spans
//
// which is interposition's observability story pointed at itself — an
// unmodified shell can turn tracing up around the region it cares about.
type traceDev struct {
	k *Kernel

	mu     sync.Mutex
	render []byte
}

// Seekable marks the device's contents as addressed by file offset (see
// metricsDev.Seekable).
func (d *traceDev) Seekable() bool { return true }

func (d *traceDev) Read(p []byte, off int64) (int, sys.Errno) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off == 0 || d.render == nil {
		var buf bytes.Buffer
		if t := d.k.trc.Load(); t != nil {
			if err := t.WriteChrome(&buf); err != nil {
				return 0, sys.EIO
			}
		} else {
			buf.WriteString("tracing: disabled\n")
		}
		d.render = buf.Bytes()
	}
	if off >= int64(len(d.render)) {
		return 0, sys.OK
	}
	return copy(p, d.render[off:]), sys.OK
}

func (d *traceDev) Write(p []byte, off int64) (int, sys.Errno) {
	t := d.k.trc.Load()
	if t == nil {
		return 0, sys.ENXIO // no tracer behind the device
	}
	for _, line := range strings.Split(string(p), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "clear" && len(fields) == 1:
			t.Clear()
		case fields[0] == "sample" && len(fields) == 2:
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v < 0 || v > 1 {
				return 0, sys.EINVAL
			}
			t.SetSample(v)
		default:
			return 0, sys.EINVAL
		}
	}
	return len(p), sys.OK
}

func (d *traceDev) Ioctl(req, arg sys.Word, c sys.Ctx) sys.Errno {
	return sys.ENOTTY
}
