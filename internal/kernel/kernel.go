// Package kernel implements the simulated 4.3BSD kernel: the default,
// lowest-level instance of the system interface. Processes are goroutines
// with simulated 32-bit address spaces; the kernel provides files,
// pathnames, descriptors, pipes, signals, process groups, and the rest of
// the interface defined in package sys.
//
// The kernel also provides the interception mechanism on which the
// interposition toolkit is built: a per-process stack of emulation layers
// (the analog of Mach 2.5's task_set_emulation), consulted on every system
// call entry, inherited across fork, and preserved across execve.
//
// Internally the kernel uses fine-grained locking in the SMP style: a
// process-table lock for process lifecycle, per-process locks for
// credentials and descriptor tables, per-object locks for pipes and the
// console, and per-wait-object queues (wait.go) so a wakeup only wakes
// its own sleepers. DESIGN.md §8 documents the lock inventory and
// ordering rules.
package kernel

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/image"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	"interpose/internal/trace"
	"interpose/internal/vfs"
)

// Kernel is one simulated machine: a filesystem, a process table, a
// console, and a clock.
type Kernel struct {
	// pmu is the process-table lock: it guards the pid table, pid
	// allocation, the hostname, process genealogy (ppid, pgrp, children),
	// process state transitions, exit status, accumulated child rusage,
	// interval timers, and wait4 coordination. Everything else has moved
	// to narrower locks (see DESIGN.md §8).
	pmu      sync.Mutex
	fs       *vfs.FS
	images   *image.Registry
	procs    map[int]*Proc
	nextPID  int
	hostname string

	// flockMu guards all advisory file-lock state (Inode.LockEx,
	// Inode.LockShared, File.lockHeld) and the single queue of lock
	// waiters; flock is rare enough that one lock for all of it is fine.
	flockMu sync.Mutex
	flockQ  waitQ

	timeOffset time.Duration // settimeofday adjustment
	bootTime   time.Time

	console *Console

	// devices is built by makeTree at boot and frozen before the first
	// process runs; reads take no lock.
	devices map[uint32]vfs.Device

	// tracer, when holding a non-nil Tracer, receives kernel-level
	// file-reference events — the "monolithic, compiled-into-the-kernel"
	// implementation that the paper's §3.5.3 compares against the dfstrace
	// agent.
	tracer atomic.Pointer[tracerBox]

	// tel, when non-nil, receives every syscall's latency, per-layer time
	// attribution, and flight-recorder events. While nil the entire
	// facility costs one atomic pointer load per instrumentation site.
	tel atomic.Pointer[telemetry.Registry]

	// inj, when non-nil, is consulted on the kernel leg of every dispatch
	// — below all emulation layers — and may satisfy or rewrite the call
	// (fault injection). While nil it costs one atomic pointer load.
	inj atomic.Pointer[injectorBox]

	// sup, when non-nil, supervises every agent upcall: panic
	// containment, per-layer circuit breakers, and optional deadlines
	// (supervise.go). It is consulted only on the interposed leg of
	// dispatch, so the uninterposed fast path stays one atomic plan
	// load; while nil the interposed leg pays one atomic pointer load.
	sup atomic.Pointer[Supervisor]

	// trc, when non-nil, is the causal span tracer: sampled syscalls open
	// root spans, interested layer upcalls and the kernel leg open child
	// spans, and causal edges (fork, exec, pipe, signal, wait) connect
	// spans across processes (internal/trace, DESIGN.md §11). While nil
	// the facility costs one atomic pointer load per syscall entry.
	trc atomic.Pointer[trace.Tracer]

	// exec memoizes execve's image-header parsing per inode, validated by
	// the inode generation counter (execcache.go).
	exec execCache

	// extraGauges, when non-nil, contributes host-side gauge rows (e.g.
	// the warm-pool hit/miss/size gauges a pooled world reports) to the
	// telemetry snapshot alongside the kernel's own cache gauges, so they
	// surface in /dev/metrics and agentrun -stats.
	extraGauges atomic.Pointer[gaugeSourceBox]

	// crashHook, when non-nil, is invoked at the top of Crash — before
	// any kernel lock is taken — so a machine supervisor (worldd's
	// health watchdog) learns of a crash-freeze the moment it happens
	// instead of on its next poll. The hook must not block.
	crashHook atomic.Pointer[func()]
}

// gaugeSourceBox wraps a gauge function so the atomic pointer has a
// concrete element type.
type gaugeSourceBox struct {
	fn func() []telemetry.NamedCounter
}

// Injector is the kernel-side fault injection hook: consulted after all
// emulation layers, immediately before the kernel's own implementation.
// When handled is true the kernel is bypassed and (rv, err) returned;
// otherwise the call proceeds with the returned arguments.
// fault.Injector implements it.
type Injector interface {
	Inject(c sys.Ctx, num int, a sys.Args) (out sys.Args, rv sys.Retval, err sys.Errno, handled bool)
}

// injectorBox wraps the interface so the atomic pointer has a concrete
// element type.
type injectorBox struct{ inj Injector }

// New boots a kernel: an empty filesystem with the standard directory
// tree and devices, and the given program image registry.
func New(images *image.Registry) *Kernel {
	k := newKernel(images)
	k.fs = vfs.New(k.Now)
	k.makeTree()
	return k
}

// newKernel builds a kernel shell — process table, console, device
// drivers — without a filesystem. New adds an empty tree; Restore
// (checkpoint.go) adds one reconstructed from a snapshot.
func newKernel(images *image.Registry) *Kernel {
	k := &Kernel{
		images:   images,
		procs:    make(map[int]*Proc),
		nextPID:  1,
		hostname: "interpose.sim",
		bootTime: time.Now(),
		console:  newConsole(),
		devices:  make(map[uint32]vfs.Device),
	}
	k.makeDevices()
	return k
}

// Now returns the current simulated time of day (real time adjusted by
// settimeofday).
func (k *Kernel) Now() time.Time {
	return time.Now().Add(time.Duration(atomicLoadOffset(&k.timeOffset)))
}

// The time offset is read on every timestamp; guard it without taking the
// big lock by treating it as an atomic int64.
func atomicLoadOffset(d *time.Duration) time.Duration { return time.Duration(loadInt64((*int64)(d))) }

// FS returns the kernel's filesystem, for test setup and world building.
func (k *Kernel) FS() *vfs.FS { return k.fs }

// Images returns the kernel's program image registry.
func (k *Kernel) Images() *image.Registry { return k.images }

// Console returns the system console device buffers.
func (k *Kernel) Console() *Console { return k.console }

// SetTracer installs (or removes, with nil) the kernel-level file tracer.
func (k *Kernel) SetTracer(t Tracer) {
	k.tracer.Store(&tracerBox{t: t})
}

// SetTelemetry installs (or removes, with nil) the telemetry registry.
// Toggling is safe while processes run; syscalls in flight when the
// registry changes may be only partially recorded. An installed registry
// also samples the kernel's cache counters (VFS name/attribute cache,
// exec image cache) at snapshot time.
func (k *Kernel) SetTelemetry(r *telemetry.Registry) {
	if r != nil {
		r.SetGaugeSource(k.cacheGauges)
	}
	k.tel.Store(r)
}

// cacheGauges samples the kernel's caches for telemetry export. The rows
// appear in the "counters:" section of /dev/metrics and agentrun -stats.
func (k *Kernel) cacheGauges() []telemetry.NamedCounter {
	cs := k.fs.CacheStats()
	eh, em := k.exec.hits.Load(), k.exec.misses.Load()
	out := []telemetry.NamedCounter{
		{Name: "vfs.dentry.hit", Value: cs.Hits},
		{Name: "vfs.dentry.miss", Value: cs.Misses},
		{Name: "vfs.dentry.neghit", Value: cs.NegHits},
		{Name: "vfs.dentry.inval", Value: cs.Invals},
		{Name: "vfs.attr.hit", Value: cs.AttrHit},
		{Name: "vfs.attr.miss", Value: cs.AttrMis},
		{Name: "exec.image.hit", Value: eh},
		{Name: "exec.image.miss", Value: em},
	}
	if s := k.sup.Load(); s != nil {
		out = append(out, s.Gauges()...)
	}
	if t := k.trc.Load(); t != nil {
		spans, dropped := t.Stats()
		out = append(out,
			telemetry.NamedCounter{Name: "trace.spans", Value: spans},
			telemetry.NamedCounter{Name: "trace.dropped", Value: dropped},
			telemetry.NamedCounter{Name: "trace.sample_ppm", Value: uint64(t.SampleRate() * 1e6)},
		)
	}
	if g := k.extraGauges.Load(); g != nil {
		out = append(out, g.fn()...)
	}
	return out
}

// SetExtraGauges installs (or removes, with nil) an additional gauge
// source whose rows ride along with the kernel's cache gauges in every
// telemetry snapshot. One source; a second call replaces the first.
func (k *Kernel) SetExtraGauges(fn func() []telemetry.NamedCounter) {
	if fn == nil {
		k.extraGauges.Store(nil)
		return
	}
	k.extraGauges.Store(&gaugeSourceBox{fn: fn})
}

// AddExtraGauges chains fn onto the current extra gauge source instead
// of replacing it, so independent facilities (a warm pool's gauges, a
// health watchdog's state rows) can each contribute without knowing
// about the other. Rows append in installation order. A nil fn is a
// no-op; SetExtraGauges(nil) still clears the whole chain.
func (k *Kernel) AddExtraGauges(fn func() []telemetry.NamedCounter) {
	if fn == nil {
		return
	}
	for {
		old := k.extraGauges.Load()
		combined := fn
		if old != nil {
			prev := old.fn
			combined = func() []telemetry.NamedCounter {
				return append(prev(), fn()...)
			}
		}
		if k.extraGauges.CompareAndSwap(old, &gaugeSourceBox{fn: combined}) {
			return
		}
	}
}

// Telemetry returns the installed registry, or nil.
func (k *Kernel) Telemetry() *telemetry.Registry {
	return k.tel.Load()
}

// SetSpanTracer installs (or removes, with nil) the causal span tracer.
// Toggling is safe while processes run; calls in flight when the tracer
// changes may be only partially recorded.
func (k *Kernel) SetSpanTracer(t *trace.Tracer) {
	k.trc.Store(t)
}

// SpanTracer returns the installed span tracer, or nil.
func (k *Kernel) SpanTracer() *trace.Tracer {
	return k.trc.Load()
}

// SetInjector installs (or removes, with nil) the kernel-side fault
// injector. Toggling is safe while processes run.
func (k *Kernel) SetInjector(in Injector) {
	if in == nil {
		k.inj.Store(nil)
		return
	}
	k.inj.Store(&injectorBox{inj: in})
}

// lookupDevice finds the driver registered for a device number. The
// device table is immutable after boot, so no lock is needed.
func (k *Kernel) lookupDevice(rdev uint32) vfs.Device {
	return k.devices[rdev]
}

// makeDevices builds the driver table. It runs before the filesystem
// exists so Restore can resolve snapshot device nodes against it.
func (k *Kernel) makeDevices() {
	tty := &ttyDev{k: k}
	k.devices[makeRdev(1, 3)] = nullDev{}
	k.devices[makeRdev(1, 5)] = zeroDev{}
	k.devices[makeRdev(2, 0)] = tty
	k.devices[makeRdev(0, 0)] = tty
	k.devices[makeRdev(3, 0)] = &metricsDev{k: k}
	k.devices[makeRdev(3, 1)] = &traceDev{k: k}
}

// rootCred is used for kernel-internal filesystem setup.
var rootCred = vfs.Cred{UID: 0, GID: 0}

// makeTree builds the standard directory tree and device nodes. The
// panics below are true boot invariants, not guest-reachable errors: no
// process exists yet and the filesystem is empty, so a failure here
// means the kernel itself is broken and there is nothing to degrade to.
func (k *Kernel) makeTree() {
	root := k.fs.Root()
	mk := func(parent *vfs.Inode, name string, mode uint32) *vfs.Inode {
		ip, err := k.fs.Mkdir(parent, name, mode, rootCred)
		if err != sys.OK {
			panic("kernel: boot mkdir " + name + ": " + err.Error())
		}
		return ip
	}
	mk(root, "bin", 0o755)
	dev := mk(root, "dev", 0o755)
	etc := mk(root, "etc", 0o755)
	mk(root, "home", 0o755)
	tmp := mk(root, "tmp", 0o777)
	_ = tmp
	k.fs.Chmod(mustLookup(k.fs, "/tmp"), 0o1777, rootCred)
	usr := mk(root, "usr", 0o755)
	mk(usr, "bin", 0o755)
	mk(usr, "lib", 0o755)
	mk(usr, "tmp", 0o1777)

	for _, d := range []struct {
		name string
		mode uint32
		rdev uint32
	}{
		{"null", 0o666, makeRdev(1, 3)},
		{"zero", 0o666, makeRdev(1, 5)},
		{"tty", 0o666, makeRdev(2, 0)},
		{"console", 0o666, makeRdev(0, 0)},
		{"metrics", 0o444, makeRdev(3, 0)},
		{"trace", 0o666, makeRdev(3, 1)},
	} {
		k.fs.MkDev(dev, d.name, d.mode, d.rdev, k.devices[d.rdev], rootCred)
	}

	passwd, err := k.fs.Create(etc, "passwd", 0o644, rootCred)
	if err != sys.OK {
		panic("kernel: boot create passwd") // boot invariant: empty /etc cannot refuse a create
	}
	passwd.WriteAt([]byte("root:*:0:0:Super User:/:/bin/sh\nuser:*:100:100:User:/home:/bin/sh\n"), 0, 0)

	motd, _ := k.fs.Create(etc, "motd", 0o644, rootCred)
	motd.WriteAt([]byte("4.3BSD (interpose.sim) — simulated system interface\n"), 0, 0)
}

// mustLookup resolves a path during boot; failure is a boot invariant
// violation (the path was created lines earlier in makeTree).
func mustLookup(fs *vfs.FS, path string) *vfs.Inode {
	ip, err := fs.Lookup(fs.Root(), path, rootCred, true)
	if err != sys.OK {
		panic("kernel: boot lookup " + path)
	}
	return ip
}

func makeRdev(major, minor uint32) uint32 { return major<<8 | minor }

// InstallProgram writes an executable image file for the registered image
// name at path (creating it 0755), e.g. InstallProgram("/bin/cat", "cat").
func (k *Kernel) InstallProgram(path, name string) error {
	if _, ok := k.images.Lookup(name); !ok {
		return fmt.Errorf("kernel: no registered image %q", name)
	}
	return k.WriteFile(path, image.Header(name), 0o755)
}

// WriteFile creates (or truncates) a file at path with the given contents,
// as the super-user. It is a world-building convenience, not a system call.
func (k *Kernel) WriteFile(path string, data []byte, perm uint32) error {
	dir, name, existing, err := k.fs.LookupParent(k.fs.Root(), path, rootCred)
	if err != sys.OK {
		return fmt.Errorf("kernel: writefile %s: %w", path, err)
	}
	ip := existing
	if ip == nil {
		ip, err = k.fs.Create(dir, name, perm, rootCred)
		if err != sys.OK {
			return fmt.Errorf("kernel: writefile %s: %w", path, err)
		}
	} else if e := ip.Truncate(0); e != sys.OK {
		return fmt.Errorf("kernel: writefile %s: %w", path, e)
	}
	if _, e := ip.WriteAt(data, 0, 0); e != sys.OK {
		return fmt.Errorf("kernel: writefile %s: %w", path, e)
	}
	return nil
}

// Remove unlinks the file at path as the super-user (world building and
// test cleanup); missing files are not an error.
func (k *Kernel) Remove(path string) error {
	dir, name, existing, err := k.fs.LookupParent(k.fs.Root(), path, rootCred)
	if err != sys.OK {
		return fmt.Errorf("kernel: remove %s: %w", path, err)
	}
	if existing == nil {
		return nil
	}
	if e := k.fs.Unlink(dir, name, rootCred); e != sys.OK {
		return fmt.Errorf("kernel: remove %s: %w", path, e)
	}
	return nil
}

// ReadFile returns the contents of the file at path, as the super-user.
func (k *Kernel) ReadFile(path string) ([]byte, error) {
	ip, err := k.fs.Lookup(k.fs.Root(), path, rootCred, true)
	if err != sys.OK {
		return nil, fmt.Errorf("kernel: readfile %s: %w", path, err)
	}
	return ip.Bytes(), nil
}

// MkdirAll creates path and any missing parents, as the super-user.
func (k *Kernel) MkdirAll(path string, perm uint32) error {
	parts, _, _ := vfs.SplitPath(path)
	cur := k.fs.Root()
	for _, p := range parts {
		next, err := k.fs.Lookup(cur, p, rootCred, true)
		if err == sys.ENOENT {
			next, err = k.fs.Mkdir(cur, p, perm, rootCred)
		}
		if err != sys.OK {
			return fmt.Errorf("kernel: mkdirall %s: %w", path, err)
		}
		cur = next
	}
	return nil
}

// Console is the system console: a tty whose output is captured and whose
// input can be fed programmatically.
type Console struct {
	mu     sync.Mutex
	out    bytes.Buffer
	in     bytes.Buffer
	inEOF  bool
	mirror io.Writer

	// readQ holds processes blocked in a tty read; Feed and FeedEOF wake
	// only these sleepers, not the rest of the system.
	readQ waitQ
}

func newConsole() *Console { return &Console{} }

// Output returns everything written to the console so far.
func (c *Console) Output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.String()
}

// TakeOutput returns and clears the captured console output.
func (c *Console) TakeOutput() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.out.String()
	c.out.Reset()
	return s
}

// Mirror also copies future console output to w (nil to stop).
func (c *Console) Mirror(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mirror = w
}

// Feed appends bytes to the console input queue, waking blocked readers.
func (c *Console) Feed(s string) {
	c.mu.Lock()
	c.in.WriteString(s)
	c.readQ.wakeAll()
	c.mu.Unlock()
}

// FeedEOF marks the console input as ended: readers at the end of the
// queued input see end-of-file instead of blocking.
func (c *Console) FeedEOF() {
	c.mu.Lock()
	c.inEOF = true
	c.readQ.wakeAll()
	c.mu.Unlock()
}

func (c *Console) write(p []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out.Write(p)
	if c.mirror != nil {
		c.mirror.Write(p)
	}
	return len(p)
}

// read returns (0, false) when no input is queued and EOF has not been fed.
func (c *Console) read(p []byte) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.in.Len() == 0 {
		return 0, c.inEOF
	}
	n, _ := c.in.Read(p)
	return n, true
}

// Character devices.

type nullDev struct{}

func (nullDev) Read(p []byte, off int64) (int, sys.Errno)  { return 0, sys.OK }
func (nullDev) Write(p []byte, off int64) (int, sys.Errno) { return len(p), sys.OK }
func (nullDev) Ioctl(req, arg sys.Word, c sys.Ctx) sys.Errno {
	return sys.ENOTTY
}

type zeroDev struct{}

func (zeroDev) Read(p []byte, off int64) (int, sys.Errno) {
	for i := range p {
		p[i] = 0
	}
	return len(p), sys.OK
}
func (zeroDev) Write(p []byte, off int64) (int, sys.Errno) { return len(p), sys.OK }
func (zeroDev) Ioctl(req, arg sys.Word, c sys.Ctx) sys.Errno {
	return sys.ENOTTY
}

// blockingDevice is implemented by devices whose reads can block. When a
// read returns EAGAIN on a blocking descriptor the kernel read path calls
// WaitInput, which sleeps the process on the device's own wait queue
// until input may be available (or the sleep is interrupted).
type blockingDevice interface {
	WaitInput(p *Proc) sys.Errno
}

// ttyDev is the console terminal. Reads with no queued input report
// "would block" to the kernel's read path, which sleeps the caller.
type ttyDev struct{ k *Kernel }

// WaitInput blocks on the console's read queue until input or EOF is
// available. The registration happens under the same lock that guards
// the input buffer, so a Feed between the failed read and the sleep
// cannot be lost.
func (t *ttyDev) WaitInput(p *Proc) sys.Errno {
	c := t.k.console
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.in.Len() == 0 && !c.inEOF {
		if e := p.sleepOn(&c.readQ, &c.mu); e != sys.OK {
			return e
		}
	}
	return sys.OK
}

func (t *ttyDev) Read(p []byte, off int64) (int, sys.Errno) {
	n, ready := t.k.console.read(p)
	if n == 0 && !ready {
		return 0, sys.EAGAIN // kernel read path converts to a sleep
	}
	return n, sys.OK
}

func (t *ttyDev) Write(p []byte, off int64) (int, sys.Errno) {
	return t.k.console.write(p), sys.OK
}

func (t *ttyDev) Ioctl(req, arg sys.Word, c sys.Ctx) sys.Errno {
	switch req {
	case sys.TIOCGWINSZ:
		// struct winsize{ rows, cols, xpixel, ypixel uint16 }
		b := []byte{24, 0, 80, 0, 0, 0, 0, 0}
		return c.CopyOut(arg, b)
	case sys.TIOCGPGRP:
		b := []byte{0, 0, 0, 0}
		return c.CopyOut(arg, b)
	case sys.TIOCSPGRP:
		return sys.OK
	}
	return sys.ENOTTY
}
