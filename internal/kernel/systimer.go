package kernel

import (
	"time"

	"interpose/internal/sys"
)

// Interval timers: the real-time ITIMER_REAL, delivering SIGALRM on
// expiry and rearming itself from the interval field. This is the
// machinery under both setitimer(2) and the C library's alarm()/sleep().

// itimerState is a process's real-interval-timer state, guarded by the
// process-table lock (timer expiry needs to post a signal, which is a
// k.pmu operation anyway, so the timer fields live under the same lock).
type itimerState struct {
	timer    *time.Timer
	interval time.Duration
	expiry   time.Time // zero when disarmed
}

// armITimerLocked (re)arms the timer. Caller holds k.pmu.
func (k *Kernel) armITimerLocked(p *Proc, value, interval time.Duration) {
	k.stopITimerLocked(p)
	if value <= 0 {
		return
	}
	p.itimer.interval = interval
	p.itimer.expiry = time.Now().Add(value)
	p.itimer.timer = time.AfterFunc(value, func() { k.itimerFire(p) })
}

// stopITimerLocked disarms the timer. Caller holds k.pmu.
func (k *Kernel) stopITimerLocked(p *Proc) {
	if p.itimer.timer != nil {
		p.itimer.timer.Stop()
		p.itimer.timer = nil
	}
	p.itimer.expiry = time.Time{}
	p.itimer.interval = 0
}

// itimerFire runs on the timer goroutine: post SIGALRM and rearm.
func (k *Kernel) itimerFire(p *Proc) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	st := p.loadState()
	if st != procRunning && st != procStopped {
		return
	}
	k.postSignalPLocked(p, sys.SIGALRM)
	if iv := p.itimer.interval; iv > 0 {
		p.itimer.expiry = time.Now().Add(iv)
		p.itimer.timer = time.AfterFunc(iv, func() { k.itimerFire(p) })
	} else {
		p.itimer.expiry = time.Time{}
		p.itimer.timer = nil
	}
}

func tvDuration(tv sys.Timeval) time.Duration {
	return time.Duration(tv.Duration()) * time.Microsecond
}

func durationTv(d time.Duration) sys.Timeval {
	if d < 0 {
		d = 0
	}
	return sys.Timeval{
		Sec:  uint32(d / time.Second),
		Usec: uint32(d % time.Second / time.Microsecond),
	}
}

func (k *Kernel) sysSetitimer(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if a[0] != sys.ITIMER_REAL {
		return sys.Retval{}, sys.EINVAL
	}
	k.pmu.Lock()
	old := k.itimerValueLocked(p)
	k.pmu.Unlock()
	if a[2] != 0 {
		var b [sys.ItimervalSize]byte
		old.Encode(b[:])
		if e := p.CopyOut(a[2], b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if a[1] != 0 {
		var b [sys.ItimervalSize]byte
		if e := p.CopyIn(a[1], b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
		nv := sys.DecodeItimerval(b[:])
		k.pmu.Lock()
		k.armITimerLocked(p, tvDuration(nv.Value), tvDuration(nv.Interval))
		k.pmu.Unlock()
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGetitimer(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	if a[0] != sys.ITIMER_REAL {
		return sys.Retval{}, sys.EINVAL
	}
	k.pmu.Lock()
	cur := k.itimerValueLocked(p)
	k.pmu.Unlock()
	var b [sys.ItimervalSize]byte
	cur.Encode(b[:])
	return sys.Retval{}, p.CopyOut(a[1], b[:])
}

// itimerValueLocked snapshots the timer as an itimerval. Caller holds k.pmu.
func (k *Kernel) itimerValueLocked(p *Proc) sys.Itimerval {
	var out sys.Itimerval
	out.Interval = durationTv(p.itimer.interval)
	if !p.itimer.expiry.IsZero() {
		out.Value = durationTv(time.Until(p.itimer.expiry))
		if out.Value == (sys.Timeval{}) {
			out.Value = sys.Timeval{Usec: 1} // armed but imminent
		}
	}
	return out
}
