package kernel

import "sync"

// Transfer buffers for read/write system calls. Every read and write
// stages the user's bytes through a kernel buffer (the simulated copyin /
// copyout); allocating it per call made the allocator the hottest part of
// the I/O path. A sync.Pool amortizes that: buffers up to maxPooledIO are
// recycled, larger ones (rare — ioCount caps requests at 8 MB) fall back
// to one-shot allocations.
//
// Holders must finish with the buffer before putIOBuf: nothing downstream
// may retain it (inodes, pipes, devices, and the console all copy).

const maxPooledIO = 256 << 10 // recycle buffers up to this size

var ioBufPool = sync.Pool{New: func() any {
	b := make([]byte, 8<<10)
	return &b
}}

// getIOBuf returns an n-byte buffer and the pool token to return it with.
func getIOBuf(n int) (*[]byte, []byte) {
	bp := ioBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp, (*bp)[:n:cap(*bp)]
}

// putIOBuf recycles a buffer obtained from getIOBuf.
func putIOBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledIO {
		ioBufPool.Put(bp)
	}
}
