package kernel

import (
	"time"

	"interpose/internal/sys"
	"interpose/internal/vfs"
)

func (k *Kernel) sysOpen(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	flags := int(a[1])
	mode := a[2]
	fd, err := k.openPath(p, path, flags, mode)
	k.trace(p, "open", path, "", fd, err)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return sys.Retval{sys.Word(fd)}, sys.OK
}

// openPath implements the open system call given a decoded path.
func (k *Kernel) openPath(p *Proc, path string, flags int, mode sys.Word) (int, sys.Errno) {
	cred := p.cred()
	var ip *vfs.Inode
	if flags&sys.O_CREAT != 0 {
		for {
			dir, name, existing, err := k.nameiParent(p, path)
			if err != sys.OK {
				return -1, err
			}
			if existing != nil && existing.IsSymlink() {
				// Follow the link for open-with-create of an existing name.
				existing, err = k.namei(p, path, true)
				if err != sys.OK {
					return -1, err
				}
			}
			if existing == nil {
				ip, err = k.fs.Create(dir, name, mode&0o7777&^p.umaskVal(), cred)
				if err == sys.EEXIST && flags&sys.O_EXCL == 0 {
					// Lost a create race with another process: go around
					// and open whatever won.
					continue
				}
				if err != sys.OK {
					return -1, err
				}
			} else if flags&sys.O_EXCL != 0 {
				return -1, sys.EEXIST
			} else {
				ip = existing
			}
			break
		}
	} else {
		var err sys.Errno
		ip, err = k.namei(p, path, true)
		if err != sys.OK {
			return -1, err
		}
	}

	acc := flags & sys.O_ACCMODE
	var want int
	if acc == sys.O_RDONLY || acc == sys.O_RDWR {
		want |= sys.R_OK
	}
	if acc == sys.O_WRONLY || acc == sys.O_RDWR {
		want |= sys.W_OK
	}
	if ip.IsDir() && want&sys.W_OK != 0 {
		return -1, sys.EISDIR
	}
	if e := k.fs.Access(ip, want, cred); e != sys.OK {
		return -1, e
	}
	if flags&sys.O_TRUNC != 0 && ip.Type() == sys.S_IFREG {
		if e := ip.Truncate(0); e != sys.OK {
			return -1, e
		}
	}

	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	fd, e := p.allocFDLocked(0)
	if e != sys.OK {
		return -1, e
	}
	f := &File{ip: ip, flags: flags &^ (sys.O_CREAT | sys.O_TRUNC | sys.O_EXCL)}
	p.installFDLocked(fd, f, false)
	return fd, sys.OK
}

func (k *Kernel) sysClose(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.fdMu.Lock()
	err := p.closeFDLocked(int(a[0]))
	p.fdMu.Unlock()
	k.trace(p, "close", "", "", int(a[0]), err)
	return sys.Retval{}, err
}

func (k *Kernel) sysRead(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, bufAddr := int(a[0]), a[1]
	cnt, err := ioCount(a[2])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	f, err := p.file(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	f.mu.Lock()
	flags := f.flags
	ip, off := f.ip, f.off
	f.mu.Unlock()
	if flags&sys.O_ACCMODE == sys.O_WRONLY {
		return sys.Retval{}, sys.EBADF
	}
	if cnt == 0 {
		// A zero-length read reports readiness, never blocks.
		return sys.Retval{0}, sys.OK
	}
	if f.pipe != nil {
		n, err := k.pipeRead(p, f.pipe, cnt, bufAddr, flags)
		return sys.Retval{sys.Word(n)}, err
	}

	bp, buf := getIOBuf(cnt)
	defer putIOBuf(bp)
	var n int
	for {
		var e sys.Errno
		n, e = ip.ReadAt(buf, off)
		if e == sys.EAGAIN && flags&sys.O_NONBLOCK == 0 {
			// Blocking device (tty with no input): wait on the device's
			// own queue and retry.
			bd, ok := ip.Device().(blockingDevice)
			if !ok {
				return sys.Retval{}, e
			}
			if e = bd.WaitInput(p); e != sys.OK {
				return sys.Retval{}, e
			}
			continue
		}
		if e != sys.OK {
			return sys.Retval{}, e
		}
		break
	}
	if n > 0 {
		if e := p.CopyOut(bufAddr, buf[:n]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if !ip.IsDevice() || deviceSeekable(ip) {
		f.mu.Lock()
		f.off = off + int64(n)
		f.mu.Unlock()
	}
	return sys.Retval{sys.Word(n)}, sys.OK
}

func (k *Kernel) sysWrite(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, bufAddr := int(a[0]), a[1]
	cnt, err := ioCount(a[2])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	bp, buf := getIOBuf(cnt)
	defer putIOBuf(bp)
	if cnt > 0 {
		if e := p.CopyIn(bufAddr, buf); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	f, err := p.file(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	f.mu.Lock()
	flags := f.flags
	ip, off := f.ip, f.off
	f.mu.Unlock()
	if flags&sys.O_ACCMODE == sys.O_RDONLY {
		return sys.Retval{}, sys.EBADF
	}
	if f.pipe != nil {
		n, err := k.pipeWrite(p, f.pipe, buf, flags)
		return sys.Retval{sys.Word(n)}, err
	}
	if flags&sys.O_APPEND != 0 {
		off = ip.Size()
	}
	fsize := int64(p.Rlimit(sys.RLIMIT_FSIZE).Cur)

	n, e := ip.WriteAt(buf, off, fsize)
	if e == sys.EFBIG || (e == sys.OK && n < len(buf) && fsize > 0) {
		k.PostSignal(p, sys.SIGXFSZ)
		if n == 0 {
			return sys.Retval{}, sys.EFBIG
		}
	} else if e != sys.OK {
		return sys.Retval{}, e
	}
	if !ip.IsDevice() || deviceSeekable(ip) {
		f.mu.Lock()
		f.off = off + int64(n)
		f.mu.Unlock()
	}
	return sys.Retval{sys.Word(n)}, sys.OK
}

// pipeRead blocks until data, EOF, or a signal. It takes the pipe's own
// lock; a successful read wakes only this pipe's writers.
func (k *Kernel) pipeRead(p *Proc, pp *Pipe, cnt int, bufAddr sys.Word, flags int) (int, sys.Errno) {
	pp.mu.Lock()
	for {
		if pp.count > 0 {
			// Causal tracing: link this read's span to the last traced
			// writer's span (under pp.mu, same as the data it explains).
			if pp.edgeSpan != 0 && p.curSpan.Load() != 0 {
				p.curLink.Store(pp.edgeSpan)
			}
			bp, buf := getIOBuf(min(cnt, pp.count))
			n := pp.read(buf)
			pp.writeQ.wakeAll()
			pp.mu.Unlock()
			e := p.CopyOut(bufAddr, buf[:n])
			putIOBuf(bp)
			if e != sys.OK {
				return 0, e
			}
			return n, sys.OK
		}
		if pp.writers == 0 {
			pp.mu.Unlock()
			return 0, sys.OK // EOF
		}
		if flags&sys.O_NONBLOCK != 0 {
			pp.mu.Unlock()
			return 0, sys.EAGAIN
		}
		if e := p.sleepOn(&pp.readQ, &pp.mu); e != sys.OK {
			pp.mu.Unlock()
			return 0, e
		}
	}
}

// pipeWrite writes all of buf or fails. It takes the pipe's own lock and
// releases it before posting SIGPIPE — signal posting takes the
// process-table lock, which must never be acquired while holding an
// object lock.
func (k *Kernel) pipeWrite(p *Proc, pp *Pipe, buf []byte, flags int) (int, sys.Errno) {
	pp.mu.Lock()
	// Causal tracing: publish this write's span for the next traced
	// reader. Latest traced writer wins, which matches what a reader
	// draining the buffer most plausibly consumed last.
	if s := p.curSpan.Load(); s != 0 {
		pp.edgeSpan = s
	}
	total := 0
	for len(buf) > 0 {
		if pp.readers == 0 {
			pp.mu.Unlock()
			k.PostSignal(p, sys.SIGPIPE)
			return total, sys.EPIPE
		}
		n := pp.write(buf)
		if n > 0 {
			pp.readQ.wakeAll()
			total += n
			buf = buf[n:]
			continue
		}
		if flags&sys.O_NONBLOCK != 0 {
			pp.mu.Unlock()
			if total > 0 {
				return total, sys.OK
			}
			return 0, sys.EAGAIN
		}
		if e := p.sleepOn(&pp.writeQ, &pp.mu); e != sys.OK {
			pp.mu.Unlock()
			if total > 0 {
				return total, sys.OK
			}
			return 0, e
		}
	}
	pp.mu.Unlock()
	return total, sys.OK
}

func (k *Kernel) sysPipe(p *Proc) (sys.Retval, sys.Errno) {
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	rfd, e := p.allocFDLocked(0)
	if e != sys.OK {
		return sys.Retval{}, e
	}
	pp := newPipe()
	rf := &File{pipe: pp, rdEnd: true, flags: sys.O_RDONLY}
	p.installFDLocked(rfd, rf, false)
	wfd, e := p.allocFDLocked(0)
	if e != sys.OK {
		p.closeFDLocked(rfd)
		return sys.Retval{}, e
	}
	wf := &File{pipe: pp, rdEnd: false, flags: sys.O_WRONLY}
	p.installFDLocked(wfd, wf, false)
	return sys.Retval{sys.Word(rfd), sys.Word(wfd)}, sys.OK
}

func (k *Kernel) sysLseek(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, off, whence := int(a[0]), int64(int32(a[1])), int(a[2])
	f, err := p.file(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.pipe != nil {
		return sys.Retval{}, sys.ESPIPE
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case sys.SEEK_SET:
		base = 0
	case sys.SEEK_CUR:
		base = f.off
	case sys.SEEK_END:
		base = f.ip.Size()
	default:
		return sys.Retval{}, sys.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return sys.Retval{}, sys.EINVAL
	}
	f.off = pos
	f.dirEOF = false
	k.traceLocked(p, "seek", "", "", fd, sys.OK)
	return sys.Retval{sys.Word(pos)}, sys.OK
}

func (k *Kernel) sysDup(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	f, err := p.fileLocked(int(a[0]))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	fd, e := p.allocFDLocked(0)
	if e != sys.OK {
		return sys.Retval{}, e
	}
	p.installFDLocked(fd, f, false)
	return sys.Retval{sys.Word(fd)}, sys.OK
}

func (k *Kernel) sysDup2(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	oldfd, newfd := int(a[0]), int(a[1])
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	f, err := p.fileLocked(oldfd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if newfd < 0 || newfd >= len(p.fds) {
		return sys.Retval{}, sys.EBADF
	}
	// 4.3BSD bounds newfd by the descriptor limit, not just the table:
	// dup2 past getdtablesize() — here RLIMIT_NOFILE — is EBADF.
	if lim := int(p.Rlimit(sys.RLIMIT_NOFILE).Cur); newfd >= lim {
		return sys.Retval{}, sys.EBADF
	}
	if newfd == oldfd {
		return sys.Retval{sys.Word(newfd)}, sys.OK
	}
	if p.fds[newfd].file != nil {
		p.closeFDLocked(newfd)
	}
	p.installFDLocked(newfd, f, false)
	return sys.Retval{sys.Word(newfd)}, sys.OK
}

func (k *Kernel) sysFcntl(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, cmd, arg := int(a[0]), int(a[1]), a[2]
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	f, err := p.fileLocked(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	switch cmd {
	case sys.F_DUPFD:
		nfd, e := p.allocFDLocked(int(arg))
		if e != sys.OK {
			return sys.Retval{}, e
		}
		p.installFDLocked(nfd, f, false)
		return sys.Retval{sys.Word(nfd)}, sys.OK
	case sys.F_GETFD:
		var v sys.Word
		if p.fds[fd].cloexec {
			v = sys.FD_CLOEXEC
		}
		return sys.Retval{v}, sys.OK
	case sys.F_SETFD:
		p.fds[fd].cloexec = arg&sys.FD_CLOEXEC != 0
		return sys.Retval{}, sys.OK
	case sys.F_GETFL:
		f.mu.Lock()
		v := sys.Word(f.flags)
		f.mu.Unlock()
		return sys.Retval{v}, sys.OK
	case sys.F_SETFL:
		const settable = sys.O_APPEND | sys.O_NONBLOCK
		f.mu.Lock()
		f.flags = f.flags&^settable | int(arg)&settable
		f.mu.Unlock()
		return sys.Retval{}, sys.OK
	}
	return sys.Retval{}, sys.EINVAL
}

func (k *Kernel) statOut(p *Proc, st sys.Stat, addr sys.Word) sys.Errno {
	var b [sys.StatSize]byte
	st.Encode(b[:])
	return p.CopyOut(addr, b[:])
}

func (k *Kernel) sysStat(p *Proc, a sys.Args, follow bool) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	op := "stat"
	if !follow {
		op = "lstat"
	}
	ip, err := k.namei(p, path, follow)
	k.trace(p, op, path, "", -1, err)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return sys.Retval{}, k.statOut(p, ip.Stat(), a[1])
}

func (k *Kernel) sysFstat(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	f, err := p.file(int(a[0]))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	var st sys.Stat
	if f.pipe != nil {
		st = sys.Stat{Mode: sys.S_IFIFO | 0o600, Nlink: 1, Blksize: sys.PipeBuf}
	} else {
		st = f.ip.Stat()
	}
	return sys.Retval{}, k.statOut(p, st, a[1])
}

func (k *Kernel) sysAccess(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	// access uses the real, not effective, credentials.
	p.mu.Lock()
	cwd, root := p.cwd, p.root
	p.mu.Unlock()
	ip, err := k.fs.LookupEx(root, cwd, path, p.realCred(), true)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	return sys.Retval{}, k.fs.Access(ip, int(a[1]), p.realCred())
}

func (k *Kernel) sysLink(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	oldPath, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	newPath, err := p.pathArg(a[1])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	target, err := k.namei(p, oldPath, false)
	if err == sys.OK {
		var dir *vfs.Inode
		var name string
		var existing *vfs.Inode
		dir, name, existing, err = k.nameiParent(p, newPath)
		switch {
		case err != sys.OK:
		case existing != nil:
			err = sys.EEXIST
		default:
			err = k.fs.Link(dir, name, target, p.cred())
		}
	}
	k.trace(p, "link", oldPath, newPath, -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysUnlink(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	dir, name, existing, err := k.nameiParent(p, path)
	if err == sys.OK && existing == nil {
		err = sys.ENOENT
	}
	if err == sys.OK {
		err = k.fs.Unlink(dir, name, p.cred())
	}
	k.trace(p, "unlink", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysSymlink(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	target, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	linkPath, err := p.pathArg(a[1])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	dir, name, existing, err := k.nameiParent(p, linkPath)
	switch {
	case err != sys.OK:
	case existing != nil:
		err = sys.EEXIST
	default:
		_, err = k.fs.Symlink(dir, name, target, p.cred())
	}
	k.trace(p, "symlink", target, linkPath, -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysReadlink(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, false)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	target, err := ip.Readlink()
	if err != sys.OK {
		return sys.Retval{}, err
	}
	n := int(a[2])
	if n > len(target) {
		n = len(target)
	}
	if n > 0 {
		if e := p.CopyOut(a[1], []byte(target)[:n]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	return sys.Retval{sys.Word(n)}, sys.OK
}

func (k *Kernel) sysRename(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fromPath, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	toPath, err := p.pathArg(a[1])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	fromDir, fromName, existing, err := k.nameiParent(p, fromPath)
	if err == sys.OK && existing == nil {
		err = sys.ENOENT
	}
	if err == sys.OK {
		var toDir *vfs.Inode
		var toName string
		toDir, toName, _, err = k.nameiParent(p, toPath)
		if err == sys.OK {
			err = k.fs.Rename(fromDir, fromName, toDir, toName, p.cred())
		}
	}
	k.trace(p, "rename", fromPath, toPath, -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysMkdir(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	dir, name, existing, err := k.nameiParent(p, path)
	switch {
	case err != sys.OK:
	case existing != nil:
		err = sys.EEXIST
	default:
		_, err = k.fs.Mkdir(dir, name, a[1]&0o7777&^p.umaskVal(), p.cred())
	}
	k.trace(p, "mkdir", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysRmdir(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	dir, name, existing, err := k.nameiParent(p, path)
	if err == sys.OK && existing == nil {
		err = sys.ENOENT
	}
	if err == sys.OK {
		err = k.fs.Rmdir(dir, name, p.cred())
	}
	k.trace(p, "rmdir", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysChmod(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, true)
	if err == sys.OK {
		err = k.fs.Chmod(ip, a[1], p.cred())
	}
	k.trace(p, "chmod", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysChown(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, true)
	if err == sys.OK {
		err = k.fs.Chown(ip, a[1], a[2], p.cred())
	}
	k.trace(p, "chown", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysTruncate(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, true)
	if err == sys.OK {
		err = k.fs.Access(ip, sys.W_OK, p.cred())
	}
	if err == sys.OK {
		err = k.checkFsize(p, int64(int32(a[1])))
	}
	if err == sys.OK {
		err = ip.Truncate(int64(int32(a[1])))
	}
	k.trace(p, "truncate", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysFtruncate(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	f, err := p.file(int(a[0]))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.pipe != nil || f.Flags()&sys.O_ACCMODE == sys.O_RDONLY {
		return sys.Retval{}, sys.EINVAL
	}
	if e := k.checkFsize(p, int64(int32(a[1]))); e != sys.OK {
		return sys.Retval{}, e
	}
	return sys.Retval{}, f.ip.Truncate(int64(int32(a[1])))
}

func (k *Kernel) sysUtimes(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, true)
	if err != sys.OK {
		k.trace(p, "utimes", path, "", -1, err)
		return sys.Retval{}, err
	}
	var at, mt time.Time
	if a[1] == 0 {
		at = k.Now()
		mt = at
	} else {
		var b [2 * sys.TimevalSize]byte
		if e := p.CopyIn(a[1], b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
		atv := sys.DecodeTimeval(b[0:])
		mtv := sys.DecodeTimeval(b[8:])
		at = time.Unix(int64(atv.Sec), int64(atv.Usec)*1000)
		mt = time.Unix(int64(mtv.Sec), int64(mtv.Usec)*1000)
	}
	err = k.fs.Utimes(ip, at, mt, p.cred())
	k.trace(p, "utimes", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysChdir(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	ip, err := k.namei(p, path, true)
	if err == sys.OK && !ip.IsDir() {
		err = sys.ENOTDIR
	}
	if err == sys.OK {
		err = k.fs.Access(ip, sys.X_OK, p.cred())
	}
	if err == sys.OK {
		p.mu.Lock()
		p.cwd = ip
		p.mu.Unlock()
	}
	k.trace(p, "chdir", path, "", -1, err)
	return sys.Retval{}, err
}

func (k *Kernel) sysFchdir(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	f, err := p.file(int(a[0]))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.ip == nil || !f.ip.IsDir() {
		return sys.Retval{}, sys.ENOTDIR
	}
	p.mu.Lock()
	p.cwd = f.ip
	p.mu.Unlock()
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysChroot(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if !p.cred().Root() {
		return sys.Retval{}, sys.EPERM
	}
	ip, err := k.namei(p, path, true)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if !ip.IsDir() {
		return sys.Retval{}, sys.ENOTDIR
	}
	p.mu.Lock()
	p.root = ip
	p.cwd = ip
	p.mu.Unlock()
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysMknod(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if !p.cred().Root() {
		return sys.Retval{}, sys.EPERM
	}
	mode, rdev := a[1], a[2]
	if mode&sys.S_IFMT != sys.S_IFCHR {
		return sys.Retval{}, sys.EINVAL
	}
	dir, name, existing, err := k.nameiParent(p, path)
	switch {
	case err != sys.OK:
		return sys.Retval{}, err
	case existing != nil:
		return sys.Retval{}, sys.EEXIST
	}
	dev := k.lookupDevice(rdev)
	if dev == nil {
		return sys.Retval{}, sys.ENXIO
	}
	_, err = k.fs.MkDev(dir, name, mode&0o7777, rdev, dev, p.cred())
	return sys.Retval{}, err
}

func (k *Kernel) sysIoctl(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	f, err := p.file(int(a[0]))
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.ip == nil || f.ip.Device() == nil {
		return sys.Retval{}, sys.ENOTTY
	}
	return sys.Retval{}, f.ip.Device().Ioctl(a[1], a[2], p)
}

func (k *Kernel) sysFlock(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, op := int(a[0]), int(a[1])
	f, err := p.file(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.ip == nil {
		return sys.Retval{}, sys.EINVAL
	}
	k.flockMu.Lock()
	defer k.flockMu.Unlock()
	if op&sys.LOCK_UN != 0 {
		if f.lockHeld != 0 {
			unflockLocked(f)
			k.flockQ.wakeAll()
		}
		return sys.Retval{}, sys.OK
	}
	want := op & (sys.LOCK_SH | sys.LOCK_EX)
	if want != sys.LOCK_SH && want != sys.LOCK_EX {
		return sys.Retval{}, sys.EINVAL
	}
	// Converting an existing lock releases it first.
	if f.lockHeld != 0 {
		unflockLocked(f)
		k.flockQ.wakeAll()
	}
	for {
		conflict := f.ip.LockEx || (want == sys.LOCK_EX && f.ip.LockShared > 0)
		if !conflict {
			break
		}
		if op&sys.LOCK_NB != 0 {
			return sys.Retval{}, sys.EAGAIN
		}
		if e := p.sleepOn(&k.flockQ, &k.flockMu); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if want == sys.LOCK_EX {
		f.ip.LockEx = true
	} else {
		f.ip.LockShared++
	}
	f.lockHeld = want
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysGetdirentries(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	fd, bufAddr := int(a[0]), a[1]
	nbytes, err := ioCount(a[2])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	basep := a[3]
	f, err := p.file(fd)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if f.ip == nil || !f.ip.IsDir() {
		return sys.Retval{}, sys.ENOTDIR
	}
	f.mu.Lock()
	ip, off := f.ip, f.off
	f.mu.Unlock()

	ents, e := ip.Dirents()
	if e != sys.OK {
		return sys.Retval{}, e
	}
	var out []byte
	idx := int(off)
	for idx < len(ents) {
		rl := sys.DirentRecLen(ents[idx].Name)
		if len(out)+rl > nbytes {
			break
		}
		out = sys.EncodeDirent(out, ents[idx])
		idx++
	}
	if len(out) == 0 && idx < len(ents) {
		return sys.Retval{}, sys.EINVAL // buffer too small for one record
	}
	if len(out) > 0 {
		if e := p.CopyOut(bufAddr, out); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if basep != 0 {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(off), byte(off>>8), byte(off>>16), byte(off>>24)
		if e := p.CopyOut(basep, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	f.mu.Lock()
	f.off = int64(idx)
	f.mu.Unlock()
	return sys.Retval{sys.Word(len(out))}, sys.OK
}
