package kernel_test

import (
	"strings"
	"testing"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// runFn boots a minimal kernel and runs fn as pid 1, returning its exit
// status and console output.
func runFn(t *testing.T, fn func(*libc.T) int) (sys.Word, string) {
	t.Helper()
	return runFnSetup(t, nil, fn)
}

func runFnSetup(t *testing.T, setup func(k *kernel.Kernel), fn func(*libc.T) int) (sys.Word, string) {
	t.Helper()
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(fn))
	k := kernel.New(reg)
	if err := k.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(k)
	}
	p, err := k.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	status := k.WaitExit(p)
	return status, k.Console().TakeOutput()
}

// expectOK asserts a clean exit.
func expectOK(t *testing.T, st sys.Word, out string) string {
	t.Helper()
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("status = %#x, output:\n%s", st, out)
	}
	return out
}

func TestErrnoCases(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		check := func(what string, got, want sys.Errno) {
			if got != want {
				lt.Printf("FAIL %s: got %s want %s\n", what, got.Name(), want.Name())
			}
		}
		_, err := lt.Open("/no/such/file", sys.O_RDONLY, 0)
		check("open missing", err, sys.ENOENT)
		_, err = lt.Open("/etc/passwd", sys.O_RDONLY|sys.O_CREAT|sys.O_EXCL, 0o644)
		check("excl existing", err, sys.EEXIST)
		check("close bad fd", lt.Close(99), sys.EBADF)
		check("close negative", lt.Close(-1), sys.EBADF)
		_, err = lt.Read(99, make([]byte, 1))
		check("read bad fd", err, sys.EBADF)
		check("unlink dir", lt.Unlink("/etc"), sys.EPERM)
		check("rmdir file", lt.Rmdir("/etc/passwd"), sys.ENOTDIR)
		check("rmdir nonempty", lt.Rmdir("/etc"), sys.ENOTEMPTY)
		check("chdir to file", lt.Chdir("/etc/passwd"), sys.ENOTDIR)
		check("mkdir exists", lt.Mkdir("/etc", 0o755), sys.EEXIST)
		_, err = lt.Syscall(157) // unimplemented number
		check("bad syscall", err, sys.ENOSYS)
		// Write to a read-only descriptor.
		fd, _ := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		_, err = lt.Write(fd, []byte("x"))
		check("write rdonly", err, sys.EBADF)
		// EFAULT on a wild pointer.
		_, err = lt.Syscall(sys.SYS_stat, 0x10, 0x20)
		check("stat wild pointer", err, sys.EFAULT)
		return 0
	})
	out = expectOK(t, st, out)
	if strings.Contains(out, "FAIL") {
		t.Fatalf("errno failures:\n%s", out)
	}
}

func TestDupSharesOffset(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.WriteFile("/tmp/f", []byte("abcdefgh"), 0o644)
		fd, _ := lt.Open("/tmp/f", sys.O_RDONLY, 0)
		dup, _ := lt.Dup(fd)
		b := make([]byte, 2)
		lt.Read(fd, b)  // reads "ab"
		lt.Read(dup, b) // shares the offset: reads "cd"
		lt.Printf("%s\n", b)
		// Independent opens do not share.
		other, _ := lt.Open("/tmp/f", sys.O_RDONLY, 0)
		lt.Read(other, b)
		lt.Printf("%s\n", b)
		return 0
	})
	if out := expectOK(t, st, out); out != "cd\nab\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestAppendMode(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.WriteFile("/tmp/log", []byte("start\n"), 0o644)
		fd, _ := lt.Open("/tmp/log", sys.O_WRONLY|sys.O_APPEND, 0)
		lt.Write(fd, []byte("one\n"))
		// Even after an explicit rewind, append writes go to the end.
		lt.Lseek(fd, 0, sys.SEEK_SET)
		lt.Write(fd, []byte("two\n"))
		lt.Close(fd)
		data, _ := lt.ReadFile("/tmp/log")
		lt.Printf("%s", data)
		return 0
	})
	if out := expectOK(t, st, out); out != "start\none\ntwo\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCloexecOnExec(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("parent", libc.Main(func(lt *libc.T) int {
		keep, _ := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		closeme, _ := lt.Open("/etc/motd", sys.O_RDONLY, 0)
		lt.SetCloexec(closeme)
		lt.Exec("/bin/child", []string{"child", itoa(keep), itoa(closeme)}, nil)
		return 9
	}))
	reg.Register("child", libc.Main(func(lt *libc.T) int {
		keep, closeme := atoi(lt.Args[1]), atoi(lt.Args[2])
		if _, err := lt.Fstat(keep); err != sys.OK {
			lt.Printf("kept fd lost: %v\n", err)
			return 1
		}
		if _, err := lt.Fstat(closeme); err != sys.EBADF {
			lt.Printf("cloexec fd survived\n")
			return 1
		}
		lt.Printf("ok\n")
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/parent", "parent")
	k.InstallProgram("/bin/child", "child")
	p, _ := k.Spawn("/bin/parent", []string{"parent"}, nil)
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 || out != "ok\n" {
		t.Fatalf("%#x %q", st, out)
	}
}

func TestUmaskAppliesToCreate(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Umask(0o077)
		fd, _ := lt.Open("/tmp/f", sys.O_CREAT|sys.O_WRONLY, 0o666)
		lt.Close(fd)
		stat, _ := lt.Stat("/tmp/f")
		lt.Printf("%o\n", stat.Mode&0o777)
		return 0
	})
	if out := expectOK(t, st, out); out != "600\n" {
		t.Fatalf("mode = %q", out)
	}
}

func TestRlimitFsize(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Ignore(sys.SIGXFSZ)
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 10, Max: 10})
		fd, _ := lt.Open("/tmp/capped", sys.O_CREAT|sys.O_WRONLY, 0o644)
		n, _ := lt.Write(fd, []byte("0123456789ABCDEF"))
		lt.Printf("wrote %d\n", n)
		_, err := lt.Write(fd, []byte("more"))
		lt.Printf("then %s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "wrote 10\nthen EFBIG\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitNofile(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_NOFILE, sys.Rlimit{Cur: 5, Max: 5})
		// fds 0,1,2 are open; 3,4 fit; the next fails.
		a, e1 := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		b, e2 := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		_, e3 := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		lt.Printf("%d:%v %d:%v %v\n", a, e1 == sys.OK, b, e2 == sys.OK, e3.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "3:true 4:true EMFILE\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSignalDefaultTerminates(t *testing.T) {
	st, _ := runFn(t, func(lt *libc.T) int {
		lt.Kill(lt.Getpid(), sys.SIGTERM)
		lt.Printf("survived?!\n")
		return 0
	})
	if sys.WIfExited(st) || sys.WTermSig(st) != sys.SIGTERM {
		t.Fatalf("status = %#x", st)
	}
}

func TestSignalIgnoredDoesNothing(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Ignore(sys.SIGTERM)
		lt.Kill(lt.Getpid(), sys.SIGTERM)
		lt.Printf("survived\n")
		return 0
	})
	if out := expectOK(t, st, out); out != "survived\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSignalHandlerMask(t *testing.T) {
	// A handler's signal is blocked while it runs: a nested kill of the
	// same signal is deferred, not recursive.
	st, out := runFn(t, func(lt *libc.T) int {
		depth, max := 0, 0
		var count int
		lt.Signal(sys.SIGUSR1, func(ht *libc.T, sig int) {
			depth++
			if depth > max {
				max = depth
			}
			count++
			if count == 1 {
				ht.Kill(ht.Getpid(), sys.SIGUSR1) // deferred until return
			}
			depth--
		})
		lt.Kill(lt.Getpid(), sys.SIGUSR1)
		lt.Printf("count=%d max-depth=%d\n", count, max)
		return 0
	})
	if out := expectOK(t, st, out); out != "count=2 max-depth=1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSigpause(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		got := 0
		lt.Signal(sys.SIGUSR2, func(*libc.T, int) { got++ })
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Kill(ct.Getppid(), sys.SIGUSR2)
			ct.Exit(0)
		})
		lt.Sigpause(0)
		lt.Waitpid(pid)
		lt.Printf("got=%d\n", got)
		return 0
	})
	if out := expectOK(t, st, out); out != "got=1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestKillProcessGroup(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Syscall(sys.SYS_setpgrp, 0, 0) // own group
		done := make(chan struct{})       // host-side sync is fine in tests
		_ = done
		var pids []int
		for i := 0; i < 3; i++ {
			pid, _ := lt.Fork(func(ct *libc.T) {
				for {
					ct.Sigpause(0) // wait to be killed
				}
			})
			pids = append(pids, pid)
		}
		lt.Kill(0, sys.SIGKILL) // kill own process group... including self!
		lt.Printf("unreachable\n")
		return 0
	})
	// The whole group, including pid 1, dies by SIGKILL.
	if sys.WIfExited(st) || sys.WTermSig(st) != sys.SIGKILL {
		t.Fatalf("status = %#x out=%q", st, out)
	}
}

func TestZombieReaping(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		pid, _ := lt.Fork(func(ct *libc.T) { ct.Exit(5) })
		// The child becomes a zombie until waited for.
		wpid, status, err := lt.Waitpid(pid)
		if err != sys.OK || wpid != pid || sys.WExitStatus(status) != 5 {
			return 1
		}
		// Waiting again: no children left.
		_, _, err = lt.Wait()
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "ECHILD\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestWaitWNOHANG(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		blocked := make(chan struct{})
		_ = blocked
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Sigpause(0) // stay alive until killed
			ct.Exit(0)
		})
		wpid, _, err := lt.Wait4(pid, sys.WNOHANG)
		lt.Printf("nohang=%d err=%v\n", wpid, err == sys.OK)
		lt.Kill(pid, sys.SIGKILL)
		wpid, status, _ := lt.Waitpid(pid)
		lt.Printf("reaped=%v killed=%v\n", wpid == pid, sys.WTermSig(status) == sys.SIGKILL)
		return 0
	})
	if out := expectOK(t, st, out); out != "nohang=0 err=true\nreaped=true killed=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestPipeEPIPE(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		r, w, _ := lt.Pipe()
		lt.Ignore(sys.SIGPIPE)
		lt.Close(r)
		_, err := lt.Write(w, []byte("x"))
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "EPIPE\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestPipeSIGPIPEKills(t *testing.T) {
	st, _ := runFn(t, func(lt *libc.T) int {
		r, w, _ := lt.Pipe()
		lt.Close(r)
		lt.Write(w, []byte("x"))
		return 0
	})
	if sys.WIfExited(st) || sys.WTermSig(st) != sys.SIGPIPE {
		t.Fatalf("status = %#x", st)
	}
}

func TestPipeBlocksAndFills(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		r, w, _ := lt.Pipe()
		// Child drains slowly; parent writes more than the pipe buffer.
		total := sys.PipeBuf * 3
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Close(w)
			got := 0
			b := make([]byte, 1000)
			for {
				n, _ := ct.Read(r, b)
				if n == 0 {
					break
				}
				got += n
			}
			ct.Printf("drained %d\n", got)
			ct.Exit(0)
		})
		lt.Close(r)
		chunk := make([]byte, 4096)
		sent := 0
		for sent < total {
			n, err := lt.Write(w, chunk)
			if err != sys.OK {
				return 1
			}
			sent += n
		}
		lt.Close(w)
		lt.Waitpid(pid)
		return 0
	})
	if out := expectOK(t, st, out); !strings.Contains(out, "drained 12288") {
		t.Fatalf("out = %q", out)
	}
}

func TestChrootConfines(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.MkdirAll("/jail/sub", 0o755)
		lt.WriteFile("/jail/inside.txt", []byte("in"), 0o644)
		if err := lt.Chroot("/jail"); err != sys.OK {
			lt.Printf("chroot: %v\n", err)
			return 1
		}
		if _, err := lt.Stat("/inside.txt"); err != sys.OK {
			lt.Printf("inside missing: %v\n", err)
			return 1
		}
		if _, err := lt.Stat("/etc/passwd"); err != sys.ENOENT {
			lt.Printf("escape via absolute path\n")
			return 1
		}
		if _, err := lt.Stat("/../../etc/passwd"); err != sys.ENOENT {
			lt.Printf("escape via dotdot\n")
			return 1
		}
		lt.Printf("confined\n")
		return 0
	})
	if out := expectOK(t, st, out); out != "confined\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestChrootRequiresRoot(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		if err := lt.Chroot("/tmp"); err != sys.EPERM {
			return 1
		}
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/main", "main")
	p := k.NewProc()
	p.SetCreds(100, 100)
	p.OpenConsole()
	if err := p.Start("/bin/main", []string{"main"}, nil); err != nil {
		t.Fatal(err)
	}
	if st := k.WaitExit(p); sys.WExitStatus(st) != 0 {
		t.Fatalf("status %#x", st)
	}
}

func TestSetuidSemantics(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		if lt.Geteuid() != 0 {
			return 1
		}
		if _, err := lt.Syscall(sys.SYS_setuid, 100); err != sys.OK {
			return 2
		}
		if lt.Getuid() != 100 || lt.Geteuid() != 100 {
			return 3
		}
		// Once dropped, privileges cannot be regained.
		if _, err := lt.Syscall(sys.SYS_setuid, 0); err != sys.EPERM {
			return 4
		}
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/main", "main")
	p, _ := k.Spawn("/bin/main", []string{"main"}, nil)
	if st := k.WaitExit(p); sys.WExitStatus(st) != 0 {
		t.Fatalf("status %#x", st)
	}
}

func TestSetuidExecBit(t *testing.T) {
	// A set-uid-root image raises the effective uid of an unprivileged
	// process across exec.
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		lt.Exec("/bin/privileged", []string{"privileged"}, nil)
		return 9
	}))
	reg.Register("privileged", libc.Main(func(lt *libc.T) int {
		lt.Printf("uid=%d euid=%d\n", lt.Getuid(), lt.Geteuid())
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/main", "main")
	k.InstallProgram("/bin/privileged", "privileged")
	// Mark the image set-uid root.
	ip, err := k.FS().Lookup(k.FS().Root(), "/bin/privileged", rootCredForTest(), true)
	if err != sys.OK {
		t.Fatal(err)
	}
	k.FS().Chmod(ip, 0o4755, rootCredForTest())

	p := k.NewProc()
	p.SetCreds(100, 100)
	p.OpenConsole()
	if err := p.Start("/bin/main", []string{"main"}, nil); err != nil {
		t.Fatal(err)
	}
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 || out != "uid=100 euid=0\n" {
		t.Fatalf("%#x %q", st, out)
	}
}

func TestFlockExclusion(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.WriteFile("/tmp/lockfile", nil, 0o644)
		fd, _ := lt.Open("/tmp/lockfile", sys.O_RDWR, 0)
		lt.Flock(fd, sys.LOCK_EX)
		// The pipe sequences parent and child: the parent keeps the lock
		// until the child has seen its non-blocking attempt fail.
		r, w, _ := lt.Pipe()
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Close(r)
			fd2, _ := ct.Open("/tmp/lockfile", sys.O_RDWR, 0)
			if err := ct.Flock(fd2, sys.LOCK_EX|sys.LOCK_NB); err != sys.EAGAIN {
				ct.Printf("NB lock got %v\n", err)
				ct.Exit(1)
			}
			ct.Write(w, []byte("x"))
			// The blocking acquire succeeds once the parent unlocks.
			ct.Flock(fd2, sys.LOCK_EX)
			ct.Printf("child locked\n")
			ct.Exit(0)
		})
		lt.Close(w)
		lt.Read(r, make([]byte, 1)) // wait for the child's failed probe
		lt.Flock(fd, sys.LOCK_UN)
		_, status, _ := lt.Waitpid(pid)
		lt.Printf("child=%d\n", sys.WExitStatus(status))
		return 0
	})
	out = expectOK(t, st, out)
	if !strings.Contains(out, "child locked") || !strings.Contains(out, "child=0") {
		t.Fatalf("out = %q", out)
	}
}

func TestGetdirentriesPagination(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.MkdirAll("/big", 0o755)
		for i := 0; i < 100; i++ {
			lt.WriteFile("/big/file"+itoa(i), nil, 0o644)
		}
		names, err := lt.ReadDir("/big")
		if err != sys.OK {
			return 1
		}
		lt.Printf("count=%d\n", len(names))
		return 0
	})
	if out := expectOK(t, st, out); out != "count=100\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestDevices(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		// /dev/null swallows and yields EOF.
		fd, _ := lt.Open("/dev/null", sys.O_RDWR, 0)
		n, _ := lt.Write(fd, []byte("discard"))
		b := make([]byte, 8)
		m, _ := lt.Read(fd, b)
		lt.Printf("null %d %d\n", n, m)
		lt.Close(fd)
		// /dev/zero reads zeroes.
		fd, _ = lt.Open("/dev/zero", sys.O_RDONLY, 0)
		b = []byte{9, 9, 9}
		lt.Read(fd, b)
		lt.Printf("zero %d %d %d\n", b[0], b[1], b[2])
		return 0
	})
	if out := expectOK(t, st, out); out != "null 7 0\nzero 0 0 0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestConsoleInput(t *testing.T) {
	st, out := runFnSetup(t, func(k *kernel.Kernel) {
		k.Console().Feed("typed input\n")
		k.Console().FeedEOF()
	}, func(lt *libc.T) int {
		line, ok := lt.Stdin.ReadLine()
		lt.Printf("got %v %q\n", ok, line)
		return 0
	})
	if out := expectOK(t, st, out); out != "got true \"typed input\"\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestHostnameAndPagesize(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		h, _ := lt.Gethostname()
		rv, _ := lt.Syscall(sys.SYS_getpagesize)
		rv2, _ := lt.Syscall(sys.SYS_getdtablesize)
		lt.Printf("%s %d %d\n", h, rv[0], rv2[0])
		return 0
	})
	if out := expectOK(t, st, out); out != "interpose.sim 4096 64\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSettimeofday(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		before, _ := lt.Gettimeofday()
		// Jump a day ahead.
		addr := lt.Malloc(sys.TimevalSize)
		var b [sys.TimevalSize]byte
		sys.Timeval{Sec: before.Sec + 86400}.Encode(b[:])
		lt.Proc().CopyOut(addr, b[:])
		if _, err := lt.Syscall(sys.SYS_settimeofday, addr, 0); err != sys.OK {
			return 1
		}
		after, _ := lt.Gettimeofday()
		diff := int64(after.Sec) - int64(before.Sec)
		lt.Printf("jumped=%v\n", diff > 86000 && diff < 87000)
		return 0
	})
	if out := expectOK(t, st, out); out != "jumped=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRusageCountsSyscalls(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		for i := 0; i < 100; i++ {
			lt.Getpid()
		}
		ru, err := lt.Getrusage(sys.RUSAGE_SELF)
		if err != sys.OK {
			return 1
		}
		lt.Printf("enough=%v\n", ru.Nsyscall >= 100)
		return 0
	})
	if out := expectOK(t, st, out); out != "enough=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpreterChain(t *testing.T) {
	// A script whose interpreter is itself a script resolves through the
	// chain (bounded).
	reg := image.NewRegistry()
	reg.Register("real", libc.Main(func(lt *libc.T) int {
		lt.Printf("argv: %v\n", lt.Args)
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/real", "real")
	k.WriteFile("/bin/wrapper", []byte("#!/bin/real wrapped\n"), 0o755)
	k.WriteFile("/bin/script", []byte("#!/bin/wrapper\nignored body\n"), 0o755)
	p, _ := k.Spawn("/bin/script", []string{"/bin/script", "arg"}, nil)
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 ||
		out != "argv: [/bin/real wrapped /bin/wrapper /bin/script arg]\n" {
		t.Fatalf("%#x %q", st, out)
	}
}

func TestENOEXEC(t *testing.T) {
	st, out := runFnSetup(t, func(k *kernel.Kernel) {
		k.WriteFile("/bin/garbage", []byte("not an executable"), 0o755)
	}, func(lt *libc.T) int {
		err := lt.Exec("/bin/garbage", []string{"garbage"}, nil)
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "ENOEXEC\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestExecRequiresExecuteBit(t *testing.T) {
	st, out := runFnSetup(t, func(k *kernel.Kernel) {
		k.WriteFile("/bin/noexec", image.Header("main"), 0o644)
	}, func(lt *libc.T) int {
		err := lt.Exec("/bin/noexec", []string{"noexec"}, nil)
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "EACCES\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestOrphanReparenting(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		// pid 1 forks a child that forks a grandchild and exits; the
		// grandchild is reparented to pid 1.
		pid, _ := lt.Fork(func(ct *libc.T) {
			ct.Fork(func(gt *libc.T) {
				gt.Sigpause(0)
				gt.Exit(0)
			})
			ct.Exit(0)
		})
		lt.Waitpid(pid)
		// The orphan is now our child: getppid from it would be 1.
		gpid := pid + 1
		if err := lt.Kill(gpid, sys.SIGKILL); err != sys.OK {
			lt.Printf("kill orphan: %v\n", err)
			return 1
		}
		wpid, status, err := lt.Wait()
		lt.Printf("reaped=%v sig=%v err=%v\n",
			wpid == gpid, sys.WTermSig(status) == sys.SIGKILL, err == sys.OK)
		return 0
	})
	if out := expectOK(t, st, out); out != "reaped=true sig=true err=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// rootCredForTest builds the super-user credentials for direct FS pokes.
func rootCredForTest() vfs.Cred { return vfs.Cred{UID: 0, GID: 0} }

// TestShutdownRacesStart: Shutdown exits a not-yet-started process
// directly, and a concurrent Start may be spawning that process's
// goroutine at the same instant. The finishExit election must keep the
// host and the late goroutine from running teardown twice (double
// ProcExit hooks, double exitDone close); run under -race.
func TestShutdownRacesStart(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("noop", libc.Main(func(lt *libc.T) int { return 0 }))
	for i := 0; i < 200; i++ {
		k := kernel.New(reg)
		if err := k.InstallProgram("/bin/noop", "noop"); err != nil {
			t.Fatal(err)
		}
		p := k.NewProc()
		started := make(chan struct{})
		go func() {
			// The launch may lose the race and target an already-reaped
			// process; only the double-teardown matters here.
			p.Start("/bin/noop", []string{"noop"}, nil)
			close(started)
		}()
		k.Shutdown()
		<-started
		if n := k.ProcCount(); n != 0 {
			t.Fatalf("iter %d: %d procs after shutdown", i, n)
		}
	}
}

// TestDiscardReapsUnstartedProc: a published process whose launch fails
// must be removable without Shutdown, and Discard must leave the table
// empty.
func TestDiscardReapsUnstartedProc(t *testing.T) {
	reg := image.NewRegistry()
	k := kernel.New(reg)
	p := k.NewProc()
	if err := p.Start("/bin/definitely-missing", []string{"x"}, nil); err == nil {
		t.Fatal("start of missing image succeeded")
	}
	k.Discard(p)
	if n := k.ProcCount(); n != 0 {
		t.Fatalf("%d procs after discard", n)
	}
}
