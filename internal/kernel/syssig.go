package kernel

import "interpose/internal/sys"

func (k *Kernel) sysKill(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	pid := int(int32(a[0]))
	sig := int(a[1])
	if sig < 0 || sig >= sys.NSIG {
		return sys.Retval{}, sys.EINVAL
	}
	p.mu.Lock()
	cuid, ceuid := p.uid, p.euid
	p.mu.Unlock()

	k.pmu.Lock()
	defer k.pmu.Unlock()

	mayKill := func(t *Proc) bool {
		t.mu.Lock()
		tuid, teuid := t.uid, t.euid
		t.mu.Unlock()
		return ceuid == 0 || cuid == tuid || ceuid == tuid || cuid == teuid
	}
	post := func(t *Proc) {
		if sig != 0 {
			k.postSignalPLocked(t, sig)
			// Causal tracing: remember the killer's open span so the
			// delivery span can link back to it.
			noteSigCause(t, p.traceID.Load(), p.curSpan.Load())
		}
	}
	alive := func(t *Proc) bool {
		st := t.loadState()
		return st == procRunning || st == procStopped
	}

	switch {
	case pid > 0:
		t, ok := k.procs[pid]
		if !ok || !alive(t) {
			return sys.Retval{}, sys.ESRCH
		}
		if !mayKill(t) {
			return sys.Retval{}, sys.EPERM
		}
		post(t)
	case pid == 0, pid < -1:
		pgrp := p.pgrp
		if pid < -1 {
			pgrp = -pid
		}
		found, denied := false, false
		for _, t := range k.procs {
			if t.pgrp != pgrp || !alive(t) {
				continue
			}
			if !mayKill(t) {
				denied = true
				continue
			}
			found = true
			post(t)
		}
		if !found {
			if denied {
				return sys.Retval{}, sys.EPERM
			}
			return sys.Retval{}, sys.ESRCH
		}
	case pid == -1:
		found := false
		for _, t := range k.procs {
			if t == p || t.pid == 1 || !alive(t) {
				continue
			}
			if mayKill(t) {
				found = true
				post(t)
			}
		}
		if !found {
			return sys.Retval{}, sys.ESRCH
		}
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSigvec(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	sig := int(a[0])
	nsvAddr, osvAddr := a[1], a[2]
	if sig <= 0 || sig >= sys.NSIG {
		return sys.Retval{}, sys.EINVAL
	}
	p.sigMu.Lock()
	old := p.sigHandlers[sig]
	p.sigMu.Unlock()
	if osvAddr != 0 {
		var b [sys.SigvecSize]byte
		old.Encode(b[:])
		if e := p.CopyOut(osvAddr, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if nsvAddr != 0 {
		if sig == sys.SIGKILL || sig == sys.SIGSTOP {
			return sys.Retval{}, sys.EINVAL
		}
		var b [sys.SigvecSize]byte
		if e := p.CopyIn(nsvAddr, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
		sv := sys.DecodeSigvec(b[:])
		p.sigMu.Lock()
		p.sigHandlers[sig] = sv
		if sv.Handler == sys.SIG_IGN {
			p.sigPending &^= sys.SigMask(sig)
		}
		p.refreshAttnLocked()
		p.sigMu.Unlock()
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSigblock(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	old := p.sigMask
	p.sigMask |= a[0] &^ unmaskable
	p.refreshAttnLocked()
	return sys.Retval{old}, sys.OK
}

func (k *Kernel) sysSigsetmask(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	old := p.sigMask
	p.sigMask = a[0] &^ unmaskable
	p.refreshAttnLocked()
	return sys.Retval{old}, sys.OK
}

func (k *Kernel) sysSigpause(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	// Atomically set the mask and wait for a deliverable signal. The wait
	// parks on the process's own wake token under sigMu — the same lock
	// every signal post takes — so a signal cannot slip between the check
	// and the park.
	p.sigMu.Lock()
	old := p.sigMask
	p.sigMask = a[0] &^ unmaskable
	p.refreshAttnLocked()
	for p.deliverableSigLocked() == 0 && p.loadState() == procRunning {
		p.drainWake()
		p.sigMu.Unlock()
		<-p.wake
		p.sigMu.Lock()
	}
	// Restore the mask after the pending signal has been delivered (which
	// happens at system call exit); checkSignals consumes pauseMask.
	p.pauseMask = &old
	p.refreshAttnLocked()
	p.sigMu.Unlock()
	return sys.Retval{}, sys.EINTR
}
