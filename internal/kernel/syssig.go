package kernel

import "interpose/internal/sys"

func (k *Kernel) sysKill(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	pid := int(int32(a[0]))
	sig := int(a[1])
	if sig < 0 || sig >= sys.NSIG {
		return sys.Retval{}, sys.EINVAL
	}
	k.mu.Lock()
	defer k.mu.Unlock()

	mayKill := func(t *Proc) bool {
		return p.euid == 0 || p.uid == t.uid || p.euid == t.uid || p.uid == t.euid
	}
	post := func(t *Proc) {
		if sig != 0 {
			k.postSignalLocked(t, sig)
		}
	}

	switch {
	case pid > 0:
		t, ok := k.procs[pid]
		if !ok || t.state == procZombie || t.state == procDead {
			return sys.Retval{}, sys.ESRCH
		}
		if !mayKill(t) {
			return sys.Retval{}, sys.EPERM
		}
		post(t)
	case pid == 0, pid < -1:
		pgrp := p.pgrp
		if pid < -1 {
			pgrp = -pid
		}
		found, denied := false, false
		for _, t := range k.procs {
			if t.pgrp != pgrp || t.state != procRunning && t.state != procStopped {
				continue
			}
			if !mayKill(t) {
				denied = true
				continue
			}
			found = true
			post(t)
		}
		if !found {
			if denied {
				return sys.Retval{}, sys.EPERM
			}
			return sys.Retval{}, sys.ESRCH
		}
	case pid == -1:
		found := false
		for _, t := range k.procs {
			if t == p || t.pid == 1 || t.state != procRunning && t.state != procStopped {
				continue
			}
			if mayKill(t) {
				found = true
				post(t)
			}
		}
		if !found {
			return sys.Retval{}, sys.ESRCH
		}
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSigvec(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	sig := int(a[0])
	nsvAddr, osvAddr := a[1], a[2]
	if sig <= 0 || sig >= sys.NSIG {
		return sys.Retval{}, sys.EINVAL
	}
	k.mu.Lock()
	old := p.sigHandlers[sig]
	k.mu.Unlock()
	if osvAddr != 0 {
		var b [sys.SigvecSize]byte
		old.Encode(b[:])
		if e := p.CopyOut(osvAddr, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	if nsvAddr != 0 {
		if sig == sys.SIGKILL || sig == sys.SIGSTOP {
			return sys.Retval{}, sys.EINVAL
		}
		var b [sys.SigvecSize]byte
		if e := p.CopyIn(nsvAddr, b[:]); e != sys.OK {
			return sys.Retval{}, e
		}
		sv := sys.DecodeSigvec(b[:])
		k.mu.Lock()
		p.sigHandlers[sig] = sv
		if sv.Handler == sys.SIG_IGN {
			p.sigPending &^= sys.SigMask(sig)
		}
		k.mu.Unlock()
	}
	return sys.Retval{}, sys.OK
}

func (k *Kernel) sysSigblock(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	k.mu.Lock()
	defer k.mu.Unlock()
	old := p.sigMask
	p.sigMask |= a[0] &^ unmaskable
	return sys.Retval{old}, sys.OK
}

func (k *Kernel) sysSigsetmask(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	k.mu.Lock()
	defer k.mu.Unlock()
	old := p.sigMask
	p.sigMask = a[0] &^ unmaskable
	k.cond.Broadcast()
	return sys.Retval{old}, sys.OK
}

func (k *Kernel) sysSigpause(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	k.mu.Lock()
	defer k.mu.Unlock()
	old := p.sigMask
	p.sigMask = a[0] &^ unmaskable
	for p.deliverableLocked() == 0 {
		k.cond.Wait()
	}
	// Restore the mask after the pending signal has been delivered (which
	// happens at system call exit); checkSignals consumes pauseMask.
	p.pauseMask = &old
	return sys.Retval{}, sys.EINTR
}
