package kernel

import (
	"bytes"
	"sync"

	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// metricsDev is the /dev/metrics synthetic device: a read-only window
// onto the kernel's telemetry registry, so unmodified guest binaries can
// `cat /dev/metrics` and see live counters without any agent installed.
//
// A read at offset zero renders a fresh snapshot and caches the text;
// reads at higher offsets serve the cached render, so one sequential
// reader sees a consistent document even while counters keep moving.
type metricsDev struct {
	k *Kernel

	mu     sync.Mutex
	render []byte
}

// Seekable marks the device's contents as addressed by file offset, so
// the read path advances the descriptor offset and sequential readers
// reach end-of-file (unlike a tty, whose reads consume a queue).
func (d *metricsDev) Seekable() bool { return true }

func (d *metricsDev) Read(p []byte, off int64) (int, sys.Errno) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off == 0 || d.render == nil {
		var buf bytes.Buffer
		if r := d.k.tel.Load(); r != nil {
			snap := r.Snapshot()
			snap.Flight = nil // counters window; flight dumps are host-side
			snap.WriteText(&buf)
		} else {
			buf.WriteString("telemetry: disabled\n")
		}
		d.render = buf.Bytes()
	}
	if off >= int64(len(d.render)) {
		return 0, sys.OK
	}
	return copy(p, d.render[off:]), sys.OK
}

func (d *metricsDev) Write(p []byte, off int64) (int, sys.Errno) {
	return 0, sys.EPERM
}

func (d *metricsDev) Ioctl(req, arg sys.Word, c sys.Ctx) sys.Errno {
	return sys.ENOTTY
}

// seekableDevice is implemented by character devices whose contents are
// addressed by file offset; the read path advances the descriptor offset
// for these so sequential readers terminate at end-of-file.
type seekableDevice interface{ Seekable() bool }

func deviceSeekable(ip *vfs.Inode) bool {
	d, ok := ip.Device().(seekableDevice)
	return ok && d.Seekable()
}
