package kernel

import (
	"math/bits"

	"interpose/internal/sys"
)

// planMaxLayers bounds the stack depth the per-syscall interest bitmaps
// cover. Deeper stacks (never seen in practice) fall back to the linear
// Wants walk.
const planMaxLayers = 32

// dispatchPlan is the compiled form of a process's emulation stack: an
// immutable snapshot of the layers, their preboxed call contexts, and a
// per-syscall-number bitmap of which layers intercept each call. It is
// recompiled whenever the stack changes (attach, detach, fork) and
// published with one atomic store, so the dispatch fast path is a single
// atomic load followed by an array index: a call no layer registered
// interest in goes straight to the kernel without consulting any layer.
//
// In-flight calls keep using the plan they started under (each LayerCtx
// carries its plan), so a detach during a call cannot renumber the layers
// under a Down in progress.
type dispatchPlan struct {
	layers []*EmuLayer
	ctxs   []sys.Ctx // preboxed LayerCtx per layer; allocation-free dispatch

	// interest[num] has bit i set when layers[i] intercepts call num;
	// allMask covers out-of-range numbers (blanket-interest layers only).
	// nil when the stack is deeper than planMaxLayers (fallback walk).
	interest *[sys.MaxSyscall]uint32
	allMask  uint32
}

// emptyPlan is the shared plan of every process with no emulation layers.
var emptyPlan = &dispatchPlan{}

// interestBelow returns the interested-layer bitmap for num restricted to
// layers strictly below index `below`. Callers must check that the plan
// has a bitmap (interest != nil) first.
func (pl *dispatchPlan) interestBelow(below, num int) uint32 {
	var m uint32
	if num >= 0 && num < sys.MaxSyscall {
		m = pl.interest[num]
	} else {
		m = pl.allMask
	}
	if below < planMaxLayers {
		m &= 1<<uint(below) - 1
	}
	return m
}

// topInterested returns the index of the highest interested layer in mask.
func topInterested(mask uint32) int { return bits.Len32(mask) - 1 }

// compilePlan builds the dispatch plan for the given stack, bound to p.
// Caller holds p.mu (or p is not yet shared).
func compilePlan(p *Proc, layers []*EmuLayer) *dispatchPlan {
	if len(layers) == 0 {
		return emptyPlan
	}
	pl := &dispatchPlan{layers: layers}
	pl.ctxs = make([]sys.Ctx, len(layers))
	for i := range layers {
		pl.ctxs[i] = LayerCtx{Proc: p, plan: pl, layer: i}
	}
	if len(layers) > planMaxLayers {
		return pl // bitmap can't cover the stack; dispatch walks Wants
	}
	pl.interest = new([sys.MaxSyscall]uint32)
	sup := p.k.sup.Load()
	for i, l := range layers {
		if sup != nil && sup.quarantined(l) {
			// A quarantined layer stays in the stack (indices and Down
			// targets are stable) but gets no interest bits: dispatch
			// routes past it without entering the supervisor at all.
			// Re-admission republishes the plan with the bits restored.
			continue
		}
		bit := uint32(1) << uint(i)
		if l.interestAll {
			pl.allMask |= bit
		}
		for num := 0; num < sys.MaxSyscall; num++ {
			if l.Wants(num) {
				pl.interest[num] |= bit
			}
		}
	}
	return pl
}

// currentPlan returns the process's live dispatch plan (never nil).
func (p *Proc) currentPlan() *dispatchPlan { return p.plan.Load() }

// recompilePlan rebuilds and publishes the plan from p.emu. Caller holds
// p.mu.
func (p *Proc) recompilePlanLocked() {
	layers := append([]*EmuLayer(nil), p.emu...)
	p.plan.Store(compilePlan(p, layers))
}

// InterestMask reports, for tests and tooling, the bitmap of layers that
// would intercept call num (bit i = layer i, bottom = 0). Stacks too deep
// for the compiled bitmap are walked linearly; layers beyond bit 31 are
// not representable and are omitted.
func (p *Proc) InterestMask(num int) uint32 {
	pl := p.currentPlan()
	if pl.interest != nil {
		return pl.interestBelow(len(pl.layers), num)
	}
	var m uint32
	for i := 0; i < len(pl.layers) && i < planMaxLayers; i++ {
		if pl.layers[i].Wants(num) {
			m |= 1 << uint(i)
		}
	}
	return m
}
