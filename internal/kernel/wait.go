package kernel

import (
	"sync"

	"interpose/internal/sys"
)

// Per-object wait queues.
//
// The uniprocessor kernel had one condition variable for every sleep in
// the system and woke it with Broadcast. The SMP kernel gives every
// blocking object (each pipe direction, each parent's wait4, the console
// input buffer, the flock table) its own waitQ, guarded by that object's
// lock, so a wakeup touches only the processes actually sleeping there.
//
// A sleeping process parks on its own one-token channel (p.wake, buffered
// capacity 1). Wakers never block: waitQ.wakeAll and Proc.wakeup do a
// non-blocking send. Stale tokens — a wakeup that raced with the sleeper
// giving up — are drained at the next sleep entry, which is also why a
// spurious token is harmless: every sleep site loops on its condition.
//
// The signal path does not use queues at all. postSignal marks the signal
// pending under p.sigMu and unconditionally sends a token; sleepOn checks
// deliverable signals under the same p.sigMu both before parking and after
// waking, so a signal either lands before the sleeper commits (the sleeper
// sees it pending and returns EINTR without parking) or after (the token
// is already in the channel when the sleeper parks). The same two checks
// preserve the exit guarantee from the fault-injection PR: a process that
// is no longer running (zombie, stopped) can never re-block here.

// waitQ is a set of processes sleeping on one object. It is guarded by
// the lock of the object that embeds it.
type waitQ struct {
	waiters []*Proc
}

// wakeAll wakes every sleeper and empties the queue. The caller holds the
// owning object's lock.
func (q *waitQ) wakeAll() {
	for _, p := range q.waiters {
		p.wakeup()
	}
	q.waiters = q.waiters[:0]
}

// enqueue adds p. The caller holds the owning object's lock.
func (q *waitQ) enqueue(p *Proc) { q.waiters = append(q.waiters, p) }

// dequeue removes p if present. The caller holds the owning object's lock.
func (q *waitQ) dequeue(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// wakeup hands p one wake token without blocking.
func (p *Proc) wakeup() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// drainWake discards a stale token left over from an earlier sleep.
func (p *Proc) drainWake() {
	select {
	case <-p.wake:
	default:
	}
}

// sleepOn blocks p on q until a wakeup or a deliverable signal. objMu is
// the lock guarding q; the caller holds it and gets it back on return.
// Returns EINTR when the sleep was (or would immediately be) interrupted;
// callers re-evaluate their wait condition on OK, because wakeups can be
// spurious.
func (p *Proc) sleepOn(q *waitQ, objMu sync.Locker) sys.Errno {
	p.sigMu.Lock()
	if p.loadState() != procRunning || p.deliverableSigLocked() != 0 {
		p.sigMu.Unlock()
		return sys.EINTR
	}
	p.drainWake()
	p.sigMu.Unlock()
	q.enqueue(p)
	objMu.Unlock()

	<-p.wake

	objMu.Lock()
	q.dequeue(p)
	p.sigMu.Lock()
	intr := p.loadState() != procRunning || p.deliverableSigLocked() != 0
	p.sigMu.Unlock()
	if intr {
		return sys.EINTR
	}
	return sys.OK
}
