package kernel

import (
	"sync"

	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// File is an open file description: shared (via dup and fork) state — the
// seek offset, open flags, and the underlying object. Mutable fields are
// protected by the File's own mutex, except lockHeld, which belongs to
// the kernel-wide flock lock (it is written together with the inode's
// advisory-lock counters).
type File struct {
	mu    sync.Mutex
	refs  int
	ip    *vfs.Inode // nil for pipes; immutable
	pipe  *Pipe      // immutable
	rdEnd bool       // which end of a pipe this is; immutable
	flags int        // O_ accmode | O_APPEND | O_NONBLOCK
	off   int64

	dirEOF bool // getdirentries saw the end (invalidated by lseek)

	lockHeld int // sys.LOCK_SH or sys.LOCK_EX while holding an flock; k.flockMu
}

// Inode returns the file's inode (nil for pipes).
func (f *File) Inode() *vfs.Inode { return f.ip }

// ref adds one descriptor reference.
func (f *File) ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// Flags returns the current open flags.
func (f *File) Flags() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flags
}

// fdesc is one slot in a process's descriptor table.
type fdesc struct {
	file    *File
	cloexec bool
}

// allocFD finds the lowest free descriptor slot at or above min.
// Caller holds p.fdMu.
func (p *Proc) allocFDLocked(min int) (int, sys.Errno) {
	limit := int(p.Rlimit(sys.RLIMIT_NOFILE).Cur)
	if limit > len(p.fds) {
		limit = len(p.fds)
	}
	for fd := min; fd < limit; fd++ {
		if p.fds[fd].file == nil {
			return fd, sys.OK
		}
	}
	return 0, sys.EMFILE
}

// fileLocked returns the open file at descriptor fd. Caller holds p.fdMu.
func (p *Proc) fileLocked(fd int) (*File, sys.Errno) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].file == nil {
		return nil, sys.EBADF
	}
	return p.fds[fd].file, sys.OK
}

// file returns the open file at descriptor fd.
func (p *Proc) file(fd int) (*File, sys.Errno) {
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	return p.fileLocked(fd)
}

// installFD places a file in a specific slot. Caller holds p.fdMu.
func (p *Proc) installFDLocked(fd int, f *File, cloexec bool) {
	p.fds[fd] = fdesc{file: f, cloexec: cloexec}
	f.ref()
}

// closeFD releases descriptor fd. Caller holds p.fdMu.
func (p *Proc) closeFDLocked(fd int) sys.Errno {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].file == nil {
		return sys.EBADF
	}
	f := p.fds[fd].file
	p.fds[fd] = fdesc{}
	p.k.releaseFile(f)
	return sys.OK
}

// releaseFile drops one reference to an open file description, tearing
// down pipe ends and advisory locks at zero. May be called with p.fdMu
// held; takes the file, pipe, and flock locks as needed.
func (k *Kernel) releaseFile(f *File) {
	f.mu.Lock()
	f.refs--
	last := f.refs == 0
	f.mu.Unlock()
	if !last {
		return
	}
	if f.pipe != nil {
		pp := f.pipe
		pp.mu.Lock()
		pp.closeEnd(f.rdEnd)
		// A vanished peer is a wait condition for both directions:
		// readers see EOF, writers see EPIPE.
		pp.readQ.wakeAll()
		pp.writeQ.wakeAll()
		pp.mu.Unlock()
	}
	if f.ip != nil {
		k.flockMu.Lock()
		if f.lockHeld != 0 {
			unflockLocked(f)
			k.flockQ.wakeAll()
		}
		k.flockMu.Unlock()
	}
}

// unflockLocked releases an advisory lock held by f. Caller holds
// k.flockMu.
func unflockLocked(f *File) {
	switch f.lockHeld {
	case sys.LOCK_EX:
		f.ip.LockEx = false
	case sys.LOCK_SH:
		f.ip.LockShared--
	}
	f.lockHeld = 0
}

// Pipe is a classic 4.3BSD pipe: a bounded byte buffer with a reader end
// and a writer end. Each pipe has its own lock and its own wait queues —
// a write wakes only this pipe's readers.
type Pipe struct {
	mu      sync.Mutex
	buf     []byte
	start   int
	count   int
	readers int
	writers int

	readQ  waitQ // blocked readers, waiting for bytes or writer close
	writeQ waitQ // blocked writers, waiting for space or reader close

	// edgeSpan is the root span of the most recent traced writer; the
	// next traced reader consumes it as its causal link (the pipe
	// write→read edge of causal tracing). Guarded by mu.
	edgeSpan uint64
}

func newPipe() *Pipe {
	return &Pipe{buf: make([]byte, sys.PipeBuf), readers: 1, writers: 1}
}

// closeEnd drops one end. Caller holds pp.mu.
func (pp *Pipe) closeEnd(rdEnd bool) {
	if rdEnd {
		pp.readers--
	} else {
		pp.writers--
	}
}

// read copies up to len(p) buffered bytes out. Caller holds pp.mu.
func (pp *Pipe) read(p []byte) int {
	n := 0
	for n < len(p) && pp.count > 0 {
		c := copy(p[n:], pp.buf[pp.start:min(pp.start+pp.count, len(pp.buf))])
		pp.start = (pp.start + c) % len(pp.buf)
		pp.count -= c
		n += c
	}
	return n
}

// write copies as much of p as fits. Caller holds pp.mu.
func (pp *Pipe) write(p []byte) int {
	n := 0
	for n < len(p) && pp.count < len(pp.buf) {
		end := (pp.start + pp.count) % len(pp.buf)
		space := len(pp.buf) - pp.count
		chunk := len(pp.buf) - end
		if chunk > space {
			chunk = space
		}
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		copy(pp.buf[end:end+chunk], p[n:n+chunk])
		pp.count += chunk
		n += chunk
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
