package kernel

import (
	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// File is an open file description: shared (via dup and fork) state — the
// seek offset, open flags, and the underlying object. Protected by the big
// kernel lock.
type File struct {
	refs  int
	ip    *vfs.Inode // nil for pipes
	pipe  *Pipe
	rdEnd bool // which end of a pipe this is
	flags int  // O_ accmode | O_APPEND | O_NONBLOCK
	off   int64

	dirEOF bool // getdirentries saw the end (invalidated by lseek)

	lockHeld int // sys.LOCK_SH or sys.LOCK_EX while holding an flock
}

// Inode returns the file's inode (nil for pipes).
func (f *File) Inode() *vfs.Inode { return f.ip }

// fdesc is one slot in a process's descriptor table.
type fdesc struct {
	file    *File
	cloexec bool
}

// allocFD finds the lowest free descriptor slot at or above min.
// Caller holds k.mu.
func (p *Proc) allocFDLocked(min int) (int, sys.Errno) {
	limit := int(p.rlimits[sys.RLIMIT_NOFILE].Cur)
	if limit > len(p.fds) {
		limit = len(p.fds)
	}
	for fd := min; fd < limit; fd++ {
		if p.fds[fd].file == nil {
			return fd, sys.OK
		}
	}
	return 0, sys.EMFILE
}

// fileFor returns the open file at descriptor fd. Caller holds k.mu.
func (p *Proc) fileLocked(fd int) (*File, sys.Errno) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].file == nil {
		return nil, sys.EBADF
	}
	return p.fds[fd].file, sys.OK
}

// installFD places a file in a specific slot. Caller holds k.mu.
func (p *Proc) installFDLocked(fd int, f *File, cloexec bool) {
	p.fds[fd] = fdesc{file: f, cloexec: cloexec}
	f.refs++
}

// closeFD releases descriptor fd. Caller holds k.mu.
func (p *Proc) closeFDLocked(fd int) sys.Errno {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd].file == nil {
		return sys.EBADF
	}
	f := p.fds[fd].file
	p.fds[fd] = fdesc{}
	p.k.releaseFileLocked(f)
	return sys.OK
}

// releaseFileLocked drops one reference to an open file description,
// tearing down pipe ends and advisory locks at zero.
func (k *Kernel) releaseFileLocked(f *File) {
	f.refs--
	if f.refs > 0 {
		return
	}
	if f.pipe != nil {
		f.pipe.closeEnd(f.rdEnd)
		k.cond.Broadcast()
	}
	if f.lockHeld != 0 && f.ip != nil {
		unflockLocked(f)
		k.cond.Broadcast()
	}
}

// unflockLocked releases an advisory lock held by f.
func unflockLocked(f *File) {
	switch f.lockHeld {
	case sys.LOCK_EX:
		f.ip.LockEx = false
	case sys.LOCK_SH:
		f.ip.LockShared--
	}
	f.lockHeld = 0
}

// Pipe is a classic 4.3BSD pipe: a bounded byte buffer with a reader end
// and a writer end. Protected by the big kernel lock; sleeps use the
// kernel condition variable.
type Pipe struct {
	buf     []byte
	start   int
	count   int
	readers int
	writers int
}

func newPipe() *Pipe {
	return &Pipe{buf: make([]byte, sys.PipeBuf), readers: 1, writers: 1}
}

func (pp *Pipe) closeEnd(rdEnd bool) {
	if rdEnd {
		pp.readers--
	} else {
		pp.writers--
	}
}

// read copies up to len(p) buffered bytes out. Caller holds k.mu.
func (pp *Pipe) read(p []byte) int {
	n := 0
	for n < len(p) && pp.count > 0 {
		c := copy(p[n:], pp.buf[pp.start:min(pp.start+pp.count, len(pp.buf))])
		pp.start = (pp.start + c) % len(pp.buf)
		pp.count -= c
		n += c
	}
	return n
}

// write copies as much of p as fits. Caller holds k.mu.
func (pp *Pipe) write(p []byte) int {
	n := 0
	for n < len(p) && pp.count < len(pp.buf) {
		end := (pp.start + pp.count) % len(pp.buf)
		space := len(pp.buf) - pp.count
		chunk := len(pp.buf) - end
		if chunk > space {
			chunk = space
		}
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		copy(pp.buf[end:end+chunk], p[n:n+chunk])
		pp.count += chunk
		n += chunk
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
