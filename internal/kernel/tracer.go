package kernel

import (
	"sync/atomic"
	"time"

	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// TraceEvent is one kernel-level file-reference event, as produced by the
// compiled-into-the-kernel tracing facility (the monolithic DFSTrace-style
// implementation the paper's §3.5.3 compares against the dfstrace agent).
type TraceEvent struct {
	Time  time.Time
	PID   int
	Op    string
	Path  string
	Path2 string
	FD    int
	Err   sys.Errno
}

// Tracer receives kernel-level trace events.
type Tracer interface {
	Event(e TraceEvent)
}

// tracerBox wraps a Tracer for storage in an atomic.Value (which requires
// a consistent concrete type).
type tracerBox struct{ t Tracer }

var _ = vfs.Cred{} // keep the vfs import stable across edits

// trace emits a kernel trace event if tracing is enabled. The nil check is
// a single atomic load, so the facility costs nearly nothing when off —
// but unlike an interposition agent it required hooks in every system call
// implementation above ("modifying 26 kernel files", as the paper puts it).
func (k *Kernel) trace(p *Proc, op, path, path2 string, fd int, err sys.Errno) {
	v := k.tracerVal.Load()
	if v == nil {
		return
	}
	box := v.(tracerBox)
	if box.t == nil {
		return
	}
	box.t.Event(TraceEvent{
		Time: k.Now(), PID: p.pid, Op: op, Path: path, Path2: path2, FD: fd, Err: err,
	})
}

// traceLocked is trace for call sites holding the big kernel lock.
func (k *Kernel) traceLocked(p *Proc, op, path, path2 string, fd int, err sys.Errno) {
	// The tracer must not call back into the kernel; emitting under the
	// lock is safe for the provided collectors.
	k.trace(p, op, path, path2, fd, err)
}

// tracerVal holds the active Tracer.
type tracerValHolder = atomic.Value
