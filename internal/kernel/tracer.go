package kernel

import (
	"time"

	"interpose/internal/sys"
)

// TraceEvent is one kernel-level file-reference event, as produced by the
// compiled-into-the-kernel tracing facility (the monolithic DFSTrace-style
// implementation the paper's §3.5.3 compares against the dfstrace agent).
type TraceEvent struct {
	Time  time.Time
	PID   int
	Op    string
	Path  string
	Path2 string
	FD    int
	Err   sys.Errno
}

// Tracer receives kernel-level trace events.
type Tracer interface {
	Event(e TraceEvent)
}

// tracerBox wraps a Tracer so the atomic pointer always stores a
// consistent concrete type (a nil box means tracing is off).
type tracerBox struct{ t Tracer }

// trace is the kernel's single event spine: every file-reference hook in
// the system call implementations funnels through here, fanning out to
// the installed Tracer (the DFSTrace-style collector) and to the
// telemetry flight recorder. Each consumer costs one atomic load when
// disabled — the paper's pay-per-use principle, bought here at the price
// of hooks in every system call implementation above ("modifying 26
// kernel files", as the paper puts it).
func (k *Kernel) trace(p *Proc, op, path, path2 string, fd int, err sys.Errno) {
	if b := k.tracer.Load(); b != nil && b.t != nil {
		b.t.Event(TraceEvent{
			Time: k.Now(), PID: p.pid, Op: op, Path: path, Path2: path2, FD: fd, Err: err,
		})
	}
	if r := k.tel.Load(); r != nil {
		r.RecordFileEvent(p.pid, op, path, path2, fd, int32(err))
	}
}

// traceLocked is trace for call sites holding the big kernel lock.
func (k *Kernel) traceLocked(p *Proc, op, path, path2 string, fd int, err sys.Errno) {
	// The consumers must not call back into the kernel; emitting under the
	// lock is safe for the provided collectors and the flight ring.
	k.trace(p, op, path, path2, fd, err)
}
