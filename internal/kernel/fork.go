package kernel

import (
	"interpose/internal/vfs"
)

// Fork clones a quiesced world's kernel copy-on-write: a fresh kernel
// shell (empty process table, own console, own driver instances) around
// a vfs.FS.Fork of the parent's filesystem. File data blocks are shared
// with the parent behind refcounts until first write, so the cost is
// O(#inodes), not O(bytes) — the basis of warm-world pooling
// (internal/world/pool.go).
//
// Device inodes in the cloned tree are re-resolved by rdev against the
// child's own driver table, exactly as Restore does: a clone that kept
// the parent's ttyDev would write its console output into the parent
// world. The parent must be quiesced (no running processes, journal
// committed); Fork takes only the filesystem's per-inode read locks.
func Fork(parent *Kernel) (*Kernel, error) {
	k := newKernel(parent.images)
	parent.pmu.Lock()
	k.hostname = parent.hostname
	parent.pmu.Unlock()
	storeInt64((*int64)(&k.timeOffset), loadInt64((*int64)(&parent.timeOffset)))
	fs, err := parent.fs.Fork(k.Now, func(rdev uint32) (vfs.Device, bool) {
		d := k.lookupDevice(rdev)
		return d, d != nil
	})
	if err != nil {
		return nil, err
	}
	k.fs = fs
	return k, nil
}
