package kernel

// Kernel resource limits: the 4.3BSD getrlimit/setrlimit surface and the
// accessors the rest of the kernel enforces them through. The limits
// with real semantics here are RLIMIT_NOFILE (descriptor allocation
// fails with EMFILE at the ceiling — fd.go's allocFDLocked and dup2's
// index check), RLIMIT_FSIZE (a write or truncate extending a file past
// the limit fails with EFBIG and posts SIGXFSZ — sysfile.go), and
// RLIMIT_DATA (wired to the address-space allocator). Limits are copied
// by fork and preserved across execve, like every other per-process
// identity field guarded by p.mu.

import (
	"fmt"
	"strings"

	"interpose/internal/sys"
)

// Rlimit returns the current limit for res. Exported for toolkit layers
// that want to honor process limits. Out-of-range resource numbers —
// reachable from agent code, which the kernel must survive — read as
// unlimited rather than panicking.
func (p *Proc) Rlimit(res int) sys.Rlimit {
	if res < 0 || res >= sys.RLIM_NLIMITS {
		return sys.Rlimit{Cur: sys.RLIM_INFINITY, Max: sys.RLIM_INFINITY}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rlimits[res]
}

// SetRlimit installs a limit from outside the system interface (world
// building: a tenant spec's resource budget applied before the first
// program runs). Unlike sysSetrlimit there is no privilege check — the
// host is the machine owner — but the Cur<=Max invariant still holds.
func (p *Proc) SetRlimit(res int, rl sys.Rlimit) error {
	if res < 0 || res >= sys.RLIM_NLIMITS {
		return fmt.Errorf("kernel: setrlimit: resource %d out of range", res)
	}
	if rl.Cur > rl.Max {
		return fmt.Errorf("kernel: setrlimit: cur %d > max %d", rl.Cur, rl.Max)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rlimits[res] = rl
	if res == sys.RLIMIT_DATA {
		p.as.SetLimit(rl.Cur)
	}
	return nil
}

// RlimitByName maps a spec-file resource name to its RLIMIT_* number.
// Recognized names: nofile, fsize, data, cpu, core, stack, rss.
func RlimitByName(name string) (int, bool) {
	switch strings.ToLower(name) {
	case "nofile":
		return sys.RLIMIT_NOFILE, true
	case "fsize":
		return sys.RLIMIT_FSIZE, true
	case "data":
		return sys.RLIMIT_DATA, true
	case "cpu":
		return sys.RLIMIT_CPU, true
	case "core":
		return sys.RLIMIT_CORE, true
	case "stack":
		return sys.RLIMIT_STACK, true
	case "rss":
		return sys.RLIMIT_RSS, true
	}
	return 0, false
}

// checkFsize reports whether growing a file to length would exceed the
// process's RLIMIT_FSIZE; when it would, SIGXFSZ is posted and EFBIG
// returned, per 4.3BSD (truncate and write share this behavior).
func (k *Kernel) checkFsize(p *Proc, length int64) sys.Errno {
	if length > int64(p.Rlimit(sys.RLIMIT_FSIZE).Cur) {
		k.PostSignal(p, sys.SIGXFSZ)
		return sys.EFBIG
	}
	return sys.OK
}

func (k *Kernel) sysGetrlimit(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	res := int(a[0])
	if res < 0 || res >= sys.RLIM_NLIMITS {
		return sys.Retval{}, sys.EINVAL
	}
	rl := p.Rlimit(res)
	var b [sys.RlimitSize]byte
	rl.Encode(b[:])
	return sys.Retval{}, p.CopyOut(a[1], b[:])
}

func (k *Kernel) sysSetrlimit(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	res := int(a[0])
	if res < 0 || res >= sys.RLIM_NLIMITS {
		return sys.Retval{}, sys.EINVAL
	}
	var b [sys.RlimitSize]byte
	if e := p.CopyIn(a[1], b[:]); e != sys.OK {
		return sys.Retval{}, e
	}
	rl := sys.DecodeRlimit(b[:])
	if rl.Cur > rl.Max {
		return sys.Retval{}, sys.EINVAL
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.rlimits[res]
	if rl.Max > old.Max && p.euid != 0 {
		return sys.Retval{}, sys.EPERM
	}
	p.rlimits[res] = rl
	if res == sys.RLIMIT_DATA {
		p.as.SetLimit(rl.Cur)
	}
	return sys.Retval{}, sys.OK
}
