package kernel_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// downer is the call-down capability of a layer context (core.Downer,
// redeclared locally to keep this package free of the toolkit).
type downer interface {
	Down(num int, a sys.Args) (sys.Retval, sys.Errno)
}

func callDown(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	return c.(downer).Down(num, a)
}

// superviseWorld boots a kernel with a host-driven process and one named
// layer interested in getpid, running h.
func superviseWorld(t *testing.T, name string, h sys.HandlerFunc) (*kernel.Kernel, *kernel.Proc, *kernel.EmuLayer) {
	t.Helper()
	k := kernel.New(image.NewRegistry())
	p := k.NewProc()
	l := kernel.NewEmuLayer(h)
	l.Name = name
	l.Register(sys.SYS_getpid)
	p.PushEmulation(l)
	return k, p, l
}

func TestParseSuperviseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mode kernel.SuperviseMode
		ok   bool
		err  bool
	}{
		{"off", 0, false, false},
		{"", 0, false, false},
		{"strict", kernel.SuperviseStrict, true, false},
		{"bypass", kernel.SuperviseBypass, true, false},
		{"lenient", 0, false, true},
	} {
		mode, ok, err := kernel.ParseSuperviseMode(tc.in)
		if (err != nil) != tc.err || ok != tc.ok || (ok && mode != tc.mode) {
			t.Errorf("ParseSuperviseMode(%q) = %v, %v, %v", tc.in, mode, ok, err)
		}
	}
}

func TestSupervisorContainsPanicStrict(t *testing.T) {
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		panic("agent bug")
	})
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{
		Mode:          kernel.SuperviseStrict,
		TripThreshold: 100, // keep the breaker closed; this test is about containment
	})
	k.SetSupervisor(s)

	_, err := p.Syscall(sys.SYS_getpid, sys.Args{})
	if err != sys.EFAULT {
		t.Fatalf("supervised panic: err = %s, want EFAULT", err.Name())
	}
	// The process survives: uninterposed calls still work.
	rv, err := p.Syscall(sys.SYS_getuid, sys.Args{})
	if err != sys.OK {
		t.Fatalf("getuid after contained panic: %s", err.Name())
	}
	_ = rv
	msg, stack, ok := s.LastPanic("boom")
	if !ok || msg != "agent bug" || len(stack) == 0 {
		t.Fatalf("LastPanic = %q, %d bytes, %v", msg, len(stack), ok)
	}
}

func TestSupervisorContainsPanicCustomErrno(t *testing.T) {
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		panic("agent bug")
	})
	k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
		Errno:         sys.EIO,
		TripThreshold: 100,
	}))
	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EIO {
		t.Fatalf("err = %s, want EIO", err.Name())
	}
}

func TestSupervisorBypassCompletesBelow(t *testing.T) {
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		panic("agent bug")
	})
	k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
		Mode:          kernel.SuperviseBypass,
		TripThreshold: 100,
	}))
	rv, err := p.Syscall(sys.SYS_getpid, sys.Args{})
	if err != sys.OK || int(rv[0]) != p.PID() {
		t.Fatalf("bypassed call = %v, %s; want pid %d", rv, err.Name(), p.PID())
	}
}

func TestSupervisorBreakerTripsAndQuarantines(t *testing.T) {
	var calls atomic.Int64
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		calls.Add(1)
		panic("agent bug")
	})
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{
		TripThreshold: 3,
		Cooldown:      -1, // permanent quarantine
	})
	k.SetSupervisor(s)

	for i := 0; i < 3; i++ {
		if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EFAULT {
			t.Fatalf("call %d: err = %s, want EFAULT", i, err.Name())
		}
	}
	if got := s.QuarantinedLayers(); len(got) != 1 || got[0] != "boom" {
		t.Fatalf("QuarantinedLayers = %v, want [boom]", got)
	}
	// The trip republished the plan: the layer's interest bit is gone and
	// the call completes in the kernel without entering the layer.
	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("InterestMask(getpid) = %#x after quarantine, want 0", m)
	}
	rv, err := p.Syscall(sys.SYS_getpid, sys.Args{})
	if err != sys.OK || int(rv[0]) != p.PID() {
		t.Fatalf("post-quarantine call = %v, %s", rv, err.Name())
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("layer ran %d times, want 3 (quarantine must bypass it)", n)
	}

	// Breaker state is visible to telemetry.
	gauges := map[string]uint64{}
	for _, g := range s.Gauges() {
		gauges[g.Name] = g.Value
	}
	for name, want := range map[string]uint64{
		"supervise.layer.boom.panics":      3,
		"supervise.layer.boom.contained":   3,
		"supervise.layer.boom.trips":       1,
		"supervise.layer.boom.quarantined": 1,
	} {
		if gauges[name] != want {
			t.Errorf("gauge %s = %d, want %d", name, gauges[name], want)
		}
	}
	// And the flight ring carries the quarantine event with the layer name.
	var sawQuarantine bool
	for _, ev := range reg.FlightEvents() {
		if ev.Op == "supervise:quarantine" && ev.Path == "boom" {
			sawQuarantine = true
		}
	}
	if !sawQuarantine {
		t.Error("no supervise:quarantine flight event for layer boom")
	}
}

func TestSupervisorHalfOpenReadmission(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	k, p, _ := superviseWorld(t, "flaky", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		calls.Add(1)
		if fail.Load() {
			panic("transient bug")
		}
		return callDown(c, num, a)
	})
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{
		TripThreshold: 1,
		Cooldown:      20 * time.Millisecond,
	})
	k.SetSupervisor(s)

	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EFAULT {
		t.Fatalf("tripping call: err = %s", err.Name())
	}
	if got := s.QuarantinedLayers(); len(got) != 1 {
		t.Fatalf("QuarantinedLayers = %v", got)
	}

	// The layer recovers; after the cooldown the breaker goes half-open
	// and republishes the interest bit so a probe can reach it.
	fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for p.InterestMask(sys.SYS_getpid) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interest bit never restored for half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	rv, err := p.Syscall(sys.SYS_getpid, sys.Args{}) // the probe
	if err != sys.OK || int(rv[0]) != p.PID() {
		t.Fatalf("probe call = %v, %s", rv, err.Name())
	}
	if got := s.QuarantinedLayers(); len(got) != 0 {
		t.Fatalf("still quarantined after successful probe: %v", got)
	}
	// Re-admitted: subsequent calls run through the layer again.
	before := calls.Load()
	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
		t.Fatalf("re-admitted call: %s", err.Name())
	}
	if calls.Load() != before+1 {
		t.Fatal("re-admitted layer was not called")
	}
}

func TestSupervisorProbeFailureRequarantines(t *testing.T) {
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		panic("permanent bug")
	})
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{
		TripThreshold: 1,
		Cooldown:      15 * time.Millisecond,
	})
	k.SetSupervisor(s)

	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EFAULT {
		t.Fatalf("tripping call: err = %s", err.Name())
	}
	// Wait for half-open, fail the probe, and verify the re-trip.
	deadline := time.Now().Add(5 * time.Second)
	for p.InterestMask(sys.SYS_getpid) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never went half-open")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EFAULT {
		t.Fatalf("probe: err = %s, want EFAULT", err.Name())
	}
	if got := s.QuarantinedLayers(); len(got) != 1 || got[0] != "boom" {
		t.Fatalf("QuarantinedLayers after failed probe = %v", got)
	}
	var trips uint64
	for _, g := range s.Gauges() {
		if g.Name == "supervise.layer.boom.trips" {
			trips = g.Value
		}
	}
	if trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
}

func TestSupervisorDeadlineOverrun(t *testing.T) {
	release := make(chan struct{})
	k, p, _ := superviseWorld(t, "stuck", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		<-release // hang until the test lets go
		return callDown(c, num, a)
	})
	defer close(release)
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{
		TripThreshold: 1,
		Cooldown:      -1,
		Deadline:      20 * time.Millisecond,
	})
	k.SetSupervisor(s)

	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.EFAULT {
		t.Fatalf("overrun call: err = %s, want EFAULT", err.Name())
	}
	if got := s.QuarantinedLayers(); len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("QuarantinedLayers = %v, want [stuck]", got)
	}
	var overruns uint64
	for _, g := range s.Gauges() {
		if g.Name == "supervise.layer.stuck.overruns" {
			overruns = g.Value
		}
	}
	if overruns != 1 {
		t.Fatalf("overruns = %d, want 1", overruns)
	}
	msg, _, ok := s.LastPanic("stuck")
	if !ok || !strings.Contains(msg, "deadline") {
		t.Fatalf("LastPanic = %q, %v", msg, ok)
	}
}

func TestSupervisorRemovalRestoresInterest(t *testing.T) {
	var calls atomic.Int64
	k, p, _ := superviseWorld(t, "boom", func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
		if calls.Add(1) <= 2 {
			panic("bug")
		}
		return callDown(c, num, a)
	})
	s := kernel.NewSupervisor(k, kernel.SupervisorConfig{TripThreshold: 2, Cooldown: -1})
	k.SetSupervisor(s)
	p.Syscall(sys.SYS_getpid, sys.Args{})
	p.Syscall(sys.SYS_getpid, sys.Args{})
	if m := p.InterestMask(sys.SYS_getpid); m != 0 {
		t.Fatalf("InterestMask = %#x, want 0 (quarantined)", m)
	}
	// Removing the supervisor republishes plans: the layer is back.
	k.SetSupervisor(nil)
	if m := p.InterestMask(sys.SYS_getpid); m == 0 {
		t.Fatal("InterestMask still 0 after supervisor removal")
	}
	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
		t.Fatalf("unsupervised call: %s", err.Name())
	}
}

// TestSupervisorExitUnwind runs a real guest under a supervised blanket
// layer: the exit and exec unwinds must pass through containment (and the
// deadline goroutine) untouched or process termination would be swallowed.
func TestSupervisorExitUnwind(t *testing.T) {
	for _, tc := range []struct {
		name     string
		deadline time.Duration
	}{
		{"inline", 0},
		{"deadline-goroutine", 5 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := image.NewRegistry()
			reg.Register("main", libc.Main(func(lt *libc.T) int {
				lt.Printf("pid %d alive\n", lt.Getpid())
				return 7
			}))
			k := kernel.New(reg)
			if err := k.InstallProgram("/bin/main", "main"); err != nil {
				t.Fatal(err)
			}
			k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
				Mode:     kernel.SuperviseStrict,
				Deadline: tc.deadline,
			}))
			p := k.NewProc()
			if err := p.OpenConsole(); err != nil {
				t.Fatal(err)
			}
			passthrough := kernel.NewEmuLayer(sys.HandlerFunc(callDown))
			passthrough.Name = "passthrough"
			passthrough.RegisterAll()
			p.PushEmulation(passthrough)
			if err := p.Start("/bin/main", []string{"main"}, nil); err != nil {
				t.Fatal(err)
			}
			st := k.WaitExit(p)
			out := k.Console().TakeOutput()
			if !sys.WIfExited(st) || sys.WExitStatus(st) != 7 {
				t.Fatalf("status = %#x, output:\n%s", st, out)
			}
			if !strings.Contains(out, "alive") {
				t.Fatalf("guest output missing: %q", out)
			}
		})
	}
}
