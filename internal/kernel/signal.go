package kernel

import (
	"interpose/internal/sys"
	"interpose/internal/trace"
)

// unmaskable signals can be neither blocked, caught, nor ignored.
const unmaskable = uint32(1<<(sys.SIGKILL-1)) | uint32(1<<(sys.SIGSTOP-1))

// sigDefaultIgnore is the set of signals whose default action is to be
// discarded.
var sigDefaultIgnore = sigSet(sys.SIGCHLD, sys.SIGIO, sys.SIGURG, sys.SIGWINCH,
	sys.SIGINFO, sys.SIGCONT)

// sigDefaultStop is the set of signals whose default action stops the
// process.
var sigDefaultStop = sigSet(sys.SIGSTOP, sys.SIGTSTP, sys.SIGTTIN, sys.SIGTTOU)

func sigSet(sigs ...int) uint32 {
	var m uint32
	for _, s := range sigs {
		m |= sys.SigMask(s)
	}
	return m
}

// postSignalPLocked marks sig pending on p and wakes any interruptible
// sleep. The caller holds k.pmu — signal posting can change process state
// (SIGCONT resumes a stopped process), and state transitions belong to
// the process-table lock. p.sigMu is taken internally, so the caller must
// not hold any object lock (pipe, console, flock): a waker inside such a
// lock releases it before posting.
func (k *Kernel) postSignalPLocked(p *Proc, sig int) {
	if sig <= 0 || sig >= sys.NSIG {
		return
	}
	st := p.loadState()
	if st == procZombie || st == procDead {
		return
	}
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	continued := false
	if sig == sys.SIGCONT {
		// Continuing clears pending stops, and vice versa.
		p.sigPending &^= sigDefaultStop
		if st == procStopped {
			p.setStateLocked(procRunning)
			continued = true
		}
	}
	if sigDefaultStop&sys.SigMask(sig) != 0 {
		p.sigPending &^= sys.SigMask(sys.SIGCONT)
	}
	// Discard at post time if the disposition is to ignore — explicitly,
	// or by default action (4.3BSD behaviour; an ignored signal must not
	// interrupt a sleep). An ignored SIGCONT still continues the process,
	// and with targeted wait queues the stopped sleeper must be woken
	// explicitly — there is no system-wide broadcast to catch it anymore.
	sv := p.sigHandlers[sig]
	ignored := sv.Handler == sys.SIG_IGN ||
		(sv.Handler == sys.SIG_DFL && sigDefaultIgnore&sys.SigMask(sig) != 0)
	if ignored && sig != sys.SIGKILL && sig != sys.SIGSTOP {
		p.refreshAttnLocked()
		if continued {
			p.wakeup()
		}
		return
	}
	p.sigPending |= sys.SigMask(sig)
	p.refreshAttnLocked()
	p.wakeup()
}

// noteSigCause records the poster's open root span as the causal origin
// of the next signal delivered to target (the post→deliver edge of
// causal tracing). Best-effort: one slot, latest poster wins, consumed
// at delivery. Takes only target.sigMu, the innermost lock, so any
// posting context may call it.
func noteSigCause(target *Proc, traceID, span uint64) {
	if span == 0 {
		return
	}
	target.sigMu.Lock()
	target.sigCauseTrace = traceID
	target.sigCauseSpan = span
	target.sigMu.Unlock()
}

// PostSignal delivers sig to p from outside the system interface (tests,
// tooling). Normal code uses the kill system call.
func (k *Kernel) PostSignal(p *Proc, sig int) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	k.postSignalPLocked(p, sig)
}

// deliverableSigLocked returns the pending, unmasked signal set. Caller
// holds p.sigMu.
func (p *Proc) deliverableSigLocked() uint32 {
	return p.sigPending &^ (p.sigMask &^ unmaskable)
}

// refreshAttnLocked recomputes the signal-attention flag. It must be
// called, holding p.sigMu, after any change to the pending set, the mask,
// the pause mask, or the process state — the flag is what lets the
// syscall exit path skip taking sigMu entirely.
func (p *Proc) refreshAttnLocked() {
	if p.deliverableSigLocked() != 0 || p.loadState() != procRunning || p.pauseMask != nil {
		p.sigAttn.Store(1)
	} else {
		p.sigAttn.Store(0)
	}
}

// checkSignals delivers pending unmasked signals. It runs on the process's
// own goroutine at system call exit (and from Yield). The fast path is one
// atomic load: with no signal work pending, syscall exit takes no lock.
func (p *Proc) checkSignals() {
	if p.sigAttn.Load() == 0 {
		return
	}
	p.checkSignalsSlow()
}

// checkSignalsSlow walks each deliverable signal up through interested
// emulation layers to the application handler or default action. It must
// be called with no kernel locks held.
func (p *Proc) checkSignalsSlow() {
	for {
		p.sigMu.Lock()
		// Stopped: sleep until continued or killed. The wait parks on the
		// process's own wake token under sigMu, the same lock postSignal
		// uses to change the pending set after a SIGCONT state change, so
		// the continue cannot be lost.
		for p.loadState() == procStopped && p.sigPending&sys.SigMask(sys.SIGKILL) == 0 {
			p.drainWake()
			p.sigMu.Unlock()
			<-p.wake
			p.sigMu.Lock()
		}
		deliverable := p.deliverableSigLocked()
		if deliverable == 0 {
			if p.pauseMask != nil {
				p.sigMask = *p.pauseMask
				p.pauseMask = nil
			}
			p.refreshAttnLocked()
			p.sigMu.Unlock()
			return
		}
		sig := 0
		for s := 1; s < sys.NSIG; s++ {
			if deliverable&sys.SigMask(s) != 0 {
				sig = s
				break
			}
		}
		p.sigPending &^= sys.SigMask(sig)
		p.refreshAttnLocked()
		dispatch := p.sigDispatch
		causeTrace, causeSpan := p.sigCauseTrace, p.sigCauseSpan
		p.sigCauseTrace, p.sigCauseSpan = 0, 0
		p.sigMu.Unlock()

		// Causal tracing: an instant delivery span linked to the poster's
		// span. The receiver adopts the poster's trace if it has none yet,
		// and the delivery becomes the causal parent of whatever the
		// receiver does next (e.g. a handler's first system call).
		if causeSpan != 0 {
			if t := p.k.trc.Load(); t != nil {
				if p.traceID.Load() == 0 {
					p.traceID.Store(causeTrace)
				}
				sp := trace.Span{
					Trace: p.traceID.Load(),
					ID:    t.NewSpanID(),
					Link:  causeSpan,
					PID:   int32(p.pid),
					Num:   int32(sig),
					Layer: trace.LayerSignal,
					Start: t.Now(),
				}
				t.Record(sp)
				p.causeSpan.Store(sp.ID)
			}
		}

		// Upward interposition path: kernel → layers (bottom first) → app.
		// An interposer may rewrite the signal, so the application's
		// disposition is looked up for the signal that actually arrives.
		if s2 := p.signalUpFrom(0, sig, 0); s2 > 0 && s2 < sys.NSIG {
			p.sigMu.Lock()
			sv := p.sigHandlers[s2]
			p.sigMu.Unlock()
			p.deliverToUser(s2, sv, dispatch)
		}
	}
}

// signalUpFrom runs the signal through emulation layers starting at index
// from (bottom=0), returning the possibly rewritten signal, 0 if consumed.
func (p *Proc) signalUpFrom(from, sig, code int) int {
	pl := p.plan.Load()
	for i := from; i < len(pl.layers) && sig != 0; i++ {
		l := pl.layers[i]
		if l.WantsSignal(sig) {
			sig = l.Signals.Signal(pl.ctxs[i], sig, code)
		}
	}
	return sig
}

// deliverToUser applies the handler or default action for sig.
func (p *Proc) deliverToUser(sig int, sv sys.Sigvec, dispatch func(int, sys.Word)) {
	switch {
	case sig == sys.SIGKILL || (sv.Handler == sys.SIG_DFL && defaultTerminates(sig)):
		p.exitNow(sys.WStatusSignal(sig))
	case sv.Handler == sys.SIG_DFL && sigDefaultStop&sys.SigMask(sig) != 0:
		p.k.pmu.Lock()
		p.setStateLocked(procStopped)
		p.k.pmu.Unlock()
		p.sigMu.Lock()
		p.refreshAttnLocked()
		p.sigMu.Unlock()
	case sv.Handler == sys.SIG_DFL || sv.Handler == sys.SIG_IGN:
		// Default-ignore or explicitly ignored: nothing to do.
	default:
		if dispatch == nil {
			// No user dispatcher installed: treat as default terminate.
			p.exitNow(sys.WStatusSignal(sig))
		}
		// Block sig (and sv.Mask) during the handler, as sigvec promises.
		p.sigMu.Lock()
		old := p.sigMask
		p.sigMask |= sys.SigMask(sig) | sv.Mask
		p.refreshAttnLocked()
		p.sigMu.Unlock()
		dispatch(sig, sv.Handler)
		p.sigMu.Lock()
		p.sigMask = old
		p.refreshAttnLocked()
		p.sigMu.Unlock()
	}
}

func defaultTerminates(sig int) bool {
	return sigDefaultIgnore&sys.SigMask(sig) == 0 && sigDefaultStop&sys.SigMask(sig) == 0
}
