package kernel

import "interpose/internal/sys"

// unmaskable signals can be neither blocked, caught, nor ignored.
const unmaskable = uint32(1<<(sys.SIGKILL-1)) | uint32(1<<(sys.SIGSTOP-1))

// sigDefaultIgnore is the set of signals whose default action is to be
// discarded.
var sigDefaultIgnore = sigSet(sys.SIGCHLD, sys.SIGIO, sys.SIGURG, sys.SIGWINCH,
	sys.SIGINFO, sys.SIGCONT)

// sigDefaultStop is the set of signals whose default action stops the
// process.
var sigDefaultStop = sigSet(sys.SIGSTOP, sys.SIGTSTP, sys.SIGTTIN, sys.SIGTTOU)

func sigSet(sigs ...int) uint32 {
	var m uint32
	for _, s := range sigs {
		m |= sys.SigMask(s)
	}
	return m
}

// postSignal marks sig pending on p and wakes any interruptible sleep.
// Caller holds k.mu.
func (k *Kernel) postSignalLocked(p *Proc, sig int) {
	if sig <= 0 || sig >= sys.NSIG || p.state == procZombie || p.state == procDead {
		return
	}
	if sig == sys.SIGCONT {
		// Continuing clears pending stops, and vice versa.
		p.sigPending &^= sigDefaultStop
		if p.state == procStopped {
			p.state = procRunning
		}
	}
	if sigDefaultStop&sys.SigMask(sig) != 0 {
		p.sigPending &^= sys.SigMask(sys.SIGCONT)
	}
	// Discard at post time if the disposition is to ignore — explicitly,
	// or by default action (4.3BSD behaviour; an ignored signal must not
	// interrupt a sleep).
	sv := p.sigHandlers[sig]
	ignored := sv.Handler == sys.SIG_IGN ||
		(sv.Handler == sys.SIG_DFL && sigDefaultIgnore&sys.SigMask(sig) != 0)
	if ignored && sig != sys.SIGKILL && sig != sys.SIGSTOP {
		return
	}
	p.sigPending |= sys.SigMask(sig)
	k.cond.Broadcast()
}

// PostSignal delivers sig to p from outside the system interface (tests,
// tooling). Normal code uses the kill system call.
func (k *Kernel) PostSignal(p *Proc, sig int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.postSignalLocked(p, sig)
}

// deliverableLocked returns the pending, unmasked signal set.
func (p *Proc) deliverableLocked() uint32 {
	return p.sigPending &^ (p.sigMask &^ unmaskable)
}

// checkSignals delivers pending unmasked signals. It runs on the process's
// own goroutine at system call exit (and from Yield), walking each signal
// up through interested emulation layers to the application handler or
// default action. It must be called without the big lock held.
func (p *Proc) checkSignals() {
	for {
		p.k.mu.Lock()
		if p.state == procStopped {
			// Stopped: sleep until continued or killed.
			for p.state == procStopped && p.sigPending&sys.SigMask(sys.SIGKILL) == 0 {
				p.k.cond.Wait()
			}
		}
		deliverable := p.deliverableLocked()
		if deliverable == 0 {
			if p.pauseMask != nil {
				p.sigMask = *p.pauseMask
				p.pauseMask = nil
			}
			p.k.mu.Unlock()
			return
		}
		sig := 0
		for s := 1; s < sys.NSIG; s++ {
			if deliverable&sys.SigMask(s) != 0 {
				sig = s
				break
			}
		}
		p.sigPending &^= sys.SigMask(sig)
		dispatch := p.sigDispatch
		p.k.mu.Unlock()

		// Upward interposition path: kernel → layers (bottom first) → app.
		// An interposer may rewrite the signal, so the application's
		// disposition is looked up for the signal that actually arrives.
		if s2 := p.signalUpFrom(0, sig, 0); s2 > 0 && s2 < sys.NSIG {
			p.k.mu.Lock()
			sv := p.sigHandlers[s2]
			p.k.mu.Unlock()
			p.deliverToUser(s2, sv, dispatch)
		}
	}
}

// signalUpFrom runs the signal through emulation layers starting at index
// from (bottom=0), returning the possibly rewritten signal, 0 if consumed.
func (p *Proc) signalUpFrom(from, sig, code int) int {
	for i := from; i < len(p.emu) && sig != 0; i++ {
		l := p.emu[i]
		if l.WantsSignal(sig) {
			sig = l.Signals.Signal(LayerCtx{Proc: p, layer: i}, sig, code)
		}
	}
	return sig
}

// deliverToUser applies the handler or default action for sig.
func (p *Proc) deliverToUser(sig int, sv sys.Sigvec, dispatch func(int, sys.Word)) {
	switch {
	case sig == sys.SIGKILL || (sv.Handler == sys.SIG_DFL && defaultTerminates(sig)):
		p.exitNow(sys.WStatusSignal(sig))
	case sv.Handler == sys.SIG_DFL && sigDefaultStop&sys.SigMask(sig) != 0:
		p.k.mu.Lock()
		p.state = procStopped
		p.k.cond.Broadcast()
		p.k.mu.Unlock()
	case sv.Handler == sys.SIG_DFL || sv.Handler == sys.SIG_IGN:
		// Default-ignore or explicitly ignored: nothing to do.
	default:
		if dispatch == nil {
			// No user dispatcher installed: treat as default terminate.
			p.exitNow(sys.WStatusSignal(sig))
		}
		// Block sig (and sv.Mask) during the handler, as sigvec promises.
		p.k.mu.Lock()
		old := p.sigMask
		p.sigMask |= sys.SigMask(sig) | sv.Mask
		p.k.mu.Unlock()
		dispatch(sig, sv.Handler)
		p.k.mu.Lock()
		p.sigMask = old
		p.k.mu.Unlock()
	}
}

func defaultTerminates(sig int) bool {
	return sigDefaultIgnore&sys.SigMask(sig) == 0 && sigDefaultStop&sys.SigMask(sig) == 0
}

// sleepLocked blocks the caller on the kernel condition variable until the
// next broadcast, returning EINTR if p has deliverable signals before or
// after the wait. A process that is no longer running (its exit path has
// begun) is never allowed to block again: the sleep fails with EINTR so
// wait/pipe/flock paths unwind with an error instead of wedging the
// goroutine. Caller holds k.mu; the lock is held again on return.
func (k *Kernel) sleepLocked(p *Proc) sys.Errno {
	if p.state != procRunning || p.deliverableLocked() != 0 {
		return sys.EINTR
	}
	k.cond.Wait()
	if p.state != procRunning || p.deliverableLocked() != 0 {
		return sys.EINTR
	}
	return sys.OK
}
