package kernel_test

import (
	"testing"

	"interpose/internal/fault"
	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// TestFaultedCreateDoesNotPoisonNameCache is the cache/fault interaction
// round: a creating open that fails (by injection at the kernel leg) must
// leave the pathname cache's negative entry for the name in place — later
// stats still see ENOENT — and a real create after the injector is
// removed must invalidate that negative entry immediately.
func TestFaultedCreateDoesNotPoisonNameCache(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("try", libc.Main(func(lt *libc.T) int {
		// Warm the negative dentry entry, then fail the create, then
		// check the name is still absent.
		if _, err := lt.Stat("/tmp/victim"); err != sys.ENOENT {
			lt.Printf("pre-stat: %v\n", err)
			return 1
		}
		if _, err := lt.Open("/tmp/victim", sys.O_WRONLY|sys.O_CREAT, 0o644); err != sys.EIO {
			lt.Printf("open: %v\n", err)
			return 2
		}
		if _, err := lt.Stat("/tmp/victim"); err != sys.ENOENT {
			lt.Printf("post-stat: %v\n", err)
			return 3
		}
		return 0
	}))
	reg.Register("make", libc.Main(func(lt *libc.T) int {
		if err := lt.WriteFile("/tmp/victim", []byte("ok"), 0o644); err != sys.OK {
			lt.Printf("writefile: %v\n", err)
			return 1
		}
		st, err := lt.Stat("/tmp/victim")
		if err != sys.OK || st.Size != 2 {
			lt.Printf("stat: %v size=%d\n", err, st.Size)
			return 2
		}
		return 0
	}))
	k := kernel.New(reg)
	for _, n := range []string{"try", "make"} {
		if err := k.InstallProgram("/bin/"+n, n); err != nil {
			t.Fatal(err)
		}
	}

	plan, err := fault.ParsePlan("open:/tmp/victim=EIO")
	if err != nil {
		t.Fatal(err)
	}
	k.SetInjector(fault.NewInjector(plan))

	run := func(name string) {
		t.Helper()
		p, err := k.Spawn("/bin/"+name, []string{name}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := k.WaitExit(p)
		if sys.WExitStatus(st) != 0 {
			t.Fatalf("%s exited %d:\n%s", name, sys.WExitStatus(st), k.Console().TakeOutput())
		}
	}

	run("try")
	if st := k.FS().CacheStats(); st.NegHits == 0 {
		t.Fatalf("negative entry never consulted: %+v", st)
	}

	// Injector gone: the same name must now be creatable, and the create
	// must displace the negative entry at once.
	k.SetInjector(nil)
	run("make")
}
