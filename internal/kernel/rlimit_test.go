package kernel_test

import (
	"testing"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// The errno paths of the limits with real kernel semantics: EMFILE at the
// descriptor ceiling (and fd reuse after close), EFBIG/SIGXFSZ on file
// growth, inheritance across fork and execve, and the setrlimit guards.

func TestRlimitNofileReuseAfterClose(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_NOFILE, sys.Rlimit{Cur: 5, Max: 5})
		a, _ := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		b, _ := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		_, err := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		lt.Printf("full %s\n", err.Name())
		// Closing one slot frees exactly that descriptor for reuse.
		lt.Close(a)
		c, err2 := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		lt.Printf("reuse %d %v\n", c, err2 == sys.OK)
		_ = b
		return 0
	})
	if out := expectOK(t, st, out); out != "full EMFILE\nreuse 3 true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitFsizeDefaultKills(t *testing.T) {
	// Without a handler, the SIGXFSZ posted alongside EFBIG terminates
	// the process, per the 4.3BSD default disposition.
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 4, Max: 4})
		fd, _ := lt.Open("/tmp/capped", sys.O_CREAT|sys.O_WRONLY, 0o644)
		lt.Write(fd, []byte("0123456789"))
		lt.Printf("survived?!\n")
		return 0
	})
	if sys.WIfExited(st) || sys.WTermSig(st) != sys.SIGXFSZ {
		t.Fatalf("status = %#x, output:\n%s", st, out)
	}
}

func TestRlimitTruncateFsize(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Ignore(sys.SIGXFSZ)
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 10, Max: 10})
		fd, _ := lt.Open("/tmp/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
		lt.Write(fd, []byte("short"))
		lt.Printf("truncate %s\n", lt.Truncate("/tmp/f", 20).Name())
		lt.Printf("ftruncate %s\n", lt.Ftruncate(fd, 20).Name())
		// Shrinking (or growing within the limit) is fine.
		lt.Printf("within %v\n", lt.Ftruncate(fd, 8) == sys.OK)
		return 0
	})
	if out := expectOK(t, st, out); out != "truncate EFBIG\nftruncate EFBIG\nwithin true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitDup2BeyondLimit(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_NOFILE, sys.Rlimit{Cur: 5, Max: 5})
		lt.Printf("past %s\n", lt.Dup2(1, 6).Name())
		lt.Printf("within %v\n", lt.Dup2(1, 4) == sys.OK)
		return 0
	})
	if out := expectOK(t, st, out); out != "past EBADF\nwithin true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitForkInheritance(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_NOFILE, sys.Rlimit{Cur: 9, Max: 11})
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 123, Max: 200})
		pid, err := lt.Fork(func(ct *libc.T) {
			nf, _ := ct.Getrlimit(sys.RLIMIT_NOFILE)
			fs, _ := ct.Getrlimit(sys.RLIMIT_FSIZE)
			ct.Printf("child %d/%d %d/%d\n", nf.Cur, nf.Max, fs.Cur, fs.Max)
		})
		if err != sys.OK {
			lt.Printf("fork: %s\n", err.Name())
			return 1
		}
		lt.Waitpid(pid)
		return 0
	})
	if out := expectOK(t, st, out); out != "child 9/11 123/200\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitExecInheritance(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 55, Max: 77})
		err := lt.Exec("/bin/show", []string{"show"}, nil)
		lt.Printf("exec failed: %s\n", err.Name())
		return 1
	}))
	reg.Register("show", libc.Main(func(lt *libc.T) int {
		fs, _ := lt.Getrlimit(sys.RLIMIT_FSIZE)
		lt.Printf("after exec %d/%d\n", fs.Cur, fs.Max)
		return 0
	}))
	k := kernel.New(reg)
	for path, name := range map[string]string{"/bin/main": "main", "/bin/show": "show"} {
		if err := k.InstallProgram(path, name); err != nil {
			t.Fatal(err)
		}
	}
	p, err := k.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if out = expectOK(t, st, out); out != "after exec 55/77\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitSetrlimitGuards(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		check := func(what string, got, want sys.Errno) {
			if got != want {
				lt.Printf("FAIL %s: got %s want %s\n", what, got.Name(), want.Name())
			}
		}
		_, err := lt.Getrlimit(99)
		check("getrlimit bad res", err, sys.EINVAL)
		check("setrlimit bad res", lt.Setrlimit(-1, sys.Rlimit{}), sys.EINVAL)
		check("cur above max", lt.Setrlimit(sys.RLIMIT_NOFILE, sys.Rlimit{Cur: 10, Max: 5}), sys.EINVAL)
		// Root may raise the hard limit; a plain user may not.
		check("root lowers", lt.Setrlimit(sys.RLIMIT_CORE, sys.Rlimit{Cur: 10, Max: 10}), sys.OK)
		lt.Syscall(sys.SYS_setuid, 5)
		check("user raises max", lt.Setrlimit(sys.RLIMIT_CORE, sys.Rlimit{Cur: 10, Max: 20}), sys.EPERM)
		check("user lowers", lt.Setrlimit(sys.RLIMIT_CORE, sys.Rlimit{Cur: 5, Max: 10}), sys.OK)
		return 0
	})
	if out := expectOK(t, st, out); out != "" {
		t.Fatalf("out = %q", out)
	}
}

func TestRlimitHostAccessorOutOfRange(t *testing.T) {
	k := kernel.New(image.NewRegistry())
	p := k.NewProc()
	rl := p.Rlimit(99)
	if rl.Cur != sys.RLIM_INFINITY || rl.Max != sys.RLIM_INFINITY {
		t.Fatalf("Rlimit(99) = %+v, want infinity", rl)
	}
}
