package kernel

// Agent supervision: the containment half of fault tolerance at the
// system interface. The paper's toolkit already has the escape hatch —
// htg_unix_syscall, "calling down past the agent" — and the supervisor
// uses it automatically: a panicking agent upcall is recovered and the
// guest's call either fails with a configurable errno (strict) or
// completes via the instances below the failed layer (bypass); repeated
// failures trip a per-layer circuit breaker that republishes every
// affected dispatch plan with the layer's interest bits cleared, so
// subsequent calls bypass the quarantined layer without even entering
// the supervisor; a cooldown later, a half-open probe call re-admits the
// layer if it behaves.
//
// Everything is pay-per-use. With no supervisor installed the dispatch
// fast path is unchanged (the uninterposed leg stays one atomic plan
// load; the interposed leg adds one atomic supervisor load, exactly like
// the telemetry and injector hooks). Breaker state surfaces as
// supervise.layer.* gauges in the telemetry snapshot and /dev/metrics.
//
// Lock ordering (extends DESIGN.md §8): the supervisor's registry lock
// s.mu and per-breaker b.mu are leaves below p.mu — compilePlan consults
// the quarantine set while holding p.mu — and neither k.pmu, p.mu, nor
// any other kernel lock may be acquired while holding them. Plan
// republication (trip, half-open, close) snapshots the process list
// under k.pmu, releases it, then recompiles each process under its own
// p.mu, per the §8 rule.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// SuperviseMode selects what a contained layer failure does to the
// guest's system call.
type SuperviseMode int

const (
	// SuperviseStrict fails the call with the configured errno: the
	// guest sees the layer's failure as a faulted system call.
	SuperviseStrict SuperviseMode = iota
	// SuperviseBypass completes the call via the instances below the
	// failed layer — the paper's call-down, applied per failure.
	SuperviseBypass
)

// ParseSuperviseMode parses the -supervise flag syntax. "off" returns
// ok=false with no error: the caller installs no supervisor.
func ParseSuperviseMode(s string) (mode SuperviseMode, ok bool, err error) {
	switch s {
	case "off", "":
		return 0, false, nil
	case "strict":
		return SuperviseStrict, true, nil
	case "bypass":
		return SuperviseBypass, true, nil
	}
	return 0, false, fmt.Errorf("kernel: supervise mode %q: want strict, bypass, or off", s)
}

// SupervisorConfig tunes a Supervisor. The zero value of each field
// selects the documented default.
type SupervisorConfig struct {
	Mode SuperviseMode

	// Errno is returned for a contained failure in strict mode (and for
	// deadline overruns in every mode). Default EFAULT.
	Errno sys.Errno

	// TripThreshold is the failure count that quarantines a layer.
	// Default 3.
	TripThreshold int

	// Window bounds the sliding failure window: only failures within
	// Window of each other count toward the threshold. Zero means no
	// expiry — a pure failure count, which is what deterministic replay
	// tests want.
	Window time.Duration

	// Cooldown is how long a quarantined layer waits before a half-open
	// probe may re-admit it. Zero selects the 5s default; negative
	// disables re-admission entirely (quarantine is permanent).
	Cooldown time.Duration

	// Deadline, when positive, bounds each supervised upcall: a layer
	// still running at the deadline is abandoned, the overrun feeds the
	// breaker, and the call fails with Errno. The abandoned goroutine
	// cannot be killed; its eventual result is discarded and its side
	// effects may still land, so deadlines are meant for agent-level
	// hangs in non-blocking calls and default to off.
	Deadline time.Duration

	// OnQuarantine, when set, runs (outside all kernel locks) each time
	// a layer is quarantined, with the layer's name and the stack of the
	// panic that tripped it (nil for deadline trips).
	OnQuarantine func(layer string, stack []byte)
}

// Breaker states. Closed admits calls; open (quarantined) bypasses the
// layer; half-open admits one probe call at a time.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-layer failure account. One exists per *EmuLayer the
// supervisor has seen fail or probe; fork shares layer pointers, so a
// layer's breaker is shared by every process it is installed in.
type breaker struct {
	layer *EmuLayer
	name  string

	state   atomic.Int32
	probing atomic.Bool // a half-open probe call is in flight

	panics    atomic.Uint64
	overruns  atomic.Uint64
	contained atomic.Uint64
	trips     atomic.Uint64

	mu        sync.Mutex
	failures  []time.Time
	lastPanic string
	lastStack []byte
}

// Supervisor contains agent failures for one kernel. Install with
// Kernel.SetSupervisor.
type Supervisor struct {
	k   *Kernel
	cfg SupervisorConfig

	errno     sys.Errno
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	breakers map[*EmuLayer]*breaker
}

// NewSupervisor builds a supervisor for k with defaults applied.
func NewSupervisor(k *Kernel, cfg SupervisorConfig) *Supervisor {
	s := &Supervisor{
		k:         k,
		cfg:       cfg,
		errno:     cfg.Errno,
		threshold: cfg.TripThreshold,
		cooldown:  cfg.Cooldown,
		breakers:  make(map[*EmuLayer]*breaker),
	}
	if s.errno == sys.OK {
		s.errno = sys.EFAULT
	}
	if s.threshold <= 0 {
		s.threshold = 3
	}
	if s.cooldown == 0 {
		s.cooldown = 5 * time.Second
	}
	return s
}

// breakerFor returns (creating on demand) the layer's breaker.
func (s *Supervisor) breakerFor(l *EmuLayer) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[l]
	if b == nil {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("layer@%p", l)
		}
		b = &breaker{layer: l, name: name}
		s.breakers[l] = b
	}
	return b
}

// quarantined reports whether l is currently quarantined. compilePlan
// calls it under p.mu; s.mu must therefore stay a leaf lock.
func (s *Supervisor) quarantined(l *EmuLayer) bool {
	s.mu.Lock()
	b := s.breakers[l]
	s.mu.Unlock()
	return b != nil && b.state.Load() == breakerOpen
}

// QuarantinedLayers returns the names of currently quarantined layers,
// sorted, for tests and tooling.
func (s *Supervisor) QuarantinedLayers() []string {
	s.mu.Lock()
	var out []string
	for _, b := range s.breakers {
		if b.state.Load() == breakerOpen {
			out = append(out, b.name)
		}
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// LastPanic returns the most recent contained panic message and stack
// for the named layer.
func (s *Supervisor) LastPanic(layer string) (msg string, stack []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.breakers {
		if b.name != layer {
			continue
		}
		b.mu.Lock()
		msg, stack = b.lastPanic, b.lastStack
		b.mu.Unlock()
		return msg, stack, true
	}
	return "", nil, false
}

// Gauges exports per-layer breaker state for the telemetry snapshot; the
// kernel merges them into its gauge source, so they appear in
// /dev/metrics and agentrun -stats as supervise.layer.*.
func (s *Supervisor) Gauges() []telemetry.NamedCounter {
	s.mu.Lock()
	bs := make([]*breaker, 0, len(s.breakers))
	for _, b := range s.breakers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	sort.Slice(bs, func(i, j int) bool { return bs[i].name < bs[j].name })
	out := make([]telemetry.NamedCounter, 0, 6*len(bs))
	for _, b := range bs {
		pre := "supervise.layer." + b.name + "."
		st := b.state.Load()
		var q uint64
		if st == breakerOpen {
			q = 1
		}
		out = append(out,
			telemetry.NamedCounter{Name: pre + "panics", Value: b.panics.Load()},
			telemetry.NamedCounter{Name: pre + "overruns", Value: b.overruns.Load()},
			telemetry.NamedCounter{Name: pre + "contained", Value: b.contained.Load()},
			telemetry.NamedCounter{Name: pre + "trips", Value: b.trips.Load()},
			telemetry.NamedCounter{Name: pre + "quarantined", Value: q},
			// state distinguishes half-open (2) from open (1) and closed
			// (0), which the boolean quarantined gauge cannot.
			telemetry.NamedCounter{Name: pre + "state", Value: uint64(st)},
		)
	}
	return out
}

// call is the supervised upcall into layer i of plan pl. dispatch routes
// every interested-layer entry here while a supervisor is installed.
func (s *Supervisor) call(p *Proc, pl *dispatchPlan, i, num int, a sys.Args) (sys.Retval, sys.Errno) {
	b := s.breakerFor(pl.layers[i])
	switch b.state.Load() {
	case breakerOpen:
		// Quarantined: transparent call-down past the layer. The plan is
		// republished without its interest bits at trip time, so this
		// path only runs for calls that entered under the old plan (or
		// for stacks too deep for the compiled bitmap).
		return p.dispatch(pl, i, num, a)
	case breakerHalfOpen:
		if !b.probing.CompareAndSwap(false, true) {
			return p.dispatch(pl, i, num, a)
		}
		defer b.probing.Store(false)
		rv, err, failed := s.run(p, pl, i, num, a, b)
		s.settleProbe(p, b, failed)
		if failed {
			return s.failResult(p, pl, i, num, a)
		}
		return rv, err
	}
	rv, err, failed := s.run(p, pl, i, num, a, b)
	if failed {
		return s.failResult(p, pl, i, num, a)
	}
	return rv, err
}

// failResult converts a contained failure into the guest-visible result
// the configured mode prescribes.
func (s *Supervisor) failResult(p *Proc, pl *dispatchPlan, i, num int, a sys.Args) (sys.Retval, sys.Errno) {
	if s.cfg.Mode == SuperviseBypass {
		return p.dispatch(pl, i, num, a)
	}
	return sys.Retval{}, s.errno
}

// panicInfo captures a contained panic.
type panicInfo struct {
	val   any
	stack []byte
}

func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// run executes the upcall with containment (and the optional deadline),
// feeding the breaker on failure. failed is true when the layer panicked
// or overran; the returned result is only meaningful when failed is
// false.
func (s *Supervisor) run(p *Proc, pl *dispatchPlan, i, num int, a sys.Args, b *breaker) (sys.Retval, sys.Errno, bool) {
	if s.cfg.Deadline > 0 {
		return s.runDeadline(p, pl, i, num, a, b)
	}
	rv, err, pan := p.runLayerContained(pl, i, num, a)
	if pan != nil {
		s.noteFailure(p, b, "panic", pan)
		return sys.Retval{}, s.errno, true
	}
	return rv, err, false
}

// runLayerContained runs the layer upcall under recover. The kernel's
// own control-flow unwinds — exit and exec travel through agent frames
// by panic — MUST pass through untouched, or a supervised layer would
// swallow process termination.
func (p *Proc) runLayerContained(pl *dispatchPlan, i, num int, a sys.Args) (rv sys.Retval, err sys.Errno, pan *panicInfo) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case exitUnwind, execUnwind:
			panic(r)
		default:
			pan = &panicInfo{val: r, stack: captureStack()}
		}
	}()
	rv, err = p.invokeLayer(pl, i, num, a)
	return
}

// layerOutcome crosses the deadline goroutine boundary.
type layerOutcome struct {
	rv     sys.Retval
	err    sys.Errno
	pan    *panicInfo
	unwind any
}

// runDeadline runs the upcall on its own goroutine so a stuck layer can
// be abandoned. An exit/exec unwind raised inside the layer is forwarded
// and re-panicked on the process goroutine. On overrun the layer
// goroutine keeps running detached — Go cannot kill it — and its
// eventual result is discarded.
func (s *Supervisor) runDeadline(p *Proc, pl *dispatchPlan, i, num int, a sys.Args, b *breaker) (sys.Retval, sys.Errno, bool) {
	ch := make(chan layerOutcome, 1)
	go func() {
		var o layerOutcome
		defer func() { ch <- o }()
		defer func() {
			switch r := recover().(type) {
			case nil:
			case exitUnwind, execUnwind:
				o.unwind = r
			default:
				o.pan = &panicInfo{val: r, stack: captureStack()}
			}
		}()
		o.rv, o.err = p.invokeLayer(pl, i, num, a)
	}()
	t := time.NewTimer(s.cfg.Deadline)
	defer t.Stop()
	select {
	case o := <-ch:
		if o.unwind != nil {
			panic(o.unwind)
		}
		if o.pan != nil {
			s.noteFailure(p, b, "panic", o.pan)
			return sys.Retval{}, s.errno, true
		}
		return o.rv, o.err, false
	case <-t.C:
		s.noteFailure(p, b, "overrun", &panicInfo{
			val: fmt.Sprintf("upcall %s exceeded %v deadline", sys.SyscallName(num), s.cfg.Deadline),
		})
		return sys.Retval{}, s.errno, true
	}
}

// noteFailure accounts one contained failure: counters, a flight-ring
// event carrying the layer name, the breaker's failure window, and —
// past the threshold — the trip.
func (s *Supervisor) noteFailure(p *Proc, b *breaker, kind string, pan *panicInfo) {
	msg := fmt.Sprint(pan.val)
	if kind == "panic" {
		b.panics.Add(1)
	} else {
		b.overruns.Add(1)
	}
	b.contained.Add(1)
	if r := s.k.tel.Load(); r != nil {
		r.Counter("supervise.contained").Add(1)
		r.RecordFileEvent(p.pid, "supervise:"+kind, b.name, trimMsg(msg), -1, int32(s.errno))
	}

	trip := false
	b.mu.Lock()
	b.lastPanic = msg
	if pan.stack != nil {
		b.lastStack = pan.stack
	}
	now := time.Now()
	b.failures = append(b.failures, now)
	if w := s.cfg.Window; w > 0 {
		cut := now.Add(-w)
		keep := b.failures[:0]
		for _, ts := range b.failures {
			if ts.After(cut) {
				keep = append(keep, ts)
			}
		}
		b.failures = keep
	}
	if b.state.Load() == breakerClosed && len(b.failures) >= s.threshold {
		trip = true
	}
	// The window only ever needs threshold entries to decide a trip; cap
	// it so a non-tripping breaker (huge threshold, or failures while
	// open) cannot grow without bound.
	if n := len(b.failures); n > s.threshold {
		b.failures = append(b.failures[:0], b.failures[n-s.threshold:]...)
	}
	b.mu.Unlock()
	if trip {
		s.quarantine(p, b, breakerClosed)
	}
}

// quarantine trips the breaker from the given state (closed on a fresh
// trip, half-open on a failed probe), republishes every affected plan
// without the layer, and schedules the half-open probe.
func (s *Supervisor) quarantine(p *Proc, b *breaker, from int32) {
	if !b.state.CompareAndSwap(from, breakerOpen) {
		return
	}
	b.trips.Add(1)
	b.mu.Lock()
	b.failures = nil
	stack := b.lastStack
	b.mu.Unlock()
	s.k.republishPlans(b.layer)
	if r := s.k.tel.Load(); r != nil {
		r.Counter("supervise.trips").Add(1)
		pid := 0
		if p != nil {
			pid = p.pid
		}
		r.RecordFileEvent(pid, "supervise:quarantine", b.name, "", -1, int32(s.errno))
	}
	if s.cooldown > 0 {
		time.AfterFunc(s.cooldown, func() { s.halfOpen(b) })
	}
	if fn := s.cfg.OnQuarantine; fn != nil {
		fn(b.name, stack)
	}
}

// halfOpen moves a quarantined breaker to half-open after the cooldown
// and restores the layer's interest bits so a probe call can reach it.
func (s *Supervisor) halfOpen(b *breaker) {
	if !b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
		return
	}
	if r := s.k.tel.Load(); r != nil {
		r.RecordFileEvent(0, "supervise:half-open", b.name, "", -1, 0)
	}
	s.k.republishPlans(b.layer)
}

// settleProbe resolves a half-open probe: success closes the breaker
// (the layer is re-admitted), failure re-quarantines it for another
// cooldown.
func (s *Supervisor) settleProbe(p *Proc, b *breaker, failed bool) {
	if failed {
		s.quarantine(p, b, breakerHalfOpen)
		return
	}
	if b.state.CompareAndSwap(breakerHalfOpen, breakerClosed) {
		b.mu.Lock()
		b.failures = nil
		b.mu.Unlock()
		if r := s.k.tel.Load(); r != nil {
			r.RecordFileEvent(p.pid, "supervise:close", b.name, "", -1, 0)
		}
	}
}

// trimMsg bounds a panic message for the flight ring.
func trimMsg(s string) string {
	const max = 120
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// SetSupervisor installs (or removes, with nil) the kernel's supervisor.
// Removal republishes every process's dispatch plan so layers that were
// quarantined regain their interest bits.
func (k *Kernel) SetSupervisor(s *Supervisor) {
	if s == nil {
		k.sup.Store(nil)
		k.republishPlans(nil)
		return
	}
	k.sup.Store(s)
}

// Supervisor returns the installed supervisor, or nil.
func (k *Kernel) Supervisor() *Supervisor {
	return k.sup.Load()
}

// republishPlans recompiles and republishes the dispatch plan of every
// process whose stack contains l (every process, when l is nil). The
// process list is snapshotted under k.pmu and each plan rebuilt under
// its own p.mu, never both at once (DESIGN.md §8).
func (k *Kernel) republishPlans(l *EmuLayer) {
	k.pmu.Lock()
	procs := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		procs = append(procs, p)
	}
	k.pmu.Unlock()
	for _, p := range procs {
		p.mu.Lock()
		if l == nil {
			p.recompilePlanLocked()
		} else {
			for _, el := range p.emu {
				if el == l {
					p.recompilePlanLocked()
					break
				}
			}
		}
		p.mu.Unlock()
	}
}
