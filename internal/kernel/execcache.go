package kernel

import (
	"sync"
	"sync/atomic"

	"interpose/internal/image"
	"interpose/internal/vfs"
)

// The exec image cache memoizes the header inspection execve performs on
// the executable file: copying out the file bytes and parsing either the
// registered-image header or a "#!" interpreter line. The result is keyed
// by the inode and validated against the inode's generation counter, so
// any content change (which bumps the generation under the inode's write
// lock) makes the cached parse unreachable — there is no explicit
// invalidation path to get wrong.
//
// The generation is sampled before the bytes are read: if the file changes
// between the two reads, the entry is stored with the pre-change
// generation and can never validate against the post-change one. A stale
// parse is therefore unreachable; the worst case is a redundant re-parse.

const (
	execNone   = int8(iota) // unrecognized: ENOEXEC
	execImage               // registered image header
	execInterp              // "#!" interpreter line
)

// execParse is one cached header-inspection result.
type execParse struct {
	gen    uint64
	kind   int8
	name   string // registered image name (execImage)
	interp string // interpreter path (execInterp)
	arg    string // optional interpreter argument (execInterp)
}

// execCache maps *vfs.Inode → *execParse. Inodes are never freed, so keys
// never dangle; entries for unlinked files are simply unreachable garbage
// bounded by the number of executables ever run.
type execCache struct {
	m      sync.Map
	hits   atomic.Uint64
	misses atomic.Uint64
}

// lookup returns the cached parse for ip if its generation still matches.
func (c *execCache) lookup(ip *vfs.Inode) (*execParse, bool) {
	v, ok := c.m.Load(ip)
	if !ok {
		return nil, false
	}
	ep := v.(*execParse)
	if ep.gen != ip.Gen() {
		return nil, false
	}
	return ep, true
}

// parse inspects ip's contents (on miss) or returns the cached result.
func (c *execCache) parse(ip *vfs.Inode) *execParse {
	if ep, ok := c.lookup(ip); ok {
		c.hits.Add(1)
		return ep
	}
	c.misses.Add(1)
	gen := ip.Gen()
	data := ip.Bytes()
	ep := &execParse{gen: gen}
	if name, ok := image.ParseHeader(data); ok {
		ep.kind = execImage
		ep.name = name
	} else if interp, arg, ok := image.ParseInterpreter(data); ok {
		ep.kind = execInterp
		ep.interp = interp
		ep.arg = arg
	}
	c.m.Store(ip, ep)
	return ep
}

// ExecCacheStats reports exec image cache hits and misses.
func (k *Kernel) ExecCacheStats() (hits, misses uint64) {
	return k.exec.hits.Load(), k.exec.misses.Load()
}
