package kernel_test

import (
	"strings"
	"testing"
	"time"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

func TestGetdirentriesTinyBuffer(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		fd, _ := lt.Open("/etc", sys.O_RDONLY, 0)
		buf := lt.Malloc(4) // too small for even one record
		_, err := lt.Syscall(sys.SYS_getdirentries, sys.Word(fd), buf, 4, 0)
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "EINVAL\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestDirectoryRewind(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		fd, _ := lt.Open("/etc", sys.O_RDONLY, 0)
		first, _ := lt.Getdirentries(fd)
		rest, _ := lt.Getdirentries(fd)
		for len(rest) > 0 { // drain
			rest, _ = lt.Getdirentries(fd)
		}
		lt.Lseek(fd, 0, sys.SEEK_SET) // rewinddir
		again, _ := lt.Getdirentries(fd)
		lt.Printf("same=%v first=%s\n",
			len(first) == len(again) && first[0].Name == again[0].Name, first[0].Name)
		return 0
	})
	if out := expectOK(t, st, out); out != "same=true first=.\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestFcntlDupfdMinimum(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		fd, _ := lt.Open("/etc/passwd", sys.O_RDONLY, 0)
		nfd, err := lt.Fcntl(fd, sys.F_DUPFD, 20)
		lt.Printf("%d %v\n", nfd, err == sys.OK)
		return 0
	})
	if out := expectOK(t, st, out); out != "20 true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestReadlinkTruncates(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Symlink("/a/very/long/target/path", "/tmp/l")
		// libc's Readlink uses a full buffer; issue the raw call with a
		// four-byte buffer to observe truncation.
		pathAddr := lt.CString("/tmp/l")
		buf := lt.Malloc(8)
		rv, err := lt.Syscall(sys.SYS_readlink, pathAddr, buf, 4)
		if err != sys.OK {
			return 1
		}
		b := make([]byte, rv[0])
		lt.Proc().CopyIn(buf, b)
		lt.Printf("%d %q\n", rv[0], b)
		return 0
	})
	if out := expectOK(t, st, out); out != "4 \"/a/v\"\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestUmaskReturnsPrevious(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		old := lt.Umask(0o027)
		second := lt.Umask(0o077)
		lt.Printf("%o %o\n", old, second)
		return 0
	})
	if out := expectOK(t, st, out); out != "22 27\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGroupsRoundTrip(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		// setgroups (root) then getgroups.
		want := []uint32{5, 10, 20}
		buf := lt.Malloc(12)
		var b []byte
		for _, g := range want {
			b = append(b, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
		}
		lt.Proc().CopyOut(buf, b)
		if _, err := lt.Syscall(sys.SYS_setgroups, 3, buf); err != sys.OK {
			return 1
		}
		out := lt.Malloc(64)
		rv, err := lt.Syscall(sys.SYS_getgroups, 16, out)
		if err != sys.OK || rv[0] != 3 {
			return 2
		}
		got := make([]byte, 12)
		lt.Proc().CopyIn(out, got)
		lt.Printf("%d %d %d\n", got[0], got[4], got[8])
		return 0
	})
	if out := expectOK(t, st, out); out != "5 10 20\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSethostnameRootOnly(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		name := lt.CString("renamed.host")
		if _, err := lt.Syscall(sys.SYS_sethostname, name, 12); err != sys.OK {
			return 1
		}
		h, _ := lt.Gethostname()
		lt.Printf("%s\n", h)
		// Drop privileges; renaming now fails.
		lt.Syscall(sys.SYS_setuid, 100)
		_, err := lt.Syscall(sys.SYS_sethostname, name, 12)
		lt.Printf("%s\n", err.Name())
		return 0
	})
	if out := expectOK(t, st, out); out != "renamed.host\nEPERM\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestHardLinkSharesData(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.WriteFile("/tmp/orig", []byte("v1"), 0o644)
		lt.Link("/tmp/orig", "/tmp/alias")
		lt.WriteFile("/tmp/alias", []byte("v2-through-alias"), 0o644)
		data, _ := lt.ReadFile("/tmp/orig")
		st1, _ := lt.Stat("/tmp/orig")
		st2, _ := lt.Stat("/tmp/alias")
		lt.Printf("%s %v %d\n", data, st1.Ino == st2.Ino, st1.Nlink)
		return 0
	})
	if out := expectOK(t, st, out); out != "v2-through-alias true 2\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSymlinkDanglingAndRelative(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		lt.MkdirAll("/d/sub", 0o755)
		lt.WriteFile("/d/sub/target", []byte("found"), 0o644)
		lt.Symlink("sub/target", "/d/rel") // relative to the link's dir
		data, err := lt.ReadFile("/d/rel")
		lt.Printf("%s %v\n", data, err == sys.OK)
		lt.Symlink("/nowhere", "/d/dangling")
		_, err = lt.Open("/d/dangling", sys.O_RDONLY, 0)
		lt.Printf("%s\n", err.Name())
		// lstat still sees the link itself.
		stt, err := lt.Lstat("/d/dangling")
		lt.Printf("link=%v\n", err == sys.OK && stt.Mode&sys.S_IFMT == sys.S_IFLNK)
		return 0
	})
	if out := expectOK(t, st, out); out != "found true\nENOENT\nlink=true\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestWriteVisibleThroughIndependentOpen(t *testing.T) {
	st, out := runFn(t, func(lt *libc.T) int {
		fdw, _ := lt.Open("/tmp/shared", sys.O_WRONLY|sys.O_CREAT, 0o644)
		fdr, _ := lt.Open("/tmp/shared", sys.O_RDONLY, 0)
		lt.Write(fdw, []byte("live"))
		b := make([]byte, 8)
		n, _ := lt.Read(fdr, b)
		lt.Printf("%s\n", b[:n])
		return 0
	})
	if out := expectOK(t, st, out); out != "live\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStderrUnbufferedOnKill(t *testing.T) {
	// Output written before a fatal signal survives (trace relies on it).
	st, out := runFn(t, func(lt *libc.T) int {
		lt.Stderr.WriteString("before the end\n")
		lt.Kill(lt.Getpid(), sys.SIGKILL)
		return 0
	})
	if sys.WTermSig(st) != sys.SIGKILL {
		t.Fatalf("status %#x", st)
	}
	if !strings.Contains(out, "before the end") {
		t.Fatalf("stderr lost: %q", out)
	}
}

func TestConsoleReadBlocksUntilFed(t *testing.T) {
	// A reader blocked on the console tty wakes when input arrives later.
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		line, ok := lt.Stdin.ReadLine()
		lt.Printf("got %v %q\n", ok, line)
		return 0
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/main", "main")
	p, err := k.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Feed only once the reader is (very likely) blocked.
	time.Sleep(10 * time.Millisecond)
	k.Console().Feed("late input\n")
	k.Console().FeedEOF()
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 || out != "got true \"late input\"\n" {
		t.Fatalf("%#x %q", st, out)
	}
}
