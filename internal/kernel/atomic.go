package kernel

import "sync/atomic"

func loadInt64(p *int64) int64            { return atomic.LoadInt64(p) }
func storeInt64(p *int64, v int64)        { atomic.StoreInt64(p, v) }
func addUint32Atomic(p *uint32, v uint32) { atomic.AddUint32(p, v) }
func loadUint32(p *uint32) uint32         { return atomic.LoadUint32(p) }
