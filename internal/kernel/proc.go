package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"interpose/internal/image"
	"interpose/internal/mem"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	"interpose/internal/trace"
	"interpose/internal/vfs"
)

// procState is a process's lifecycle state. It is stored in an atomic so
// any goroutine may read it; writes happen only under the process-table
// lock k.pmu (state transitions are part of process lifecycle).
type procState = int32

const (
	procRunning procState = iota
	procStopped
	procZombie
	procDead // reaped
)

// Proc is one simulated process. Field groups are guarded by the lock
// named in their comment; fields with no lock are either immutable after
// construction or touched only by the process's own goroutine. Proc
// implements sys.Ctx and image.Proc.
type Proc struct {
	k   *Kernel
	pid int // immutable

	// Guarded by k.pmu (process genealogy and lifecycle).
	ppid       int
	pgrp       int
	exitStatus sys.Word
	children   map[int]*Proc
	childrenRu sys.Rusage // accumulated rusage of reaped children

	// itimer is the ITIMER_REAL state (not inherited by fork children).
	// Guarded by k.pmu.
	itimer itimerState

	// state is read lock-free anywhere; written only under k.pmu.
	state atomic.Int32

	// started is set just before the process goroutine is spawned. A
	// process without one (NewProc driven from the host, never Started)
	// can never process a signal, so Shutdown exits it directly.
	started atomic.Bool

	// finished elects the single finishExit caller. Normally only the
	// process's own goroutine exits it, but host-side Shutdown may race
	// a concurrent Start on a not-yet-started process; the CAS makes the
	// loser a no-op instead of a double teardown.
	finished atomic.Bool

	as *mem.AS // has its own internal lock

	// mu guards per-process identity: working directories, credentials,
	// umask, resource limits, the program name, and fork/exec staging.
	mu          sync.Mutex
	cwd         *vfs.Inode
	root        *vfs.Inode
	uid         uint32
	euid        uint32
	gid         uint32
	egid        uint32
	groups      []uint32
	umask       uint32
	rlimits     [sys.RLIM_NLIMITS]sys.Rlimit
	comm        string
	stagedChild image.Entry
	initialSP   sys.Word

	// fdMu guards the descriptor table. In practice only the process's
	// own goroutine touches it (plus host-side setup before the process
	// starts), so it is essentially uncontended.
	fdMu sync.Mutex
	fds  []fdesc

	// sigMu is the innermost lock in the kernel: it guards signal state
	// and may be taken while holding any other kernel lock, and must
	// never be held while taking one.
	sigMu       sync.Mutex
	sigMask     uint32
	sigPending  uint32
	sigHandlers [sys.NSIG]sys.Sigvec
	sigDispatch func(sig int, handler sys.Word) // user-mode upcall, set by libc
	pauseMask   *uint32                         // sigpause restore mask

	// sigAttn is 1 when checkSignals has work to do (a deliverable
	// signal is pending, the process is not running, or a sigpause mask
	// must be restored). It is recomputed under sigMu at every mutation
	// site so the syscall exit path is a single atomic load.
	sigAttn atomic.Uint32

	// wake is the process's sleep token: sleepOn parks on it, wakers do a
	// non-blocking send (see wait.go). Buffered, capacity 1.
	wake chan struct{}

	// childQ holds this process when it sleeps in wait4; guarded by
	// k.pmu, woken by exiting children.
	childQ waitQ

	// exitDone is closed when the process becomes a zombie, for host-side
	// WaitExit callers (which are not processes and cannot park on a
	// wait queue).
	exitDone chan struct{}

	// Emulation (interposition) layers, bottom (index 0) to top. emu is
	// the mutable source list, guarded by p.mu; plan is its compiled
	// form (per-syscall interest bitmaps plus preboxed per-layer call
	// contexts), rebuilt on every attach/detach and published atomically.
	// The dispatch path reads only the plan: one atomic load, no lock.
	emu  []*EmuLayer
	plan atomic.Pointer[dispatchPlan]

	startTime time.Time // immutable
	nsyscalls uint32    // atomic

	pendingChildInit bool // fresh fork child: run layer InitChild hooks; p.mu
	execDepth        int  // interpreter recursion guard; own goroutine only

	// emuCursor is the bump allocator over the emulator segment, used by
	// agent layers to stage downcall arguments. It resets at each
	// top-level system call entry. Only the process's own goroutine
	// touches it.
	emuCursor sys.Word

	// telChild accumulates, within the current dispatch frame, the wall
	// time spent in lower instances of the system interface — the
	// subtrahend of per-layer self-time attribution. Reset at each
	// top-level system call entry.
	telChild atomic.Int64 // nanoseconds

	// Span-tracing state (see internal/trace). trcRand is touched only
	// at root-span entry on the process's own goroutine. The per-call
	// scratch (traceID, causeSpan, curSpan, spanParent, curLink) and
	// telChild above are normally own-goroutine too — fork copies trace
	// identity to the child on the parent's goroutine before publishProc
	// makes the child visible — but they are atomics because a
	// deadline-abandoned supervised upcall (see Supervisor.runDeadline)
	// keeps running detached and may still reach them through nested
	// downcalls. Post-abandonment writes can misattribute or mislink the
	// live call's spans; that is the documented price of abandoning an
	// upcall ("its side effects may still land"), kept memory-safe here.
	trcRand    uint64        // xorshift head-sampling state, seeded lazily from the pid
	traceID    atomic.Uint64 // trace this process belongs to (0 until first sampled span; fork-inherited)
	causeSpan  atomic.Uint64 // causal parent for the next root span (fork/exec/signal edge); consumed on use
	curSpan    atomic.Uint64 // open root span of the call in flight; 0 when unsampled
	spanParent atomic.Uint64 // innermost open span: parent for nested layer/kernel child spans
	curLink    atomic.Uint64 // pending cross-process link (pipe read, reaped child) for the open root span

	// exitSpan is the root span of the process's exit call, written in
	// finishExit under k.pmu before the zombie transition and read by the
	// reaping parent in wait4, also under k.pmu (the wait causal edge).
	exitSpan uint64

	// sigCauseTrace/sigCauseSpan identify the poster's open span for the
	// next delivered signal (the signal post→deliver causal edge).
	// Guarded by sigMu.
	sigCauseTrace uint64
	sigCauseSpan  uint64
}

// loadState reads the lifecycle state without any lock.
func (p *Proc) loadState() procState { return p.state.Load() }

// setStateLocked transitions the lifecycle state. Caller holds k.pmu.
func (p *Proc) setStateLocked(s procState) { p.state.Store(s) }

// EmuLayer is one installed interposition layer: a handler, the set of
// system call numbers it has registered interest in, and optionally a
// signal interposer.
type EmuLayer struct {
	Handler sys.Handler
	Signals sys.SignalInterposer

	// Name labels the layer in telemetry attribution (the agent name);
	// empty names get a positional label.
	Name string

	interest    [sys.MaxSyscall]bool
	interestAll bool
	sigInterest uint32
	sigAll      bool
}

// NewEmuLayer wraps a handler as an emulation layer with no interests
// registered yet.
func NewEmuLayer(h sys.Handler) *EmuLayer { return &EmuLayer{Handler: h} }

// Register adds interest in a system call number.
func (l *EmuLayer) Register(num int) {
	if num >= 0 && num < sys.MaxSyscall {
		l.interest[num] = true
	}
}

// RegisterRange adds interest in the numbers [low, high].
func (l *EmuLayer) RegisterRange(low, high int) {
	for n := low; n <= high; n++ {
		l.Register(n)
	}
}

// RegisterAll adds interest in every system call number.
func (l *EmuLayer) RegisterAll() { l.interestAll = true }

// RegisterSignal adds interest in a signal (for the upward path).
func (l *EmuLayer) RegisterSignal(sig int) {
	if sig > 0 && sig < sys.NSIG {
		l.sigInterest |= sys.SigMask(sig)
	}
}

// RegisterAllSignals adds interest in every signal.
func (l *EmuLayer) RegisterAllSignals() { l.sigAll = true }

// Wants reports whether the layer intercepts call number num.
func (l *EmuLayer) Wants(num int) bool {
	return l.interestAll || (num >= 0 && num < sys.MaxSyscall && l.interest[num])
}

// WantsSignal reports whether the layer interposes on signal sig.
func (l *EmuLayer) WantsSignal(sig int) bool {
	if l.Signals == nil {
		return false
	}
	return l.sigAll || l.sigInterest&sys.SigMask(sig) != 0
}

// ChildIniter is implemented by emulation-layer handlers that need a hook
// run in a newly forked child before it executes user code (the toolkit's
// init_child).
type ChildIniter interface {
	InitChild(c sys.Ctx)
}

// ProcExiter is implemented by emulation-layer handlers that keep
// per-process state (descriptor tables and the like); the kernel invokes
// it when a client process terminates for any reason.
type ProcExiter interface {
	ProcExit(pid int)
}

// allocPID hands out the next process id.
func (k *Kernel) allocPID() int {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	pid := k.nextPID
	k.nextPID++
	return pid
}

// newProc builds a fully initialized process that is NOT yet in the
// process table. Callers populate inherited state and then publish it
// with publishProc, so no concurrent kill or wait can observe a
// half-constructed process.
func (k *Kernel) newProc(pid int) *Proc {
	p := &Proc{
		k:         k,
		pid:       pid,
		pgrp:      pid,
		as:        mem.NewAS(),
		cwd:       k.fs.Root(),
		root:      k.fs.Root(),
		fds:       make([]fdesc, sys.OpenMax),
		umask:     0o022,
		children:  make(map[int]*Proc),
		comm:      "",
		startTime: time.Now(),
		wake:      make(chan struct{}, 1),
		exitDone:  make(chan struct{}),
	}
	for i := range p.rlimits {
		p.rlimits[i] = sys.Rlimit{Cur: sys.RLIM_INFINITY, Max: sys.RLIM_INFINITY}
	}
	p.rlimits[sys.RLIMIT_NOFILE] = sys.Rlimit{Cur: sys.OpenMax, Max: sys.OpenMax}
	p.plan.Store(emptyPlan)
	return p
}

// publishProc enters p into the process table, linking it to its parent
// (nil for host-created processes).
func (k *Kernel) publishProc(p *Proc, parent *Proc) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	if parent != nil {
		p.ppid = parent.pid
		p.pgrp = parent.pgrp
		parent.children[p.pid] = p
	}
	k.procs[p.pid] = p
}

// PID returns the process id. (sys.Ctx)
func (p *Proc) PID() int { return p.pid }

// PPID returns the parent process id.
func (p *Proc) PPID() int {
	p.k.pmu.Lock()
	defer p.k.pmu.Unlock()
	return p.ppid
}

// Comm returns the program name set by the last exec.
func (p *Proc) Comm() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.comm
}

// CopyIn implements sys.Ctx against the process's address space.
func (p *Proc) CopyIn(addr sys.Word, b []byte) sys.Errno { return p.as.CopyIn(addr, b) }

// CopyOut implements sys.Ctx against the process's address space.
func (p *Proc) CopyOut(addr sys.Word, b []byte) sys.Errno { return p.as.CopyOut(addr, b) }

// CopyInString implements sys.Ctx against the process's address space.
func (p *Proc) CopyInString(addr sys.Word, max int) (string, sys.Errno) {
	return p.as.CopyInString(addr, max)
}

// AS exposes the process's address space to the kernel and loaders.
func (p *Proc) AS() *mem.AS { return p.as }

// KProc lets the kernel recover the *Proc under a sys.Ctx (which may be a
// LayerCtx wrapper).
func (p *Proc) KProc() *Proc { return p }

// ctxProc extracts the *Proc behind any kernel-made sys.Ctx, or nil for
// a foreign context. Agent code can hand the kernel any sys.Ctx it
// likes; a context this kernel did not mint must fail the call, not
// panic the world.
func ctxProc(c sys.Ctx) *Proc {
	type kp interface{ KProc() *Proc }
	if p, ok := c.(kp); ok {
		return p.KProc()
	}
	return nil
}

// StageChild implements image.Proc.
func (p *Proc) StageChild(e image.Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stagedChild = e
}

// InitialSP implements image.Proc.
func (p *Proc) InitialSP() sys.Word {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.initialSP
}

// SetComm records the program name, as exec does (a machine-level
// operation used by toolkit execve reimplementations).
func (p *Proc) SetComm(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.comm = name
}

// SetInitialSP records the stack pointer established by an exec. It is a
// machine-level operation used by the kernel and by toolkit execve
// reimplementations.
func (p *Proc) SetInitialSP(sp sys.Word) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.initialSP = sp
}

// SetSignalDispatcher implements image.Proc.
func (p *Proc) SetSignalDispatcher(fn func(sig int, handler sys.Word)) {
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	p.sigDispatch = fn
}

// ResetAS clears the process's address space (execve primitive).
func (p *Proc) ResetAS() { p.as.Reset() }

// LookupImage resolves a registered image name (execve primitive, used by
// toolkit execve reimplementations).
func (p *Proc) LookupImage(name string) (image.Entry, bool) {
	return p.k.images.Lookup(name)
}

// Yield implements image.Proc: it delivers any pending signals, as a clock
// interrupt would.
func (p *Proc) Yield() { p.checkSignals() }

// PushEmulation installs an interposition layer above any existing layers.
// The layer sees the process's system calls (for registered numbers) before
// lower layers and the kernel; it sees signals after them. The dispatch
// plan is recompiled and published atomically: calls already in flight
// finish under the old plan, the next call sees the new stack.
func (p *Proc) PushEmulation(l *EmuLayer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emu = append(p.emu, l)
	p.recompilePlanLocked()
}

// RemoveEmulation detaches the topmost occurrence of layer l from the
// stack, reporting whether it was installed. Lower layers keep their
// positions; the recompiled plan takes effect at the next system call
// entry (in-flight calls finish under the plan they started with).
func (p *Proc) RemoveEmulation(l *EmuLayer) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.emu) - 1; i >= 0; i-- {
		if p.emu[i] == l {
			p.emu = append(p.emu[:i:i], p.emu[i+1:]...)
			p.recompilePlanLocked()
			return true
		}
	}
	return false
}

// Emulation returns the installed layers, bottom first.
func (p *Proc) Emulation() []*EmuLayer {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*EmuLayer, len(p.emu))
	copy(out, p.emu)
	return out
}

// LayerCtx is the per-call context handed to an emulation layer: the
// calling process, the plan the call entered under, and the layer's own
// position, so that Down can resume dispatch below it (the
// htg_unix_syscall analog). Carrying the plan keeps a call's view of the
// stack stable even if layers attach or detach while it runs.
type LayerCtx struct {
	*Proc
	plan  *dispatchPlan
	layer int
}

// Down invokes the next-lower instance of the system interface: lower
// interested layers, or the kernel. This is how an agent performs a system
// call that would otherwise be intercepted by itself.
func (lc LayerCtx) Down(num int, a sys.Args) (sys.Retval, sys.Errno) {
	return lc.Proc.dispatch(lc.plan, lc.layer, num, a)
}

// DownSignal continues signal interposition above this layer, returning the
// possibly-rewritten signal (0 if suppressed). Exposed for completeness;
// the common path is simply returning the signal from the interposer.
func (lc LayerCtx) DownSignal(sig, code int) int {
	return lc.Proc.signalUpFrom(lc.layer+1, sig, code)
}

// Syscall implements image.Proc: a system call from user mode. It enters
// the topmost interested instance of the system interface, then delivers
// any pending signals before returning to user code.
func (p *Proc) Syscall(num int, a sys.Args) (sys.Retval, sys.Errno) {
	addUint32(&p.nsyscalls, 1)
	p.emuCursor = 0 // agent scratch is per-call
	// Attribution and span scratch are per-call (stale after an exec
	// unwind). Conditional clears: the atomic loads are plain reads on
	// the hot path, the stores only run when instrumentation left state.
	if p.telChild.Load() != 0 {
		p.telChild.Store(0)
	}
	if p.curSpan.Load() != 0 {
		p.curSpan.Store(0)
	}
	pl := p.plan.Load()
	if t := p.k.trc.Load(); t != nil {
		return p.syscallTraced(t, pl, num, a)
	}
	if r := p.k.tel.Load(); r != nil {
		return p.syscallTimed(r, pl, num, a)
	}
	rv, err := p.dispatch(pl, len(pl.layers), num, a)
	p.checkSignals()
	return rv, err
}

// syscallTimed is the telemetry-enabled top half of Syscall: it times the
// call end to end for the per-syscall histogram and appends a flight
// event. Per-layer attribution happens frame by frame in dispatch. Calls
// that unwind instead of returning (exit, successful execve) are recorded
// at entry with unknown duration, since no code runs after them.
func (p *Proc) syscallTimed(r *telemetry.Registry, pl *dispatchPlan, num int, a sys.Args) (sys.Retval, sys.Errno) {
	unwinds := num == sys.SYS_exit || num == sys.SYS_execve
	if unwinds {
		r.RecordEvent(p.pid, num, 0, -1)
	}
	start := time.Now()
	rv, err := p.dispatch(pl, len(pl.layers), num, a)
	d := time.Since(start)
	r.RecordSyscall(num, d, err != sys.OK)
	if !unwinds {
		r.RecordEvent(p.pid, num, int32(err), d)
	}
	p.checkSignals()
	return rv, err
}

// syscallTraced is the span-tracing top half of Syscall, used whenever a
// span tracer is installed. It folds in syscallTimed's telemetry duties
// so the two facilities share one pair of clock reads. A head-sampled
// call opens a root span whose Parent is the pending causal edge (fork,
// exec, or signal delivery) and whose Link is filled by cross-process
// edges observed during dispatch (pipe read, reaped child). Unsampled
// calls may still be retained by tail rules when slow or failed; when
// neither facility needs a duration, the clock is never read. Calls that
// unwind instead of returning (exit, successful execve) record their
// span at entry with unknown duration, and the span is left as the
// causal parent so the post-exec image's first call chains under it.
func (p *Proc) syscallTraced(t *trace.Tracer, pl *dispatchPlan, num int, a sys.Args) (sys.Retval, sys.Errno) {
	r := p.k.tel.Load()
	unwinds := num == sys.SYS_exit || num == sys.SYS_execve
	if unwinds && r != nil {
		r.RecordEvent(p.pid, num, 0, -1)
	}
	sampled := t.Sampled(&p.trcRand, p.pid)
	var span trace.Span
	if sampled {
		if p.traceID.Load() == 0 {
			p.traceID.Store(t.NewTrace())
		}
		span = trace.Span{
			Trace:  p.traceID.Load(),
			ID:     t.NewSpanID(),
			Parent: p.causeSpan.Load(),
			PID:    int32(p.pid),
			Num:    int32(num),
			Layer:  trace.LayerRoot,
		}
		p.causeSpan.Store(0)
		p.curSpan.Store(span.ID)
		p.spanParent.Store(span.ID)
		p.curLink.Store(0)
		if unwinds {
			span.Start = t.Now()
			span.Dur = -1
			t.Record(span)
			p.causeSpan.Store(span.ID)
		}
	}
	needClock := r != nil || (sampled && !unwinds) || t.TailEnabled()
	var start time.Time
	if needClock {
		start = time.Now()
	}
	rv, err := p.dispatch(pl, len(pl.layers), num, a)
	var d time.Duration
	if needClock {
		d = time.Since(start)
	}
	if r != nil {
		r.RecordSyscall(num, d, err != sys.OK)
		if !unwinds {
			r.RecordEvent(p.pid, num, int32(err), d)
		}
	}
	if sampled {
		if unwinds {
			// Reaching here means execve failed and returned an errno: drop
			// the entry-recorded span as causal parent so later calls do not
			// chain under an exec that never happened.
			p.causeSpan.Store(0)
		} else {
			span.Start = t.At(start)
			span.Dur = int64(d)
			span.Err = int32(err)
			span.Link = p.curLink.Load()
			t.Record(span)
		}
	} else if !unwinds && t.Tail(d, err != sys.OK) {
		// Tail retention: a slow or failed call that head sampling skipped
		// is recorded as a root-only span.
		if p.traceID.Load() == 0 {
			p.traceID.Store(t.NewTrace())
		}
		t.Record(trace.Span{
			Trace:  p.traceID.Load(),
			ID:     t.NewSpanID(),
			Parent: p.causeSpan.Load(),
			Link:   p.curLink.Load(),
			PID:    int32(p.pid),
			Num:    int32(num),
			Layer:  trace.LayerRoot,
			Err:    int32(err),
			Start:  t.At(start),
			Dur:    int64(d),
		})
		p.causeSpan.Store(0)
	}
	p.curSpan.Store(0)
	p.spanParent.Store(0)
	p.curLink.Store(0)
	p.checkSignals()
	return rv, err
}

// EmuAlloc reserves n bytes of the process's emulator segment for staging
// an agent downcall argument. The space is reclaimed automatically at the
// next top-level system call entry.
func (p *Proc) EmuAlloc(n int) (sys.Word, sys.Errno) {
	need := sys.Word((n + 7) &^ 7)
	if p.emuCursor+need > mem.EmuSize {
		return 0, sys.ENOMEM
	}
	addr := mem.EmuBase + p.emuCursor
	p.emuCursor += need
	return addr, sys.OK
}

// EmuMark returns the current emulator-segment allocation cursor, for
// bulk operations that stage and release in a loop within one call.
func (p *Proc) EmuMark() sys.Word { return p.emuCursor }

// EmuRelease rewinds the emulator-segment cursor to a prior mark.
func (p *Proc) EmuRelease(mark sys.Word) {
	if mark <= p.emuCursor {
		p.emuCursor = mark
	}
}

// EmuString stages s as a NUL-terminated string in the emulator segment.
func (p *Proc) EmuString(s string) (sys.Word, sys.Errno) {
	addr, err := p.EmuAlloc(len(s) + 1)
	if err != sys.OK {
		return 0, err
	}
	if e := p.as.CopyOut(addr, append([]byte(s), 0)); e != sys.OK {
		return 0, e
	}
	return addr, sys.OK
}

// EmuBytes stages b in the emulator segment.
func (p *Proc) EmuBytes(b []byte) (sys.Word, sys.Errno) {
	addr, err := p.EmuAlloc(len(b))
	if err != sys.OK {
		return 0, err
	}
	if e := p.as.CopyOut(addr, b); e != sys.OK {
		return 0, e
	}
	return addr, sys.OK
}

// dispatch runs the system call at the highest interested layer strictly
// below index `below` (layers are indexed bottom=0). The kernel is below
// layer 0. Uninterested layers are skipped entirely — interception is
// pay-per-use: with the precompiled interest bitmap, a call no layer
// registered for costs one array read before going straight to the
// kernel, regardless of stack depth.
func (p *Proc) dispatch(pl *dispatchPlan, below int, num int, a sys.Args) (sys.Retval, sys.Errno) {
	if below > 0 {
		if pl.interest != nil {
			if mask := pl.interestBelow(below, num); mask != 0 {
				i := topInterested(mask)
				if s := p.k.sup.Load(); s != nil {
					return s.call(p, pl, i, num, a)
				}
				return p.invokeLayer(pl, i, num, a)
			}
		} else {
			// Stack too deep for the bitmap: linear interest walk.
			for i := below - 1; i >= 0; i-- {
				if pl.layers[i].Wants(num) {
					if s := p.k.sup.Load(); s != nil {
						return s.call(p, pl, i, num, a)
					}
					return p.invokeLayer(pl, i, num, a)
				}
			}
		}
	}
	// Kernel-side fault injection sits below every emulation layer; while
	// disabled it costs only this atomic load.
	if b := p.k.inj.Load(); b != nil {
		var (
			rv      sys.Retval
			err     sys.Errno
			handled bool
		)
		if a, rv, err, handled = b.inj.Inject(p, num, a); handled {
			return rv, err
		}
	}
	if r := p.k.tel.Load(); r != nil || p.curSpan.Load() != 0 {
		return p.kernelCallTraced(r, num, a)
	}
	return p.k.Syscall(p, num, a)
}

// invokeLayer runs layer i's handler, adding telemetry attribution
// and/or a child span when either facility needs it; with both off it is
// a direct handler call. The supervisor's containment paths route
// through it too, so supervised upcalls get the same per-call
// attribution and spans as bare dispatch.
func (p *Proc) invokeLayer(pl *dispatchPlan, i, num int, a sys.Args) (sys.Retval, sys.Errno) {
	if r := p.k.tel.Load(); r != nil || p.curSpan.Load() != 0 {
		return p.layerCallTraced(r, pl, i, num, a)
	}
	return pl.layers[i].Handler.Syscall(pl.ctxs[i], num, a)
}

// layerCallTraced runs layer i's handler with instrumentation. When a
// registry is installed (r may be nil) it attributes the layer's self
// time — wall time minus the time nested downcalls spent in lower
// instances (accumulated into p.telChild by the frames below this one).
// When the call in flight carries an open root span, it additionally
// opens a child span under the innermost open span, so nested Down
// chains render as nested intervals. If a panic travels through this
// frame — the exit/exec control-flow unwinds, or an agent bug headed
// for the supervisor above — the open span is recorded entry-style
// (Dur=-1) on the way out: downcalls that completed under it (the
// toolkit's exec emulation reads the image and closes descriptors
// before the final unwinding execve) already reference it as their
// parent and must not dangle.
func (p *Proc) layerCallTraced(r *telemetry.Registry, pl *dispatchPlan, i, num int, a sys.Args) (sys.Retval, sys.Errno) {
	l := pl.layers[i]
	var t *trace.Tracer
	var span trace.Span
	var savedParent uint64
	if p.curSpan.Load() != 0 {
		if t = p.k.trc.Load(); t != nil {
			span = trace.Span{
				Trace:  p.traceID.Load(),
				ID:     t.NewSpanID(),
				Parent: p.spanParent.Load(),
				PID:    int32(p.pid),
				Num:    int32(num),
				Layer:  int32(1 + i),
				Name:   l.Name,
			}
			savedParent = p.spanParent.Load()
			p.spanParent.Store(span.ID)
		}
	}
	saved := p.telChild.Load()
	p.telChild.Store(0)
	start := time.Now()
	if t != nil {
		defer func() {
			if rec := recover(); rec != nil {
				span.Start = t.At(start)
				span.Dur = -1
				t.Record(span)
				panic(rec)
			}
		}()
	}
	rv, err := l.Handler.Syscall(pl.ctxs[i], num, a)
	elapsed := time.Since(start)
	if r != nil {
		self := elapsed - time.Duration(p.telChild.Load())
		if self < 0 {
			self = 0
		}
		r.RecordLayer(1+i, l.Name, self)
	}
	p.telChild.Store(saved + int64(elapsed))
	if t != nil {
		p.spanParent.Store(savedParent)
		span.Start = t.At(start)
		span.Dur = int64(elapsed)
		span.Err = int32(err)
		t.Record(span)
	}
	return rv, err
}

// kernelCallTraced runs the kernel's implementation with
// instrumentation: self time to the kernel attribution slot when a
// registry is installed (r may be nil), and a kernel-leg child span when
// the call in flight carries an open root span. The kernel makes no
// downcalls, so its self time is its wall time.
func (p *Proc) kernelCallTraced(r *telemetry.Registry, num int, a sys.Args) (sys.Retval, sys.Errno) {
	var t *trace.Tracer
	var span trace.Span
	if p.curSpan.Load() != 0 {
		if t = p.k.trc.Load(); t != nil {
			span = trace.Span{
				Trace:  p.traceID.Load(),
				ID:     t.NewSpanID(),
				Parent: p.spanParent.Load(),
				PID:    int32(p.pid),
				Num:    int32(num),
				Layer:  trace.LayerKernel,
			}
		}
	}
	saved := p.telChild.Load()
	start := time.Now()
	if t != nil {
		// Exit and exec unwind through here; record the kernel leg
		// entry-style so the trace shows where the call went.
		defer func() {
			if rec := recover(); rec != nil {
				span.Start = t.At(start)
				span.Dur = -1
				t.Record(span)
				panic(rec)
			}
		}()
	}
	rv, err := p.k.Syscall(p, num, a)
	elapsed := time.Since(start)
	if r != nil {
		r.RecordLayer(0, "kernel", elapsed)
	}
	p.telChild.Store(saved + int64(elapsed))
	if t != nil {
		span.Start = t.At(start)
		span.Dur = int64(elapsed)
		span.Err = int32(err)
		t.Record(span)
	}
	return rv, err
}

// KernelSyscall invokes the kernel's implementation directly, bypassing
// every emulation layer. It is the lowest-level htg_unix_syscall analog.
func (p *Proc) KernelSyscall(num int, a sys.Args) (sys.Retval, sys.Errno) {
	return p.k.Syscall(p, num, a)
}

// Telemetry exposes the kernel's registry to agents through their call
// context (nil when telemetry is off).
func (p *Proc) Telemetry() *telemetry.Registry {
	return p.k.tel.Load()
}

// unwind values carried by panic to end or redirect a process goroutine.
type exitUnwind struct{ status sys.Word }
type execUnwind struct{ entry image.Entry }

// Exec transfers control to a new program image in this process. It does
// not return. (execve primitive: "transferring control into the loaded
// image".)
func (p *Proc) Exec(e image.Entry) {
	panic(execUnwind{entry: e})
}

// ExitNow terminates the process from kernel context. It does not return.
func (p *Proc) exitNow(status sys.Word) {
	p.k.finishExit(p, status)
	panic(exitUnwind{status: status})
}

// Start loads the image at path into the process and starts its goroutine.
// It mirrors execve's loading steps but runs from outside the process.
func (p *Proc) Start(path string, argv, envp []string) error {
	entry, err := p.k.execLoad(p, path, argv, envp)
	if err != sys.OK {
		return fmt.Errorf("start %s: %w", path, err)
	}
	p.started.Store(true)
	go p.run(entry)
	return nil
}

// StartEntry starts the process at an arbitrary entry point without an
// image file, for tests and embedded use.
func (p *Proc) StartEntry(e image.Entry, argv, envp []string) error {
	sp, errno := image.SetupStack(p, argv, envp)
	if errno != sys.OK {
		return fmt.Errorf("start entry: %w", errno)
	}
	p.SetInitialSP(sp)
	p.started.Store(true)
	go p.run(e)
	return nil
}

// run is the process goroutine: it executes entry, handling the exec and
// exit unwinds, and runs any emulation-layer child hooks first if this is
// a fresh fork child.
func (p *Proc) run(entry image.Entry) {
	for {
		next, status := p.runOnce(entry)
		if next == nil {
			_ = status
			return
		}
		entry = next
	}
}

// runOnce executes entry until it exits, execs, or returns.
func (p *Proc) runOnce(entry image.Entry) (next image.Entry, status sys.Word) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case exitUnwind:
			next, status = nil, r.status
		case execUnwind:
			next, status = r.entry, 0
		default:
			// A bug in a program or agent: report and kill the process the
			// way a machine exception would.
			p.k.console.write([]byte(fmt.Sprintf("panic in pid %d (%s): %v\n", p.pid, p.comm, r)))
			p.k.finishExit(p, sys.WStatusSignal(sys.SIGSEGV))
			next, status = nil, sys.WStatusSignal(sys.SIGSEGV)
		}
	}()
	p.runChildInits()
	entry(p)
	// Entry returned without _exit: treat as exit(0), as crt0 would.
	rv := sys.Args{0}
	p.Syscall(sys.SYS_exit, rv)
	return nil, 0
}

// runChildInits invokes InitChild hooks staged by fork.
func (p *Proc) runChildInits() {
	p.mu.Lock()
	pending := p.pendingChildInit
	p.pendingChildInit = false
	p.mu.Unlock()
	if !pending {
		return
	}
	pl := p.plan.Load()
	for i, l := range pl.layers {
		if ci, ok := l.Handler.(ChildIniter); ok {
			ci.InitChild(pl.ctxs[i])
		}
	}
}

// addUint32 bumps a counter without the big lock.
func addUint32(p *uint32, v uint32) { addUint32Atomic(p, v) }
