package kernel

import (
	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// Syscall implements sys.Handler: the kernel is the default, lowest-level
// instance of the system interface. c must be a context minted by this
// kernel (a *Proc or a LayerCtx wrapping one).
func (k *Kernel) Syscall(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
	p := ctxProc(c)
	if p == nil {
		// A context not minted by this kernel carries no process state to
		// run the call against; fail it instead of crashing.
		return sys.Retval{}, sys.EFAULT
	}
	var rv sys.Retval
	var err sys.Errno
	switch num {
	case sys.SYS_exit:
		k.sysExit(p, a) // does not return
	case sys.SYS_fork:
		rv, err = k.sysFork(p)
	case sys.SYS_read:
		rv, err = k.sysRead(p, a)
	case sys.SYS_write:
		rv, err = k.sysWrite(p, a)
	case sys.SYS_open:
		rv, err = k.sysOpen(p, a)
	case sys.SYS_close:
		rv, err = k.sysClose(p, a)
	case sys.SYS_wait4:
		rv, err = k.sysWait4(p, a)
	case sys.SYS_creat:
		rv, err = k.sysOpen(p, sys.Args{a[0], sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC, a[1]})
	case sys.SYS_link:
		rv, err = k.sysLink(p, a)
	case sys.SYS_unlink:
		rv, err = k.sysUnlink(p, a)
	case sys.SYS_chdir:
		rv, err = k.sysChdir(p, a)
	case sys.SYS_fchdir:
		rv, err = k.sysFchdir(p, a)
	case sys.SYS_mknod:
		rv, err = k.sysMknod(p, a)
	case sys.SYS_chmod:
		rv, err = k.sysChmod(p, a)
	case sys.SYS_chown:
		rv, err = k.sysChown(p, a)
	case sys.SYS_brk:
		rv, err = k.sysBrk(p, a)
	case sys.SYS_lseek:
		rv, err = k.sysLseek(p, a)
	case sys.SYS_getpid:
		rv, err = k.sysGetpid(p)
	case sys.SYS_setuid:
		rv, err = k.sysSetuid(p, a)
	case sys.SYS_getuid:
		rv, err = k.sysGetuid(p)
	case sys.SYS_geteuid:
		rv, err = k.sysGeteuid(p)
	case sys.SYS_access:
		rv, err = k.sysAccess(p, a)
	case sys.SYS_sync, sys.SYS_fsync:
		// The in-memory filesystem itself is always "on disk", but with a
		// write-ahead journal attached, sync is the group-commit barrier:
		// it pushes the buffered journal tail to the store. A latched
		// journal failure surfaces as EIO.
		if w := k.fs.Journal(); w != nil {
			if w.Commit() != nil {
				err = sys.EIO
			}
		}
	case sys.SYS_kill:
		rv, err = k.sysKill(p, a)
	case sys.SYS_stat:
		rv, err = k.sysStat(p, a, true)
	case sys.SYS_getppid:
		rv, err = k.sysGetppid(p)
	case sys.SYS_lstat:
		rv, err = k.sysStat(p, a, false)
	case sys.SYS_dup:
		rv, err = k.sysDup(p, a)
	case sys.SYS_pipe:
		rv, err = k.sysPipe(p)
	case sys.SYS_getegid:
		rv, err = k.sysGetegid(p)
	case sys.SYS_getgid:
		rv, err = k.sysGetgid(p)
	case sys.SYS_ioctl:
		rv, err = k.sysIoctl(p, a)
	case sys.SYS_symlink:
		rv, err = k.sysSymlink(p, a)
	case sys.SYS_readlink:
		rv, err = k.sysReadlink(p, a)
	case sys.SYS_execve:
		rv, err = k.sysExecve(p, a) // does not return on success
	case sys.SYS_umask:
		rv, err = k.sysUmask(p, a)
	case sys.SYS_chroot:
		rv, err = k.sysChroot(p, a)
	case sys.SYS_fstat:
		rv, err = k.sysFstat(p, a)
	case sys.SYS_getpagesize:
		rv = sys.Retval{sys.PageSize}
	case sys.SYS_getgroups:
		rv, err = k.sysGetgroups(p, a)
	case sys.SYS_setgroups:
		rv, err = k.sysSetgroups(p, a)
	case sys.SYS_getpgrp:
		rv, err = k.sysGetpgrp(p, a)
	case sys.SYS_setpgrp:
		rv, err = k.sysSetpgrp(p, a)
	case sys.SYS_setitimer:
		rv, err = k.sysSetitimer(p, a)
	case sys.SYS_getitimer:
		rv, err = k.sysGetitimer(p, a)
	case sys.SYS_gethostname:
		rv, err = k.sysGethostname(p, a)
	case sys.SYS_sethostname:
		rv, err = k.sysSethostname(p, a)
	case sys.SYS_getdtablesize:
		rv = sys.Retval{sys.OpenMax}
	case sys.SYS_dup2:
		rv, err = k.sysDup2(p, a)
	case sys.SYS_fcntl:
		rv, err = k.sysFcntl(p, a)
	case sys.SYS_sigvec:
		rv, err = k.sysSigvec(p, a)
	case sys.SYS_sigblock:
		rv, err = k.sysSigblock(p, a)
	case sys.SYS_sigsetmask:
		rv, err = k.sysSigsetmask(p, a)
	case sys.SYS_sigpause:
		rv, err = k.sysSigpause(p, a)
	case sys.SYS_gettimeofday:
		rv, err = k.sysGettimeofday(p, a)
	case sys.SYS_getrusage:
		rv, err = k.sysGetrusage(p, a)
	case sys.SYS_settimeofday:
		rv, err = k.sysSettimeofday(p, a)
	case sys.SYS_rename:
		rv, err = k.sysRename(p, a)
	case sys.SYS_truncate:
		rv, err = k.sysTruncate(p, a)
	case sys.SYS_ftruncate:
		rv, err = k.sysFtruncate(p, a)
	case sys.SYS_flock:
		rv, err = k.sysFlock(p, a)
	case sys.SYS_mkdir:
		rv, err = k.sysMkdir(p, a)
	case sys.SYS_rmdir:
		rv, err = k.sysRmdir(p, a)
	case sys.SYS_utimes:
		rv, err = k.sysUtimes(p, a)
	case sys.SYS_setsid:
		rv, err = k.sysSetsid(p)
	case sys.SYS_getrlimit:
		rv, err = k.sysGetrlimit(p, a)
	case sys.SYS_setrlimit:
		rv, err = k.sysSetrlimit(p, a)
	case sys.SYS_getdirentries:
		rv, err = k.sysGetdirentries(p, a)
	default:
		err = sys.ENOSYS
	}
	return rv, err
}

// cred returns the process's effective credentials for filesystem checks.
func (p *Proc) cred() vfs.Cred {
	p.mu.Lock()
	defer p.mu.Unlock()
	return vfs.Cred{UID: p.euid, GID: p.egid, Groups: p.groups}
}

// realCred returns the real credentials, used by access(2).
func (p *Proc) realCred() vfs.Cred {
	p.mu.Lock()
	defer p.mu.Unlock()
	return vfs.Cred{UID: p.uid, GID: p.gid, Groups: p.groups}
}

// namei resolves a path for p, honoring its working and root directories.
func (k *Kernel) namei(p *Proc, path string, follow bool) (*vfs.Inode, sys.Errno) {
	p.mu.Lock()
	cwd, root := p.cwd, p.root
	p.mu.Unlock()
	return k.fs.LookupEx(root, cwd, path, p.cred(), follow)
}

// nameiParent resolves a path's parent directory for p.
func (k *Kernel) nameiParent(p *Proc, path string) (*vfs.Inode, string, *vfs.Inode, sys.Errno) {
	p.mu.Lock()
	cwd, root := p.cwd, p.root
	p.mu.Unlock()
	return k.fs.LookupParentEx(root, cwd, path, p.cred())
}

// pathArg copies in a pathname argument.
func (p *Proc) pathArg(addr sys.Word) (string, sys.Errno) {
	return p.CopyInString(addr, sys.PathMax-1)
}

// ioBuf bounds a user I/O size.
func ioCount(n sys.Word) (int, sys.Errno) {
	const maxIO = 8 << 20
	if int32(n) < 0 || n > maxIO {
		return 0, sys.EINVAL
	}
	return int(n), sys.OK
}
