package kernel_test

import (
	"bytes"
	"strings"
	"testing"

	"interpose/internal/fault"
	"interpose/internal/image"
	"interpose/internal/journal"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// attachJournal wires a fresh committing journal to the kernel and
// returns its store.
func attachJournal(k *kernel.Kernel, limit int64) *journal.MemStore {
	st := journal.NewMemStore(limit)
	k.SetJournal(journal.NewWriter(st, 1))
	return st
}

// TestJournalExemptFromFsize locks in the invariant that write-ahead
// journal appends are host-side bookkeeping, invisible to the guest's
// resource accounting: a 4-byte RLIMIT_FSIZE must cap the guest file at
// 4 bytes (SIGXFSZ kills the writer) while the journal happily holds the
// much larger records of everything leading up to it — and no SIGXFSZ
// fires for journal growth itself.
func TestJournalExemptFromFsize(t *testing.T) {
	var st *journal.MemStore
	status, out := runFnSetup(t, func(k *kernel.Kernel) {
		st = attachJournal(k, 0)
	}, func(lt *libc.T) int {
		// Plenty of journaled activity before the limit bites: each write
		// journals name, payload and metadata, far beyond 4 bytes.
		fd, _ := lt.Open("/tmp/big", sys.O_CREAT|sys.O_WRONLY, 0o644)
		lt.Write(fd, bytes.Repeat([]byte("x"), 1000))
		lt.Close(fd)
		lt.Setrlimit(sys.RLIMIT_FSIZE, sys.Rlimit{Cur: 4, Max: 4})
		fd, _ = lt.Open("/tmp/capped", sys.O_CREAT|sys.O_WRONLY, 0o644)
		lt.Write(fd, []byte("0123456789")) // SIGXFSZ kills here
		lt.Printf("survived?!\n")
		return 0
	})
	if sys.WIfExited(status) || sys.WTermSig(status) != sys.SIGXFSZ {
		t.Fatalf("status = %#x, output:\n%s", status, out)
	}
	if st.Size() < 1000 {
		t.Fatalf("journal holds %d bytes; the 1000-byte write never reached it", st.Size())
	}
	// The journal must show the capped file receiving exactly the clamped
	// 4-byte write, not the attempted 10: the record is emitted after
	// RLIMIT clamping, so replay reproduces what the limit allowed.
	recs, torn := journal.Scan(st.Bytes())
	if torn != nil {
		t.Fatal(torn)
	}
	for _, r := range recs {
		if r.Op == journal.OpWrite && len(r.Data) == 10 {
			t.Fatal("journal recorded the full 10-byte write past RLIMIT_FSIZE")
		}
	}
}

// TestJournalENOSPCDegradesToEROFS fills a tiny journal device from
// guest code and demands the graceful-degradation path: mutations fail
// with EROFS (fsync with EIO), reads keep working, and nothing is
// silently dropped.
func TestJournalENOSPCDegradesToEROFS(t *testing.T) {
	status, out := runFnSetup(t, func(k *kernel.Kernel) {
		attachJournal(k, 2048)
	}, func(lt *libc.T) int {
		fd, _ := lt.Open("/tmp/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
		var e sys.Errno
		for i := 0; i < 1000; i++ {
			if _, e = lt.Write(fd, bytes.Repeat([]byte("y"), 64)); e != sys.OK {
				break
			}
		}
		lt.Printf("write %s\n", e.Name())
		lt.Printf("creat %s\n", func() sys.Errno {
			_, e := lt.Open("/tmp/more", sys.O_CREAT|sys.O_WRONLY, 0o644)
			return e
		}().Name())
		lt.Printf("fsync %s\n", lt.Fsync(fd).Name())
		// Reads still work on the degraded filesystem.
		rfd, e := lt.Open("/etc/motd", sys.O_RDONLY, 0)
		if e != sys.OK {
			lt.Printf("open for read failed: %s\n", e.Name())
			return 1
		}
		buf := make([]byte, 4)
		n, e := lt.Read(rfd, buf)
		lt.Printf("read %d %v\n", n, e == sys.OK)
		return 0
	})
	got := expectOK(t, status, out)
	want := "write EROFS\ncreat EROFS\nfsync EIO\nread 4 true\n"
	if got != want {
		t.Fatalf("out = %q, want %q", got, want)
	}
}

// TestCheckpointRestoreRoundTrip runs a program that mutates the world,
// checkpoints it, restores into a fresh kernel and verifies the restored
// world is byte-identical, passes fsck, and can still exec programs.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		lt.Mkdir("/home/user", 0o755)
		fd, _ := lt.Open("/home/user/state", sys.O_CREAT|sys.O_WRONLY, 0o600)
		lt.Write(fd, []byte("crash-consistent"))
		lt.Close(fd)
		lt.Rename("/home/user/state", "/home/user/renamed")
		return 0
	}))
	k := kernel.New(reg)
	if err := k.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := k.WaitExit(p); !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("setup program: %#x", st)
	}

	var ckpt bytes.Buffer
	if err := k.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	k2, err := kernel.Restore(reg, bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bad := k2.FS().Check(); len(bad) != 0 {
		t.Fatalf("restored world fails fsck: %v", bad)
	}
	if k.FS().StateHash() != k2.FS().StateHash() {
		t.Fatal("restored world differs from checkpointed one")
	}
	data, err := k2.ReadFile("/home/user/renamed")
	if err != nil || string(data) != "crash-consistent" {
		t.Fatalf("restored file: %q, %v", data, err)
	}
	// The restored world still executes programs (binaries are ordinary
	// files in the restored tree; the registry supplies their code).
	p2, err := k2.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := k2.WaitExit(p2); !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("exec on restored world: %#x", st)
	}
}

// TestRestoreRejectsMissingImage refuses a checkpoint naming an image
// the registry cannot provide.
func TestRestoreRejectsMissingImage(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int { return 0 }))
	k := kernel.New(reg)
	var ckpt bytes.Buffer
	if err := k.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	empty := image.NewRegistry()
	if _, err := kernel.Restore(empty, bytes.NewReader(ckpt.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "unregistered image") {
		t.Fatalf("restore with empty registry: %v", err)
	}
}

// TestInjectedCrashRecovery is the full crash loop at kernel level: a
// seeded plan kills the world mid-workload with a torn journal tail;
// recovery replays the surviving prefix onto a fresh world, which must
// pass fsck and contain exactly the journaled mutations.
func TestInjectedCrashRecovery(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		lt.Mkdir("/tmp/work", 0o755)
		for i := 0; i < 10000; i++ {
			name := "/tmp/work/f" + string(rune('a'+i%26))
			fd, e := lt.Open(name, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o644)
			if e != sys.OK {
				return 1 // dying world: syscalls fail with EINTR
			}
			lt.Write(fd, []byte("generation data"))
			lt.Close(fd)
		}
		return 0
	}))
	k := kernel.New(reg)
	if err := k.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	st := attachJournal(k, 0)

	plan, err := fault.ParsePlan("seed=42,write=torn:9@0.001")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	inj.OnCrash(func(torn int) {
		st.Freeze(torn)
		k.Crash()
	})
	k.SetInjector(inj)

	p, err := k.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	status := k.WaitExit(p)
	if !inj.Crashed() {
		t.Skip("seed 42 never fired at p=0.001 within the workload")
	}
	if sys.WIfExited(status) && sys.WExitStatus(status) == 0 {
		t.Fatalf("world crashed but pid 1 exited cleanly (%#x)", status)
	}

	// Recovery: fresh world, replay the frozen journal.
	k2 := kernel.New(reg)
	if err := k2.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	applied, _, torn, err := k2.ReplayJournal(st.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if torn == nil {
		t.Fatal("torn:9 crash left no torn tail")
	}
	if applied == 0 {
		t.Fatal("nothing replayed")
	}
	if bad := k2.FS().Check(); len(bad) != 0 {
		t.Fatalf("recovered world fails fsck: %v", bad)
	}
	// Determinism: the same seed over the same workload crashes at the
	// same point and recovers to the same state.
	k3 := kernel.New(reg)
	if err := k3.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	st3 := attachJournal(k3, 0)
	inj3 := fault.NewInjector(plan)
	inj3.OnCrash(func(torn int) {
		st3.Freeze(torn)
		k3.Crash()
	})
	k3.SetInjector(inj3)
	p3, err := k3.Spawn("/bin/main", []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k3.WaitExit(p3)
	if !bytes.Equal(st.Bytes(), st3.Bytes()) {
		t.Fatal("same seed produced different journals")
	}
}
