package kernel

import (
	"strings"
	"time"

	"interpose/internal/image"
	"interpose/internal/sys"
)

func (k *Kernel) sysExit(p *Proc, a sys.Args) {
	status := sys.WStatusExit(int(a[0]))
	k.trace(p, "exit", "", "", int(a[0]), sys.OK)
	p.exitNow(status) // does not return
}

// finishExit turns p into a zombie: closes descriptors, reparents children,
// and notifies the parent. The p.finished CAS elects exactly one
// finisher — later or concurrent calls are no-ops — because the caller
// is not always the process's own goroutine: host-side Shutdown exits a
// process whose Start it raced, and the eventual exit of that process's
// goroutine must not run teardown a second time (WaitExit still
// synchronizes on exitDone, which only the winner closes). It runs in
// three phases so descriptor teardown — which takes per-object pipe and
// flock locks and wakes peers — happens outside the process-table lock.
func (k *Kernel) finishExit(p *Proc, status sys.Word) {
	if !p.finished.CompareAndSwap(false, true) {
		return
	}
	k.pmu.Lock()
	if st := p.loadState(); st == procZombie || st == procDead {
		k.pmu.Unlock()
		return
	}
	k.stopITimerLocked(p)
	k.pmu.Unlock()

	// Phase 2: teardown that takes narrower locks. The CAS above means
	// only one goroutine reaches here, so there is no double-run hazard
	// in the window before the state flips to zombie below.
	p.fdMu.Lock()
	for fd := range p.fds {
		if p.fds[fd].file != nil {
			p.closeFDLocked(fd)
		}
	}
	p.fdMu.Unlock()

	// Let stateful emulation layers drop their per-process records.
	for _, l := range p.Emulation() {
		if pe, ok := l.Handler.(ProcExiter); ok {
			pe.ProcExit(p.pid)
		}
	}

	k.pmu.Lock()
	// Reparent live children to pid 1; orphaned zombies are reaped now.
	init := k.procs[1]
	adopted := false
	for pid, child := range p.children {
		delete(p.children, pid)
		if init != nil && init != p && init.loadState() == procRunning {
			child.ppid = 1
			init.children[pid] = child
			adopted = true
		} else {
			child.ppid = 0
			if child.loadState() == procZombie {
				child.setStateLocked(procDead)
				delete(k.procs, pid)
			}
		}
	}
	// Publish the exit call's root span for the wait causal edge before
	// the zombie transition makes the process reapable. Holding k.pmu
	// here is what makes the copy visible to the reaping parent, which
	// reads exitSpan under k.pmu.
	p.exitSpan = p.curSpan.Load()
	p.exitStatus = status
	p.setStateLocked(procZombie)
	p.sigMu.Lock()
	p.refreshAttnLocked()
	p.sigMu.Unlock()
	if adopted {
		// Init may be sleeping in wait4; its new children need a wakeup.
		init.childQ.wakeAll()
	}
	if parent, ok := k.procs[p.ppid]; ok && p.ppid != 0 {
		k.postSignalPLocked(parent, sys.SIGCHLD)
		noteSigCause(parent, p.traceID.Load(), p.curSpan.Load())
		parent.childQ.wakeAll()
	}
	close(p.exitDone) // host-side WaitExit callers unblock here
	k.pmu.Unlock()
}

// rusageSelf computes the process's own resource usage. All inputs are
// atomics, immutable fields, or self-locking (the address space), so no
// kernel lock is needed.
func (p *Proc) rusageSelf() sys.Rusage {
	elapsed := time.Since(p.startTime)
	return sys.Rusage{
		Utime:    durTimeval(elapsed),
		Stime:    sys.Timeval{},
		Maxrss:   uint32(p.as.Pages() * sys.PageSize / 1024),
		Nsyscall: loadUint32(&p.nsyscalls),
	}
}

func durTimeval(d time.Duration) sys.Timeval {
	return sys.Timeval{Sec: uint32(d / time.Second), Usec: uint32(d % time.Second / time.Microsecond)}
}

func addRusage(dst *sys.Rusage, src sys.Rusage) {
	usec := uint64(dst.Utime.Usec) + uint64(src.Utime.Usec)
	dst.Utime.Sec += src.Utime.Sec + uint32(usec/1e6)
	dst.Utime.Usec = uint32(usec % 1e6)
	dst.Maxrss = maxU32(dst.Maxrss, src.Maxrss)
	dst.Nsyscall += src.Nsyscall
	dst.Nsignals += src.Nsignals
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func (k *Kernel) sysFork(p *Proc) (sys.Retval, sys.Errno) {
	p.mu.Lock()
	entry := p.stagedChild
	p.stagedChild = nil
	p.mu.Unlock()
	if entry == nil {
		// No staged child continuation: the simulated machine cannot
		// snapshot a program counter, so fork without one is a fault.
		return sys.Retval{}, sys.EAGAIN
	}
	// Build the child fully before publishing it: once it is in the
	// process table a concurrent kill or wait4 may touch it, so no field
	// may still be half-copied at that point.
	child := k.newProc(k.allocPID())
	child.as = p.as.Clone()
	p.fdMu.Lock()
	for fd := range p.fds {
		if f := p.fds[fd].file; f != nil {
			child.fds[fd] = fdesc{file: f, cloexec: p.fds[fd].cloexec}
			f.ref()
		}
	}
	p.fdMu.Unlock()
	p.mu.Lock()
	child.cwd = p.cwd
	child.root = p.root
	child.uid, child.euid = p.uid, p.euid
	child.gid, child.egid = p.gid, p.egid
	child.groups = append([]uint32(nil), p.groups...)
	child.umask = p.umask
	child.rlimits = p.rlimits
	child.comm = p.comm
	child.initialSP = p.initialSP
	p.mu.Unlock()
	p.sigMu.Lock()
	child.sigMask = p.sigMask
	child.sigHandlers = p.sigHandlers
	child.sigDispatch = p.sigDispatch
	p.sigMu.Unlock()
	p.mu.Lock()
	child.emu = append([]*EmuLayer(nil), p.emu...)
	p.mu.Unlock()
	child.plan.Store(compilePlan(child, child.emu))
	child.pendingChildInit = len(child.emu) > 0
	// Causal tracing: the child joins the parent's trace and its first
	// sampled span parents to the fork span. This runs on the parent's
	// goroutine before publishProc, so the copy races with nothing.
	child.traceID.Store(p.traceID.Load())
	child.causeSpan.Store(p.curSpan.Load())
	k.publishProc(child, p)
	k.trace(p, "fork", "", "", child.pid, sys.OK)
	child.started.Store(true)
	go child.run(entry)
	return sys.Retval{sys.Word(child.pid)}, sys.OK
}

func (k *Kernel) sysWait4(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	sel := int(int32(a[0]))
	statusAddr, options, ruAddr := a[1], int(a[2]), a[3]
	k.pmu.Lock()
	defer k.pmu.Unlock()
	for {
		matched := false
		for pid, child := range p.children {
			switch {
			case sel == -1, sel == pid,
				sel == 0 && child.pgrp == p.pgrp,
				sel < -1 && child.pgrp == -sel:
			default:
				continue
			}
			matched = true
			if child.loadState() != procZombie {
				continue
			}
			// Reap.
			delete(p.children, pid)
			delete(k.procs, pid)
			child.setStateLocked(procDead)
			// Causal tracing: link this wait span to the child's exit span
			// (written in finishExit; the shared k.pmu carries it here).
			if child.exitSpan != 0 && p.curSpan.Load() != 0 {
				p.curLink.Store(child.exitSpan)
			}
			ru := child.rusageSelf()
			addRusage(&ru, child.childrenRu)
			addRusage(&p.childrenRu, ru)
			if statusAddr != 0 {
				var b [4]byte
				st := child.exitStatus
				b[0], b[1], b[2], b[3] = byte(st), byte(st>>8), byte(st>>16), byte(st>>24)
				if e := p.CopyOut(statusAddr, b[:]); e != sys.OK {
					return sys.Retval{}, e
				}
			}
			if ruAddr != 0 {
				var b [sys.RusageSize]byte
				ru.Encode(b[:])
				if e := p.CopyOut(ruAddr, b[:]); e != sys.OK {
					return sys.Retval{}, e
				}
			}
			return sys.Retval{sys.Word(pid)}, sys.OK
		}
		if !matched {
			return sys.Retval{}, sys.ECHILD
		}
		if options&sys.WNOHANG != 0 {
			return sys.Retval{sys.Word(0)}, sys.OK
		}
		// Sleep on this process's own child queue; exiting children wake
		// it (finishExit), as does any posted signal.
		if e := p.sleepOn(&p.childQ, &k.pmu); e != sys.OK {
			return sys.Retval{}, e
		}
	}
}

// decodeStringVec reads a NULL-terminated vector of string pointers.
func decodeStringVec(p *Proc, addr sys.Word) ([]string, sys.Errno) {
	if addr == 0 {
		return nil, sys.OK
	}
	var out []string
	total := 0
	for i := 0; ; i++ {
		if i > 1024 {
			return nil, sys.E2BIG
		}
		ptr, e := p.as.Word32(addr + sys.Word(4*i))
		if e != sys.OK {
			return nil, e
		}
		if ptr == 0 {
			return out, sys.OK
		}
		s, e := p.CopyInString(ptr, sys.ArgMax)
		if e != sys.OK {
			return nil, e
		}
		total += len(s) + 1
		if total > sys.ArgMax {
			return nil, sys.E2BIG
		}
		out = append(out, s)
	}
}

func (k *Kernel) sysExecve(p *Proc, a sys.Args) (sys.Retval, sys.Errno) {
	path, err := p.pathArg(a[0])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	argv, err := decodeStringVec(p, a[1])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	envp, err := decodeStringVec(p, a[2])
	if err != sys.OK {
		return sys.Retval{}, err
	}
	entry, err := k.execLoad(p, path, argv, envp)
	k.trace(p, "execve", path, "", -1, err)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	p.Exec(entry) // does not return
	// Invariant: Exec always unwinds by panic (execUnwind); reaching here
	// would mean the unwind machinery itself is broken.
	panic("unreachable")
}

// execLoad performs every step of execve except transferring control:
// resolve and read the image (following "#!" interpreters), apply set-id
// bits, close close-on-exec descriptors, reset caught signal handlers,
// clear the address space, and build the new argument stack.
func (k *Kernel) execLoad(p *Proc, path string, argv, envp []string) (image.Entry, sys.Errno) {
	var entry image.Entry
	var imgUID, imgGID uint32
	var imgMode uint32
	cred := p.cred()

	for depth := 0; ; depth++ {
		if depth > 4 {
			return nil, sys.ENOEXEC
		}
		ip, err := k.namei(p, path, true)
		if err != sys.OK {
			return nil, err
		}
		st := ip.Stat()
		if !st.IsReg() {
			return nil, sys.EACCES
		}
		if e := k.fs.Access(ip, sys.X_OK, cred); e != sys.OK {
			return nil, e
		}
		ep := k.exec.parse(ip)
		switch ep.kind {
		case execImage:
			e, found := k.images.Lookup(ep.name)
			if !found {
				return nil, sys.ENOEXEC
			}
			entry = e
			imgUID, imgGID, imgMode = st.UID, st.GID, st.Mode
			if len(argv) == 0 {
				argv = []string{path}
			}
		case execInterp:
			newArgv := []string{ep.interp}
			if ep.arg != "" {
				newArgv = append(newArgv, ep.arg)
			}
			newArgv = append(newArgv, path)
			if len(argv) > 1 {
				newArgv = append(newArgv, argv[1:]...)
			}
			argv = newArgv
			path = ep.interp
			continue
		default:
			return nil, sys.ENOEXEC
		}
		break
	}

	// Set-id bits change the effective credentials.
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	p.mu.Lock()
	if imgMode&sys.S_ISUID != 0 {
		p.euid = imgUID
	}
	if imgMode&sys.S_ISGID != 0 {
		p.egid = imgGID
	}
	p.stagedChild = nil
	p.comm = base
	p.mu.Unlock()
	// Close close-on-exec descriptors.
	p.fdMu.Lock()
	for fd := range p.fds {
		if p.fds[fd].file != nil && p.fds[fd].cloexec {
			p.closeFDLocked(fd)
		}
	}
	p.fdMu.Unlock()
	// Caught signals revert to default; ignored/default dispositions keep.
	p.sigMu.Lock()
	for s := 1; s < sys.NSIG; s++ {
		if h := p.sigHandlers[s].Handler; h != sys.SIG_DFL && h != sys.SIG_IGN {
			p.sigHandlers[s] = sys.Sigvec{Handler: sys.SIG_DFL}
		}
	}
	p.sigDispatch = nil
	p.sigMu.Unlock()

	// Replace the address space and build the new stack.
	p.as.Reset()
	sp, errno := image.SetupStack(p, argv, envp)
	if errno != sys.OK {
		// The old image is gone; this is fatal, as on a real system where
		// the stack cannot be built.
		p.exitNow(sys.WStatusSignal(sys.SIGKILL))
	}
	p.SetInitialSP(sp)
	return entry, sys.OK
}

// NewProc allocates a fresh process with no parent, for host-side spawning.
func (k *Kernel) NewProc() *Proc {
	p := k.newProc(k.allocPID())
	k.publishProc(p, nil)
	return p
}

// OpenConsole wires descriptors 0, 1 and 2 of p to /dev/console.
func (p *Proc) OpenConsole() error {
	ip, err := p.k.fs.Lookup(p.k.fs.Root(), "/dev/console", rootCred, true)
	if err != sys.OK {
		return err
	}
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	for fd := 0; fd < 3; fd++ {
		if p.fds[fd].file == nil {
			f := &File{ip: ip, flags: sys.O_RDWR}
			p.installFDLocked(fd, f, false)
		}
	}
	return nil
}

// SetCreds sets the process's identity (host-side world building).
func (p *Proc) SetCreds(uid, gid uint32, groups ...uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.uid, p.euid = uid, uid
	p.gid, p.egid = gid, gid
	p.groups = groups
}

// Chdir sets the working directory (host-side world building).
func (p *Proc) Chdir(path string) error {
	ip, err := p.k.fs.Lookup(p.k.fs.Root(), path, rootCred, true)
	if err != sys.OK {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cwd = ip
	return nil
}

// Spawn creates a process running the image at path with the given
// arguments, its standard descriptors on the console. The returned process
// has already started.
func (k *Kernel) Spawn(path string, argv, envp []string) (*Proc, error) {
	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		return nil, err
	}
	if err := p.Start(path, argv, envp); err != nil {
		return nil, err
	}
	return p, nil
}

// WaitExit blocks until p terminates and reaps it, returning the wait
// status. Intended for host-side callers that spawned p; processes inside
// the system use wait4. The wait itself is on the process's exit-done
// channel — the host caller is not a process and cannot park on a wait
// queue.
func (k *Kernel) WaitExit(p *Proc) sys.Word {
	<-p.exitDone
	k.pmu.Lock()
	defer k.pmu.Unlock()
	status := p.exitStatus
	if p.loadState() == procZombie {
		p.setStateLocked(procDead)
		delete(k.procs, p.pid)
		if parent, ok := k.procs[p.ppid]; ok {
			delete(parent.children, p.pid)
		}
	}
	return status
}

// Discard exits and reaps a process that NewProc published but whose
// host-side launch then failed (console wiring, rlimit setup, or image
// load): nothing will ever run it, so the caller retires it directly.
// Without this, every failed launch would leave a process and its
// address space in the table until Shutdown — unbounded growth in a
// long-lived multi-tenant kernel.
func (k *Kernel) Discard(p *Proc) {
	k.finishExit(p, sys.WStatusSignal(sys.SIGKILL))
	k.WaitExit(p)
}

// Shutdown kills and reaps every live process: each gets an unmaskable
// SIGKILL (waking any kernel sleep, per the no-re-block-on-exit
// guarantee), and the caller then waits for every process goroutine to
// exit and removes it from the table. After Shutdown returns the world
// runs no goroutines and holds no zombies — it is quiesced, ready to be
// checkpointed or discarded. This is the teardown half of the world
// lifecycle layer (internal/world); a multi-tenant server calls it on
// every world it closes, so it must not leak even when guests are
// mid-syscall or blocked in sleeps.
//
// Signals are re-posted each round because a fork racing with the first
// round can publish a new child after the table was swept; the loop
// terminates because a killed process cannot fork again and every round
// reaps at least one process.
func (k *Kernel) Shutdown() {
	for {
		k.pmu.Lock()
		var victim *Proc
		for _, p := range k.procs {
			victim = p
			k.postSignalPLocked(p, sys.SIGKILL)
		}
		k.pmu.Unlock()
		if victim == nil {
			return
		}
		if !victim.started.Load() {
			// A host-driven process with no goroutine (NewProc without
			// Start, or a Start that failed to load): nothing will ever
			// deliver the signal, so shutdown performs its exit directly.
			// A Start racing this check is benign: finishExit's CAS
			// elects one finisher, and the late goroutine's own exit
			// becomes the no-op side.
			k.finishExit(victim, sys.WStatusSignal(sys.SIGKILL))
		}
		k.WaitExit(victim)
	}
}

// ProcCount returns the number of live (non-reaped) processes.
func (k *Kernel) ProcCount() int {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	return len(k.procs)
}

// FindProc returns the process with the given pid, if it is live.
func (k *Kernel) FindProc(pid int) (*Proc, bool) {
	k.pmu.Lock()
	defer k.pmu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}
