package kernel

import (
	"encoding/binary"
	"fmt"
	"io"

	"interpose/internal/image"
	"interpose/internal/journal"
	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// World checkpoint/restore: a checkpoint freezes a quiesced world — the
// whole filesystem (program binaries included, since executables are
// ordinary files holding registered image headers) plus the list of
// image names the world depends on — into one self-validating stream.
// Restore builds a kernel shell around the reconstructed filesystem,
// resolving device nodes against the fresh driver table and verifying
// every required image is registered. Composed with the write-ahead
// journal this is crash recovery: restore the last checkpoint (or boot
// fresh), then ReplayJournal the suffix the journal kept.

// ckptMagic heads every checkpoint stream.
const ckptMagic = "INTERPOSE-CKPT1\n"

// Checkpoint writes the world's durable state to w. The world must be
// quiesced: no running processes (their address spaces and descriptor
// tables are transient state and are not captured). Call Journal's
// Commit first if a journal is attached so the checkpoint and journal
// agree on the sequence watermark.
func (k *Kernel) Checkpoint(w io.Writer) error {
	names := k.images.Names()
	var hdr []byte
	hdr = append(hdr, ckptMagic...)
	hdr = binary.AppendUvarint(hdr, uint64(len(names)))
	for _, n := range names {
		hdr = binary.AppendUvarint(hdr, uint64(len(n)))
		hdr = append(hdr, n...)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return k.fs.WriteSnapshot(w)
}

// Restore reconstructs a checkpointed world against the given image
// registry, which must provide every image name the checkpoint recorded.
func Restore(images *image.Registry, r io.Reader) (*Kernel, error) {
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("kernel: checkpoint header: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("kernel: not a checkpoint (bad magic)")
	}
	br := byteReaderFrom(r)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("kernel: checkpoint image list: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("kernel: checkpoint image list: %w", err)
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("kernel: checkpoint image list: %w", err)
		}
		if _, ok := images.Lookup(string(name)); !ok {
			return nil, fmt.Errorf("kernel: checkpoint needs unregistered image %q", name)
		}
	}

	k := newKernel(images)
	fs, err := vfs.ReadSnapshot(br, k.Now, func(rdev uint32) (vfs.Device, bool) {
		d := k.lookupDevice(rdev)
		return d, d != nil
	})
	if err != nil {
		return nil, err
	}
	k.fs = fs
	return k, nil
}

// byteReaderFrom adapts r for binary.ReadUvarint without buffering ahead
// (the snapshot reader must see the stream exactly where we left it).
func byteReaderFrom(r io.Reader) *oneByteReader {
	if br, ok := r.(*oneByteReader); ok {
		return br
	}
	return &oneByteReader{r: r}
}

type oneByteReader struct{ r io.Reader }

func (o *oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }
func (o *oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(o.r, b[:])
	return b[0], err
}

// ReplayJournal scans raw journal bytes and replays them onto this
// world's filesystem, rolling it forward to the last durable mutation.
// Records at or below the filesystem's applied watermark self-skip, so
// replaying a full journal over a mid-journal checkpoint is exact. A
// torn tail is normal after a crash — replay stops cleanly before it —
// and is returned for reporting, not as a failure.
func (k *Kernel) ReplayJournal(data []byte) (applied, skipped int, torn *journal.Torn, err error) {
	recs, torn := journal.Scan(data)
	rp := vfs.NewReplayer(k.fs, func(rdev uint32) (vfs.Device, bool) {
		d := k.lookupDevice(rdev)
		return d, d != nil
	})
	if err := rp.ReplayAll(recs); err != nil {
		return 0, 0, torn, err
	}
	applied, skipped = rp.Stats()
	return applied, skipped, torn, nil
}

// SetJournal attaches a write-ahead journal to the world's filesystem
// (nil detaches). Attach on a quiesced world; after recovery, StartAt
// the filesystem's JournalSeq()+1 first.
func (k *Kernel) SetJournal(w *journal.Writer) { k.fs.SetJournal(w) }

// Journal returns the attached journal writer, or nil.
func (k *Kernel) Journal() *journal.Writer { return k.fs.Journal() }

// Injector returns the installed fault injector, or nil.
func (k *Kernel) Injector() Injector {
	if b := k.inj.Load(); b != nil {
		return b.inj
	}
	return nil
}

// SetCrashHook installs (or removes, with nil) a function invoked at
// the top of every Crash, before the process-table lock is taken. It
// gives a machine supervisor a push-path death signal; the hook runs on
// the crashing goroutine and must not block or call back into Crash's
// caller synchronously (re-entering Crash itself is safe — the hook
// fires again, so it must be idempotent).
func (k *Kernel) SetCrashHook(fn func()) {
	if fn == nil {
		k.crashHook.Store(nil)
		return
	}
	k.crashHook.Store(&fn)
}

// Crash kills the world: every live process gets an unmaskable,
// uncatchable SIGKILL, exactly as if the machine lost power with the
// filesystem's journal frozen at its current prefix. Callers freeze the
// journal store first (the injected-crash path does), then WaitExit the
// top-level process and recover.
func (k *Kernel) Crash() {
	if fn := k.crashHook.Load(); fn != nil {
		(*fn)()
	}
	k.pmu.Lock()
	defer k.pmu.Unlock()
	for _, p := range k.procs {
		k.postSignalPLocked(p, sys.SIGKILL)
	}
}
