package kernel_test

import (
	"testing"

	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
	"interpose/internal/trace"
)

// findSpan returns the first span matching pred, or nil.
func findSpan(spans []trace.Span, pred func(trace.Span) bool) *trace.Span {
	for i := range spans {
		if pred(spans[i]) {
			return &spans[i]
		}
	}
	return nil
}

// TestTraceCausalEdges drives every cross-process causal edge in one
// guest program — fork, pipe write→read, signal post→deliver, and
// wait — and checks the recorded spans connect into a single trace.
func TestTraceCausalEdges(t *testing.T) {
	tr := trace.NewTracer(trace.Config{Sample: 1, Capacity: 1 << 18})
	st, out := runFnSetup(t, func(k *kernel.Kernel) { k.SetSpanTracer(tr) }, func(lt *libc.T) int {
		r, w, errno := lt.Pipe()
		if errno != sys.OK {
			lt.Errorf("pipe: %v", errno)
			return 1
		}
		pid, errno := lt.Fork(func(ct *libc.T) {
			done := false
			ct.Signal(sys.SIGUSR1, func(ht *libc.T, sig int) { done = true })
			ct.Write(w, []byte("r")) // ready: handler installed
			for !done {
				ct.Syscall(sys.SYS_getpid)
			}
			ct.Exit(7)
		})
		if errno != sys.OK {
			lt.Errorf("fork: %v", errno)
			return 1
		}
		buf := make([]byte, 1)
		if _, errno := lt.Read(r, buf); errno != sys.OK {
			lt.Errorf("read: %v", errno)
			return 1
		}
		if errno := lt.Kill(pid, sys.SIGUSR1); errno != sys.OK {
			lt.Errorf("kill: %v", errno)
			return 1
		}
		_, wst, errno := lt.Waitpid(pid)
		if errno != sys.OK || sys.WExitStatus(wst) != 7 {
			lt.Errorf("wait: %v status %#x", errno, wst)
			return 1
		}
		return 0
	})
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("guest exited %#x\n%s", st, out)
	}

	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byID := make(map[uint64]trace.Span, len(spans))
	traces := make(map[uint64]bool)
	pids := make(map[int32]bool)
	for _, sp := range spans {
		byID[sp.ID] = sp
		traces[sp.Trace] = true
		pids[sp.PID] = true
	}
	if len(traces) != 1 {
		t.Errorf("spans belong to %d traces, want 1", len(traces))
	}
	if len(pids) < 2 {
		t.Fatalf("spans cover %d pids, want parent and child", len(pids))
	}

	// Fork edge: the child's first root span's causal parent is the
	// parent's fork span.
	forkSpan := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_fork && sp.Layer == trace.LayerRoot
	})
	if forkSpan == nil {
		t.Fatal("no fork span")
	}
	childRoot := findSpan(spans, func(sp trace.Span) bool {
		return sp.Parent == forkSpan.ID && sp.PID != forkSpan.PID
	})
	if childRoot == nil {
		t.Error("no child span causally parented by the fork span")
	}

	// Pipe edge: the parent's pipe read links to the child's write span.
	readSpan := findSpan(spans, func(sp trace.Span) bool {
		if sp.Num != sys.SYS_read || sp.Layer != trace.LayerRoot || sp.Link == 0 {
			return false
		}
		src, ok := byID[sp.Link]
		return ok && src.Num == sys.SYS_write && src.PID != sp.PID
	})
	if readSpan == nil {
		t.Error("no read span linked to a cross-process write span")
	}

	// Signal edge: a delivery span in the child links to the parent's
	// kill span, and the child's next root span is parented by it.
	killSpan := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_kill && sp.Layer == trace.LayerRoot
	})
	if killSpan == nil {
		t.Fatal("no kill span")
	}
	delivery := findSpan(spans, func(sp trace.Span) bool {
		return sp.Layer == trace.LayerSignal && sp.Link == killSpan.ID
	})
	if delivery == nil {
		t.Fatal("no signal-delivery span linked to the kill span")
	}
	if delivery.Num != sys.SIGUSR1 || delivery.PID == killSpan.PID {
		t.Errorf("delivery span = %+v, want SIGUSR1 in the child", delivery)
	}
	afterDelivery := findSpan(spans, func(sp trace.Span) bool {
		return sp.Parent == delivery.ID && sp.PID == delivery.PID
	})
	if afterDelivery == nil {
		t.Error("no child span causally parented by the signal delivery")
	}

	// Wait edge: the parent's reaping wait4 links to the child's
	// entry-recorded exit span.
	waitSpan := findSpan(spans, func(sp trace.Span) bool {
		if sp.Num != sys.SYS_wait4 || sp.Link == 0 {
			return false
		}
		src, ok := byID[sp.Link]
		return ok && src.Num == sys.SYS_exit && src.PID != sp.PID
	})
	if waitSpan == nil {
		t.Error("no wait4 span linked to a cross-process exit span")
	}
	exitSpan := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_exit && sp.PID != killSpan.PID
	})
	if exitSpan == nil {
		t.Fatal("no child exit span")
	} else if exitSpan.Dur != -1 {
		t.Errorf("exit span Dur = %d, want -1 (entry-recorded)", exitSpan.Dur)
	}
}

// TestTraceExecEdge checks the exec causal edge: a successful execve is
// entry-recorded and becomes the causal parent of the fresh image's
// first span, in the same process.
func TestTraceExecEdge(t *testing.T) {
	tr := trace.NewTracer(trace.Config{Sample: 1})
	st, out := runFnSetup(t, func(k *kernel.Kernel) { k.SetSpanTracer(tr) }, func(lt *libc.T) int {
		pid, errno := lt.Fork(func(ct *libc.T) {
			ct.Exec("/bin/main", []string{"main", "execd"}, nil)
			ct.Exit(3) // only reached if exec failed
		})
		if errno != sys.OK {
			return 1
		}
		if len(lt.Args) > 1 && lt.Args[1] == "execd" {
			return 0 // the fresh image
		}
		_, wst, _ := lt.Waitpid(pid)
		if sys.WExitStatus(wst) != 0 {
			return 1
		}
		return 0
	})
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("guest exited %#x\n%s", st, out)
	}

	spans := tr.Snapshot()
	execSpan := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_execve && sp.Layer == trace.LayerRoot
	})
	if execSpan == nil {
		t.Fatal("no execve span")
	}
	if execSpan.Dur != -1 {
		t.Errorf("execve span Dur = %d, want -1 (entry-recorded)", execSpan.Dur)
	}
	after := findSpan(spans, func(sp trace.Span) bool {
		return sp.Parent == execSpan.ID && sp.PID == execSpan.PID
	})
	if after == nil {
		t.Error("no span causally parented by the execve span")
	}
}

// TestTraceLayerSpans checks per-layer attribution: with an emulation
// layer installed, a sampled call records a root span, a layer child
// span carrying the layer's name, and a kernel-leg child span.
func TestTraceLayerSpans(t *testing.T) {
	tr := trace.NewTracer(trace.Config{Sample: 1})
	k, p, _ := superviseWorld(t, "shim", sys.HandlerFunc(callDown))
	k.SetSpanTracer(tr)
	if _, err := p.Syscall(sys.SYS_getpid, sys.Args{}); err != sys.OK {
		t.Fatalf("getpid: %v", err)
	}

	spans := tr.Snapshot()
	root := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_getpid && sp.Layer == trace.LayerRoot
	})
	if root == nil {
		t.Fatal("no getpid root span")
	}
	layerSpan := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_getpid && sp.Layer > 0 && sp.Parent == root.ID
	})
	if layerSpan == nil {
		t.Fatal("no layer child span under the getpid root")
	}
	if layerSpan.Name != "shim" {
		t.Errorf("layer span name = %q, want shim", layerSpan.Name)
	}
	kernelLeg := findSpan(spans, func(sp trace.Span) bool {
		return sp.Num == sys.SYS_getpid && sp.Layer == trace.LayerKernel && sp.Parent == layerSpan.ID
	})
	if kernelLeg == nil {
		t.Error("no kernel-leg span under the layer span")
	}
}
