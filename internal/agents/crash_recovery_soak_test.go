package agents_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"interpose/internal/agents/agenttest"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/fault"
	"interpose/internal/journal"
	"interpose/internal/kernel"
)

// TestCrashRecoverySoakMk is the crash/recovery soak: many seeded cycles
// of the mk workload dying mid-build to injected crashes (clean and
// torn-tail), each recovered by replaying the frozen journal onto an
// identically built fresh world. Every cycle enforces the three
// crash-consistency promises:
//
//   - zero verifier violations: the recovered world passes fsck;
//   - zero loss of committed data: files written before an explicit
//     group-commit barrier survive the crash byte-for-byte;
//   - determinism: the same seed over the same workload yields a
//     byte-identical journal across two runs, two independent replays of
//     that journal agree on the state hash, and a second replay onto an
//     already-recovered world applies nothing (convergence).
//
// A failing cycle leaves its journal and a checkpoint of the recovered
// world in $ARTIFACT_DIR for post-mortem.
func TestCrashRecoverySoakMk(t *testing.T) {
	defer agenttest.Watchdog(t, 8*time.Minute)()
	cycles := 200
	if testing.Short() {
		cycles = 20
	}
	crashes := 0
	for c := 0; c < cycles; c++ {
		if runCrashRecoveryCycle(t, c) {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no cycle crashed; the plans are too weak to soak anything")
	}
	t.Logf("%d/%d cycles crashed and recovered cleanly", crashes, cycles)
}

// soakEffects rotates crash profiles through the cycles: clean crashes
// and torn tails of varying size, on the workload's hottest calls.
var soakEffects = []string{
	"write=crash@0.01",
	"write=torn:13@0.01",
	"open=crash@0.02",
	"write=torn:63@0.005",
}

// runCrashRecoveryCycle runs one seeded crash/recover cycle and reports
// whether the seed actually crashed the world (a clean build is a valid,
// uninteresting outcome).
func runCrashRecoveryCycle(t *testing.T, cycle int) bool {
	t.Helper()
	planSpec := fmt.Sprintf("seed=%d,%s", cycle+1, soakEffects[cycle%len(soakEffects)])
	plan, err := fault.ParsePlan(planSpec)
	if err != nil {
		t.Fatal(err)
	}

	// build constructs the cycle's world twice over, identically: boot,
	// mk source tree, journal, then the committed set — files forced
	// durable by an explicit group-commit barrier before the faulty
	// workload starts. Identical construction makes one run's journal
	// replayable onto another run's world.
	var committedPaths []string
	committed := map[string]string{}
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/durable/f%d", i)
		committedPaths = append(committedPaths, path)
		committed[path] = fmt.Sprintf("cycle %d file %d\n", cycle, i)
	}
	build := func(withJournal bool) (*kernel.Kernel, *journal.MemStore) {
		k := agenttest.World(t)
		if err := apps.GenMakeTree(k, "/src", 2); err != nil {
			t.Fatal(err)
		}
		var st *journal.MemStore
		if withJournal {
			st = journal.NewMemStore(0)
			k.SetJournal(journal.NewWriter(st, 0))
			if err := k.MkdirAll("/durable", 0o755); err != nil {
				t.Fatal(err)
			}
			for _, path := range committedPaths {
				if err := k.WriteFile(path, []byte(committed[path]), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := k.Journal().Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return k, st
	}

	// run executes the workload under the seeded crash plan and returns
	// the frozen journal, or nil if the seed never fired.
	run := func() []byte {
		k, st := build(true)
		inj := fault.NewInjector(plan)
		inj.OnCrash(func(torn int) {
			st.Freeze(torn)
			k.Crash()
		})
		k.SetInjector(inj)
		if _, _, err := core.Run(k, nil, "/bin/sh",
			[]string{"sh", "-c", "cd /src; mk all"}, []string{"PATH=/bin"}); err != nil {
			t.Fatalf("cycle %d (%s): spawn: %v", cycle, planSpec, err)
		}
		if !inj.Crashed() {
			return nil
		}
		return st.Bytes()
	}

	j1, j2 := run(), run()
	if (j1 == nil) != (j2 == nil) {
		t.Fatalf("cycle %d (%s): one run crashed and the other did not", cycle, planSpec)
	}
	if j1 == nil {
		return false
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("cycle %d (%s): same seed produced different journals (%d vs %d bytes)",
			cycle, planSpec, len(j1), len(j2))
	}

	failCycle := func(k2 *kernel.Kernel, format string, args ...any) {
		t.Helper()
		if dir := os.Getenv("ARTIFACT_DIR"); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				os.WriteFile(filepath.Join(dir, fmt.Sprintf("soak-cycle%03d.jnl", cycle)), j1, 0o644)
				if k2 != nil {
					var snap bytes.Buffer
					if k2.Checkpoint(&snap) == nil {
						os.WriteFile(filepath.Join(dir, fmt.Sprintf("soak-cycle%03d.ckpt", cycle)), snap.Bytes(), 0o644)
					}
				}
				t.Logf("cycle %d: wrote failed-recovery artifacts in %s", cycle, dir)
			}
		}
		t.Fatalf("cycle %d (%s): %s", cycle, planSpec, fmt.Sprintf(format, args...))
	}

	// recover replays the journal onto an identically built fresh world
	// and checks the per-world invariants.
	recover := func() *kernel.Kernel {
		k2, _ := build(false)
		applied, _, _, err := k2.ReplayJournal(j1)
		if err != nil {
			failCycle(k2, "replay: %v", err)
		}
		if applied == 0 {
			failCycle(k2, "crashed journal replayed no records")
		}
		if bad := k2.FS().Check(); len(bad) != 0 {
			failCycle(k2, "recovered world fails fsck: %v", bad)
		}
		again, _, _, err := k2.ReplayJournal(j1)
		if err != nil {
			failCycle(k2, "second replay: %v", err)
		}
		if again != 0 {
			failCycle(k2, "replay did not converge: second pass applied %d records", again)
		}
		return k2
	}
	r1, r2 := recover(), recover()
	if r1.FS().StateHash() != r2.FS().StateHash() {
		failCycle(r1, "two replays of the same journal disagree on state")
	}
	for path, want := range committed {
		data, err := r1.ReadFile(path)
		if err != nil {
			failCycle(r1, "committed file %s lost: %v", path, err)
		}
		if string(data) != want {
			failCycle(r1, "committed file %s corrupted: %q != %q", path, data, want)
		}
	}
	return true
}
