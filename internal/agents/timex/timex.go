// Package timex implements the paper's timex agent (§3.3.1): it changes
// the apparent time of day seen by its clients by a fixed offset. It is
// the canonical minimal symbolic-layer agent — the agent-specific code is
// one overridden system call method plus an initialization routine.
package timex

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Agent shifts gettimeofday results by Offset seconds.
type Agent struct {
	core.Symbolic
	offset int32 // difference between real and funky time
}

// New creates a timex agent. The argument is the offset in seconds
// (e.g. "3600" makes it appear one hour later than it is).
func New(arg string) (*Agent, error) {
	off, err := strconv.ParseInt(arg, 10, 32)
	if err != nil {
		return nil, fmt.Errorf("timex: bad offset %q: %v", arg, err)
	}
	a := &Agent{offset: int32(off)}
	a.Bind(a)
	a.RegisterInterest(sys.SYS_gettimeofday)
	return a, nil
}

// Offset returns the configured offset in seconds.
func (a *Agent) Offset() int32 { return a.offset }

// SysGettimeofday performs the real call, then adjusts the seconds field
// of the result in the client's address space.
func (a *Agent) SysGettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	rv, err := a.Symbolic.SysGettimeofday(c, tv, tz)
	if err == sys.OK && tv != 0 {
		var b [4]byte
		if e := c.CopyIn(tv, b[:]); e != sys.OK {
			return rv, e
		}
		sec := binary.LittleEndian.Uint32(b[:])
		binary.LittleEndian.PutUint32(b[:], sec+uint32(a.offset))
		if e := c.CopyOut(tv, b[:]); e != sys.OK {
			return rv, e
		}
	}
	return rv, err
}
