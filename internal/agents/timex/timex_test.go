package timex_test

import (
	"strconv"
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/timex"
	"interpose/internal/core"
)

func dateSec(t *testing.T, out string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(strings.TrimSpace(out), 10, 64)
	if err != nil {
		t.Fatalf("date output %q: %v", out, err)
	}
	return v
}

func TestTimexOffsetsDate(t *testing.T) {
	k := agenttest.World(t)
	_, bareOut := agenttest.Run(t, k, nil, "date")
	bare := dateSec(t, bareOut)

	a, err := timex.New("86400")
	if err != nil {
		t.Fatal(err)
	}
	_, out := agenttest.Run(t, k, []core.Agent{a}, "date")
	shifted := dateSec(t, out)
	if d := shifted - bare; d < 86395 || d > 86405 {
		t.Fatalf("offset = %d, want ~86400", d)
	}
}

func TestTimexNegativeOffset(t *testing.T) {
	k := agenttest.World(t)
	_, bareOut := agenttest.Run(t, k, nil, "date")
	bare := dateSec(t, bareOut)

	a, err := timex.New("-3600")
	if err != nil {
		t.Fatal(err)
	}
	_, out := agenttest.Run(t, k, []core.Agent{a}, "date")
	if d := bare - dateSec(t, out); d < 3595 || d > 3605 {
		t.Fatalf("offset = %d, want ~3600", d)
	}
}

func TestTimexDoesNotAffectOtherCalls(t *testing.T) {
	k := agenttest.World(t)
	a, _ := timex.New("1000000")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "echo", "unaffected")
	if st != 0 || out != "unaffected\n" {
		t.Fatalf("%d %q", st, out)
	}
}

func TestTimexStacks(t *testing.T) {
	// Two timex agents compose: offsets add.
	k := agenttest.World(t)
	_, bareOut := agenttest.Run(t, k, nil, "date")
	bare := dateSec(t, bareOut)

	a1, _ := timex.New("1000")
	a2, _ := timex.New("2000")
	_, out := agenttest.Run(t, k, []core.Agent{a1, a2}, "date")
	if d := dateSec(t, out) - bare; d < 2995 || d > 3005 {
		t.Fatalf("stacked offset = %d, want ~3000", d)
	}
}

func TestTimexBadArg(t *testing.T) {
	if _, err := timex.New("not-a-number"); err == nil {
		t.Fatal("bad offset accepted")
	}
}
