// Package nullagent implements the paper's time_symbolic measurement agent
// (§3.5.1): it intercepts every system call, decodes each call and its
// arguments through the symbolic layer, and takes the default action —
// making the same call on the next-lower instance of the system interface.
// Running a program under it measures the minimum toolkit overhead per
// intercepted call (Table 3-5's "with agent" column).
package nullagent

import "interpose/internal/core"

// Agent intercepts and passes through everything.
type Agent struct {
	core.Symbolic
}

// New creates a null (pass-through) agent.
func New() *Agent {
	a := &Agent{}
	a.Bind(a)
	a.RegisterAll()
	a.RegisterAllSignals()
	return a
}
