package agents_test

import (
	"encoding/json"
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	spantrace "interpose/internal/trace"
)

// TestDevTraceFromGuest checks the span tracer's in-world window: an
// unmodified guest reads Chrome trace-event JSON from /dev/trace with
// plain read system calls, and retunes the tracer by writing to it.
func TestDevTraceFromGuest(t *testing.T) {
	k := agenttest.World(t)

	// Without a tracer installed the device reports tracing as off.
	st, out := agenttest.Run(t, k, nil, "cat", "/dev/trace")
	if st != 0 {
		t.Fatalf("cat /dev/trace: exit %d\n%s", st, out)
	}
	if !strings.Contains(out, "tracing: disabled") {
		t.Fatalf("expected disabled banner, got:\n%s", out)
	}

	tr := spantrace.NewTracer(spantrace.Config{Sample: 1})
	k.SetSpanTracer(tr)

	// Generate traffic, then read the document back from inside the world.
	if st, _ := agenttest.Run(t, k, nil, "echo", "hello"); st != 0 {
		t.Fatal("echo failed")
	}
	st, out = agenttest.Run(t, k, nil, "cat", "/dev/trace")
	if st != 0 {
		t.Fatalf("cat /dev/trace: exit %d\n%s", st, out)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("/dev/trace is not valid JSON: %v\n%.400s", err, out)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/dev/trace rendered no events")
	}

	// The device is a control surface: a guest write retunes sampling.
	if st, out := agenttest.Run(t, k, nil, "sh", "-c", "echo sample 0.25 > /dev/trace"); st != 0 {
		t.Fatalf("echo sample: exit %d\n%s", st, out)
	}
	if r := tr.SampleRate(); r < 0.24 || r > 0.26 {
		t.Fatalf("guest write set sample rate %v, want ~0.25", r)
	}

	// clear drops the buffered spans; with sampling off nothing new lands.
	tr.SetSample(0)
	if st, out := agenttest.Run(t, k, nil, "sh", "-c", "echo clear > /dev/trace"); st != 0 {
		t.Fatalf("echo clear: exit %d\n%s", st, out)
	}
	if spans := tr.Snapshot(); len(spans) != 0 {
		t.Fatalf("%d spans survived a guest clear at sample 0", len(spans))
	}
}

// TestTracePipelineCausality runs a shell pipeline under full sampling
// and checks the result is one connected trace: every process hangs off
// the shell by fork edges, the pipe read links to the writer, and the
// shell's wait links to its children's exits.
func TestTracePipelineCausality(t *testing.T) {
	k := agenttest.World(t)
	tr := spantrace.NewTracer(spantrace.Config{Sample: 1, Capacity: 1 << 18})
	k.SetSpanTracer(tr)

	st, out := agenttest.Run(t, k, nil, "sh", "-c", "cat /etc/passwd | grep root")
	if st != 0 || !strings.Contains(out, "root") {
		t.Fatalf("pipeline exited %d\n%s", st, out)
	}

	spans := tr.Snapshot()
	if _, dropped := tr.Stats(); dropped != 0 {
		t.Fatalf("%d spans dropped; raise Capacity", dropped)
	}
	byID := make(map[uint64]spantrace.Span, len(spans))
	traces := make(map[uint64]bool)
	pids := make(map[int32]bool)
	for _, sp := range spans {
		byID[sp.ID] = sp
		traces[sp.Trace] = true
		pids[sp.PID] = true
	}
	if len(traces) != 1 {
		t.Errorf("pipeline produced %d traces, want 1 connected trace", len(traces))
	}
	if len(pids) < 3 {
		t.Fatalf("pipeline spans cover %d pids, want sh + cat + grep", len(pids))
	}

	// Every non-root process's first span must causally chain to another
	// process (its forking parent).
	rootPID := spans[0].PID
	for pid := range pids {
		if pid == rootPID {
			continue
		}
		var first *spantrace.Span
		for i := range spans {
			if spans[i].PID == pid && spans[i].Layer == spantrace.LayerRoot {
				first = &spans[i]
				break
			}
		}
		if first == nil {
			continue
		}
		src, ok := byID[first.Parent]
		if !ok || src.PID == pid {
			t.Errorf("pid %d's first span (%s) has no cross-process causal parent", pid, first.Name)
		}
	}

	// The pipe edge: some read links to a cross-process write.
	foundPipe := false
	for _, sp := range spans {
		if sp.Num != sys.SYS_read || sp.Link == 0 {
			continue
		}
		if src, ok := byID[sp.Link]; ok && src.Num == sys.SYS_write && src.PID != sp.PID {
			foundPipe = true
			break
		}
	}
	if !foundPipe {
		t.Error("no pipe read→write causal link recorded")
	}

	// The wait edge: the shell's wait4 links to a child's exit span.
	foundWait := false
	for _, sp := range spans {
		if sp.Num != sys.SYS_wait4 || sp.Link == 0 {
			continue
		}
		if src, ok := byID[sp.Link]; ok && src.Num == sys.SYS_exit && src.PID != sp.PID {
			foundWait = true
			break
		}
	}
	if !foundWait {
		t.Error("no wait4→exit causal link recorded")
	}
}

// TestSuperviseStateGaugeFromGuest checks that breaker state — including
// the closed/open/half-open distinction — is visible in /dev/metrics.
func TestSuperviseStateGaugeFromGuest(t *testing.T) {
	k := agenttest.World(t)
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)
	k.SetSupervisor(kernel.NewSupervisor(k, kernel.SupervisorConfig{
		Mode: kernel.SuperviseStrict,
	}))

	panicky := kernel.NewEmuLayer(sys.HandlerFunc(
		func(c sys.Ctx, num int, a sys.Args) (sys.Retval, sys.Errno) {
			panic("tracing_test: injected agent bug")
		}))
	panicky.Name = "buggy"
	panicky.Register(sys.SYS_getpagesize)

	p := k.NewProc()
	if err := p.OpenConsole(); err != nil {
		t.Fatal(err)
	}
	p.PushEmulation(panicky)
	if _, err := p.Syscall(sys.SYS_getpagesize, sys.Args{}); err == sys.OK {
		t.Fatal("contained panic returned OK")
	}

	st, out := agenttest.Run(t, k, nil, "cat", "/dev/metrics")
	if st != 0 {
		t.Fatalf("cat /dev/metrics: exit %d\n%s", st, out)
	}
	for _, want := range []string{
		"supervise.layer.buggy.panics",
		"supervise.layer.buggy.state",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in /dev/metrics:\n%s", want, out)
		}
	}
}
