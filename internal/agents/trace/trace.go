// Package trace implements the paper's trace agent (§3.3.2): it traces the
// execution of client processes, printing each system call made and each
// signal received. Like the original, it is built on the symbolic system
// call layer, and — unlike the timex agent — its agent-specific code is
// proportional to the size of the entire system interface: a derived
// method per system call, each printing the call's name and typed
// arguments before taking the default action, and its result after.
//
// Trace output is produced by real write system calls on the client's
// standard error descriptor (two per traced call), which is exactly the
// overhead the paper measures for this agent.
package trace

import (
	"fmt"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Agent traces every system call and signal of its clients.
type Agent struct {
	core.Symbolic
	fd int // descriptor trace output is written to
}

// New creates a trace agent writing to the client's standard error.
func New() *Agent {
	a := &Agent{fd: 2}
	a.Bind(a)
	a.RegisterAll()
	a.RegisterAllSignals()
	return a
}

// pre prints the call banner before the call executes. Output is
// deliberately unbuffered across system calls so it is not lost if the
// process is killed.
func (a *Agent) pre(c sys.Ctx, format string, args ...any) {
	core.DownWriteString(c, a.fd, fmt.Sprintf("%d| ", c.PID())+fmt.Sprintf(format, args...)+" ...\n")
}

// post prints the call result.
func (a *Agent) post(c sys.Ctx, name string, rv sys.Retval, err sys.Errno) {
	var tail string
	if err != sys.OK {
		tail = fmt.Sprintf("-> -1 %s", err.Name())
	} else {
		tail = fmt.Sprintf("-> %d", int32(rv[0]))
	}
	core.DownWriteString(c, a.fd, fmt.Sprintf("%d| ... %s %s\n", c.PID(), name, tail))
}

// SignalUp prints each signal on its way to the application.
func (a *Agent) SignalUp(c sys.Ctx, sig, code int) int {
	core.DownWriteString(c, a.fd, fmt.Sprintf("%d| signal %s\n", c.PID(), sys.SignalName(sig)))
	return sig
}

// SysExit prints the call; exit does not return, so there is no result
// line — matching the original trace output.
func (a *Agent) SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno) {
	a.pre(c, "exit(%d)", status)
	return a.Symbolic.SysExit(c, status)
}

// SysFork traces fork.
func (a *Agent) SysFork(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "fork()")
	rv, err := a.Symbolic.SysFork(c)
	a.post(c, "fork", rv, err)
	return rv, err
}

// SysRead traces read.
func (a *Agent) SysRead(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	a.pre(c, "read(%d, 0x%x, %d)", fd, buf, cnt)
	rv, err := a.Symbolic.SysRead(c, fd, buf, cnt)
	a.post(c, "read", rv, err)
	return rv, err
}

// SysWrite traces write.
func (a *Agent) SysWrite(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	a.pre(c, "write(%d, 0x%x, %d)", fd, buf, cnt)
	rv, err := a.Symbolic.SysWrite(c, fd, buf, cnt)
	a.post(c, "write", rv, err)
	return rv, err
}

// SysOpen traces open.
func (a *Agent) SysOpen(c sys.Ctx, path string, flags int, mode uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "open(%q, %#x, %#o)", path, flags, mode)
	rv, err := a.Symbolic.SysOpen(c, path, flags, mode)
	a.post(c, "open", rv, err)
	return rv, err
}

// SysClose traces close.
func (a *Agent) SysClose(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	a.pre(c, "close(%d)", fd)
	rv, err := a.Symbolic.SysClose(c, fd)
	a.post(c, "close", rv, err)
	return rv, err
}

// SysWait4 traces wait4.
func (a *Agent) SysWait4(c sys.Ctx, pid int, statusAddr sys.Word, options int, ruAddr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "wait4(%d, 0x%x, %#x, 0x%x)", pid, statusAddr, options, ruAddr)
	rv, err := a.Symbolic.SysWait4(c, pid, statusAddr, options, ruAddr)
	a.post(c, "wait4", rv, err)
	return rv, err
}

// SysCreat traces creat.
func (a *Agent) SysCreat(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "creat(%q, %#o)", path, mode)
	rv, err := a.Symbolic.SysCreat(c, path, mode)
	a.post(c, "creat", rv, err)
	return rv, err
}

// SysLink traces link.
func (a *Agent) SysLink(c sys.Ctx, path, newPath string) (sys.Retval, sys.Errno) {
	a.pre(c, "link(%q, %q)", path, newPath)
	rv, err := a.Symbolic.SysLink(c, path, newPath)
	a.post(c, "link", rv, err)
	return rv, err
}

// SysUnlink traces unlink.
func (a *Agent) SysUnlink(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	a.pre(c, "unlink(%q)", path)
	rv, err := a.Symbolic.SysUnlink(c, path)
	a.post(c, "unlink", rv, err)
	return rv, err
}

// SysChdir traces chdir.
func (a *Agent) SysChdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	a.pre(c, "chdir(%q)", path)
	rv, err := a.Symbolic.SysChdir(c, path)
	a.post(c, "chdir", rv, err)
	return rv, err
}

// SysFchdir traces fchdir.
func (a *Agent) SysFchdir(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	a.pre(c, "fchdir(%d)", fd)
	rv, err := a.Symbolic.SysFchdir(c, fd)
	a.post(c, "fchdir", rv, err)
	return rv, err
}

// SysMknod traces mknod.
func (a *Agent) SysMknod(c sys.Ctx, path string, mode uint32, dev sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "mknod(%q, %#o, %#x)", path, mode, dev)
	rv, err := a.Symbolic.SysMknod(c, path, mode, dev)
	a.post(c, "mknod", rv, err)
	return rv, err
}

// SysChmod traces chmod.
func (a *Agent) SysChmod(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "chmod(%q, %#o)", path, mode)
	rv, err := a.Symbolic.SysChmod(c, path, mode)
	a.post(c, "chmod", rv, err)
	return rv, err
}

// SysChown traces chown.
func (a *Agent) SysChown(c sys.Ctx, path string, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "chown(%q, %d, %d)", path, uid, gid)
	rv, err := a.Symbolic.SysChown(c, path, uid, gid)
	a.post(c, "chown", rv, err)
	return rv, err
}

// SysBrk traces brk.
func (a *Agent) SysBrk(c sys.Ctx, addr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "brk(0x%x)", addr)
	rv, err := a.Symbolic.SysBrk(c, addr)
	a.post(c, "brk", rv, err)
	return rv, err
}

// SysLseek traces lseek.
func (a *Agent) SysLseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	a.pre(c, "lseek(%d, %d, %d)", fd, off, whence)
	rv, err := a.Symbolic.SysLseek(c, fd, off, whence)
	a.post(c, "lseek", rv, err)
	return rv, err
}

// SysGetpid traces getpid.
func (a *Agent) SysGetpid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getpid()")
	rv, err := a.Symbolic.SysGetpid(c)
	a.post(c, "getpid", rv, err)
	return rv, err
}

// SysSetuid traces setuid.
func (a *Agent) SysSetuid(c sys.Ctx, uid sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "setuid(%d)", uid)
	rv, err := a.Symbolic.SysSetuid(c, uid)
	a.post(c, "setuid", rv, err)
	return rv, err
}

// SysGetuid traces getuid.
func (a *Agent) SysGetuid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getuid()")
	rv, err := a.Symbolic.SysGetuid(c)
	a.post(c, "getuid", rv, err)
	return rv, err
}

// SysGeteuid traces geteuid.
func (a *Agent) SysGeteuid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "geteuid()")
	rv, err := a.Symbolic.SysGeteuid(c)
	a.post(c, "geteuid", rv, err)
	return rv, err
}

// SysAccess traces access.
func (a *Agent) SysAccess(c sys.Ctx, path string, mode int) (sys.Retval, sys.Errno) {
	a.pre(c, "access(%q, %d)", path, mode)
	rv, err := a.Symbolic.SysAccess(c, path, mode)
	a.post(c, "access", rv, err)
	return rv, err
}

// SysSync traces sync.
func (a *Agent) SysSync(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "sync()")
	rv, err := a.Symbolic.SysSync(c)
	a.post(c, "sync", rv, err)
	return rv, err
}

// SysKill traces kill.
func (a *Agent) SysKill(c sys.Ctx, pid, sig int) (sys.Retval, sys.Errno) {
	a.pre(c, "kill(%d, %s)", pid, sys.SignalName(sig))
	rv, err := a.Symbolic.SysKill(c, pid, sig)
	a.post(c, "kill", rv, err)
	return rv, err
}

// SysStat traces stat.
func (a *Agent) SysStat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "stat(%q, 0x%x)", path, statAddr)
	rv, err := a.Symbolic.SysStat(c, path, statAddr)
	a.post(c, "stat", rv, err)
	return rv, err
}

// SysGetppid traces getppid.
func (a *Agent) SysGetppid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getppid()")
	rv, err := a.Symbolic.SysGetppid(c)
	a.post(c, "getppid", rv, err)
	return rv, err
}

// SysLstat traces lstat.
func (a *Agent) SysLstat(c sys.Ctx, path string, statAddr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "lstat(%q, 0x%x)", path, statAddr)
	rv, err := a.Symbolic.SysLstat(c, path, statAddr)
	a.post(c, "lstat", rv, err)
	return rv, err
}

// SysDup traces dup.
func (a *Agent) SysDup(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	a.pre(c, "dup(%d)", fd)
	rv, err := a.Symbolic.SysDup(c, fd)
	a.post(c, "dup", rv, err)
	return rv, err
}

// SysPipe traces pipe, showing both returned descriptors.
func (a *Agent) SysPipe(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "pipe()")
	rv, err := a.Symbolic.SysPipe(c)
	if err == sys.OK {
		core.DownWriteString(c, a.fd, fmt.Sprintf("%d| ... pipe -> [%d, %d]\n", c.PID(), rv[0], rv[1]))
	} else {
		a.post(c, "pipe", rv, err)
	}
	return rv, err
}

// SysGetegid traces getegid.
func (a *Agent) SysGetegid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getegid()")
	rv, err := a.Symbolic.SysGetegid(c)
	a.post(c, "getegid", rv, err)
	return rv, err
}

// SysGetgid traces getgid.
func (a *Agent) SysGetgid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getgid()")
	rv, err := a.Symbolic.SysGetgid(c)
	a.post(c, "getgid", rv, err)
	return rv, err
}

// SysIoctl traces ioctl.
func (a *Agent) SysIoctl(c sys.Ctx, fd int, req, arg sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "ioctl(%d, 0x%x, 0x%x)", fd, req, arg)
	rv, err := a.Symbolic.SysIoctl(c, fd, req, arg)
	a.post(c, "ioctl", rv, err)
	return rv, err
}

// SysSymlink traces symlink.
func (a *Agent) SysSymlink(c sys.Ctx, target, linkPath string) (sys.Retval, sys.Errno) {
	a.pre(c, "symlink(%q, %q)", target, linkPath)
	rv, err := a.Symbolic.SysSymlink(c, target, linkPath)
	a.post(c, "symlink", rv, err)
	return rv, err
}

// SysReadlink traces readlink.
func (a *Agent) SysReadlink(c sys.Ctx, path string, buf sys.Word, n int) (sys.Retval, sys.Errno) {
	a.pre(c, "readlink(%q, 0x%x, %d)", path, buf, n)
	rv, err := a.Symbolic.SysReadlink(c, path, buf, n)
	a.post(c, "readlink", rv, err)
	return rv, err
}

// SysExecve traces execve; on success the call does not return.
func (a *Agent) SysExecve(c sys.Ctx, path string, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	argv, _ := core.ReadWordVec(c, argvAddr)
	a.pre(c, "execve(%q, %q, 0x%x)", path, argv, envpAddr)
	rv, err := a.Symbolic.SysExecve(c, path, argvAddr, envpAddr)
	a.post(c, "execve", rv, err)
	return rv, err
}

// SysUmask traces umask.
func (a *Agent) SysUmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "umask(%#o)", mask)
	rv, err := a.Symbolic.SysUmask(c, mask)
	a.post(c, "umask", rv, err)
	return rv, err
}

// SysChroot traces chroot.
func (a *Agent) SysChroot(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	a.pre(c, "chroot(%q)", path)
	rv, err := a.Symbolic.SysChroot(c, path)
	a.post(c, "chroot", rv, err)
	return rv, err
}

// SysFstat traces fstat.
func (a *Agent) SysFstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "fstat(%d, 0x%x)", fd, statAddr)
	rv, err := a.Symbolic.SysFstat(c, fd, statAddr)
	a.post(c, "fstat", rv, err)
	return rv, err
}

// SysGetpagesize traces getpagesize.
func (a *Agent) SysGetpagesize(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getpagesize()")
	rv, err := a.Symbolic.SysGetpagesize(c)
	a.post(c, "getpagesize", rv, err)
	return rv, err
}

// SysGetgroups traces getgroups.
func (a *Agent) SysGetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "getgroups(%d, 0x%x)", n, addr)
	rv, err := a.Symbolic.SysGetgroups(c, n, addr)
	a.post(c, "getgroups", rv, err)
	return rv, err
}

// SysSetgroups traces setgroups.
func (a *Agent) SysSetgroups(c sys.Ctx, n int, addr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "setgroups(%d, 0x%x)", n, addr)
	rv, err := a.Symbolic.SysSetgroups(c, n, addr)
	a.post(c, "setgroups", rv, err)
	return rv, err
}

// SysGetpgrp traces getpgrp.
func (a *Agent) SysGetpgrp(c sys.Ctx, pid int) (sys.Retval, sys.Errno) {
	a.pre(c, "getpgrp(%d)", pid)
	rv, err := a.Symbolic.SysGetpgrp(c, pid)
	a.post(c, "getpgrp", rv, err)
	return rv, err
}

// SysSetpgrp traces setpgrp.
func (a *Agent) SysSetpgrp(c sys.Ctx, pid, pgrp int) (sys.Retval, sys.Errno) {
	a.pre(c, "setpgrp(%d, %d)", pid, pgrp)
	rv, err := a.Symbolic.SysSetpgrp(c, pid, pgrp)
	a.post(c, "setpgrp", rv, err)
	return rv, err
}

// SysGethostname traces gethostname.
func (a *Agent) SysGethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno) {
	a.pre(c, "gethostname(0x%x, %d)", addr, n)
	rv, err := a.Symbolic.SysGethostname(c, addr, n)
	a.post(c, "gethostname", rv, err)
	return rv, err
}

// SysSethostname traces sethostname.
func (a *Agent) SysSethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno) {
	a.pre(c, "sethostname(0x%x, %d)", addr, n)
	rv, err := a.Symbolic.SysSethostname(c, addr, n)
	a.post(c, "sethostname", rv, err)
	return rv, err
}

// SysGetdtablesize traces getdtablesize.
func (a *Agent) SysGetdtablesize(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "getdtablesize()")
	rv, err := a.Symbolic.SysGetdtablesize(c)
	a.post(c, "getdtablesize", rv, err)
	return rv, err
}

// SysDup2 traces dup2.
func (a *Agent) SysDup2(c sys.Ctx, oldfd, newfd int) (sys.Retval, sys.Errno) {
	a.pre(c, "dup2(%d, %d)", oldfd, newfd)
	rv, err := a.Symbolic.SysDup2(c, oldfd, newfd)
	a.post(c, "dup2", rv, err)
	return rv, err
}

// SysFcntl traces fcntl.
func (a *Agent) SysFcntl(c sys.Ctx, fd, cmd int, arg sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "fcntl(%d, %d, 0x%x)", fd, cmd, arg)
	rv, err := a.Symbolic.SysFcntl(c, fd, cmd, arg)
	a.post(c, "fcntl", rv, err)
	return rv, err
}

// SysFsync traces fsync.
func (a *Agent) SysFsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	a.pre(c, "fsync(%d)", fd)
	rv, err := a.Symbolic.SysFsync(c, fd)
	a.post(c, "fsync", rv, err)
	return rv, err
}

// SysSigvec traces sigvec.
func (a *Agent) SysSigvec(c sys.Ctx, sig int, nsv, osv sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "sigvec(%s, 0x%x, 0x%x)", sys.SignalName(sig), nsv, osv)
	rv, err := a.Symbolic.SysSigvec(c, sig, nsv, osv)
	a.post(c, "sigvec", rv, err)
	return rv, err
}

// SysSigblock traces sigblock.
func (a *Agent) SysSigblock(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "sigblock(%#x)", mask)
	rv, err := a.Symbolic.SysSigblock(c, mask)
	a.post(c, "sigblock", rv, err)
	return rv, err
}

// SysSigsetmask traces sigsetmask.
func (a *Agent) SysSigsetmask(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "sigsetmask(%#x)", mask)
	rv, err := a.Symbolic.SysSigsetmask(c, mask)
	a.post(c, "sigsetmask", rv, err)
	return rv, err
}

// SysSigpause traces sigpause.
func (a *Agent) SysSigpause(c sys.Ctx, mask uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "sigpause(%#x)", mask)
	rv, err := a.Symbolic.SysSigpause(c, mask)
	a.post(c, "sigpause", rv, err)
	return rv, err
}

// SysGettimeofday traces gettimeofday.
func (a *Agent) SysGettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "gettimeofday(0x%x, 0x%x)", tv, tz)
	rv, err := a.Symbolic.SysGettimeofday(c, tv, tz)
	a.post(c, "gettimeofday", rv, err)
	return rv, err
}

// SysGetrusage traces getrusage.
func (a *Agent) SysGetrusage(c sys.Ctx, who, ru sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "getrusage(%d, 0x%x)", int32(who), ru)
	rv, err := a.Symbolic.SysGetrusage(c, who, ru)
	a.post(c, "getrusage", rv, err)
	return rv, err
}

// SysSettimeofday traces settimeofday.
func (a *Agent) SysSettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "settimeofday(0x%x, 0x%x)", tv, tz)
	rv, err := a.Symbolic.SysSettimeofday(c, tv, tz)
	a.post(c, "settimeofday", rv, err)
	return rv, err
}

// SysRename traces rename.
func (a *Agent) SysRename(c sys.Ctx, from, to string) (sys.Retval, sys.Errno) {
	a.pre(c, "rename(%q, %q)", from, to)
	rv, err := a.Symbolic.SysRename(c, from, to)
	a.post(c, "rename", rv, err)
	return rv, err
}

// SysTruncate traces truncate.
func (a *Agent) SysTruncate(c sys.Ctx, path string, length int32) (sys.Retval, sys.Errno) {
	a.pre(c, "truncate(%q, %d)", path, length)
	rv, err := a.Symbolic.SysTruncate(c, path, length)
	a.post(c, "truncate", rv, err)
	return rv, err
}

// SysFtruncate traces ftruncate.
func (a *Agent) SysFtruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	a.pre(c, "ftruncate(%d, %d)", fd, length)
	rv, err := a.Symbolic.SysFtruncate(c, fd, length)
	a.post(c, "ftruncate", rv, err)
	return rv, err
}

// SysFlock traces flock.
func (a *Agent) SysFlock(c sys.Ctx, fd, op int) (sys.Retval, sys.Errno) {
	a.pre(c, "flock(%d, %d)", fd, op)
	rv, err := a.Symbolic.SysFlock(c, fd, op)
	a.post(c, "flock", rv, err)
	return rv, err
}

// SysMkdir traces mkdir.
func (a *Agent) SysMkdir(c sys.Ctx, path string, mode uint32) (sys.Retval, sys.Errno) {
	a.pre(c, "mkdir(%q, %#o)", path, mode)
	rv, err := a.Symbolic.SysMkdir(c, path, mode)
	a.post(c, "mkdir", rv, err)
	return rv, err
}

// SysRmdir traces rmdir.
func (a *Agent) SysRmdir(c sys.Ctx, path string) (sys.Retval, sys.Errno) {
	a.pre(c, "rmdir(%q)", path)
	rv, err := a.Symbolic.SysRmdir(c, path)
	a.post(c, "rmdir", rv, err)
	return rv, err
}

// SysUtimes traces utimes.
func (a *Agent) SysUtimes(c sys.Ctx, path string, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "utimes(%q, 0x%x)", path, tvAddr)
	rv, err := a.Symbolic.SysUtimes(c, path, tvAddr)
	a.post(c, "utimes", rv, err)
	return rv, err
}

// SysSetsid traces setsid.
func (a *Agent) SysSetsid(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.pre(c, "setsid()")
	rv, err := a.Symbolic.SysSetsid(c)
	a.post(c, "setsid", rv, err)
	return rv, err
}

// SysGetrlimit traces getrlimit.
func (a *Agent) SysGetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "getrlimit(%d, 0x%x)", res, addr)
	rv, err := a.Symbolic.SysGetrlimit(c, res, addr)
	a.post(c, "getrlimit", rv, err)
	return rv, err
}

// SysSetrlimit traces setrlimit.
func (a *Agent) SysSetrlimit(c sys.Ctx, res int, addr sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "setrlimit(%d, 0x%x)", res, addr)
	rv, err := a.Symbolic.SysSetrlimit(c, res, addr)
	a.post(c, "setrlimit", rv, err)
	return rv, err
}

// SysGetdirentries traces getdirentries.
func (a *Agent) SysGetdirentries(c sys.Ctx, fd int, buf sys.Word, nbytes int, basep sys.Word) (sys.Retval, sys.Errno) {
	a.pre(c, "getdirentries(%d, 0x%x, %d, 0x%x)", fd, buf, nbytes, basep)
	rv, err := a.Symbolic.SysGetdirentries(c, fd, buf, nbytes, basep)
	a.post(c, "getdirentries", rv, err)
	return rv, err
}

// UnknownSyscall traces calls outside the implemented interface.
func (a *Agent) UnknownSyscall(c sys.Ctx, num int, aa sys.Args) (sys.Retval, sys.Errno) {
	a.pre(c, "%s(0x%x, 0x%x, 0x%x)", sys.SyscallName(num), aa[0], aa[1], aa[2])
	rv, err := a.Symbolic.UnknownSyscall(c, num, aa)
	a.post(c, sys.SyscallName(num), rv, err)
	return rv, err
}
