package trace_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/trace"
	"interpose/internal/core"
)

func TestTraceRecordsCallsAndResults(t *testing.T) {
	k := agenttest.World(t)
	if err := k.WriteFile("/tmp/t.txt", []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, out := agenttest.Run(t, k, []core.Agent{trace.New()}, "cat", "/tmp/t.txt")
	if st != 0 {
		t.Fatalf("cat: %d", st)
	}
	for _, want := range []string{
		`open("/tmp/t.txt"`, "... open -> 3",
		"read(3,", "... read -> 2",
		"close(3)", "exit(0)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q in:\n%s", want, out)
		}
	}
	// The traced program's own output is interleaved on the console too.
	if !strings.Contains(out, "x\n") {
		t.Fatalf("program output lost:\n%s", out)
	}
}

func TestTraceShowsErrors(t *testing.T) {
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, []core.Agent{trace.New()}, "cat", "/nonexistent")
	if st == 0 {
		t.Fatal("cat of missing file succeeded")
	}
	if !strings.Contains(out, "-> -1 ENOENT") {
		t.Fatalf("errno not traced:\n%s", out)
	}
}

func TestTraceFollowsChildren(t *testing.T) {
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, []core.Agent{trace.New()}, "sh", "-c", "echo hi")
	if st != 0 {
		t.Fatalf("sh: %d", st)
	}
	if !strings.Contains(out, "fork()") || !strings.Contains(out, "execve(") {
		t.Fatalf("fork/exec not traced:\n%s", out)
	}
	// Child pid appears as a distinct prefix.
	if !strings.Contains(out, "2| ") {
		t.Fatalf("child calls not traced:\n%s", out)
	}
}

func TestTraceSignals(t *testing.T) {
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, []core.Agent{trace.New()}, "sigplay")
	if st != 0 {
		t.Fatalf("sigplay: %d", st)
	}
	if !strings.Contains(out, "signal SIGUSR1") {
		t.Fatalf("signal not traced:\n%s", out)
	}
}
