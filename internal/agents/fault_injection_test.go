package agents_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/crypt"
	"interpose/internal/agents/faulty"
	"interpose/internal/agents/txn"
	"interpose/internal/agents/union"
	"interpose/internal/agents/zip"
	"interpose/internal/core"
	"interpose/internal/fault"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// mustFaulty builds a fault agent, failing the test on a bad plan.
func mustFaulty(t *testing.T, spec string) *faulty.Agent {
	t.Helper()
	a, err := faulty.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestErrnoPropagationThroughAgents is the failure-transparency claim: an
// errno injected below an emulation layer surfaces to the application
// unchanged, whatever data transformation the layer performs. The faulty
// agent is first in each stack, so it sits closest to the kernel.
func TestErrnoPropagationThroughAgents(t *testing.T) {
	cases := []struct {
		name  string
		plan  string // injected below the stack
		above func(t *testing.T, k *kernel.Kernel) []core.Agent
		argv  []string
		want  string // errno text expected in the guest's error output
	}{
		{
			name:  "bare/open-EIO",
			plan:  "open:/data=EIO",
			above: func(t *testing.T, k *kernel.Kernel) []core.Agent { return nil },
			argv:  []string{"cat", "/data/f"},
			want:  sys.EIO.Error(),
		},
		{
			name: "zip/open-EIO",
			plan: "open:/arch=EIO",
			above: func(t *testing.T, k *kernel.Kernel) []core.Agent {
				a, err := zip.New("/arch")
				if err != nil {
					t.Fatal(err)
				}
				return []core.Agent{a}
			},
			argv: []string{"cat", "/arch/f"},
			want: sys.EIO.Error(),
		},
		{
			name: "crypt/read-EIO",
			plan: "read=EIO",
			above: func(t *testing.T, k *kernel.Kernel) []core.Agent {
				a, err := crypt.New("/sec", "key")
				if err != nil {
					t.Fatal(err)
				}
				return []core.Agent{a}
			},
			argv: []string{"cat", "/sec/f"},
			want: sys.EIO.Error(),
		},
		{
			name: "union/open-ENOSPC",
			plan: "open=ENOSPC",
			above: func(t *testing.T, k *kernel.Kernel) []core.Agent {
				a, err := union.New("/view=/data:/tmp")
				if err != nil {
					t.Fatal(err)
				}
				return []core.Agent{a}
			},
			argv: []string{"cat", "/view/f"},
			want: sys.ENOSPC.Error(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := agenttest.World(t)
			k.MkdirAll("/data", 0o777)
			k.MkdirAll("/arch", 0o777)
			k.MkdirAll("/sec", 0o777)
			k.WriteFile("/data/f", []byte("plain\n"), 0o644)
			above := tc.above(t, k)

			// Control: the stack works without the fault below it.
			if len(above) > 0 {
				st, out := agenttest.Run(t, k, above, "sh", "-c",
					"echo seeded > "+tc.argv[1])
				if st != 0 {
					t.Fatalf("seeding write failed: %d\n%s", st, out)
				}
				st, out = agenttest.Run(t, k, above, tc.argv[0], tc.argv[1])
				if st != 0 || !strings.Contains(out, "seeded") {
					t.Fatalf("control read failed: %d %q", st, out)
				}
			}

			stack := append([]core.Agent{mustFaulty(t, tc.plan)}, above...)
			st, out := agenttest.Run(t, k, stack, tc.argv...)
			if st == 0 {
				t.Fatalf("fault swallowed: exit 0\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("errno rewritten on the way up: want %q in:\n%s", tc.want, out)
			}
		})
	}
}

// TestZipSurvivesWriteBackFaults checks the compression agent's
// failure-atomicity: when every write below it fails, the stored file
// keeps its previous, fully consistent content — the new data is lost but
// nothing is corrupted, because write-back goes to a temporary and only an
// atomic rename replaces the original.
func TestZipSurvivesWriteBackFaults(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/arch", 0o777)
	za, err := zip.New("/arch")
	if err != nil {
		t.Fatal(err)
	}
	if st, out := agenttest.Run(t, k, []core.Agent{za}, "sh", "-c",
		"echo original > /arch/f"); st != 0 {
		t.Fatalf("seed write: %d\n%s", st, out)
	}
	before, err2 := k.ReadFile("/arch/f")
	if err2 != nil {
		t.Fatal(err2)
	}

	// Append under an injector that fails every write below the zip agent:
	// buffering succeeds in memory, write-back cannot reach the disk.
	stack := []core.Agent{mustFaulty(t, "write=EIO"), za}
	core.Run(k, stack, "/bin/sh", []string{"sh", "-c", "echo more >> /arch/f"},
		[]string{"PATH=/bin"})

	after, err2 := k.ReadFile("/arch/f")
	if err2 != nil {
		t.Fatalf("stored file gone after failed write-back: %v", err2)
	}
	if string(after) != string(before) {
		t.Fatalf("stored file changed by a failed write-back:\nbefore %q\nafter  %q", before, after)
	}
	if plain, ok := zip.Decompress(after); !ok || string(plain) != "original\n" {
		t.Fatalf("stored file corrupted: %q", after)
	}
	// The temporary must not linger.
	if _, err := k.ReadFile("/arch/f.zip~"); err == nil {
		t.Fatal("write-back temporary left behind")
	}
}

// TestTxnAbortsCleanlyOnCommitFault checks transactional atomicity under
// injected commit failure: when commit's copy into the real tree hits
// ENOSPC, the transaction rolls back and the pre-transaction state is
// intact — not a half-committed mix.
func TestTxnAbortsCleanlyOnCommitFault(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/data", 0o777)
	k.MkdirAll("/shadow", 0o777)
	k.WriteFile("/data/f", []byte("old\n"), 0o644)

	ta, err := txn.New("/shadow", true)
	if err != nil {
		t.Fatal(err)
	}
	// The guest's own writes are redirected into /shadow and never touch
	// /data; only commit's copy-back opens /data files for writing, so an
	// open fault on /data fires exactly at commit time.
	stack := []core.Agent{mustFaulty(t, "open:/data=ENOSPC"), ta}
	st, out, err2 := core.Run(k, stack, "/bin/sh",
		[]string{"sh", "-c", "echo new > /data/f"}, []string{"PATH=/bin"})
	if err2 != nil {
		t.Fatal(err2)
	}
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("guest failed before commit: %#x\n%s", st, out)
	}
	if got := ta.CommitErr(); got != sys.ENOSPC {
		t.Fatalf("CommitErr = %v, want ENOSPC", got)
	}
	data, err2 := k.ReadFile("/data/f")
	if err2 != nil {
		t.Fatalf("pre-transaction file missing after aborted commit: %v", err2)
	}
	if string(data) != "old\n" {
		t.Fatalf("aborted commit leaked state: /data/f = %q, want %q", data, "old\n")
	}

	// Control: without the fault the same transaction commits.
	k2 := agenttest.World(t)
	k2.MkdirAll("/data", 0o777)
	k2.MkdirAll("/shadow", 0o777)
	k2.WriteFile("/data/f", []byte("old\n"), 0o644)
	ta2, err := txn.New("/shadow", true)
	if err != nil {
		t.Fatal(err)
	}
	if st, out := agenttest.Run(t, k2, []core.Agent{ta2}, "sh", "-c",
		"echo new > /data/f"); st != 0 {
		t.Fatalf("control txn failed: %d\n%s", st, out)
	}
	if ta2.CommitErr() != sys.OK {
		t.Fatalf("control commit errored: %v", ta2.CommitErr())
	}
	if data, _ := k2.ReadFile("/data/f"); string(data) != "new\n" {
		t.Fatalf("control commit did not apply: %q", data)
	}
}

// TestFaultReplayDeterministic is the replay guarantee: the same seed and
// plan over the same workload in a fresh world produces a byte-identical
// fault log, run to run.
func TestFaultReplayDeterministic(t *testing.T) {
	const plan = "seed=42,read=EINTR@0.3,write=short:3@0.4,open=EIO@0.1"
	script := "echo hello > /t1; cat /t1; echo more >> /t1; cat /t1; wc /t1"

	run := func() []string {
		k := agenttest.World(t)
		fa := mustFaulty(t, plan)
		_, _, err := core.Run(k, []core.Agent{fa}, "/bin/sh",
			[]string{"sh", "-c", script}, []string{"PATH=/bin"})
		if err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, rec := range fa.Injector().Log() {
			lines = append(lines, rec.String())
		}
		return lines
	}

	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("plan injected nothing; replay claim untested")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("fault logs diverged:\nrun1:\n%s\nrun2:\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestKernelInjectorBelowAgents exercises the kernel-side hook: a fault
// plan installed with SetInjector fires below every agent layer, counts
// in telemetry, and shows in /dev/metrics.
func TestKernelInjectorBelowAgents(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/data", 0o777)
	k.WriteFile("/data/f", []byte("plain\n"), 0o644)
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)

	plan, err := fault.ParsePlan("open:/data=EIO")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	k.SetInjector(inj)

	st, out := agenttest.Run(t, k, nil, "cat", "/data/f")
	if st == 0 || !strings.Contains(out, sys.EIO.Error()) {
		t.Fatalf("kernel injector inert: %d %q", st, out)
	}
	if inj.Count() == 0 {
		t.Fatal("no injection recorded")
	}
	if reg.Counter("fault.injected").Load() == 0 {
		t.Fatal("telemetry did not count the injection")
	}

	// The counter is visible in-world through /dev/metrics.
	st, out = agenttest.Run(t, k, nil, "cat", "/dev/metrics")
	if st != 0 || !strings.Contains(out, "fault.injected") {
		t.Fatalf("fault counters missing from /dev/metrics:\n%s", out)
	}

	// Uninstalling restores fault-free operation.
	k.SetInjector(nil)
	if st, out := agenttest.Run(t, k, nil, "cat", "/data/f"); st != 0 || !strings.Contains(out, "plain") {
		t.Fatalf("after SetInjector(nil): %d %q", st, out)
	}
}

// TestChaosSoakMakeWorkload is the chaos soak: the full compiler workload
// runs under aggressive-but-sublethal fault plans with several fixed
// seeds. The build is allowed to fail — faults are real — but the system
// must degrade gracefully: no wedged processes (the watchdog enforces
// forward progress) and no toolkit panics surfacing on the console.
func TestChaosSoakMakeWorkload(t *testing.T) {
	defer agenttest.Watchdog(t, 3*time.Minute)()
	injected := 0
	for _, seed := range []int{1, 2, 3, 5, 8} {
		plan := fmt.Sprintf(
			"seed=%d,read=EINTR@0.05,write=EIO@0.01,write=short:7@0.1,open=ENOSPC@0.005",
			seed)
		k := buildWorld(t, 4)
		fa := mustFaulty(t, plan)
		// A failed build is retried: a fatal fault aborts make early, and
		// rerunning it both lengthens the soak and checks the world is
		// still coherent enough to pick the build back up.
		for round := 0; round < 4; round++ {
			st, out, err := core.Run(k, []core.Agent{fa}, "/bin/sh",
				[]string{"sh", "-c", "cd /src; mk all"}, []string{"PATH=/bin"})
			if err != nil {
				t.Fatalf("seed %d round %d: spawn: %v", seed, round, err)
			}
			if strings.Contains(out, "panic in pid") {
				t.Fatalf("seed %d round %d: toolkit panic under faults:\n%s", seed, round, out)
			}
			if round == 3 {
				t.Logf("seed %d: final status %#x, %d faults injected", seed, st, fa.Injector().Count())
			}
		}
		injected += fa.Injector().Count()
	}
	if injected == 0 {
		t.Fatal("soak injected no faults; plans too weak to test anything")
	}
}
