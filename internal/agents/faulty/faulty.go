// Package faulty implements a deterministic fault injection agent — the
// paper-faithful surface of internal/fault. It is a numeric-layer agent
// any stack can compose: installed below another agent it shakes that
// agent's downcalls; installed above, the client's calls. Every decision
// is a pure function of the plan seed and the caller's own call sequence,
// so a run replays exactly.
//
//	agentrun -a 'faulty=seed=7,write=EIO@0.05' -a zip=/z -- /bin/prog
//
// The panic and hang rule kinds make the agent itself misbehave —
// panicking or blocking inside its upcall — simulating buggy agent code
// for the kernel's supervisor (agentrun -supervise) to contain, with
// the same deterministic replay as every other rule.
package faulty

import (
	"interpose/internal/core"
	"interpose/internal/fault"
	"interpose/internal/sys"
)

// Agent injects faults from a parsed plan.
type Agent struct {
	core.Numeric
	inj *fault.Injector
}

// New parses a fault plan specification and builds the agent. The agent
// registers interest only in the calls its rules can match.
func New(spec string) (*Agent, error) {
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	a := &Agent{inj: fault.NewInjector(plan)}
	for _, r := range plan.Rules {
		if r.Call >= 0 {
			a.RegisterInterest(r.Call)
			continue
		}
		// Path-only rule: interested in every pathname call.
		for _, num := range fault.PathSyscalls() {
			a.RegisterInterest(num)
		}
	}
	return a, nil
}

// AgentName labels the layer in telemetry attribution.
func (a *Agent) AgentName() string { return "faulty" }

// Injector exposes the underlying injector (fault log, summary) to
// loaders and tests.
func (a *Agent) Injector() *fault.Injector { return a.inj }

// Syscall consults the plan, then passes unharmed (or rewritten) calls to
// the next-lower instance of the system interface.
func (a *Agent) Syscall(c sys.Ctx, num int, args sys.Args) (sys.Retval, sys.Errno) {
	out, rv, err, handled := a.inj.Inject(c, num, args)
	if handled {
		return rv, err
	}
	return core.Down(c, num, out)
}
