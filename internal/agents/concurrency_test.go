package agents_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/trace"
	"interpose/internal/core"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// These tests exercise the kernel's fine-grained locking with genuinely
// concurrent guest processes: several core.Run calls in flight at once,
// each a full fork/exec/open/stat workload against shared directories.
// Under `go test -race` they are the primary evidence that splitting the
// big kernel lock did not trade away safety.

// TestVFSStressParallel churns the filesystem from several concurrent
// guest shells — create, hard-link, cross-directory rename, copy, remove
// — and checks the live-inode count returns exactly to its starting
// value, i.e. no inode was leaked or double-freed by racing namespace
// operations.
func TestVFSStressParallel(t *testing.T) {
	defer agenttest.Watchdog(t, 2*time.Minute)()
	k := agenttest.World(t)
	if err := k.MkdirAll("/stress/shared", 0o755); err != nil {
		t.Fatal(err)
	}
	before := k.FS().NumInodes()

	const workers = 4
	rounds := 8
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Alternate bare kernel and an interposed stack so agent
			// layers run concurrently with direct syscall traffic.
			var stack []core.Agent
			if w%2 == 1 {
				stack = []core.Agent{nullagent.New()}
			}
			for r := 0; r < rounds; r++ {
				dir := fmt.Sprintf("/stress/w%d", w)
				name := fmt.Sprintf("f%d_%d", w, r)
				script := fmt.Sprintf(
					"mkdir %[1]s && echo hello > %[1]s/%[2]s && "+
						"ln %[1]s/%[2]s %[1]s/%[2]s.ln && "+
						"mv %[1]s/%[2]s /stress/shared/%[2]s && "+
						"cp /stress/shared/%[2]s %[1]s/copy && "+
						"rm /stress/shared/%[2]s && rm -r %[1]s",
					dir, name)
				st, out, err := core.Run(k, stack, "/bin/sh",
					[]string{"sh", "-c", script}, []string{"PATH=/bin"})
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
					errs <- fmt.Errorf("worker %d round %d: status %#x\n%s", w, r, st, out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if after := k.FS().NumInodes(); after != before {
		t.Fatalf("inode count drifted under parallel churn: before %d, after %d", before, after)
	}
}

// TestPipeStressParallel runs several multi-stage shell pipelines at once.
// Each pipeline is a chain of processes parked on pipe wait queues, so
// this stresses the per-pipe locks and the no-lost-wakeup protocol of the
// new wait queues.
func TestPipeStressParallel(t *testing.T) {
	defer agenttest.Watchdog(t, 2*time.Minute)()
	k := agenttest.World(t)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				// The console is shared across concurrent runs, so each
				// pipeline lands its result in a private file instead.
				result := fmt.Sprintf("/tmp/pipe%d", w)
				script := fmt.Sprintf("echo one two three | cat | cat | cat > %s", result)
				st, out, err := core.Run(k, nil, "/bin/sh",
					[]string{"sh", "-c", script}, []string{"PATH=/bin"})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
					errs <- fmt.Errorf("worker %d: status %#x\n%s", w, st, out)
					return
				}
				got, err := k.ReadFile(result)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if !strings.Contains(string(got), "one two three") {
					errs <- fmt.Errorf("worker %d: pipeline output %q", w, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelMakeTelemetryAttribution runs the parallel build (mk -j 4)
// under the trace agent with the flight recorder on: the interposition
// machinery, the telemetry substrate, and the fine-grained kernel must
// compose. Per-layer attribution still accounts every call to the kernel
// or to the agent layer even when four build jobs interpose concurrently.
func TestParallelMakeTelemetryAttribution(t *testing.T) {
	defer agenttest.Watchdog(t, 2*time.Minute)()
	k := buildWorld(t, 8)
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)

	stack := []core.Agent{trace.New()}
	st, out, err := core.Run(k, stack, "/bin/sh",
		[]string{"sh", "-c", "cd /src; mk -j 4 all"}, []string{"PATH=/bin"})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("mk -j 4 under trace: %#x\n%s", st, out)
	}
	verifyBuild(t, k, 8)

	snap := reg.Snapshot()
	if snap.Total == 0 {
		t.Fatal("no syscalls recorded")
	}
	names := make(map[string]uint64)
	for _, l := range snap.Layers {
		names[l.Name] = l.Calls
	}
	for _, want := range []string{"kernel", "trace"} {
		if names[want] == 0 {
			t.Fatalf("layer %q missing or idle in %v", want, snap.Layers)
		}
	}
}
