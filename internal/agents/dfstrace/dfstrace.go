// Package dfstrace implements the paper's dfs_trace agent (§3.5.3): file
// reference tracing tools compatible with the kernel-based DFSTrace
// collection originally built for the Coda filesystem project. The agent
// gathers the same records as the kernel-based implementation
// (NewKernelTracer) so the two can be compared directly — the paper's
// "best available implementation" comparison.
//
// The agent is built from the pathname, open object, and descriptor
// levels of the toolkit: GetPN is the central collection point for name
// references, and a derived open object records the per-descriptor
// operations (close, seek) on files opened through traced names.
package dfstrace

import (
	"fmt"
	"sync"
	"time"

	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// Record is one file-reference trace record.
type Record struct {
	Seq   int
	Time  time.Time
	PID   int
	Op    string
	Path  string
	Path2 string
	FD    int
	Err   sys.Errno
}

// String formats a record one-per-line, DFSTrace style.
func (r Record) String() string {
	s := fmt.Sprintf("%06d %d %s", r.Seq, r.PID, r.Op)
	if r.Path != "" {
		s += " " + r.Path
	}
	if r.Path2 != "" {
		s += " " + r.Path2
	}
	if r.FD >= 0 {
		s += fmt.Sprintf(" fd=%d", r.FD)
	}
	if r.Err != sys.OK {
		s += " err=" + r.Err.Name()
	}
	return s
}

// Collector accumulates trace records from either implementation.
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// NewCollector returns an empty collector. Record storage is preallocated
// so collection costs no allocation on the hot path, as the original
// DFSTrace's in-kernel buffer did not.
func NewCollector() *Collector { return &Collector{recs: make([]Record, 0, 16384)} }

// Add appends a record, assigning its sequence number.
func (cl *Collector) Add(r Record) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r.Seq = len(cl.recs)
	cl.recs = append(cl.recs, r)
}

// Records returns a copy of the collected records.
func (cl *Collector) Records() []Record {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]Record(nil), cl.recs...)
}

// Len returns the number of collected records.
func (cl *Collector) Len() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.recs)
}

// CountOp returns how many records carry the given operation.
func (cl *Collector) CountOp(op string) int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, r := range cl.recs {
		if r.Op == op {
			n++
		}
	}
	return n
}

// Reset discards collected records, keeping the storage.
func (cl *Collector) Reset() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.recs = cl.recs[:0]
}

// Agent is the interposition-based file reference tracer.
type Agent struct {
	core.PathnameSet
	cl *Collector
}

// New creates a dfstrace agent feeding the collector.
func New(cl *Collector) *Agent {
	a := &Agent{cl: cl}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	a.RegisterInterest(sys.SYS_fork)
	a.RegisterInterest(sys.SYS_exit)
	return a
}

// Collector returns the agent's record collector.
func (a *Agent) Collector() *Collector { return a.cl }

// opName maps a resolution operation to a DFSTrace record name.
func opName(op core.PathOp) string {
	switch op {
	case core.OpOpen:
		return "open"
	case core.OpCreate:
		return "create"
	case core.OpDelete:
		return "remove"
	case core.OpExec:
		return "execve"
	default:
		return "lookup"
	}
}

// GetPN is the central name-reference collection point: every pathname
// crossing the interface is recorded here.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	a.cl.Add(Record{Time: time.Now(), PID: c.PID(), Op: opName(op), Path: path, FD: -1})
	return &tracedPathname{BasePathname: core.BasePathname{P: path}, a: a}, sys.OK
}

// SysFork records process creation.
func (a *Agent) SysFork(c sys.Ctx) (sys.Retval, sys.Errno) {
	rv, err := a.PathnameSet.SysFork(c)
	a.cl.Add(Record{Time: time.Now(), PID: c.PID(), Op: "fork", FD: int(rv[0]), Err: err})
	return rv, err
}

// SysExit records process termination.
func (a *Agent) SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno) {
	a.cl.Add(Record{Time: time.Now(), PID: c.PID(), Op: "exit", FD: status, Err: sys.OK})
	return a.PathnameSet.SysExit(c, status)
}

// tracedPathname records the outcomes of operations on traced names and
// hands out tracking open objects.
type tracedPathname struct {
	core.BasePathname
	a *Agent
}

// Open performs the open and wraps the descriptor in a tracking object so
// close and seek on it are recorded too.
func (p *tracedPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	rv, _, err := p.BasePathname.Open(c, flags, mode)
	if err != sys.OK {
		p.a.cl.Add(Record{Time: time.Now(), PID: c.PID(), Op: "open-fail", Path: p.P, FD: -1, Err: err})
		return rv, nil, err
	}
	oo := &tracedOpen{a: p.a, path: p.P}
	oo.FD = int(rv[0])
	oo.Ref()
	oo.OnRelease = func(rc sys.Ctx) {
		p.a.cl.Add(Record{Time: time.Now(), PID: rc.PID(), Op: "close", Path: p.P, FD: oo.FD})
	}
	return rv, oo, sys.OK
}

// tracedOpen is the derived open object recording seeks.
type tracedOpen struct {
	core.BaseOpenObject
	a    *Agent
	path string
}

// Lseek records the seek and performs it.
func (o *tracedOpen) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	rv, err := o.BaseOpenObject.Lseek(c, fd, off, whence)
	o.a.cl.Add(Record{Time: time.Now(), PID: c.PID(), Op: "seek", Path: o.path, FD: fd, Err: err})
	return rv, err
}

// kernelTracer adapts a Collector to the kernel's built-in tracing hooks:
// the monolithic implementation the paper compares against.
type kernelTracer struct {
	cl *Collector
}

// NewKernelTracer returns a kernel.Tracer feeding the collector with
// records equivalent to the agent's.
func NewKernelTracer(cl *Collector) kernel.Tracer { return kernelTracer{cl: cl} }

// Event implements kernel.Tracer.
func (t kernelTracer) Event(e kernel.TraceEvent) {
	op := e.Op
	switch op {
	case "stat", "lstat", "chdir", "chmod", "chown", "truncate", "utimes":
		op = "lookup"
	case "unlink", "rmdir":
		op = "remove"
	case "mkdir", "symlink", "link":
		op = "create"
	}
	t.cl.Add(Record{Time: e.Time, PID: e.PID, Op: op, Path: e.Path, Path2: e.Path2, FD: e.FD, Err: e.Err})
}
