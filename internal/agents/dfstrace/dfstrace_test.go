package dfstrace_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/dfstrace"
	"interpose/internal/core"
)

func TestAgentCollectsFileReferences(t *testing.T) {
	k := agenttest.World(t)
	k.WriteFile("/tmp/traced.txt", []byte("data\n"), 0o644)
	cl := dfstrace.NewCollector()
	a := dfstrace.New(cl)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"cat /tmp/traced.txt; rm /tmp/traced.txt")
	if st != 0 {
		t.Fatal("workload failed")
	}
	if cl.CountOp("open") == 0 {
		t.Fatal("no open records")
	}
	if cl.CountOp("close") == 0 {
		t.Fatal("no close records")
	}
	if cl.CountOp("remove") == 0 {
		t.Fatal("no remove records")
	}
	if cl.CountOp("execve") == 0 {
		t.Fatal("no exec records")
	}
	found := false
	for _, r := range cl.Records() {
		if r.Op == "open" && r.Path == "/tmp/traced.txt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("target path never recorded; records:\n%s", dump(cl))
	}
}

func dump(cl *dfstrace.Collector) string {
	var b strings.Builder
	for _, r := range cl.Records() {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestKernelTracerProducesEquivalentRecords(t *testing.T) {
	// The monolithic, compiled-into-the-kernel implementation yields
	// records comparable to the agent's (paper §3.5.3): same operations on
	// the same pathnames, modulo resolution-time differences.
	runOnce := func(useAgent bool) *dfstrace.Collector {
		k := agenttest.World(t)
		k.WriteFile("/tmp/f1", []byte("1"), 0o644)
		cl := dfstrace.NewCollector()
		var agents []core.Agent
		if useAgent {
			agents = append(agents, dfstrace.New(cl))
		} else {
			k.SetTracer(dfstrace.NewKernelTracer(cl))
		}
		st, _ := agenttest.Run(t, k, agents, "sh", "-c",
			"cat /tmp/f1; cp /tmp/f1 /tmp/f2; rm /tmp/f2")
		if st != 0 {
			t.Fatal("workload failed")
		}
		return cl
	}
	agentCl := runOnce(true)
	kernCl := runOnce(false)
	for _, op := range []string{"open", "remove", "execve"} {
		if agentCl.CountOp(op) == 0 || kernCl.CountOp(op) == 0 {
			t.Fatalf("op %s missing: agent=%d kernel=%d (agent records:\n%s\nkernel records:\n%s)",
				op, agentCl.CountOp(op), kernCl.CountOp(op), dump(agentCl), dump(kernCl))
		}
	}
	// Both saw the same essential references.
	for _, cl := range []*dfstrace.Collector{agentCl, kernCl} {
		seen := false
		for _, r := range cl.Records() {
			if strings.Contains(r.Path, "/tmp/f2") && r.Op == "remove" {
				seen = true
			}
		}
		if !seen {
			t.Fatalf("remove of /tmp/f2 missing:\n%s", dump(cl))
		}
	}
}

func TestCollectorSequenceAndReset(t *testing.T) {
	cl := dfstrace.NewCollector()
	cl.Add(dfstrace.Record{Op: "a"})
	cl.Add(dfstrace.Record{Op: "b"})
	recs := cl.Records()
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("seq wrong: %+v", recs)
	}
	cl.Reset()
	if cl.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRecordString(t *testing.T) {
	r := dfstrace.Record{Seq: 7, PID: 3, Op: "open", Path: "/x", FD: 4}
	s := r.String()
	for _, want := range []string{"000007", "3", "open", "/x", "fd=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("record string %q missing %q", s, want)
		}
	}
}
