package agents_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"interpose/internal/agents/agenttest"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// The supervision chaos soak: mk builds a source tree under a faulty
// layer whose plan makes the agent itself panic inside its upcalls. The
// kernel supervisor must contain every panic, quarantine the layer at
// the breaker threshold, and let the retried build run to completion —
// the world never crashes, and the run replays deterministically per
// seed.
//
// The layer object is shared across retries (the breaker is keyed by
// layer identity, exactly as it is across fork), so containment history
// accumulates: a failed build is retried under the same breaker until
// the layer is fenced off and the build goes through.

// soakResult is everything one seed's soak produced.
type soakResult struct {
	rounds      int
	finalStatus sys.Word
	output      string   // concatenated console output of every round
	log         []string // injector decisions, sorted
	quarantined []string
}

// runSoak retries the build under one shared faulty layer until a round
// completes after the layer is quarantined (or the round cap trips).
func runSoak(t *testing.T, seed int, plan string, cfg kernel.SupervisorConfig) soakResult {
	t.Helper()
	k := buildWorld(t, 4)
	fa := mustFaulty(t, plan)
	sup := kernel.NewSupervisor(k, cfg)
	k.SetSupervisor(sup)

	layer := kernel.NewEmuLayer(fa)
	layer.Name = "faulty"
	nums, all := fa.InterestedSyscalls()
	if all {
		layer.RegisterAll()
	}
	for _, n := range nums {
		layer.Register(n)
	}

	var res soakResult
	var out strings.Builder
	const maxRounds = 40
	for round := 0; round < maxRounds; round++ {
		res.rounds = round + 1
		if round > 0 {
			// Remove the build products so every retry is a full rebuild,
			// not an incremental no-op: a failed chaos round leaves the
			// tree in an arbitrary state anyway.
			for i := 1; i <= 4; i++ {
				k.Remove(fmt.Sprintf("/src/prog%d", i))
			}
		}
		k.Console().TakeOutput()
		p := k.NewProc()
		if err := p.OpenConsole(); err != nil {
			t.Fatalf("seed %d round %d: console: %v", seed, round, err)
		}
		p.PushEmulation(layer)
		if err := p.Start("/bin/sh", []string{"sh", "-c", "cd /src; mk all"},
			[]string{"PATH=/bin"}); err != nil {
			t.Fatalf("seed %d round %d: start: %v", seed, round, err)
		}
		res.finalStatus = k.WaitExit(p)
		out.WriteString(k.Console().TakeOutput())
		clean := sys.WIfExited(res.finalStatus) && sys.WExitStatus(res.finalStatus) == 0
		if clean && len(sup.QuarantinedLayers()) > 0 {
			break
		}
	}
	res.output = out.String()
	for _, rec := range fa.Injector().Log() {
		res.log = append(res.log, rec.String())
	}
	sort.Strings(res.log)
	res.quarantined = sup.QuarantinedLayers()
	return res
}

func soakPlan(seed int) string {
	return fmt.Sprintf("seed=%d,write=panic@0.01,read=panic@0.01,open=panic@0.01", seed)
}

func soakConfig() kernel.SupervisorConfig {
	return kernel.SupervisorConfig{
		Mode:     kernel.SuperviseStrict,
		Window:   0,  // pure failure count: no wall-clock in the trip decision
		Cooldown: -1, // no half-open probes: quarantine is permanent, runs replay
	}
}

func TestSupervisionChaosSoak(t *testing.T) {
	defer agenttest.Watchdog(t, 4*time.Minute)()
	for _, seed := range []int{1, 2, 3, 5, 8} {
		res := runSoak(t, seed, soakPlan(seed), soakConfig())
		// The world survived: no panic ever reached a process, and the
		// retried build ends cleanly with the panicking layer fenced off.
		if strings.Contains(res.output, "panic in pid") {
			t.Fatalf("seed %d: uncontained panic:\n%s", seed, res.output)
		}
		if !sys.WIfExited(res.finalStatus) || sys.WExitStatus(res.finalStatus) != 0 {
			t.Fatalf("seed %d: no clean build in %d rounds: %#x\n%s",
				seed, res.rounds, res.finalStatus, res.output)
		}
		if len(res.quarantined) != 1 || res.quarantined[0] != "faulty" {
			t.Fatalf("seed %d: quarantined = %v, want [faulty]", seed, res.quarantined)
		}
		if len(res.log) < 3 {
			t.Fatalf("seed %d: only %d injected panics cannot have tripped the breaker", seed, len(res.log))
		}
		t.Logf("seed %d: quarantined after %d panics, clean build in round %d",
			seed, len(res.log), res.rounds)
	}
}

// TestSupervisionSoakDeterministic replays one seed from a fresh world
// and checks the injector made the identical decisions and the breaker
// reached the identical outcome — the property that makes a chaos
// failure reproducible.
func TestSupervisionSoakDeterministic(t *testing.T) {
	defer agenttest.Watchdog(t, 3*time.Minute)()
	a := runSoak(t, 3, soakPlan(3), soakConfig())
	b := runSoak(t, 3, soakPlan(3), soakConfig())
	if strings.Join(a.log, "\n") != strings.Join(b.log, "\n") {
		t.Fatalf("seed 3 diverged:\nrun1 (%d): %v\nrun2 (%d): %v",
			len(a.log), a.log, len(b.log), b.log)
	}
	if a.rounds != b.rounds || fmt.Sprint(a.quarantined) != fmt.Sprint(b.quarantined) {
		t.Fatalf("outcome diverged: rounds %d/%d, quarantined %v/%v",
			a.rounds, b.rounds, a.quarantined, b.quarantined)
	}
}

// TestSupervisionHangDeadline drives the hang rule against the deadline:
// the layer blocks inside its upcall, the supervisor abandons it at the
// deadline, and the overrun trips the breaker so the build completes.
func TestSupervisionHangDeadline(t *testing.T) {
	defer agenttest.Watchdog(t, 2*time.Minute)()
	cfg := kernel.SupervisorConfig{
		Mode:          kernel.SuperviseStrict,
		TripThreshold: 1,
		Window:        0,
		Cooldown:      -1,
		Deadline:      25 * time.Millisecond,
	}
	res := runSoak(t, 2, "seed=2,write=hang:300ms@0.02", cfg)
	if !sys.WIfExited(res.finalStatus) || sys.WExitStatus(res.finalStatus) != 0 {
		t.Fatalf("no clean build in %d rounds: %#x\n%s", res.rounds, res.finalStatus, res.output)
	}
	if len(res.log) == 0 {
		t.Fatal("plan never hung; deadline untested")
	}
	if len(res.quarantined) != 1 || res.quarantined[0] != "faulty" {
		t.Fatalf("quarantined = %v, want [faulty]", res.quarantined)
	}
}
