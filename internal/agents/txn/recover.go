package txn

import (
	"fmt"
	gopath "path"
	"sort"
	"strconv"
	"strings"

	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/vfs"
)

// markerName is the durable commit-intention marker inside the shadow
// subtree; markerMagic is its first line.
const (
	markerName  = "/.commit"
	markerMagic = "TXNCOMMIT1\n"
)

var recoverCred = vfs.Cred{UID: 0, GID: 0}

// Recover finishes a transaction that a crash interrupted mid-commit. It
// runs on a recovered world (journal replayed, fsck clean) before any new
// work: if the shadow subtree holds a durable commit marker the commit
// had passed its commit point, and Recover rolls it forward from the
// shadow copies — the marker lists every write and removal, and the
// shadow tree's contents are durable because the marker's sync barrier
// ordered them into the journal first. Without a marker the crash landed
// before the commit point (or after a completed commit or rollback) and
// the real tree is already in a consistent all-or-nothing state, so
// Recover does nothing.
//
// Recover is idempotent: every roll-forward step is an absolute
// overwrite or a tolerated-missing removal, and the marker is cleared
// only after the last step, so a crash during recovery simply rolls
// forward again on the next boot.
//
// It reports whether a roll-forward was performed.
func Recover(k *kernel.Kernel, shadowRoot string) (bool, error) {
	shadowRoot = gopath.Clean(shadowRoot)
	fs := k.FS()
	marker := shadowRoot + markerName
	mip, e := fs.Lookup(fs.Root(), marker, recoverCred, true)
	if e == sys.ENOENT {
		return false, nil
	}
	if e != sys.OK {
		return false, fmt.Errorf("txn: recover %s: %w", marker, e)
	}
	if len(mip.Bytes()) == 0 {
		// The crash landed between the marker's creation and its single
		// content write reaching the journal: the commit point was never
		// durable and no real mutation can have preceded it. Roll back by
		// discarding the husk.
		return false, k.Remove(marker)
	}
	writes, removes, err := parseMarker(mip.Bytes())
	if err != nil {
		return false, fmt.Errorf("txn: recover %s: %w", marker, err)
	}

	// Creations parents-first, like Commit.
	sort.Slice(writes, func(i, j int) bool { return len(writes[i].path) < len(writes[j].path) })
	for _, it := range writes {
		if it.isDir {
			if err := k.MkdirAll(it.path, 0o777); err != nil {
				return false, err
			}
			continue
		}
		sip, e := fs.Lookup(fs.Root(), shadowRoot+it.path, recoverCred, false)
		if e == sys.ENOENT {
			// The shadow copy never became durable; with the marker synced
			// first that cannot happen for real commits, but a marker from
			// a half-written shadow is still recovered best-effort.
			continue
		}
		if e != sys.OK {
			return false, fmt.Errorf("txn: recover shadow of %s: %w", it.path, e)
		}
		if err := k.MkdirAll(gopath.Dir(it.path), 0o777); err != nil {
			return false, err
		}
		st := sip.Stat()
		if sip.IsSymlink() {
			target, e := sip.Readlink()
			if e != sys.OK {
				return false, fmt.Errorf("txn: recover readlink %s: %w", it.path, e)
			}
			if err := k.Remove(it.path); err != nil {
				return false, err
			}
			dir, name, _, e := fs.LookupParent(fs.Root(), it.path, recoverCred)
			if e != sys.OK {
				return false, fmt.Errorf("txn: recover %s: %w", it.path, e)
			}
			if _, e := fs.Symlink(dir, name, target, recoverCred); e != sys.OK {
				return false, fmt.Errorf("txn: recover symlink %s: %w", it.path, e)
			}
			continue
		}
		if err := k.WriteFile(it.path, sip.Bytes(), st.Mode&0o7777); err != nil {
			return false, err
		}
		if rip, e := fs.Lookup(fs.Root(), it.path, recoverCred, false); e == sys.OK {
			fs.Chmod(rip, st.Mode&0o7777, recoverCred)
			fs.Chown(rip, st.UID, st.GID, recoverCred)
		}
	}

	// Removals children-first, like Commit. A path already gone (the
	// crashed commit had renamed it into the undo area) is simply done.
	sort.Slice(removes, func(i, j int) bool { return len(removes[i].path) > len(removes[j].path) })
	for _, it := range removes {
		dir, name, existing, e := fs.LookupParent(fs.Root(), it.path, recoverCred)
		if e == sys.ENOENT {
			continue
		}
		if e != sys.OK {
			return false, fmt.Errorf("txn: recover remove %s: %w", it.path, e)
		}
		if existing == nil {
			continue
		}
		if it.isDir {
			if e := fs.Rmdir(dir, name, recoverCred); e != sys.OK && e != sys.ENOTEMPTY {
				return false, fmt.Errorf("txn: recover rmdir %s: %w", it.path, e)
			}
		} else if e := fs.Unlink(dir, name, recoverCred); e != sys.OK {
			return false, fmt.Errorf("txn: recover unlink %s: %w", it.path, e)
		}
	}

	// Clearing the marker is the last step; the journal barrier makes the
	// completed recovery durable.
	if err := k.Remove(marker); err != nil {
		return false, err
	}
	if w := k.Journal(); w != nil {
		w.Commit()
	}
	return true, nil
}

type markerItem struct {
	path  string
	isDir bool
}

func parseMarker(data []byte) (writes, removes []markerItem, err error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0]+"\n" != markerMagic {
		return nil, nil, fmt.Errorf("bad marker magic")
	}
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		tag, rest, ok := strings.Cut(ln, " ")
		if !ok {
			return nil, nil, fmt.Errorf("bad marker line %q", ln)
		}
		path, uerr := strconv.Unquote(rest)
		if uerr != nil {
			return nil, nil, fmt.Errorf("bad marker line %q: %v", ln, uerr)
		}
		switch tag {
		case "W":
			writes = append(writes, markerItem{path, false})
		case "D":
			writes = append(writes, markerItem{path, true})
		case "R":
			removes = append(removes, markerItem{path, false})
		case "X":
			removes = append(removes, markerItem{path, true})
		default:
			return nil, nil, fmt.Errorf("bad marker tag %q", tag)
		}
	}
	return writes, removes, nil
}
