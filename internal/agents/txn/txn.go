// Package txn implements a transactional software environment (paper
// §1.4): arbitrary unmodified programs run such that all persistent
// filesystem side effects are buffered in a shadow subtree and appear,
// within the transaction, to have been performed normally; at the end the
// transaction is either committed (replayed against the real filesystem)
// or aborted (discarded). Because an agent's modifications are made
// through the next-lower instance of the system interface, one
// transactional invocation can run inside another, transparently
// providing nested transactions.
package txn

import (
	"fmt"
	gopath "path"
	"sort"
	"strings"
	"sync"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// entry records the transactional state of one real pathname.
type entry struct {
	shadowed bool // a shadow copy exists and is authoritative
	whiteout bool // the name is deleted within the transaction
	isDir    bool
}

// Agent is the transactional environment.
type Agent struct {
	core.PathnameSet

	shadowRoot   string
	commitOnExit bool

	mu        sync.Mutex
	entries   map[string]*entry
	rootPID   int
	done      bool
	commitErr sys.Errno
}

// New creates a transactional agent buffering changes under shadowRoot
// (which must be absolute and is created on demand). With commitOnExit
// set, the buffered changes are replayed against the real filesystem when
// the top client process exits; otherwise they are discarded.
func New(shadowRoot string, commitOnExit bool) (*Agent, error) {
	if !strings.HasPrefix(shadowRoot, "/") {
		return nil, fmt.Errorf("txn: shadow root must be absolute")
	}
	a := &Agent{
		shadowRoot:   gopath.Clean(shadowRoot),
		commitOnExit: commitOnExit,
		entries:      make(map[string]*entry),
	}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	a.RegisterInterest(sys.SYS_fork)
	return a, nil
}

// shadow maps a real pathname into the shadow subtree.
func (a *Agent) shadow(real string) string { return a.shadowRoot + real }

func (a *Agent) get(real string) entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e := a.entries[real]; e != nil {
		return *e
	}
	return entry{}
}

func (a *Agent) set(real string, e entry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries[real] = &e
}

// inTxnSpace reports whether the agent manages this pathname. The shadow
// subtree itself is exempt so the agent's own downcalls are not recursed
// on (they already are not, being downcalls, but clients poking at the
// shadow would corrupt state).
func (a *Agent) manages(path string) bool {
	return !strings.HasPrefix(path, a.shadowRoot+"/") && path != a.shadowRoot
}

// clean canonicalizes an absolute pathname; relative names pass through
// and are left unmanaged (the transactional loader runs clients with
// absolute-path discipline).
func clean(path string) (string, bool) {
	if !strings.HasPrefix(path, "/") {
		return path, false
	}
	return gopath.Clean(path), true
}

// GetPN routes each pathname through the transactional overlay.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	abs, ok := clean(path)
	if !ok || !a.manages(abs) {
		return a.PathnameSet.GetPN(c, path, op)
	}
	return &txnPathname{BasePathname: core.BasePathname{P: abs}, a: a}, sys.OK
}

// ensureShadowParents creates the shadow counterparts of a path's parent
// directories.
func (a *Agent) ensureShadowParents(c sys.Ctx, real string) sys.Errno {
	dir := gopath.Dir(real)
	return core.DownMkdirAll(c, a.shadow(dir), 0o777)
}

// copyUp materializes a shadow copy of a real file so it can be modified
// privately.
func (a *Agent) copyUp(c sys.Ctx, real string) sys.Errno {
	e := a.get(real)
	if e.shadowed || e.whiteout {
		return sys.OK
	}
	st, err := core.DownStat(c, real)
	if err != sys.OK {
		return err
	}
	if err := a.ensureShadowParents(c, real); err != sys.OK {
		return err
	}
	if st.IsDir() {
		if err := core.DownMkdirAll(c, a.shadow(real), st.Mode&0o7777); err != sys.OK {
			return err
		}
		a.set(real, entry{shadowed: true, isDir: true})
		return sys.OK
	}
	if err := core.DownCopyFile(c, real, a.shadow(real)); err != sys.OK {
		return err
	}
	a.set(real, entry{shadowed: true})
	return sys.OK
}

// effective returns the pathname current operations should use for
// reading, and whether the name exists in the transaction's view.
func (a *Agent) effective(c sys.Ctx, real string) (string, bool) {
	e := a.get(real)
	switch {
	case e.whiteout:
		return "", false
	case e.shadowed:
		return a.shadow(real), true
	default:
		if _, err := core.DownLstat(c, real); err != sys.OK {
			return real, false
		}
		return real, true
	}
}

// txnPathname is the pathname object of the transactional view.
type txnPathname struct {
	core.BasePathname // P is the real (logical) pathname
	a                 *Agent
}

// Open reads from the effective object; write-opens are redirected into
// the shadow subtree after a copy-up.
func (p *txnPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	a := p.a
	writeOpen := flags&(sys.O_WRONLY|sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC|sys.O_APPEND) != 0
	eff, exists := a.effective(c, p.P)
	if !writeOpen {
		if !exists {
			if eff == "" {
				return sys.Retval{}, nil, sys.ENOENT
			}
			// Fall through so the real error surfaces.
		}
		// Directory reads get a merged view of real + shadow.
		if exists {
			if st, err := core.DownStat(c, eff); err == sys.OK && st.IsDir() {
				return a.openMergedDir(c, p.P)
			}
		}
		rv, err := core.DownPath(c, sys.SYS_open, eff, sys.Word(flags), mode)
		return rv, nil, err
	}

	// Write path: everything happens in the shadow.
	e := a.get(p.P)
	switch {
	case e.whiteout || !exists:
		if flags&sys.O_CREAT == 0 {
			return sys.Retval{}, nil, sys.ENOENT
		}
		if err := a.ensureShadowParents(c, p.P); err != sys.OK {
			return sys.Retval{}, nil, err
		}
		a.set(p.P, entry{shadowed: true})
	case !e.shadowed:
		if flags&sys.O_TRUNC != 0 {
			// The old contents are irrelevant; just create the shadow.
			if err := a.ensureShadowParents(c, p.P); err != sys.OK {
				return sys.Retval{}, nil, err
			}
			a.set(p.P, entry{shadowed: true})
		} else if err := a.copyUp(c, p.P); err != sys.OK {
			return sys.Retval{}, nil, err
		}
	}
	rv, err := core.DownPath(c, sys.SYS_open, a.shadow(p.P), sys.Word(flags), mode)
	return rv, nil, err
}

// openMergedDir opens a union of the shadow and real directories,
// suppressing whiteouts.
func (a *Agent) openMergedDir(c sys.Ctx, real string) (sys.Retval, core.OpenObject, sys.Errno) {
	eff, _ := a.effective(c, real)
	rv, err := core.DownPath(c, sys.SYS_open, eff, sys.O_RDONLY)
	if err != sys.OK {
		return sys.Retval{}, nil, err
	}
	names := make(map[string]uint32) // name → ino
	var order []string
	add := func(dir string) {
		ents, err := core.DownReaddir(c, dir)
		if err != sys.OK {
			return
		}
		for _, n := range ents {
			full := gopath.Join(real, n)
			if a.get(full).whiteout {
				continue
			}
			if _, dup := names[full]; dup {
				continue
			}
			if _, seen := names[n]; seen {
				continue
			}
			names[n] = 0
			order = append(order, n)
		}
	}
	// Shadow entries take precedence; then real ones not whited out.
	if sh, e := core.DownStat(c, a.shadow(real)); e == sys.OK && sh.IsDir() {
		add(a.shadow(real))
	}
	if eff != a.shadow(real) {
		add(eff)
	} else if _, e := core.DownStat(c, real); e == sys.OK {
		add(real)
	}
	d := newListDir(int(rv[0]), order)
	return rv, d, sys.OK
}

// listDir is a directory open object serving a precomputed name list.
type listDir struct {
	core.Directory
	names []string
	pos   int
}

func newListDir(fd int, names []string) *listDir {
	d := &listDir{names: names}
	d.FD = fd
	d.Ref()
	d.BindDirectory(d)
	return d
}

// NextDirentry serves the precomputed merged listing. Inode numbers are
// synthetic: the transactional view has no stable inodes until commit.
func (d *listDir) NextDirentry(c sys.Ctx, fd int) (sys.Dirent, bool, sys.Errno) {
	switch d.pos {
	case 0:
		d.pos++
		return sys.Dirent{Ino: 1, Name: "."}, true, sys.OK
	case 1:
		d.pos++
		return sys.Dirent{Ino: 1, Name: ".."}, true, sys.OK
	}
	i := d.pos - 2
	if i >= len(d.names) {
		return sys.Dirent{}, false, sys.OK
	}
	d.pos++
	return sys.Dirent{Ino: uint32(2 + i), Name: d.names[i]}, true, sys.OK
}

// Rewind restarts the listing.
func (d *listDir) Rewind(c sys.Ctx, fd int) sys.Errno {
	d.pos = 0
	return sys.OK
}

// Stat stats the effective object.
func (p *txnPathname) Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	eff, exists := p.a.effective(c, p.P)
	if !exists && eff == "" {
		return sys.Retval{}, sys.ENOENT
	}
	return core.DownPath(c, sys.SYS_stat, eff, statAddr)
}

// Lstat lstats the effective object.
func (p *txnPathname) Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	eff, exists := p.a.effective(c, p.P)
	if !exists && eff == "" {
		return sys.Retval{}, sys.ENOENT
	}
	return core.DownPath(c, sys.SYS_lstat, eff, statAddr)
}

// Access checks the effective object.
func (p *txnPathname) Access(c sys.Ctx, mode int) (sys.Retval, sys.Errno) {
	eff, exists := p.a.effective(c, p.P)
	if !exists && eff == "" {
		return sys.Retval{}, sys.ENOENT
	}
	return core.DownPath(c, sys.SYS_access, eff, sys.Word(int32(mode)))
}

// Readlink reads through the effective object.
func (p *txnPathname) Readlink(c sys.Ctx, buf sys.Word, n int) (sys.Retval, sys.Errno) {
	eff, exists := p.a.effective(c, p.P)
	if !exists && eff == "" {
		return sys.Retval{}, sys.ENOENT
	}
	return core.DownPath(c, sys.SYS_readlink, eff, buf, sys.Word(int32(n)))
}

// Unlink records a whiteout; the real file is untouched until commit.
func (p *txnPathname) Unlink(c sys.Ctx) (sys.Retval, sys.Errno) {
	a := p.a
	_, exists := a.effective(c, p.P)
	if !exists {
		return sys.Retval{}, sys.ENOENT
	}
	if a.get(p.P).shadowed {
		core.DownPath(c, sys.SYS_unlink, a.shadow(p.P))
	}
	a.set(p.P, entry{whiteout: true})
	return sys.Retval{}, sys.OK
}

// Rmdir whiteouts a directory if it is empty in the merged view.
func (p *txnPathname) Rmdir(c sys.Ctx) (sys.Retval, sys.Errno) {
	a := p.a
	eff, exists := a.effective(c, p.P)
	if !exists {
		return sys.Retval{}, sys.ENOENT
	}
	names, err := core.DownReaddir(c, eff)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	for _, n := range names {
		if !a.get(gopath.Join(p.P, n)).whiteout {
			return sys.Retval{}, sys.ENOTEMPTY
		}
	}
	if a.get(p.P).shadowed {
		core.DownPath(c, sys.SYS_rmdir, a.shadow(p.P))
	}
	a.set(p.P, entry{whiteout: true, isDir: true})
	return sys.Retval{}, sys.OK
}

// Mkdir creates the directory in the shadow.
func (p *txnPathname) Mkdir(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	a := p.a
	if _, exists := a.effective(c, p.P); exists {
		return sys.Retval{}, sys.EEXIST
	}
	if err := a.ensureShadowParents(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	rv, err := core.DownPath(c, sys.SYS_mkdir, a.shadow(p.P), mode)
	if err == sys.OK || err == sys.EEXIST {
		a.set(p.P, entry{shadowed: true, isDir: true})
		err = sys.OK
	}
	return rv, err
}

// Symlink creates the link in the shadow.
func (p *txnPathname) Symlink(c sys.Ctx, target string) (sys.Retval, sys.Errno) {
	a := p.a
	if _, exists := a.effective(c, p.P); exists {
		return sys.Retval{}, sys.EEXIST
	}
	if err := a.ensureShadowParents(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	core.DownPath(c, sys.SYS_unlink, a.shadow(p.P))
	rv, err := core.DownPath2(c, sys.SYS_symlink, target, a.shadow(p.P))
	if err == sys.OK {
		a.set(p.P, entry{shadowed: true})
	}
	return rv, err
}

// Chmod applies to the shadow copy.
func (p *txnPathname) Chmod(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	if err := p.a.copyUp(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	return core.DownPath(c, sys.SYS_chmod, p.a.shadow(p.P), mode)
}

// Chown applies to the shadow copy.
func (p *txnPathname) Chown(c sys.Ctx, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	if err := p.a.copyUp(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	return core.DownPath(c, sys.SYS_chown, p.a.shadow(p.P), uid, gid)
}

// Utimes applies to the shadow copy.
func (p *txnPathname) Utimes(c sys.Ctx, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	if err := p.a.copyUp(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	return core.DownPath(c, sys.SYS_utimes, p.a.shadow(p.P), tvAddr)
}

// Truncate applies to the shadow copy.
func (p *txnPathname) Truncate(c sys.Ctx, length int32) (sys.Retval, sys.Errno) {
	if err := p.a.copyUp(c, p.P); err != sys.OK {
		return sys.Retval{}, err
	}
	return core.DownPath(c, sys.SYS_truncate, p.a.shadow(p.P), sys.Word(length))
}

// Rename is modeled as copy-to-target plus whiteout-of-source, entirely
// within the transaction.
func (p *txnPathname) Rename(c sys.Ctx, to core.Pathname) (sys.Retval, sys.Errno) {
	a := p.a
	src, exists := a.effective(c, p.P)
	if !exists {
		return sys.Retval{}, sys.ENOENT
	}
	toReal, ok := clean(to.String())
	if !ok || !a.manages(toReal) {
		return sys.Retval{}, sys.EXDEV
	}
	if err := a.ensureShadowParents(c, toReal); err != sys.OK {
		return sys.Retval{}, err
	}
	if err := core.DownCopyFile(c, src, a.shadow(toReal)); err != sys.OK {
		return sys.Retval{}, err
	}
	a.set(toReal, entry{shadowed: true})
	if a.get(p.P).shadowed {
		core.DownPath(c, sys.SYS_unlink, a.shadow(p.P))
	}
	a.set(p.P, entry{whiteout: true})
	return sys.Retval{}, sys.OK
}

// Link is modeled as a copy within the transaction (hard links across the
// overlay are not preserved by commit).
func (p *txnPathname) Link(c sys.Ctx, newpn core.Pathname) (sys.Retval, sys.Errno) {
	a := p.a
	src, exists := a.effective(c, p.P)
	if !exists {
		return sys.Retval{}, sys.ENOENT
	}
	toReal, ok := clean(newpn.String())
	if !ok || !a.manages(toReal) {
		return sys.Retval{}, sys.EXDEV
	}
	if _, exists := a.effective(c, toReal); exists {
		return sys.Retval{}, sys.EEXIST
	}
	if err := a.ensureShadowParents(c, toReal); err != sys.OK {
		return sys.Retval{}, err
	}
	if err := core.DownCopyFile(c, src, a.shadow(toReal)); err != sys.OK {
		return sys.Retval{}, err
	}
	a.set(toReal, entry{shadowed: true})
	return sys.Retval{}, sys.OK
}

// Exec executes the effective image.
func (p *txnPathname) Exec(c sys.Ctx, argvAddr, envpAddr sys.Word) (sys.Retval, sys.Errno) {
	eff, exists := p.a.effective(c, p.P)
	if !exists && eff == "" {
		return sys.Retval{}, sys.ENOENT
	}
	return core.ExecveFromPrimitives(c, eff, argvAddr, envpAddr)
}

// SysFork tracks the client tree's root so commit can run at its exit.
func (a *Agent) SysFork(c sys.Ctx) (sys.Retval, sys.Errno) {
	a.noteRoot(c.PID())
	return a.PathnameSet.SysFork(c)
}

func (a *Agent) noteRoot(pid int) {
	a.mu.Lock()
	if a.rootPID == 0 {
		a.rootPID = pid
	}
	a.mu.Unlock()
}

// SysExit commits or aborts when the root client exits.
func (a *Agent) SysExit(c sys.Ctx, status int) (sys.Retval, sys.Errno) {
	a.noteRoot(c.PID())
	a.mu.Lock()
	isRoot := c.PID() == a.rootPID && !a.done
	if isRoot {
		a.done = true
	}
	a.mu.Unlock()
	if isRoot && a.commitOnExit {
		err := a.Commit(c)
		a.mu.Lock()
		a.commitErr = err
		a.mu.Unlock()
	}
	return a.PathnameSet.SysExit(c, status)
}

// CommitErr reports the outcome of the exit-time commit: OK before commit
// and after a clean one, otherwise the error that aborted it (in which
// case the real filesystem was rolled back to its pre-transaction state).
func (a *Agent) CommitErr() sys.Errno {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commitErr
}

// Changes describes the buffered modifications: paths that would be
// written and paths that would be removed at commit.
func (a *Agent) Changes() (writes, removes []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for path, e := range a.entries {
		switch {
		case e.whiteout:
			removes = append(removes, path)
		case e.shadowed:
			writes = append(writes, path)
		}
	}
	sort.Strings(writes)
	sort.Strings(removes)
	return writes, removes
}

// Commit replays the transaction against the real filesystem through
// downcalls on c: directories first, then file contents, then removals.
//
// Commit is all-or-nothing: before any real file is overwritten or
// removed it is renamed aside into the shadow subtree's undo area, and
// the first failure (say, an injected ENOSPC on a commit-time write)
// rolls every step already taken back, leaving the real filesystem in its
// exact pre-transaction state. No buffered side effect can leak from an
// aborted commit.
//
// Against crashes (the world dying mid-commit, not an errno failure) the
// commit point is a durable intention marker: before the first real
// mutation the full change list is written to <shadowRoot>/.commit and
// forced to the write-ahead journal with sync. Recover rolls the
// transaction forward whenever the marker survives a crash and leaves
// the pre-transaction state untouched whenever it does not, so a crashed
// commit still fully commits or fully rolls back — never half of each.
func (a *Agent) Commit(c sys.Ctx) sys.Errno {
	writes, removes := a.Changes()
	// Shorter paths (parents) first for creations.
	sort.Slice(writes, func(i, j int) bool { return len(writes[i]) < len(writes[j]) })

	marker := a.shadowRoot + markerName
	var in strings.Builder
	in.WriteString(markerMagic)
	a.mu.Lock()
	for _, path := range writes {
		tag := "W"
		if a.entries[path].isDir {
			tag = "D"
		}
		fmt.Fprintf(&in, "%s %q\n", tag, path)
	}
	for _, path := range removes {
		tag := "R"
		if a.entries[path].isDir {
			tag = "X"
		}
		fmt.Fprintf(&in, "%s %q\n", tag, path)
	}
	a.mu.Unlock()
	if err := core.DownMkdirAll(c, a.shadowRoot, 0o777); err != sys.OK {
		return err
	}
	if err := core.DownWriteFile(c, marker, []byte(in.String()), 0o600); err != sys.OK {
		return err
	}
	// The sync is the commit point: once the marker's journal records are
	// on the store, a crash anywhere below resolves to roll-forward.
	core.Down(c, sys.SYS_sync, sys.Args{})
	clearMarker := func() {
		core.DownPath(c, sys.SYS_unlink, marker)
		core.Down(c, sys.SYS_sync, sys.Args{})
	}

	undoRoot := a.shadowRoot + "/.undo"
	var undo []func() // applied in reverse on failure
	rollback := func(err sys.Errno) sys.Errno {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		clearMarker()
		return err
	}
	// moveAside preserves whatever exists at real before commit touches
	// it: the object is renamed into the undo area and an inverse rename
	// queued. Missing paths queue an unlink of whatever commit creates.
	moveAside := func(real string) sys.Errno {
		if _, e := core.DownLstat(c, real); e != sys.OK {
			undo = append(undo, func() { core.DownPath(c, sys.SYS_unlink, real) })
			return sys.OK
		}
		bak := undoRoot + real
		if e := core.DownMkdirAll(c, gopath.Dir(bak), 0o777); e != sys.OK {
			return e
		}
		if _, e := core.DownPath2(c, sys.SYS_rename, real, bak); e != sys.OK {
			return e
		}
		undo = append(undo, func() {
			core.DownPath(c, sys.SYS_unlink, real)
			core.DownPath2(c, sys.SYS_rename, bak, real)
		})
		return sys.OK
	}

	for _, path := range writes {
		mark := core.StageMark(c)
		a.mu.Lock()
		isDir := a.entries[path].isDir
		a.mu.Unlock()
		var err sys.Errno
		if isDir {
			if _, e := core.DownStat(c, path); e != sys.OK {
				err = core.DownMkdirAll(c, path, 0o777)
				if err == sys.OK {
					dir := path
					undo = append(undo, func() { core.DownPath(c, sys.SYS_rmdir, dir) })
				}
			}
		} else if st, e := core.DownLstat(c, a.shadow(path)); e == sys.OK && st.Mode&sys.S_IFMT == sys.S_IFLNK {
			// Recreate symbolic links as links.
			buf, e2 := core.StageAlloc(c, sys.PathMax)
			if e2 != sys.OK {
				err = e2
			} else {
				rv, e3 := core.DownPath(c, sys.SYS_readlink, a.shadow(path), buf, sys.PathMax)
				if e3 != sys.OK {
					err = e3
				} else {
					target := make([]byte, rv[0])
					c.CopyIn(buf, target)
					if err = moveAside(path); err == sys.OK {
						_, err = core.DownPath2(c, sys.SYS_symlink, string(target), path)
					}
				}
			}
		} else if err = moveAside(path); err == sys.OK {
			if err = core.DownCopyFile(c, a.shadow(path), path); err != sys.OK {
				// Remove the partial copy so the inverse rename restores
				// the original cleanly.
				core.DownPath(c, sys.SYS_unlink, path)
			}
		}
		core.StageRelease(c, mark)
		if err != sys.OK {
			return rollback(err)
		}
	}
	// Longer paths first for removals (children before parents). A file
	// removal is itself a rename into the undo area, so it is reversible;
	// directory removals queue a re-mkdir.
	sort.Slice(removes, func(i, j int) bool { return len(removes[i]) > len(removes[j]) })
	for _, path := range removes {
		a.mu.Lock()
		isDir := a.entries[path].isDir
		a.mu.Unlock()
		var err sys.Errno
		if isDir {
			if _, err = core.DownPath(c, sys.SYS_rmdir, path); err == sys.OK {
				dir := path
				undo = append(undo, func() { core.DownMkdirAll(c, dir, 0o777) })
			}
		} else {
			err = moveAside(path)
		}
		if err != sys.OK {
			return rollback(err)
		}
	}
	clearMarker()
	return sys.OK
}
