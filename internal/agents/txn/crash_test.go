package txn_test

import (
	"fmt"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/txn"
	"interpose/internal/core"
	"interpose/internal/fault"
	"interpose/internal/journal"
	"interpose/internal/kernel"
)

// The crash-consistency contract under test: a transactional commit
// interrupted by a world crash must, after journal replay plus
// txn.Recover, leave the real tree either fully committed or fully
// rolled back — never a mixture.

const nCrashFiles = 12

// buildCrashWorld deterministically populates /data with files the
// transaction will overwrite and remove; two invocations yield
// ino-identical worlds, so one's journal replays onto the other.
func buildCrashWorld(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := agenttest.World(t)
	if err := k.MkdirAll("/data", 0o777); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nCrashFiles; i++ {
		k.WriteFile(fmt.Sprintf("/data/keep%02d", i), []byte(fmt.Sprintf("old-%02d\n", i)), 0o644)
		k.WriteFile(fmt.Sprintf("/data/gone%02d", i), []byte("doomed\n"), 0o644)
	}
	return k
}

// crashScript overwrites every keep file, removes every gone file and
// creates a new file per index — enough distinct objects that a torn
// commit would be visible as a mixture.
func crashScript() string {
	s := ""
	for i := 0; i < nCrashFiles; i++ {
		s += fmt.Sprintf("echo new-%02d > /data/keep%02d; rm /data/gone%02d; echo made > /data/new%02d; ",
			i, i, i, i)
	}
	return s + "true"
}

// classify reports the state of /data: "committed", "rolledback", or a
// description of the first inconsistency of a torn state.
func classify(k *kernel.Kernel) string {
	committed, rolled := true, true
	detail := ""
	note := func(s string) {
		if detail == "" {
			detail = s
		}
	}
	for i := 0; i < nCrashFiles; i++ {
		keep, _ := k.ReadFile(fmt.Sprintf("/data/keep%02d", i))
		_, goneErr := k.ReadFile(fmt.Sprintf("/data/gone%02d", i))
		_, newErr := k.ReadFile(fmt.Sprintf("/data/new%02d", i))
		if string(keep) != fmt.Sprintf("new-%02d\n", i) || goneErr == nil || newErr != nil {
			committed = false
			note(fmt.Sprintf("index %d not committed: keep=%q gone-present=%v new-present=%v",
				i, keep, goneErr == nil, newErr == nil))
		}
		if string(keep) != fmt.Sprintf("old-%02d\n", i) || goneErr != nil || newErr == nil {
			rolled = false
			note(fmt.Sprintf("index %d not rolled back: keep=%q gone-present=%v new-present=%v",
				i, keep, goneErr == nil, newErr == nil))
		}
	}
	switch {
	case committed:
		return "committed"
	case rolled:
		return "rolledback"
	default:
		return "torn: " + detail
	}
}

// TestTxnCrashMidCommitRecovers drives the full loop across seeds and
// two crash profiles: rename=crash fires only inside Commit's
// move-aside phase (always after the durable commit point, so recovery
// must roll forward to a full commit), while write=crash can land
// anywhere — during the workload's shadow writes, on the marker write
// itself, or during commit-time copying — so recovery must land on
// whichever side of the commit point the crash did.
func TestTxnCrashMidCommitRecovers(t *testing.T) {
	plans := []string{"rename=crash@0.12", "write=crash@0.004"}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, planSpec := range plans {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", planSpec, seed), func(t *testing.T) {
				runCrashCycle(t, fmt.Sprintf("seed=%d,%s", seed, planSpec))
			})
		}
	}
}

func runCrashCycle(t *testing.T, planSpec string) {
	k := buildCrashWorld(t)
	st := journal.NewMemStore(0)
	k.SetJournal(journal.NewWriter(st, 1))

	plan, err := fault.ParsePlan(planSpec)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	inj.OnCrash(func(torn int) {
		st.Freeze(torn)
		k.Crash()
	})
	k.SetInjector(inj)

	a, err := txn.New("/tmp/shadow", true)
	if err != nil {
		t.Fatal(err)
	}
	status, out, err := core.Run(k, []core.Agent{a}, "/bin/sh",
		[]string{"sh", "-c", crashScript()}, []string{"PATH=/bin"})
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Crashed() {
		// The seed never fired; the commit ran to completion and the live
		// world must show it in full.
		if got := classify(k); got != "committed" {
			t.Fatalf("uncrashed run: %s (status %#x, out %q)", got, status, out)
		}
		return
	}

	// Recovery: an identical fresh world, the frozen journal replayed onto
	// it, then the interrupted transaction resolved.
	k2 := buildCrashWorld(t)
	if _, _, _, err := k2.ReplayJournal(st.Bytes()); err != nil {
		t.Fatal(err)
	}
	if bad := k2.FS().Check(); len(bad) != 0 {
		t.Fatalf("fsck after replay: %v", bad)
	}
	rolledForward, err := txn.Recover(k2, "/tmp/shadow")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("crashed; recovery rolled forward=%v", rolledForward)
	if bad := k2.FS().Check(); len(bad) != 0 {
		t.Fatalf("fsck after recover: %v", bad)
	}
	got := classify(k2)
	want := "rolledback"
	if rolledForward {
		want = "committed"
	}
	if got != want {
		t.Fatalf("recovered state %s, want %s (status %#x, out %q)", got, want, status, out)
	}
}
