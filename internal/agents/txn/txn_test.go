package txn_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/txn"
	"interpose/internal/core"
	"interpose/internal/kernel"
)

func setup(t *testing.T) *kernel.Kernel {
	k := agenttest.World(t)
	k.MkdirAll("/work", 0o777)
	k.WriteFile("/work/existing.txt", []byte("original\n"), 0o644)
	k.WriteFile("/work/victim.txt", []byte("doomed\n"), 0o644)
	return k
}

func agent(t *testing.T, commit bool) *txn.Agent {
	a, err := txn.New("/tmp/shadow", commit)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTxnAbortDiscardsEverything(t *testing.T) {
	k := setup(t)
	a := agent(t, false)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo changed > /work/existing.txt; echo new > /work/new.txt; rm /work/victim.txt; cat /work/existing.txt /work/new.txt")
	if st != 0 {
		t.Fatalf("txn run: %d %q", st, out)
	}
	// Inside the transaction the changes were visible.
	if !strings.Contains(out, "changed") || !strings.Contains(out, "new") {
		t.Fatalf("changes invisible inside txn: %q", out)
	}
	// After abort nothing persisted.
	if data, _ := k.ReadFile("/work/existing.txt"); string(data) != "original\n" {
		t.Fatalf("existing mutated: %q", data)
	}
	if _, err := k.ReadFile("/work/new.txt"); err == nil {
		t.Fatal("new file persisted after abort")
	}
	if _, err := k.ReadFile("/work/victim.txt"); err != nil {
		t.Fatal("deleted file gone after abort")
	}
}

func TestTxnCommitAppliesEverything(t *testing.T) {
	k := setup(t)
	a := agent(t, true)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo changed > /work/existing.txt; echo new > /work/new.txt; rm /work/victim.txt; mkdir /work/subdir; echo deep > /work/subdir/deep.txt")
	if st != 0 {
		t.Fatal("txn run failed")
	}
	if data, _ := k.ReadFile("/work/existing.txt"); string(data) != "changed\n" {
		t.Fatalf("existing not committed: %q", data)
	}
	if data, _ := k.ReadFile("/work/new.txt"); string(data) != "new\n" {
		t.Fatalf("new not committed: %q", data)
	}
	if _, err := k.ReadFile("/work/victim.txt"); err == nil {
		t.Fatal("victim survived commit")
	}
	if data, _ := k.ReadFile("/work/subdir/deep.txt"); string(data) != "deep\n" {
		t.Fatalf("nested dir not committed: %q", data)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	k := setup(t)
	a := agent(t, false)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo v1 > /work/f; cat /work/f; echo v2 > /work/f; cat /work/f")
	if st != 0 || !strings.Contains(out, "v1") || !strings.Contains(out, "v2") {
		t.Fatalf("read-your-writes broken: %d %q", st, out)
	}
}

func TestTxnWhiteoutHidesFile(t *testing.T) {
	k := setup(t)
	a := agent(t, false)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"rm /work/victim.txt; cat /work/victim.txt || echo GONE")
	if st != 0 {
		t.Fatalf("run: %d %q", st, out)
	}
	if !strings.Contains(out, "GONE") {
		t.Fatalf("victim still readable inside txn: %q", out)
	}
	// And it disappears from the directory listing.
	a2 := agent(t, false)
	st, out = agenttest.Run(t, k, []core.Agent{a2}, "sh", "-c",
		"rm /work/victim.txt; ls /work")
	if st != 0 {
		t.Fatalf("run: %d %q", st, out)
	}
	if strings.Contains(out, "victim.txt") {
		t.Fatalf("victim still listed inside txn: %q", out)
	}
	if !strings.Contains(out, "existing.txt") {
		t.Fatalf("real files missing from listing: %q", out)
	}
}

func TestTxnListingShowsCreations(t *testing.T) {
	k := setup(t)
	a := agent(t, false)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo x > /work/created.txt; ls /work")
	if st != 0 || !strings.Contains(out, "created.txt") {
		t.Fatalf("created file not listed: %d %q", st, out)
	}
	if !strings.Contains(out, "existing.txt") {
		t.Fatalf("real files vanished from listing: %q", out)
	}
}

func TestTxnChangesReport(t *testing.T) {
	k := setup(t)
	a := agent(t, false)
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo n > /work/new.txt; rm /work/victim.txt")
	writes, removes := a.Changes()
	if len(writes) != 1 || writes[0] != "/work/new.txt" {
		t.Fatalf("writes = %v", writes)
	}
	if len(removes) != 1 || removes[0] != "/work/victim.txt" {
		t.Fatalf("removes = %v", removes)
	}
}

func TestTxnNestedTransactions(t *testing.T) {
	// A transactional invocation within another: the inner commit lands
	// in the outer transaction's view; the outer abort discards it all.
	k := setup(t)
	outer := agent(t, false)
	inner, err := txn.New("/tmp/shadow-inner", true)
	if err != nil {
		t.Fatal(err)
	}
	st, out := agenttest.Run(t, k, []core.Agent{outer, inner}, "sh", "-c",
		"echo nested > /work/nested.txt; cat /work/nested.txt")
	if st != 0 || !strings.Contains(out, "nested") {
		t.Fatalf("inner txn: %d %q", st, out)
	}
	// The inner commit wrote through to the outer layer...
	writes, _ := outer.Changes()
	found := false
	for _, w := range writes {
		if w == "/work/nested.txt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inner commit did not reach outer txn: %v", writes)
	}
	// ...but the outer abort keeps the real filesystem clean.
	if _, err := k.ReadFile("/work/nested.txt"); err == nil {
		t.Fatal("nested write escaped the outer transaction")
	}
}

func TestTxnRenameWithin(t *testing.T) {
	k := setup(t)
	a := agent(t, true)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"mv /work/existing.txt /work/renamed.txt")
	if st != 0 {
		t.Fatal("mv failed")
	}
	if _, err := k.ReadFile("/work/existing.txt"); err == nil {
		t.Fatal("source survived committed rename")
	}
	if data, _ := k.ReadFile("/work/renamed.txt"); string(data) != "original\n" {
		t.Fatalf("renamed contents: %q", data)
	}
}
