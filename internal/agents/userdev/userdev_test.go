package userdev_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/userdev"
	"interpose/internal/core"
	"interpose/internal/kernel"
)

func setup(t *testing.T) (*kernel.Kernel, *userdev.Agent) {
	k := agenttest.World(t)
	a, err := userdev.New("/udev")
	if err != nil {
		t.Fatal(err)
	}
	return k, a
}

func TestDevicesAreListed(t *testing.T) {
	k, a := setup(t)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "/udev")
	if st != 0 {
		t.Fatalf("ls: %d %q", st, out)
	}
	for _, want := range []string{"rand", "fortune", "counter", "sink"} {
		if !strings.Contains(out, want) {
			t.Fatalf("device %q missing from listing:\n%s", want, out)
		}
	}
	// The directory does not exist without the agent: it is purely logical.
	st, _ = agenttest.Run(t, k, nil, "ls", "/udev")
	if st == 0 {
		t.Fatal("device directory exists without the agent")
	}
}

func TestFortuneRotates(t *testing.T) {
	k, a := setup(t)
	st, out1 := agenttest.Run(t, k, []core.Agent{a}, "cat", "/udev/fortune")
	if st != 0 || out1 == "" {
		t.Fatalf("fortune 1: %d %q", st, out1)
	}
	_, out2 := agenttest.Run(t, k, []core.Agent{a}, "cat", "/udev/fortune")
	if out1 == out2 {
		t.Fatalf("fortune did not rotate: %q", out1)
	}
}

func TestCounterCounts(t *testing.T) {
	k, a := setup(t)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"head /udev/counter; head /udev/counter")
	if st != 0 {
		t.Fatalf("counter: %d %q", st, out)
	}
	// Each read increments; head reads once per open here.
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatalf("counter output: %q", out)
	}
}

func TestSinkSwallowsAndCounts(t *testing.T) {
	k, a := setup(t)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo twelve bytes > /udev/sink")
	if st != 0 {
		t.Fatal("sink write failed")
	}
	if a.Sunk() != int64(len("twelve bytes\n")) {
		t.Fatalf("sunk = %d", a.Sunk())
	}
}

func TestRandIsDeterministicPerOpen(t *testing.T) {
	k, a := setup(t)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"head /udev/rand > /tmp/r1; head /udev/rand > /tmp/r2")
	if st != 0 {
		t.Fatalf("rand reads failed: %q", out)
	}
	r1, err1 := k.ReadFile("/tmp/r1")
	r2, err2 := k.ReadFile("/tmp/r2")
	if err1 != nil || err2 != nil || len(r1) == 0 {
		t.Fatalf("rand output: %v %v %d", err1, err2, len(r1))
	}
	if string(r1) != string(r2) {
		t.Fatal("rand stream not reproducible across opens")
	}
}

func TestStatOfSyntheticDevice(t *testing.T) {
	k, a := setup(t)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "-l", "/udev/rand")
	if st != 0 || !strings.Contains(out, "c") { // character device in mode string
		t.Fatalf("stat: %d %q", st, out)
	}
}

func TestWritesToDevicesDoNotTouchFS(t *testing.T) {
	k, a := setup(t)
	before := k.FS().NumInodes()
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo x > /udev/sink; cat /udev/fortune; head /udev/rand")
	if after := k.FS().NumInodes(); after != before {
		t.Fatalf("synthetic devices leaked inodes: %d → %d", before, after)
	}
}
