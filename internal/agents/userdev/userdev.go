// Package userdev implements logical devices entirely in user space
// (paper §1.4, "Logical Devices Implemented Entirely in User Space"): the
// agent makes synthetic device files appear in the filesystem name space,
// serving their I/O from agent code. The kernel has no idea the devices
// exist — opens are anchored on /dev/null below, and every read, write
// and ioctl is handled by a derived open object.
//
// Built-in devices:
//
//	<dir>/rand    a deterministic pseudo-random byte stream
//	<dir>/fortune a rotating fortune file (each open reads the next saying)
//	<dir>/counter reads count up; writing resets the count
//	<dir>/sink    discards writes, counting the bytes
package userdev

import (
	"fmt"
	gopath "path"
	"strings"
	"sync"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// fortunes rotate through the fortune device.
var fortunes = []string{
	"The system interface is just a communication channel.\n",
	"Interposition: the known benefits, now at the system interface.\n",
	"Any problem can be solved by another level of indirection.\n",
	"Unmodified applications, unmodified kernel.\n",
}

// Agent serves synthetic devices under a directory.
type Agent struct {
	core.PathnameSet
	dir string

	mu      sync.Mutex
	counter uint32
	next    int   // next fortune
	sunk    int64 // bytes swallowed by sink
}

// New creates a userdev agent serving its devices under dir (absolute).
func New(dir string) (*Agent, error) {
	if !strings.HasPrefix(dir, "/") {
		return nil, fmt.Errorf("userdev: dir must be absolute")
	}
	a := &Agent{dir: gopath.Clean(dir)}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	return a, nil
}

// Sunk reports the bytes swallowed by the sink device.
func (a *Agent) Sunk() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sunk
}

// devNames lists the synthetic devices.
var devNames = []string{"rand", "fortune", "counter", "sink"}

// GetPN serves the device directory and its entries; everything else
// resolves normally.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	clean := path
	if strings.HasPrefix(path, "/") {
		clean = gopath.Clean(path)
	}
	if clean == a.dir {
		return &devDirPathname{a: a}, sys.OK
	}
	if strings.HasPrefix(clean, a.dir+"/") {
		name := clean[len(a.dir)+1:]
		for _, d := range devNames {
			if name == d {
				return &devPathname{a: a, name: name}, sys.OK
			}
		}
		return nil, sys.ENOENT
	}
	return a.PathnameSet.GetPN(c, path, op)
}

// anchorOpen opens /dev/null below to obtain a real descriptor slot for a
// synthetic object.
func anchorOpen(c sys.Ctx) (sys.Retval, sys.Errno) {
	return core.DownPath(c, sys.SYS_open, "/dev/null", sys.O_RDWR)
}

// fakeStat fills a character-device stat for synthetic objects.
func fakeStat(c sys.Ctx, statAddr sys.Word, ino, size uint32) (sys.Retval, sys.Errno) {
	st := sys.Stat{
		Dev: 0x7fff, Ino: ino, Mode: sys.S_IFCHR | 0o666, Nlink: 1,
		Rdev: 0x7f00 | ino, Size: size, Blksize: sys.PageSize,
	}
	var b [sys.StatSize]byte
	st.Encode(b[:])
	return sys.Retval{}, c.CopyOut(statAddr, b[:])
}

// devPathname is the pathname object for one synthetic device.
type devPathname struct {
	a    *Agent
	name string
}

func (p *devPathname) String() string { return p.a.dir + "/" + p.name }

// Open anchors a descriptor and attaches the device's open object.
func (p *devPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	rv, err := anchorOpen(c)
	if err != sys.OK {
		return rv, nil, err
	}
	a := p.a
	var oo core.OpenObject
	switch p.name {
	case "rand":
		o := &randDev{}
		o.Ref()
		oo = o
	case "fortune":
		a.mu.Lock()
		text := fortunes[a.next%len(fortunes)]
		a.next++
		a.mu.Unlock()
		o := &textDev{data: []byte(text)}
		o.Ref()
		oo = o
	case "counter":
		o := &counterDev{a: a}
		o.Ref()
		oo = o
	case "sink":
		o := &sinkDev{a: a}
		o.Ref()
		oo = o
	}
	return rv, oo, sys.OK
}

// Stat reports synthetic device metadata.
func (p *devPathname) Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return fakeStat(c, statAddr, devIno(p.name), 0)
}

// Lstat is Stat (devices are not symlinks).
func (p *devPathname) Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return p.Stat(c, statAddr)
}

// Access always succeeds for read/write.
func (p *devPathname) Access(c sys.Ctx, mode int) (sys.Retval, sys.Errno) {
	if mode&sys.X_OK != 0 {
		return sys.Retval{}, sys.EACCES
	}
	return sys.Retval{}, sys.OK
}

// The remaining name-space operations are meaningless on synthetic
// devices.
func (p *devPathname) Unlink(c sys.Ctx) (sys.Retval, sys.Errno) { return sys.Retval{}, sys.EPERM }
func (p *devPathname) Rmdir(c sys.Ctx) (sys.Retval, sys.Errno)  { return sys.Retval{}, sys.ENOTDIR }
func (p *devPathname) Mkdir(c sys.Ctx, m uint32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devPathname) Mknod(c sys.Ctx, m uint32, d sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devPathname) Symlink(c sys.Ctx, t string) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devPathname) Link(c sys.Ctx, n core.Pathname) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devPathname) Rename(c sys.Ctx, to core.Pathname) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devPathname) Chmod(c sys.Ctx, m uint32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devPathname) Chown(c sys.Ctx, u, g sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devPathname) Utimes(c sys.Ctx, tv sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.OK
}
func (p *devPathname) Truncate(c sys.Ctx, l int32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.OK
}
func (p *devPathname) Readlink(c sys.Ctx, b sys.Word, n int) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EINVAL
}
func (p *devPathname) Chdir(c sys.Ctx) (sys.Retval, sys.Errno)  { return sys.Retval{}, sys.ENOTDIR }
func (p *devPathname) Chroot(c sys.Ctx) (sys.Retval, sys.Errno) { return sys.Retval{}, sys.ENOTDIR }
func (p *devPathname) Exec(c sys.Ctx, a1, a2 sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EACCES
}

func devIno(name string) uint32 {
	for i, d := range devNames {
		if d == name {
			return 0xDE0 + uint32(i)
		}
	}
	return 0xDEF
}

// devDirPathname is the pathname object for the device directory itself.
type devDirPathname struct {
	a *Agent
}

func (p *devDirPathname) String() string { return p.a.dir }

// Open yields a directory object listing the synthetic devices.
func (p *devDirPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	if flags&sys.O_ACCMODE != sys.O_RDONLY {
		return sys.Retval{}, nil, sys.EISDIR
	}
	rv, err := anchorOpen(c)
	if err != sys.OK {
		return rv, nil, err
	}
	d := &devDir{}
	d.Ref()
	d.BindDirectory(d)
	return rv, d, sys.OK
}

// Stat reports a directory.
func (p *devDirPathname) Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	st := sys.Stat{Dev: 0x7fff, Ino: 0xDD0, Mode: sys.S_IFDIR | 0o755, Nlink: 2, Blksize: sys.PageSize}
	var b [sys.StatSize]byte
	st.Encode(b[:])
	return sys.Retval{}, c.CopyOut(statAddr, b[:])
}

// Lstat is Stat.
func (p *devDirPathname) Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return p.Stat(c, statAddr)
}

// Access allows read and search.
func (p *devDirPathname) Access(c sys.Ctx, mode int) (sys.Retval, sys.Errno) {
	if mode&sys.W_OK != 0 {
		return sys.Retval{}, sys.EACCES
	}
	return sys.Retval{}, sys.OK
}

// Chdir cannot enter a purely logical directory (it has no underlying
// inode); report the limitation honestly.
func (p *devDirPathname) Chdir(c sys.Ctx) (sys.Retval, sys.Errno)  { return sys.Retval{}, sys.EACCES }
func (p *devDirPathname) Chroot(c sys.Ctx) (sys.Retval, sys.Errno) { return sys.Retval{}, sys.EACCES }
func (p *devDirPathname) Unlink(c sys.Ctx) (sys.Retval, sys.Errno) { return sys.Retval{}, sys.EPERM }
func (p *devDirPathname) Rmdir(c sys.Ctx) (sys.Retval, sys.Errno)  { return sys.Retval{}, sys.EBUSY }
func (p *devDirPathname) Mkdir(c sys.Ctx, m uint32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devDirPathname) Mknod(c sys.Ctx, m uint32, d sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devDirPathname) Symlink(c sys.Ctx, t string) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EEXIST
}
func (p *devDirPathname) Link(c sys.Ctx, n core.Pathname) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devDirPathname) Rename(c sys.Ctx, to core.Pathname) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devDirPathname) Chmod(c sys.Ctx, m uint32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devDirPathname) Chown(c sys.Ctx, u, g sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}
func (p *devDirPathname) Utimes(c sys.Ctx, tv sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.OK
}
func (p *devDirPathname) Truncate(c sys.Ctx, l int32) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EISDIR
}
func (p *devDirPathname) Readlink(c sys.Ctx, b sys.Word, n int) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EINVAL
}
func (p *devDirPathname) Exec(c sys.Ctx, a1, a2 sys.Word) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EACCES
}

// devDir lists the synthetic devices.
type devDir struct {
	core.Directory
	pos int
}

// NextDirentry implements the logical listing.
func (d *devDir) NextDirentry(c sys.Ctx, fd int) (sys.Dirent, bool, sys.Errno) {
	switch {
	case d.pos == 0:
		d.pos++
		return sys.Dirent{Ino: 0xDD0, Name: "."}, true, sys.OK
	case d.pos == 1:
		d.pos++
		return sys.Dirent{Ino: 0xDD0, Name: ".."}, true, sys.OK
	case d.pos-2 < len(devNames):
		name := devNames[d.pos-2]
		d.pos++
		return sys.Dirent{Ino: devIno(name), Name: name}, true, sys.OK
	}
	return sys.Dirent{}, false, sys.OK
}

// Rewind restarts the listing.
func (d *devDir) Rewind(c sys.Ctx, fd int) sys.Errno {
	d.pos = 0
	return sys.OK
}

// randDev is a deterministic pseudo-random stream (xorshift32 seeded per
// open), seekable by regenerating from the seed.
type randDev struct {
	core.BaseOpenObject
	state uint32
}

func (o *randDev) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if o.state == 0 {
		o.state = 0x9d2c5680
	}
	p := make([]byte, cnt)
	x := o.state
	for i := range p {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p[i] = byte(x)
	}
	o.state = x
	if e := c.CopyOut(buf, p); e != sys.OK {
		return sys.Retval{}, e
	}
	return sys.Retval{sys.Word(cnt)}, sys.OK
}

func (o *randDev) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return sys.Retval{}, sys.EPERM
}

func (o *randDev) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return fakeStat(c, statAddr, devIno("rand"), 0)
}

// textDev serves a fixed text with normal file semantics.
type textDev struct {
	core.BaseOpenObject
	data []byte
	off  int
}

func (o *textDev) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if o.off >= len(o.data) {
		return sys.Retval{0}, sys.OK
	}
	end := o.off + cnt
	if end > len(o.data) {
		end = len(o.data)
	}
	if e := c.CopyOut(buf, o.data[o.off:end]); e != sys.OK {
		return sys.Retval{}, e
	}
	n := end - o.off
	o.off = end
	return sys.Retval{sys.Word(n)}, sys.OK
}

func (o *textDev) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	switch whence {
	case sys.SEEK_SET:
		o.off = int(off)
	case sys.SEEK_CUR:
		o.off += int(off)
	case sys.SEEK_END:
		o.off = len(o.data) + int(off)
	default:
		return sys.Retval{}, sys.EINVAL
	}
	if o.off < 0 {
		o.off = 0
	}
	return sys.Retval{sys.Word(o.off)}, sys.OK
}

func (o *textDev) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return fakeStat(c, statAddr, devIno("fortune"), uint32(len(o.data)))
}

// counterDev reads an incrementing decimal counter; writes reset it.
type counterDev struct {
	core.BaseOpenObject
	a *Agent
}

func (o *counterDev) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	o.a.mu.Lock()
	o.a.counter++
	v := o.a.counter
	o.a.mu.Unlock()
	s := fmt.Sprintf("%d\n", v)
	if cnt < len(s) {
		s = s[:cnt]
	}
	if e := c.CopyOut(buf, []byte(s)); e != sys.OK {
		return sys.Retval{}, e
	}
	return sys.Retval{sys.Word(len(s))}, sys.OK
}

func (o *counterDev) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	o.a.mu.Lock()
	o.a.counter = 0
	o.a.mu.Unlock()
	return sys.Retval{sys.Word(cnt)}, sys.OK
}

func (o *counterDev) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return fakeStat(c, statAddr, devIno("counter"), 0)
}

// sinkDev swallows writes, counting them.
type sinkDev struct {
	core.BaseOpenObject
	a *Agent
}

func (o *sinkDev) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	return sys.Retval{0}, sys.OK // EOF
}

func (o *sinkDev) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	o.a.mu.Lock()
	o.a.sunk += int64(cnt)
	o.a.mu.Unlock()
	return sys.Retval{sys.Word(cnt)}, sys.OK
}

func (o *sinkDev) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	return fakeStat(c, statAddr, devIno("sink"), 0)
}
