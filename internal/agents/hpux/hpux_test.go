package hpux_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/hpux"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func TestVariantBinaryFailsNatively(t *testing.T) {
	// Without the emulator, the HP-UX binary's time(13) call lands on the
	// native fchdir and misbehaves.
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, nil, "hpuxdate")
	if st == 0 {
		t.Fatalf("variant binary ran natively?! out=%q", out)
	}
}

func TestVariantBinaryRunsUnderEmulator(t *testing.T) {
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, []core.Agent{hpux.New()}, "hpuxdate")
	if st != 0 {
		t.Fatalf("emulated run failed: %d %q", st, out)
	}
	if !strings.Contains(out, "hpux time: ") {
		t.Fatalf("time output missing: %q", out)
	}
	if !strings.Contains(out, "hpux stat: ino=") || !strings.Contains(out, "mode=644") {
		t.Fatalf("stat output wrong: %q", out)
	}
}

func TestEmulatorPassesNativeCallsThrough(t *testing.T) {
	k := agenttest.World(t)
	st, out := agenttest.Run(t, k, []core.Agent{hpux.New()}, "echo", "native still works")
	if st != 0 || out != "native still works\n" {
		t.Fatalf("%d %q", st, out)
	}
}

func TestStatLayoutRoundTrip(t *testing.T) {
	in := sys.Stat{
		Dev: 1, Ino: 42, Mode: sys.S_IFREG | 0o755, Nlink: 2,
		UID: 100, GID: 200, Size: 12345,
		Mtime: sys.Timeval{Sec: 1000}, Ctime: sys.Timeval{Sec: 2000},
	}
	var b [hpux.StatSize]byte
	hpux.EncodeStat(in, b[:])
	out := hpux.DecodeStat(b[:])
	if out.Ino != 42 || out.Mode != uint32(uint16(in.Mode)) || out.Size != 12345 ||
		out.UID != 100 || out.GID != 200 || out.Mtime.Sec != 1000 {
		t.Fatalf("round trip: %+v", out)
	}
}
