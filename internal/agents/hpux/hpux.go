// Package hpux implements an emulator for a variant operating system's
// system call interface (paper §1.4, "Emulation of Other Operating
// Systems"): binaries compiled against an HP-UX-flavoured ABI run
// unmodified on the 4.3BSD system underneath. Most call numbers coincide,
// as they did between the UNIX descendants of the era; the agent
// intercepts and translates the ones that differ:
//
//   - time(2), call 13, which 4.3BSD does not have (its 13 is fchdir):
//     emulated with gettimeofday.
//   - stat(2), call 18 with a different (packed, 16-bit field) struct
//     layout: translated to the native call 38 and layout.
//
// Everything else passes straight through to the native interface.
package hpux

import (
	"encoding/binary"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// HP-UX-flavoured call numbers that differ from 4.3BSD.
const (
	SysTime = 13 // time(tloc) — native 13 is fchdir
	SysStat = 18 // stat(path, buf) with the packed layout — native 18 is unused
)

// StatSize is the size of the HP-UX-flavoured packed stat structure.
const StatSize = 28

// EncodeStat packs a native stat into the HP-UX layout: 16-bit mode,
// nlink, uid and gid, and bare second timestamps.
func EncodeStat(st sys.Stat, b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], st.Dev)
	le.PutUint32(b[4:], st.Ino)
	le.PutUint16(b[8:], uint16(st.Mode))
	le.PutUint16(b[10:], uint16(st.Nlink))
	le.PutUint16(b[12:], uint16(st.UID))
	le.PutUint16(b[14:], uint16(st.GID))
	le.PutUint32(b[16:], st.Size)
	le.PutUint32(b[20:], st.Mtime.Sec)
	le.PutUint32(b[24:], st.Ctime.Sec)
}

// DecodeStat unpacks the HP-UX layout (for tests and variant binaries).
func DecodeStat(b []byte) sys.Stat {
	le := binary.LittleEndian
	return sys.Stat{
		Dev:   le.Uint32(b[0:]),
		Ino:   le.Uint32(b[4:]),
		Mode:  uint32(le.Uint16(b[8:])),
		Nlink: uint32(le.Uint16(b[10:])),
		UID:   uint32(le.Uint16(b[12:])),
		GID:   uint32(le.Uint16(b[14:])),
		Size:  le.Uint32(b[16:]),
		Mtime: sys.Timeval{Sec: le.Uint32(b[20:])},
		Ctime: sys.Timeval{Sec: le.Uint32(b[24:])},
	}
}

// Agent is the HP-UX system interface emulator.
type Agent struct {
	core.Numeric
}

// New creates the emulator agent.
func New() *Agent {
	a := &Agent{}
	a.RegisterInterest(SysTime)
	a.RegisterInterest(SysStat)
	return a
}

// Syscall translates the variant calls onto the native interface.
func (a *Agent) Syscall(c sys.Ctx, num int, args sys.Args) (sys.Retval, sys.Errno) {
	switch num {
	case SysTime:
		return a.time(c, args[0])
	case SysStat:
		return a.stat(c, args[0], args[1])
	}
	return core.Down(c, num, args)
}

// time emulates HP-UX time(2) with native gettimeofday.
func (a *Agent) time(c sys.Ctx, tloc sys.Word) (sys.Retval, sys.Errno) {
	mark := core.StageMark(c)
	defer core.StageRelease(c, mark)
	tvAddr, err := core.StageAlloc(c, sys.TimevalSize)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if _, err := core.Down(c, sys.SYS_gettimeofday, sys.Args{tvAddr, 0}); err != sys.OK {
		return sys.Retval{}, err
	}
	var b [sys.TimevalSize]byte
	if e := c.CopyIn(tvAddr, b[:]); e != sys.OK {
		return sys.Retval{}, e
	}
	sec := sys.DecodeTimeval(b[:]).Sec
	if tloc != 0 {
		var ob [4]byte
		binary.LittleEndian.PutUint32(ob[:], sec)
		if e := c.CopyOut(tloc, ob[:]); e != sys.OK {
			return sys.Retval{}, e
		}
	}
	return sys.Retval{sec}, sys.OK
}

// stat translates the variant stat call and structure onto the native one.
func (a *Agent) stat(c sys.Ctx, pathAddr, bufAddr sys.Word) (sys.Retval, sys.Errno) {
	mark := core.StageMark(c)
	defer core.StageRelease(c, mark)
	nativeAddr, err := core.StageAlloc(c, sys.StatSize)
	if err != sys.OK {
		return sys.Retval{}, err
	}
	if _, err := core.Down(c, sys.SYS_stat, sys.Args{pathAddr, nativeAddr}); err != sys.OK {
		return sys.Retval{}, err
	}
	var nb [sys.StatSize]byte
	if e := c.CopyIn(nativeAddr, nb[:]); e != sys.OK {
		return sys.Retval{}, e
	}
	var hb [StatSize]byte
	EncodeStat(sys.DecodeStat(nb[:]), hb[:])
	return sys.Retval{}, c.CopyOut(bufAddr, hb[:])
}
