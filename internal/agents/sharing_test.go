package agents_test

import (
	"strings"
	"sync"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/monitor"
	"interpose/internal/agents/union"
	"interpose/internal/core"
	"interpose/internal/sys"
)

// TestAgentServesMultipleClientTrees is the paper's Figure 1-4: one agent
// instance provides the system interface to several independent client
// process trees at once, sharing state across them.
func TestAgentServesMultipleClientTrees(t *testing.T) {
	k := agenttest.World(t)
	mon := monitor.New(false)

	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := core.Launch(k, []core.Agent{mon}, "/bin/syscount",
				[]string{"syscount", "200", "getpid"}, nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			if st := k.WaitExit(p); sys.WExitStatus(st) != 0 {
				errs <- "bad exit"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := mon.Count(sys.SYS_getpid); got < 800 {
		t.Fatalf("shared agent saw %d getpids, want >= 800 across the trees", got)
	}
	if mon.Count(sys.SYS_exit) < 4 {
		t.Fatalf("exits seen = %d", mon.Count(sys.SYS_exit))
	}
}

// TestConcurrentClientsUnderUnion hammers one union agent from several
// concurrent process trees — exercised under -race by the test suite.
func TestConcurrentClientsUnderUnion(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/srcdir", 0o777)
	k.MkdirAll("/objdir", 0o777)
	k.WriteFile("/srcdir/shared.txt", []byte("shared\n"), 0o644)
	a, err := union.New("/u=/objdir:/srcdir")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := string(rune('a' + i))
			script := "cat /u/shared.txt > /u/out-" + name + "; ls /u | grep out-" + name
			p, err := core.Launch(k, []core.Agent{a}, "/bin/sh",
				[]string{"sh", "-c", script}, []string{"PATH=/bin"})
			if err != nil {
				fail <- err.Error()
				return
			}
			if st := k.WaitExit(p); sys.WExitStatus(st) != 0 {
				fail <- "exit != 0 for " + name
			}
		}()
	}
	wg.Wait()
	close(fail)
	for f := range fail {
		t.Fatal(f)
	}
	// Every client's output landed in the first member with the shared
	// content.
	for i := 0; i < 8; i++ {
		data, err := k.ReadFile("/objdir/out-" + string(rune('a'+i)))
		if err != nil || !strings.Contains(string(data), "shared") {
			t.Fatalf("client %d output: %v %q", i, err, data)
		}
	}
}
