// Package union implements the paper's union agent (§3.3.3): union
// directories, which make the contents of a search list of actual
// directories appear merged into a single logical directory. It is built
// from derived versions of exactly the toolkit objects the paper names: a
// pathname object that maps names under union directories onto the
// underlying member objects, a directory object that lists the logical
// contents via a new NextDirentry, and an initialization routine that
// accepts union directory specifications.
package union

import (
	"fmt"
	gopath "path"
	"sort"
	"strings"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Agent provides union directories to its clients.
type Agent struct {
	core.PathnameSet
	mounts []mount // longest mount points first
}

// mount is one union directory: a logical pathname backed by members.
type mount struct {
	point   string
	members []string
}

// New creates a union agent from a specification of the form
// "/mnt=/dirA:/dirB[;/mnt2=...]". The first member of each union is the
// preferred one: name conflicts resolve to it, and new names are created
// in it.
func New(spec string) (*Agent, error) {
	a := &Agent{}
	for _, ent := range strings.Split(spec, ";") {
		if ent == "" {
			continue
		}
		eq := strings.IndexByte(ent, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("union: bad mount %q (want /mnt=/a:/b)", ent)
		}
		m := mount{point: gopath.Clean(ent[:eq])}
		for _, d := range strings.Split(ent[eq+1:], ":") {
			if d != "" {
				m.members = append(m.members, gopath.Clean(d))
			}
		}
		if !strings.HasPrefix(m.point, "/") || len(m.members) == 0 {
			return nil, fmt.Errorf("union: bad mount %q", ent)
		}
		a.mounts = append(a.mounts, m)
	}
	if len(a.mounts) == 0 {
		return nil, fmt.Errorf("union: empty specification")
	}
	sort.Slice(a.mounts, func(i, j int) bool {
		return len(a.mounts[i].point) > len(a.mounts[j].point)
	})
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	return a, nil
}

// GetPN maps pathnames under union mount points to their underlying
// member objects; all other pathnames resolve normally.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	clean := path
	if strings.HasPrefix(path, "/") {
		clean = gopath.Clean(path)
	}
	for _, m := range a.mounts {
		if clean == m.point {
			return &unionDirPathname{BasePathname: core.BasePathname{P: m.members[0]}, m: m}, sys.OK
		}
		if strings.HasPrefix(clean, m.point+"/") {
			rel := clean[len(m.point)+1:]
			return &core.BasePathname{P: a.resolveMember(c, m, rel, op)}, sys.OK
		}
	}
	return a.PathnameSet.GetPN(c, path, op)
}

// resolveMember picks the member path for a name under a union mount:
// the first member in which the name exists, or the first member for
// creations and misses.
func (a *Agent) resolveMember(c sys.Ctx, m mount, rel string, op core.PathOp) string {
	statAddr, err := core.StageAlloc(c, sys.StatSize)
	if err != sys.OK {
		return m.members[0] + "/" + rel
	}
	for _, member := range m.members {
		cand := member + "/" + rel
		if _, err := core.DownPath(c, sys.SYS_lstat, cand, statAddr); err == sys.OK {
			return cand
		}
	}
	return m.members[0] + "/" + rel
}

// unionDirPathname is the pathname object for a union mount point itself.
// Metadata operations go to the first member; opening it produces the
// merged directory object.
type unionDirPathname struct {
	core.BasePathname // P is the first member
	m                 mount
}

// Open opens every member directory and returns a union directory open
// object over them. The first member's descriptor is the one the client
// sees.
func (u *unionDirPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	if flags&sys.O_ACCMODE != sys.O_RDONLY {
		return sys.Retval{}, nil, sys.EISDIR
	}
	rv, err := core.DownPath(c, sys.SYS_open, u.m.members[0], sys.O_RDONLY)
	if err != sys.OK {
		return sys.Retval{}, nil, err
	}
	fd := int(rv[0])
	d := newUnionDir(fd)
	for _, member := range u.m.members[1:] {
		mrv, err := core.DownPath(c, sys.SYS_open, member, sys.O_RDONLY)
		if err != sys.OK {
			continue // absent members simply contribute nothing
		}
		sub := core.NewDirectory(int(mrv[0]))
		d.subs = append(d.subs, sub)
		d.subFDs = append(d.subFDs, int(mrv[0]))
	}
	d.OnRelease = func(rc sys.Ctx) {
		for _, sfd := range d.subFDs {
			core.Down(rc, sys.SYS_close, sys.Args{sys.Word(sfd)})
		}
	}
	return rv, d, sys.OK
}

// unionDir is the union directory open object: a derived Directory whose
// NextDirentry iterates over the contents of each member directory,
// suppressing duplicate names (and, yes, that iteration is accomplished
// via the underlying NextDirentry implementations).
type unionDir struct {
	core.Directory
	subs   []*core.Directory
	subFDs []int
	cur    int
	seen   map[string]bool
}

func newUnionDir(fd int) *unionDir {
	d := &unionDir{seen: make(map[string]bool)}
	d.FD = fd
	d.Ref() // NewDirectory normally sets the initial reference
	d.BindDirectory(d)
	return d
}

// NextDirentry produces the next logical entry of the union.
func (d *unionDir) NextDirentry(c sys.Ctx, fd int) (sys.Dirent, bool, sys.Errno) {
	for {
		var ent sys.Dirent
		var ok bool
		var err sys.Errno
		if d.cur == 0 {
			ent, ok, err = d.Directory.NextDirentry(c, fd)
		} else if d.cur-1 < len(d.subs) {
			ent, ok, err = d.subs[d.cur-1].NextDirentry(c, d.subFDs[d.cur-1])
		} else {
			return sys.Dirent{}, false, sys.OK
		}
		if err != sys.OK {
			return sys.Dirent{}, false, err
		}
		if !ok {
			d.cur++
			continue
		}
		if d.cur > 0 && (ent.Name == "." || ent.Name == "..") {
			continue
		}
		if d.seen[ent.Name] {
			continue
		}
		d.seen[ent.Name] = true
		return ent, true, sys.OK
	}
}

// Rewind restarts the union iteration.
func (d *unionDir) Rewind(c sys.Ctx, fd int) sys.Errno {
	if err := d.Directory.Rewind(c, fd); err != sys.OK {
		return err
	}
	for i, s := range d.subs {
		if err := s.Rewind(c, d.subFDs[i]); err != sys.OK {
			return err
		}
	}
	d.cur = 0
	d.seen = make(map[string]bool)
	return sys.OK
}
