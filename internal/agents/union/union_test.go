package union_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/union"
	"interpose/internal/core"
	"interpose/internal/kernel"
)

func setup(t *testing.T) *kernel.Kernel {
	k := agenttest.World(t)
	for _, dir := range []string{"/srcdir", "/objdir"} {
		if err := k.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for path, content := range map[string]string{
		"/srcdir/common.txt": "from src\n",
		"/srcdir/source.c":   "int main;\n",
		"/objdir/common.txt": "from obj\n",
		"/objdir/object.o":   "OBJ\n",
		"/objdir/extra.o":    "OBJ2\n",
	} {
		if err := k.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

func agent(t *testing.T, spec string) *union.Agent {
	a, err := union.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestUnionMergesListing(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "/u")
	if st != 0 {
		t.Fatalf("ls: %d %q", st, out)
	}
	for _, want := range []string{"common.txt", "source.c", "object.o", "extra.o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
	// Duplicate name appears once.
	if strings.Count(out, "common.txt") != 1 {
		t.Fatalf("duplicate suppressed wrong:\n%s", out)
	}
}

func TestUnionFirstMemberWins(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/u/common.txt")
	if st != 0 || out != "from src\n" {
		t.Fatalf("cat: %d %q", st, out)
	}
	// Names only in the second member resolve there.
	st, out = agenttest.Run(t, k, []core.Agent{a}, "cat", "/u/object.o")
	if st != 0 || out != "OBJ\n" {
		t.Fatalf("cat: %d %q", st, out)
	}
}

func TestUnionCreatesInFirstMember(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo fresh > /u/new.txt")
	if st != 0 {
		t.Fatalf("write: %d %q", st, out)
	}
	data, err := k.ReadFile("/srcdir/new.txt")
	if err != nil || string(data) != "fresh\n" {
		t.Fatalf("create went to %v %q", err, data)
	}
	if _, err := k.ReadFile("/objdir/new.txt"); err == nil {
		t.Fatal("create leaked into second member")
	}
}

func TestUnionStatAndUnlink(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	// stat resolves through the union.
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "-l", "/u/object.o")
	if st != 0 || !strings.Contains(out, "object.o") {
		t.Fatalf("ls -l: %d %q", st, out)
	}
	// unlink of a second-member file removes the underlying object.
	st, _ = agenttest.Run(t, k, []core.Agent{a}, "rm", "/u/extra.o")
	if st != 0 {
		t.Fatal("rm failed")
	}
	if _, err := k.ReadFile("/objdir/extra.o"); err == nil {
		t.Fatal("underlying file still present")
	}
}

func TestUnionMissingFile(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "cat", "/u/nosuch")
	if st == 0 {
		t.Fatal("cat of missing union name succeeded")
	}
}

func TestUnionAbsentMember(t *testing.T) {
	k := setup(t)
	a := agent(t, "/u=/srcdir:/nonexistent:/objdir")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "/u")
	if st != 0 || !strings.Contains(out, "object.o") {
		t.Fatalf("ls with absent member: %d %q", st, out)
	}
}

func TestUnionGrepThroughPipe(t *testing.T) {
	// The paper's motivating use: union src and obj dirs for a build.
	k := setup(t)
	a := agent(t, "/u=/srcdir:/objdir")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "ls /u | grep .o")
	if st != 0 || !strings.Contains(out, "object.o") {
		t.Fatalf("pipeline over union: %d %q", st, out)
	}
}

func TestUnionBadSpec(t *testing.T) {
	for _, spec := range []string{"", "nomount", "/u=", "rel=/a"} {
		if _, err := union.New(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}
