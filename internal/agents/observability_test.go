package agents_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/trace"
	"interpose/internal/core"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// TestDevMetricsFromGuest checks the flight-recorder's in-world window:
// an unmodified guest binary reads /dev/metrics with plain read system
// calls and sees the kernel's live counters.
func TestDevMetricsFromGuest(t *testing.T) {
	k := agenttest.World(t)

	// Without a registry installed the device reports telemetry as off.
	st, out := agenttest.Run(t, k, nil, "cat", "/dev/metrics")
	if st != 0 {
		t.Fatalf("cat /dev/metrics: exit %d\n%s", st, out)
	}
	if !strings.Contains(out, "telemetry: disabled") {
		t.Fatalf("expected disabled banner, got:\n%s", out)
	}

	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)

	// Generate some traffic so the counters are non-zero by the time the
	// guest reads the device.
	if st, _ := agenttest.Run(t, k, nil, "echo", "hello"); st != 0 {
		t.Fatal("echo failed")
	}

	st, out = agenttest.Run(t, k, nil, "cat", "/dev/metrics")
	if st != 0 {
		t.Fatalf("cat /dev/metrics: exit %d\n%s", st, out)
	}
	if !strings.Contains(out, "telemetry: up") {
		t.Fatalf("expected live header, got:\n%s", out)
	}
	// The document must show real per-syscall rows — the writes echo
	// issued earlier. (cat's own first read renders the document, so the
	// read row only counts in later snapshots.)
	if !strings.Contains(out, sys.SyscallName(sys.SYS_write)) {
		t.Fatalf("expected a write row in:\n%s", out)
	}
	if reg.SyscallCount(sys.SYS_read) == 0 {
		t.Fatal("registry saw no reads")
	}
}

// TestLayerAttributionNames checks that per-layer attribution labels the
// kernel and each installed agent, and that every recorded syscall
// produced a kernel-or-layer attribution record.
func TestLayerAttributionNames(t *testing.T) {
	k := agenttest.World(t)
	reg := telemetry.NewRegistry()
	k.SetTelemetry(reg)

	stack := []core.Agent{nullagent.New(), trace.New()}
	if st, _ := agenttest.Run(t, k, stack, "sh", "-c", "echo hi > /tmp/obs.txt"); st != 0 {
		t.Fatal("workload failed")
	}

	snap := reg.Snapshot()
	if len(snap.Layers) == 0 {
		t.Fatal("no layer attribution recorded")
	}
	names := make(map[string]bool)
	for _, l := range snap.Layers {
		names[l.Name] = true
		if l.Calls == 0 {
			t.Fatalf("layer %q recorded with zero calls", l.Name)
		}
	}
	for _, want := range []string{"kernel", "nullagent", "trace"} {
		if !names[want] {
			t.Fatalf("missing layer %q in %v", want, snap.Layers)
		}
	}
	if snap.Total == 0 {
		t.Fatal("no syscalls recorded")
	}
}
