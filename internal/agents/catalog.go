// Package agents catalogs the interposition agents shipped with the
// toolkit, so loaders (cmd/agentrun, the examples, the experiment
// harness) can construct them from command-line specifications.
package agents

import (
	"fmt"
	"io"
	"strings"

	"interpose/internal/agents/crypt"
	"interpose/internal/agents/dfstrace"
	"interpose/internal/agents/faulty"
	"interpose/internal/agents/hpux"
	"interpose/internal/agents/monitor"
	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/sandbox"
	"interpose/internal/agents/timex"
	"interpose/internal/agents/trace"
	"interpose/internal/agents/txn"
	"interpose/internal/agents/union"
	"interpose/internal/agents/userdev"
	"interpose/internal/agents/zip"
	"interpose/internal/core"
)

// Instance is one constructed agent plus its loader-side reporting hook.
type Instance struct {
	Name  string
	Agent core.Agent
	// Finish, when non-nil, writes the agent's end-of-run report.
	Finish func(w io.Writer)
}

// Names lists the catalog's agent names with their argument syntax.
func Names() []string {
	return []string{
		"timex=SECONDS",
		"trace",
		"null",
		"monitor[=report]",
		"union=/mnt=/dirA:/dirB[;...]",
		"dfstrace",
		"sandbox=/writable[:emulate]",
		"txn=/shadowdir[:commit]",
		"zip=/subtree",
		"crypt=/subtree:KEY",
		"hpux",
		"userdev=/dir",
		"faulty=seed=N,CALL=ERRNO@PROB[,CALL:/prefix=short:N@PROB,...]",
	}
}

// New constructs an agent from a "name" or "name=argument" specification.
func New(spec string) (*Instance, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, '='); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "timex":
		a, err := timex.New(arg)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a}, nil
	case "trace":
		return &Instance{Name: name, Agent: trace.New()}, nil
	case "null", "time_symbolic":
		return &Instance{Name: name, Agent: nullagent.New()}, nil
	case "monitor":
		a := monitor.New(arg == "report")
		return &Instance{Name: name, Agent: a, Finish: func(w io.Writer) {
			fmt.Fprint(w, a.Report(0))
		}}, nil
	case "union":
		a, err := union.New(arg)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a}, nil
	case "dfstrace":
		cl := dfstrace.NewCollector()
		a := dfstrace.New(cl)
		return &Instance{Name: name, Agent: a, Finish: func(w io.Writer) {
			for _, r := range cl.Records() {
				fmt.Fprintln(w, r.String())
			}
		}}, nil
	case "sandbox":
		root := arg
		emulate := false
		if s, ok := strings.CutSuffix(root, ":emulate"); ok {
			root, emulate = s, true
		}
		a, err := sandbox.New(sandbox.Policy{WriteRoot: root, Emulate: emulate})
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a, Finish: func(w io.Writer) {
			for _, v := range a.Violations() {
				fmt.Fprintf(w, "sandbox: pid %d denied %s %s\n", v.PID, v.Action, v.Path)
			}
		}}, nil
	case "txn":
		shadow := arg
		commit := false
		if s, ok := strings.CutSuffix(shadow, ":commit"); ok {
			shadow, commit = s, true
		}
		a, err := txn.New(shadow, commit)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a, Finish: func(w io.Writer) {
			writes, removes := a.Changes()
			for _, p := range writes {
				fmt.Fprintf(w, "txn: would write %s\n", p)
			}
			for _, p := range removes {
				fmt.Fprintf(w, "txn: would remove %s\n", p)
			}
		}}, nil
	case "zip":
		a, err := zip.New(arg)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a}, nil
	case "crypt":
		i := strings.LastIndexByte(arg, ':')
		if i < 0 {
			return nil, fmt.Errorf("crypt: want /subtree:KEY")
		}
		a, err := crypt.New(arg[:i], arg[i+1:])
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a}, nil
	case "faulty":
		a, err := faulty.New(arg)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a, Finish: func(w io.Writer) {
			fmt.Fprint(w, a.Injector().Summary())
		}}, nil
	case "hpux":
		return &Instance{Name: name, Agent: hpux.New()}, nil
	case "userdev":
		a, err := userdev.New(arg)
		if err != nil {
			return nil, err
		}
		return &Instance{Name: name, Agent: a}, nil
	}
	return nil, fmt.Errorf("agents: unknown agent %q (known: %s)", name, strings.Join(Names(), ", "))
}
