package zip_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/zip"
	"interpose/internal/core"
	"interpose/internal/kernel"
)

func setup(t *testing.T) (*kernel.Kernel, *zip.Agent) {
	k := agenttest.World(t)
	k.MkdirAll("/arch", 0o777)
	a, err := zip.New("/arch")
	if err != nil {
		t.Fatal(err)
	}
	return k, a
}

func TestCompressRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		out, ok := zip.Decompress(zip.Compress(data))
		return ok && bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipTransparentWriteRead(t *testing.T) {
	k, a := setup(t)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo the quick brown fox > /arch/f.txt")
	if st != 0 {
		t.Fatal("write failed")
	}
	// On disk: compressed.
	raw, err := k.ReadFile("/arch/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if plain, ok := zip.Decompress(raw); !ok || string(plain) != "the quick brown fox\n" {
		t.Fatalf("stored form not compressed: %q", raw)
	}
	// Through the agent: plain.
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/arch/f.txt")
	if st != 0 || out != "the quick brown fox\n" {
		t.Fatalf("read back: %d %q", st, out)
	}
}

func TestZipCompressesLargeFile(t *testing.T) {
	k, a := setup(t)
	// Highly repetitive content compresses well.
	line := strings.Repeat("all work and no play makes jack a dull boy ", 4) + "\n"
	var script strings.Builder
	script.WriteString("echo start > /arch/big.txt;")
	for i := 0; i < 40; i++ {
		script.WriteString("echo " + strings.TrimSpace(line) + " >> /arch/big.txt;")
	}
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", script.String())
	if st != 0 {
		t.Fatal("append workload failed")
	}
	raw, _ := k.ReadFile("/arch/big.txt")
	plain, ok := zip.Decompress(raw)
	if !ok {
		t.Fatal("not stored compressed")
	}
	if len(raw) >= len(plain) {
		t.Fatalf("no space saved: stored %d, plain %d", len(raw), len(plain))
	}
}

func TestZipStatReportsPlainSize(t *testing.T) {
	k, a := setup(t)
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo 0123456789 > /arch/s.txt")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "ls", "-l", "/arch/s.txt")
	if st != 0 {
		t.Fatal("ls failed")
	}
	if !strings.Contains(out, " 11 ") {
		t.Fatalf("plain size not reported: %q", out)
	}
}

func TestZipOutsideSubtreeUntouched(t *testing.T) {
	k, a := setup(t)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo plain > /tmp/p.txt")
	if st != 0 {
		t.Fatal("write failed")
	}
	raw, _ := k.ReadFile("/tmp/p.txt")
	if string(raw) != "plain\n" {
		t.Fatalf("file outside subtree modified: %q", raw)
	}
}

func TestZipPreexistingPlainFileReadable(t *testing.T) {
	k, a := setup(t)
	k.WriteFile("/arch/old.txt", []byte("uncompressed legacy\n"), 0o644)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/arch/old.txt")
	if st != 0 || out != "uncompressed legacy\n" {
		t.Fatalf("legacy read: %d %q", st, out)
	}
}

func TestZipCopyThroughAgent(t *testing.T) {
	// cp reads through the agent and writes through the agent: both sides
	// transparent, destination compressed.
	k, a := setup(t)
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo payload > /arch/src.txt")
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "cp", "/arch/src.txt", "/arch/dst.txt")
	if st != 0 {
		t.Fatal("cp failed")
	}
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/arch/dst.txt")
	if st != 0 || out != "payload\n" {
		t.Fatalf("dst read: %d %q", st, out)
	}
	raw, _ := k.ReadFile("/arch/dst.txt")
	if _, ok := zip.Decompress(raw); !ok {
		t.Fatal("destination not stored compressed")
	}
}
