// Package zip implements a transparent data compression agent (paper
// §1.4): files under a configured subtree are stored compressed, but
// clients read and write them as plain data. Compressed files carry a
// small header recording the plain size; whole files are decompressed
// into an agent open object on open and recompressed on last close —
// the classic whole-file transparent compression design.
package zip

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	gopath "path"
	"strings"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// magic identifies a compressed file.
var magic = []byte("IZIP1\n")

// headerSize is the compressed-file header: magic plus plain size.
const headerSize = 10

// Compress produces the stored form of plain data.
func Compress(plain []byte) []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	var szb [4]byte
	binary.LittleEndian.PutUint32(szb[:], uint32(len(plain)))
	buf.Write(szb[:])
	zw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	zw.Write(plain)
	zw.Close()
	return buf.Bytes()
}

// Decompress recovers plain data from the stored form; ok is false if the
// data is not in compressed form.
func Decompress(stored []byte) (plain []byte, ok bool) {
	if len(stored) < headerSize || !bytes.HasPrefix(stored, magic) {
		return nil, false
	}
	size := binary.LittleEndian.Uint32(stored[len(magic):])
	zr := flate.NewReader(bytes.NewReader(stored[headerSize:]))
	plain, err := io.ReadAll(zr)
	if err != nil || uint32(len(plain)) != size {
		return nil, false
	}
	return plain, true
}

// storedPlainSize reads the plain size from a compressed header.
func storedPlainSize(header []byte) (uint32, bool) {
	if len(header) < headerSize || !bytes.HasPrefix(header, magic) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(header[len(magic):]), true
}

// Agent provides transparent compression under a subtree.
type Agent struct {
	core.PathnameSet
	root string
}

// New creates a compression agent covering the given absolute subtree.
func New(root string) (*Agent, error) {
	if !strings.HasPrefix(root, "/") {
		return nil, fmt.Errorf("zip: root must be absolute")
	}
	a := &Agent{root: gopath.Clean(root)}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	return a, nil
}

func (a *Agent) covers(path string) bool {
	clean := path
	if strings.HasPrefix(path, "/") {
		clean = gopath.Clean(path)
	}
	return clean == a.root || strings.HasPrefix(clean, a.root+"/")
}

// GetPN wraps covered pathnames in compressing pathname objects.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	if !a.covers(path) {
		return a.PathnameSet.GetPN(c, path, op)
	}
	return &zipPathname{BasePathname: core.BasePathname{P: path}, a: a}, sys.OK
}

// zipPathname opens covered files through compressing open objects and
// reports their plain sizes from stat.
type zipPathname struct {
	core.BasePathname
	a *Agent
}

// Open opens the real file and, if it is a compressed regular file (or a
// write open that will become one), interposes a buffering open object.
func (p *zipPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	rv, _, err := p.BasePathname.Open(c, flags, mode)
	if err != sys.OK {
		return rv, nil, err
	}
	fd := int(rv[0])
	st, err := downFstat(c, fd)
	if err != sys.OK || !st.IsReg() {
		return rv, nil, sys.OK // directories, devices: untouched
	}

	var plain []byte
	if flags&sys.O_TRUNC == 0 {
		stored, err := core.DownReadFile(c, p.P)
		if err != sys.OK {
			return rv, nil, sys.OK
		}
		if dec, ok := Decompress(stored); ok {
			plain = dec
		} else {
			plain = stored // pre-existing plain file: keep as-is
		}
	}
	oo := &zipOpen{a: p.a, path: p.P, data: plain, flags: flags, mode: st.Mode & 0o7777}
	oo.FD = fd
	oo.Ref()
	if flags&sys.O_APPEND != 0 {
		oo.off = int64(len(plain))
	}
	oo.OnRelease = func(rc sys.Ctx) {
		// Close cannot surface a write-back error; writeBack at least
		// guarantees the stored file is never left half-written.
		oo.writeBack(rc)
	}
	return rv, oo, sys.OK
}

// Stat reports the plain size of compressed files.
func (p *zipPathname) Stat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	rv, err := p.BasePathname.Stat(c, statAddr)
	if err != sys.OK {
		return rv, err
	}
	p.patchSize(c, statAddr)
	return rv, sys.OK
}

// Lstat reports the plain size of compressed files.
func (p *zipPathname) Lstat(c sys.Ctx, statAddr sys.Word) (sys.Retval, sys.Errno) {
	rv, err := p.BasePathname.Lstat(c, statAddr)
	if err != sys.OK {
		return rv, err
	}
	p.patchSize(c, statAddr)
	return rv, sys.OK
}

// patchSize rewrites the size field of a stat result with the plain size
// stored in the compressed header, if the file is compressed.
func (p *zipPathname) patchSize(c sys.Ctx, statAddr sys.Word) {
	var sb [sys.StatSize]byte
	if e := c.CopyIn(statAddr, sb[:]); e != sys.OK {
		return
	}
	st := sys.DecodeStat(sb[:])
	if !st.IsReg() || st.Size < headerSize {
		return
	}
	mark := core.StageMark(c)
	defer core.StageRelease(c, mark)
	rv, err := core.DownPath(c, sys.SYS_open, p.P, sys.O_RDONLY)
	if err != sys.OK {
		return
	}
	fd := rv[0]
	defer core.Down(c, sys.SYS_close, sys.Args{fd})
	hdrAddr, err := core.StageAlloc(c, headerSize)
	if err != sys.OK {
		return
	}
	hrv, err := core.Down(c, sys.SYS_read, sys.Args{fd, hdrAddr, headerSize})
	if err != sys.OK || hrv[0] != headerSize {
		return
	}
	var hdr [headerSize]byte
	if e := c.CopyIn(hdrAddr, hdr[:]); e != sys.OK {
		return
	}
	if size, ok := storedPlainSize(hdr[:]); ok {
		st.Size = size
		st.Encode(sb[:])
		c.CopyOut(statAddr, sb[:])
	}
}

// downFstat stats an open descriptor below the agent.
func downFstat(c sys.Ctx, fd int) (sys.Stat, sys.Errno) {
	addr, err := core.StageAlloc(c, sys.StatSize)
	if err != sys.OK {
		return sys.Stat{}, err
	}
	if _, err := core.Down(c, sys.SYS_fstat, sys.Args{sys.Word(fd), addr}); err != sys.OK {
		return sys.Stat{}, err
	}
	var b [sys.StatSize]byte
	if e := c.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Stat{}, e
	}
	return sys.DecodeStat(b[:]), sys.OK
}

// zipOpen is the in-memory plain image of an open compressed file.
type zipOpen struct {
	core.BaseOpenObject
	a     *Agent
	path  string
	data  []byte
	off   int64
	flags int
	mode  uint32
	dirty bool
}

// Read serves plain data from the buffered image.
func (o *zipOpen) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if o.flags&sys.O_ACCMODE == sys.O_WRONLY {
		return sys.Retval{}, sys.EBADF
	}
	if o.off >= int64(len(o.data)) || cnt == 0 {
		return sys.Retval{0}, sys.OK
	}
	end := o.off + int64(cnt)
	if end > int64(len(o.data)) {
		end = int64(len(o.data))
	}
	chunk := o.data[o.off:end]
	if e := c.CopyOut(buf, chunk); e != sys.OK {
		return sys.Retval{}, e
	}
	o.off = end
	return sys.Retval{sys.Word(len(chunk))}, sys.OK
}

// Write stores plain data into the buffered image.
func (o *zipOpen) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if o.flags&sys.O_ACCMODE == sys.O_RDONLY {
		return sys.Retval{}, sys.EBADF
	}
	if o.flags&sys.O_APPEND != 0 {
		o.off = int64(len(o.data))
	}
	p := make([]byte, cnt)
	if e := c.CopyIn(buf, p); e != sys.OK {
		return sys.Retval{}, e
	}
	end := o.off + int64(cnt)
	if end > int64(len(o.data)) {
		grown := make([]byte, end)
		copy(grown, o.data)
		o.data = grown
	}
	copy(o.data[o.off:], p)
	o.off = end
	o.dirty = true
	return sys.Retval{sys.Word(cnt)}, sys.OK
}

// Lseek repositions within the plain image.
func (o *zipOpen) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	var base int64
	switch whence {
	case sys.SEEK_SET:
		base = 0
	case sys.SEEK_CUR:
		base = o.off
	case sys.SEEK_END:
		base = int64(len(o.data))
	default:
		return sys.Retval{}, sys.EINVAL
	}
	pos := base + int64(off)
	if pos < 0 {
		return sys.Retval{}, sys.EINVAL
	}
	o.off = pos
	return sys.Retval{sys.Word(pos)}, sys.OK
}

// Ftruncate adjusts the plain image.
func (o *zipOpen) Ftruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	if length < 0 {
		return sys.Retval{}, sys.EINVAL
	}
	n := int(length)
	switch {
	case n < len(o.data):
		o.data = o.data[:n]
	case n > len(o.data):
		grown := make([]byte, n)
		copy(grown, o.data)
		o.data = grown
	}
	o.dirty = true
	return sys.Retval{}, sys.OK
}

// Fstat reports the plain size.
func (o *zipOpen) Fstat(c sys.Ctx, fd int, statAddr sys.Word) (sys.Retval, sys.Errno) {
	rv, err := o.BaseOpenObject.Fstat(c, fd, statAddr)
	if err != sys.OK {
		return rv, err
	}
	var b [sys.StatSize]byte
	if e := c.CopyIn(statAddr, b[:]); e != sys.OK {
		return rv, e
	}
	st := sys.DecodeStat(b[:])
	st.Size = uint32(len(o.data))
	st.Encode(b[:])
	return rv, c.CopyOut(statAddr, b[:])
}

// Fsync writes the compressed image back early.
func (o *zipOpen) Fsync(c sys.Ctx, fd int) (sys.Retval, sys.Errno) {
	if err := o.writeBack(c); err != sys.OK {
		return sys.Retval{}, err
	}
	return sys.Retval{}, sys.OK
}

// writeBack stores the compressed image without ever corrupting the real
// file: the bytes go to a temporary name first and replace the original
// only via an atomic rename. If any step fails — a short or failing write
// below, say from fault injection — the original stored file is untouched,
// the temporary is removed, and the image stays dirty for a later retry.
func (o *zipOpen) writeBack(c sys.Ctx) sys.Errno {
	if !o.dirty {
		return sys.OK
	}
	tmp := o.path + ".zip~"
	if err := core.DownWriteFile(c, tmp, Compress(o.data), o.mode); err != sys.OK {
		core.DownPath(c, sys.SYS_unlink, tmp)
		return err
	}
	if _, err := core.DownPath2(c, sys.SYS_rename, tmp, o.path); err != sys.OK {
		core.DownPath(c, sys.SYS_unlink, tmp)
		return err
	}
	o.dirty = false
	return sys.OK
}
