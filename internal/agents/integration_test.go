package agents_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"interpose/internal/agents"
	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/dfstrace"
	"interpose/internal/agents/monitor"
	"interpose/internal/agents/nullagent"
	"interpose/internal/agents/timex"
	"interpose/internal/agents/trace"
	"interpose/internal/agents/union"
	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/sys"
)

// buildWorld boots a world with the make workload in /src. Every world
// is armed for crash forensics: when a soak fails under CI, the flight
// ring and the tail-sampled span trace land in $ARTIFACT_DIR for upload.
func buildWorld(t *testing.T, programs int) *kernel.Kernel {
	t.Helper()
	k := agenttest.World(t)
	if err := apps.GenMakeTree(k, "/src", programs); err != nil {
		t.Fatal(err)
	}
	agenttest.DumpArtifacts(t, k)
	return k
}

// runMake runs the build under an agent stack and checks it succeeded.
func runMake(t *testing.T, k *kernel.Kernel, agentsList []core.Agent) string {
	t.Helper()
	defer agenttest.Watchdog(t, 2*time.Minute)()
	st, out, err := core.Run(k, agentsList, "/bin/sh",
		[]string{"sh", "-c", "cd /src; mk all"}, []string{"PATH=/bin"})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("make failed: %#x\n%s", st, out)
	}
	return out
}

// verifyBuild runs the built programs and checks their outputs.
func verifyBuild(t *testing.T, k *kernel.Kernel, programs int) {
	t.Helper()
	for i := 1; i <= programs; i++ {
		st, out, err := core.Run(k, nil, "/src/prog"+itoa(i),
			[]string{fmt.Sprintf("/src/prog%d", i)}, nil)
		if err != nil || !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
			t.Fatalf("prog%d: %v %#x %q", i, err, st, out)
		}
		if out != apps.ExpectedProgOutput(i) {
			t.Fatalf("prog%d output = %q, want %q", i, out, apps.ExpectedProgOutput(i))
		}
	}
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// TestMakeUnderEverySimpleAgent is the paper's transparency claim in test
// form: the same unmodified build runs identically under each agent.
func TestMakeUnderEverySimpleAgent(t *testing.T) {
	const programs = 2
	stacks := map[string]func(t *testing.T) []core.Agent{
		"none":  func(t *testing.T) []core.Agent { return nil },
		"timex": func(t *testing.T) []core.Agent { a, _ := timex.New("3600"); return []core.Agent{a} },
		"null":  func(t *testing.T) []core.Agent { return []core.Agent{nullagent.New()} },
		"trace": func(t *testing.T) []core.Agent { return []core.Agent{trace.New()} },
		"monitor": func(t *testing.T) []core.Agent {
			return []core.Agent{monitor.New(false)}
		},
		"dfstrace": func(t *testing.T) []core.Agent {
			return []core.Agent{dfstrace.New(dfstrace.NewCollector())}
		},
	}
	for name, mk := range stacks {
		t.Run(name, func(t *testing.T) {
			k := buildWorld(t, programs)
			runMake(t, k, mk(t))
			verifyBuild(t, k, programs)
		})
	}
}

// TestMakeWithUnionView reproduces the paper's motivating union use
// (§1.4): "mount a search list of directories ... to allow distinct
// source and object directories to appear as a single directory when
// running make". Sources live in /srcs, objects land in /objs, and the
// whole build addresses only the union /build.
func TestMakeWithUnionView(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/srcs", 0o777)
	k.MkdirAll("/objs", 0o777)
	k.WriteFile("/srcs/defs.h", []byte("#define ANSWER 42\n"), 0o644)
	k.WriteFile("/srcs/main.c", []byte(`#include "defs.h"
main() { print(ANSWER); return 0; }
`), 0o644)
	k.WriteFile("/srcs/Makefile", []byte(
		"/build/prog: /build/main.c /build/defs.h\n"+
			"\tcc -o /build/prog /build/main.c\n"), 0o644)

	a, err := union.New("/build=/objs:/srcs")
	if err != nil {
		t.Fatal(err)
	}
	st, out, rerr := core.Run(k, []core.Agent{a}, "/bin/sh",
		[]string{"sh", "-c", "mk -f /build/Makefile /build/prog && /build/prog"},
		[]string{"PATH=/bin"})
	if rerr != nil || !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("union build failed: %v %#x\n%s", rerr, st, out)
	}
	if !strings.Contains(out, "42\n") {
		t.Fatalf("built program output: %q", out)
	}
	// The object landed in the object directory, not the source one.
	if _, err := k.ReadFile("/objs/prog"); err != nil {
		t.Fatalf("prog not in object dir: %v", err)
	}
	if _, err := k.ReadFile("/srcs/prog"); err == nil {
		t.Fatal("prog leaked into source dir")
	}
	// Sources stayed pristine.
	if data, _ := k.ReadFile("/srcs/main.c"); !strings.Contains(string(data), "ANSWER") {
		t.Fatal("source modified")
	}
}

// TestTraceOfMakeCountsWrites checks the paper's observation that trace
// adds two write() calls per traced call.
func TestTraceOfMakeCountsWrites(t *testing.T) {
	k := buildWorld(t, 1)
	out := runMake(t, k, []core.Agent{trace.New()})
	calls := strings.Count(out, " ...\n")
	results := strings.Count(out, "| ... ")
	if calls < 100 {
		t.Fatalf("implausibly few traced calls: %d", calls)
	}
	// Nearly every call line has a result line (exit/execve lack one).
	if results < calls*8/10 {
		t.Fatalf("calls=%d results=%d", calls, results)
	}
}

// TestCatalogConstructsEveryAgent exercises the loader-facing catalog.
func TestCatalogConstructsEveryAgent(t *testing.T) {
	specs := []string{
		"timex=60", "trace", "null", "monitor", "monitor=report",
		"union=/u=/tmp:/etc", "dfstrace", "sandbox=/tmp",
		"sandbox=/tmp:emulate", "txn=/tmp/sh", "txn=/tmp/sh:commit",
		"zip=/tmp", "crypt=/tmp:key", "hpux",
		"faulty=seed=1,write=EIO@0.5", "faulty=read:/data=short:4@0.25,open=ENOSPC",
	}
	for _, spec := range specs {
		if _, err := agents.New(spec); err != nil {
			t.Fatalf("catalog %q: %v", spec, err)
		}
	}
	for _, bad := range []string{"nosuch", "timex=xyz", "union=bad", "crypt=/x",
		"faulty", "faulty=write=EBOGUS", "faulty=getpid=short:4"} {
		if _, err := agents.New(bad); err == nil {
			t.Fatalf("catalog accepted %q", bad)
		}
	}
}

// TestStackedAgentsDeep runs make under a three-agent stack.
func TestStackedAgentsDeep(t *testing.T) {
	k := buildWorld(t, 1)
	tx, _ := timex.New("1000")
	mon := monitor.New(false)
	cl := dfstrace.NewCollector()
	runMake(t, k, []core.Agent{dfstrace.New(cl), tx, mon})
	verifyBuild(t, k, 1)
	if mon.Total() == 0 || cl.Len() == 0 {
		t.Fatalf("stacked agents inert: mon=%d dfs=%d", mon.Total(), cl.Len())
	}
}
