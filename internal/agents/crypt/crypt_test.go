package crypt_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/crypt"
	"interpose/internal/core"
	"interpose/internal/kernel"
)

func setup(t *testing.T, key string) (*kernel.Kernel, *crypt.Agent) {
	k := agenttest.World(t)
	k.MkdirAll("/vault", 0o777)
	a, err := crypt.New("/vault", key)
	if err != nil {
		t.Fatal(err)
	}
	return k, a
}

func TestKeystreamRoundTrip(t *testing.T) {
	ks := crypt.NewKeystream("secret")
	f := func(data []byte, off uint16) bool {
		enc := append([]byte(nil), data...)
		ks.XOR(enc, int64(off))
		ks.XOR(enc, int64(off))
		return bytes.Equal(enc, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamSplitMatchesWhole(t *testing.T) {
	// Enciphering in two chunks equals enciphering at once — the property
	// that makes seeks work.
	ks := crypt.NewKeystream("k")
	data := []byte("a seekable keystream transforms extents independently")
	whole := append([]byte(nil), data...)
	ks.XOR(whole, 100)
	split := append([]byte(nil), data...)
	ks.XOR(split[:20], 100)
	ks.XOR(split[20:], 120)
	if !bytes.Equal(whole, split) {
		t.Fatal("keystream not position-independent")
	}
}

func TestCryptTransparentWriteRead(t *testing.T) {
	k, a := setup(t, "secret")
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo attack at dawn > /vault/plan.txt")
	if st != 0 {
		t.Fatal("write failed")
	}
	// Stored ciphertext differs from the plaintext.
	raw, err := k.ReadFile("/vault/plan.txt")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "attack") {
		t.Fatalf("stored in the clear: %q", raw)
	}
	if len(raw) != len("attack at dawn\n") {
		t.Fatalf("length changed: %d", len(raw))
	}
	// Read back through the agent: plaintext.
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/vault/plan.txt")
	if st != 0 || out != "attack at dawn\n" {
		t.Fatalf("read back: %d %q", st, out)
	}
}

func TestCryptWrongKeyGarbles(t *testing.T) {
	k, a := setup(t, "rightkey")
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo sensitive > /vault/f")
	wrong, err := crypt.New("/vault", "wrongkey")
	if err != nil {
		t.Fatal(err)
	}
	st, out := agenttest.Run(t, k, []core.Agent{wrong}, "cat", "/vault/f")
	if st != 0 {
		t.Fatal("read failed entirely")
	}
	if strings.Contains(out, "sensitive") {
		t.Fatal("wrong key decrypted the file")
	}
}

func TestCryptAppend(t *testing.T) {
	k, a := setup(t, "k")
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo line one > /vault/log; echo line two >> /vault/log")
	if st != 0 {
		t.Fatal("append failed")
	}
	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/vault/log")
	if st != 0 || out != "line one\nline two\n" {
		t.Fatalf("append read: %d %q", st, out)
	}
}

func TestCryptGrepThroughAgent(t *testing.T) {
	k, a := setup(t, "k")
	agenttest.Run(t, k, []core.Agent{a}, "sh", "-c",
		"echo alpha > /vault/w; echo beta >> /vault/w")
	st, out := agenttest.Run(t, k, []core.Agent{a}, "grep", "beta", "/vault/w")
	if st != 0 || out != "beta\n" {
		t.Fatalf("grep over encrypted file: %d %q", st, out)
	}
}
