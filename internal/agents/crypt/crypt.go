// Package crypt implements a transparent encryption agent (paper §1.4):
// file contents under a configured subtree are stored enciphered with a
// position-dependent keystream, but clients read and write plain data.
// Because the keystream is seekable, reads and writes at any offset are
// transformed in place without buffering whole files.
package crypt

import (
	"fmt"
	gopath "path"
	"strings"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Keystream is a seekable XOR keystream: byte i of the stream depends
// only on the key and i, so any extent can be (de)ciphered independently.
type Keystream struct {
	seed uint64
}

// NewKeystream derives a keystream from a key string (FNV-1a).
func NewKeystream(key string) Keystream {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return Keystream{seed: h}
}

// XOR transforms p in place as the stream bytes [off, off+len(p)).
func (k Keystream) XOR(p []byte, off int64) {
	for i := range p {
		pos := uint64(off) + uint64(i)
		x := k.seed ^ (pos/8+1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		p[i] ^= byte(x >> (8 * (pos % 8)))
	}
}

// Agent provides transparent encryption under a subtree.
type Agent struct {
	core.PathnameSet
	root string
	ks   Keystream
}

// New creates an encryption agent for the given absolute subtree and key.
func New(root, key string) (*Agent, error) {
	if !strings.HasPrefix(root, "/") {
		return nil, fmt.Errorf("crypt: root must be absolute")
	}
	a := &Agent{root: gopath.Clean(root), ks: NewKeystream(key)}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterDescriptorCalls()
	return a, nil
}

func (a *Agent) covers(path string) bool {
	clean := path
	if strings.HasPrefix(path, "/") {
		clean = gopath.Clean(path)
	}
	return clean == a.root || strings.HasPrefix(clean, a.root+"/")
}

// GetPN wraps covered pathnames in enciphering pathname objects.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	if !a.covers(path) {
		return a.PathnameSet.GetPN(c, path, op)
	}
	return &cryptPathname{BasePathname: core.BasePathname{P: path}, a: a}, sys.OK
}

type cryptPathname struct {
	core.BasePathname
	a *Agent
}

// Open opens the real file and interposes an enciphering open object on
// regular files.
func (p *cryptPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	rv, _, err := p.BasePathname.Open(c, flags, mode)
	if err != sys.OK {
		return rv, nil, err
	}
	fd := int(rv[0])
	st, serr := downFstat(c, fd)
	if serr != sys.OK || !st.IsReg() {
		return rv, nil, sys.OK
	}
	oo := &cryptOpen{a: p.a, flags: flags}
	oo.FD = fd
	oo.Ref()
	if flags&sys.O_APPEND != 0 {
		oo.off = int64(st.Size)
	}
	return rv, oo, sys.OK
}

func downFstat(c sys.Ctx, fd int) (sys.Stat, sys.Errno) {
	mark := core.StageMark(c)
	defer core.StageRelease(c, mark)
	addr, err := core.StageAlloc(c, sys.StatSize)
	if err != sys.OK {
		return sys.Stat{}, err
	}
	if _, err := core.Down(c, sys.SYS_fstat, sys.Args{sys.Word(fd), addr}); err != sys.OK {
		return sys.Stat{}, err
	}
	var b [sys.StatSize]byte
	if e := c.CopyIn(addr, b[:]); e != sys.OK {
		return sys.Stat{}, e
	}
	return sys.DecodeStat(b[:]), sys.OK
}

// cryptOpen transforms data at the interface: the underlying file holds
// ciphertext; the client sees plain bytes. It maintains its own offset so
// the keystream position is known (the underlying descriptor is kept in
// step with explicit seeks).
type cryptOpen struct {
	core.BaseOpenObject
	a     *Agent
	off   int64
	flags int
}

// Read reads ciphertext below and deciphers it in the client's buffer.
func (o *cryptOpen) Read(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	rv, err := o.BaseOpenObject.Read(c, fd, buf, cnt)
	if err != sys.OK {
		return rv, err
	}
	n := int(rv[0])
	if n > 0 {
		// The underlying offset has already moved by n; advance the
		// keystream position unconditionally so a copy failure here can
		// never desynchronize later reads (which would decipher with the
		// wrong stream position — silent corruption).
		off := o.off
		o.off += int64(n)
		p := make([]byte, n)
		if e := c.CopyIn(buf, p); e != sys.OK {
			return rv, e
		}
		o.a.ks.XOR(p, off)
		if e := c.CopyOut(buf, p); e != sys.OK {
			return rv, e
		}
	}
	return rv, sys.OK
}

// Write enciphers the client's data into agent scratch and writes the
// ciphertext below; the client's buffer is left untouched.
func (o *cryptOpen) Write(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if o.flags&sys.O_APPEND != 0 {
		st, err := downFstat(c, fd)
		if err != sys.OK {
			return sys.Retval{}, err
		}
		o.off = int64(st.Size)
	}
	total := 0
	const chunk = 16 * 1024
	for total < cnt {
		n := cnt - total
		if n > chunk {
			n = chunk
		}
		p := make([]byte, n)
		if e := c.CopyIn(buf+sys.Word(total), p); e != sys.OK {
			if total > 0 {
				break // report the progress made; offsets stay in step
			}
			return sys.Retval{}, e
		}
		o.a.ks.XOR(p, o.off)
		mark := core.StageMark(c)
		addr, err := core.StageBytes(c, p)
		if err != sys.OK {
			if total > 0 {
				break
			}
			return sys.Retval{}, err
		}
		rv, err := core.Down(c, sys.SYS_write, sys.Args{sys.Word(fd), addr, sys.Word(n)})
		core.StageRelease(c, mark)
		if err != sys.OK {
			if total > 0 {
				break
			}
			return sys.Retval{}, err
		}
		wrote := int(rv[0])
		o.off += int64(wrote)
		total += wrote
		if wrote < n {
			break
		}
	}
	return sys.Retval{sys.Word(total)}, sys.OK
}

// Lseek repositions both the underlying descriptor and the keystream.
func (o *cryptOpen) Lseek(c sys.Ctx, fd int, off int32, whence int) (sys.Retval, sys.Errno) {
	rv, err := o.BaseOpenObject.Lseek(c, fd, off, whence)
	if err == sys.OK {
		o.off = int64(int32(rv[0]))
	}
	return rv, err
}

// Ftruncate truncates below (XOR keystreams need no re-ciphering).
func (o *cryptOpen) Ftruncate(c sys.Ctx, fd int, length int32) (sys.Retval, sys.Errno) {
	rv, err := o.BaseOpenObject.Ftruncate(c, fd, length)
	if err == sys.OK && int64(length) < o.off {
		o.off = int64(length)
	}
	return rv, err
}
