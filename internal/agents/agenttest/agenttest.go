// Package agenttest provides shared helpers for agent behavioural tests:
// booting a full application world and running programs under agent
// stacks.
package agenttest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"interpose/internal/apps"
	"interpose/internal/core"
	"interpose/internal/kernel"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
	"interpose/internal/trace"
	"interpose/internal/world"
)

// World boots a kernel with all applications installed in /bin.
func World(t testing.TB) *kernel.Kernel {
	t.Helper()
	return Boot(t, apps.Spec()).Kernel()
}

// Boot boots a world from spec (usually apps.Spec() plus options) and
// registers its teardown: the world is closed — guest processes reaped,
// journal flushed, facilities detached — when the test ends.
func Boot(t testing.TB, spec world.Spec) *world.World {
	t.Helper()
	w, err := world.Boot(spec)
	if err != nil {
		t.Fatalf("agenttest: world: %v", err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("agenttest: close world: %v", err)
		}
	})
	return w
}

// Run executes argv[0] from /bin under the given agent stack and returns
// its exit status and console output. It fails the test on spawn errors
// or death by signal.
func Run(t testing.TB, k *kernel.Kernel, agents []core.Agent, argv ...string) (int, string) {
	t.Helper()
	path := argv[0]
	if path[0] != '/' {
		path = "/bin/" + path
	}
	st, out, err := core.Run(k, agents, path, argv, []string{"PATH=/bin"})
	if err != nil {
		t.Fatalf("agenttest: run %v: %v", argv, err)
	}
	if !sys.WIfExited(st) {
		t.Fatalf("agenttest: %v killed by %s\n%s", argv, sys.SignalName(sys.WTermSig(st)), out)
	}
	return sys.WExitStatus(st), out
}

// artifactSeq disambiguates artifact files when one test arms several
// worlds (a chaos soak looping over seeds).
var artifactSeq atomic.Uint64

// crasher is the capability of fault injectors that can kill the world:
// DumpArtifacts treats an injected crash like a failure for artifact
// purposes, because the interesting forensics (what the world was doing
// when it died) would otherwise be discarded by a test that expects and
// then recovers from the crash.
type crasher interface {
	Crashed() bool
}

// DumpArtifacts arms crash forensics for a soak test: it makes sure a
// telemetry registry and a tail-retention span tracer (slow calls and
// errors only — cheap enough to leave on for a whole soak) are installed
// on k, and registers a cleanup that writes the flight ring and the span
// trace to $ARTIFACT_DIR when the test fails OR when the world died to
// an injected crash (fault "crash"/"torn" rules), not only on t.Failed()
// — an expected crash still leaves its last moments behind. CI sets
// ARTIFACT_DIR on the chaos and supervision jobs and uploads the
// directory, so a once-in-fifty flake is diagnosable after the fact.
//
// The returned function force-writes the artifacts immediately,
// regardless of test state — call it at the moment of an interesting
// event (a failed recovery, right before re-booting a crashed world)
// when waiting for cleanup would lose the state.
func DumpArtifacts(t testing.TB, k *kernel.Kernel) (force func()) {
	t.Helper()
	if k.Telemetry() == nil {
		k.SetTelemetry(telemetry.NewRegistry())
	}
	if k.SpanTracer() == nil {
		k.SetSpanTracer(trace.NewTracer(trace.Config{
			Slow:       time.Millisecond,
			TailErrors: true,
		}))
	}
	seq := artifactSeq.Add(1)
	dump := func() {
		dir := os.Getenv("ARTIFACT_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("agenttest: artifacts: %v", err)
			return
		}
		base := fmt.Sprintf("%s-%d",
			strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()), seq)
		var flight bytes.Buffer
		k.Telemetry().Snapshot().WriteFlight(&flight)
		if err := os.WriteFile(filepath.Join(dir, base+"-flight.txt"), flight.Bytes(), 0o644); err != nil {
			t.Logf("agenttest: artifacts: %v", err)
		}
		var spans bytes.Buffer
		if err := k.SpanTracer().WriteChrome(&spans); err == nil {
			if err := os.WriteFile(filepath.Join(dir, base+"-trace.json"), spans.Bytes(), 0o644); err != nil {
				t.Logf("agenttest: artifacts: %v", err)
			}
		}
		t.Logf("agenttest: wrote failure artifacts %s-{flight.txt,trace.json} in %s", base, dir)
	}
	t.Cleanup(func() {
		crashed := false
		if c, ok := k.Injector().(crasher); ok && c != nil {
			crashed = c.Crashed()
		}
		if !t.Failed() && !crashed {
			return
		}
		dump()
	})
	return dump
}

// Watchdog arms a deadline for a test section that runs simulated guests:
// if the returned stop function has not been called within d, the watchdog
// dumps every goroutine's stack to standard error and crashes the test
// binary. A wedged guest (a kernel sleep that never wakes, an agent
// deadlock) thereby fails fast with a diagnosis instead of hanging
// `go test` until its global timeout. Use as:
//
//	defer agenttest.Watchdog(t, time.Minute)()
func Watchdog(t testing.TB, d time.Duration) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			fmt.Fprintf(os.Stderr, "agenttest: watchdog: %s wedged after %v; goroutine dump:\n%s\n",
				t.Name(), d, buf[:n])
			panic("agenttest: watchdog expired: " + t.Name())
		}
	}()
	return func() { close(done) }
}
