package monitor_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/monitor"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func TestMonitorCountsCalls(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "syscount", "500", "getpid")
	if st != 0 {
		t.Fatal("syscount failed")
	}
	if got := a.Count(sys.SYS_getpid); got < 500 {
		t.Fatalf("getpid count = %d, want >= 500", got)
	}
	if a.Total() < 500 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.Count(sys.SYS_exit) != 1 {
		t.Fatalf("exit count = %d", a.Count(sys.SYS_exit))
	}
}

func TestMonitorCountsErrors(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	agenttest.Run(t, k, []core.Agent{a}, "cat", "/no/such/file")
	if a.Errors() == 0 {
		t.Fatal("failed open not counted as error")
	}
}

func TestMonitorAggregatesProcessTree(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo a; echo b")
	if st != 0 {
		t.Fatal("sh failed")
	}
	if a.Count(sys.SYS_fork) < 2 {
		t.Fatalf("fork count = %d, want >= 2", a.Count(sys.SYS_fork))
	}
	if a.Count(sys.SYS_execve) < 2 {
		t.Fatalf("execve count = %d, want >= 2", a.Count(sys.SYS_execve))
	}
	// Per-pid accounting: at least three pids participated.
	pids := 0
	for pid := 1; pid < 10; pid++ {
		if a.PIDCount(pid) > 0 {
			pids++
		}
	}
	if pids < 3 {
		t.Fatalf("pids with activity = %d", pids)
	}
}

func TestMonitorReportAtExit(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(true)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "echo", "hi")
	if st != 0 {
		t.Fatal("echo failed")
	}
	if !strings.Contains(out, "monitor:") || !strings.Contains(out, "write") {
		t.Fatalf("report missing:\n%s", out)
	}
}

func TestMonitorReportFormat(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	agenttest.Run(t, k, []core.Agent{a}, "echo", "x")
	rep := a.Report(0)
	if !strings.Contains(rep, "calls") || !strings.Contains(rep, "exit") {
		t.Fatalf("report = %q", rep)
	}
}
