package monitor_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/monitor"
	"interpose/internal/core"
	"interpose/internal/sys"
)

func TestMonitorCountsCalls(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "syscount", "500", "getpid")
	if st != 0 {
		t.Fatal("syscount failed")
	}
	if got := a.Count(sys.SYS_getpid); got < 500 {
		t.Fatalf("getpid count = %d, want >= 500", got)
	}
	if a.Total() < 500 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.Count(sys.SYS_exit) != 1 {
		t.Fatalf("exit count = %d", a.Count(sys.SYS_exit))
	}
}

func TestMonitorCountsErrors(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	agenttest.Run(t, k, []core.Agent{a}, "cat", "/no/such/file")
	if a.Errors() == 0 {
		t.Fatal("failed open not counted as error")
	}
}

func TestMonitorAggregatesProcessTree(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo a; echo b")
	if st != 0 {
		t.Fatal("sh failed")
	}
	if a.Count(sys.SYS_fork) < 2 {
		t.Fatalf("fork count = %d, want >= 2", a.Count(sys.SYS_fork))
	}
	if a.Count(sys.SYS_execve) < 2 {
		t.Fatalf("execve count = %d, want >= 2", a.Count(sys.SYS_execve))
	}
	// Per-pid accounting: at least three pids participated (sh plus two
	// echo children), and all of them have exited and been pruned.
	if a.ExitedProcs() < 3 {
		t.Fatalf("exited procs = %d, want >= 3", a.ExitedProcs())
	}
	if a.ExitedCalls() == 0 {
		t.Fatal("no calls attributed to exited processes")
	}
}

// TestMonitorPrunesExitedProcesses checks the per-process map does not
// grow with the number of dead clients: every record is dropped at exit
// and folded into the exited aggregates.
func TestMonitorPrunesExitedProcesses(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	for i := 0; i < 5; i++ {
		if st, _ := agenttest.Run(t, k, []core.Agent{a}, "true"); st != 0 {
			t.Fatal("true failed")
		}
	}
	if live := a.LiveProcs(); live != 0 {
		t.Fatalf("live proc records = %d after all clients exited", live)
	}
	if a.ExitedProcs() != 5 {
		t.Fatalf("exited procs = %d, want 5", a.ExitedProcs())
	}
	if a.ExitedCalls() != a.Total() {
		t.Fatalf("exited calls = %d, total = %d", a.ExitedCalls(), a.Total())
	}
}

// TestMonitorSnapshot checks the structured view over the agent's
// telemetry registry.
func TestMonitorSnapshot(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	agenttest.Run(t, k, []core.Agent{a}, "echo", "hi")
	snap := a.Snapshot()
	if snap.Total == 0 || snap.Total != a.Total() {
		t.Fatalf("snapshot total = %d, agent total = %d", snap.Total, a.Total())
	}
	found := false
	for _, s := range snap.Syscalls {
		if s.Name == "write" && s.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no write row in snapshot: %+v", snap.Syscalls)
	}
}

func TestMonitorReportAtExit(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(true)
	st, out := agenttest.Run(t, k, []core.Agent{a}, "echo", "hi")
	if st != 0 {
		t.Fatal("echo failed")
	}
	if !strings.Contains(out, "monitor:") || !strings.Contains(out, "write") {
		t.Fatalf("report missing:\n%s", out)
	}
}

func TestMonitorReportFormat(t *testing.T) {
	k := agenttest.World(t)
	a := monitor.New(false)
	agenttest.Run(t, k, []core.Agent{a}, "echo", "x")
	rep := a.Report(0)
	if !strings.Contains(rep, "calls") || !strings.Contains(rep, "exit") {
		t.Fatalf("report = %q", rep)
	}
}
