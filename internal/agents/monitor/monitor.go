// Package monitor implements a system call and resource usage monitoring
// agent (paper §2.4, "System Call Tracing and Monitoring Facilities"): it
// counts every system call made by its clients, per call and per process,
// and can print a usage report when each client exits.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Agent counts system calls.
type Agent struct {
	core.Numeric

	mu     sync.Mutex
	byNum  [sys.MaxSyscall]uint64
	byPID  map[int]uint64
	errs   uint64
	total  uint64
	report bool // print a report as each process exits
}

// New creates a monitoring agent. With report set, each exiting client
// process gets a usage summary printed on its standard error.
func New(report bool) *Agent {
	a := &Agent{byPID: make(map[int]uint64), report: report}
	a.RegisterAll()
	return a
}

// Syscall counts and passes the call through (numeric-layer agent: no
// argument decoding is needed to count).
func (a *Agent) Syscall(c sys.Ctx, num int, args sys.Args) (sys.Retval, sys.Errno) {
	a.mu.Lock()
	if num >= 0 && num < sys.MaxSyscall {
		a.byNum[num]++
	}
	a.byPID[c.PID()]++
	a.total++
	a.mu.Unlock()

	if num == sys.SYS_exit && a.report {
		core.DownWriteString(c, 2, a.Report(c.PID()))
	}
	rv, err := core.Down(c, num, args)
	if err != sys.OK {
		a.mu.Lock()
		a.errs++
		a.mu.Unlock()
	}
	return rv, err
}

// Total returns the number of calls observed.
func (a *Agent) Total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Errors returns the number of calls that failed.
func (a *Agent) Errors() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.errs
}

// Count returns the number of calls observed for one call number.
func (a *Agent) Count(num int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if num < 0 || num >= sys.MaxSyscall {
		return 0
	}
	return a.byNum[num]
}

// PIDCount returns the number of calls made by one process.
func (a *Agent) PIDCount(pid int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byPID[pid]
}

// Report formats a usage summary. pid of 0 reports totals only.
func (a *Agent) Report(pid int) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	type entry struct {
		num int
		n   uint64
	}
	var entries []entry
	for num, n := range a.byNum {
		if n > 0 {
			entries = append(entries, entry{num, n})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].num < entries[j].num
	})
	s := fmt.Sprintf("monitor: %d calls, %d errors", a.total, a.errs)
	if pid != 0 {
		s += fmt.Sprintf(" (pid %d made %d)", pid, a.byPID[pid])
	}
	s += "\n"
	for _, e := range entries {
		s += fmt.Sprintf("monitor:   %-16s %8d\n", sys.SyscallName(e.num), e.n)
	}
	return s
}
