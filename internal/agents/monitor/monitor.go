// Package monitor implements a system call and resource usage monitoring
// agent (paper §2.4, "System Call Tracing and Monitoring Facilities"): it
// counts and times every system call made by its clients, per call and
// per process, and can print a usage report when each client exits.
//
// Per-call accounting is backed by a telemetry.Registry, so the counters
// are atomics shared with the rest of the flight-recorder substrate and a
// full structured Snapshot is available; each downcall's wall time feeds
// the registry's log2 histograms, so the report carries p50/p90/p99 next
// to raw counts. Per-process accounting lives in a map pruned as each
// client exits; totals for dead processes fold into aggregate counters,
// so a long-lived monitor over many short-lived clients uses bounded
// memory.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"interpose/internal/core"
	"interpose/internal/sys"
	"interpose/internal/telemetry"
)

// Agent counts system calls.
type Agent struct {
	core.Numeric

	reg *telemetry.Registry

	mu          sync.Mutex
	byPID       map[int]uint64
	exitedProcs uint64
	exitedCalls uint64
	report      bool // print a report as each process exits
}

// New creates a monitoring agent. With report set, each exiting client
// process gets a usage summary printed on its standard error.
func New(report bool) *Agent {
	a := &Agent{
		reg:    telemetry.NewRegistry(),
		byPID:  make(map[int]uint64),
		report: report,
	}
	a.RegisterAll()
	return a
}

// Registry exposes the agent's telemetry registry: occurrence counters
// plus the latency histograms fed by timing each downcall.
func (a *Agent) Registry() *telemetry.Registry { return a.reg }

// Snapshot returns a structured view of everything the monitor has
// counted so far.
func (a *Agent) Snapshot() telemetry.Snapshot { return a.reg.Snapshot() }

// Syscall counts the call at entry, times the downcall, and passes the
// result through (numeric-layer agent: no argument decoding is needed).
// Counting happens before the downcall so calls that never return (exit,
// a successful execve) are still counted; the latency observation lands
// only for calls that do return.
func (a *Agent) Syscall(c sys.Ctx, num int, args sys.Args) (sys.Retval, sys.Errno) {
	a.reg.IncSyscall(num)
	a.mu.Lock()
	a.byPID[c.PID()]++
	a.mu.Unlock()

	if num == sys.SYS_exit && a.report {
		core.DownWriteString(c, 2, a.Report(c.PID()))
	}
	start := time.Now()
	rv, err := core.Down(c, num, args)
	a.reg.ObserveLatency(num, time.Since(start))
	if err != sys.OK {
		a.reg.IncSyscallErr(num)
	}
	return rv, err
}

// ProcExit folds a dead client's per-process count into the exited
// aggregates and drops its map entry, keeping the monitor's footprint
// proportional to the number of live clients.
func (a *Agent) ProcExit(pid int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.byPID[pid]
	if !ok {
		return
	}
	delete(a.byPID, pid)
	a.exitedProcs++
	a.exitedCalls += n
}

// Total returns the number of calls observed.
func (a *Agent) Total() uint64 { return a.reg.TotalSyscalls() }

// Errors returns the number of calls that failed.
func (a *Agent) Errors() uint64 { return a.reg.TotalErrs() }

// Count returns the number of calls observed for one call number.
func (a *Agent) Count(num int) uint64 { return a.reg.SyscallCount(num) }

// PIDCount returns the number of calls made by one live process; a
// process that has exited reports zero (its calls are in ExitedCalls).
func (a *Agent) PIDCount(pid int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byPID[pid]
}

// LiveProcs returns the number of client processes with per-process
// records still held.
func (a *Agent) LiveProcs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.byPID)
}

// ExitedProcs returns the number of client processes whose records have
// been pruned.
func (a *Agent) ExitedProcs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.exitedProcs
}

// ExitedCalls returns the total calls made by pruned processes.
func (a *Agent) ExitedCalls() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.exitedCalls
}

// Report formats a usage summary. pid of 0 reports totals only.
func (a *Agent) Report(pid int) string {
	type entry struct {
		num int
		n   uint64
	}
	var entries []entry
	for num := 0; num < sys.MaxSyscall; num++ {
		if n := a.reg.SyscallCount(num); n > 0 {
			entries = append(entries, entry{num, n})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].num < entries[j].num
	})
	s := fmt.Sprintf("monitor: %d calls, %d errors", a.reg.TotalSyscalls(), a.reg.TotalErrs())
	if pid != 0 {
		s += fmt.Sprintf(" (pid %d made %d)", pid, a.PIDCount(pid))
	}
	s += "\n"
	for _, e := range entries {
		line := fmt.Sprintf("monitor:   %-16s %8d", sys.SyscallName(e.num), e.n)
		if qs, timed := a.reg.SyscallQuantiles(e.num, 0.5, 0.9, 0.99); timed > 0 {
			line += fmt.Sprintf("  p50 %-8v p90 %-8v p99 %v", qs[0], qs[1], qs[2])
		}
		s += line + "\n"
	}
	return s
}
