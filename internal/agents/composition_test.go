package agents_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/crypt"
	"interpose/internal/agents/sandbox"
	"interpose/internal/agents/trace"
	"interpose/internal/agents/userdev"
	"interpose/internal/agents/zip"
	"interpose/internal/core"
)

// TestZipOverCrypt stacks transparent compression above transparent
// encryption on the same subtree: the client sees plain text; the disk
// holds the encryption of the compressed form. This is the paper's
// Figure 1-3 composition — each agent uses the instance of the system
// interface below it without knowing what provides it.
func TestZipOverCrypt(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/safe", 0o777)
	cryptA, err := crypt.New("/safe", "key")
	if err != nil {
		t.Fatal(err)
	}
	zipA, err := zip.New("/safe")
	if err != nil {
		t.Fatal(err)
	}
	// crypt below (near the kernel), zip above (near the app).
	stack := []core.Agent{cryptA, zipA}

	msg := strings.Repeat("the quick brown fox jumps over the lazy dog ", 10)
	st, _ := agenttest.Run(t, k, stack, "sh", "-c", "echo "+msg+" > /safe/f")
	if st != 0 {
		t.Fatal("write failed")
	}

	// Reading through the full stack recovers the plain text.
	st, out := agenttest.Run(t, k, stack, "cat", "/safe/f")
	if st != 0 || !strings.Contains(out, "quick brown fox") {
		t.Fatalf("read through stack: %d %.60q", st, out)
	}

	// On disk: neither plain text nor a valid compressed stream.
	raw, ferr := k.ReadFile("/safe/f")
	if ferr != nil {
		t.Fatal(ferr)
	}
	if strings.Contains(string(raw), "quick") {
		t.Fatal("stored in the clear")
	}
	if _, ok := zip.Decompress(raw); ok {
		t.Fatal("stored compressed but unencrypted")
	}

	// Through only the crypt layer: a valid compressed stream (and much
	// shorter than the plain text).
	st, _ = agenttest.Run(t, k, []core.Agent{cryptA}, "cp", "/safe/f", "/tmp/peeled")
	if st != 0 {
		t.Fatal("peel failed")
	}
	peeled, _ := k.ReadFile("/tmp/peeled")
	plain, ok := zip.Decompress(peeled)
	if !ok || !strings.Contains(string(plain), "quick brown fox") {
		t.Fatal("crypt layer did not yield the compressed form")
	}
	if len(peeled) >= len(plain) {
		t.Fatalf("compression ineffective: %d >= %d", len(peeled), len(plain))
	}
}

// TestSandboxedUserdev gives a sandboxed program synthetic devices: the
// device agent sits below the sandbox, so reads of /udev pass the policy
// while the rest of the filesystem stays confined.
func TestSandboxedUserdev(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	dev, err := userdev.New("/jail/dev")
	if err != nil {
		t.Fatal(err)
	}
	box, err := sandbox.New(sandbox.Policy{WriteRoot: "/jail"})
	if err != nil {
		t.Fatal(err)
	}
	stack := []core.Agent{dev, box}
	st, out := agenttest.Run(t, k, stack, "sh", "-c",
		"cat /jail/dev/fortune > /jail/saying && cat /jail/saying")
	if st != 0 || !strings.Contains(out, "\n") || len(out) < 10 {
		t.Fatalf("sandboxed device read: %d %q", st, out)
	}
	// Writes outside the jail are still denied.
	st, _ = agenttest.Run(t, k, stack, "sh", "-c", "echo x > /etc/oops")
	if st == 0 {
		t.Fatal("sandbox leak")
	}
}

// TestTraceOfUserdev traces another agent's synthetic devices: trace on
// top sees the calls; userdev below serves them.
func TestTraceOfUserdev(t *testing.T) {
	k := agenttest.World(t)
	dev, err := userdev.New("/udev")
	if err != nil {
		t.Fatal(err)
	}
	st, out := agenttest.Run(t, k, []core.Agent{dev, trace.New()}, "cat", "/udev/fortune")
	if st != 0 {
		t.Fatalf("run: %d", st)
	}
	if !strings.Contains(out, `open("/udev/fortune"`) {
		t.Fatalf("trace of synthetic open missing:\n%s", out)
	}
}
