package sandbox_test

import (
	"strings"
	"testing"

	"interpose/internal/agents/agenttest"
	"interpose/internal/agents/sandbox"
	"interpose/internal/core"
)

func agent(t *testing.T, p sandbox.Policy) *sandbox.Agent {
	t.Helper()
	a, err := sandbox.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSandboxConfinesWrites(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail"})

	// Writing inside the jail works.
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo ok > /jail/f")
	if st != 0 {
		t.Fatal("write inside jail failed")
	}
	if data, err := k.ReadFile("/jail/f"); err != nil || string(data) != "ok\n" {
		t.Fatalf("jail file: %v %q", err, data)
	}

	// Writing outside is denied and recorded.
	st, _ = agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo bad > /etc/evil")
	if st == 0 {
		t.Fatal("write outside jail succeeded")
	}
	if _, err := k.ReadFile("/etc/evil"); err == nil {
		t.Fatal("file escaped the sandbox")
	}
	found := false
	for _, v := range a.Violations() {
		if v.Action == "open-write" && strings.Contains(v.Path, "/etc/evil") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation not recorded: %+v", a.Violations())
	}
}

func TestSandboxEmulatesDenials(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	k.WriteFile("/etc/target", []byte("precious"), 0o644)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail", Emulate: true})

	// The untrusted binary believes it succeeded...
	st, out := agenttest.Run(t, k, []core.Agent{a},
		"sh", "-c", "rm /etc/target && echo removed")
	if st != 0 || !strings.Contains(out, "removed") {
		t.Fatalf("emulated rm not transparent: %d %q", st, out)
	}
	// ...but nothing actually happened.
	if data, err := k.ReadFile("/etc/target"); err != nil || string(data) != "precious" {
		t.Fatalf("emulation performed the action: %v %q", err, data)
	}
	// Emulated write-opens swallow data.
	st, _ = agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "echo x > /etc/swallowed")
	if st != 0 {
		t.Fatal("emulated open failed")
	}
	if _, err := k.ReadFile("/etc/swallowed"); err == nil {
		t.Fatal("swallowed write reached the filesystem")
	}
}

func TestSandboxHidesSecrets(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	k.WriteFile("/secrets/key", []byte("hunter2"), 0o644)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail", Hidden: []string{"/secrets"}})

	st, out := agenttest.Run(t, k, []core.Agent{a}, "cat", "/secrets/key")
	if st == 0 || strings.Contains(out, "hunter2") {
		t.Fatalf("secret leaked: %d %q", st, out)
	}
	// Reads elsewhere still work.
	st, _ = agenttest.Run(t, k, []core.Agent{a}, "cat", "/etc/motd")
	if st != 0 {
		t.Fatal("benign read denied")
	}
}

func TestSandboxForkBudget(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail", MaxProcs: 3})
	// Each sh -c command forks once per simple command; a chain of five
	// blows the budget of three.
	st, _ := agenttest.Run(t, k, []core.Agent{a},
		"sh", "-c", "true; true; true; true; true")
	if st == 0 {
		t.Fatal("fork budget not enforced")
	}
	found := false
	for _, v := range a.Violations() {
		if v.Action == "fork-budget" {
			found = true
		}
	}
	if !found {
		t.Fatal("budget violation not recorded")
	}
}

func TestSandboxKillConfinement(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail"})
	// Kill of an unrelated pid is denied (pid 999 need not exist; the
	// policy check precedes the lookup).
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "kill", "-9", "999")
	if st == 0 {
		t.Fatal("cross-tree kill allowed")
	}
	// Signalling itself is allowed.
	st, out := agenttest.Run(t, k, []core.Agent{a}, "sigplay")
	if st != 0 {
		t.Fatalf("self-signal denied: %d %q", st, out)
	}
}

func TestSandboxDeniesPrivilegedOps(t *testing.T) {
	k := agenttest.World(t)
	k.MkdirAll("/jail", 0o777)
	a := agent(t, sandbox.Policy{WriteRoot: "/jail"})
	st, _ := agenttest.Run(t, k, []core.Agent{a}, "sh", "-c", "hostname")
	if st != 0 {
		t.Fatal("reading hostname should be allowed")
	}
	if len(a.Violations()) != 0 {
		t.Fatalf("unexpected violations: %+v", a.Violations())
	}
}
