// Package sandbox implements a protected environment for running
// untrusted binaries (paper §1.4): a wrapper that monitors and restricts
// the actions a client may take, in some cases emulating them without
// actually performing them, such that the untrusted binary need not be
// aware of the restrictions.
//
// The policy: filesystem modifications are confined to a writable subtree;
// reads of a configurable set of secret paths are denied; signals may only
// be sent within the client's own process tree; privileged operations
// (setuid, sethostname, settimeofday, chroot, mknod) are denied; and fork
// and written-byte budgets bound resource use. Denied modifications
// outside the sandbox can optionally be *emulated* — reported successful
// without being performed — so that sloppy programs keep running.
package sandbox

import (
	"fmt"
	gopath "path"
	"strings"
	"sync"

	"interpose/internal/core"
	"interpose/internal/sys"
)

// Violation is one recorded policy violation.
type Violation struct {
	PID    int
	Action string
	Path   string
}

// Policy configures the sandbox.
type Policy struct {
	// WriteRoot is the subtree in which modifications are allowed.
	WriteRoot string
	// Hidden paths (and subtrees) may not be opened or statted at all.
	Hidden []string
	// Emulate, when set, pretends that denied modifications succeeded
	// instead of failing them with EPERM.
	Emulate bool
	// MaxProcs bounds the number of forks (0 = unlimited).
	MaxProcs int
	// MaxWriteBytes bounds the total bytes written to files (0 = unlimited).
	MaxWriteBytes int64
}

// Agent enforces a sandbox Policy.
type Agent struct {
	core.PathnameSet
	policy Policy

	mu         sync.Mutex
	violations []Violation
	forks      int
	written    int64
}

// New creates a sandbox agent.
func New(policy Policy) (*Agent, error) {
	if policy.WriteRoot == "" || !strings.HasPrefix(policy.WriteRoot, "/") {
		return nil, fmt.Errorf("sandbox: WriteRoot must be absolute")
	}
	policy.WriteRoot = gopath.Clean(policy.WriteRoot)
	a := &Agent{policy: policy}
	a.BindPathnames(a)
	a.RegisterPathCalls()
	a.RegisterInterest(sys.SYS_fork)
	a.RegisterInterest(sys.SYS_kill)
	a.RegisterInterest(sys.SYS_setuid)
	a.RegisterInterest(sys.SYS_sethostname)
	a.RegisterInterest(sys.SYS_settimeofday)
	a.RegisterInterest(sys.SYS_write)
	return a, nil
}

// Violations returns the recorded policy violations.
func (a *Agent) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

func (a *Agent) violate(c sys.Ctx, action, path string) {
	a.mu.Lock()
	a.violations = append(a.violations, Violation{PID: c.PID(), Action: action, Path: path})
	a.mu.Unlock()
}

func under(root, path string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}

func (a *Agent) writable(path string) bool {
	return under(a.policy.WriteRoot, gopath.Clean(path))
}

func (a *Agent) hidden(path string) bool {
	clean := gopath.Clean(path)
	for _, h := range a.policy.Hidden {
		if under(gopath.Clean(h), clean) {
			return true
		}
	}
	return false
}

// deny handles a rejected modification: recorded, and either emulated as
// success or failed with EPERM.
func (a *Agent) deny(c sys.Ctx, action, path string) (sys.Retval, sys.Errno) {
	a.violate(c, action, path)
	if a.policy.Emulate {
		return sys.Retval{}, sys.OK
	}
	return sys.Retval{}, sys.EPERM
}

// GetPN hides secret paths and confines modifications: pathnames resolve
// through sandboxed pathname objects that apply the policy per operation.
func (a *Agent) GetPN(c sys.Ctx, path string, op core.PathOp) (core.Pathname, sys.Errno) {
	if a.hidden(path) {
		a.violate(c, "hidden", path)
		return nil, sys.ENOENT
	}
	if (op == core.OpCreate || op == core.OpDelete) && !a.writable(path) {
		// The caller-specific method will consult denied.
		return &sandboxedPathname{BasePathname: core.BasePathname{P: path}, a: a, denied: true}, sys.OK
	}
	return &sandboxedPathname{BasePathname: core.BasePathname{P: path}, a: a}, sys.OK
}

// sandboxedPathname applies write confinement per operation.
type sandboxedPathname struct {
	core.BasePathname
	a      *Agent
	denied bool // name-level denial (create/delete outside the sandbox)
}

// Open refuses write access outside the sandbox.
func (p *sandboxedPathname) Open(c sys.Ctx, flags int, mode uint32) (sys.Retval, core.OpenObject, sys.Errno) {
	writeOpen := flags&(sys.O_WRONLY|sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC) != 0
	if writeOpen && !p.a.writable(p.P) {
		rv, err := p.a.deny(c, "open-write", p.P)
		if err == sys.OK {
			// Emulation: hand out a descriptor onto /dev/null so writes
			// are swallowed rather than performed.
			rv, err = core.DownPath(c, sys.SYS_open, "/dev/null", sys.O_WRONLY)
			return rv, nil, err
		}
		return rv, nil, err
	}
	return p.BasePathname.Open(c, flags, mode)
}

func (p *sandboxedPathname) mod(c sys.Ctx, action string, op func() (sys.Retval, sys.Errno)) (sys.Retval, sys.Errno) {
	if p.denied || !p.a.writable(p.P) {
		return p.a.deny(c, action, p.P)
	}
	return op()
}

// Unlink is confined to the writable subtree.
func (p *sandboxedPathname) Unlink(c sys.Ctx) (sys.Retval, sys.Errno) {
	return p.mod(c, "unlink", func() (sys.Retval, sys.Errno) { return p.BasePathname.Unlink(c) })
}

// Rmdir is confined to the writable subtree.
func (p *sandboxedPathname) Rmdir(c sys.Ctx) (sys.Retval, sys.Errno) {
	return p.mod(c, "rmdir", func() (sys.Retval, sys.Errno) { return p.BasePathname.Rmdir(c) })
}

// Mkdir is confined to the writable subtree.
func (p *sandboxedPathname) Mkdir(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	return p.mod(c, "mkdir", func() (sys.Retval, sys.Errno) { return p.BasePathname.Mkdir(c, mode) })
}

// Mknod is always denied.
func (p *sandboxedPathname) Mknod(c sys.Ctx, mode uint32, dev sys.Word) (sys.Retval, sys.Errno) {
	return p.a.deny(c, "mknod", p.P)
}

// Symlink is confined to the writable subtree.
func (p *sandboxedPathname) Symlink(c sys.Ctx, target string) (sys.Retval, sys.Errno) {
	return p.mod(c, "symlink", func() (sys.Retval, sys.Errno) { return p.BasePathname.Symlink(c, target) })
}

// Chmod is confined to the writable subtree.
func (p *sandboxedPathname) Chmod(c sys.Ctx, mode uint32) (sys.Retval, sys.Errno) {
	return p.mod(c, "chmod", func() (sys.Retval, sys.Errno) { return p.BasePathname.Chmod(c, mode) })
}

// Chown is confined to the writable subtree.
func (p *sandboxedPathname) Chown(c sys.Ctx, uid, gid sys.Word) (sys.Retval, sys.Errno) {
	return p.mod(c, "chown", func() (sys.Retval, sys.Errno) { return p.BasePathname.Chown(c, uid, gid) })
}

// Truncate is confined to the writable subtree.
func (p *sandboxedPathname) Truncate(c sys.Ctx, length int32) (sys.Retval, sys.Errno) {
	return p.mod(c, "truncate", func() (sys.Retval, sys.Errno) { return p.BasePathname.Truncate(c, length) })
}

// Utimes is confined to the writable subtree.
func (p *sandboxedPathname) Utimes(c sys.Ctx, tvAddr sys.Word) (sys.Retval, sys.Errno) {
	return p.mod(c, "utimes", func() (sys.Retval, sys.Errno) { return p.BasePathname.Utimes(c, tvAddr) })
}

// Link requires both names inside the writable subtree.
func (p *sandboxedPathname) Link(c sys.Ctx, newpn core.Pathname) (sys.Retval, sys.Errno) {
	if !p.a.writable(newpn.String()) {
		return p.a.deny(c, "link", newpn.String())
	}
	return p.BasePathname.Link(c, newpn)
}

// Rename requires both names inside the writable subtree.
func (p *sandboxedPathname) Rename(c sys.Ctx, to core.Pathname) (sys.Retval, sys.Errno) {
	if p.denied || !p.a.writable(p.P) || !p.a.writable(to.String()) {
		return p.a.deny(c, "rename", p.P)
	}
	return p.BasePathname.Rename(c, to)
}

// Chroot is denied: it could escape the policy's path checks.
func (p *sandboxedPathname) Chroot(c sys.Ctx) (sys.Retval, sys.Errno) {
	return p.a.deny(c, "chroot", p.P)
}

// SysFork enforces the process budget.
func (a *Agent) SysFork(c sys.Ctx) (sys.Retval, sys.Errno) {
	if a.policy.MaxProcs > 0 {
		a.mu.Lock()
		a.forks++
		over := a.forks > a.policy.MaxProcs
		a.mu.Unlock()
		if over {
			a.violate(c, "fork-budget", "")
			return sys.Retval{}, sys.EAGAIN
		}
	}
	return a.PathnameSet.SysFork(c)
}

// SysWrite enforces the write budget.
func (a *Agent) SysWrite(c sys.Ctx, fd int, buf sys.Word, cnt int) (sys.Retval, sys.Errno) {
	if a.policy.MaxWriteBytes > 0 {
		a.mu.Lock()
		over := a.written+int64(cnt) > a.policy.MaxWriteBytes
		if !over {
			a.written += int64(cnt)
		}
		a.mu.Unlock()
		if over {
			a.violate(c, "write-budget", "")
			return sys.Retval{}, sys.EFBIG
		}
	}
	return a.PathnameSet.SysWrite(c, fd, buf, cnt)
}

// SysKill confines signals to the client's own process tree (approximated
// as: the caller may signal itself or its process group, nothing else).
func (a *Agent) SysKill(c sys.Ctx, pid, sig int) (sys.Retval, sys.Errno) {
	if pid > 0 && pid != c.PID() {
		a.violate(c, "kill", fmt.Sprintf("pid %d", pid))
		if a.policy.Emulate {
			return sys.Retval{}, sys.OK
		}
		return sys.Retval{}, sys.EPERM
	}
	return a.PathnameSet.SysKill(c, pid, sig)
}

// SysSetuid is denied.
func (a *Agent) SysSetuid(c sys.Ctx, uid sys.Word) (sys.Retval, sys.Errno) {
	return a.deny(c, "setuid", "")
}

// SysSethostname is denied.
func (a *Agent) SysSethostname(c sys.Ctx, addr sys.Word, n int) (sys.Retval, sys.Errno) {
	return a.deny(c, "sethostname", "")
}

// SysSettimeofday is denied.
func (a *Agent) SysSettimeofday(c sys.Ctx, tv, tz sys.Word) (sys.Retval, sys.Errno) {
	return a.deny(c, "settimeofday", "")
}
