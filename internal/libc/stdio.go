package libc

import (
	"fmt"
	"strings"

	"interpose/internal/sys"
)

// stdioBuf is the stdio buffer size.
const stdioBuf = 4096

// FILE is a buffered stdio stream over a file descriptor.
type FILE struct {
	t  *T
	fd int

	rbuf []byte // buffered unread input
	wbuf []byte // buffered unwritten output

	lineBuffered bool
	err          sys.Errno
	eof          bool
}

// Fopen opens a stdio stream. mode is "r", "w", or "a".
func (t *T) Fopen(path, mode string) (*FILE, sys.Errno) {
	var flags int
	switch mode {
	case "r":
		flags = sys.O_RDONLY
	case "w":
		flags = sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC
	case "a":
		flags = sys.O_WRONLY | sys.O_CREAT | sys.O_APPEND
	case "r+":
		flags = sys.O_RDWR
	case "w+":
		flags = sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC
	default:
		return nil, sys.EINVAL
	}
	fd, err := t.Open(path, flags, 0o666)
	if err != sys.OK {
		return nil, err
	}
	f := &FILE{t: t, fd: fd}
	if flags&sys.O_ACCMODE != sys.O_RDONLY {
		f.wbuf = make([]byte, 0, stdioBuf)
	}
	return f, sys.OK
}

// Fdopen wraps an existing descriptor in a stream.
func (t *T) Fdopen(fd int) *FILE {
	return &FILE{t: t, fd: fd, wbuf: make([]byte, 0, stdioBuf)}
}

// FD returns the stream's file descriptor.
func (f *FILE) FD() int { return f.fd }

// Err returns the stream's sticky error.
func (f *FILE) Err() sys.Errno { return f.err }

// EOF reports whether the stream has seen end of file.
func (f *FILE) EOF() bool { return f.eof && len(f.rbuf) == 0 }

// Write buffers p for output.
func (f *FILE) Write(p []byte) (int, error) {
	if f.wbuf == nil {
		// Unbuffered stream (stderr).
		if e := f.t.WriteString(f.fd, string(p)); e != sys.OK {
			f.err = e
			return 0, e
		}
		return len(p), nil
	}
	f.wbuf = append(f.wbuf, p...)
	flushAll := f.lineBuffered && len(p) > 0 && p[len(p)-1] == '\n'
	for len(f.wbuf) >= stdioBuf || (flushAll && len(f.wbuf) > 0) {
		if e := f.flushOnce(); e != sys.OK {
			return 0, e
		}
	}
	return len(p), nil
}

// WriteString buffers s for output.
func (f *FILE) WriteString(s string) { f.Write([]byte(s)) }

// Printf formats to the stream.
func (f *FILE) Printf(format string, args ...any) {
	f.WriteString(fmt.Sprintf(format, args...))
}

// Println writes the operands followed by a newline.
func (f *FILE) Println(args ...any) {
	f.WriteString(fmt.Sprintln(args...))
}

func (f *FILE) flushOnce() sys.Errno {
	n := len(f.wbuf)
	if n > stdioBuf {
		n = stdioBuf
	}
	// WriteAll absorbs EINTR and completes short writes; whatever it
	// did write is consumed from the buffer even on error, so a retried
	// Flush never re-emits bytes that already reached the descriptor.
	wrote, err := f.t.WriteAll(f.fd, f.wbuf[:n])
	f.wbuf = f.wbuf[:copy(f.wbuf, f.wbuf[wrote:])]
	if err != sys.OK {
		f.err = err
		return err
	}
	return sys.OK
}

// Flush writes out all buffered output.
func (f *FILE) Flush() sys.Errno {
	for len(f.wbuf) > 0 {
		if e := f.flushOnce(); e != sys.OK {
			return e
		}
	}
	return sys.OK
}

// Close flushes and closes the stream.
func (f *FILE) Close() sys.Errno {
	if e := f.Flush(); e != sys.OK {
		f.t.Close(f.fd)
		return e
	}
	return f.t.Close(f.fd)
}

// Read reads buffered input.
func (f *FILE) Read(p []byte) (int, sys.Errno) {
	if len(f.rbuf) == 0 && !f.eof {
		if e := f.fill(); e != sys.OK {
			return 0, e
		}
	}
	n := copy(p, f.rbuf)
	f.rbuf = f.rbuf[n:]
	return n, sys.OK
}

func (f *FILE) fill() sys.Errno {
	bp := getXfer()
	defer putXfer(bp)
	buf := (*bp)[:stdioBuf]
	n, err := f.t.ReadRetry(f.fd, buf)
	if err != sys.OK {
		f.err = err
		return err
	}
	if n == 0 {
		f.eof = true
		return sys.OK
	}
	f.rbuf = append(f.rbuf, buf[:n]...)
	return sys.OK
}

// ReadLine reads one line, excluding the newline. ok is false at EOF.
func (f *FILE) ReadLine() (string, bool) {
	var line []byte
	for {
		if i := indexByte(f.rbuf, '\n'); i >= 0 {
			line = append(line, f.rbuf[:i]...)
			f.rbuf = f.rbuf[i+1:]
			return string(line), true
		}
		line = append(line, f.rbuf...)
		f.rbuf = f.rbuf[:0]
		if f.eof {
			return string(line), len(line) > 0
		}
		if e := f.fill(); e != sys.OK {
			return string(line), len(line) > 0
		}
		if f.eof && len(f.rbuf) == 0 {
			return string(line), len(line) > 0
		}
	}
}

// ReadAll reads the stream to end of file.
func (f *FILE) ReadAll() ([]byte, sys.Errno) {
	var out []byte
	bp := getXfer()
	defer putXfer(bp)
	buf := (*bp)[:stdioBuf]
	for {
		n, err := f.Read(buf)
		if err != sys.OK {
			return out, err
		}
		if n == 0 {
			return out, sys.OK
		}
		out = append(out, buf[:n]...)
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// Printf formats to standard output.
func (t *T) Printf(format string, args ...any) { t.Stdout.Printf(format, args...) }

// Println writes operands and a newline to standard output.
func (t *T) Println(args ...any) { t.Stdout.Println(args...) }

// Fields splits s on blanks, as a tiny strtok helper for applications.
func Fields(s string) []string { return strings.Fields(s) }
