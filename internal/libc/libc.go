// Package libc is the userland runtime of the simulated machine: the C
// library that application programs link against. It provides raw system
// call access, a heap allocator over brk, stdio, process and signal
// helpers, and program startup (argument decoding).
//
// Applications written against libc interact with the world only through
// the system interface, so the same program image runs unmodified under
// any stack of interposition agents — exactly the transparency property
// the toolkit depends on.
package libc

import (
	"fmt"
	"sort"

	"interpose/internal/image"
	"interpose/internal/sys"
)

// T is the per-process C-library state. A T is created at program start
// (and afresh in fork children and after exec); it is not safe for use
// from multiple goroutines, matching the single-threaded processes of the
// era.
type T struct {
	p image.Proc

	// Program arguments and environment, decoded from the exec stack.
	Args []string
	Env  []string

	// Heap allocator state. Block payloads live in the simulated address
	// space; the bookkeeping lives here, playing the role of the
	// allocator's in-band metadata.
	brk     sys.Word
	free    map[sys.Word]sys.Word // addr → size of free blocks
	sizes   map[sys.Word]sys.Word // addr → size of allocated blocks
	scratch sys.Word              // small fixed arena for syscall marshalling
	ioBuf   sys.Word              // staging buffer for Read/Write
	ioCap   sys.Word

	handlers  map[sys.Word]func(*T, int) // signal handler token → function
	nextToken sys.Word

	Stdin  *FILE
	Stdout *FILE
	Stderr *FILE

	atexit []func(*T)
}

// scratchSize is the size of the syscall marshalling arena: two paths plus
// a struct-sized tail.
const scratchSize = 2*sys.PathMax + 512

// Main wraps an application main function as an image entry point,
// providing C-runtime startup and exit.
func Main(fn func(t *T) int) image.Entry {
	return func(p image.Proc) {
		t := Attach(p)
		t.Exit(fn(t))
	}
}

// Attach builds the C-library state for a process that just entered a
// program image (at exec or in a fresh fork child continuation).
func Attach(p image.Proc) *T {
	t := &T{
		p:         p,
		free:      make(map[sys.Word]sys.Word),
		sizes:     make(map[sys.Word]sys.Word),
		handlers:  make(map[sys.Word]func(*T, int)),
		nextToken: 0x1000,
	}
	argv, envp, err := image.ReadStack(p, p.InitialSP())
	if err == sys.OK {
		t.Args, t.Env = argv, envp
	}
	rv, e := t.Syscall(sys.SYS_brk, 0)
	if e == sys.OK {
		t.brk = rv[0]
	}
	t.scratch = t.Malloc(scratchSize)
	t.Stdin = &FILE{t: t, fd: 0}
	t.Stdout = &FILE{t: t, fd: 1, wbuf: make([]byte, 0, stdioBuf), lineBuffered: true}
	t.Stderr = &FILE{t: t, fd: 2}
	p.SetSignalDispatcher(t.dispatchSignal)
	return t
}

// snapshot captures the C-library state for transfer into a fork child.
// It must be taken immediately before the fork system call so that it
// matches the address-space image the kernel copies: the parent's heap
// layout at fork time is exactly the child's heap layout.
func (t *T) snapshot() *T {
	return &T{
		Args:      append([]string(nil), t.Args...),
		Env:       append([]string(nil), t.Env...),
		brk:       t.brk,
		free:      copyMap(t.free),
		sizes:     copyMap(t.sizes),
		scratch:   t.scratch,
		ioBuf:     t.ioBuf,
		ioCap:     t.ioCap,
		handlers:  copyHandlers(t.handlers),
		nextToken: t.nextToken,
	}
}

// attachChild completes a snapshot into a live child C library.
func attachChild(snap *T, p image.Proc) *T {
	t := snap
	t.p = p
	t.Stdin = &FILE{t: t, fd: 0}
	t.Stdout = &FILE{t: t, fd: 1, wbuf: make([]byte, 0, stdioBuf), lineBuffered: true}
	t.Stderr = &FILE{t: t, fd: 2}
	p.SetSignalDispatcher(t.dispatchSignal)
	return t
}

func copyMap(m map[sys.Word]sys.Word) map[sys.Word]sys.Word {
	out := make(map[sys.Word]sys.Word, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyHandlers(m map[sys.Word]func(*T, int)) map[sys.Word]func(*T, int) {
	out := make(map[sys.Word]func(*T, int), len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Proc exposes the underlying machine process (rarely needed by programs).
func (t *T) Proc() image.Proc { return t.p }

// Syscall issues a raw system call with numeric arguments.
func (t *T) Syscall(num int, args ...sys.Word) (sys.Retval, sys.Errno) {
	var a sys.Args
	copy(a[:], args)
	return t.p.Syscall(num, a)
}

// Exit flushes stdio, runs atexit hooks, and terminates the process.
// It does not return.
func (t *T) Exit(code int) {
	for i := len(t.atexit) - 1; i >= 0; i-- {
		t.atexit[i](t)
	}
	t.Stdout.Flush()
	t.Stderr.Flush()
	t.Syscall(sys.SYS_exit, sys.Word(code))
	// Invariant: SYS_exit terminates the process goroutine by unwind and
	// never returns; this panic only fires if the kernel's exit path is
	// broken, which no guest input can cause.
	panic("libc: exit returned")
}

// AtExit registers fn to run at normal process exit, last first.
func (t *T) AtExit(fn func(*T)) { t.atexit = append(t.atexit, fn) }

// Heap allocator: first fit with coalescing by address.

const allocAlign = 8

// Malloc allocates n bytes in the process address space. It aborts the
// process on heap exhaustion (n of zero returns a valid unique address).
func (t *T) Malloc(n sys.Word) sys.Word {
	a, err := t.Alloc(n)
	if err != sys.OK {
		t.Stderr.WriteString("out of memory\n")
		t.Exit(127)
	}
	return a
}

// Alloc allocates n bytes, reporting failure instead of aborting.
func (t *T) Alloc(n sys.Word) (sys.Word, sys.Errno) {
	if n == 0 {
		n = 1
	}
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	// First fit over free blocks, lowest address first for determinism.
	addrs := make([]sys.Word, 0, len(t.free))
	for a := range t.free {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		size := t.free[a]
		if size < n {
			continue
		}
		delete(t.free, a)
		if size > n {
			t.free[a+n] = size - n
		}
		t.sizes[a] = n
		return a, sys.OK
	}
	// Grow the break.
	grow := n
	if grow < sys.PageSize {
		grow = sys.PageSize
	}
	base := t.brk
	if _, err := t.Syscall(sys.SYS_brk, base+grow); err != sys.OK {
		return 0, sys.ENOMEM
	}
	t.brk = base + grow
	if grow > n {
		t.free[base+n] = grow - n
	}
	t.sizes[base] = n
	return base, sys.OK
}

// Free releases an allocation made by Alloc/Malloc.
func (t *T) Free(addr sys.Word) {
	size, ok := t.sizes[addr]
	if !ok {
		return
	}
	delete(t.sizes, addr)
	// Coalesce with an adjacent following free block.
	if next, ok := t.free[addr+size]; ok {
		delete(t.free, addr+size)
		size += next
	}
	t.free[addr] = size
}

// CString copies s into the address space as a NUL-terminated string.
// The result must be released with Free.
func (t *T) CString(s string) sys.Word {
	a := t.Malloc(sys.Word(len(s) + 1))
	b := append([]byte(s), 0)
	t.p.CopyOut(a, b)
	return a
}

// GoString reads a NUL-terminated string from the address space.
func (t *T) GoString(addr sys.Word) string {
	s, _ := t.p.CopyInString(addr, sys.ArgMax)
	return s
}

// pathScratch marshals up to two pathname arguments into the scratch
// arena, returning their addresses.
func (t *T) pathScratch(p1, p2 string) (sys.Word, sys.Word, sys.Errno) {
	if len(p1) >= sys.PathMax || len(p2) >= sys.PathMax {
		return 0, 0, sys.ENAMETOOLONG
	}
	a1 := t.scratch
	a2 := t.scratch + sys.PathMax
	if e := t.p.CopyOut(a1, append([]byte(p1), 0)); e != sys.OK {
		return 0, 0, e
	}
	if p2 != "" {
		if e := t.p.CopyOut(a2, append([]byte(p2), 0)); e != sys.OK {
			return 0, 0, e
		}
	}
	return a1, a2, sys.OK
}

// structScratch returns the scratch tail used for struct in/out arguments.
func (t *T) structScratch() sys.Word { return t.scratch + 2*sys.PathMax }

// ensureIOBuf guarantees a staging buffer of at least n bytes and returns
// its address.
func (t *T) ensureIOBuf(n int) sys.Word {
	if sys.Word(n) <= t.ioCap && t.ioBuf != 0 {
		return t.ioBuf
	}
	if t.ioBuf != 0 {
		t.Free(t.ioBuf)
	}
	capn := sys.Word(n)
	if capn < sys.PageSize {
		capn = sys.PageSize
	}
	t.ioBuf = t.Malloc(capn)
	t.ioCap = capn
	return t.ioBuf
}

// Errorf formats a message to stderr, prefixed by the program name.
func (t *T) Errorf(format string, args ...any) {
	prog := "?"
	if len(t.Args) > 0 {
		prog = t.Args[0]
	}
	t.Stderr.WriteString(prog + ": " + fmt.Sprintf(format, args...) + "\n")
}

// Getenv looks up an environment variable.
func (t *T) Getenv(key string) string {
	for _, kv := range t.Env {
		if len(kv) > len(key) && kv[:len(key)] == key && kv[len(key)] == '=' {
			return kv[len(key)+1:]
		}
	}
	return ""
}

// Checkpoint lets the system deliver pending signals during long
// computations that make no system calls.
func (t *T) Checkpoint() { t.p.Yield() }
