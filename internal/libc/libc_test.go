package libc_test

import (
	"strings"
	"testing"
	"testing/quick"

	"interpose/internal/image"
	"interpose/internal/kernel"
	"interpose/internal/libc"
	"interpose/internal/sys"
)

// run executes fn as a process in a fresh kernel.
func run(t *testing.T, fn func(*libc.T) int) (sys.Word, string) {
	t.Helper()
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(fn))
	k := kernel.New(reg)
	if err := k.InstallProgram("/bin/main", "main"); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("/bin/main", []string{"main", "one", "two"}, []string{"HOME=/home", "EMPTY="})
	if err != nil {
		t.Fatal(err)
	}
	st := k.WaitExit(p)
	return st, k.Console().TakeOutput()
}

func ok(t *testing.T, st sys.Word, out string) string {
	t.Helper()
	if !sys.WIfExited(st) || sys.WExitStatus(st) != 0 {
		t.Fatalf("status %#x, out:\n%s", st, out)
	}
	return out
}

func TestArgsAndEnv(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		lt.Printf("%v %q %q\n", lt.Args, lt.Getenv("HOME"), lt.Getenv("MISSING"))
		return 0
	})
	if out := ok(t, st, out); out != "[main one two] \"/home\" \"\"\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestMallocFree(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		// Allocations are distinct and usable.
		a := lt.Malloc(100)
		b := lt.Malloc(100)
		if a == b {
			return 1
		}
		lt.Proc().CopyOut(a, []byte("AAAA"))
		lt.Proc().CopyOut(b, []byte("BBBB"))
		sa, _ := lt.Proc().CopyInString(a, 10)
		sb, _ := lt.Proc().CopyInString(b, 10)
		if sa != "AAAA" || sb != "BBBB" {
			return 2
		}
		// Freeing recycles: the same block comes back for an equal-size ask.
		lt.Free(a)
		c := lt.Malloc(100)
		if c != a {
			lt.Printf("note: free list did not recycle (a=%#x c=%#x)\n", a, c)
		}
		// Coalescing: freeing two adjacent blocks yields one big block.
		lt.Free(b)
		lt.Free(c)
		big := lt.Malloc(200)
		if big == 0 {
			return 3
		}
		lt.Printf("ok\n")
		return 0
	})
	if out := ok(t, st, out); !strings.Contains(out, "ok") {
		t.Fatalf("out = %q", out)
	}
}

func TestMallocGrowsHeap(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		// Allocate well past one page to force brk growth.
		var addrs []sys.Word
		for i := 0; i < 100; i++ {
			addrs = append(addrs, lt.Malloc(8192))
		}
		seen := map[sys.Word]bool{}
		for _, a := range addrs {
			if seen[a] {
				return 1
			}
			seen[a] = true
		}
		lt.Printf("ok\n")
		return 0
	})
	ok(t, st, out)
}

func TestCStringRoundTrip(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		a := lt.CString("hello there")
		if lt.GoString(a) != "hello there" {
			return 1
		}
		lt.Free(a)
		lt.Printf("ok\n")
		return 0
	})
	ok(t, st, out)
}

func TestStdioBufferedWrite(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		f, err := lt.Fopen("/tmp/out.txt", "w")
		if err != sys.OK {
			return 1
		}
		for i := 0; i < 1000; i++ {
			f.WriteString("line\n")
		}
		f.Close()
		data, _ := lt.ReadFile("/tmp/out.txt")
		lt.Printf("%d\n", len(data))
		return 0
	})
	if out := ok(t, st, out); out != "5000\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStdioReadLine(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		lt.WriteFile("/tmp/in.txt", []byte("alpha\nbeta\nlast-no-newline"), 0o644)
		f, _ := lt.Fopen("/tmp/in.txt", "r")
		for {
			line, more := f.ReadLine()
			if !more {
				break
			}
			lt.Printf("[%s]", line)
		}
		lt.Printf("\n")
		return 0
	})
	if out := ok(t, st, out); out != "[alpha][beta][last-no-newline]\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStdioModes(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		f, _ := lt.Fopen("/tmp/f", "w")
		f.WriteString("one\n")
		f.Close()
		f, _ = lt.Fopen("/tmp/f", "a")
		f.WriteString("two\n")
		f.Close()
		f, _ = lt.Fopen("/tmp/f", "r")
		all, _ := f.ReadAll()
		f.Close()
		lt.Printf("%s", all)
		if _, err := lt.Fopen("/tmp/f", "x"); err != sys.EINVAL {
			return 1
		}
		return 0
	})
	if out := ok(t, st, out); out != "one\ntwo\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGetwdDeep(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		lt.MkdirAll("/x/y/z/w", 0o755)
		lt.Chdir("/x/y/z/w")
		wd, err := lt.Getwd()
		if err != sys.OK {
			return 1
		}
		lt.Printf("%s\n", wd)
		lt.Chdir("/")
		wd, _ = lt.Getwd()
		lt.Printf("%s\n", wd)
		return 0
	})
	if out := ok(t, st, out); out != "/x/y/z/w\n/\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestAtExitOrder(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		lt.AtExit(func(ht *libc.T) { ht.Stdout.WriteString("first-registered\n"); ht.Stdout.Flush() })
		lt.AtExit(func(ht *libc.T) { ht.Stdout.WriteString("second-registered\n"); ht.Stdout.Flush() })
		return 0
	})
	if out := ok(t, st, out); out != "second-registered\nfirst-registered\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestPathHelpers(t *testing.T) {
	cases := []struct{ in, base, dir string }{
		{"/a/b/c", "c", "/a/b"},
		{"/a", "a", "/"},
		{"name", "name", "."},
		{"/", "/", "/"},
		{"/a/b/", "b", "/a"},
	}
	for _, c := range cases {
		if got := libc.Basename(c.in); got != c.base {
			t.Errorf("Basename(%q) = %q, want %q", c.in, got, c.base)
		}
		if got := libc.Dirname(c.in); got != c.dir {
			t.Errorf("Dirname(%q) = %q, want %q", c.in, got, c.dir)
		}
	}
	if libc.JoinPath("/a", "b") != "/a/b" || libc.JoinPath("/a/", "b") != "/a/b" ||
		libc.JoinPath("/a", "/abs") != "/abs" {
		t.Error("JoinPath wrong")
	}
}

func TestJoinBaseDirProperty(t *testing.T) {
	// Joining a dir with a simple name then taking Basename/Dirname
	// returns the parts.
	f := func(raw uint8) bool {
		name := "n" + string(rune('a'+raw%26))
		dir := "/d" + string(rune('a'+raw%26))
		p := libc.JoinPath(dir, name)
		return libc.Basename(p) == name && libc.Dirname(p) == dir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchPath(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		// /bin/main exists and is executable.
		p, err := lt.SearchPath("main")
		if err != sys.OK {
			return 1
		}
		lt.Printf("%s\n", p)
		if _, err := lt.SearchPath("definitely-not-there"); err != sys.ENOENT {
			return 2
		}
		// Explicit paths pass through.
		if p, _ := lt.SearchPath("./rel"); p != "./rel" {
			return 3
		}
		return 0
	})
	// PATH is unset in this world; SearchPath falls back to /bin:/usr/bin.
	if out := ok(t, st, out); out != "/bin/main\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSpawnAndSystem(t *testing.T) {
	reg := image.NewRegistry()
	reg.Register("main", libc.Main(func(lt *libc.T) int {
		status, err := lt.System("/bin/worker", []string{"worker"})
		if err != sys.OK {
			return 1
		}
		lt.Printf("worker exit %d\n", sys.WExitStatus(status))
		return 0
	}))
	reg.Register("worker", libc.Main(func(lt *libc.T) int {
		lt.Printf("working\n")
		return 7
	}))
	k := kernel.New(reg)
	k.InstallProgram("/bin/main", "main")
	k.InstallProgram("/bin/worker", "worker")
	p, _ := k.Spawn("/bin/main", []string{"main"}, nil)
	st := k.WaitExit(p)
	out := k.Console().TakeOutput()
	if sys.WExitStatus(st) != 0 || out != "working\nworker exit 7\n" {
		t.Fatalf("%#x %q", st, out)
	}
}

func TestForkChildSeesCopiedHeap(t *testing.T) {
	// Addresses captured across fork remain valid: the child's address
	// space is a copy, so parent-held pointers work in the child and the
	// copies then diverge — real fork semantics at the memory level.
	st, out := run(t, func(lt *libc.T) int {
		addr := lt.CString("from-parent")
		r, w, _ := lt.Pipe()
		pid, _ := lt.Fork(func(ct *libc.T) {
			s := ct.GoString(addr) // same numeric address, child's copy
			ct.WriteString(w, s)
			// Mutating the child's copy must not affect the parent.
			ct.Proc().CopyOut(addr, []byte("child-smash"))
			ct.Exit(0)
		})
		lt.Close(w)
		b := make([]byte, 32)
		n, _ := lt.Read(r, b)
		lt.Waitpid(pid)
		lt.Printf("child-read=%s parent=%s\n", b[:n], lt.GoString(addr))
		return 0
	})
	if out := ok(t, st, out); out != "child-read=from-parent parent=from-parent\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCheckpointDeliversSignals(t *testing.T) {
	st, out := run(t, func(lt *libc.T) int {
		hit := false
		lt.Signal(sys.SIGUSR1, func(*libc.T, int) { hit = true })
		// Post from a child, then spin without system calls until the
		// explicit checkpoint lets delivery happen.
		lt.Fork(func(ct *libc.T) {
			ct.Kill(ct.Getppid(), sys.SIGUSR1)
			ct.Exit(0)
		})
		lt.Wait()
		for i := 0; i < 1000 && !hit; i++ {
			lt.Checkpoint()
		}
		lt.Printf("hit=%v\n", hit)
		return 0
	})
	if out := ok(t, st, out); out != "hit=true\n" {
		t.Fatalf("out = %q", out)
	}
}
